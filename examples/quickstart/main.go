// Quickstart: run the paper's algorithms in both round models, inspect the
// runs, and check the uniform consensus specification.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// 1. FloodSet (the paper's Figure 1) in the synchronous round model RS:
	// three processes propose 4, 2, 7; nobody crashes; everyone decides the
	// minimum value after t+1 = 2 rounds.
	run, err := repro.Run(repro.RS, repro.FloodSet(), []repro.Value{4, 2, 7}, 1, repro.NoFailures)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- FloodSet, failure-free ---")
	fmt.Print(repro.RenderRun(run))

	// 2. The same algorithm under a crash: p1 (proposing the minimum)
	// crashes during round 1, reaching only p2 — the value still floods.
	crash := repro.Plan{Crashes: map[repro.ProcessID]repro.ProcSet{1: repro.Procs(2)}}
	run, err = repro.Run(repro.RS, repro.FloodSet(), []repro.Value{0, 5, 9}, 1, repro.Script(crash))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- FloodSet, p1 crashes mid-broadcast ---")
	fmt.Print(repro.RenderRun(run))
	for _, res := range repro.CheckConsensus(run) {
		fmt.Println(" ", res)
	}

	// 3. A1 (Figure 4): in a failure-free RS run every process decides at
	// round 1 — the Λ(A1)=1 headline of §5.3.
	run, err = repro.Run(repro.RS, repro.A1(), []repro.Value{9, 1, 5}, 1, repro.NoFailures)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- A1, failure-free: one round ---")
	fmt.Print(repro.RenderRun(run))

	// 4. Latency degrees, computed by exhaustive exploration.
	d, err := repro.Latency(repro.RS, repro.A1(), 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- latency degrees ---")
	fmt.Println(d)
}
