// latencyrace reproduces the paper's Section 5 efficiency comparison: the
// latency-degree matrix of every algorithm in its model, computed by
// exhaustive exploration, followed by the two sides of the Λ separation —
// A1 deciding at round 1 of every failure-free RS run, and the mechanized
// proof that no RWS algorithm can do the same.
//
//	go run ./examples/latencyrace
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	fmt.Println("Latency degrees (n=3, t=1), computed over every admissible run:")
	fmt.Printf("  %-18s %-4s %-7s %-7s %-9s %-9s\n", "algorithm", "model", "lat(A)", "Lat(A)", "Λ=Lat(A,0)", "Lat(A,1)")
	for _, kind := range []repro.ModelKind{repro.RS, repro.RWS} {
		for _, alg := range repro.ForModel(kind) {
			d, err := repro.Latency(kind, alg, 3, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s %-4v %-7d %-7d %-9d %-9d\n",
				alg.Name(), kind, d.Lat, d.LatMax, d.Lambda, d.LatByF[1])
		}
	}

	fmt.Println("\nReadings (matching §5.2–5.3):")
	fmt.Println("  · lat(C_Opt*) = 1     — unanimity decides at round 1, in both models")
	fmt.Println("  · Lat(F_Opt*) = 1     — t initial crashes decide at round 1, in both models;")
	fmt.Println("                          minimal latency is NOT obtained in failure-free runs")
	fmt.Println("  · Λ(A1) = 1 in RS     — every failure-free run decides at round 1")
	fmt.Println("  · Λ(A) ≥ 2 in RWS     — for every algorithm in the suite")

	fmt.Println("\nWhy no RWS algorithm can match A1 (mechanized §5.3 lower bound):")
	ref, err := repro.RefuteRoundOneRWS(repro.A1(), 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  A1 transplanted to RWS → %v\n", ref.Kind)
	fmt.Printf("  %s\n\n", ref.Detail)
	fmt.Print(repro.RenderRun(ref.Run))
	fmt.Println("\nSo RS decides uniform consensus one round sooner than RWS in the")
	fmt.Println("common case — the synchronous model is strictly stronger in efficiency.")
}
