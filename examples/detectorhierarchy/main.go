// detectorhierarchy walks the Chandra–Toueg failure-detector ladder that
// frames the paper's comparison:
//
//   - SS beats P: the known Φ/Δ bounds solve SDD; P cannot (examples/sddgap).
//   - P beats ◇S on resilience: uniform consensus with P tolerates any
//     t < n crashes; with ◇S a majority must stay correct — but ◇S costs
//     nothing more than *eventual* accuracy, which real timeouts deliver
//     without any known bound.
//
// This example generates adversarial histories of each class, shows which
// axioms they satisfy, and runs Chandra–Toueg ◇S consensus under heavy
// pre-stabilization suspicion noise.
//
//	go run ./examples/detectorhierarchy
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/ctoueg"
	"repro/internal/fd"
	"repro/internal/model"
)

func main() {
	// A failure pattern: p4 crashes at time 30 (of a 200-tick horizon).
	fp := model.NewFailurePattern(4)
	if err := fp.SetCrash(4, 30); err != nil {
		log.Fatal(err)
	}
	horizon := model.Time(200)

	fmt.Println("Generated histories vs. the axioms (n=4, p4 crashes at t=30):")
	fmt.Printf("  %-6s %-12s %-12s %-14s %-14s\n", "class", "strong acc.", "weak acc.", "event. strong", "event. weak")
	for _, class := range []fd.Class{fd.P, fd.EventuallyP, fd.S, fd.EventuallyS} {
		h, err := fd.Generate(class, fp, fd.GenOptions{
			Horizon: horizon, MaxDetectionDelay: 5, Seed: 11, FalseSuspicionRate: 0.9,
		})
		if err != nil {
			log.Fatal(err)
		}
		mark := func(v []fd.Violation) string {
			if len(v) == 0 {
				return "✓"
			}
			return "✗"
		}
		fmt.Printf("  %-6v %-12s %-12s %-14s %-14s\n", class,
			mark(fd.CheckStrongAccuracy(fp, h, horizon)),
			mark(fd.CheckWeakAccuracy(fp, h, horizon)),
			mark(fd.CheckEventualStrongAccuracy(fp, h, horizon)),
			mark(fd.CheckEventualWeakAccuracy(fp, h, horizon)))
	}

	fmt.Println("\nChandra–Toueg consensus under ◇S (n=3, t=1, 90% false-suspicion noise")
	fmt.Println("before stabilization; p1 crashes at step 5):")
	inputs := []repro.Value{3, 1, 2}
	res, err := repro.RunDiamondS(inputs, ctoueg.RunConfig{
		T: 1, Seed: 7,
		CrashAt:            map[model.ProcessID]int{1: 5},
		FalseSuspicionRate: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	for p := 1; p <= 3; p++ {
		if res.Trace.Decided[p] {
			fmt.Printf("  p%d decided %d at its step %d\n", p, int64(res.Trace.DecidedValue[p]), res.Trace.DecidedAtLocal[p])
		} else {
			fmt.Printf("  p%d crashed undecided\n", p)
		}
	}
	if viol := ctoueg.CheckConsensus(res.Trace, inputs); len(viol) == 0 {
		fmt.Println("  uniform consensus: OK")
	} else {
		fmt.Printf("  VIOLATION: %s\n", viol[0])
	}

	fmt.Println("\nThe ladder, top to bottom:")
	fmt.Println("  SS  — bounded detection: solves SDD, Λ=1 consensus, NBAC that commits after any vote")
	fmt.Println("  SP  — perfect but unbounded detection: consensus yes (any t<n), SDD no, Λ≥2")
	fmt.Println("  ◇S  — eventual accuracy only: consensus still yes, but only with a correct majority")
}
