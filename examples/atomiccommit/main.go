// atomiccommit demonstrates the paper's Section 3 corollary: atomic commit
// protocols in the synchronous model commit strictly more often than any
// protocol relying on a perfect failure detector. Three databases vote on a
// transaction; the coordinator-free NBAC protocol floods the vote vector;
// the decisive difference is what happens when a participant crashes right
// after voting Yes.
//
//	go run ./examples/atomiccommit
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/nbac"
	"repro/internal/trace"
)

func main() {
	n := 4
	fmt.Printf("Non-blocking atomic commit, %d participants, all vote Yes, one crash.\n\n", n)

	fmt.Println("Worst-case outcomes by crash timing:")
	fmt.Printf("  %-22s  %-14s  %s\n", "scenario", "RS (from SS)", "RWS (from SP)")
	for _, sc := range nbac.Scenarios() {
		out, err := nbac.WorstCase(sc, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s  %-14s  %s\n", sc,
			nbac.DecisionString(decisionOf(out.RSCommit)),
			nbac.DecisionString(decisionOf(out.RWSCommit)))
	}

	fmt.Println("\nThe separating scenario in detail — the participant votes Yes,")
	fmt.Println("completes its broadcast step, then crashes:")
	out, err := nbac.WorstCase(nbac.CrashAfterVoting, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nIn RS, message synchrony already delivered the vote: COMMIT.")
	fmt.Print(trace.RenderRun(out.RSRun))
	fmt.Println("\nIn RWS, the vote can be pending — suspected before delivered: ABORT.")
	fmt.Print(trace.RenderRun(out.RWSRun))

	rates, err := repro.CommitRates(n, 2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRandomized commit rates (matched seeds, all-Yes votes): %s\n", rates)
	fmt.Println("The synchronous model turns \"crashed after voting\" into COMMIT;")
	fmt.Println("the failure-detector model cannot — the paper's efficiency corollary.")
}

func decisionOf(commit bool) repro.Value {
	if commit {
		return nbac.Commit
	}
	return nbac.Abort
}
