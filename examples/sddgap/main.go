// sddgap demonstrates the paper's Section 3 solvability separation: the
// Strongly Dependent Decision problem is solvable in the synchronous model
// SS — the Φ+1+Δ protocol works under every schedule and crash timing — yet
// unsolvable with a perfect failure detector (Theorem 3.1): the mechanized
// indistinguishability adversary refutes every candidate protocol.
//
//	go run ./examples/sddgap
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/model"
	"repro/internal/sdd"
	"repro/internal/step"
	"repro/internal/trace"
)

func main() {
	// Part 1: SDD in SS. p1 (input 1) sends its value in its first step;
	// p2 waits Φ+1+Δ of its own steps. Sweep the sender's crash over every
	// early step: validity holds in every run.
	phi, delta := 2, 2
	fmt.Printf("SDD in SS (Φ=%d, Δ=%d): sweeping p1's crash time\n", phi, delta)
	for crashStep := 0; crashStep <= 6; crashStep++ {
		alg := repro.SDDInSS(phi, delta)
		eng, err := step.NewEngine(alg, []model.Value{1, 0})
		if err != nil {
			log.Fatal(err)
		}
		sched := step.NewSSScheduler(phi, delta, 42, step.StopWhenDecided(model.Singleton(sdd.DefaultObserver)))
		if crashStep > 0 {
			sched.CrashAtStep = map[model.ProcessID]int{sdd.DefaultSender: crashStep}
		}
		tr, err := eng.Run(sched, 10000)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ok"
		if bad := sdd.FirstViolation(tr, sdd.Spec{Sender: sdd.DefaultSender, Observer: sdd.DefaultObserver, Input: 1}); bad != nil {
			verdict = bad.String()
		}
		label := "no crash"
		if crashStep > 0 {
			label = fmt.Sprintf("p1 crashes before global step %d", crashStep)
		}
		fmt.Printf("  %-36s → p2 decides %d at its step %d  [%s]\n",
			label, int64(tr.DecidedValue[sdd.DefaultObserver]), tr.DecidedAtLocal[sdd.DefaultObserver], verdict)
	}

	// Part 2: SDD in SP. Theorem 3.1's adversary constructs, for any
	// deterministic protocol, a pair of indistinguishable runs forcing a
	// validity violation. Run it against every natural candidate.
	fmt.Println("\nSDD in SP (Theorem 3.1's mechanized adversary):")
	for _, cand := range repro.SDDCandidates() {
		ref, err := repro.RefuteSDDInSP(cand, 1000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s REFUTED (%v): %s\n", cand.Name(), ref.Kind, ref.Detail)
	}

	// Show one witness run in full: the observer suspects the crashed
	// sender and decides 0 while the sender's message — sent in its one and
	// only step — is still in flight.
	ref, err := repro.RefuteSDDInSP(sdd.NewReceiveOrSuspect(), 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwitness run for %s (sender input %d, observer decided %d):\n",
		ref.Algorithm, int64(ref.WitnessInput), int64(ref.StarvedDecision))
	fmt.Print(trace.RenderSteps(ref.Witness, 12))
}
