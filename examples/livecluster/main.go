// livecluster runs the paper's algorithms on real goroutines: an in-process
// bounded-delay network with heartbeat failure detection, a lock-step RS
// cluster, a receive-or-suspect RWS cluster, a TCP cluster on localhost,
// and — the finale — the §5.3 disagreement reproduced live, with real
// messages in flight while real timeouts fire.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"time"

	repro "repro"
	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/wire"
)

func report(label string, cr *repro.ClusterResult) {
	v, status := cr.Agreement()
	fmt.Printf("--- %s (elapsed %v)\n", label, cr.Elapsed.Round(time.Millisecond))
	for i := 1; i < len(cr.Results); i++ {
		r := cr.Results[i]
		switch {
		case r.Crashed:
			if r.Decided {
				fmt.Printf("  p%d: CRASHED after deciding %d at round %d\n", i, int64(r.Decision), r.DecidedAt)
			} else {
				fmt.Printf("  p%d: CRASHED undecided\n", i)
			}
		case r.Decided:
			fmt.Printf("  p%d: decided %d at round %d\n", i, int64(r.Decision), r.DecidedAt)
		default:
			fmt.Printf("  p%d: undecided\n", i)
		}
	}
	switch status {
	case repro.AgreementReached:
		fmt.Printf("  agreement: YES (value %d), false suspicions: %d\n\n", int64(v), cr.FalseSuspicions)
	case repro.AgreementViolated:
		fmt.Printf("  agreement: *** VIOLATED ***, false suspicions: %d\n\n", cr.FalseSuspicions)
	default:
		fmt.Printf("  agreement: no decisions, false suspicions: %d\n\n", cr.FalseSuspicions)
	}
}

func main() {
	// 1. Lock-step RS over in-process channels: A1 decides in one round.
	cr, err := repro.RunLive(repro.A1(), repro.ClusterConfig{
		Kind: repro.RS, Initial: []repro.Value{9, 1, 5}, T: 1,
		RoundDuration: 15 * time.Millisecond, MaxRounds: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("A1 over lock-step RS (goroutines + channels)", cr)

	// 2. RWS with live heartbeat failure detection; p1 crashes silently.
	cr, err = repro.RunLive(repro.FloodSetWS(), repro.ClusterConfig{
		Kind: repro.RWS, Initial: []repro.Value{0, 5, 9}, T: 1,
		Crashes: map[repro.ProcessID]runtime.CrashPlan{1: {Round: 1, Reach: 0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	report("FloodSetWS over receive-or-suspect RWS, p1 crashes before voting", cr)

	// 3. The same consensus over real TCP connections on localhost.
	tcp, err := runtime.NewTCPNetwork(3)
	if err != nil {
		log.Fatal(err)
	}
	cr, err = repro.RunLive(repro.FloodSet(), repro.ClusterConfig{
		Kind: repro.RS, Initial: []repro.Value{4, 2, 7}, T: 1,
		RoundDuration: 30 * time.Millisecond, Network: tcp,
	})
	if err != nil {
		log.Fatal(err)
	}
	report("FloodSet over TCP (127.0.0.1 mesh)", cr)

	// 4. The §5.3 disagreement, live: p1's A1 value messages crawl (300ms)
	// while heartbeats are prompt, p1 decides via self-delivery and dies;
	// the survivors' detectors fire first and they decide p2's value.
	slow := func(from, to model.ProcessID, data []byte) time.Duration {
		env, err := wire.Decode(data)
		if err == nil && from == 1 && env.Kind == wire.KindA1Val {
			return 300 * time.Millisecond
		}
		return 500 * time.Microsecond
	}
	nw := runtime.NewChanNetwork(3, runtime.ChanConfig{Delay: slow})
	cr, err = repro.RunLive(repro.A1(), repro.ClusterConfig{
		Kind: repro.RWS, Initial: []repro.Value{3, 1, 2}, T: 1,
		Network: nw,
		Crashes: map[repro.ProcessID]runtime.CrashPlan{1: {Round: 2, Reach: 0}},
	})
	if err != nil {
		log.Fatal(err)
	}
	report("A1 transplanted to live RWS — the §5.3 scenario", cr)
	fmt.Println("The last run shows why the paper's Λ lower bound is not an abstract")
	fmt.Println("artifact: with only a perfect failure detector, deciding in round 1")
	fmt.Println("costs uniform agreement the moment messages race timeouts.")
}
