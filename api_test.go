package repro

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestQuickConsensusRun(t *testing.T) {
	run, err := Run(RS, FloodSet(), []Value{4, 2, 7}, 1, NoFailures)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range CheckConsensus(run) {
		if !res.OK {
			t.Fatalf("violation: %s", res)
		}
	}
	if run.DecisionOf[1] != 2 {
		t.Errorf("decided %d, want 2", run.DecisionOf[1])
	}
	if !strings.Contains(RenderRun(run), "latency degree") {
		t.Error("RenderRun missing latency line")
	}
}

func TestAlgorithmsSuite(t *testing.T) {
	if len(Algorithms()) != 7 {
		t.Errorf("suite size = %d, want 7", len(Algorithms()))
	}
	names := map[string]bool{}
	for _, a := range Algorithms() {
		names[a.Name()] = true
	}
	for _, want := range []string{"FloodSet", "FloodSetWS", "C_OptFloodSet", "C_OptFloodSetWS", "F_OptFloodSet", "F_OptFloodSetWS", "A1"} {
		if !names[want] {
			t.Errorf("missing algorithm %q", want)
		}
	}
}

func TestLatencyAPI(t *testing.T) {
	d, err := Latency(RS, A1(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Lambda != 1 {
		t.Errorf("Λ(A1) = %d, want 1", d.Lambda)
	}
}

func TestExploreAPI(t *testing.T) {
	count := 0
	err := Explore(RS, FloodSet(), []Value{0, 1, 0}, 1, func(run *RoundRun) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 25 {
		t.Errorf("explored %d runs, want 25", count)
	}
}

func TestRefutersAPI(t *testing.T) {
	ref, err := RefuteRoundOneRWS(A1(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Run == nil {
		t.Error("no witness run")
	}
	for _, cand := range SDDCandidates() {
		spRef, err := RefuteSDDInSP(cand, 500)
		if err != nil {
			t.Fatal(err)
		}
		if spRef.Witness == nil {
			t.Errorf("%s: no witness", cand.Name())
		}
	}
}

func TestNBACAPI(t *testing.T) {
	rates, err := CommitRates(4, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rates.RSRate() <= rates.RWSRate() {
		t.Errorf("rates: %s — expected the RS > RWS gap", rates)
	}
}

func TestRunLiveAPI(t *testing.T) {
	cr, err := RunLive(FloodSetWS(), ClusterConfig{
		Kind: RWS, Initial: []Value{4, 2, 7}, T: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, st := cr.Agreement(); st != AgreementReached || v != 2 {
		t.Errorf("live agreement = (%d,%v), want (2,reached)", v, st)
	}
	// Every live run carries its transport cost accounting.
	var cost *CostSummary = cr.Cost
	if cost == nil || cost.Decisions != 3 || cost.DataMessagesPerDecision <= 0 {
		t.Errorf("cost summary = %+v, want 3 decisions with positive data cost", cost)
	}
	var links *LinkTelemetry = cr.Links
	if links == nil || links.Totals().MsgsSent == 0 {
		t.Error("no per-link telemetry on the cluster result")
	}
}

func TestRunLiveEngineAPI(t *testing.T) {
	res, err := RunLiveEngine(FloodSetWS(), EngineConfig{
		Instances: 8, N: 3, T: 1,
		Initial: func(inst int, id ProcessID) Value { return Value(inst % 3) },
		Batch:   BatcherConfig{MaxBatch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var er *EngineResult = res
	if got := er.DecidedCount(); got != 8*3 {
		t.Fatalf("DecidedCount = %d, want 24", got)
	}
	for inst := 0; inst < 8; inst++ {
		v, st := er.InstanceAgreement(inst)
		if st != AgreementReached || v != Value(inst%3) {
			t.Errorf("instance %d: agreement (%d,%v), want (%d,reached)", inst, v, st, inst%3)
		}
	}
	// The shared detector's control cost is split out of the transport
	// accounting — the figure the engine amortizes across instances.
	if er.Cost == nil || er.Cost.Decisions != 24 || er.Cost.DataMessagesPerDecision <= 0 {
		t.Errorf("engine cost summary = %+v, want 24 decisions with positive data cost", er.Cost)
	}
	if er.UnknownInstanceDrops != 0 {
		t.Errorf("UnknownInstanceDrops = %d on a clean run", er.UnknownInstanceDrops)
	}
}

func TestLiveEngineAPI(t *testing.T) {
	eng, err := StartLiveEngine(FloodSetWS(), EngineConfig{
		N: 3, T: 1,
		HeartbeatPeriod: 2 * time.Millisecond,
		SuspectTimeout:  500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	var inst *LiveInstance
	inst, err = eng.OpenValue(9)
	if err != nil {
		t.Fatal(err)
	}
	<-inst.Done()
	out, ok := inst.Outcome()
	if !ok {
		t.Fatal("Outcome not available after Done closed")
	}
	var _ InstanceOutcome = out
	if v, st := out.Agreement(); st != AgreementReached || v != 9 {
		t.Fatalf("on-demand instance agreement = (%d,%v), want (9,reached)", v, st)
	}
	var stats LiveEngineStats = eng.Stats()
	if stats.Completed != 1 || stats.AgreementReached != 1 {
		t.Errorf("engine stats = %+v, want 1 completed/reached", stats)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestServingAPI(t *testing.T) {
	srv, err := NewServer(ServeConfig{
		N: 3, T: 1,
		HeartbeatPeriod: 2 * time.Millisecond,
		SuspectTimeout:  500 * time.Millisecond,
		Conform:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := RunServeLoad(context.Background(), LoadConfig{
		BaseURL:      ts.URL,
		Clients:      4,
		Keys:         2,
		OpsPerClient: 5,
		Seed:         2,
		RecordOps:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 20 || rep.CASOk == 0 {
		t.Fatalf("load report = %s, want 20 ops with decided CAS", rep)
	}

	client := &ServeClient{BaseURL: ts.URL}
	chains := make(map[string][]KVVersion)
	for _, key := range []string{"k000", "k001"} {
		hist, err := client.History(context.Background(), key)
		if errors.Is(err, ErrKeyNotFound) {
			continue // the seeded workload may never have written this key
		}
		if err != nil {
			t.Fatalf("History(%s): %v", key, err)
		}
		chains[key] = hist
	}
	if err := CheckLinearizable(chains, rep.Records); err != nil {
		t.Fatalf("linearizability: %v", err)
	}
}

// TestRequestTracingAPI drives the root-package view of PR 10: the daemon
// samples a request, the debug surface returns its record, and the
// exported verifier confirms the exact-tiling invariants.
func TestRequestTracingAPI(t *testing.T) {
	srv, err := NewServer(ServeConfig{
		N: 3, T: 1,
		HeartbeatPeriod: 2 * time.Millisecond,
		SuspectTimeout:  500 * time.Millisecond,
		TraceSample:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx := context.Background()
	client := &ServeClient{BaseURL: ts.URL}
	if _, err := client.CAS(ctx, "api", nil, 3); err != nil {
		t.Fatal(err)
	}
	var dt *ServeDebugTraces
	if dt, err = client.DebugTraces(ctx); err != nil {
		t.Fatal(err)
	}
	var sampling ServeSamplingStats = dt.Sampling
	if sampling.Rate != 1 || sampling.Sampled == 0 {
		t.Fatalf("sampling = %+v, want rate 1 with sampled requests", sampling)
	}
	var id string
	for _, r := range dt.Recent {
		if r.Route == "kv-cas" {
			id = r.ID
		}
	}
	var rec *RequestTrace
	if rec, err = client.DebugTrace(ctx, id); err != nil {
		t.Fatal(err)
	}
	var phases RequestPhases = rec.Phases
	if phases.Total() != rec.TotalNS {
		t.Fatalf("phases %+v do not tile total %d", phases, rec.TotalNS)
	}
	if err := VerifyRequestTrace(rec); err != nil {
		t.Fatalf("VerifyRequestTrace: %v", err)
	}
	var keys []ServeKeyStats
	if keys, err = client.DebugKeys(ctx, 0); err != nil || len(keys) == 0 {
		t.Fatalf("DebugKeys = %v rows, err %v", len(keys), err)
	}
}

func TestAgreementStatusAPI(t *testing.T) {
	for st, want := range map[AgreementStatus]string{
		AgreementNone:     "none",
		AgreementReached:  "reached",
		AgreementViolated: "violated",
	} {
		if got := st.String(); got != want {
			t.Errorf("AgreementStatus(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestFlightRecorderAPI(t *testing.T) {
	rec := NewFlightRecorder(64, nil)
	cr, err := RunLive(FloodSet(), ClusterConfig{
		Kind: RS, Initial: []Value{4, 2, 7}, T: 1,
		Flight: rec, Events: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, st := cr.Agreement(); st != AgreementReached {
		t.Fatalf("agreement verdict %v, want reached", st)
	}
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	if err := rec.DumpTo(path); err != nil {
		t.Fatal(err)
	}
	dump, err := ReadFlightDump(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Records) == 0 {
		t.Fatal("empty flight dump")
	}
	var sends, decides int
	for _, r := range dump.Records {
		var rec FlightRecord = r
		switch rec.Kind {
		case "send":
			sends++
		case "decide":
			decides++
		}
	}
	if sends == 0 || decides != 3 {
		t.Errorf("flight dump has %d sends and %d decides, want >0 and 3", sends, decides)
	}
}

func TestExperimentsAPI(t *testing.T) {
	if len(Experiments()) != 15 {
		t.Errorf("experiments = %d, want 15", len(Experiments()))
	}
}

func TestDetectorZooAPI(t *testing.T) {
	specs := DetectorSpecs()
	if len(specs) != 4 {
		t.Fatalf("zoo size = %d, want 4", len(specs))
	}
	if specs[0].Name != "heartbeat" {
		t.Errorf("first spec = %q, want the default heartbeat", specs[0].Name)
	}
	scores, err := RaceDetectors(DetectorRace{
		Detectors: []string{"heartbeat"},
		Seed:      3, CrashAt: 30 * time.Millisecond, Window: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 1 || !scores[0].Detected {
		t.Fatalf("race scores = %+v", scores)
	}
	if card := RenderDetectorScores(scores); !strings.Contains(card, "heartbeat") {
		t.Errorf("scorecard missing the detector row:\n%s", card)
	}
}

func TestAtomicBroadcastAPI(t *testing.T) {
	bc, err := NewAtomicBroadcast(RWS, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 3; id++ {
		if err := bc.Submit(ProcessID(id), MsgIDFor(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bc.Drain(nil, 10); err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 3; p++ {
		if len(bc.Logs()[p]) != 3 {
			t.Fatalf("p%d log = %v", p, bc.Logs()[p])
		}
	}
}

func TestObservabilityAPI(t *testing.T) {
	reg := NewMetricsRegistry()
	var buf bytes.Buffer
	run, err := RunObserved(RWS, FloodSetWS(), []Value{4, 2, 7}, 1,
		RandomAdversary(11, 0.3, 0.3), reg, NewEventLog(&buf))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counter(`ssfd_rounds_runs_total{model="RWS"}`); got != 1 {
		t.Errorf("runs counter = %d, want 1", got)
	}
	if got := snap.Counter(`ssfd_rounds_messages_delivered_total{model="RWS"}`); got != int64(run.TotalMessages()) {
		t.Errorf("delivered counter = %d, want %d", got, run.TotalMessages())
	}

	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	narrative, err := RenderEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	if narrative != RenderRun(run) {
		t.Errorf("RenderEvents disagrees with RenderRun:\n%s\n--vs--\n%s", narrative, RenderRun(run))
	}
	replayed, err := RenderEvents(EventsFromRun(run))
	if err != nil {
		t.Fatal(err)
	}
	if replayed != narrative {
		t.Error("EventsFromRun replay disagrees with the live event stream")
	}
}

func TestServeMetricsAPI(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /metrics = %d, want 200", resp.StatusCode)
	}
}

func TestCausalTracingAPI(t *testing.T) {
	run, err := Run(RWS, FloodSetWS(), []Value{3, 1, 4}, 1, RandomAdversary(42, 0.3, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	tr := SynthesizeTrace(run)
	attr := Attribute(tr)
	if err := attr.CheckSums(); err != nil {
		t.Fatal(err)
	}
	if err := ReconcileTrace(attr, run); err != nil {
		t.Fatal(err)
	}

	var chrome, html bytes.Buffer
	if err := WriteChromeTrace(tr, &chrome); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTMLTimeline(tr, &html); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(&chrome)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(tr.Spans) || len(back.Points) != len(tr.Points) {
		t.Errorf("round trip lost events: %d/%d spans, %d/%d points",
			len(back.Spans), len(tr.Spans), len(back.Points), len(tr.Points))
	}

	// Live tracing composes with conformance checking: the tracer rides the
	// cluster's event chain and the live attribution reconciles against the
	// engine replay of the projected schedule.
	tracer := NewCausalTracer("FloodSetWS", "RWS", 3, 1, nil)
	rep, _, err := CheckLive(FloodSetWS(), ClusterConfig{
		Kind: RWS, Initial: []Value{3, 1, 4}, T: 1,
		Metrics: NewMetricsRegistry(), Events: tracer,
	}, ConformOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("live run does not conform:\n%s", rep)
	}
	liveAttr := Attribute(tracer.Finish())
	if err := liveAttr.CheckSums(); err != nil {
		t.Fatal(err)
	}
	if err := ReconcileTrace(liveAttr, rep.Run); err != nil {
		t.Fatal(err)
	}
}
