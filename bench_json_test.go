package repro

// TestWriteExploreBenchJSON distills the explorer benchmark into a
// machine-readable perf artifact, BENCH_explore.json, so the explorer's
// throughput trajectory is tracked over time. It is gated behind the
// BENCH_EXPLORE_JSON environment variable (the value is the output path)
// because a timing artifact has no pass/fail semantics — CI's bench job and
// developers regenerate it explicitly:
//
//	BENCH_EXPLORE_JSON=BENCH_explore.json go test -run WriteExploreBenchJSON .

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	gort "runtime"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/runtime"
	"repro/internal/serve"
)

type exploreBenchRow struct {
	Workers     int     `json:"workers"` // 0 = sequential path
	Runs        int     `json:"runs"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_run"`
	Speedup     float64 `json:"speedup_vs_1_worker"`
}

// exploreCostRow records one live cluster's transport cost per decision.
// The data_* figures count only round/protocol traffic (heartbeats
// excluded), so they are deterministic at fixed topology and comparable
// across machines; the totals include the failure detector's heartbeats,
// whose count depends on run wall-clock and is therefore informational
// only (ssfd-bench -compare never enforces a tolerance on them).
type exploreCostRow struct {
	Algorithm               string  `json:"algorithm"`
	Model                   string  `json:"model"`
	Decisions               int     `json:"decisions"`
	MessagesPerDecision     float64 `json:"messages_per_decision"`
	BytesPerDecision        float64 `json:"bytes_per_decision"`
	DataMessagesPerDecision float64 `json:"data_messages_per_decision"`
	DataBytesPerDecision    float64 `json:"data_bytes_per_decision"`
}

// engineBenchRow records one shared-mesh engine run: Instances consensus
// instances multiplexed over a 5-node mesh with one failure detector per
// node. The machine-independent columns — allocs and data bytes/messages
// per decision — are what ssfd-bench -compare enforces; the amortization
// story is in control_messages_per_decision, which falls toward zero as
// the instance count grows (one detector's heartbeats spread over every
// instance's decisions). Decisions/sec is informational only: on the 1-CPU
// CI container a wall-clock speedup expectation would be unfalsifiable.
type engineBenchRow struct {
	Instances                    int     `json:"instances"`
	Nodes                        int     `json:"nodes"`
	Groups                       int     `json:"groups"`
	Decisions                    int     `json:"decisions"`
	ElapsedMS                    float64 `json:"elapsed_ms"`
	DecisionsPerSec              float64 `json:"decisions_per_sec"`
	AllocsPerDecision            float64 `json:"allocs_per_decision"`
	TransportMessagesPerDecision float64 `json:"transport_messages_per_decision"`
	DataMessagesPerDecision      float64 `json:"data_messages_per_decision"`
	DataBytesPerDecision         float64 `json:"data_bytes_per_decision"`
	ControlMessagesPerDecision   float64 `json:"control_messages_per_decision"`
	ControlBytesPerDecision      float64 `json:"control_bytes_per_decision"`
	WaitTimeouts                 int64   `json:"wait_timeouts"`
	UnknownInstanceDrops         int64   `json:"unknown_instance_drops"`
}

// serveBenchRow records one closed-loop load run against an in-process
// ssfd-serve HTTP stack: clients concurrent clients doing a read/CAS mix
// over a shared key space, every CAS landing as one consensus instance on
// the live mesh. Throughput and latency are wall-clock quantities, so
// ssfd-bench -compare gates them only between same-CPU artifacts (and
// never asserts a speedup — this is a 1-CPU container); the errors column
// is machine-independent and must be zero in any new artifact.
type serveBenchRow struct {
	Clients      int     `json:"clients"`
	Keys         int     `json:"keys"`
	DurationMS   float64 `json:"duration_ms"`
	Ops          int64   `json:"ops"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	Reads        int64   `json:"reads"`
	CASOk        int64   `json:"cas_ok"`
	CASConflicts int64   `json:"cas_conflicts"`
	Errors       int64   `json:"errors"`
	P50US        int64   `json:"p50_us"`
	P95US        int64   `json:"p95_us"`
	P99US        int64   `json:"p99_us"`
}

// engineBaseline is the pre-engine world the engine rows are measured
// against: a dedicated single-instance cluster paying for its own failure
// detector. Its control share per decision is what sharing ONE detector
// across every instance amortizes away.
type engineBaseline struct {
	ControlMessagesPerDecision float64 `json:"control_messages_per_decision"`
	ControlBytesPerDecision    float64 `json:"control_bytes_per_decision"`
}

type exploreBenchReport struct {
	Sweep          string            `json:"sweep"`
	CPUs           int               `json:"cpus"` // speedup is bounded by this
	GoVersion      string            `json:"go_version"`
	Rows           []exploreBenchRow `json:"rows"`
	CostRows       []exploreCostRow  `json:"cost_rows,omitempty"`
	EngineBaseline *engineBaseline   `json:"engine_dedicated_baseline,omitempty"`
	EngineRows     []engineBenchRow  `json:"engine_rows,omitempty"`
	ServeRows      []serveBenchRow   `json:"serve_rows,omitempty"`
}

func TestWriteExploreBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_EXPLORE_JSON")
	if path == "" {
		t.Skip("set BENCH_EXPLORE_JSON=<path> to write the explorer perf artifact")
	}

	initial := []model.Value{0, 1, 1, 0}
	const tol = 2
	measure := func(workers int) exploreBenchRow {
		// One warm-up pass primes the enumeration pools, then the timed
		// pass measures steady-state throughput and allocation.
		if _, err := explore.Runs(rounds.RWS, consensus.FloodSetWS{}, initial, tol,
			explore.Options{Workers: workers}, nil); err != nil {
			t.Fatal(err)
		}
		var before, after gort.MemStats
		gort.GC()
		gort.ReadMemStats(&before)
		start := time.Now()
		stats, err := explore.Runs(rounds.RWS, consensus.FloodSetWS{}, initial, tol,
			explore.Options{Workers: workers}, nil)
		elapsed := time.Since(start)
		gort.ReadMemStats(&after)
		if err != nil {
			t.Fatal(err)
		}
		return exploreBenchRow{
			Workers:     workers,
			Runs:        stats.Runs,
			ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
			RunsPerSec:  float64(stats.Runs) / elapsed.Seconds(),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(stats.Runs),
		}
	}

	report := exploreBenchReport{
		Sweep:     "FloodSetWS/RWS n=4 t=2 (full run space)",
		CPUs:      gort.NumCPU(),
		GoVersion: gort.Version(),
	}
	for _, w := range []int{0, 1, 2, 4} {
		report.Rows = append(report.Rows, measure(w))
	}
	var base float64
	for _, r := range report.Rows {
		if r.Workers == 1 {
			base = r.RunsPerSec
		}
	}
	for i := range report.Rows {
		report.Rows[i].Speedup = report.Rows[i].RunsPerSec / base
	}

	// Transport cost baselines: one failure-free live cluster (n=3, t=1)
	// per algorithm/model pair. The data_* columns are what -compare
	// enforces; see exploreCostRow.
	costCases := []struct {
		name string
		alg  rounds.Algorithm
		kind rounds.ModelKind
	}{
		{"FloodSet", consensus.FloodSet{}, rounds.RS},
		{"C_OptFloodSet", consensus.COptFloodSet{}, rounds.RS},
		{"A1", consensus.A1{}, rounds.RS},
		{"FloodSetWS", consensus.FloodSetWS{}, rounds.RWS},
		{"C_OptFloodSetWS", consensus.COptFloodSetWS{}, rounds.RWS},
		{"A1", consensus.A1{}, rounds.RWS},
	}
	for _, cc := range costCases {
		cr, err := runtime.RunCluster(cc.alg, runtime.ClusterConfig{
			Kind: cc.kind, Initial: []model.Value{0, 1, 2}, T: 1,
			Metrics: obs.NewRegistry(), RWSWaitBound: 150 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("cost baseline %s/%v: %v", cc.name, cc.kind, err)
		}
		if cr.Cost == nil || cr.Cost.Decisions == 0 {
			t.Fatalf("cost baseline %s/%v: no cost summary (%+v)", cc.name, cc.kind, cr.Cost)
		}
		report.CostRows = append(report.CostRows, exploreCostRow{
			Algorithm:               cc.name,
			Model:                   cc.kind.String(),
			Decisions:               cr.Cost.Decisions,
			MessagesPerDecision:     cr.Cost.MessagesPerDecision,
			BytesPerDecision:        cr.Cost.BytesPerDecision,
			DataMessagesPerDecision: cr.Cost.DataMessagesPerDecision,
			DataBytesPerDecision:    cr.Cost.DataBytesPerDecision,
		})
	}

	// Shared-mesh engine sweep: the same 5-node mesh and per-node detector
	// serve 1, 1k and 100k concurrent instances.
	report.EngineBaseline = measureDedicatedBaseline(t)
	for _, inst := range []int{1, 1000, 100000} {
		report.EngineRows = append(report.EngineRows, measureEngine(t, inst))
	}
	// The assertions below are the 1-CPU-honest ones: never a wall-clock
	// speedup, never monotonicity between adjacent large rows (both would
	// be noise on this container). What must hold:
	//
	//  1. Amortization: at scale, the shared detector's control share per
	//     decision is below what a dedicated cluster pays per decision for
	//     its own detector — the heartbeat/control bytes fall as instance
	//     count grows from the dedicated (one-instance-per-mesh) baseline.
	//  2. Alloc win: per-decision allocations fall from the 1-instance row
	//     (where the engine's fixed setup is spread over n decisions) to
	//     the 100k row (where it vanishes into the noise).
	//  3. Message-count win: batching puts many data frames into one
	//     transport packet, so transport messages per decision land well
	//     below data messages per decision.
	//  4. Determinism: failure-free data messages per decision are a
	//     constant of the algorithm, identical across instance counts.
	first := report.EngineRows[0]
	last := report.EngineRows[len(report.EngineRows)-1]
	for _, row := range report.EngineRows[1:] {
		if row.ControlMessagesPerDecision >= report.EngineBaseline.ControlMessagesPerDecision {
			t.Errorf("no amortization at %d instances: %.4f control msgs/decision vs dedicated baseline %.2f",
				row.Instances, row.ControlMessagesPerDecision, report.EngineBaseline.ControlMessagesPerDecision)
		}
		if row.ControlBytesPerDecision >= report.EngineBaseline.ControlBytesPerDecision {
			t.Errorf("no amortization at %d instances: %.2f control B/decision vs dedicated baseline %.1f",
				row.Instances, row.ControlBytesPerDecision, report.EngineBaseline.ControlBytesPerDecision)
		}
	}
	if last.AllocsPerDecision >= first.AllocsPerDecision {
		t.Errorf("no alloc win: %.1f allocs/decision at %d instances vs %.1f at %d",
			last.AllocsPerDecision, last.Instances, first.AllocsPerDecision, first.Instances)
	}
	if last.TransportMessagesPerDecision >= last.DataMessagesPerDecision {
		t.Errorf("no batching win: %.2f transport msgs/decision vs %.2f data frames/decision at %d instances",
			last.TransportMessagesPerDecision, last.DataMessagesPerDecision, last.Instances)
	}
	if diff := last.DataMessagesPerDecision - first.DataMessagesPerDecision; diff > 0.01 || diff < -0.01 {
		t.Errorf("data msgs/decision not constant across the sweep: %.2f at %d vs %.2f at %d",
			first.DataMessagesPerDecision, first.Instances, last.DataMessagesPerDecision, last.Instances)
	}

	// Serving sweep: the daemon's HTTP/KV path end to end. Each row drives
	// real HTTP requests through the full handler, KV chain and engine; the
	// row's conformance and error columns must be clean at generation time,
	// so a committed artifact always describes a correct serving run.
	for _, clients := range []int{8, 32} {
		report.ServeRows = append(report.ServeRows, measureServe(t, clients))
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d cpus)", path, report.CPUs)
}

// measureDedicatedBaseline measures the pre-engine deployment: one
// dedicated RWS cluster per consensus instance, each with its own per-node
// detectors. Its control cost per decision is the engine's amortization
// baseline. Three runs, keeping the max: a single run on a fast machine
// can finish inside the first heartbeat period and understate the
// dedicated cost (zero would make the baseline comparison vacuous).
func measureDedicatedBaseline(t *testing.T) *engineBaseline {
	t.Helper()
	base := &engineBaseline{}
	for i := 0; i < 3; i++ {
		cr, err := runtime.RunCluster(consensus.FloodSetWS{}, runtime.ClusterConfig{
			Kind: rounds.RWS, Initial: []model.Value{0, 1, 2, 3, 4}, T: 1,
			HeartbeatPeriod: 2 * time.Millisecond,
			Metrics:         obs.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("dedicated baseline: %v", err)
		}
		if cr.Cost == nil || cr.Cost.Decisions == 0 {
			t.Fatal("dedicated baseline: no cost summary")
		}
		if cr.Cost.ControlMessagesPerDecision > base.ControlMessagesPerDecision {
			base.ControlMessagesPerDecision = cr.Cost.ControlMessagesPerDecision
			base.ControlBytesPerDecision = cr.Cost.ControlBytesPerDecision
		}
	}
	if base.ControlMessagesPerDecision == 0 {
		t.Fatal("dedicated baseline ran without a single heartbeat; raise its run length")
	}
	return base
}

// measureEngine runs one shared-mesh engine sweep point: inst instances of
// FloodSetWS on a 5-node mesh, one heartbeat detector per node, batched
// round traffic. Every instance must decide on every node — a benchmark
// that lost instances would be measuring the wrong thing.
func measureEngine(t *testing.T, inst int) engineBenchRow {
	t.Helper()
	const n, tol = 5, 1
	reg := obs.NewRegistry()
	var before, after gort.MemStats
	gort.GC()
	gort.ReadMemStats(&before)
	start := time.Now()
	res, err := runtime.RunEngine(consensus.FloodSetWS{}, runtime.EngineConfig{
		Instances: inst, N: n, T: tol,
		Initial: func(i int, id model.ProcessID) model.Value {
			return model.Value((i + int(id)) % 7)
		},
		HeartbeatPeriod: 2 * time.Millisecond,
		SuspectTimeout:  time.Second,
		Batch:           runtime.BatcherConfig{Metrics: reg},
		Metrics:         reg,
	})
	elapsed := time.Since(start)
	gort.ReadMemStats(&after)
	if err != nil {
		t.Fatalf("engine %d instances: %v", inst, err)
	}
	if got := res.DecidedCount(); got != inst*n {
		t.Fatalf("engine %d instances: %d/%d decisions", inst, got, inst*n)
	}
	return engineBenchRow{
		Instances:                    inst,
		Nodes:                        n,
		Groups:                       gort.GOMAXPROCS(0),
		Decisions:                    res.Cost.Decisions,
		ElapsedMS:                    float64(elapsed.Microseconds()) / 1000,
		DecisionsPerSec:              float64(res.Cost.Decisions) / elapsed.Seconds(),
		AllocsPerDecision:            float64(after.Mallocs-before.Mallocs) / float64(res.Cost.Decisions),
		TransportMessagesPerDecision: res.Cost.MessagesPerDecision,
		DataMessagesPerDecision:      res.Cost.DataMessagesPerDecision,
		DataBytesPerDecision:         res.Cost.DataBytesPerDecision,
		ControlMessagesPerDecision:   res.Cost.ControlMessagesPerDecision,
		ControlBytesPerDecision:      res.Cost.ControlBytesPerDecision,
		WaitTimeouts:                 res.WaitTimeouts,
		UnknownInstanceDrops:         res.UnknownInstanceDrops,
	}
}

// measureServe runs one serving sweep point: clients closed-loop clients
// against a fresh 3-node daemon over a real HTTP listener. Conformance is
// attached and must come back clean — a throughput number from an unsafe
// run would be worse than no number.
func measureServe(t *testing.T, clients int) serveBenchRow {
	t.Helper()
	srv, err := serve.New(serve.Config{
		N: 3, T: 1,
		HeartbeatPeriod: 2 * time.Millisecond,
		SuspectTimeout:  time.Second,
		Conform:         true,
		ProposeTimeout:  60 * time.Second,
		Metrics:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("serve sweep %d clients: %v", clients, err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		BaseURL:      ts.URL,
		Clients:      clients,
		Keys:         8,
		OpsPerClient: 20,
		ReadFraction: 0.5,
		Seed:         11,
	})
	if err != nil {
		t.Fatalf("serve sweep %d clients: %v", clients, err)
	}
	if rep.Errors != 0 || rep.Timeouts != 0 {
		t.Fatalf("serve sweep %d clients: %d errors, %d timeouts on a clean mesh", clients, rep.Errors, rep.Timeouts)
	}
	if rep.CASOk == 0 {
		t.Fatalf("serve sweep %d clients: no CAS operation decided", clients)
	}
	if sum := srv.Monitor().Summary(); !sum.Clean {
		t.Fatalf("serve sweep %d clients: conformance violation: %s", clients, sum.FirstViolation)
	}
	return serveBenchRow{
		Clients:      clients,
		Keys:         8,
		DurationMS:   float64(rep.Elapsed.Microseconds()) / 1000,
		Ops:          rep.Ops,
		OpsPerSec:    rep.OpsPerSec,
		Reads:        rep.Reads,
		CASOk:        rep.CASOk,
		CASConflicts: rep.CASConflicts,
		Errors:       rep.Errors + rep.Timeouts,
		P50US:        rep.LatencyUS.P50,
		P95US:        rep.LatencyUS.P95,
		P99US:        rep.LatencyUS.P99,
	}
}
