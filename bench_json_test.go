package repro

// TestWriteExploreBenchJSON distills the explorer benchmark into a
// machine-readable perf artifact, BENCH_explore.json, so the explorer's
// throughput trajectory is tracked over time. It is gated behind the
// BENCH_EXPLORE_JSON environment variable (the value is the output path)
// because a timing artifact has no pass/fail semantics — CI's bench job and
// developers regenerate it explicitly:
//
//	BENCH_EXPLORE_JSON=BENCH_explore.json go test -run WriteExploreBenchJSON .

import (
	"encoding/json"
	"os"
	gort "runtime"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/rounds"
)

type exploreBenchRow struct {
	Workers     int     `json:"workers"` // 0 = sequential path
	Runs        int     `json:"runs"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_run"`
	Speedup     float64 `json:"speedup_vs_1_worker"`
}

type exploreBenchReport struct {
	Sweep     string            `json:"sweep"`
	CPUs      int               `json:"cpus"` // speedup is bounded by this
	GoVersion string            `json:"go_version"`
	Rows      []exploreBenchRow `json:"rows"`
}

func TestWriteExploreBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_EXPLORE_JSON")
	if path == "" {
		t.Skip("set BENCH_EXPLORE_JSON=<path> to write the explorer perf artifact")
	}

	initial := []model.Value{0, 1, 1, 0}
	const tol = 2
	measure := func(workers int) exploreBenchRow {
		// One warm-up pass primes the enumeration pools, then the timed
		// pass measures steady-state throughput and allocation.
		if _, err := explore.Runs(rounds.RWS, consensus.FloodSetWS{}, initial, tol,
			explore.Options{Workers: workers}, nil); err != nil {
			t.Fatal(err)
		}
		var before, after gort.MemStats
		gort.GC()
		gort.ReadMemStats(&before)
		start := time.Now()
		stats, err := explore.Runs(rounds.RWS, consensus.FloodSetWS{}, initial, tol,
			explore.Options{Workers: workers}, nil)
		elapsed := time.Since(start)
		gort.ReadMemStats(&after)
		if err != nil {
			t.Fatal(err)
		}
		return exploreBenchRow{
			Workers:     workers,
			Runs:        stats.Runs,
			ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
			RunsPerSec:  float64(stats.Runs) / elapsed.Seconds(),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(stats.Runs),
		}
	}

	report := exploreBenchReport{
		Sweep:     "FloodSetWS/RWS n=4 t=2 (full run space)",
		CPUs:      gort.NumCPU(),
		GoVersion: gort.Version(),
	}
	for _, w := range []int{0, 1, 2, 4} {
		report.Rows = append(report.Rows, measure(w))
	}
	var base float64
	for _, r := range report.Rows {
		if r.Workers == 1 {
			base = r.RunsPerSec
		}
	}
	for i := range report.Rows {
		report.Rows[i].Speedup = report.Rows[i].RunsPerSec / base
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d cpus)", path, report.CPUs)
}
