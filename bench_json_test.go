package repro

// TestWriteExploreBenchJSON distills the explorer benchmark into a
// machine-readable perf artifact, BENCH_explore.json, so the explorer's
// throughput trajectory is tracked over time. It is gated behind the
// BENCH_EXPLORE_JSON environment variable (the value is the output path)
// because a timing artifact has no pass/fail semantics — CI's bench job and
// developers regenerate it explicitly:
//
//	BENCH_EXPLORE_JSON=BENCH_explore.json go test -run WriteExploreBenchJSON .

import (
	"encoding/json"
	"os"
	gort "runtime"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/runtime"
)

type exploreBenchRow struct {
	Workers     int     `json:"workers"` // 0 = sequential path
	Runs        int     `json:"runs"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	RunsPerSec  float64 `json:"runs_per_sec"`
	AllocsPerOp float64 `json:"allocs_per_run"`
	Speedup     float64 `json:"speedup_vs_1_worker"`
}

// exploreCostRow records one live cluster's transport cost per decision.
// The data_* figures count only round/protocol traffic (heartbeats
// excluded), so they are deterministic at fixed topology and comparable
// across machines; the totals include the failure detector's heartbeats,
// whose count depends on run wall-clock and is therefore informational
// only (ssfd-bench -compare never enforces a tolerance on them).
type exploreCostRow struct {
	Algorithm               string  `json:"algorithm"`
	Model                   string  `json:"model"`
	Decisions               int     `json:"decisions"`
	MessagesPerDecision     float64 `json:"messages_per_decision"`
	BytesPerDecision        float64 `json:"bytes_per_decision"`
	DataMessagesPerDecision float64 `json:"data_messages_per_decision"`
	DataBytesPerDecision    float64 `json:"data_bytes_per_decision"`
}

type exploreBenchReport struct {
	Sweep     string            `json:"sweep"`
	CPUs      int               `json:"cpus"` // speedup is bounded by this
	GoVersion string            `json:"go_version"`
	Rows      []exploreBenchRow `json:"rows"`
	CostRows  []exploreCostRow  `json:"cost_rows,omitempty"`
}

func TestWriteExploreBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_EXPLORE_JSON")
	if path == "" {
		t.Skip("set BENCH_EXPLORE_JSON=<path> to write the explorer perf artifact")
	}

	initial := []model.Value{0, 1, 1, 0}
	const tol = 2
	measure := func(workers int) exploreBenchRow {
		// One warm-up pass primes the enumeration pools, then the timed
		// pass measures steady-state throughput and allocation.
		if _, err := explore.Runs(rounds.RWS, consensus.FloodSetWS{}, initial, tol,
			explore.Options{Workers: workers}, nil); err != nil {
			t.Fatal(err)
		}
		var before, after gort.MemStats
		gort.GC()
		gort.ReadMemStats(&before)
		start := time.Now()
		stats, err := explore.Runs(rounds.RWS, consensus.FloodSetWS{}, initial, tol,
			explore.Options{Workers: workers}, nil)
		elapsed := time.Since(start)
		gort.ReadMemStats(&after)
		if err != nil {
			t.Fatal(err)
		}
		return exploreBenchRow{
			Workers:     workers,
			Runs:        stats.Runs,
			ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
			RunsPerSec:  float64(stats.Runs) / elapsed.Seconds(),
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(stats.Runs),
		}
	}

	report := exploreBenchReport{
		Sweep:     "FloodSetWS/RWS n=4 t=2 (full run space)",
		CPUs:      gort.NumCPU(),
		GoVersion: gort.Version(),
	}
	for _, w := range []int{0, 1, 2, 4} {
		report.Rows = append(report.Rows, measure(w))
	}
	var base float64
	for _, r := range report.Rows {
		if r.Workers == 1 {
			base = r.RunsPerSec
		}
	}
	for i := range report.Rows {
		report.Rows[i].Speedup = report.Rows[i].RunsPerSec / base
	}

	// Transport cost baselines: one failure-free live cluster (n=3, t=1)
	// per algorithm/model pair. The data_* columns are what -compare
	// enforces; see exploreCostRow.
	costCases := []struct {
		name string
		alg  rounds.Algorithm
		kind rounds.ModelKind
	}{
		{"FloodSet", consensus.FloodSet{}, rounds.RS},
		{"C_OptFloodSet", consensus.COptFloodSet{}, rounds.RS},
		{"A1", consensus.A1{}, rounds.RS},
		{"FloodSetWS", consensus.FloodSetWS{}, rounds.RWS},
		{"C_OptFloodSetWS", consensus.COptFloodSetWS{}, rounds.RWS},
		{"A1", consensus.A1{}, rounds.RWS},
	}
	for _, cc := range costCases {
		cr, err := runtime.RunCluster(cc.alg, runtime.ClusterConfig{
			Kind: cc.kind, Initial: []model.Value{0, 1, 2}, T: 1,
			Metrics: obs.NewRegistry(), RWSWaitBound: 150 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("cost baseline %s/%v: %v", cc.name, cc.kind, err)
		}
		if cr.Cost == nil || cr.Cost.Decisions == 0 {
			t.Fatalf("cost baseline %s/%v: no cost summary (%+v)", cc.name, cc.kind, cr.Cost)
		}
		report.CostRows = append(report.CostRows, exploreCostRow{
			Algorithm:               cc.name,
			Model:                   cc.kind.String(),
			Decisions:               cr.Cost.Decisions,
			MessagesPerDecision:     cr.Cost.MessagesPerDecision,
			BytesPerDecision:        cr.Cost.BytesPerDecision,
			DataMessagesPerDecision: cr.Cost.DataMessagesPerDecision,
			DataBytesPerDecision:    cr.Cost.DataBytesPerDecision,
		})
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d cpus)", path, report.CPUs)
}
