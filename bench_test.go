package repro

// The benchmark harness regenerates every table and figure of the paper
// (experiments E1–E11, see DESIGN.md §4) under the Go benchmark driver, and
// adds the ablation and substrate benchmarks DESIGN.md §5 calls out. Run:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks time a full regeneration of the corresponding artifact;
// correctness of the regenerated numbers is asserted inside each iteration,
// so a benchmark run doubles as a reproduction check.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/abcast"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/emul"
	"repro/internal/explore"
	"repro/internal/latency"
	"repro/internal/model"
	"repro/internal/nbac"
	"repro/internal/rounds"
	"repro/internal/runtime"
	"repro/internal/sdd"
	"repro/internal/step"
	"repro/internal/wire"
)

// requirePass fails the benchmark if an experiment stops reproducing.
func requirePass(b *testing.B, r *core.Report, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if !r.Pass {
		b.Fatalf("%s no longer reproduces:\n%s", r.ID, r)
	}
}

func BenchmarkE1_FloodSetRS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E1FloodSetRS(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

func BenchmarkE2_FloodSetWS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E2FloodSetWS(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

func BenchmarkE3_FOpt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E3FOpt(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

func BenchmarkE4_A1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E4A1(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

func BenchmarkE5_COptLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E5COpt(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

func BenchmarkE6_FOptLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E6FOptLat(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

func BenchmarkE7_LambdaSeparation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E7Lambda(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

func BenchmarkE8_SDD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E8SDD(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

func BenchmarkE9_CommitGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E9Commit(core.Config{Trials: 50})
		requirePass(b, r, err)
	}
}

func BenchmarkE10_Emulations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E10Emulation(core.Config{Trials: 40})
		requirePass(b, r, err)
	}
}

func BenchmarkE11_LatencyMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E11Matrix(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

// --- Ablations (DESIGN.md §5) ---

// Ablation: RWS adversary power. Removing pending messages (DropProb = 0)
// makes plain FloodSet safe in RWS — pending messages, not mere crashes,
// are what separates the models.
func BenchmarkAblation_RWSWithoutPending(b *testing.B) {
	initial := []model.Value{0, 1, 2, 3}
	for i := 0; i < b.N; i++ {
		for seed := int64(0); seed < 50; seed++ {
			adv := rounds.NewRandomAdversary(seed, 0.5, 0) // no drops
			run, err := rounds.RunAlgorithm(rounds.RWS, consensus.FloodSet{}, initial, 1, adv)
			if err != nil {
				b.Fatal(err)
			}
			if bad := firstConsensusViolation(run); bad != "" {
				b.Fatalf("FloodSet violated %s in RWS without pending messages (seed %d)", bad, seed)
			}
		}
	}
}

// Ablation: with pending messages enabled, the same sweep must eventually
// break plain FloodSet.
func BenchmarkAblation_RWSWithPending(b *testing.B) {
	initial := []model.Value{0, 1, 2, 3}
	for i := 0; i < b.N; i++ {
		broken := false
		for seed := int64(0); seed < 200 && !broken; seed++ {
			adv := rounds.NewRandomAdversary(seed, 0.5, 0.5)
			adv.DropAll = false
			run, err := rounds.RunAlgorithm(rounds.RWS, consensus.FloodSet{}, initial, 1, adv)
			if err != nil {
				b.Fatal(err)
			}
			if firstConsensusViolation(run) != "" {
				broken = true
			}
		}
		if !broken {
			b.Fatal("pending messages never broke FloodSet across the sweep")
		}
	}
}

// Ablation: the SDD protocol's dependence on the true Δ bound — assuming a
// smaller Δ than the network honors must produce validity violations.
func BenchmarkAblation_SDDUnderestimatedDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		violated := false
		for seed := int64(0); seed < 200 && !violated; seed++ {
			alg := sdd.NewSS(1, 1) // protocol believes Δ=1
			eng, err := step.NewEngine(alg, []model.Value{1, 0})
			if err != nil {
				b.Fatal(err)
			}
			sched := step.NewSSScheduler(1, 6, seed, step.StopWhenDecided(model.Singleton(sdd.DefaultObserver)))
			tr, err := eng.Run(sched, 10000)
			if err != nil {
				b.Fatal(err)
			}
			if sdd.FirstViolation(tr, sdd.Spec{Sender: sdd.DefaultSender, Observer: sdd.DefaultObserver, Input: 1}) != nil {
				violated = true
			}
		}
		if !violated {
			b.Fatal("underestimated Δ never violated SDD validity")
		}
	}
}

// --- Substrate microbenchmarks ---

func BenchmarkEngineRS_FloodSet_n8(b *testing.B) {
	initial := make([]model.Value, 8)
	for i := range initial {
		initial[i] = model.Value(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv := rounds.NewRandomAdversary(int64(i), 0.3, 0)
		if _, err := rounds.RunAlgorithm(rounds.RS, consensus.FloodSet{}, initial, 3, adv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineRWS_FloodSetWS_n8(b *testing.B) {
	initial := make([]model.Value, 8)
	for i := range initial {
		initial[i] = model.Value(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		adv := rounds.NewRandomAdversary(int64(i), 0.3, 0.3)
		if _, err := rounds.RunAlgorithm(rounds.RWS, consensus.FloodSetWS{}, initial, 3, adv); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExplore_A1_RWS(b *testing.B) {
	initial := []model.Value{0, 1, 1}
	for i := 0; i < b.N; i++ {
		if _, err := explore.Runs(rounds.RWS, consensus.A1{}, initial, 1, explore.Options{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreWorkers drains the n=4, t=2 FloodSetWS/RWS space — the
// largest sweep in the test suite — sequentially and with 1/2/4 explorer
// workers, reporting runs/sec and allocations per run. The sequential and
// parallel variants visit the identical run multiset (pinned by the
// equivalence property tests), so the metric is directly comparable across
// rows; the CI bench job distills this benchmark into BENCH_explore.json.
func BenchmarkExploreWorkers(b *testing.B) {
	initial := []model.Value{0, 1, 1, 0}
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"seq", 0}, {"w1", 1}, {"w2", 2}, {"w4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			totalRuns := 0
			for i := 0; i < b.N; i++ {
				stats, err := explore.Runs(rounds.RWS, consensus.FloodSetWS{}, initial, 2,
					explore.Options{Workers: bc.workers}, nil)
				if err != nil {
					b.Fatal(err)
				}
				totalRuns += stats.Runs
			}
			b.ReportMetric(float64(totalRuns)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}

func BenchmarkLatencyCompute_FloodSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := latency.Compute(rounds.RS, consensus.FloodSet{}, 3, 1, explore.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepEmulationRS(b *testing.B) {
	initial := []model.Value{0, 5, 9}
	for i := 0; i < b.N; i++ {
		if _, err := emul.RunRS(consensus.FloodSet{}, initial, 1, 1, 1, 3, int64(i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepEmulationRWS(b *testing.B) {
	initial := []model.Value{0, 5, 9}
	for i := 0; i < b.N; i++ {
		if _, err := emul.RunRWS(consensus.FloodSetWS{}, initial, 1, 4, int64(i), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	env, err := wire.EnvelopeFor(1, 2, 3, consensus.WMsg{W: model.NewValueSet(1, 2, 3, 4, 5, 6, 7, 8)})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := wire.Encode(env)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNBACCommitRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := nbac.MeasureRates(4, 100, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if rep.RSRate() <= rep.RWSRate() {
			b.Fatalf("commit gap vanished: %s", rep)
		}
	}
}

func BenchmarkLiveClusterRS(b *testing.B) {
	initial := []model.Value{4, 2, 7}
	for i := 0; i < b.N; i++ {
		cr, err := runtime.RunCluster(consensus.A1{}, runtime.ClusterConfig{
			Kind: rounds.RS, Initial: initial, T: 1,
			RoundDuration: 10 * time.Millisecond, MaxRounds: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, st := cr.Agreement(); st != AgreementReached {
			b.Fatalf("agreement verdict %v", st)
		}
	}
}

func BenchmarkLiveClusterRWS(b *testing.B) {
	initial := []model.Value{4, 2, 7}
	for i := 0; i < b.N; i++ {
		cr, err := runtime.RunCluster(consensus.FloodSetWS{}, runtime.ClusterConfig{
			Kind: rounds.RWS, Initial: initial, T: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, st := cr.Agreement(); st != AgreementReached {
			b.Fatalf("agreement verdict %v", st)
		}
	}
}

// firstConsensusViolation returns the name of the first violated uniform
// consensus property, or "".
func firstConsensusViolation(run *rounds.Run) string {
	for _, res := range CheckConsensus(run) {
		if !res.OK {
			return res.Property
		}
	}
	return ""
}

func BenchmarkE12_Extensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E12Extensions(core.Config{Trials: 20})
		requirePass(b, r, err)
	}
}

func BenchmarkE13_DiamondS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.E13DiamondS(core.Config{Trials: 32})
		requirePass(b, r, err)
	}
}

// BenchmarkScaling measures round-engine throughput as the system grows:
// one failure-free FloodSet execution per iteration.
func BenchmarkScaling(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("RS_n%d", n), func(b *testing.B) {
			initial := make([]model.Value, n)
			for i := range initial {
				initial[i] = model.Value(i)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run, err := rounds.RunAlgorithm(rounds.RS, consensus.FloodSet{}, initial, n/4, rounds.NoFailures)
				if err != nil {
					b.Fatal(err)
				}
				if lat, ok := run.Latency(); !ok || lat != n/4+1 {
					b.Fatalf("latency (%d,%v)", lat, ok)
				}
			}
		})
	}
}

// BenchmarkEmulationCost contrasts the step cost of the two §4 emulations —
// the RS-from-SS padding (geometric K_r) versus RWS-from-SP's
// receive-or-suspect (linear in traffic): the paper's efficiency framing
// applies to the emulations themselves.
func BenchmarkEmulationCost(b *testing.B) {
	initial := []model.Value{0, 5, 9}
	b.Run("RS_from_SS", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			res, err := emul.RunRS(consensus.FloodSet{}, initial, 1, 1, 1, 3, int64(i), nil)
			if err != nil {
				b.Fatal(err)
			}
			total += res.Steps
		}
		b.ReportMetric(float64(total)/float64(b.N), "steps/run")
	})
	b.Run("RWS_from_SP", func(b *testing.B) {
		total := 0
		for i := 0; i < b.N; i++ {
			res, err := emul.RunRWS(consensus.FloodSetWS{}, initial, 1, 4, int64(i), nil)
			if err != nil {
				b.Fatal(err)
			}
			total += res.Steps
		}
		b.ReportMetric(float64(total)/float64(b.N), "steps/run")
	})
}

// Ablation: failure-detection latency is decision latency. The live RWS
// cluster's time-to-decide under a crash scales with the suspicion timeout
// — quantifying why SP's *unbounded* detection delay (the paper's point)
// matters operationally.
func BenchmarkAblation_SuspicionLatency(b *testing.B) {
	for _, timeout := range []time.Duration{10 * time.Millisecond, 40 * time.Millisecond, 160 * time.Millisecond} {
		b.Run(timeout.String(), func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				cr, err := runtime.RunCluster(consensus.FloodSetWS{}, runtime.ClusterConfig{
					Kind: rounds.RWS, Initial: []model.Value{0, 5, 9}, T: 1,
					SuspectTimeout: timeout,
					Crashes:        map[model.ProcessID]runtime.CrashPlan{1: {Round: 1, Reach: 0}},
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, st := cr.Agreement(); st != AgreementReached {
					b.Fatalf("agreement verdict %v", st)
				}
				total += cr.Elapsed
			}
			b.ReportMetric(float64(total.Milliseconds())/float64(b.N), "ms-to-decide")
		})
	}
}

// a1NoFastPath wraps A1 and suppresses round-1 decisions: the ablation that
// shows Λ moving from 1 to 2 when the fast path is disabled.
type a1NoFastPath struct{}

func (a1NoFastPath) Name() string { return "A1-no-fast-path" }
func (a1NoFastPath) New(cfg rounds.ProcConfig) rounds.Process {
	return &a1NoFastProc{inner: consensus.A1{}.New(cfg)}
}

type a1NoFastProc struct {
	inner rounds.Process
	round int
}

func (p *a1NoFastProc) Msgs(round int) []rounds.Message { return p.inner.Msgs(round) }
func (p *a1NoFastProc) Trans(round int, received []rounds.Message) {
	p.inner.Trans(round, received)
	p.round = round
}
func (p *a1NoFastProc) Decision() (model.Value, bool) {
	if p.round < 2 {
		return 0, false
	}
	return p.inner.Decision()
}
func (p *a1NoFastProc) CloneProcess() rounds.Process {
	c := *p
	c.inner = p.inner.(rounds.Cloner).CloneProcess()
	return &c
}

func BenchmarkAblation_A1FastPathOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on, err := latency.Compute(rounds.RS, consensus.A1{}, 3, 1, explore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		off, err := latency.Compute(rounds.RS, a1NoFastPath{}, 3, 1, explore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if on.Lambda != 1 || off.Lambda != 2 {
			b.Fatalf("Λ with fast path = %d (want 1), without = %d (want 2)", on.Lambda, off.Lambda)
		}
		if off.Violations != 0 {
			b.Fatalf("disabling the fast path broke the spec: %d violations", off.Violations)
		}
	}
}

// BenchmarkAtomicBroadcast drains a 5-message log through repeated uniform
// consensus in each round model, under a random adversary.
func BenchmarkAtomicBroadcast(b *testing.B) {
	for _, kind := range []rounds.ModelKind{rounds.RS, rounds.RWS} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bc, err := abcast.New(kind, 3, 1)
				if err != nil {
					b.Fatal(err)
				}
				for id := abcast.MsgID(1); id <= 5; id++ {
					if err := bc.Submit(model.ProcessID(int(id)%3+1), id); err != nil {
						b.Fatal(err)
					}
				}
				drop := 0.0
				if kind == rounds.RWS {
					drop = 0.3
				}
				if err := bc.Drain(rounds.NewRandomAdversary(int64(i), 0.3, drop), 12); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
