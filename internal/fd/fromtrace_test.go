package fd

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sdd"
	"repro/internal/step"
)

func TestFromTraceReconstruction(t *testing.T) {
	// Build a small SP trace by hand: p1 crashes, p2 suspects it, steps on.
	eng, err := step.NewEngineWithFD(sdd.NewReceiveOrSuspect(), []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	apply := func(d step.Decision) {
		t.Helper()
		if _, err := eng.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	apply(step.Decision{Proc: 1})  // p1 sends its value
	apply(step.Decision{Crash: 1}) // p1 crashes
	apply(step.Decision{Proc: 2, NewSuspicions: []step.Suspicion{{Observer: 2, Subject: 1}}})
	apply(step.Decision{Proc: 2})

	fp, h := FromTrace(eng.Trace())
	if fp.CrashTime(1) == model.TimeNever {
		t.Error("p1's crash not reconstructed")
	}
	if fp.CrashTime(2) != model.TimeNever {
		t.Error("p2 wrongly marked faulty")
	}
	if h.PermanentlySuspectedFrom(2, 1) == model.TimeNever {
		t.Error("p2's suspicion of p1 not reconstructed")
	}
	if v := AuditPerfect(eng.Trace()); len(v) != 0 {
		t.Errorf("audit of a legal SP trace failed: %v", v[0].Error())
	}
}

// TestAuditPerfectOnRefutationWitnesses: every witness run the Theorem 3.1
// adversary constructs must audit as a genuine perfect-detector run —
// otherwise the refutation would be vacuous.
func TestAuditPerfectOnRefutationWitnesses(t *testing.T) {
	for _, cand := range sdd.Candidates() {
		ref, err := sdd.RefuteSP(cand, 500)
		if err != nil {
			t.Fatal(err)
		}
		if v := AuditPerfect(ref.Witness); len(v) != 0 {
			t.Errorf("%s: witness run's detector is not perfect: %v", cand.Name(), v[0].Error())
		}
	}
}

// TestAuditPerfectOnSPScheduler: random SP-scheduled runs audit clean.
func TestAuditPerfectOnSPScheduler(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		eng, err := step.NewEngineWithFD(sdd.NewReceiveOrSuspect(), []model.Value{1, 0})
		if err != nil {
			t.Fatal(err)
		}
		sched := step.NewSPScheduler(seed, step.StopWhenDecided(model.Singleton(2)))
		sched.CrashAtStep = map[model.ProcessID]int{1: int(seed%5) + 1}
		tr, err := eng.Run(sched, 10000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Completeness is a liveness property: give the (deliberately slow)
		// detector time to realize it before auditing — the observer keeps
		// taking steps past its decision, as correct processes must.
		sched.Stop = nil
		if _, err := eng.Run(sched, 50); err != nil && err != step.ErrHorizon {
			t.Fatalf("seed %d: grace period: %v", seed, err)
		}
		if v := AuditPerfect(tr); len(v) != 0 {
			t.Errorf("seed %d: %v", seed, v[0].Error())
		}
	}
}
