// Package fd implements the failure-detector framework of the paper's
// Section 2.5, following Chandra and Toueg: a failure detector D maps each
// failure pattern F to a set of histories H, where H(p,t) is the set of
// processes p suspects at time t. Detector classes are defined by
// completeness and accuracy axioms:
//
//   - Strong completeness: eventually every crashed process is permanently
//     suspected by every correct process.
//   - Weak completeness: eventually every crashed process is permanently
//     suspected by some correct process.
//   - Strong accuracy: no process is suspected before it crashes.
//   - Weak accuracy: some correct process is never suspected.
//   - Eventual strong accuracy: there is a time after which no correct
//     process is suspected by any correct process.
//   - Eventual weak accuracy: there is a time after which some correct
//     process is never suspected by any correct process.
//
// The classes of the hierarchy combine one completeness with one accuracy:
// P (perfect) = strong completeness + strong accuracy; ◇P = strong
// completeness + eventual strong accuracy; S = strong completeness + weak
// accuracy; ◇S = strong completeness + eventual weak accuracy; Q/W/◇Q/◇W
// take weak completeness instead.
//
// Unlike the perfect detector, the weaker classes revoke suspicions, so the
// package defines interval-based histories (History) rather than the
// monotone model.FDHistory. Generators produce adversarial histories of
// each class from a failure pattern; checkers verify the axioms over a
// finite horizon (the liveness axioms are read as "…by the horizon and
// stable thereafter", which is exact for the generators here).
package fd

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/model"
)

// Class identifies a Chandra-Toueg failure detector class.
type Class int

// The eight classes of the hierarchy.
const (
	// P is the perfect failure detector: strong completeness, strong accuracy.
	P Class = iota + 1
	// EventuallyP (◇P): strong completeness, eventual strong accuracy.
	EventuallyP
	// S (strong): strong completeness, weak accuracy.
	S
	// EventuallyS (◇S): strong completeness, eventual weak accuracy.
	EventuallyS
	// Q: weak completeness, strong accuracy.
	Q
	// EventuallyQ (◇Q): weak completeness, eventual strong accuracy.
	EventuallyQ
	// W (weak): weak completeness, weak accuracy.
	W
	// EventuallyW (◇W): weak completeness, eventual weak accuracy.
	EventuallyW
)

// String returns the conventional name.
func (c Class) String() string {
	switch c {
	case P:
		return "P"
	case EventuallyP:
		return "◇P"
	case S:
		return "S"
	case EventuallyS:
		return "◇S"
	case Q:
		return "Q"
	case EventuallyQ:
		return "◇Q"
	case W:
		return "W"
	case EventuallyW:
		return "◇W"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Completeness returns whether the class requires strong completeness.
func (c Class) StrongCompleteness() bool {
	switch c {
	case P, EventuallyP, S, EventuallyS:
		return true
	default:
		return false
	}
}

// Accuracy returns the class's accuracy axiom.
type Accuracy int

// Accuracy axioms.
const (
	StrongAccuracy Accuracy = iota + 1
	WeakAccuracy
	EventualStrongAccuracy
	EventualWeakAccuracy
)

// String names the accuracy axiom.
func (a Accuracy) String() string {
	switch a {
	case StrongAccuracy:
		return "strong accuracy"
	case WeakAccuracy:
		return "weak accuracy"
	case EventualStrongAccuracy:
		return "eventual strong accuracy"
	case EventualWeakAccuracy:
		return "eventual weak accuracy"
	default:
		return fmt.Sprintf("Accuracy(%d)", int(a))
	}
}

// AccuracyOf returns the accuracy axiom of a class.
func AccuracyOf(c Class) Accuracy {
	switch c {
	case P, Q:
		return StrongAccuracy
	case S, W:
		return WeakAccuracy
	case EventuallyP, EventuallyQ:
		return EventualStrongAccuracy
	default:
		return EventualWeakAccuracy
	}
}

// Interval is a half-open suspicion interval [Start, End); End ==
// model.TimeNever means the suspicion is never revoked.
type Interval struct {
	Start, End model.Time
}

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t model.Time) bool { return t >= iv.Start && t < iv.End }

// History is an interval-based failure detector history over n processes:
// Suspicions[observer-1][subject-1] is the ordered, disjoint list of
// intervals during which observer suspects subject.
type History struct {
	n          int
	suspicions [][][]Interval
}

// NewHistory returns an empty history over n processes.
func NewHistory(n int) *History {
	if n < 1 || n > model.MaxProcs {
		panic(fmt.Sprintf("fd: NewHistory(%d) out of range [1,%d]", n, model.MaxProcs))
	}
	h := &History{n: n, suspicions: make([][][]Interval, n)}
	for i := range h.suspicions {
		h.suspicions[i] = make([][]Interval, n)
	}
	return h
}

// N returns the number of processes.
func (h *History) N() int { return h.n }

// AddInterval records that observer suspects subject throughout [start,
// end). Intervals may be added in any order; overlapping intervals are
// merged.
func (h *History) AddInterval(observer, subject model.ProcessID, start, end model.Time) error {
	if !observer.Valid(h.n) || !subject.Valid(h.n) {
		return fmt.Errorf("fd: AddInterval(%v, %v): out of range for n=%d", observer, subject, h.n)
	}
	if start < 0 || end <= start {
		return fmt.Errorf("fd: AddInterval(%v, %v): bad interval [%v,%v)", observer, subject, start, end)
	}
	ivs := append(h.suspicions[observer-1][subject-1], Interval{start, end})
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].Start < ivs[b].Start })
	merged := ivs[:0]
	for _, iv := range ivs {
		if len(merged) > 0 && iv.Start <= merged[len(merged)-1].End {
			if iv.End > merged[len(merged)-1].End {
				merged[len(merged)-1].End = iv.End
			}
			continue
		}
		merged = append(merged, iv)
	}
	h.suspicions[observer-1][subject-1] = merged
	return nil
}

// Suspects reports whether observer suspects subject at time t, i.e.
// subject ∈ H(observer, t).
func (h *History) Suspects(observer, subject model.ProcessID, t model.Time) bool {
	if !observer.Valid(h.n) || !subject.Valid(h.n) {
		return false
	}
	for _, iv := range h.suspicions[observer-1][subject-1] {
		if iv.Contains(t) {
			return true
		}
	}
	return false
}

// At returns H(observer, t), the full suspicion set.
func (h *History) At(observer model.ProcessID, t model.Time) model.ProcSet {
	var s model.ProcSet
	for j := 1; j <= h.n; j++ {
		if h.Suspects(observer, model.ProcessID(j), t) {
			s = s.Add(model.ProcessID(j))
		}
	}
	return s
}

// PermanentlySuspectedFrom returns the earliest time from which observer
// suspects subject forever (TimeNever if no unbounded suspicion exists).
func (h *History) PermanentlySuspectedFrom(observer, subject model.ProcessID) model.Time {
	if !observer.Valid(h.n) || !subject.Valid(h.n) {
		return model.TimeNever
	}
	ivs := h.suspicions[observer-1][subject-1]
	if len(ivs) == 0 {
		return model.TimeNever
	}
	last := ivs[len(ivs)-1]
	if last.End != model.TimeNever {
		return model.TimeNever
	}
	return last.Start
}

// FromMonotone converts a monotone model.FDHistory (the perfect detector's
// compact representation) into an interval history.
func FromMonotone(mh *model.FDHistory) *History {
	h := NewHistory(mh.N())
	for i := 1; i <= mh.N(); i++ {
		for j := 1; j <= mh.N(); j++ {
			if t := mh.SuspicionTime(model.ProcessID(i), model.ProcessID(j)); t != model.TimeNever {
				// Monotone histories never revoke.
				if err := h.AddInterval(model.ProcessID(i), model.ProcessID(j), t, model.TimeNever); err != nil {
					panic(fmt.Sprintf("fd: FromMonotone: %v", err))
				}
			}
		}
	}
	return h
}

// Violationf builds a formatted violation.
func violationf(format string, args ...any) Violation {
	return Violation{Reason: fmt.Sprintf(format, args...)}
}

// Violation describes an axiom violation.
type Violation struct {
	Reason string
}

// Error renders the violation.
func (v Violation) Error() string { return v.Reason }

// rngFrom returns a seeded source.
func rngFrom(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
