package fd

import (
	"repro/internal/model"
)

// The axiom checkers below evaluate a history against a failure pattern
// over the horizon [0, horizon]. The "eventually …" axioms are liveness
// conditions on infinite histories; over a finite horizon they are read as
// "holds at the horizon and is stable from some earlier point on", which is
// exact for histories whose suspicion sets stop changing before the horizon
// (all generators in this package guarantee that).

// CheckStrongCompleteness: every crashed process is permanently suspected
// by every correct process (from some time on).
func CheckStrongCompleteness(fp *model.FailurePattern, h *History, horizon model.Time) []Violation {
	var out []Violation
	faulty := fp.Faulty()
	correct := fp.Correct()
	faulty.ForEach(func(s model.ProcessID) bool {
		correct.ForEach(func(o model.ProcessID) bool {
			if from := h.PermanentlySuspectedFrom(o, s); from == model.TimeNever || from > horizon {
				out = append(out, violationf(
					"strong completeness: correct %v never permanently suspects crashed %v by horizon %v", o, s, horizon))
			}
			return true
		})
		return true
	})
	return out
}

// CheckWeakCompleteness: every crashed process is permanently suspected by
// some correct process.
func CheckWeakCompleteness(fp *model.FailurePattern, h *History, horizon model.Time) []Violation {
	var out []Violation
	faulty := fp.Faulty()
	correct := fp.Correct()
	faulty.ForEach(func(s model.ProcessID) bool {
		found := false
		correct.ForEach(func(o model.ProcessID) bool {
			if from := h.PermanentlySuspectedFrom(o, s); from != model.TimeNever && from <= horizon {
				found = true
				return false
			}
			return true
		})
		if !found {
			out = append(out, violationf(
				"weak completeness: no correct process permanently suspects crashed %v by horizon %v", s, horizon))
		}
		return true
	})
	return out
}

// CheckStrongAccuracy: no process is suspected before it crashes. The
// quantification is over all observers (including ones that later crash)
// and all times.
func CheckStrongAccuracy(fp *model.FailurePattern, h *History, horizon model.Time) []Violation {
	var out []Violation
	n := fp.N()
	for o := 1; o <= n; o++ {
		for s := 1; s <= n; s++ {
			obs, sub := model.ProcessID(o), model.ProcessID(s)
			for _, iv := range h.suspicions[o-1][s-1] {
				if iv.Start <= horizon && fp.Alive(sub, iv.Start) {
					out = append(out, violationf(
						"strong accuracy: %v suspects %v at %v but %v is alive until %v",
						obs, sub, iv.Start, sub, fp.CrashTime(sub)))
				}
			}
		}
	}
	return out
}

// CheckWeakAccuracy: some correct process is never suspected by anyone.
func CheckWeakAccuracy(fp *model.FailurePattern, h *History, horizon model.Time) []Violation {
	n := fp.N()
	ok := false
	fp.Correct().ForEach(func(c model.ProcessID) bool {
		suspectedEver := false
		for o := 1; o <= n; o++ {
			for _, iv := range h.suspicions[o-1][c-1] {
				if iv.Start <= horizon {
					suspectedEver = true
				}
			}
		}
		if !suspectedEver {
			ok = true
			return false
		}
		return true
	})
	if ok {
		return nil
	}
	return []Violation{violationf("weak accuracy: every correct process is suspected at some time")}
}

// CheckEventualStrongAccuracy: there is a time after which no correct
// process is suspected by any correct process — read at the horizon.
func CheckEventualStrongAccuracy(fp *model.FailurePattern, h *History, horizon model.Time) []Violation {
	var out []Violation
	correct := fp.Correct()
	correct.ForEach(func(o model.ProcessID) bool {
		correct.ForEach(func(s model.ProcessID) bool {
			if h.Suspects(o, s, horizon) {
				out = append(out, violationf(
					"eventual strong accuracy: correct %v still suspects correct %v at horizon %v", o, s, horizon))
			}
			return true
		})
		return true
	})
	return out
}

// CheckEventualWeakAccuracy: there is a time after which some correct
// process is not suspected by any correct process — read at the horizon.
func CheckEventualWeakAccuracy(fp *model.FailurePattern, h *History, horizon model.Time) []Violation {
	correct := fp.Correct()
	ok := false
	correct.ForEach(func(s model.ProcessID) bool {
		clean := true
		correct.ForEach(func(o model.ProcessID) bool {
			if h.Suspects(o, s, horizon) {
				clean = false
				return false
			}
			return true
		})
		if clean {
			ok = true
			return false
		}
		return true
	})
	if ok || correct.Empty() {
		return nil
	}
	return []Violation{violationf("eventual weak accuracy: every correct process is still suspected by some correct process at the horizon")}
}

// Satisfies checks a history against all axioms of the given class.
func Satisfies(c Class, fp *model.FailurePattern, h *History, horizon model.Time) []Violation {
	var out []Violation
	if c.StrongCompleteness() {
		out = append(out, CheckStrongCompleteness(fp, h, horizon)...)
	} else {
		out = append(out, CheckWeakCompleteness(fp, h, horizon)...)
	}
	switch AccuracyOf(c) {
	case StrongAccuracy:
		out = append(out, CheckStrongAccuracy(fp, h, horizon)...)
	case WeakAccuracy:
		out = append(out, CheckWeakAccuracy(fp, h, horizon)...)
	case EventualStrongAccuracy:
		out = append(out, CheckEventualStrongAccuracy(fp, h, horizon)...)
	case EventualWeakAccuracy:
		out = append(out, CheckEventualWeakAccuracy(fp, h, horizon)...)
	}
	return out
}
