package fd

import (
	"repro/internal/model"
	"repro/internal/step"
)

// FromTrace reconstructs the failure-detector history and failure pattern
// embedded in a step-level trace: each step event's suspicion set becomes
// an observation at that global time, and crash events fix the failure
// pattern. The reconstruction lets the Chandra-Toueg axiom checkers audit
// real SP executions — experiment E8 uses it to certify that the runs the
// Theorem 3.1 adversary builds use a genuinely *perfect* detector.
//
// Suspicion sets are only sampled when a process steps; between two
// samples the history is taken to hold the earlier observation, which is
// exact for the monotone detectors the step engine enforces.
func FromTrace(tr *step.Trace) (*model.FailurePattern, *History) {
	fp := model.NewFailurePattern(tr.N)
	h := NewHistory(tr.N)
	// first time each (observer, subject) suspicion was seen
	type key struct{ o, s model.ProcessID }
	seen := make(map[key]model.Time)
	for _, ev := range tr.Events {
		switch ev.Kind {
		case step.CrashEvent:
			_ = fp.SetCrash(ev.Proc, model.Time(ev.Global))
		case step.StepEvent:
			ev.Suspects.ForEach(func(s model.ProcessID) bool {
				k := key{ev.Proc, s}
				if _, ok := seen[k]; !ok {
					seen[k] = model.Time(ev.Global)
				}
				return true
			})
		}
	}
	for k, start := range seen {
		// The engine's detectors never retract, so every observed
		// suspicion extends to infinity.
		_ = h.AddInterval(k.o, k.s, start, model.TimeNever)
	}
	return fp, h
}

// AuditPerfect checks a step-level trace against the perfect detector's
// axioms: strong accuracy over the whole trace and strong completeness at
// the horizon (the trace's last global step). It returns the violations.
func AuditPerfect(tr *step.Trace) []Violation {
	fp, h := FromTrace(tr)
	horizon := model.Time(0)
	for _, ev := range tr.Events {
		if model.Time(ev.Global) > horizon {
			horizon = model.Time(ev.Global)
		}
	}
	var out []Violation
	out = append(out, CheckStrongAccuracy(fp, h, horizon)...)
	out = append(out, CheckStrongCompleteness(fp, h, horizon)...)
	return out
}
