package fd

import (
	"testing"

	"repro/internal/model"
)

// pattern builds a failure pattern with the given crash times (0 entries
// mean "correct", matching none of the real crash times used here).
func pattern(t *testing.T, n int, crashes map[model.ProcessID]model.Time) *model.FailurePattern {
	t.Helper()
	fp := model.NewFailurePattern(n)
	for p, ct := range crashes {
		if err := fp.SetCrash(p, ct); err != nil {
			t.Fatal(err)
		}
	}
	return fp
}

func TestClassStrings(t *testing.T) {
	names := map[Class]string{
		P: "P", EventuallyP: "◇P", S: "S", EventuallyS: "◇S",
		Q: "Q", EventuallyQ: "◇Q", W: "W", EventuallyW: "◇W",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
	for _, a := range []Accuracy{StrongAccuracy, WeakAccuracy, EventualStrongAccuracy, EventualWeakAccuracy} {
		if a.String() == "" {
			t.Errorf("accuracy %d has empty name", int(a))
		}
	}
}

func TestHistoryIntervals(t *testing.T) {
	h := NewHistory(3)
	if err := h.AddInterval(1, 2, 5, 10); err != nil {
		t.Fatal(err)
	}
	if err := h.AddInterval(1, 2, 8, 15); err != nil {
		t.Fatal(err)
	}
	if !h.Suspects(1, 2, 5) || !h.Suspects(1, 2, 14) || h.Suspects(1, 2, 15) || h.Suspects(1, 2, 4) {
		t.Error("interval merge/containment wrong")
	}
	if got := h.At(1, 9); got != model.Singleton(2) {
		t.Errorf("At = %v, want {p2}", got)
	}
	if h.PermanentlySuspectedFrom(1, 2) != model.TimeNever {
		t.Error("bounded suspicion reported as permanent")
	}
	if err := h.AddInterval(1, 2, 20, model.TimeNever); err != nil {
		t.Fatal(err)
	}
	if got := h.PermanentlySuspectedFrom(1, 2); got != 20 {
		t.Errorf("PermanentlySuspectedFrom = %v, want 20", got)
	}
}

func TestHistoryValidation(t *testing.T) {
	h := NewHistory(2)
	if err := h.AddInterval(0, 1, 0, 5); err == nil {
		t.Error("invalid observer accepted")
	}
	if err := h.AddInterval(1, 2, 5, 5); err == nil {
		t.Error("empty interval accepted")
	}
	if err := h.AddInterval(1, 2, -1, 5); err == nil {
		t.Error("negative start accepted")
	}
}

func TestFromMonotone(t *testing.T) {
	mh := model.NewFDHistory(2)
	if err := mh.SetSuspicion(1, 2, 7); err != nil {
		t.Fatal(err)
	}
	h := FromMonotone(mh)
	if !h.Suspects(1, 2, 7) || h.Suspects(1, 2, 6) {
		t.Error("conversion wrong")
	}
	if h.PermanentlySuspectedFrom(1, 2) != 7 {
		t.Error("permanence lost in conversion")
	}
}

// TestGeneratedHistoriesSatisfyTheirClass: each generator's output
// satisfies its class's axioms for many seeds and failure patterns.
func TestGeneratedHistoriesSatisfyTheirClass(t *testing.T) {
	horizon := model.Time(100)
	patterns := []*model.FailurePattern{
		pattern(t, 4, nil),
		pattern(t, 4, map[model.ProcessID]model.Time{2: 10}),
		pattern(t, 4, map[model.ProcessID]model.Time{1: 0, 3: 40}),
	}
	classes := []Class{P, EventuallyP, S, EventuallyS, Q, EventuallyQ, W, EventuallyW}
	for _, fp := range patterns {
		for _, c := range classes {
			for seed := int64(0); seed < 20; seed++ {
				h, err := Generate(c, fp, GenOptions{
					Horizon: horizon, MaxDetectionDelay: 7, Seed: seed, FalseSuspicionRate: 0.7,
				})
				if err != nil {
					t.Fatal(err)
				}
				if v := Satisfies(c, fp, h, horizon); len(v) != 0 {
					t.Fatalf("%v seed=%d fp=%v: %s", c, seed, fp, v[0].Error())
				}
			}
		}
	}
}

// TestHierarchySeparation: generated ◇P histories (with false suspicions)
// violate P's strong accuracy, and generated ◇S histories violate ◇P's
// eventual strong accuracy — the hierarchy is strict on these samples.
func TestHierarchySeparation(t *testing.T) {
	fp := pattern(t, 4, map[model.ProcessID]model.Time{4: 50})
	horizon := model.Time(100)

	foundEPviolatesP := false
	foundESviolatesEP := false
	for seed := int64(0); seed < 50; seed++ {
		opts := GenOptions{Horizon: horizon, MaxDetectionDelay: 5, Seed: seed, FalseSuspicionRate: 0.9}
		ep, err := GenerateEventuallyPerfect(fp, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(CheckStrongAccuracy(fp, ep, horizon)) > 0 {
			foundEPviolatesP = true
		}
		es, err := GenerateEventuallyStrong(fp, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(CheckEventualStrongAccuracy(fp, es, horizon)) > 0 {
			foundESviolatesEP = true
		}
	}
	if !foundEPviolatesP {
		t.Error("no generated ◇P history violated strong accuracy; generator not adversarial")
	}
	if !foundESviolatesEP {
		t.Error("no generated ◇S history violated eventual strong accuracy; generator not adversarial")
	}
}

func TestCheckersCatchViolations(t *testing.T) {
	fp := pattern(t, 3, map[model.ProcessID]model.Time{3: 10})
	horizon := model.Time(50)

	// Missing suspicion of the crashed p3: strong AND weak completeness fail.
	empty := NewHistory(3)
	if len(CheckStrongCompleteness(fp, empty, horizon)) == 0 {
		t.Error("strong completeness violation missed")
	}
	if len(CheckWeakCompleteness(fp, empty, horizon)) == 0 {
		t.Error("weak completeness violation missed")
	}

	// Premature suspicion: accuracy fails.
	early := NewHistory(3)
	if err := early.AddInterval(1, 3, 5, model.TimeNever); err != nil {
		t.Fatal(err)
	}
	if err := early.AddInterval(2, 3, 10, model.TimeNever); err != nil {
		t.Fatal(err)
	}
	if err := early.AddInterval(1, 2, 0, model.TimeNever); err != nil {
		t.Fatal(err)
	}
	if len(CheckStrongAccuracy(fp, early, horizon)) == 0 {
		t.Error("strong accuracy violation missed (p3 suspected at 5, crashes at 10)")
	}
	// Weak accuracy: p1 is never suspected, so it holds...
	if v := CheckWeakAccuracy(fp, early, horizon); len(v) != 0 {
		t.Errorf("weak accuracy should hold (p1 unsuspected): %v", v[0].Error())
	}
	// ...until p1 is suspected too.
	if err := early.AddInterval(2, 1, 0, model.TimeNever); err != nil {
		t.Fatal(err)
	}
	if len(CheckWeakAccuracy(fp, early, horizon)) == 0 {
		t.Error("weak accuracy violation missed (every correct process suspected)")
	}
	if len(CheckEventualStrongAccuracy(fp, early, horizon)) == 0 {
		t.Error("eventual strong accuracy violation missed")
	}
	if len(CheckEventualWeakAccuracy(fp, early, horizon)) == 0 {
		t.Error("eventual weak accuracy violation missed")
	}
}

func TestWeakCompletenessSatisfiedByOneObserver(t *testing.T) {
	fp := pattern(t, 3, map[model.ProcessID]model.Time{3: 10})
	h := NewHistory(3)
	if err := h.AddInterval(1, 3, 12, model.TimeNever); err != nil {
		t.Fatal(err)
	}
	horizon := model.Time(50)
	if v := CheckWeakCompleteness(fp, h, horizon); len(v) != 0 {
		t.Errorf("weak completeness should hold: %v", v[0].Error())
	}
	if len(CheckStrongCompleteness(fp, h, horizon)) == 0 {
		t.Error("strong completeness should fail (p2 never suspects p3)")
	}
}

func TestGenerateUnknownClass(t *testing.T) {
	fp := pattern(t, 2, nil)
	if _, err := Generate(Class(99), fp, GenOptions{}); err == nil {
		t.Error("unknown class accepted")
	}
}
