package fd

import (
	"fmt"

	"repro/internal/model"
)

// GenOptions tunes the adversarial history generators.
type GenOptions struct {
	// Horizon bounds the generated history; liveness axioms are realized by
	// this time.
	Horizon model.Time
	// MaxDetectionDelay bounds how long after a crash a suspicion may begin
	// (the generators draw the delay uniformly per observer/subject pair).
	// In the SP model the delay is finite but *unbounded*; experiments
	// sweep this knob to emulate that.
	MaxDetectionDelay model.Time
	// Seed drives the adversary's random choices.
	Seed int64
	// FalseSuspicionRate (◇ classes only): the probability that an observer
	// wrongly suspects a correct process for a while before the
	// stabilization time.
	FalseSuspicionRate float64
	// Stabilization (◇ classes only): the time by which wrong suspicions
	// are revoked. Defaults to Horizon/2.
	Stabilization model.Time
}

func (o GenOptions) withDefaults() GenOptions {
	if o.Horizon <= 0 {
		o.Horizon = 100
	}
	if o.MaxDetectionDelay <= 0 {
		o.MaxDetectionDelay = 10
	}
	if o.Stabilization <= 0 {
		o.Stabilization = o.Horizon / 2
	}
	return o
}

// GeneratePerfect generates an adversarial history of the perfect detector
// P from a failure pattern: each correct (and even faulty) observer starts
// suspecting each crashed subject at crash time plus a random delay, and
// never before (strong accuracy) — the paper's point being that this delay,
// while bounded here by MaxDetectionDelay, is unbounded across the SP
// model's histories.
func GeneratePerfect(fp *model.FailurePattern, opts GenOptions) (*History, error) {
	opts = opts.withDefaults()
	rng := rngFrom(opts.Seed)
	h := NewHistory(fp.N())
	for o := 1; o <= fp.N(); o++ {
		for s := 1; s <= fp.N(); s++ {
			if o == s {
				continue
			}
			sub := model.ProcessID(s)
			ct := fp.CrashTime(sub)
			if ct == model.TimeNever {
				continue
			}
			delay := model.Time(rng.Int63n(int64(opts.MaxDetectionDelay) + 1))
			start := ct + delay
			if start > opts.Horizon {
				start = opts.Horizon // completeness must be realized by the horizon
			}
			if err := h.AddInterval(model.ProcessID(o), sub, start, model.TimeNever); err != nil {
				return nil, fmt.Errorf("fd: GeneratePerfect: %w", err)
			}
		}
	}
	return h, nil
}

// GenerateEventuallyPerfect generates a ◇P history: before the
// stabilization time observers may wrongly suspect correct processes (each
// wrong suspicion is revoked by stabilization); crashed processes are
// eventually permanently suspected as in P.
func GenerateEventuallyPerfect(fp *model.FailurePattern, opts GenOptions) (*History, error) {
	opts = opts.withDefaults()
	h, err := GeneratePerfect(fp, opts)
	if err != nil {
		return nil, err
	}
	rng := rngFrom(opts.Seed + 1)
	for o := 1; o <= fp.N(); o++ {
		for s := 1; s <= fp.N(); s++ {
			if o == s || rng.Float64() >= opts.FalseSuspicionRate {
				continue
			}
			sub := model.ProcessID(s)
			if fp.CrashTime(sub) != model.TimeNever {
				continue // already handled by the P part
			}
			// A wrong suspicion of a correct process, revoked by stabilization.
			if opts.Stabilization < 2 {
				continue
			}
			start := model.Time(rng.Int63n(int64(opts.Stabilization - 1)))
			end := start + 1 + model.Time(rng.Int63n(int64(opts.Stabilization-start)))
			if end > opts.Stabilization {
				end = opts.Stabilization
			}
			if end <= start {
				continue
			}
			if err := h.AddInterval(model.ProcessID(o), sub, start, end); err != nil {
				return nil, fmt.Errorf("fd: GenerateEventuallyPerfect: %w", err)
			}
		}
	}
	return h, nil
}

// GenerateStrong generates an S history: strong completeness plus weak
// accuracy — one designated correct process is never suspected, while every
// other process (correct or not) may be wrongly suspected forever.
func GenerateStrong(fp *model.FailurePattern, opts GenOptions) (*History, error) {
	opts = opts.withDefaults()
	h, err := GeneratePerfect(fp, opts)
	if err != nil {
		return nil, err
	}
	correct := fp.Correct()
	if correct.Empty() {
		return h, nil
	}
	immune := correct.Members()[0]
	rng := rngFrom(opts.Seed + 2)
	for o := 1; o <= fp.N(); o++ {
		for s := 1; s <= fp.N(); s++ {
			sub := model.ProcessID(s)
			if o == s || sub == immune || fp.CrashTime(sub) != model.TimeNever {
				continue
			}
			if rng.Float64() < opts.FalseSuspicionRate {
				start := model.Time(rng.Int63n(int64(opts.Horizon)))
				if err := h.AddInterval(model.ProcessID(o), sub, start, model.TimeNever); err != nil {
					return nil, fmt.Errorf("fd: GenerateStrong: %w", err)
				}
			}
		}
	}
	return h, nil
}

// GenerateEventuallyStrong generates a ◇S history: strong completeness plus
// eventual weak accuracy — after stabilization one designated correct
// process is no longer suspected by correct processes; everything else is
// fair game.
func GenerateEventuallyStrong(fp *model.FailurePattern, opts GenOptions) (*History, error) {
	opts = opts.withDefaults()
	h, err := GeneratePerfect(fp, opts)
	if err != nil {
		return nil, err
	}
	correct := fp.Correct()
	if correct.Empty() {
		return h, nil
	}
	immune := correct.Members()[0]
	rng := rngFrom(opts.Seed + 3)
	for o := 1; o <= fp.N(); o++ {
		for s := 1; s <= fp.N(); s++ {
			sub := model.ProcessID(s)
			if o == s || fp.CrashTime(sub) != model.TimeNever {
				continue
			}
			if rng.Float64() >= opts.FalseSuspicionRate {
				continue
			}
			// Wrong suspicions of the immune process are revoked by
			// stabilization; wrong suspicions of other correct processes
			// may persist forever — eventual *weak* accuracy protects only
			// one process, which is exactly what separates ◇S from ◇P.
			var end model.Time = model.TimeNever
			if sub == immune {
				end = opts.Stabilization
			}
			if opts.Stabilization < 2 {
				continue
			}
			start := model.Time(rng.Int63n(int64(opts.Stabilization - 1)))
			if end != model.TimeNever && end <= start {
				continue
			}
			if err := h.AddInterval(model.ProcessID(o), sub, start, end); err != nil {
				return nil, fmt.Errorf("fd: GenerateEventuallyStrong: %w", err)
			}
		}
	}
	return h, nil
}

// Generate dispatches on the class. Q/W/◇Q/◇W are generated from their
// strong-completeness counterparts (any history with strong completeness
// also has weak completeness).
func Generate(c Class, fp *model.FailurePattern, opts GenOptions) (*History, error) {
	switch c {
	case P, Q:
		return GeneratePerfect(fp, opts)
	case EventuallyP, EventuallyQ:
		return GenerateEventuallyPerfect(fp, opts)
	case S, W:
		return GenerateStrong(fp, opts)
	case EventuallyS, EventuallyW:
		return GenerateEventuallyStrong(fp, opts)
	default:
		return nil, fmt.Errorf("fd: Generate: unknown class %v", c)
	}
}
