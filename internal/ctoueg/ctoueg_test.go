package ctoueg

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/step"
)

func vals(vs ...int64) []model.Value {
	out := make([]model.Value, len(vs))
	for i, v := range vs {
		out[i] = model.Value(v)
	}
	return out
}

func TestCoordinatorRotation(t *testing.T) {
	if coordinator(1, 3) != 1 || coordinator(2, 3) != 2 || coordinator(3, 3) != 3 || coordinator(4, 3) != 1 {
		t.Error("rotation wrong")
	}
}

func TestRejectsTooManyFaults(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("2t ≥ n accepted")
		}
	}()
	Algorithm{T: 2}.New(step.Config{ID: 1, N: 4})
}

func TestFailureFreeConsensus(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		inputs := vals(4, 2, 7)
		res, err := Run(inputs, RunConfig{T: 1, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if viol := CheckConsensus(res.Trace, inputs); len(viol) != 0 {
			t.Fatalf("seed %d: %s", seed, viol[0])
		}
	}
}

func TestUnanimousValidity(t *testing.T) {
	inputs := vals(9, 9, 9)
	res, err := Run(inputs, RunConfig{T: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 3; p++ {
		if !res.Trace.Decided[p] || res.Trace.DecidedValue[p] != 9 {
			t.Fatalf("p%d decided (%v,%d), want (true,9)", p, res.Trace.Decided[p], res.Trace.DecidedValue[p])
		}
	}
}

// TestConsensusUnderCrashes sweeps crash timings of one process (t=1,
// n=3): uniform consensus must hold in every run, under noisy ◇S
// histories with false suspicions before stabilization.
func TestConsensusUnderCrashes(t *testing.T) {
	for _, victim := range []model.ProcessID{1, 2, 3} {
		for _, crashStep := range []int{1, 5, 20, 80} {
			for seed := int64(0); seed < 8; seed++ {
				inputs := vals(3, 1, 2)
				res, err := Run(inputs, RunConfig{
					T: 1, Seed: seed,
					CrashAt:            map[model.ProcessID]int{victim: crashStep},
					FalseSuspicionRate: 0.8,
				})
				if err != nil {
					t.Fatalf("victim=%v crash@%d seed=%d: %v", victim, crashStep, seed, err)
				}
				if viol := CheckConsensus(res.Trace, inputs); len(viol) != 0 {
					t.Fatalf("victim=%v crash@%d seed=%d: %s", victim, crashStep, seed, viol[0])
				}
			}
		}
	}
}

// TestConsensusWithLargerSystem: n=5, t=2, two crashes.
func TestConsensusWithLargerSystem(t *testing.T) {
	inputs := vals(5, 3, 8, 1, 9)
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(inputs, RunConfig{
			T: 2, Seed: seed,
			CrashAt:            map[model.ProcessID]int{1: 10, 4: 40},
			FalseSuspicionRate: 0.6,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if viol := CheckConsensus(res.Trace, inputs); len(viol) != 0 {
			t.Fatalf("seed %d: %s", seed, viol[0])
		}
	}
}

// TestWorksUnderEventuallyPerfectToo: ◇P histories are a subset of ◇S
// behaviour, so the algorithm must also work there.
func TestWorksUnderEventuallyPerfectToo(t *testing.T) {
	inputs := vals(4, 2, 7)
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(inputs, RunConfig{T: 1, Seed: seed, Class: fd.EventuallyP, FalseSuspicionRate: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		if viol := CheckConsensus(res.Trace, inputs); len(viol) != 0 {
			t.Fatalf("seed %d: %s", seed, viol[0])
		}
	}
}

// TestHistoryIsGenuinelyNoisy confirms the runs above actually endured
// false suspicions (otherwise the ◇S claim is untested).
func TestHistoryIsGenuinelyNoisy(t *testing.T) {
	noisy := false
	for seed := int64(0); seed < 10 && !noisy; seed++ {
		res, err := Run(vals(3, 1, 2), RunConfig{T: 1, Seed: seed, FalseSuspicionRate: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		// A false suspicion = some correct process suspected at some time.
		res.Pattern.Correct().ForEach(func(c model.ProcessID) bool {
			for o := 1; o <= res.Trace.N; o++ {
				if model.ProcessID(o) != c && res.History.Suspects(model.ProcessID(o), c, 10) {
					noisy = true
				}
			}
			return true
		})
	}
	if !noisy {
		t.Error("no false suspicion in any generated ◇S history; the sweep does not exercise eventual accuracy")
	}
}
