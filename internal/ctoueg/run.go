package ctoueg

import (
	"fmt"
	"math/rand"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/step"
)

// RunConfig tunes one ◇S consensus execution.
type RunConfig struct {
	T       int
	Seed    int64
	CrashAt map[model.ProcessID]int // victim → global step
	// Class selects the detector class driving the run (default ◇S).
	Class fd.Class
	// Stabilization is the global step by which false suspicions stop
	// (default 150); FalseSuspicionRate drives pre-stabilization noise.
	Stabilization      int
	FalseSuspicionRate float64
	// Horizon bounds the execution (default 60000 global steps).
	Horizon int
}

// Result reports one execution.
type Result struct {
	Trace   *step.Trace
	History *fd.History
	Pattern *model.FailurePattern
}

// Run executes the protocol under a seeded asynchronous scheduler and a
// generated detector history of the configured class. The crash pattern is
// fixed up front so the history generator and the scheduler agree on it.
func Run(inputs []model.Value, cfg RunConfig) (*Result, error) {
	n := len(inputs)
	if cfg.Class == 0 {
		cfg.Class = fd.EventuallyS
	}
	if cfg.Stabilization == 0 {
		cfg.Stabilization = 150
	}
	if cfg.FalseSuspicionRate == 0 {
		cfg.FalseSuspicionRate = 0.5
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 60000
	}

	fp := model.NewFailurePattern(n)
	for victim, at := range cfg.CrashAt {
		if err := fp.SetCrash(victim, model.Time(at)); err != nil {
			return nil, fmt.Errorf("ctoueg: %w", err)
		}
	}
	if fp.NumFaulty() > cfg.T {
		return nil, fmt.Errorf("ctoueg: %d crashes exceed t=%d", fp.NumFaulty(), cfg.T)
	}
	hist, err := fd.Generate(cfg.Class, fp, fd.GenOptions{
		Horizon:            model.Time(cfg.Horizon),
		MaxDetectionDelay:  10,
		Seed:               cfg.Seed,
		FalseSuspicionRate: cfg.FalseSuspicionRate,
		Stabilization:      model.Time(cfg.Stabilization),
	})
	if err != nil {
		return nil, err
	}

	eng, err := step.NewEngineWithHistoryFD(Algorithm{T: cfg.T}, inputs,
		func(obs model.ProcessID, g int) model.ProcSet { return hist.At(obs, model.Time(g)) })
	if err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	crashAt := make(map[model.ProcessID]int, len(cfg.CrashAt))
	for k, v := range cfg.CrashAt {
		crashAt[k] = v
	}
	sched := step.SchedulerFunc(func(v *step.View) step.Decision {
		for victim, at := range crashAt {
			if at <= v.GlobalStep && v.Alive.Has(victim) {
				delete(crashAt, victim)
				return step.Decision{Crash: victim}
			}
		}
		// Stop once every live process has decided and drained its outbox
		// influence — decisions relay quickly, so "all alive decided" is a
		// sufficient stop here.
		done := true
		v.Alive.ForEach(func(q model.ProcessID) bool {
			if !v.Decided[q] {
				done = false
				return false
			}
			return true
		})
		if done {
			return step.Decision{Suspend: true}
		}
		members := v.Alive.Members()
		p := members[rng.Intn(len(members))]
		d := step.Decision{Proc: p}
		for i, m := range v.Buffers[p] {
			if v.GlobalStep-m.SentStep >= 10 || rng.Float64() < 0.6 {
				d.Deliver = append(d.Deliver, i)
			}
		}
		return d
	})
	tr, err := eng.Run(sched, cfg.Horizon)
	if err != nil {
		return nil, fmt.Errorf("ctoueg: %w", err)
	}
	return &Result{Trace: tr, History: hist, Pattern: fp}, nil
}

// CheckConsensus evaluates uniform consensus on the trace: uniform
// agreement (all deciders equal, faulty included), uniform validity
// (unanimous input forces the decision), termination (every live process
// decided), and value origin.
func CheckConsensus(tr *step.Trace, inputs []model.Value) []string {
	var out []string
	var first model.Value
	seen := false
	for p := 1; p <= tr.N; p++ {
		if !tr.Decided[p] {
			continue
		}
		if !seen {
			first, seen = tr.DecidedValue[p], true
		} else if tr.DecidedValue[p] != first {
			out = append(out, fmt.Sprintf("uniform agreement: p%d decided %d, others %d",
				p, int64(tr.DecidedValue[p]), int64(first)))
		}
	}
	unanimous := true
	for _, v := range inputs[1:] {
		if v != inputs[0] {
			unanimous = false
			break
		}
	}
	if unanimous && seen && first != inputs[0] {
		out = append(out, fmt.Sprintf("uniform validity: unanimous %d decided %d",
			int64(inputs[0]), int64(first)))
	}
	proposed := model.NewValueSet(inputs...)
	for p := 1; p <= tr.N; p++ {
		if tr.Decided[p] && !proposed.Has(tr.DecidedValue[p]) {
			out = append(out, fmt.Sprintf("value origin: p%d decided unproposed %d",
				p, int64(tr.DecidedValue[p])))
		}
		if tr.Alive(model.ProcessID(p)) && !tr.Decided[p] {
			out = append(out, fmt.Sprintf("termination: correct p%d undecided", p))
		}
	}
	return out
}
