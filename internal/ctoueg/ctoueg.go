// Package ctoueg implements Chandra and Toueg's rotating-coordinator
// consensus algorithm for the ◇S failure detector class, on this
// repository's step-level asynchronous engine. The DSN 2000 paper's
// discussion calls for extending its SS-versus-SP comparison "to other
// classes of timing-based models and other classes of failure detectors";
// this package supplies the other end of that comparison: consensus that
// needs only *eventual* weak accuracy, at the price of a majority of
// correct processes (t < n/2) — against the paper's P-based world where
// any minority of crashes is tolerated.
//
// The algorithm (Chandra & Toueg, JACM 1996, §6.2), per asynchronous round
// r with coordinator c = ((r−1) mod n) + 1:
//
//	phase 1: every process sends its (estimate, timestamp) to c;
//	phase 2: c gathers a majority of estimates and adopts the one with the
//	         highest timestamp as the round's proposal;
//	phase 3: every process waits for c's proposal OR suspects c (◇S
//	         query); it replies ack (adopting the proposal, stamping it
//	         with r) or nack;
//	phase 4: c gathers a majority of replies; if all are acks it reliably
//	         broadcasts decide(proposal).
//
// Reliable broadcast is implemented by relaying: a process that receives a
// decision forwards it to everyone before halting. Uniform agreement comes
// from majority intersection on timestamps: once some majority has adopted
// a proposal with stamp r, every later coordinator's majority overlaps it
// and must pick up that proposal.
//
// The step engine delivers the detector output via step.HistoryFD; package
// fd generates adversarial ◇S histories (false suspicions before a
// stabilization time, one immune correct process after).
package ctoueg

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/step"
)

// Message kinds exchanged by the protocol.

// EstimateMsg is phase 1: a participant's current estimate and the round it
// was last adopted in (0 = initial value).
type EstimateMsg struct {
	Round int
	Est   model.Value
	TS    int
}

// ProposalMsg is phase 2: the coordinator's proposal for the round.
type ProposalMsg struct {
	Round int
	Est   model.Value
}

// ReplyMsg is phase 3: ack (adopted) or nack (coordinator suspected).
type ReplyMsg struct {
	Round int
	Ack   bool
}

// DecideMsg is the reliably broadcast decision.
type DecideMsg struct {
	Est model.Value
}

// Algorithm builds the ◇S consensus automata. It requires a majority of
// correct processes: New panics if 2t ≥ n (a misconfiguration, not a
// runtime condition).
type Algorithm struct {
	T int
}

var _ step.Algorithm = Algorithm{}

// Name implements step.Algorithm.
func (Algorithm) Name() string { return "CT-◇S-Consensus" }

// New implements step.Algorithm.
func (a Algorithm) New(cfg step.Config) step.Automaton {
	if 2*a.T >= cfg.N {
		panic(fmt.Sprintf("ctoueg: requires a majority of correct processes: t=%d, n=%d", a.T, cfg.N))
	}
	return &proc{
		id:  cfg.ID,
		n:   cfg.N,
		maj: cfg.N/2 + 1,
		est: cfg.Input,
		// Round 1 starts in phase 1.
		round: 1,
		phase: phaseSendEstimate,

		estimates: make(map[int][]EstimateMsg),
		replies:   make(map[int][]ReplyMsg),
		proposals: make(map[int]*ProposalMsg),
	}
}

// coordinator returns round r's coordinator.
func coordinator(r, n int) model.ProcessID {
	return model.ProcessID((r-1)%n + 1)
}

// phase enumerates the participant's position in its current round.
type phase int

const (
	phaseSendEstimate phase = iota + 1
	phaseAwaitProposal
	phaseRelayDecision
	phaseHalted
)

type proc struct {
	id    model.ProcessID
	n     int
	maj   int
	est   model.Value
	ts    int
	round int
	phase phase

	// outbox holds queued sends; the step model allows one send per step.
	outbox []step.Send

	// Per-round message stores (messages can arrive ahead of our round).
	estimates map[int][]EstimateMsg
	replies   map[int][]ReplyMsg
	proposals map[int]*ProposalMsg

	// Coordinator bookkeeping for rounds this process coordinates.
	proposed    map[int]bool
	repliesDone map[int]bool

	// replySent tracks whether this participant answered its current round.
	replySent map[int]bool

	decided  bool
	decision model.Value
}

var (
	_ step.Automaton = (*proc)(nil)
	_ step.Decider   = (*proc)(nil)
)

// Decision implements step.Decider.
func (p *proc) Decision() (model.Value, bool) { return p.decision, p.decided }

// queue appends sends to the outbox.
func (p *proc) queue(to model.ProcessID, payload any) {
	if to == p.id {
		return // self-interactions are handled internally
	}
	p.outbox = append(p.outbox, step.Send{To: to, Payload: payload})
}

// broadcastQueue queues a payload to every other process.
func (p *proc) broadcastQueue(payload any) {
	for j := 1; j <= p.n; j++ {
		p.queue(model.ProcessID(j), payload)
	}
}

// Step implements step.Automaton.
func (p *proc) Step(in step.Input) *step.Send {
	p.absorb(in.Received)
	if p.phase != phaseHalted {
		p.advance(in.Suspects)
	}
	if len(p.outbox) > 0 {
		s := p.outbox[0]
		p.outbox = p.outbox[1:]
		return &s
	}
	return nil
}

// absorb files incoming messages and handles decisions.
func (p *proc) absorb(received []step.Message) {
	for _, m := range received {
		switch msg := m.Payload.(type) {
		case EstimateMsg:
			p.estimates[msg.Round] = append(p.estimates[msg.Round], msg)
		case ProposalMsg:
			cp := msg
			if p.proposals[msg.Round] == nil {
				p.proposals[msg.Round] = &cp
			}
		case ReplyMsg:
			p.replies[msg.Round] = append(p.replies[msg.Round], msg)
		case DecideMsg:
			if !p.decided {
				p.decided, p.decision = true, msg.Est
				p.outbox = nil // drop stale protocol messages
				p.broadcastQueue(DecideMsg{Est: msg.Est})
				p.phase = phaseRelayDecision
			}
		}
	}
	if p.phase == phaseRelayDecision && len(p.outbox) == 0 {
		p.phase = phaseHalted
	}
}

// advance runs the participant and (when applicable) coordinator state
// machines for the current round.
func (p *proc) advance(suspects model.ProcSet) {
	if p.decided {
		return
	}
	// Coordinator duties for any round we coordinate, driven by tallies.
	p.coordinate()

	switch p.phase {
	case phaseSendEstimate:
		c := coordinator(p.round, p.n)
		if c == p.id {
			// Tally our own estimate directly.
			p.estimates[p.round] = append(p.estimates[p.round],
				EstimateMsg{Round: p.round, Est: p.est, TS: p.ts})
		} else {
			p.queue(c, EstimateMsg{Round: p.round, Est: p.est, TS: p.ts})
		}
		p.phase = phaseAwaitProposal

	case phaseAwaitProposal:
		c := coordinator(p.round, p.n)
		if prop := p.proposals[p.round]; prop != nil {
			// Adopt and ack.
			p.est, p.ts = prop.Est, p.round
			p.reply(c, true)
			p.nextRound()
		} else if suspects.Has(c) && c != p.id {
			p.reply(c, false)
			p.nextRound()
		}
	}
}

// reply sends (or self-tallies) the phase-3 answer.
func (p *proc) reply(c model.ProcessID, ack bool) {
	if p.replySent == nil {
		p.replySent = make(map[int]bool)
	}
	if p.replySent[p.round] {
		return
	}
	p.replySent[p.round] = true
	msg := ReplyMsg{Round: p.round, Ack: ack}
	if c == p.id {
		p.replies[p.round] = append(p.replies[p.round], msg)
	} else {
		p.queue(c, msg)
	}
}

// nextRound advances the participant.
func (p *proc) nextRound() {
	p.round++
	p.phase = phaseSendEstimate
}

// coordinate progresses the coordinator state machines of rounds this
// process owns: propose once a majority of estimates arrived; decide once a
// majority of replies arrived and all are acks.
func (p *proc) coordinate() {
	if p.proposed == nil {
		p.proposed = make(map[int]bool)
		p.repliesDone = make(map[int]bool)
	}
	for r, ests := range p.estimates {
		if coordinator(r, p.n) != p.id || p.proposed[r] || len(ests) < p.maj {
			continue
		}
		p.proposed[r] = true
		best := ests[0]
		for _, e := range ests[1:] {
			if e.TS > best.TS {
				best = e
			}
		}
		prop := ProposalMsg{Round: r, Est: best.Est}
		// Deliver to ourselves directly; broadcast to the rest.
		if p.proposals[r] == nil {
			cp := prop
			p.proposals[r] = &cp
		}
		p.broadcastQueue(prop)
	}
	for r, reps := range p.replies {
		if coordinator(r, p.n) != p.id || p.repliesDone[r] || !p.proposed[r] || len(reps) < p.maj {
			continue
		}
		p.repliesDone[r] = true
		allAck := true
		for _, rep := range reps[:p.maj] {
			if !rep.Ack {
				allAck = false
				break
			}
		}
		if allAck {
			v := p.proposals[r].Est
			if !p.decided {
				p.decided, p.decision = true, v
			}
			p.broadcastQueue(DecideMsg{Est: v})
		}
	}
}
