package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("β", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(out, "2.500") {
		t.Errorf("float formatting missing: %q", out)
	}
	// Columns must align: "alpha" and "β" rows put values at the same offset.
	var alphaLine, betaLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaLine = l
		}
		if strings.HasPrefix(l, "β") {
			betaLine = l
		}
	}
	if posOf(alphaLine, "1") != posOfRune(betaLine, "2.500") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

// posOf returns the rune index of sub in s.
func posOf(s, sub string) int { return posOfRune(s, sub) }

func posOfRune(s, sub string) int {
	b := strings.Index(s, sub)
	if b < 0 {
		return -1
	}
	return len([]rune(s[:b]))
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %f", s.Mean)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty sample summary = %+v", z)
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestSummaryProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]int, len(raw))
		for i, v := range raw {
			sample[i] = int(v)
		}
		s := Summarize(sample)
		sorted := append([]int(nil), sample...)
		sort.Ints(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			float64(s.Min) <= s.Mean && s.Mean <= float64(s.Max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Errorf("histogram wrong: %s", h)
	}
	if f := h.Fraction(2); f != 2.0/6 {
		t.Errorf("Fraction(2) = %f", f)
	}
	if got := h.String(); got != "{1:1 2:2 3:3}" {
		t.Errorf("String = %q", got)
	}
	empty := NewHistogram()
	if empty.Fraction(1) != 0 {
		t.Error("empty fraction nonzero")
	}
}
