package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("title", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("β", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.Contains(out, "2.500") {
		t.Errorf("float formatting missing: %q", out)
	}
	// Columns must align: "alpha" and "β" rows put values at the same offset.
	var alphaLine, betaLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") {
			alphaLine = l
		}
		if strings.HasPrefix(l, "β") {
			betaLine = l
		}
	}
	if posOf(alphaLine, "1") != posOfRune(betaLine, "2.500") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

// posOf returns the rune index of sub in s.
func posOf(s, sub string) int { return posOfRune(s, sub) }

func posOfRune(s, sub string) int {
	b := strings.Index(s, sub)
	if b < 0 {
		return -1
	}
	return len([]rune(s[:b]))
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 3 {
		t.Errorf("mean = %f", s.Mean)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty sample summary = %+v", z)
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestSummaryProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]int, len(raw))
		for i, v := range raw {
			sample[i] = int(v)
		}
		s := Summarize(sample)
		sorted := append([]int(nil), sample...)
		sort.Ints(sorted)
		return s.Min == sorted[0] && s.Max == sorted[len(sorted)-1] &&
			s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			float64(s.Min) <= s.Mean && s.Mean <= float64(s.Max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{1, 2, 2, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Errorf("histogram wrong: %s", h)
	}
	if f := h.Fraction(2); f != 2.0/6 {
		t.Errorf("Fraction(2) = %f", f)
	}
	if got := h.String(); got != "{1:1 2:2 3:3}" {
		t.Errorf("String = %q", got)
	}
	empty := NewHistogram()
	if empty.Fraction(1) != 0 {
		t.Error("empty fraction nonzero")
	}
}

func TestSummarizeInt64(t *testing.T) {
	if got := SummarizeInt64(nil); got != (Int64Summary{}) {
		t.Errorf("empty sample = %+v, want zero", got)
	}
	sample := make([]int64, 100)
	for i := range sample {
		sample[i] = int64(100 - i) // 100..1, unsorted on purpose
	}
	s := SummarizeInt64(sample)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("n/min/max = %d/%d/%d, want 100/1/100", s.N, s.Min, s.Max)
	}
	if s.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", s.Mean)
	}
	// Nearest-rank over 1..100: the p-th percentile is exactly p.
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 {
		t.Errorf("p50/p95/p99 = %d/%d/%d, want 50/95/99", s.P50, s.P95, s.P99)
	}
	if got := s.String(); !strings.Contains(got, "p95=95") {
		t.Errorf("String() = %q, missing p95", got)
	}
}

func TestPercentileInt64(t *testing.T) {
	cases := []struct {
		sorted []int64
		p      int
		want   int64
	}{
		{nil, 50, 0},
		{[]int64{7}, 0, 7},   // rank clamps up to 1
		{[]int64{7}, 100, 7}, // and down to len
		{[]int64{1, 2, 3, 4}, 50, 2},
		{[]int64{1, 2, 3, 4}, 51, 3}, // nearest rank rounds up
		{[]int64{1, 2, 3, 4}, 100, 4},
	}
	for _, c := range cases {
		if got := PercentileInt64(c.sorted, c.p); got != c.want {
			t.Errorf("PercentileInt64(%v, %d) = %d, want %d", c.sorted, c.p, got, c.want)
		}
	}
}

func TestBucketQuantile(t *testing.T) {
	uppers := []int64{10, 100, 1000}
	// 5 observations ≤10, 3 in (10,100], 2 in (100,1000], 1 overflow.
	counts := []uint64{5, 3, 2, 1}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.0, 10},  // rank clamps to 1
		{0.45, 10}, // rank 5 is the last observation in the first bucket
		{0.5, 100}, // rank 6 lands in the second bucket
		{0.7, 100},
		{0.9, 1000},
		{1.0, 1000}, // overflow reports the largest finite bound
	}
	for _, c := range cases {
		if got := BucketQuantile(uppers, counts, c.q); got != c.want {
			t.Errorf("BucketQuantile(q=%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if got := BucketQuantile(uppers, []uint64{0, 0, 0, 0}, 0.5); got != 0 {
		t.Errorf("empty histogram = %d, want 0", got)
	}
	if got := BucketQuantile(nil, nil, 0.5); got != 0 {
		t.Errorf("no buckets = %d, want 0", got)
	}
}
