// Package stats provides the small numeric and table-rendering helpers the
// experiment drivers use to print paper-shaped results: plain-text tables
// with aligned columns, and summary statistics over integer samples
// (latencies, message counts, steps).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if w := displayWidth(c); w > widths[i] {
				widths[i] = w
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			b.WriteString(cell)
			if i < cols-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(cell)+2))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for i, w := range widths {
		total += w
		if i < cols-1 {
			total += 2
		}
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// displayWidth approximates terminal width: counts runes, not bytes, so the
// Greek/arrow glyphs used in model names align correctly.
func displayWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Summary holds order statistics of an integer sample.
type Summary struct {
	N             int
	Min, Max      int
	Mean          float64
	P50, P90, P99 int
	StdDev        float64
}

// Summarize computes order statistics. An empty sample yields a zero
// Summary.
func Summarize(sample []int) Summary {
	if len(sample) == 0 {
		return Summary{}
	}
	s := append([]int(nil), sample...)
	sort.Ints(s)
	sum := 0
	for _, v := range s {
		sum += v
	}
	mean := float64(sum) / float64(len(s))
	varsum := 0.0
	for _, v := range s {
		d := float64(v) - mean
		varsum += d * d
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		P50:    percentile(s, 50),
		P90:    percentile(s, 90),
		P99:    percentile(s, 99),
		StdDev: math.Sqrt(varsum / float64(len(s))),
	}
}

// percentile returns the p-th percentile of sorted s (nearest-rank).
func percentile(sorted []int, p int) int {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String renders the summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.2f sd=%.2f",
		s.N, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean, s.StdDev)
}

// Int64Summary holds order statistics of an int64 sample (durations in
// nanoseconds, byte counts, …) — the wider-range sibling of Summary.
type Int64Summary struct {
	N             int
	Min, Max      int64
	Mean          float64
	P50, P95, P99 int64
}

// SummarizeInt64 computes order statistics over an int64 sample. An empty
// sample yields a zero Int64Summary.
func SummarizeInt64(sample []int64) Int64Summary {
	if len(sample) == 0 {
		return Int64Summary{}
	}
	s := append([]int64(nil), sample...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	sum := 0.0
	for _, v := range s {
		sum += float64(v)
	}
	return Int64Summary{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
		P50:  PercentileInt64(s, 50),
		P95:  PercentileInt64(s, 95),
		P99:  PercentileInt64(s, 99),
	}
}

// String renders the summary.
func (s Int64Summary) String() string {
	return fmt.Sprintf("n=%d min=%d p50=%d p95=%d p99=%d max=%d mean=%.2f",
		s.N, s.Min, s.P50, s.P95, s.P99, s.Max, s.Mean)
}

// PercentileInt64 returns the p-th percentile (nearest-rank) of a sorted
// int64 sample.
func PercentileInt64(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// BucketQuantile estimates the q-th quantile (0 < q ≤ 1) of a fixed-bucket
// histogram: uppers are the ascending bucket upper bounds and counts the
// per-bucket observation counts, with counts[len(uppers)] holding the
// overflow bucket. The estimate is the upper bound of the bucket containing
// the nearest-rank observation (the overflow bucket reports the largest
// finite bound). An empty histogram yields 0.
func BucketQuantile(uppers []int64, counts []uint64, q float64) int64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(uppers) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i >= len(uppers) {
				return uppers[len(uppers)-1]
			}
			return uppers[i]
		}
	}
	return uppers[len(uppers)-1]
}

// Histogram counts occurrences of each value.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the occurrences of v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of observations equal to v.
func (h *Histogram) Fraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// String renders the histogram in ascending value order.
func (h *Histogram) String() string {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%d:%d", k, h.counts[k])
	}
	return "{" + strings.Join(parts, " ") + "}"
}
