package tracing

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rounds"
)

// Components decomposes a stretch of decision latency into the four places
// time can go in these protocols:
//
//   - Barrier: an RS round's residual wait after the last message arrived —
//     the lock-step discipline's fixed price, paid even when every message
//     is already in.
//   - FDTimeout: an RWS round's residual wait for the failure detector to
//     suspect a crashed peer — the receive-or-suspect loop blocked on
//     missing senders, released only by suspicion.
//   - Transport: time spent waiting for messages actually in flight (and,
//     in an RWS round where every peer delivered, the full wait — nothing
//     but transport held the round open).
//   - Compute: broadcast, transition and decision testing.
//
// All values are trace nanoseconds (wall for live traces, synthetic units
// for engine traces). The decomposition is exact by construction: the four
// components tile the contiguous send/wait/compute phases of each round,
// so they sum to the measured decision latency with no residue.
type Components struct {
	Barrier   int64 `json:"barrier"`
	FDTimeout int64 `json:"fd_timeout"`
	Transport int64 `json:"transport"`
	Compute   int64 `json:"compute"`
}

// Total returns the component sum.
func (c Components) Total() int64 { return c.Barrier + c.FDTimeout + c.Transport + c.Compute }

func (c *Components) add(d Components) {
	c.Barrier += d.Barrier
	c.FDTimeout += d.FDTimeout
	c.Transport += d.Transport
	c.Compute += d.Compute
}

// RoundComponents is one round's share of a process's decision latency.
type RoundComponents struct {
	Round int `json:"round"`
	Components
}

// ProcAttribution is one process's decision-latency decomposition.
type ProcAttribution struct {
	Proc        int   `json:"proc"`
	Decided     bool  `json:"decided"`
	Crashed     bool  `json:"crashed"`
	DecideRound int   `json:"decide_round,omitempty"`
	Start       int64 `json:"start"` // first round's open, trace ns
	Total       int64 `json:"total"` // decide TS − Start (0 if undecided)

	Rounds []RoundComponents `json:"rounds,omitempty"`
	Components
}

// Attribution is a whole trace's latency decomposition.
type Attribution struct {
	Algorithm string `json:"algorithm"`
	Model     string `json:"model"`
	N         int    `json:"n"`
	T         int    `json:"t"`
	Timebase  string `json:"timebase"`

	Procs []ProcAttribution `json:"procs"`
}

// ObservedRounds returns the trace-observed latency degree: the maximum
// decide round over the processes that decided and never crashed — the
// same population rounds.Run.Latency ranges over, so the two reconcile.
// Zero when no correct process decided.
func (a *Attribution) ObservedRounds() int {
	max := 0
	for i := range a.Procs {
		if p := &a.Procs[i]; p.Decided && !p.Crashed && p.DecideRound > max {
			max = p.DecideRound
		}
	}
	return max
}

// Attribute decomposes each process's decision latency. For every round up
// to the decision round, the send span is compute, and the wait span splits
// at the last in-wait arrival from the round's reception record: the prefix
// is transport, the tail is barrier (RS), detector timeout (RWS with a
// missing sender), or more transport (RWS where every peer delivered — the
// last arrival itself released the wait). The decision round's compute span
// is truncated at the decide instant, so the per-round components sum
// exactly to decideTS − firstRoundStart.
func Attribute(tr *Trace) *Attribution {
	a := &Attribution{Algorithm: tr.Algorithm, Model: tr.Model, N: tr.N, T: tr.T, Timebase: tr.Timebase}

	type key struct{ proc, round int }
	phases := make(map[key]map[string]*Span) // (proc, round) → kind → span
	for i := range tr.Spans {
		sp := &tr.Spans[i]
		switch sp.Kind {
		case KindSend, KindWait, KindCompute:
			k := key{sp.Proc, sp.Round}
			if phases[k] == nil {
				phases[k] = make(map[string]*Span, 3)
			}
			phases[k][sp.Kind] = sp
		}
	}
	lastArrive := make(map[key]int64) // (proc, round) → latest in-wait arrival TS
	decideTS := make(map[int]int64)
	decideRound := make(map[int]int)
	crashed := make(map[int]bool)
	for i := range tr.Points {
		pt := &tr.Points[i]
		switch pt.Kind {
		case PointArrive:
			k := key{pt.Proc, pt.Round}
			if pt.TS > lastArrive[k] {
				lastArrive[k] = pt.TS
			}
		case PointDecide:
			if _, dup := decideRound[pt.Proc]; !dup {
				decideRound[pt.Proc] = pt.Round
				decideTS[pt.Proc] = pt.TS
			}
		case PointCrash:
			if pt.Proc != 0 {
				crashed[pt.Proc] = true
			}
		}
	}

	for p := 1; p <= tr.N; p++ {
		pa := ProcAttribution{Proc: p, Crashed: crashed[p]}
		dr, decided := decideRound[p]
		pa.Decided = decided
		if first := phases[key{p, 1}]; first != nil && first[KindSend] != nil {
			pa.Start = first[KindSend].Start
		}
		if decided {
			pa.DecideRound = dr
			pa.Total = decideTS[p] - pa.Start
			for r := 1; r <= dr; r++ {
				ph := phases[key{p, r}]
				if ph == nil {
					continue
				}
				var rc RoundComponents
				rc.Round = r
				if sp := ph[KindSend]; sp != nil {
					rc.Compute += sp.Duration()
				}
				if sp := ph[KindWait]; sp != nil {
					arr := lastArrive[key{p, r}]
					if arr < sp.Start || len(sp.Peers) == 0 {
						arr = sp.Start // nothing arrived inside the wait
					}
					if arr > sp.End {
						arr = sp.End
					}
					rc.Transport += arr - sp.Start
					tail := sp.End - arr
					switch {
					case tr.Model == rounds.RS.String():
						rc.Barrier += tail
					case len(sp.Peers) < tr.N-1:
						// Some sender never delivered: the receive-or-suspect
						// loop was released by suspicion, not reception.
						rc.FDTimeout += tail
					default:
						rc.Transport += tail
					}
				}
				if sp := ph[KindCompute]; sp != nil {
					end := sp.End
					if r == dr {
						end = decideTS[p] // decision latency stops here
					}
					rc.Compute += end - sp.Start
				}
				pa.Rounds = append(pa.Rounds, rc)
				pa.Components.add(rc.Components)
			}
		}
		a.Procs = append(a.Procs, pa)
	}
	return a
}

// CheckSums verifies the decomposition invariant: every decided process's
// components sum exactly to its measured decision latency.
func (a *Attribution) CheckSums() error {
	for i := range a.Procs {
		p := &a.Procs[i]
		if !p.Decided {
			continue
		}
		if got := p.Components.Total(); got != p.Total {
			return fmt.Errorf("tracing: p%d components sum to %d, measured total %d", p.Proc, got, p.Total)
		}
	}
	return nil
}

// ReconcileRounds checks the trace against the engine replay of the same
// schedule: the trace-observed latency degree must match the run's, and
// every decided process's decide round must agree. A mismatch means the
// live execution diverged from the round-model semantics the conformance
// projector assigned it.
func ReconcileRounds(a *Attribution, run *rounds.Run) error {
	want, ok := run.Latency()
	if !ok {
		return fmt.Errorf("tracing: replay has no finite latency (a correct process never decided)")
	}
	if got := a.ObservedRounds(); got != want {
		return fmt.Errorf("tracing: trace observed %d rounds to decision, replay latency is %d", got, want)
	}
	for i := range a.Procs {
		p := &a.Procs[i]
		if p.Proc >= len(run.DecidedAt) {
			return fmt.Errorf("tracing: trace process p%d outside replay's n=%d", p.Proc, run.N)
		}
		if wantAt := run.DecidedAt[p.Proc]; p.Decided && wantAt != p.DecideRound {
			return fmt.Errorf("tracing: p%d decided at round %d in trace, %d in replay", p.Proc, p.DecideRound, wantAt)
		}
	}
	return nil
}

// fmtDur renders a component value for the attribution table: milliseconds
// for wall traces, units for synthetic ones.
func fmtDur(v int64, timebase string) string {
	if timebase == "synthetic" {
		return fmt.Sprintf("%gu", float64(v)/float64(Unit))
	}
	return fmt.Sprintf("%.3fms", float64(v)/1e6)
}

// Table renders the attribution as an aligned text table: one row per
// decided process plus a totals row, with the share of each component.
func (a *Attribution) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s n=%d t=%d (%s timebase)\n", a.Algorithm, a.Model, a.N, a.T, a.Timebase)

	rows := [][]string{{"proc", "decided", "round", "barrier", "fd-timeout", "transport", "compute", "total"}}
	var sum Components
	var grand int64
	for i := range a.Procs {
		p := &a.Procs[i]
		switch {
		case p.Crashed:
			rows = append(rows, []string{fmt.Sprintf("p%d", p.Proc), "crashed", "-", "-", "-", "-", "-", "-"})
			continue
		case !p.Decided:
			rows = append(rows, []string{fmt.Sprintf("p%d", p.Proc), "no", "-", "-", "-", "-", "-", "-"})
			continue
		}
		sum.add(p.Components)
		grand += p.Total
		rows = append(rows, []string{
			fmt.Sprintf("p%d", p.Proc), "yes", fmt.Sprintf("%d", p.DecideRound),
			fmtDur(p.Barrier, a.Timebase), fmtDur(p.FDTimeout, a.Timebase),
			fmtDur(p.Transport, a.Timebase), fmtDur(p.Compute, a.Timebase),
			fmtDur(p.Total, a.Timebase),
		})
	}
	rows = append(rows, []string{"all", "", "", fmtDur(sum.Barrier, a.Timebase),
		fmtDur(sum.FDTimeout, a.Timebase), fmtDur(sum.Transport, a.Timebase),
		fmtDur(sum.Compute, a.Timebase), fmtDur(grand, a.Timebase)})

	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteString("\n")
		if ri == 0 {
			for c, w := range widths {
				if c > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteString("\n")
		}
	}
	if grand > 0 {
		fmt.Fprintf(&b, "latency degree (rounds to all-correct decided): %d\n", a.ObservedRounds())
		share := func(v int64) string { return fmt.Sprintf("%.1f%%", 100*float64(v)/float64(grand)) }
		fmt.Fprintf(&b, "share: barrier %s, fd-timeout %s, transport %s, compute %s\n",
			share(sum.Barrier), share(sum.FDTimeout), share(sum.Transport), share(sum.Compute))
	}
	return b.String()
}

// procIDs returns the sorted process identifiers appearing in the trace —
// the exporters' track order.
func (t *Trace) procIDs() []int {
	seen := map[int]bool{}
	for i := range t.Spans {
		if t.Spans[i].Proc != 0 {
			seen[t.Spans[i].Proc] = true
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}
