package tracing

import (
	"testing"

	"repro/internal/obs"
)

// fakeClock gives a tracer a deterministic timebase for unit tests.
type fakeClock struct{ now int64 }

func (c *fakeClock) at(t int64) { c.now = t }

func newTestTracer(model string, n int, next obs.Sink) (*Tracer, *fakeClock) {
	tr := NewTracer("TestAlg", model, n, 1, next)
	c := &fakeClock{}
	tr.now = func() int64 { return c.now }
	return tr, c
}

// emitRound drives one complete round for proc p with the given arrivals.
func emitRound(tr *Tracer, c *fakeClock, p, round int, base int64, from []int) {
	c.at(base)
	tr.Emit(obs.Event{Type: obs.EventRoundStart, Round: round, Proc: p})
	c.at(base + 10)
	tr.Emit(obs.Event{Type: obs.EventSend, Round: round, From: p, To: from})
	for i, j := range from {
		c.at(base + 20 + int64(i))
		tr.Emit(obs.Event{Type: obs.EventArrive, Round: round, Proc: p, From: j})
	}
	c.at(base + 50)
	tr.Emit(obs.Event{Type: obs.EventRecv, Round: round, Proc: p, Peers: from})
}

// TestTracerAssembly drives a two-process, one-round exchange through the
// tracer and checks the span tree: run→round→send/wait/compute per process,
// contiguous phases, recorded reception peers, and a decide point inside
// the compute span.
func TestTracerAssembly(t *testing.T) {
	var col obs.Collector
	tr, c := newTestTracer("RS", 2, &col)

	emitRound(tr, c, 1, 1, 0, []int{2})
	emitRound(tr, c, 2, 1, 0, []int{1})
	c.at(60)
	tr.Emit(obs.Event{Type: obs.EventDecide, Round: 1, Proc: 1, Value: obs.Int64(7)})
	c.at(100)
	trace := tr.Finish()

	for _, p := range []int{1, 2} {
		root := trace.Find(func(s *Span) bool { return s.Kind == KindRun && s.Proc == p })
		if root == nil {
			t.Fatalf("p%d: no run span", p)
		}
		round := trace.Find(func(s *Span) bool { return s.Kind == KindRound && s.Proc == p })
		if round == nil || round.Parent != root.ID {
			t.Fatalf("p%d: round span missing or misparented: %+v", p, round)
		}
		var send, wait, comp *Span
		for i := range trace.Spans {
			s := &trace.Spans[i]
			if s.Proc != p || s.Parent != round.ID {
				continue
			}
			switch s.Kind {
			case KindSend:
				send = s
			case KindWait:
				wait = s
			case KindCompute:
				comp = s
			}
		}
		if send == nil || wait == nil || comp == nil {
			t.Fatalf("p%d: missing phase spans (send=%v wait=%v compute=%v)", p, send, wait, comp)
		}
		// Phases tile the round: no gaps, no overlap.
		if send.Start != round.Start || send.End != wait.Start || wait.End != comp.Start || comp.End != round.End {
			t.Errorf("p%d: phases do not tile the round: round [%d,%d] send [%d,%d] wait [%d,%d] compute [%d,%d]",
				p, round.Start, round.End, send.Start, send.End, wait.Start, wait.End, comp.Start, comp.End)
		}
		if len(wait.Peers) != 1 {
			t.Errorf("p%d: wait peers = %v, want one sender", p, wait.Peers)
		}
	}

	var decides int
	for _, pt := range trace.Points {
		if pt.Kind == PointDecide {
			decides++
			if pt.Proc != 1 || pt.Value == nil || *pt.Value != 7 {
				t.Errorf("decide point = %+v, want p1 value 7", pt)
			}
			parent := trace.Find(func(s *Span) bool { return s.ID == pt.Parent })
			if parent == nil || parent.Kind != KindCompute {
				t.Errorf("decide parent span = %+v, want the compute span", parent)
			}
		}
	}
	if decides != 1 {
		t.Errorf("decide points = %d, want 1", decides)
	}

	// The forwarded stream is stamped: every event carries a timestamp (or
	// is the trace-epoch event) and the arrivals carry joined clocks.
	evs := col.Events()
	if len(evs) == 0 {
		t.Fatal("no events forwarded to the next sink")
	}
	for _, ev := range evs {
		if ev.Type == obs.EventArrive && ev.Clock == 0 {
			t.Errorf("arrival not clock-stamped: %+v", ev)
		}
	}
}

// TestTracerLamportJoin checks the happens-before discipline: a receive's
// clock must exceed the matching send's clock, and the reception record's
// close joins with every peer's send.
func TestTracerLamportJoin(t *testing.T) {
	tr, c := newTestTracer("RWS", 2, nil)

	// p1 starts and sends at clock 2; p2 lags (clock 2 after its own send).
	c.at(0)
	tr.Emit(obs.Event{Type: obs.EventRoundStart, Round: 1, Proc: 1})
	tr.Emit(obs.Event{Type: obs.EventSend, Round: 1, From: 1, To: []int{2}})
	tr.Emit(obs.Event{Type: obs.EventRoundStart, Round: 1, Proc: 2})
	// Drive p1's clock well past p2's before p2 sends.
	for i := 0; i < 10; i++ {
		tr.Emit(obs.Event{Type: obs.EventSuspect, Round: 1, Proc: 2, By: 1})
		tr.Emit(obs.Event{Type: obs.EventRetract, Round: 1, Proc: 2, By: 1})
	}
	tr.Emit(obs.Event{Type: obs.EventSend, Round: 1, From: 2, To: []int{1}})

	c.at(10)
	tr.Emit(obs.Event{Type: obs.EventArrive, Round: 1, Proc: 2, From: 1})
	tr.Emit(obs.Event{Type: obs.EventArrive, Round: 1, Proc: 1, From: 2})
	tr.Emit(obs.Event{Type: obs.EventRecv, Round: 1, Proc: 2, Peers: []int{1}})
	trace := tr.Finish()

	var p1Send, p2Send, p1ArriveFrom2, p2ArriveFrom1 int64
	for _, s := range trace.Spans {
		if s.Kind == KindWait && s.Proc == 1 {
			p1Send = s.StartClock // p1's wait opens at its send clock
		}
		if s.Kind == KindWait && s.Proc == 2 {
			p2Send = s.StartClock
		}
	}
	for _, pt := range trace.Points {
		if pt.Kind == PointArrive && pt.Proc == 2 && pt.From == 1 {
			p2ArriveFrom1 = pt.Clock
		}
		if pt.Kind == PointArrive && pt.Proc == 1 && pt.From == 2 {
			p1ArriveFrom2 = pt.Clock
		}
	}
	if p2ArriveFrom1 <= p1Send {
		t.Errorf("p2's receive clock %d does not exceed p1's send clock %d", p2ArriveFrom1, p1Send)
	}
	// p1's clock raced far ahead of p2's send clock (20 detector events);
	// the join must keep p1 monotone rather than adopting the smaller
	// sender clock: 1 (round) + 1 (send) + 20 (fd) + 1 (arrive) = 23.
	if p1ArriveFrom2 != 23 {
		t.Errorf("p1's receive clock = %d, want 23 (monotone past its own history)", p1ArriveFrom2)
	}
	if p1ArriveFrom2 <= p2Send {
		t.Errorf("p1's receive clock %d does not exceed p2's send clock %d", p1ArriveFrom2, p2Send)
	}
}

// TestTracerFaultSpans checks the global track: a partition becomes a span
// closed by its heal, an injected crash (round 0) opens a blackhole span
// closed by the recovery, and suspicions land on the observer's track.
func TestTracerFaultSpans(t *testing.T) {
	tr, c := newTestTracer("RWS", 3, nil)

	c.at(0)
	tr.Emit(obs.Event{Type: obs.EventPartition, To: []int{1, 2}, Value: obs.Int64(0)})
	c.at(100)
	tr.Emit(obs.Event{Type: obs.EventCrash, Round: 0, Proc: 3})
	c.at(200)
	tr.Emit(obs.Event{Type: obs.EventSuspect, Round: 1, Proc: 3, By: 1})
	c.at(300)
	tr.Emit(obs.Event{Type: obs.EventHeal, To: []int{1, 2}})
	c.at(400)
	tr.Emit(obs.Event{Type: obs.EventRecover, Proc: 3})
	trace := tr.Finish()

	part := trace.Find(func(s *Span) bool { return s.Kind == KindPartition })
	if part == nil || part.Start != 0 || part.End != 300 || part.Proc != 0 {
		t.Errorf("partition span = %+v, want global [0,300]", part)
	}
	hole := trace.Find(func(s *Span) bool { return s.Kind == KindBlackhole })
	if hole == nil || hole.Start != 100 || hole.End != 400 {
		t.Errorf("blackhole span = %+v, want [100,400]", hole)
	}
	var suspects int
	for _, pt := range trace.Points {
		if pt.Kind == PointSuspect {
			suspects++
			if pt.Proc != 1 || pt.From != 3 {
				t.Errorf("suspicion point = %+v, want observer p1, subject p3", pt)
			}
		}
	}
	if suspects != 1 {
		t.Errorf("suspicion points = %d, want 1", suspects)
	}
}

// TestTracerNilAndFinishIdempotent covers the nil-sink contract and double
// Finish.
func TestTracerNilAndFinishIdempotent(t *testing.T) {
	var tr *Tracer
	tr.Emit(obs.Event{Type: obs.EventDecide}) // must not panic

	tr2, c := newTestTracer("RS", 1, nil)
	c.at(5)
	tr2.Emit(obs.Event{Type: obs.EventRoundStart, Round: 1, Proc: 1})
	a := tr2.Finish()
	b := tr2.Finish()
	if a != b {
		t.Error("Finish not idempotent")
	}
	for _, s := range a.Spans {
		if s.End < s.Start {
			t.Errorf("unsealed span after Finish: %+v", s)
		}
	}
}
