package tracing

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/rounds"
)

func vals(vs ...int64) []model.Value {
	out := make([]model.Value, len(vs)+1)
	for i, v := range vs {
		out[i+1] = model.Value(v)
	}
	return out
}

func mustRun(t *testing.T, kind rounds.ModelKind, alg rounds.Algorithm, initial []model.Value, tt int, adv rounds.Adversary) *rounds.Run {
	t.Helper()
	run, err := rounds.RunAlgorithm(kind, alg, initial, tt, adv)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestAttributionSumsToTotal is the property test of the issue's acceptance
// criteria: across every algorithm × model pairing and a battery of seeded
// adversaries, the four attribution components of every decided process sum
// exactly to its measured decision latency, and the trace-observed round
// count reconciles against the run itself.
func TestAttributionSumsToTotal(t *testing.T) {
	cases := []struct {
		kind rounds.ModelKind
		alg  rounds.Algorithm
	}{
		{rounds.RS, consensus.FloodSet{}},
		{rounds.RS, consensus.A1{}},
		{rounds.RWS, consensus.FloodSetWS{}},
		{rounds.RWS, consensus.A1{}}, // incorrect in RWS, but traces still attribute
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 8; seed++ {
			name := fmt.Sprintf("%s/%s/seed=%d", tc.alg.Name(), tc.kind, seed)
			t.Run(name, func(t *testing.T) {
				adv := rounds.NewRandomAdversary(seed, 0.3, 0.2)
				run := mustRun(t, tc.kind, tc.alg, vals(3, 1, 4, 1), 1, adv)
				tr := Synthesize(run)
				a := Attribute(tr)
				if err := a.CheckSums(); err != nil {
					t.Fatal(err)
				}
				if lat, ok := run.Latency(); ok {
					if got := a.ObservedRounds(); got != lat {
						t.Errorf("observed rounds %d, run latency %d", got, lat)
					}
					if err := ReconcileRounds(a, run); err != nil {
						t.Error(err)
					}
				}
				// RS traces must attribute no detector time; detector time is
				// an RWS-only phenomenon.
				for _, p := range a.Procs {
					if tc.kind == rounds.RS && p.FDTimeout != 0 {
						t.Errorf("p%d: RS attribution has fd-timeout %d", p.Proc, p.FDTimeout)
					}
				}
			})
		}
	}
}

// TestAttributionSectionFiveContrast is the paper-facing acceptance check:
// on the same failure-free scenario (n=3, t=1), A1 over RS decides at round
// 1 with no round-2 cost at all, while FloodSetWS over RWS — like every
// correct RWS uniform consensus algorithm (§5.3, Λ ≥ 2) — pays a visible
// round-2 wait.
func TestAttributionSectionFiveContrast(t *testing.T) {
	initial := vals(3, 1, 4)

	rs := Attribute(Synthesize(mustRun(t, rounds.RS, consensus.A1{}, initial, 1, rounds.NoFailures)))
	rws := Attribute(Synthesize(mustRun(t, rounds.RWS, consensus.FloodSetWS{}, initial, 1, rounds.NoFailures)))

	if got := rs.ObservedRounds(); got != 1 {
		t.Fatalf("A1/RS failure-free decides at round %d, want 1 (Λ(A1)=1)", got)
	}
	if got := rws.ObservedRounds(); got != 2 {
		t.Fatalf("FloodSetWS/RWS failure-free decides at round %d, want 2 (Λ ≥ 2)", got)
	}
	for _, p := range rs.Procs {
		if len(p.Rounds) != 1 {
			t.Errorf("RS p%d attribution covers %d rounds, want exactly 1 — no round-2 cost", p.Proc, len(p.Rounds))
		}
	}
	for _, p := range rws.Procs {
		if len(p.Rounds) != 2 {
			t.Fatalf("RWS p%d attribution covers %d rounds, want 2", p.Proc, len(p.Rounds))
		}
		r2 := p.Rounds[1]
		if wait := r2.Transport + r2.FDTimeout + r2.Barrier; wait <= 0 {
			t.Errorf("RWS p%d round 2 shows no wait cost; the ≥2-round price should be visible", p.Proc)
		}
	}
}

// TestAttributeCrashedAndUndecided covers the non-deciding rows: a crashed
// process is flagged, attributes nothing, and keeps the table renderable.
func TestAttributeCrashedAndUndecided(t *testing.T) {
	adv := &rounds.CrashOnceAdversary{Victim: 1, Round: 1, Reach: 0}
	run := mustRun(t, rounds.RS, consensus.FloodSet{}, vals(3, 1, 4), 1, adv)
	a := Attribute(Synthesize(run))
	if err := a.CheckSums(); err != nil {
		t.Fatal(err)
	}
	var crashedRow *ProcAttribution
	for i := range a.Procs {
		if a.Procs[i].Proc == 1 {
			crashedRow = &a.Procs[i]
		}
	}
	if crashedRow == nil || !crashedRow.Crashed || crashedRow.Decided {
		t.Fatalf("p1 row = %+v, want crashed and undecided", crashedRow)
	}
	if crashedRow.Components.Total() != 0 {
		t.Errorf("crashed process attributed %d, want 0", crashedRow.Components.Total())
	}

	table := a.Table()
	for _, want := range []string{"crashed", "barrier", "fd-timeout", "latency degree"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestReconcileRoundsDetectsDivergence checks the failure mode: a doctored
// trace whose decide round disagrees with the replay must be rejected.
func TestReconcileRoundsDetectsDivergence(t *testing.T) {
	run := mustRun(t, rounds.RS, consensus.FloodSet{}, vals(3, 1, 4), 1, rounds.NoFailures)
	a := Attribute(Synthesize(run))
	if err := ReconcileRounds(a, run); err != nil {
		t.Fatalf("faithful trace rejected: %v", err)
	}
	for i := range a.Procs {
		if a.Procs[i].Decided {
			a.Procs[i].DecideRound++ // doctor one decision round
			break
		}
	}
	if err := ReconcileRounds(a, run); err == nil {
		t.Error("doctored trace reconciled cleanly")
	}
}
