package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// Chrome trace-event constants: the whole trace is one process (pid 1),
// each ssfd process is a thread (tid = proc), and the global fault/schedule
// track sits above the process range.
const (
	chromePID       = 1
	chromeGlobalTID = 1000
)

// chromeEvent is one entry of the Chrome trace-event JSON array — the
// subset of the format the exporters emit: ph "X" complete spans with
// microsecond ts/dur, ph "i" instants, and ph "M" metadata records naming
// the process and threads. Perfetto and chrome://tracing both load it.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`            // microseconds
	Dur   *float64       `json:"dur,omitempty"` // microseconds, ph "X" only
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope, ph "i" only
	Args  map[string]any `json:"args,omitempty"`
}

// chromeFile is the JSON-object container variant of the format, which
// carries trace-level metadata alongside the event array.
type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
}

// tid maps a span/point owner to its Chrome thread.
func tid(proc int) int {
	if proc == 0 {
		return chromeGlobalTID
	}
	return proc
}

// us converts trace nanoseconds to the format's microseconds; ns converts
// back, rounding to the nearest nanosecond so equal microsecond values
// always map to equal nanosecond values (the attribution exactness only
// needs shared boundaries to stay shared).
func us(ns int64) float64 { return float64(ns) / 1e3 }

func toNS(us float64) int64 { return int64(math.Round(us * 1e3)) }

// WriteChrome renders the trace as Chrome trace-event JSON. The output is
// deterministic for a deterministic trace: metadata first, then spans in ID
// order, then points in record order, all with stable argument keys.
func (t *Trace) WriteChrome(w io.Writer) error {
	f := chromeFile{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"algorithm": t.Algorithm,
			"model":     t.Model,
			"n":         t.N,
			"t":         t.T,
			"timebase":  t.Timebase,
		},
	}

	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": fmt.Sprintf("ssfd %s/%s n=%d t=%d", t.Algorithm, t.Model, t.N, t.T)},
	})
	for _, p := range t.procIDs() {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: chromePID, TID: tid(p),
			Args: map[string]any{"name": fmt.Sprintf("p%d", p)},
		})
	}
	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "thread_name", Phase: "M", PID: chromePID, TID: chromeGlobalTID,
		Args: map[string]any{"name": "faults/schedule"},
	})

	spans := make([]Span, len(t.Spans))
	copy(spans, t.Spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].ID < spans[j].ID })
	for i := range spans {
		sp := &spans[i]
		name := sp.Kind
		if sp.Round > 0 {
			name = fmt.Sprintf("%s r%d", sp.Kind, sp.Round)
		}
		dur := us(sp.End - sp.Start)
		args := map[string]any{
			"id":     int64(sp.ID),
			"parent": int64(sp.Parent),
			"proc":   sp.Proc,
			"round":  sp.Round,
			"kind":   sp.Kind,
			"c0":     sp.StartClock,
			"c1":     sp.EndClock,
		}
		if sp.Peers != nil {
			args["peers"] = sp.Peers
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: name, Cat: sp.Cat, Phase: "X", TS: us(sp.Start), Dur: &dur,
			PID: chromePID, TID: tid(sp.Proc), Args: args,
		})
	}

	for i := range t.Points {
		pt := &t.Points[i]
		name := pt.Kind
		if pt.From != 0 {
			name = fmt.Sprintf("%s p%d", pt.Kind, pt.From)
		}
		args := map[string]any{
			"parent": int64(pt.Parent),
			"proc":   pt.Proc,
			"round":  pt.Round,
			"from":   pt.From,
			"clock":  pt.Clock,
			"kind":   pt.Kind,
		}
		if pt.Value != nil {
			args["value"] = *pt.Value
		}
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: name, Cat: pt.Cat, Phase: "i", TS: us(pt.TS),
			PID: chromePID, TID: tid(pt.Proc), Scope: "t", Args: args,
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ReadChrome parses a trace back from its Chrome trace-event export — the
// inverse of WriteChrome, used by ssfd-trace to attribute a saved trace.
// Only the events WriteChrome emits are understood; metadata records are
// consulted for the trace coordinate.
func ReadChrome(r io.Reader) (*Trace, error) {
	var f chromeFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("tracing: parsing chrome trace: %w", err)
	}
	t := &Trace{}
	if od := f.OtherData; od != nil {
		t.Algorithm, _ = od["algorithm"].(string)
		t.Model, _ = od["model"].(string)
		t.Timebase, _ = od["timebase"].(string)
		if v, ok := od["n"].(float64); ok {
			t.N = int(v)
		}
		if v, ok := od["t"].(float64); ok {
			t.T = int(v)
		}
	}
	num := func(args map[string]any, key string) int64 {
		v, _ := args[key].(float64)
		return int64(v)
	}
	for _, ev := range f.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.Args == nil {
				return nil, fmt.Errorf("tracing: span %q without args", ev.Name)
			}
			var dur float64
			if ev.Dur != nil {
				dur = *ev.Dur
			}
			kind, _ := ev.Args["kind"].(string)
			sp := Span{
				ID:         SpanID(num(ev.Args, "id")),
				Parent:     SpanID(num(ev.Args, "parent")),
				Proc:       int(num(ev.Args, "proc")),
				Kind:       kind,
				Cat:        ev.Cat,
				Round:      int(num(ev.Args, "round")),
				Start:      toNS(ev.TS),
				End:        toNS(ev.TS) + toNS(dur),
				StartClock: num(ev.Args, "c0"),
				EndClock:   num(ev.Args, "c1"),
			}
			if raw, ok := ev.Args["peers"].([]any); ok {
				sp.Peers = make([]int, 0, len(raw))
				for _, p := range raw {
					if v, ok := p.(float64); ok {
						sp.Peers = append(sp.Peers, int(v))
					}
				}
			}
			t.Spans = append(t.Spans, sp)
		case "i":
			if ev.Args == nil {
				return nil, fmt.Errorf("tracing: instant %q without args", ev.Name)
			}
			kind, _ := ev.Args["kind"].(string)
			pt := Point{
				Parent: SpanID(num(ev.Args, "parent")),
				Proc:   int(num(ev.Args, "proc")),
				Kind:   kind,
				Cat:    ev.Cat,
				Round:  int(num(ev.Args, "round")),
				From:   int(num(ev.Args, "from")),
				TS:     toNS(ev.TS),
				Clock:  num(ev.Args, "clock"),
			}
			if v, ok := ev.Args["value"].(float64); ok {
				pt.Value = Int64Ptr(int64(v))
			}
			t.Points = append(t.Points, pt)
		}
	}
	sort.Slice(t.Spans, func(i, j int) bool { return t.Spans[i].ID < t.Spans[j].ID })
	return t, nil
}

// Int64Ptr is a convenience for populating pointer-valued fields.
func Int64Ptr(v int64) *int64 { return &v }
