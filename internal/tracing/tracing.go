// Package tracing is the repository's causal tracing layer: it turns the
// structured event streams of package obs into per-process span trees
// ordered by happens-before, exportable as Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing) or as a self-contained HTML timeline, and
// analyzable by the latency attribution of attribute.go.
//
// The paper's efficiency result (§5) is a timing claim — one round suffices
// in RS with t=1 while every RWS uniform-consensus algorithm pays at least
// two — and a flat event log cannot show *where* a live round's wall-clock
// time goes. This package restores the causal structure: every event is
// stamped with a Lamport clock (receives join with the matching send, so the
// stamps respect happens-before) and filed under its enclosing span. A live
// process's timeline decomposes each round into three phases:
//
//	round r ─┬─ send     broadcast of the round's messages
//	         ├─ wait     the reception wait: RS round barrier, or the RWS
//	         │           receive-or-suspect loop over the failure detector
//	         └─ compute  transition + decision test
//
// plus instant points for message arrivals, suspicions, retractions,
// decisions and crashes. Fault-injector topology changes (package faults)
// become spans on a global track: a partition span from formation to heal, a
// blackhole span from injected crash to recovery. Engine and emulated runs
// get the identical structure through Synthesize, on a deterministic
// synthetic timebase, so live and model-level executions render identically.
//
// A Tracer is an obs.Sink: interpose it in front of any sink chain (JSONL
// emitter, collector) and downstream events carry their TS/Clock/Span
// stamps. Finish assembles the trace; WriteChrome/WriteHTML export it;
// Attribute decomposes decision latency; ReconcileRounds checks the
// observed round count against the engine replay of the same schedule.
package tracing

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// SpanID identifies one span within a trace. IDs are assigned in event
// order starting at 1; 0 means "no span" (a root, or an unparented point).
type SpanID int64

// Span kinds. Runtime spans form the per-process tree run→round→phase;
// fault spans live on the global track.
const (
	KindRun       = "run"       // one process's whole execution
	KindRound     = "round"     // one protocol round
	KindSend      = "send"      // the round's broadcast phase
	KindWait      = "wait"      // the round's reception wait
	KindCompute   = "compute"   // transition + decision test
	KindPartition = "partition" // fault injector: partition window
	KindBlackhole = "blackhole" // fault injector: crash/recovery window
	KindSchedule  = "schedule"  // synthetic: the whole engine run
)

// Request-scoped span kinds: the serving daemon's per-request causal tree
// (http request → kv flight → consensus instance). They ride the same
// Span/Trace machinery — WriteChrome and ReadChrome round-trip them like
// any other kind — and tile the request's wall-clock total the same way
// send/wait/compute tile a round.
const (
	KindRequest    = "request"    // one HTTP request, end to end
	KindHandler    = "handler"    // parse, dispatch, response encoding
	KindQueue      = "queue"      // blocked behind another client's KV flight
	KindContention = "contention" // CAS head checks, slot acquisition, retries
	KindConsensus  = "consensus"  // own instance open → engine completion
	KindCommit     = "commit"     // commit callback → waiter wakeup
)

// Point kinds: instantaneous trace events.
const (
	PointArrive  = "arrive"  // a data message landed (From → Proc, Round)
	PointSuspect = "suspect" // Proc's detector suspected From
	PointRetract = "retract" // Proc's detector retracted From
	PointDecide  = "decide"  // Proc decided Value at Round
	PointCrash   = "crash"   // Proc crashed during Round
)

// Categories group spans for rendering (one color per category).
const (
	CatRuntime = "runtime"
	CatFD      = "fd"
	CatFaults  = "faults"
	CatRounds  = "rounds" // synthetic engine spans
	CatServe   = "serve"  // request-scoped serving spans
)

// Span is one interval of a trace. Times are nanoseconds from the trace
// epoch; clocks are Lamport stamps taken when the span opened and closed.
type Span struct {
	ID     SpanID
	Parent SpanID
	Proc   int // 1-based process; 0 = global track
	Kind   string
	Cat    string
	Round  int // 0 for run-level and fault spans

	Start, End           int64
	StartClock, EndClock int64

	// Peers is the reception record a wait span closed with: the senders
	// whose round messages had arrived (KindWait only). The attribution
	// analyzer reads it to tell a transport-bound wait from a
	// detector-bound one.
	Peers []int
}

// Duration returns the span's extent.
func (s *Span) Duration() int64 { return s.End - s.Start }

// Point is one instantaneous trace event.
type Point struct {
	Parent SpanID
	Proc   int // owning track: receiver (arrive), observer (suspect/retract)
	Kind   string
	Cat    string
	Round  int
	From   int    // arrive: sender; suspect/retract: the suspected process
	Value  *int64 // decide only
	TS     int64
	Clock  int64
}

// Trace is an assembled causal trace: the coordinate it was taken at, its
// timebase, and the closed spans and points.
type Trace struct {
	Algorithm string
	Model     string
	N, T      int
	// Timebase is "wall" for live traces (nanoseconds of real time) or
	// "synthetic" for engine traces (Synthesize's fixed units).
	Timebase string

	Spans  []Span
	Points []Point
}

// Find returns the first span matching the predicate, or nil.
func (t *Trace) Find(pred func(*Span) bool) *Span {
	for i := range t.Spans {
		if pred(&t.Spans[i]) {
			return &t.Spans[i]
		}
	}
	return nil
}

// procTrack is a Tracer's per-process assembly state.
type procTrack struct {
	clock     int64
	root      SpanID
	round     SpanID // open round span (0 when none)
	phase     SpanID // open phase span (0 when none)
	phaseKind string
	crashed   bool
}

// sendKey identifies one (sender, round) broadcast for clock propagation.
type sendKey struct{ from, round int }

// Tracer assembles a live event stream into a Trace. It implements
// obs.Sink; events are stamped (TS, Clock, Span) and forwarded to the next
// sink, so a JSONL file written behind a tracer carries the span context
// inline. Safe for concurrent use — live nodes emit from their own
// goroutines — and nil-safe like every sink in this repository.
type Tracer struct {
	mu       sync.Mutex
	next     obs.Sink
	epoch    time.Time
	now      func() int64 // ns since epoch; monotone under mu
	lastTS   int64
	nextID   SpanID
	procs    map[int]*procTrack
	sends    map[sendKey]int64  // Lamport clock of each (sender, round) send
	open     map[SpanID]int     // open span ID → index in trace.Spans
	parts    map[string]SpanID // open partition spans by group signature
	holes    map[int]SpanID    // open blackhole spans by process
	trace    *Trace
	finished bool
}

// NewTracer builds a tracer for a live run at the given coordinate. next
// may be nil; when set, every event is forwarded after stamping.
func NewTracer(algorithm, model string, n, t int, next obs.Sink) *Tracer {
	epoch := time.Now()
	tr := &Tracer{
		next:  next,
		epoch: epoch,
		procs: make(map[int]*procTrack),
		sends: make(map[sendKey]int64),
		open:  make(map[SpanID]int),
		parts: make(map[string]SpanID),
		holes: make(map[int]SpanID),
		trace: &Trace{Algorithm: algorithm, Model: model, N: n, T: t, Timebase: "wall"},
	}
	tr.now = func() int64 { return int64(time.Since(epoch)) }
	return tr
}

// stamp returns a monotone timestamp (callers hold mu).
func (t *Tracer) stamp() int64 {
	ts := t.now()
	if ts < t.lastTS {
		ts = t.lastTS
	}
	t.lastTS = ts
	return ts
}

// proc returns (creating) the track for process p.
func (t *Tracer) proc(p int) *procTrack {
	pt := t.procs[p]
	if pt == nil {
		pt = &procTrack{}
		t.procs[p] = pt
	}
	return pt
}

// openSpan appends an open span and returns its ID.
func (t *Tracer) openSpan(parent SpanID, proc int, kind, cat string, round int, ts, clock int64) SpanID {
	t.nextID++
	id := t.nextID
	t.trace.Spans = append(t.trace.Spans, Span{
		ID: id, Parent: parent, Proc: proc, Kind: kind, Cat: cat, Round: round,
		Start: ts, End: -1, StartClock: clock, EndClock: clock,
	})
	t.open[id] = len(t.trace.Spans) - 1
	return id
}

// closeSpan seals an open span (no-op for id 0 or an already-closed span).
func (t *Tracer) closeSpan(id SpanID, ts, clock int64) *Span {
	idx, ok := t.open[id]
	if id == 0 || !ok {
		return nil
	}
	delete(t.open, id)
	sp := &t.trace.Spans[idx]
	sp.End = ts
	sp.EndClock = clock
	return sp
}

// closePhases seals a process's open phase, round and (optionally) root.
func (t *Tracer) closeProc(pt *procTrack, ts int64, andRoot bool) {
	t.closeSpan(pt.phase, ts, pt.clock)
	pt.phase, pt.phaseKind = 0, ""
	t.closeSpan(pt.round, ts, pt.clock)
	pt.round = 0
	if andRoot {
		t.closeSpan(pt.root, ts, pt.clock)
		pt.root = 0
	}
}

// point files an instant event.
func (t *Tracer) point(p Point) {
	t.trace.Points = append(t.trace.Points, p)
}

// Emit implements obs.Sink: the event is folded into the span assembly,
// stamped, and forwarded.
func (t *Tracer) Emit(ev obs.Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ts := t.stamp()
	var clock int64
	var span SpanID

	switch ev.Type {
	case obs.EventRoundStart:
		pt := t.proc(ev.Proc)
		pt.clock++
		if pt.root == 0 && !pt.crashed {
			pt.root = t.openSpan(0, ev.Proc, KindRun, CatRuntime, 0, ts, pt.clock)
		}
		// The previous round's compute phase runs right up to this instant.
		t.closeSpan(pt.phase, ts, pt.clock)
		t.closeSpan(pt.round, ts, pt.clock)
		pt.round = t.openSpan(pt.root, ev.Proc, KindRound, CatRuntime, ev.Round, ts, pt.clock)
		pt.phase = t.openSpan(pt.round, ev.Proc, KindSend, CatRuntime, ev.Round, ts, pt.clock)
		pt.phaseKind = KindSend
		clock, span = pt.clock, pt.round

	case obs.EventSend:
		pt := t.proc(ev.From)
		pt.clock++
		t.sends[sendKey{ev.From, ev.Round}] = pt.clock
		if pt.phaseKind == KindSend {
			t.closeSpan(pt.phase, ts, pt.clock)
			pt.phase = t.openSpan(pt.round, ev.From, KindWait, CatRuntime, ev.Round, ts, pt.clock)
			pt.phaseKind = KindWait
		}
		clock, span = pt.clock, pt.phase

	case obs.EventArrive:
		pt := t.proc(ev.Proc)
		c := pt.clock
		if sc := t.sends[sendKey{ev.From, ev.Round}]; sc > c {
			c = sc
		}
		pt.clock = c + 1
		parent := pt.phase
		if parent == 0 {
			parent = pt.root
		}
		t.point(Point{Parent: parent, Proc: ev.Proc, Kind: PointArrive, Cat: CatRuntime,
			Round: ev.Round, From: ev.From, TS: ts, Clock: pt.clock})
		clock, span = pt.clock, parent

	case obs.EventRecv:
		pt := t.proc(ev.Proc)
		c := pt.clock
		for _, j := range ev.Peers {
			if sc := t.sends[sendKey{j, ev.Round}]; sc > c {
				c = sc
			}
		}
		pt.clock = c + 1
		if pt.phaseKind == KindSend {
			// The node sent to no one (n=1, or a zero-reach broadcast), so no
			// send event arrived; the wait was still real, just unobserved.
			t.closeSpan(pt.phase, ts, pt.clock)
			pt.phase = t.openSpan(pt.round, ev.Proc, KindWait, CatRuntime, ev.Round, ts, pt.clock)
			pt.phaseKind = KindWait
		}
		if sp := t.closeSpan(t.proc(ev.Proc).phase, ts, pt.clock); sp != nil && sp.Kind == KindWait {
			sp.Peers = append([]int(nil), ev.Peers...)
		}
		pt.phase = t.openSpan(pt.round, ev.Proc, KindCompute, CatRuntime, ev.Round, ts, pt.clock)
		pt.phaseKind = KindCompute
		clock, span = pt.clock, pt.phase

	case obs.EventDecide:
		pt := t.proc(ev.Proc)
		pt.clock++
		t.point(Point{Parent: pt.phase, Proc: ev.Proc, Kind: PointDecide, Cat: CatRuntime,
			Round: ev.Round, Value: ev.Value, TS: ts, Clock: pt.clock})
		clock, span = pt.clock, pt.phase

	case obs.EventCrash:
		if ev.Round == 0 {
			// Fault-injector blackhole: a wall-clock kill on the global track.
			if _, dup := t.holes[ev.Proc]; !dup {
				t.holes[ev.Proc] = t.openSpan(0, 0, KindBlackhole, CatFaults, 0, ts, 0)
			}
			t.point(Point{Parent: t.holes[ev.Proc], Proc: 0, Kind: PointCrash, Cat: CatFaults,
				From: ev.Proc, TS: ts})
			span = t.holes[ev.Proc]
			break
		}
		pt := t.proc(ev.Proc)
		pt.clock++
		pt.crashed = true
		t.point(Point{Parent: pt.round, Proc: ev.Proc, Kind: PointCrash, Cat: CatRuntime,
			Round: ev.Round, TS: ts, Clock: pt.clock})
		t.closeProc(pt, ts, true)
		clock, span = pt.clock, 0

	case obs.EventSuspect, obs.EventRetract:
		pt := t.proc(ev.By)
		pt.clock++
		kind := PointSuspect
		if ev.Type == obs.EventRetract {
			kind = PointRetract
		}
		parent := pt.phase
		if parent == 0 {
			parent = pt.root
		}
		t.point(Point{Parent: parent, Proc: ev.By, Kind: kind, Cat: CatFD,
			Round: ev.Round, From: ev.Proc, TS: ts, Clock: pt.clock})
		clock, span = pt.clock, parent

	case obs.EventPartition:
		sig := fmt.Sprint(ev.To)
		if _, dup := t.parts[sig]; !dup {
			t.parts[sig] = t.openSpan(0, 0, KindPartition, CatFaults, 0, ts, 0)
		}
		span = t.parts[sig]

	case obs.EventHeal:
		sig := fmt.Sprint(ev.To)
		t.closeSpan(t.parts[sig], ts, 0)
		delete(t.parts, sig)

	case obs.EventRecover:
		t.closeSpan(t.holes[ev.Proc], ts, 0)
		delete(t.holes, ev.Proc)
	}

	next := t.next
	t.mu.Unlock()
	if next != nil {
		ev.TS = ts
		ev.Clock = clock
		ev.Span = int64(span)
		next.Emit(ev)
	}
}

// Finish seals every open span at the last observed timestamp and returns
// the assembled trace. Further Emit calls are still accepted (late events
// from a closing cluster) but no longer recorded. Safe to call once.
func (t *Tracer) Finish() *Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return t.trace
	}
	t.finished = true
	ts := t.lastTS
	procs := make([]int, 0, len(t.procs))
	for p := range t.procs {
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for _, p := range procs {
		t.closeProc(t.procs[p], ts, true)
	}
	for id := range t.open {
		t.closeSpan(id, ts, 0)
	}
	sort.Slice(t.trace.Spans, func(i, j int) bool { return t.trace.Spans[i].ID < t.trace.Spans[j].ID })
	return t.trace
}
