package tracing

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/rounds"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenRun is the fixed scenario behind the exporter golden files: an RWS
// FloodSetWS run under a seeded adversary, so the schedule — and therefore
// the synthetic trace — is fully deterministic.
func goldenRun(t *testing.T) *rounds.Run {
	t.Helper()
	return mustRun(t, rounds.RWS, consensus.FloodSetWS{}, vals(3, 1, 4), 1,
		rounds.NewRandomAdversary(42, 0.5, 0.3))
}

// TestChromeGolden is the determinism check of the issue's acceptance
// criteria: a fixed seed produces byte-identical Chrome trace JSON, pinned
// by a committed golden file. Run with -update to regenerate.
func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Synthesize(goldenRun(t)).WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}

	// Two synthesize+export passes over the same schedule must agree byte
	// for byte before we even consult the golden file.
	var again bytes.Buffer
	if err := Synthesize(goldenRun(t)).WriteChrome(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two exports of the same schedule differ")
	}

	golden := filepath.Join("testdata", "golden_floodsetws_rws_seed42.trace.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome export drifted from the golden file (rerun with -update if intended)")
	}

	// The export must also be a valid Chrome trace container.
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events in the export")
	}
}

// TestChromeRoundTrip checks ReadChrome inverts WriteChrome on everything
// the attribution analyzer consumes: the re-read trace attributes
// identically to the original.
func TestChromeRoundTrip(t *testing.T) {
	tr := Synthesize(goldenRun(t))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChrome(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != tr.Algorithm || back.Model != tr.Model ||
		back.N != tr.N || back.T != tr.T || back.Timebase != tr.Timebase {
		t.Errorf("round-tripped coordinate = %s/%s n=%d t=%d %s, want %s/%s n=%d t=%d %s",
			back.Algorithm, back.Model, back.N, back.T, back.Timebase,
			tr.Algorithm, tr.Model, tr.N, tr.T, tr.Timebase)
	}
	if len(back.Spans) != len(tr.Spans) || len(back.Points) != len(tr.Points) {
		t.Fatalf("round trip lost records: %d/%d spans, %d/%d points",
			len(back.Spans), len(tr.Spans), len(back.Points), len(tr.Points))
	}
	a, b := Attribute(tr), Attribute(back)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("attribution changed across the round trip:\n%s\nvs\n%s", a.Table(), b.Table())
	}
	if err := b.CheckSums(); err != nil {
		t.Error(err)
	}
}

// TestHTMLGolden smoke-checks the HTML export — self-contained page, the
// embedded data block parses, and the determinism golden holds.
func TestHTMLGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Synthesize(goldenRun(t)).WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		`<script type="application/json" id="ssfd-trace-data">`,
		"FloodSetWS", "RWS",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html export missing %q", want)
		}
	}
	if strings.Contains(out, "http://") || strings.Contains(out, "https://") {
		t.Error("html export references external assets; it must be self-contained")
	}

	// The embedded block must parse back to the span counts of the trace.
	start := strings.Index(out, `id="ssfd-trace-data">`) + len(`id="ssfd-trace-data">`)
	end := strings.Index(out[start:], "</script>")
	var data struct {
		Spans  []map[string]any `json:"spans"`
		Points []map[string]any `json:"points"`
	}
	if err := json.Unmarshal([]byte(out[start:start+end]), &data); err != nil {
		t.Fatalf("embedded data block is not valid JSON: %v", err)
	}
	tr := Synthesize(goldenRun(t))
	if len(data.Spans) != len(tr.Spans) || len(data.Points) != len(tr.Points) {
		t.Errorf("embedded block has %d spans / %d points, trace has %d / %d",
			len(data.Spans), len(data.Points), len(tr.Spans), len(tr.Points))
	}

	golden := filepath.Join("testdata", "golden_floodsetws_rws_seed42.trace.html")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("html export drifted from the golden file (rerun with -update if intended)")
	}
}
