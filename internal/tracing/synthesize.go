package tracing

import (
	"repro/internal/model"
	"repro/internal/rounds"
)

// Unit is the synthetic timebase's base unit in trace nanoseconds: one
// phase-quarter of a round. Synthesize lays every round out on a fixed
// grid — send [0,1u), wait [1u,3u), compute [3u,4u) — so two engine runs
// with the same schedule produce byte-identical traces, and a synthetic
// trace renders side-by-side with a live one in the same viewer.
const Unit = int64(1e6)

// roundSpan is the synthetic extent of round r (1-based): 4 units.
func roundStart(r int) int64 { return int64(r-1) * 4 * Unit }

// Synthesize builds a causal trace from an engine run record. The engines
// execute rounds atomically, so the trace's times are synthetic (Timebase
// "synthetic"): deterministic functions of the schedule alone. The span
// structure — run→round→send/wait/compute per process, arrival and decide
// points, Lamport clocks joined along message edges — is exactly what a
// live Tracer assembles, so emulated and live executions of the same
// schedule render identically and feed the same attribution analyzer.
func Synthesize(run *rounds.Run) *Trace {
	tr := &Trace{
		Algorithm: run.Algorithm,
		Model:     run.Model.String(),
		N:         run.N,
		T:         run.T,
		Timebase:  "synthetic",
	}

	var nextID SpanID
	span := func(parent SpanID, proc int, kind, cat string, round int, start, end, c0, c1 int64) SpanID {
		nextID++
		tr.Spans = append(tr.Spans, Span{
			ID: nextID, Parent: parent, Proc: proc, Kind: kind, Cat: cat, Round: round,
			Start: start, End: end, StartClock: c0, EndClock: c1,
		})
		return nextID
	}

	total := roundStart(len(run.Rounds) + 1)
	sched := span(0, 0, KindSchedule, CatRounds, 0, 0, total, 0, 0)

	clock := make([]int64, run.N+1)
	roots := make([]SpanID, run.N+1)
	for p := 1; p <= run.N; p++ {
		end := total
		if cr := run.CrashRound[p]; cr != 0 {
			end = roundStart(cr) + Unit
		}
		roots[p] = span(sched, p, KindRun, CatRounds, 0, 0, end, 0, 0)
	}

	openClock := make([]int64, run.N+1) // clock at round open, this round
	sendClock := make([]int64, run.N+1) // clock after the round's broadcast
	for ri := range run.Rounds {
		rec := &run.Rounds[ri]
		r := rec.Round
		r0 := roundStart(r)

		// Broadcast half-step first, for every participant: arrival joins in
		// the reception half-step below need all of the round's send clocks.
		for p := 1; p <= run.N; p++ {
			if !rec.AliveStart.Has(model.ProcessID(p)) {
				continue
			}
			clock[p]++ // round open
			openClock[p] = clock[p]
			clock[p]++ // broadcast
			sendClock[p] = clock[p]
		}

		for p := 1; p <= run.N; p++ {
			if !rec.AliveStart.Has(model.ProcessID(p)) {
				continue
			}
			if rec.Crashed.Has(model.ProcessID(p)) {
				// A crashing process performs its (partial) broadcast and
				// halts: the round truncates after the send phase.
				rd := span(roots[p], p, KindRound, CatRounds, r, r0, r0+Unit, openClock[p], clock[p])
				span(rd, p, KindSend, CatRounds, r, r0, r0+Unit, openClock[p], sendClock[p])
				clock[p]++
				tr.Points = append(tr.Points, Point{Parent: rd, Proc: p, Kind: PointCrash,
					Cat: CatRounds, Round: r, TS: r0 + Unit, Clock: clock[p]})
				continue
			}

			rd := span(roots[p], p, KindRound, CatRounds, r, r0, r0+4*Unit, openClock[p], 0)
			span(rd, p, KindSend, CatRounds, r, r0, r0+Unit, openClock[p], sendClock[p])

			// Reception: one arrival per sender whose message reached p,
			// joining p's clock with the sender's broadcast clock.
			var peers []int
			wait := span(rd, p, KindWait, CatRounds, r, r0+Unit, r0+3*Unit, sendClock[p], 0)
			for j := 1; j <= run.N; j++ {
				if j == p || !rec.Reached[j].Has(model.ProcessID(p)) {
					continue
				}
				peers = append(peers, j)
				c := clock[p]
				if sendClock[j] > c {
					c = sendClock[j]
				}
				clock[p] = c + 1
				tr.Points = append(tr.Points, Point{Parent: wait, Proc: p, Kind: PointArrive,
					Cat: CatRounds, Round: r, From: j, TS: r0 + 2*Unit, Clock: clock[p]})
			}
			clock[p]++ // round close: the reception record is taken
			ws := &tr.Spans[wait-1]
			ws.EndClock = clock[p]
			ws.Peers = peers

			comp := span(rd, p, KindCompute, CatRounds, r, r0+3*Unit, r0+4*Unit, clock[p], 0)
			if run.DecidedAt[p] == r {
				clock[p]++
				v := int64(run.DecisionOf[p])
				tr.Points = append(tr.Points, Point{Parent: comp, Proc: p, Kind: PointDecide,
					Cat: CatRounds, Round: r, Value: &v, TS: r0 + 3*Unit + Unit/2, Clock: clock[p]})
			}
			tr.Spans[comp-1].EndClock = clock[p]
			tr.Spans[rd-1].EndClock = clock[p]
		}
	}

	for p := 1; p <= run.N; p++ {
		tr.Spans[roots[p]-1].EndClock = clock[p]
	}
	return tr
}
