package tracing

import (
	"encoding/json"
	"fmt"
	"io"
)

// htmlPage is the self-contained timeline viewer: the trace is embedded as
// a JSON data block and a small script lays the spans out as one swimlane
// per process (plus the global faults lane), colored by kind, with instant
// events as markers and a hover readout showing span kind, round, Lamport
// clocks and the wait span's reception record. No external assets, so the
// file opens anywhere a browser does — including air-gapped runs.
const htmlPage = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>ssfd trace — %s/%s n=%d t=%d</title>
<style>
  body { font: 13px/1.4 system-ui, sans-serif; margin: 1rem; background: #fafafa; color: #222; }
  h1 { font-size: 1.1rem; }
  #lanes { position: relative; border: 1px solid #ccc; background: #fff; overflow-x: auto; }
  .lane { position: relative; height: 56px; border-bottom: 1px solid #eee; }
  .lane .label { position: absolute; left: 4px; top: 2px; color: #666; font-size: 11px; z-index: 2; }
  .span { position: absolute; box-sizing: border-box; border: 1px solid rgba(0,0,0,.25); border-radius: 2px; overflow: hidden; font-size: 10px; padding: 0 2px; white-space: nowrap; cursor: default; }
  .span.round   { top: 18px; height: 34px; background: #eceff1; }
  .span.run     { top: 14px; height: 42px; background: none; border-style: dashed; }
  .span.schedule{ top: 14px; height: 42px; background: none; border-style: dashed; }
  .span.send    { top: 22px; height: 12px; background: #90caf9; }
  .span.wait    { top: 22px; height: 12px; background: #ffe082; }
  .span.compute { top: 22px; height: 12px; background: #a5d6a7; }
  .span.partition { top: 22px; height: 26px; background: #ef9a9a; }
  .span.blackhole { top: 22px; height: 26px; background: #b0bec5; }
  .pt { position: absolute; top: 36px; width: 7px; height: 7px; margin-left: -3px; border-radius: 50%%; z-index: 3; }
  .pt.arrive { background: #1976d2; }
  .pt.decide { background: #2e7d32; width: 9px; height: 9px; }
  .pt.crash  { background: #c62828; }
  .pt.suspect { background: #ef6c00; }
  .pt.retract { background: #8d6e63; }
  #tip { position: fixed; display: none; background: #263238; color: #eceff1; padding: 4px 8px; border-radius: 3px; font-size: 11px; pointer-events: none; z-index: 10; max-width: 28rem; }
  #legend span { display: inline-block; margin-right: 1em; }
  #legend i { display: inline-block; width: 10px; height: 10px; margin-right: 4px; border: 1px solid rgba(0,0,0,.25); }
</style>
</head>
<body>
<h1>ssfd trace — %s/%s n=%d t=%d (%s timebase)</h1>
<div id="legend">
  <span><i style="background:#90caf9"></i>send</span>
  <span><i style="background:#ffe082"></i>wait</span>
  <span><i style="background:#a5d6a7"></i>compute</span>
  <span><i style="background:#ef9a9a"></i>partition</span>
  <span><i style="background:#b0bec5"></i>blackhole</span>
  <span><i style="background:#1976d2;border-radius:50%%"></i>arrive</span>
  <span><i style="background:#2e7d32;border-radius:50%%"></i>decide</span>
  <span><i style="background:#c62828;border-radius:50%%"></i>crash</span>
  <span><i style="background:#ef6c00;border-radius:50%%"></i>suspect</span>
</div>
<div id="lanes"></div>
<div id="tip"></div>
<script type="application/json" id="ssfd-trace-data">%s</script>
<script>
(function () {
  var data = JSON.parse(document.getElementById('ssfd-trace-data').textContent);
  var spans = data.spans || [], points = data.points || [];
  var tmax = 1;
  spans.forEach(function (s) { if (s.end > tmax) tmax = s.end; });
  points.forEach(function (p) { if (p.ts > tmax) tmax = p.ts; });
  var width = Math.max(900, document.body.clientWidth - 40);
  var x = function (t) { return (t / tmax) * (width - 70) + 60; };
  var fmt = data.timebase === 'synthetic'
    ? function (t) { return (t / 1e6) + 'u'; }
    : function (t) { return (t / 1e6).toFixed(3) + 'ms'; };

  var procs = [];
  spans.concat(points.map(function (p) { return { proc: p.proc }; })).forEach(function (s) {
    if (s.proc && procs.indexOf(s.proc) < 0) procs.push(s.proc);
  });
  procs.sort(function (a, b) { return a - b; });

  var lanes = document.getElementById('lanes');
  lanes.style.width = width + 'px';
  var laneOf = {};
  procs.concat([0]).forEach(function (p) {
    var el = document.createElement('div');
    el.className = 'lane';
    el.innerHTML = '<span class="label">' + (p ? 'p' + p : 'faults/schedule') + '</span>';
    lanes.appendChild(el);
    laneOf[p] = el;
  });

  var tip = document.getElementById('tip');
  function hover(el, text) {
    el.addEventListener('mousemove', function (e) {
      tip.style.display = 'block';
      tip.style.left = (e.clientX + 12) + 'px';
      tip.style.top = (e.clientY + 12) + 'px';
      tip.textContent = text;
    });
    el.addEventListener('mouseleave', function () { tip.style.display = 'none'; });
  }

  spans.forEach(function (s) {
    var el = document.createElement('div');
    el.className = 'span ' + s.kind;
    el.style.left = x(s.start) + 'px';
    el.style.width = Math.max(1, x(s.end) - x(s.start)) + 'px';
    if (s.kind === 'round') el.textContent = 'r' + s.round;
    var txt = s.kind + (s.round ? ' r' + s.round : '') +
      ' [' + fmt(s.start) + ', ' + fmt(s.end) + ')' +
      ' clocks ' + s.c0 + '→' + s.c1;
    if (s.peers) txt += ' peers=[' + s.peers.join(',') + ']';
    hover(el, txt);
    (laneOf[s.proc] || laneOf[0]).appendChild(el);
  });
  points.forEach(function (p) {
    var el = document.createElement('div');
    el.className = 'pt ' + p.kind;
    el.style.left = x(p.ts) + 'px';
    var txt = p.kind + (p.from ? ' p' + p.from : '') + (p.round ? ' r' + p.round : '') +
      ' @ ' + fmt(p.ts) + ' clock ' + p.clock;
    if (p.value !== undefined && p.value !== null) txt += ' value=' + p.value;
    hover(el, txt);
    (laneOf[p.proc] || laneOf[0]).appendChild(el);
  });
})();
</script>
</body>
</html>
`

// htmlSpan / htmlPoint are the embedded data-block encodings.
type htmlSpan struct {
	ID     int64  `json:"id"`
	Parent int64  `json:"parent"`
	Proc   int    `json:"proc"`
	Kind   string `json:"kind"`
	Round  int    `json:"round,omitempty"`
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
	C0     int64  `json:"c0"`
	C1     int64  `json:"c1"`
	Peers  []int  `json:"peers,omitempty"`
}

type htmlPoint struct {
	Proc  int    `json:"proc"`
	Kind  string `json:"kind"`
	Round int    `json:"round,omitempty"`
	From  int    `json:"from,omitempty"`
	TS    int64  `json:"ts"`
	Clock int64  `json:"clock"`
	Value *int64 `json:"value,omitempty"`
}

type htmlData struct {
	Algorithm string      `json:"algorithm"`
	Model     string      `json:"model"`
	N         int         `json:"n"`
	T         int         `json:"t"`
	Timebase  string      `json:"timebase"`
	Spans     []htmlSpan  `json:"spans"`
	Points    []htmlPoint `json:"points"`
}

// WriteHTML renders the trace as a self-contained HTML timeline.
func (t *Trace) WriteHTML(w io.Writer) error {
	data := htmlData{
		Algorithm: t.Algorithm, Model: t.Model, N: t.N, T: t.T, Timebase: t.Timebase,
		Spans:  make([]htmlSpan, 0, len(t.Spans)),
		Points: make([]htmlPoint, 0, len(t.Points)),
	}
	for i := range t.Spans {
		sp := &t.Spans[i]
		data.Spans = append(data.Spans, htmlSpan{
			ID: int64(sp.ID), Parent: int64(sp.Parent), Proc: sp.Proc, Kind: sp.Kind,
			Round: sp.Round, Start: sp.Start, End: sp.End,
			C0: sp.StartClock, C1: sp.EndClock, Peers: sp.Peers,
		})
	}
	for i := range t.Points {
		pt := &t.Points[i]
		data.Points = append(data.Points, htmlPoint{
			Proc: pt.Proc, Kind: pt.Kind, Round: pt.Round, From: pt.From,
			TS: pt.TS, Clock: pt.Clock, Value: pt.Value,
		})
	}
	blob, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, htmlPage,
		t.Algorithm, t.Model, t.N, t.T,
		t.Algorithm, t.Model, t.N, t.T, t.Timebase,
		blob)
	return err
}
