package tracing

import (
	"testing"
	"time"

	"repro/internal/conform"
	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/runtime"
)

// liveTraced runs a live cluster with a tracer interposed on its event
// stream, checks conformance, and returns the trace together with the
// engine replay of the projected schedule.
func liveTraced(t *testing.T, alg rounds.Algorithm, cfg runtime.ClusterConfig) (*Trace, *rounds.Run) {
	t.Helper()
	n := len(cfg.Initial) // ClusterConfig.Initial[i] is p_{i+1}'s value
	tracer := NewTracer(alg.Name(), cfg.Kind.String(), n, cfg.T, cfg.Events)
	cfg.Events = tracer
	report, _, err := conform.CheckLive(alg, cfg, conform.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.ReplayErr != nil {
		t.Fatalf("replay rejected the projected schedule: %v", report.ReplayErr)
	}
	if !report.OK() {
		t.Fatalf("live run does not conform to its replay:\n%s", report)
	}
	return tracer.Finish(), report.Run
}

// TestLiveAttributionA1RWSvsRS is the issue's live acceptance criterion:
// for the same failure-free scenario, a live A1/RS trace attributes a
// one-round decision latency that sums exactly from its components, a live
// FloodSetWS/RWS trace pays the §5 second round, and both traces reconcile
// against the engine replay of their projected schedules.
func TestLiveAttributionA1RWSvsRS(t *testing.T) {
	initial := []model.Value{3, 1, 4}

	rsTrace, rsRun := liveTraced(t, consensus.A1{}, runtime.ClusterConfig{
		Kind: rounds.RS, Initial: initial, T: 1,
		RoundDuration: 40 * time.Millisecond,
		Metrics:       obs.NewRegistry(),
	})
	rwsTrace, rwsRun := liveTraced(t, consensus.FloodSetWS{}, runtime.ClusterConfig{
		Kind: rounds.RWS, Initial: initial, T: 1,
		Metrics: obs.NewRegistry(),
	})

	rs, rws := Attribute(rsTrace), Attribute(rwsTrace)
	for name, a := range map[string]*Attribution{"A1/RS": rs, "FloodSetWS/RWS": rws} {
		if err := a.CheckSums(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if err := ReconcileRounds(rs, rsRun); err != nil {
		t.Errorf("A1/RS: %v", err)
	}
	if err := ReconcileRounds(rws, rwsRun); err != nil {
		t.Errorf("FloodSetWS/RWS: %v", err)
	}

	if got := rs.ObservedRounds(); got != 1 {
		t.Errorf("live A1/RS decided after %d rounds, want 1 (Λ(A1)=1)", got)
	}
	if got := rws.ObservedRounds(); got != 2 {
		t.Errorf("live FloodSetWS/RWS decided after %d rounds, want 2 (Λ ≥ 2 in RWS)", got)
	}

	// The §5 cost must be visible in the trace itself: every RWS process
	// carries a round-2 attribution with a positive wait, while no RS
	// process attributes anything past round 1.
	for _, p := range rs.Procs {
		if len(p.Rounds) != 1 {
			t.Errorf("live RS p%d attributes %d rounds, want 1", p.Proc, len(p.Rounds))
		}
	}
	for _, p := range rws.Procs {
		if len(p.Rounds) != 2 {
			t.Fatalf("live RWS p%d attributes %d rounds, want 2", p.Proc, len(p.Rounds))
		}
		r2 := p.Rounds[1]
		if r2.Transport+r2.FDTimeout+r2.Barrier <= 0 {
			t.Errorf("live RWS p%d round 2 shows no wait; the second round's cost should be visible", p.Proc)
		}
	}

	// RS lock-step rounds are dominated by the barrier; with a 40ms round
	// and a loopback network, the barrier must carry most of the latency.
	for _, p := range rs.Procs {
		if p.Barrier*2 < p.Total {
			t.Errorf("live RS p%d: barrier %d < half of total %d; lock-step rounds should be barrier-dominated",
				p.Proc, p.Barrier, p.Total)
		}
	}
}

// TestLiveAttributionWithCrash exercises the crash path end to end: a
// crashing RWS process truncates its trace, the survivors' waits show
// detector time for the missing sender, and everything still reconciles.
func TestLiveAttributionWithCrash(t *testing.T) {
	trace, run := liveTraced(t, consensus.FloodSetWS{}, runtime.ClusterConfig{
		Kind: rounds.RWS, Initial: []model.Value{5, 9, 2}, T: 1,
		Crashes: map[model.ProcessID]runtime.CrashPlan{1: {Round: 1, Reach: 0}},
		Metrics: obs.NewRegistry(),
	})
	a := Attribute(trace)
	if err := a.CheckSums(); err != nil {
		t.Fatal(err)
	}
	if err := ReconcileRounds(a, run); err != nil {
		t.Error(err)
	}
	var crashed, fdTime int
	for _, p := range a.Procs {
		if p.Crashed {
			crashed++
			continue
		}
		if p.FDTimeout > 0 {
			fdTime++
		}
	}
	if crashed != 1 {
		t.Errorf("attribution shows %d crashed processes, want 1", crashed)
	}
	// p1 reached no one in round 1, so both survivors waited on the
	// detector to suspect it: round-1 waits must carry detector time.
	if fdTime != 2 {
		t.Errorf("%d survivors attribute detector time, want 2", fdTime)
	}
}
