// Package consensus implements the uniform consensus algorithms studied in
// Section 5 of Charron-Bost, Guerraoui and Schiper (DSN 2000):
//
//   - FloodSet (the paper's Figure 1) for the RS model;
//   - FloodSetWS (Figure 2) for the RWS model;
//   - C_OptFloodSet and C_OptFloodSetWS (§5.2), which decide at round 1
//     when all n round-1 messages carry the same value, achieving lat(A)=1;
//   - F_OptFloodSet (Figure 3) and F_OptFloodSetWS, which decide at round 1
//     when exactly n−t round-1 messages arrive, achieving Lat(A)=1;
//   - A1 (Figure 4), the t=1 algorithm with Λ(A1)=1 in RS whose fast path
//     is unsafe in RWS — the paper's efficiency-separation witness.
//
// The uniform consensus specification (§5.1): every process starts with an
// input from a totally ordered set V and must reach an irrevocable decision
// such that (uniform validity) if all processes start with v then v is the
// only possible decision, (uniform agreement) no two processes — correct or
// faulty — decide differently, and (termination) all correct processes
// eventually decide.
package consensus

import (
	"repro/internal/model"
	"repro/internal/rounds"
)

// WMsg is the flooding message: the sender's current W, the set of all
// values it has ever seen. Senders transmit a snapshot; receivers must
// treat the set as read-only.
type WMsg struct {
	W model.ValueSet
}

// DMsg is F_OptFloodSet's (D, decision) message: a round-1 decider forces
// its decision on every other process at round 2.
type DMsg struct {
	V model.Value
}

// A1Val is A1's plain value message (p1's round-1 broadcast and p2's
// round-2 fallback broadcast).
type A1Val struct {
	V model.Value
}

// A1Fwd is A1's (p1, w) message: a round-1 decider reports p1's value at
// round 2.
type A1Fwd struct {
	V model.Value
}

// broadcast returns a message slice addressing every process (including the
// sender itself: self-delivery models the paper's "a message has arrived
// from every process" counting, under which a process counts its own
// round-1 value among the n).
func broadcast(n int, m rounds.Message) []rounds.Message {
	out := make([]rounds.Message, n+1)
	for i := 1; i <= n; i++ {
		out[i] = m
	}
	return out
}

// unionW folds every received WMsg into w and returns the set of senders a
// message arrived from.
func unionW(w *model.ValueSet, received []rounds.Message) model.ProcSet {
	var arrived model.ProcSet
	for j := 1; j < len(received); j++ {
		if received[j] == nil {
			continue
		}
		arrived = arrived.Add(model.ProcessID(j))
		if m, ok := received[j].(WMsg); ok {
			w.UnionWith(m.W)
		}
	}
	return arrived
}

// arrivedSet returns the set of senders any message arrived from.
func arrivedSet(received []rounds.Message) model.ProcSet {
	var arrived model.ProcSet
	for j := 1; j < len(received); j++ {
		if received[j] != nil {
			arrived = arrived.Add(model.ProcessID(j))
		}
	}
	return arrived
}

// All returns every algorithm in this package, keyed by the model it is
// designed for. Used by the experiment drivers to sweep the whole suite.
func All() []rounds.Algorithm {
	return []rounds.Algorithm{
		FloodSet{},
		FloodSetWS{},
		COptFloodSet{},
		COptFloodSetWS{},
		FOptFloodSet{},
		FOptFloodSetWS{},
		A1{},
	}
}

// ForModel returns the algorithms designed for the given round model, i.e.
// the ones the paper proves correct there.
func ForModel(kind rounds.ModelKind) []rounds.Algorithm {
	switch kind {
	case rounds.RS:
		return []rounds.Algorithm{FloodSet{}, COptFloodSet{}, FOptFloodSet{}, A1{}}
	case rounds.RWS:
		return []rounds.Algorithm{FloodSetWS{}, COptFloodSetWS{}, FOptFloodSetWS{}}
	default:
		return nil
	}
}
