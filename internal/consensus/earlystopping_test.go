package consensus

import (
	"testing"

	"repro/internal/check"
	"repro/internal/explore"
	"repro/internal/latency"
	"repro/internal/model"
	"repro/internal/rounds"
)

// TestEarlyStoppingExhaustive verifies EarlyStoppingFloodSet against every
// admissible RS adversary for t = 1 and t = 2 (n = 3): uniform consensus
// holds in both, confirming the rule's safety up to two crashes.
func TestEarlyStoppingExhaustive(t *testing.T) {
	for _, tol := range []int{1, 2} {
		for _, cfg := range latency.Configurations(3) {
			_, err := explore.Runs(rounds.RS, EarlyStoppingFloodSet{}, cfg, tol, explore.Options{}, func(run *rounds.Run) bool {
				if run.Truncated {
					return true
				}
				if bad := check.FirstViolation(run); bad != nil {
					t.Fatalf("t=%d config %v: %s\nrun %s", tol, cfg, bad, run)
				}
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestEarlyStoppingLatencyAdapts: Lat(A,f) = min(f+2, t+1) — the
// early-stopping gain over plain FloodSet.
func TestEarlyStoppingLatencyAdapts(t *testing.T) {
	d, err := latency.Compute(rounds.RS, EarlyStoppingFloodSet{}, 4, 2, explore.Options{MaxCrashesPerRound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.Violations != 0 {
		t.Fatalf("%d violations during latency exploration", d.Violations)
	}
	// Λ = Lat(A,0) = 2 < t+1 = 3: failure-free runs stop early.
	if d.Lambda != 2 {
		t.Errorf("Λ = %d, want 2 (failure-free early stop)", d.Lambda)
	}
	if d.LatByF[2] != 3 {
		t.Errorf("Lat(A,2) = %d, want t+1 = 3", d.LatByF[2])
	}
	// Compare: plain FloodSet pays t+1 rounds even failure-free.
	plain, err := latency.Compute(rounds.RS, FloodSet{}, 4, 2, explore.Options{MaxCrashesPerRound: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Lambda != 3 {
		t.Errorf("FloodSet Λ = %d, want 3", plain.Lambda)
	}
}

// TestEarlyStoppingUniformityBreaksAtT3 scripts the three-crash chain that
// defeats the naive early-stopping rule at t = 3 (n = 5): p1 confides the
// minimum to p2 alone while crashing; p2 relays it to p3 alone while
// crashing; p3 perceives a stable heard-set, decides the minimum, and
// crashes silently. The survivors never see the value: uniform agreement
// fails, while plain (correct-only) agreement survives — the uniform
// problem is strictly harder, and f+2 rounds are genuinely needed.
func TestEarlyStoppingUniformityBreaksAtT3(t *testing.T) {
	script := &rounds.Script{Plans: []rounds.Plan{
		{Crashes: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}},
		{Crashes: map[model.ProcessID]model.ProcSet{2: model.Singleton(3)}},
		{Crashes: map[model.ProcessID]model.ProcSet{3: 0}},
	}}
	run, err := rounds.RunAlgorithm(rounds.RS, EarlyStoppingFloodSet{},
		[]model.Value{0, 1, 2, 3, 4}, 3, script)
	if err != nil {
		t.Fatal(err)
	}
	if v := rounds.CheckRoundSynchrony(run); len(v) != 0 {
		t.Fatalf("scenario not RS-admissible: %v", v[0].Error())
	}
	if run.DecidedAt[3] != 2 || run.DecisionOf[3] != 0 {
		t.Fatalf("p3 decided (%d at round %d), want (0 at round 2)",
			run.DecisionOf[3], run.DecidedAt[3])
	}
	if ua := check.UniformAgreement(run); ua.OK {
		t.Fatal("expected a uniform agreement violation at t=3")
	}
	if pa := check.Agreement(run); !pa.OK {
		t.Fatalf("plain agreement should survive (the bad decider is faulty): %s", pa.Detail)
	}
	for p := 4; p <= 5; p++ {
		if run.DecisionOf[p] != 1 {
			t.Errorf("p%d decided %d, want 1 (value 0 died with the crash chain)", p, run.DecisionOf[p])
		}
	}
}

// TestEarlyDecideSeparatesConsensusFromUniform mechanizes §5.1's remark:
// EarlyDecideFloodSet solves plain consensus in RS but not uniform
// consensus. The explorer confirms correct-only agreement over every run
// (t = 2, n = 3 — the violation needs a confider crash plus the early
// decider's own crash) and finds a uniform violation.
func TestEarlyDecideSeparatesConsensusFromUniform(t *testing.T) {
	var uniformViolation *rounds.Run
	for _, cfg := range latency.Configurations(3) {
		_, err := explore.Runs(rounds.RS, EarlyDecideFloodSet{}, cfg, 2, explore.Options{}, func(run *rounds.Run) bool {
			if run.Truncated {
				return true
			}
			if pa := check.Agreement(run); !pa.OK {
				t.Fatalf("plain agreement violated: %s\nrun %s", pa.Detail, run)
			}
			if term := check.Termination(run); !term.OK {
				t.Fatalf("termination violated: %s", term.Detail)
			}
			if ua := check.UniformAgreement(run); !ua.OK && uniformViolation == nil {
				uniformViolation = run
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if uniformViolation == nil {
		t.Fatal("expected some run to violate uniform agreement (consensus ≠ uniform consensus in RS)")
	}
}

// TestEarlyDecideScriptedViolation pins the §5.1 separation scenario
// explicitly: p1 confides its minimum to p2 only and crashes; p2 heard from
// everyone, decides at round 1, and crashes; p3 decides without the value.
func TestEarlyDecideScriptedViolation(t *testing.T) {
	script := &rounds.Script{Plans: []rounds.Plan{
		{Crashes: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}},
		{Crashes: map[model.ProcessID]model.ProcSet{2: 0}},
	}}
	run, err := rounds.RunAlgorithm(rounds.RS, EarlyDecideFloodSet{}, []model.Value{0, 5, 9}, 2, script)
	if err != nil {
		t.Fatal(err)
	}
	if run.DecidedAt[2] != 1 || run.DecisionOf[2] != 0 {
		t.Fatalf("p2 decided (%d at %d), want (0 at 1)", run.DecisionOf[2], run.DecidedAt[2])
	}
	if run.DecisionOf[3] != 5 {
		t.Fatalf("p3 decided %d, want 5", run.DecisionOf[3])
	}
	if check.UniformAgreement(run).OK {
		t.Error("expected uniform agreement violation")
	}
	if !check.Agreement(run).OK {
		t.Error("plain agreement must hold (p2 is faulty)")
	}
}

// TestFOptWSSafeAtT2 verifies the doc-comment argument that the n−t fast
// path survives RWS even at t = 2: a fast decider's t missing senders
// exhaust the failure budget, so fast deciders coincide and stay correct.
// Exhaustive exploration over n = 4, t = 2 (capped to keep the space
// tractable but still covering double-drop rounds) finds no violation.
func TestFOptWSSafeAtT2(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive t=2 sweep skipped in -short mode")
	}
	configs := [][]model.Value{
		{5, 5, 0, 1},
		{0, 1, 2, 3},
		{1, 1, 1, 1},
		{9, 0, 9, 0},
	}
	runs := 0
	for _, cfg := range configs {
		_, err := explore.Runs(rounds.RWS, FOptFloodSetWS{}, cfg, 2, explore.Options{}, func(run *rounds.Run) bool {
			if run.Truncated {
				return true
			}
			runs++
			if bad := check.FirstViolation(run); bad != nil {
				t.Fatalf("config %v: %s\nrun %s", cfg, bad, run)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if runs == 0 {
		t.Fatal("no runs explored")
	}
}
