package consensus

import (
	"repro/internal/model"
	"repro/internal/rounds"
)

// COptFloodSet is the configuration-optimized FloodSet of §5.2: identical
// to FloodSet except that a process decides v already at round 1 if a
// message arrived from *every* process and all carried the same value v
// (|W| = 1 after the round-1 union). By uniform validity the decision is
// then forced, so the fast path is safe; it witnesses
// lat(C_OptFloodSet) = 1.
type COptFloodSet struct{}

var _ rounds.Algorithm = COptFloodSet{}

// Name implements rounds.Algorithm.
func (COptFloodSet) Name() string { return "C_OptFloodSet" }

// New implements rounds.Algorithm.
func (COptFloodSet) New(cfg rounds.ProcConfig) rounds.Process {
	return &cOptProc{cfg: cfg, w: model.NewValueSet(cfg.Initial)}
}

type cOptProc struct {
	cfg      rounds.ProcConfig
	w        model.ValueSet
	decision model.Value
	decided  bool
}

var (
	_ rounds.Process = (*cOptProc)(nil)
	_ rounds.Cloner  = (*cOptProc)(nil)
)

// Msgs implements rounds.Process (unchanged from FloodSet).
func (p *cOptProc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	return broadcast(p.cfg.N, WMsg{W: p.w.Clone()})
}

// Trans implements rounds.Process with the §5.2 decision rule:
//
//	if rounds = 1 and a message has arrived from every process then
//	    if |W| = 1 then decision := v, where W = {v}
//	else if rounds = t+1 then decision := min(W)
func (p *cOptProc) Trans(round int, received []rounds.Message) {
	arrived := unionW(&p.w, received)
	switch {
	case round == 1 && arrived == model.FullSet(p.cfg.N):
		if !p.decided && p.w.Len() == 1 {
			v, _ := p.w.Min()
			p.decision, p.decided = v, true
		}
	case round == p.cfg.T+1 && !p.decided:
		if v, ok := p.w.Min(); ok {
			p.decision, p.decided = v, true
		}
	}
}

// Decision implements rounds.Process.
func (p *cOptProc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *cOptProc) CloneProcess() rounds.Process {
	c := *p
	c.w = p.w.Clone()
	return &c
}

// COptFloodSetWS is the same configuration fast path grafted onto
// FloodSetWS, witnessing lat(C_OptFloodSetWS) = 1 in RWS. The fast path
// only fires when messages arrived from all n processes, in which case no
// pending message exists this round and the RS argument carries over.
type COptFloodSetWS struct{}

var _ rounds.Algorithm = COptFloodSetWS{}

// Name implements rounds.Algorithm.
func (COptFloodSetWS) Name() string { return "C_OptFloodSetWS" }

// New implements rounds.Algorithm.
func (COptFloodSetWS) New(cfg rounds.ProcConfig) rounds.Process {
	return &cOptWSProc{cfg: cfg, w: model.NewValueSet(cfg.Initial)}
}

type cOptWSProc struct {
	cfg      rounds.ProcConfig
	w        model.ValueSet
	halt     model.ProcSet
	decision model.Value
	decided  bool
}

var (
	_ rounds.Process = (*cOptWSProc)(nil)
	_ rounds.Cloner  = (*cOptWSProc)(nil)
)

// Msgs implements rounds.Process.
func (p *cOptWSProc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	return broadcast(p.cfg.N, WMsg{W: p.w.Clone()})
}

// Trans implements rounds.Process: FloodSetWS's halt-filtered union with
// the round-1 unanimity fast path.
func (p *cOptWSProc) Trans(round int, received []rounds.Message) {
	var arrived model.ProcSet
	for j := 1; j <= p.cfg.N; j++ {
		if received[j] == nil {
			continue
		}
		arrived = arrived.Add(model.ProcessID(j))
		if p.halt.Has(model.ProcessID(j)) {
			continue
		}
		if m, ok := received[j].(WMsg); ok {
			p.w.UnionWith(m.W)
		}
	}
	p.halt = p.halt.Union(model.FullSet(p.cfg.N).Minus(arrived))
	switch {
	case round == 1 && arrived == model.FullSet(p.cfg.N):
		if !p.decided && p.w.Len() == 1 {
			v, _ := p.w.Min()
			p.decision, p.decided = v, true
		}
	case round == p.cfg.T+1 && !p.decided:
		if v, ok := p.w.Min(); ok {
			p.decision, p.decided = v, true
		}
	}
}

// Decision implements rounds.Process.
func (p *cOptWSProc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *cOptWSProc) CloneProcess() rounds.Process {
	c := *p
	c.w = p.w.Clone()
	return &c
}
