package consensus

import (
	"repro/internal/model"
	"repro/internal/rounds"
)

// FloodSet is the paper's Figure 1 (after Lynch): for t+1 rounds every
// process broadcasts W, the set of all values it has ever seen, and unions
// in everything it receives; at the end of round t+1 it decides min(W).
// Among t+1 rounds at least one is failure-free, so all W sets coincide by
// round t+1 and uniform consensus holds in RS.
//
// FloodSet is *not* correct in RWS: a pending message can smuggle a value
// to a subset of processes one round too late (experiment E2 exhibits the
// disagreement).
type FloodSet struct{}

var _ rounds.Algorithm = FloodSet{}

// Name implements rounds.Algorithm.
func (FloodSet) Name() string { return "FloodSet" }

// New implements rounds.Algorithm.
func (FloodSet) New(cfg rounds.ProcConfig) rounds.Process {
	return &floodSetProc{cfg: cfg, w: model.NewValueSet(cfg.Initial)}
}

type floodSetProc struct {
	cfg      rounds.ProcConfig
	w        model.ValueSet
	decision model.Value
	decided  bool
}

var (
	_ rounds.Process = (*floodSetProc)(nil)
	_ rounds.Cloner  = (*floodSetProc)(nil)
)

// Msgs implements rounds.Process: "if rounds ≤ t then send W to all
// processes" — with the paper's pre-increment counter this means rounds
// 1..t+1 in engine numbering.
func (p *floodSetProc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	return broadcast(p.cfg.N, WMsg{W: p.w.Clone()})
}

// Trans implements rounds.Process: W := W ∪ ⋃ X_j; decide min(W) at round
// t+1.
func (p *floodSetProc) Trans(round int, received []rounds.Message) {
	unionW(&p.w, received)
	if round == p.cfg.T+1 && !p.decided {
		if v, ok := p.w.Min(); ok {
			p.decision, p.decided = v, true
		}
	}
}

// Decision implements rounds.Process.
func (p *floodSetProc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *floodSetProc) CloneProcess() rounds.Process {
	c := *p
	c.w = p.w.Clone()
	return &c
}

// FloodSetWS is the paper's Figure 2: FloodSet adapted to the RWS model.
// Any process from which no message arrives at some round is added to a
// halt set, and messages from halted processes are ignored forever after.
// This neutralizes pending messages: a value that skips a round can no
// longer leak into some W sets but not others, and uniform consensus holds
// in RWS (the companion paper's result, checked exhaustively in E2).
type FloodSetWS struct{}

var _ rounds.Algorithm = FloodSetWS{}

// Name implements rounds.Algorithm.
func (FloodSetWS) Name() string { return "FloodSetWS" }

// New implements rounds.Algorithm.
func (FloodSetWS) New(cfg rounds.ProcConfig) rounds.Process {
	return &floodSetWSProc{cfg: cfg, w: model.NewValueSet(cfg.Initial)}
}

type floodSetWSProc struct {
	cfg      rounds.ProcConfig
	w        model.ValueSet
	halt     model.ProcSet
	decision model.Value
	decided  bool
}

var (
	_ rounds.Process = (*floodSetWSProc)(nil)
	_ rounds.Cloner  = (*floodSetWSProc)(nil)
)

// Msgs implements rounds.Process.
func (p *floodSetWSProc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	return broadcast(p.cfg.N, WMsg{W: p.w.Clone()})
}

// Trans implements rounds.Process: W := W ∪ ⋃_{pj ∉ halt} X_j, then halt
// every process from which no message arrived.
func (p *floodSetWSProc) Trans(round int, received []rounds.Message) {
	var arrived model.ProcSet
	for j := 1; j <= p.cfg.N; j++ {
		if received[j] == nil {
			continue
		}
		arrived = arrived.Add(model.ProcessID(j))
		if p.halt.Has(model.ProcessID(j)) {
			continue // ignore messages from halted processes
		}
		if m, ok := received[j].(WMsg); ok {
			p.w.UnionWith(m.W)
		}
	}
	p.halt = p.halt.Union(model.FullSet(p.cfg.N).Minus(arrived))
	if round == p.cfg.T+1 && !p.decided {
		if v, ok := p.w.Min(); ok {
			p.decision, p.decided = v, true
		}
	}
}

// Decision implements rounds.Process.
func (p *floodSetWSProc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *floodSetWSProc) CloneProcess() rounds.Process {
	c := *p
	c.w = p.w.Clone()
	return &c
}
