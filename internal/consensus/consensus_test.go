package consensus

import (
	"testing"

	"repro/internal/check"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/rounds"
)

func vals(vs ...int64) []model.Value {
	out := make([]model.Value, len(vs))
	for i, v := range vs {
		out[i] = model.Value(v)
	}
	return out
}

func mustRun(t *testing.T, kind rounds.ModelKind, alg rounds.Algorithm, initial []model.Value, tol int, adv rounds.Adversary) *rounds.Run {
	t.Helper()
	run, err := rounds.RunAlgorithm(kind, alg, initial, tol, adv)
	if err != nil {
		t.Fatalf("%s/%v: %v", alg.Name(), kind, err)
	}
	return run
}

func requireConsensus(t *testing.T, run *rounds.Run) {
	t.Helper()
	if bad := check.FirstViolation(run); bad != nil {
		t.Fatalf("%s: %s", run, bad)
	}
}

func TestFloodSetFailureFree(t *testing.T) {
	for _, tol := range []int{0, 1, 2, 3} {
		run := mustRun(t, rounds.RS, FloodSet{}, vals(4, 2, 7, 5, 3), tol, rounds.NoFailures)
		requireConsensus(t, run)
		lat, _ := run.Latency()
		if lat != tol+1 {
			t.Errorf("t=%d: latency = %d, want t+1 = %d", tol, lat, tol+1)
		}
		for p := 1; p <= run.N; p++ {
			if run.DecisionOf[p] != 2 {
				t.Errorf("t=%d: p%d decided %d, want min proposal 2", tol, p, run.DecisionOf[p])
			}
		}
	}
}

func TestFloodSetWithCrashes(t *testing.T) {
	// p1 (holding the minimum) crashes at round 1 reaching only p2; the
	// value still floods to everyone by round t+1.
	adv := &rounds.CrashOnceAdversary{Victim: 1, Round: 1, Reach: model.Singleton(2)}
	run := mustRun(t, rounds.RS, FloodSet{}, vals(0, 5, 6, 7), 1, adv)
	requireConsensus(t, run)
	for p := 2; p <= 4; p++ {
		if run.DecisionOf[p] != 0 {
			t.Errorf("p%d decided %d, want 0 (flooded from p2)", p, run.DecisionOf[p])
		}
	}
}

func TestFloodSetHiddenMinimumAborted(t *testing.T) {
	// p1 crashes at round 1 reaching NO ONE: its value 0 vanishes and the
	// survivors decide the minimum of the remaining proposals.
	adv := &rounds.CrashOnceAdversary{Victim: 1, Round: 1, Reach: 0}
	run := mustRun(t, rounds.RS, FloodSet{}, vals(0, 5, 6, 7), 1, adv)
	requireConsensus(t, run)
	for p := 2; p <= 4; p++ {
		if run.DecisionOf[p] != 5 {
			t.Errorf("p%d decided %d, want 5", p, run.DecisionOf[p])
		}
	}
}

// TestFloodSetDisagreesInRWS reproduces the paper's claim (§5.1) that
// "because of pending messages, FloodSet allows disagreement in RWS":
// p1's round-1 broadcast is entirely pending, so only p1 knows value 0
// after round 1; p1 then crashes during round 2 reaching only p2, leaving
// p2 deciding 0 and p3 deciding 1 — two CORRECT-sided decisions apart.
func TestFloodSetDisagreesInRWS(t *testing.T) {
	script := &rounds.Script{Plans: []rounds.Plan{
		{Drops: map[model.ProcessID]model.ProcSet{1: model.Singleton(2).Add(3)}},
		{Crashes: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}},
	}}
	run := mustRun(t, rounds.RWS, FloodSet{}, vals(0, 1, 2), 1, script)
	if v := rounds.CheckWeakRoundSynchrony(run); len(v) != 0 {
		t.Fatalf("scenario not RWS-admissible: %v", v[0].Error())
	}
	agr := check.UniformAgreement(run)
	if agr.OK {
		t.Fatalf("expected disagreement, but run agreed: p2=%d p3=%d",
			run.DecisionOf[2], run.DecisionOf[3])
	}
	if run.DecisionOf[2] != 0 || run.DecisionOf[3] != 1 {
		t.Errorf("decisions p2=%d p3=%d, want 0 and 1", run.DecisionOf[2], run.DecisionOf[3])
	}
}

// TestFloodSetWSFixesPendingScenario runs FloodSetWS through the exact
// scenario that breaks FloodSet: the halt mechanism makes p2 ignore p1's
// late partial broadcast, restoring agreement.
func TestFloodSetWSFixesPendingScenario(t *testing.T) {
	script := &rounds.Script{Plans: []rounds.Plan{
		{Drops: map[model.ProcessID]model.ProcSet{1: model.Singleton(2).Add(3)}},
		{Crashes: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}},
	}}
	run := mustRun(t, rounds.RWS, FloodSetWS{}, vals(0, 1, 2), 1, script)
	requireConsensus(t, run)
	if run.DecisionOf[2] != 1 || run.DecisionOf[3] != 1 {
		t.Errorf("decisions p2=%d p3=%d, want both 1 (value 0 correctly quarantined)",
			run.DecisionOf[2], run.DecisionOf[3])
	}
}

func TestCOptDecidesRoundOneOnUnanimity(t *testing.T) {
	for _, alg := range []rounds.Algorithm{COptFloodSet{}, COptFloodSetWS{}} {
		kind := rounds.RS
		if alg.Name() == "C_OptFloodSetWS" {
			kind = rounds.RWS
		}
		run := mustRun(t, kind, alg, vals(7, 7, 7, 7), 2, rounds.NoFailures)
		requireConsensus(t, run)
		lat, _ := run.Latency()
		if lat != 1 {
			t.Errorf("%s: unanimous latency = %d, want 1 (lat(A)=1, §5.2)", alg.Name(), lat)
		}
	}
}

func TestCOptFallsBackWithoutUnanimity(t *testing.T) {
	run := mustRun(t, rounds.RS, COptFloodSet{}, vals(7, 8, 7, 7), 2, rounds.NoFailures)
	requireConsensus(t, run)
	lat, _ := run.Latency()
	if lat != 3 {
		t.Errorf("latency = %d, want t+1 = 3", lat)
	}
	if run.DecisionOf[1] != 7 {
		t.Errorf("decision = %d, want 7", run.DecisionOf[1])
	}
}

func TestFOptDecidesRoundOneOnInitialCrashes(t *testing.T) {
	// With exactly t initial crashes every survivor receives exactly n−t
	// round-1 messages and decides immediately: Lat(F_Opt*) = 1 (§5.2).
	for _, tc := range []struct {
		alg  rounds.Algorithm
		kind rounds.ModelKind
	}{
		{FOptFloodSet{}, rounds.RS},
		{FOptFloodSetWS{}, rounds.RWS},
	} {
		adv := &rounds.InitialCrashAdversary{Victims: model.Singleton(1).Add(2)}
		run := mustRun(t, tc.kind, tc.alg, vals(0, 1, 5, 6, 7), 2, adv)
		requireConsensus(t, run)
		lat, _ := run.Latency()
		if lat != 1 {
			t.Errorf("%s: latency = %d, want 1 with t initial crashes", tc.alg.Name(), lat)
		}
		for p := 3; p <= 5; p++ {
			if run.DecisionOf[p] != 5 {
				t.Errorf("%s: p%d decided %d, want 5 (values 0,1 died with their proposers)",
					tc.alg.Name(), p, run.DecisionOf[p])
			}
		}
	}
}

func TestFOptForcesDecisionAtRoundTwo(t *testing.T) {
	// Only p3 sees exactly n−t messages at round 1 (p1 crashes reaching p3
	// alone among... construct: n=4, t=1; p1 crashes at round 1 reaching
	// nobody, so every survivor receives exactly 3 = n−t messages and all
	// fast-decide. For a subtler case, p1 reaches p2 only: p2 receives 4
	// messages (no fast path), p3 and p4 receive 3 (fast path); the forced
	// (D,v) messages at round 2 keep everyone agreed.
	adv := &rounds.CrashOnceAdversary{Victim: 1, Round: 1, Reach: model.Singleton(2)}
	run := mustRun(t, rounds.RS, FOptFloodSet{}, vals(0, 9, 8, 7), 1, adv)
	requireConsensus(t, run)
	if run.DecidedAt[3] != 1 || run.DecidedAt[4] != 1 {
		t.Errorf("fast deciders p3,p4 decided at rounds %d,%d, want 1,1",
			run.DecidedAt[3], run.DecidedAt[4])
	}
	if run.DecidedAt[2] != 2 {
		t.Errorf("p2 decided at round %d, want 2 (forced by D message)", run.DecidedAt[2])
	}
	// Fast deciders saw {9,8,7}: decide 7. p2 must follow despite knowing 0.
	for p := 2; p <= 4; p++ {
		if run.DecisionOf[p] != 7 {
			t.Errorf("p%d decided %d, want 7", p, run.DecisionOf[p])
		}
	}
}

func TestA1FailureFreeDecidesRoundOne(t *testing.T) {
	run := mustRun(t, rounds.RS, A1{}, vals(3, 1, 2), 1, rounds.NoFailures)
	requireConsensus(t, run)
	lat, _ := run.Latency()
	if lat != 1 {
		t.Errorf("latency = %d, want 1 (Λ(A1)=1, Theorem 5.2)", lat)
	}
	for p := 1; p <= 3; p++ {
		if run.DecisionOf[p] != 3 {
			t.Errorf("p%d decided %d, want p1's value 3", p, run.DecisionOf[p])
		}
	}
}

func TestA1PartialBroadcastCase(t *testing.T) {
	// Theorem 5.2 case 2(a): p1 crashes during round 1 reaching only p3;
	// p3 decides v1 at round 1 and forwards (p1,v1) at round 2.
	adv := &rounds.CrashOnceAdversary{Victim: 1, Round: 1, Reach: model.Singleton(3)}
	run := mustRun(t, rounds.RS, A1{}, vals(3, 1, 2), 1, adv)
	requireConsensus(t, run)
	if run.DecidedAt[3] != 1 {
		t.Errorf("p3 decided at %d, want 1", run.DecidedAt[3])
	}
	if run.DecidedAt[2] != 2 {
		t.Errorf("p2 decided at %d, want 2", run.DecidedAt[2])
	}
	for p := 2; p <= 3; p++ {
		if run.DecisionOf[p] != 3 {
			t.Errorf("p%d decided %d, want 3", p, run.DecisionOf[p])
		}
	}
}

func TestA1SilentCrashCase(t *testing.T) {
	// Theorem 5.2 case 2(b): p1 crashes reaching no one; at round 2, p2
	// broadcasts v2 and every survivor decides it.
	adv := &rounds.CrashOnceAdversary{Victim: 1, Round: 1, Reach: 0}
	run := mustRun(t, rounds.RS, A1{}, vals(3, 1, 2), 1, adv)
	requireConsensus(t, run)
	for p := 2; p <= 3; p++ {
		if run.DecisionOf[p] != 1 {
			t.Errorf("p%d decided %d, want p2's value 1", p, run.DecisionOf[p])
		}
		if run.DecidedAt[p] != 2 {
			t.Errorf("p%d decided at %d, want 2", p, run.DecidedAt[p])
		}
	}
}

// TestA1DisagreesInRWS reproduces §5.3's scenario verbatim: "at round 1,
// p1 succeeds in broadcasting v1, decides, and then crashes. In addition,
// suppose that all the messages sent by p1 are pending. In this scenario,
// p1 decides v1 whereas all the other processes decide v2."
func TestA1DisagreesInRWS(t *testing.T) {
	script := &rounds.Script{Plans: []rounds.Plan{
		{Drops: map[model.ProcessID]model.ProcSet{1: model.FullSet(3).Remove(1)}},
		{Crashes: map[model.ProcessID]model.ProcSet{1: 0}},
	}}
	run := mustRun(t, rounds.RWS, A1{}, vals(3, 1, 2), 1, script)
	if v := rounds.CheckWeakRoundSynchrony(run); len(v) != 0 {
		t.Fatalf("scenario not RWS-admissible: %v", v[0].Error())
	}
	if run.DecidedAt[1] != 1 || run.DecisionOf[1] != 3 {
		t.Fatalf("p1 decided (%d at round %d), want (3 at round 1)",
			run.DecisionOf[1], run.DecidedAt[1])
	}
	for p := 2; p <= 3; p++ {
		if run.DecisionOf[p] != 1 {
			t.Errorf("p%d decided %d, want p2's value 1", p, run.DecisionOf[p])
		}
	}
	if check.UniformAgreement(run).OK {
		t.Error("expected uniform agreement violation (the paper's Λ separation witness)")
	}
}

func TestA1RequiresTEqualsOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("A1 with t=2 did not panic")
		}
	}()
	A1{}.New(rounds.ProcConfig{ID: 1, N: 4, T: 2, Initial: 0})
}

// TestSuiteUnderRandomAdversaries subjects every algorithm to thousands of
// random admissible adversaries in its own model and checks uniform
// consensus plus decision integrity on every run.
func TestSuiteUnderRandomAdversaries(t *testing.T) {
	cases := []struct {
		alg  rounds.Algorithm
		kind rounds.ModelKind
		n, t int
	}{
		{FloodSet{}, rounds.RS, 4, 2},
		{FloodSet{}, rounds.RS, 5, 3},
		{FloodSetWS{}, rounds.RWS, 4, 2},
		{FloodSetWS{}, rounds.RWS, 5, 3},
		{COptFloodSet{}, rounds.RS, 4, 2},
		{COptFloodSetWS{}, rounds.RWS, 4, 2},
		{FOptFloodSet{}, rounds.RS, 5, 2},
		{FOptFloodSetWS{}, rounds.RWS, 4, 1},
		{A1{}, rounds.RS, 4, 1},
	}
	initials := [][]model.Value{
		vals(0, 0, 0, 0, 0, 0)[:6],
		vals(0, 1, 0, 1, 0, 1)[:6],
		vals(5, 4, 3, 2, 1, 0)[:6],
		vals(9, 9, 1, 9, 9, 9)[:6],
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 300; seed++ {
			for ii, init := range initials {
				ia := check.NewIntegrityAlgorithm(tc.alg)
				adv := rounds.NewRandomAdversary(seed*31+int64(ii), 0.4, 0.4)
				run, err := rounds.RunAlgorithm(tc.kind, ia, init[:tc.n], tc.t, adv)
				if err != nil {
					t.Fatalf("%s/%v seed=%d: %v", tc.alg.Name(), tc.kind, seed, err)
				}
				if bad := check.FirstViolation(run); bad != nil {
					t.Fatalf("%s/%v seed=%d init=%v: %s\nrun: %s",
						tc.alg.Name(), tc.kind, seed, init[:tc.n], bad, run)
				}
				if viol := ia.Violations(); len(viol) != 0 {
					t.Fatalf("%s/%v seed=%d: integrity: %s", tc.alg.Name(), tc.kind, seed, viol[0])
				}
			}
		}
	}
}

func TestAllAndForModel(t *testing.T) {
	if got := len(All()); got != 7 {
		t.Errorf("All() returned %d algorithms, want 7", got)
	}
	if got := len(ForModel(rounds.RS)); got != 4 {
		t.Errorf("ForModel(RS) = %d algorithms, want 4", got)
	}
	if got := len(ForModel(rounds.RWS)); got != 3 {
		t.Errorf("ForModel(RWS) = %d algorithms, want 3", got)
	}
	if ForModel(rounds.ModelKind(9)) != nil {
		t.Error("ForModel(bogus) should be nil")
	}
}

// TestSuiteExhaustiveN4 verifies the entire suite against EVERY admissible
// adversary of its model at n=4, t=1, over a representative configuration
// family — a heavier companion to the n=3 sweeps in package explore.
func TestSuiteExhaustiveN4(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4 exhaustive sweep skipped in -short mode")
	}
	configs := [][]model.Value{
		vals(0, 0, 0, 0),
		vals(0, 1, 1, 1),
		vals(1, 0, 1, 0),
		vals(3, 1, 2, 0),
	}
	for _, kind := range []rounds.ModelKind{rounds.RS, rounds.RWS} {
		for _, alg := range ForModel(kind) {
			for _, cfg := range configs {
				_, err := explore.Runs(kind, alg, cfg, 1, explore.Options{}, func(run *rounds.Run) bool {
					if run.Truncated {
						return true
					}
					if bad := check.FirstViolation(run); bad != nil {
						t.Fatalf("%s/%v cfg=%v: %s\nrun %s", alg.Name(), kind, cfg, bad, run)
					}
					return true
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}
