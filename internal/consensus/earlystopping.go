package consensus

import (
	"repro/internal/model"
	"repro/internal/rounds"
)

// EarlyStoppingFloodSet extends FloodSet with the classic early-stopping
// rule: a process decides at the end of round r ≥ 2 as soon as it perceives
// no new failure — the set of processes it heard from at round r equals the
// set heard at round r−1 — and at round t+1 at the latest. Its latency
// adapts to the actual number of crashes: Lat(A,f) = min(f+2, t+1), which
// the companion paper's line of work shows is exactly the uniform consensus
// bound.
//
// Correctness scope (documented and tested, see EXPERIMENTS.md): the rule
// solves *uniform* consensus in RS for t ≤ 2 (verified exhaustively here),
// but for t ≥ 3 a three-crash chain defeats it — value hidden by a round-1
// crasher, relayed by a round-2 crasher, decided by a round-3 crasher — and
// TestEarlyStoppingUniformityBreaksAtT3 scripts that run. It always solves
// plain (non-uniform) consensus: the early decider that breaks uniformity
// is necessarily faulty. This mechanizes the paper's §5.1 remark that
// consensus and uniform consensus genuinely differ in these models.
type EarlyStoppingFloodSet struct{}

var _ rounds.Algorithm = EarlyStoppingFloodSet{}

// Name implements rounds.Algorithm.
func (EarlyStoppingFloodSet) Name() string { return "EarlyStoppingFloodSet" }

// New implements rounds.Algorithm.
func (EarlyStoppingFloodSet) New(cfg rounds.ProcConfig) rounds.Process {
	return &earlyStopProc{cfg: cfg, w: model.NewValueSet(cfg.Initial)}
}

type earlyStopProc struct {
	cfg       rounds.ProcConfig
	w         model.ValueSet
	prevHeard model.ProcSet
	decision  model.Value
	decided   bool
}

var (
	_ rounds.Process = (*earlyStopProc)(nil)
	_ rounds.Cloner  = (*earlyStopProc)(nil)
)

// Msgs implements rounds.Process.
func (p *earlyStopProc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	return broadcast(p.cfg.N, WMsg{W: p.w.Clone()})
}

// Trans implements rounds.Process: union everything, then decide on a
// stable heard-set or at the t+1 deadline.
func (p *earlyStopProc) Trans(round int, received []rounds.Message) {
	heard := unionW(&p.w, received)
	stable := round >= 2 && heard == p.prevHeard
	p.prevHeard = heard
	if !p.decided && (stable || round == p.cfg.T+1) {
		if v, ok := p.w.Min(); ok {
			p.decision, p.decided = v, true
		}
	}
}

// Decision implements rounds.Process.
func (p *earlyStopProc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *earlyStopProc) CloneProcess() rounds.Process {
	c := *p
	c.w = p.w.Clone()
	return &c
}

// EarlyDecideFloodSet is the one-round fast variant that separates plain
// consensus from uniform consensus in RS: a process decides min(W) already
// at round 1 when it heard from all n processes. If the early decider stays
// correct, its full W floods to everyone and all decisions coincide —
// plain consensus holds. But a round-1 crasher can confide a value to the
// early decider alone; if the decider then crashes, the survivors decide
// without that value: uniform agreement fails while every correct process
// still agrees. The paper's §5.1 cites exactly this phenomenon ("this
// result holds neither in RS nor in RWS") to justify studying the uniform
// problem.
type EarlyDecideFloodSet struct{}

var _ rounds.Algorithm = EarlyDecideFloodSet{}

// Name implements rounds.Algorithm.
func (EarlyDecideFloodSet) Name() string { return "EarlyDecideFloodSet" }

// New implements rounds.Algorithm.
func (EarlyDecideFloodSet) New(cfg rounds.ProcConfig) rounds.Process {
	return &earlyDecideProc{cfg: cfg, w: model.NewValueSet(cfg.Initial)}
}

type earlyDecideProc struct {
	cfg      rounds.ProcConfig
	w        model.ValueSet
	decision model.Value
	decided  bool
}

var (
	_ rounds.Process = (*earlyDecideProc)(nil)
	_ rounds.Cloner  = (*earlyDecideProc)(nil)
)

// Msgs implements rounds.Process.
func (p *earlyDecideProc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	return broadcast(p.cfg.N, WMsg{W: p.w.Clone()})
}

// Trans implements rounds.Process.
func (p *earlyDecideProc) Trans(round int, received []rounds.Message) {
	heard := unionW(&p.w, received)
	if !p.decided && ((round == 1 && heard == model.FullSet(p.cfg.N)) || round == p.cfg.T+1) {
		if v, ok := p.w.Min(); ok {
			p.decision, p.decided = v, true
		}
	}
}

// Decision implements rounds.Process.
func (p *earlyDecideProc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *earlyDecideProc) CloneProcess() rounds.Process {
	c := *p
	c.w = p.w.Clone()
	return &c
}
