package consensus

import (
	"repro/internal/model"
	"repro/internal/rounds"
)

// FOptFloodSet is the paper's Figure 3: the failure-optimized FloodSet. A
// process that receives exactly n−t messages at round 1 knows (by round
// synchrony) the exact set of faulty processes, so it can decide min(W)
// immediately and force that decision on everyone at round 2 with a
// (D, decision) message. In runs where t processes crash initially every
// process decides at round 1, witnessing Lat(F_OptFloodSet) = 1 — the
// paper's observation that minimal latency is *not* obtained in
// failure-free runs.
type FOptFloodSet struct{}

var _ rounds.Algorithm = FOptFloodSet{}

// Name implements rounds.Algorithm.
func (FOptFloodSet) Name() string { return "F_OptFloodSet" }

// New implements rounds.Algorithm.
func (FOptFloodSet) New(cfg rounds.ProcConfig) rounds.Process {
	return &fOptProc{cfg: cfg, w: model.NewValueSet(cfg.Initial)}
}

type fOptProc struct {
	cfg      rounds.ProcConfig
	w        model.ValueSet
	decision model.Value
	decided  bool
}

var (
	_ rounds.Process = (*fOptProc)(nil)
	_ rounds.Cloner  = (*fOptProc)(nil)
)

// Msgs implements rounds.Process:
//
//	if rounds ≤ t then
//	    if decided = false then send W to all processes
//	    else send (D, decision) to all processes
func (p *fOptProc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	if p.decided {
		return broadcast(p.cfg.N, DMsg{V: p.decision})
	}
	return broadcast(p.cfg.N, WMsg{W: p.w.Clone()})
}

// Trans implements rounds.Process, Figure 3's transition:
//
//	if rounds = 1 and n−t messages have arrived then decide min(W)
//	else if at least one X_j equals (D, v) then decide v
//	else W := W ∪ ⋃_j X_j
//	if rounds = t+1 and decided = false then decide min(W)
func (p *fOptProc) Trans(round int, received []rounds.Message) {
	arrived := arrivedSet(received)
	forced := model.NoValue
	forcedOK := false
	for j := 1; j <= p.cfg.N; j++ {
		if m, ok := received[j].(DMsg); ok {
			forced, forcedOK = m.V, true
			break
		}
	}
	switch {
	case round == 1 && arrived.Count() == p.cfg.N-p.cfg.T:
		unionW(&p.w, received)
		if !p.decided {
			if v, ok := p.w.Min(); ok {
				p.decision, p.decided = v, true
			}
		}
	case forcedOK:
		if !p.decided {
			p.decision, p.decided = forced, true
		}
	default:
		unionW(&p.w, received)
	}
	if round == p.cfg.T+1 && !p.decided {
		if v, ok := p.w.Min(); ok {
			p.decision, p.decided = v, true
		}
	}
}

// Decision implements rounds.Process.
func (p *fOptProc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *fOptProc) CloneProcess() rounds.Process {
	c := *p
	c.w = p.w.Clone()
	return &c
}

// FOptFloodSetWS grafts Figure 3's n−t fast path onto FloodSetWS, the RWS
// adaptation the paper calls F_OptFloodSetWS (its code is not spelled out
// in the paper; this is the natural translation with the halt mechanism).
//
// Why the fast path stays safe in RWS even though Theorem 5.1's case-2
// argument leans on round synchrony: a round-1 fast decider misses exactly
// t senders, and in RWS every missing sender is already doomed — it either
// crashed during round 1 or made its message pending, which obliges it to
// crash by round 2. The t missing processes therefore exhaust the entire
// failure budget, so (i) every fast decider misses the same t processes and
// computes the same W (round-1 messages are identical to all destinations),
// and (ii) the fast deciders themselves are necessarily correct, so their
// round-2 (D, v) forcing cannot be lost to pending messages. Experiment E3
// checks this exhaustively for t = 1 and t = 2.
type FOptFloodSetWS struct{}

var _ rounds.Algorithm = FOptFloodSetWS{}

// Name implements rounds.Algorithm.
func (FOptFloodSetWS) Name() string { return "F_OptFloodSetWS" }

// New implements rounds.Algorithm.
func (FOptFloodSetWS) New(cfg rounds.ProcConfig) rounds.Process {
	return &fOptWSProc{cfg: cfg, w: model.NewValueSet(cfg.Initial)}
}

type fOptWSProc struct {
	cfg      rounds.ProcConfig
	w        model.ValueSet
	halt     model.ProcSet
	decision model.Value
	decided  bool
}

var (
	_ rounds.Process = (*fOptWSProc)(nil)
	_ rounds.Cloner  = (*fOptWSProc)(nil)
)

// Msgs implements rounds.Process.
func (p *fOptWSProc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	if p.decided {
		return broadcast(p.cfg.N, DMsg{V: p.decision})
	}
	return broadcast(p.cfg.N, WMsg{W: p.w.Clone()})
}

// Trans implements rounds.Process: Figure 3's rule with FloodSetWS's
// halt-filtered union.
func (p *fOptWSProc) Trans(round int, received []rounds.Message) {
	var arrived model.ProcSet
	forced := model.NoValue
	forcedOK := false
	for j := 1; j <= p.cfg.N; j++ {
		if received[j] == nil {
			continue
		}
		arrived = arrived.Add(model.ProcessID(j))
		if m, ok := received[j].(DMsg); ok && !p.halt.Has(model.ProcessID(j)) && !forcedOK {
			forced, forcedOK = m.V, true
		}
	}
	unionVisible := func() {
		for j := 1; j <= p.cfg.N; j++ {
			if received[j] == nil || p.halt.Has(model.ProcessID(j)) {
				continue
			}
			if m, ok := received[j].(WMsg); ok {
				p.w.UnionWith(m.W)
			}
		}
	}
	switch {
	case round == 1 && arrived.Count() == p.cfg.N-p.cfg.T:
		unionVisible()
		if !p.decided {
			if v, ok := p.w.Min(); ok {
				p.decision, p.decided = v, true
			}
		}
	case forcedOK:
		if !p.decided {
			p.decision, p.decided = forced, true
		}
	default:
		unionVisible()
	}
	p.halt = p.halt.Union(model.FullSet(p.cfg.N).Minus(arrived))
	if round == p.cfg.T+1 && !p.decided {
		if v, ok := p.w.Min(); ok {
			p.decision, p.decided = v, true
		}
	}
}

// Decision implements rounds.Process.
func (p *fOptWSProc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *fOptWSProc) CloneProcess() rounds.Process {
	c := *p
	c.w = p.w.Clone()
	return &c
}
