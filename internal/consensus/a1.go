package consensus

import (
	"repro/internal/model"
	"repro/internal/rounds"
)

// A1 is the paper's Figure 4, the uniform consensus algorithm for RS with
// t = 1 whose every run lasts at most two rounds and whose failure-free
// runs decide at round 1 (Λ(A1) = 1, Theorem 5.2):
//
//   - Round 1: p1 broadcasts its initial value v1. Every process that
//     receives v1 (including p1 itself) adopts it and decides immediately.
//   - Round 2: round-1 deciders broadcast (p1, w); if p2 did not hear from
//     p1 it broadcasts its own value v2. A process that receives some
//     (p1, w) decides w; otherwise it decides the value received from p2.
//
// Uniform agreement relies on round synchrony: if p1 completes round 1 it
// reached everyone. In RWS the same algorithm is incorrect — with all of
// p1's round-1 messages pending, p1 decides v1 and everyone else decides v2
// (the §5.3 disagreement scenario, reproduced in experiment E7) — and the
// paper shows no RWS algorithm can decide at round 1 of all failure-free
// runs: Λ(A) ≥ 2 in RWS.
//
// A1 assumes t = 1; New panics if configured otherwise (a programmer
// error, not a runtime condition).
type A1 struct{}

var _ rounds.Algorithm = A1{}

// Name implements rounds.Algorithm.
func (A1) Name() string { return "A1" }

// New implements rounds.Algorithm.
func (A1) New(cfg rounds.ProcConfig) rounds.Process {
	if cfg.T != 1 {
		panic("consensus: A1 requires t = 1")
	}
	return &a1Proc{cfg: cfg, w: cfg.Initial}
}

type a1Proc struct {
	cfg      rounds.ProcConfig
	w        model.Value
	decision model.Value
	decided  bool
}

var (
	_ rounds.Process = (*a1Proc)(nil)
	_ rounds.Cloner  = (*a1Proc)(nil)
)

// Msgs implements rounds.Process, Figure 4's msgs_i:
//
//	if rounds = 1 and i = 1 then send w to all
//	if rounds = 2 then
//	    if decided = true then send (p1, w) to all
//	    else if i = 2 then send w to all processes
func (p *a1Proc) Msgs(round int) []rounds.Message {
	switch {
	case round == 1 && p.cfg.ID == 1:
		return broadcast(p.cfg.N, A1Val{V: p.w})
	case round == 2 && p.decided:
		return broadcast(p.cfg.N, A1Fwd{V: p.w})
	case round == 2 && p.cfg.ID == 2:
		return broadcast(p.cfg.N, A1Val{V: p.w})
	default:
		return nil
	}
}

// Trans implements rounds.Process, Figure 4's trans_i.
func (p *a1Proc) Trans(round int, received []rounds.Message) {
	switch round {
	case 1:
		if m, ok := received[1].(A1Val); ok {
			p.w = m.V
			p.decision, p.decided = m.V, true
		}
	case 2:
		if p.decided {
			return
		}
		for j := 1; j <= p.cfg.N; j++ {
			if m, ok := received[j].(A1Fwd); ok {
				p.decision, p.decided = m.V, true
				return
			}
		}
		if m, ok := received[2].(A1Val); ok {
			p.decision, p.decided = m.V, true
		}
	}
}

// Decision implements rounds.Process.
func (p *a1Proc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *a1Proc) CloneProcess() rounds.Process {
	c := *p
	return &c
}
