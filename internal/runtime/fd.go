package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// HeartbeatFD is the timeout-based failure detector the paper's Section 3
// alludes to ("a simple time-out mechanism with time-out periods that
// depend on the Δ and Φ bounds [implements] a perfect failure detector" in
// a synchronous system): every process broadcasts a heartbeat each Period,
// and an observer suspects a peer once no traffic has arrived from it for
// Timeout.
//
// Over a network with bounded delay D the detector is perfect when
//
//	Timeout > Period + D + scheduling jitter,
//
// because a live peer's next heartbeat always lands inside the window. Over
// an unbounded network the same code is merely eventually perfect — the
// experiments use exactly this to show which model a deployment actually
// lives in.
type HeartbeatFD struct {
	id        model.ProcessID
	n         int
	period    time.Duration
	timeout   time.Duration
	transport Transport

	lastHeard []atomic.Int64 // unix nanos of last traffic per peer

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	falseSuspicions atomic.Int64 // observed retractions (perfection counterexamples)
	everSuspected   []atomic.Bool

	metrics fdMetrics
	sink    obs.Sink
}

// NewHeartbeatFD builds (but does not start) a detector for the endpoint.
func NewHeartbeatFD(t Transport, n int, period, timeout time.Duration) *HeartbeatFD {
	fd := &HeartbeatFD{
		id:            t.LocalID(),
		n:             n,
		period:        period,
		timeout:       timeout,
		transport:     t,
		lastHeard:     make([]atomic.Int64, n+1),
		everSuspected: make([]atomic.Bool, n+1),
		stop:          make(chan struct{}),
		metrics:       newFDMetrics(obs.Default),
	}
	now := time.Now().UnixNano()
	for i := 1; i <= n; i++ {
		fd.lastHeard[i].Store(now)
	}
	return fd
}

// Instrument redirects the detector's counters to reg (nil disables them)
// and streams suspect/retract events to sink (nil disables the stream).
// Call before Start.
func (fd *HeartbeatFD) Instrument(reg *obs.Registry, sink obs.Sink) {
	fd.metrics = newFDMetrics(reg)
	fd.sink = sink
}

// Start launches the heartbeat broadcaster.
func (fd *HeartbeatFD) Start() {
	fd.wg.Add(1)
	go fd.broadcastLoop()
}

// Stop halts the broadcaster (the process "crashes" from the peers'
// viewpoint once its last heartbeat ages out).
func (fd *HeartbeatFD) Stop() {
	fd.stopOnce.Do(func() { close(fd.stop) })
	fd.wg.Wait()
}

func (fd *HeartbeatFD) broadcastLoop() {
	defer fd.wg.Done()
	ticker := time.NewTicker(fd.period)
	defer ticker.Stop()
	seq := 0
	for {
		select {
		case <-fd.stop:
			return
		case <-ticker.C:
			seq++
			env := wire.Envelope{From: fd.id, Round: seq, Kind: wire.KindHeartbeat}
			for j := 1; j <= fd.n; j++ {
				dest := model.ProcessID(j)
				if dest == fd.id {
					continue
				}
				e := env
				e.To = dest
				data, err := wire.Encode(e)
				if err != nil {
					continue
				}
				if fd.transport.Send(dest, data) == nil { // best effort; closure races are benign
					fd.metrics.heartbeatsSent.Inc()
				}
			}
		}
	}
}

// Observe records liveness evidence from a peer. The node's demultiplexer
// calls it for every packet (heartbeat or data): any traffic proves the
// peer was recently alive.
func (fd *HeartbeatFD) Observe(from model.ProcessID) {
	if !from.Valid(fd.n) {
		return
	}
	fd.lastHeard[from].Store(time.Now().UnixNano())
}

// Suspects returns the current suspicion set. It also tracks retractions:
// if a previously suspected peer shows life again, the detector was not
// perfect in this run (FalseSuspicions counts those events).
func (fd *HeartbeatFD) Suspects() model.ProcSet {
	var s model.ProcSet
	now := time.Now().UnixNano()
	for j := 1; j <= fd.n; j++ {
		if model.ProcessID(j) == fd.id {
			continue
		}
		if now-fd.lastHeard[j].Load() > int64(fd.timeout) {
			s = s.Add(model.ProcessID(j))
			// Swap counts each raise exactly once per transition, so the
			// raised/retracted counters track suspicion *edges*, not polls.
			if !fd.everSuspected[j].Swap(true) {
				fd.metrics.raised.Inc()
				if fd.sink != nil {
					fd.sink.Emit(obs.Event{Type: obs.EventSuspect, Proc: j, By: int(fd.id)})
				}
			}
		} else if fd.everSuspected[j].Swap(false) {
			fd.falseSuspicions.Add(1)
			fd.metrics.retracted.Inc()
			if fd.sink != nil {
				fd.sink.Emit(obs.Event{Type: obs.EventRetract, Proc: j, By: int(fd.id)})
			}
		}
	}
	return s
}

// FalseSuspicions reports how many suspicion retractions this observer went
// through — zero in a run where the detector behaved perfectly.
func (fd *HeartbeatFD) FalseSuspicions() int64 { return fd.falseSuspicions.Load() }
