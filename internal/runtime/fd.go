package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// HeartbeatFD is the timeout-based failure detector the paper's Section 3
// alludes to ("a simple time-out mechanism with time-out periods that
// depend on the Δ and Φ bounds [implements] a perfect failure detector" in
// a synchronous system): every process broadcasts a heartbeat each Period,
// and an observer suspects a peer once no traffic has arrived from it for
// Timeout.
//
// Over a network with bounded delay D the detector is perfect when
//
//	Timeout > Period + D + scheduling jitter,
//
// because a live peer's next heartbeat always lands inside the window. Over
// an unbounded network the same code is merely eventually perfect — the
// experiments use exactly this to show which model a deployment actually
// lives in. The optional adaptive mode (EnableAdaptiveTimeout) completes
// the degradation gracefully: growing the timeout on every retraction is
// the classic ◇P construction, converging to accuracy once the timeout
// overtakes the network's actual (unbounded-model) delays.
type HeartbeatFD struct {
	id        model.ProcessID
	n         int
	period    time.Duration
	timeout   atomic.Int64 // current suspicion window, nanoseconds
	transport Transport

	adaptive   bool
	maxTimeout time.Duration

	lastHeard []atomic.Int64 // unix nanos of last traffic per peer

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	round atomic.Int64 // current protocol round, for event attribution

	falseSuspicions atomic.Int64 // observed retractions (perfection counterexamples)
	encodeErrors    atomic.Int64
	everSuspected   []atomic.Bool // current suspicion edge state
	stickySuspected []atomic.Bool // ever raised, never cleared (accuracy audit)

	metrics fdMetrics
	sink    obs.Sink
	codec   wire.Codec
}

// NewHeartbeatFD builds (but does not start) a detector for the endpoint.
func NewHeartbeatFD(t Transport, n int, period, timeout time.Duration) *HeartbeatFD {
	fd := &HeartbeatFD{
		id:              t.LocalID(),
		n:               n,
		period:          period,
		transport:       t,
		lastHeard:       make([]atomic.Int64, n+1),
		everSuspected:   make([]atomic.Bool, n+1),
		stickySuspected: make([]atomic.Bool, n+1),
		stop:            make(chan struct{}),
		metrics:         newFDMetrics(obs.Default),
	}
	fd.timeout.Store(int64(timeout))
	now := time.Now().UnixNano()
	for i := 1; i <= n; i++ {
		fd.lastHeard[i].Store(now)
	}
	return fd
}

// Instrument redirects the detector's counters to reg (nil disables them)
// and streams suspect/retract events to sink (nil disables the stream).
// Call before Start.
func (fd *HeartbeatFD) Instrument(reg *obs.Registry, sink obs.Sink) {
	fd.metrics = newFDMetrics(reg)
	fd.sink = sink
}

// UseCodec routes the broadcaster's heartbeat encodes through c, so a wire
// tap sees detector traffic alongside the nodes' round messages. Call
// before Start.
func (fd *HeartbeatFD) UseCodec(c wire.Codec) {
	fd.codec = c
}

// EnableAdaptiveTimeout switches the detector from P-over-a-synchronous-
// network to the ◇P construction: every retraction doubles the suspicion
// timeout (capped at max; 0 means 64× the initial timeout), so over a
// network that violates its Δ bound the detector is eventually accurate
// instead of permanently suspecting live peers. Call before Start.
func (fd *HeartbeatFD) EnableAdaptiveTimeout(max time.Duration) {
	fd.adaptive = true
	if max <= 0 {
		max = time.Duration(fd.timeout.Load()) * 64
	}
	fd.maxTimeout = max
}

// NoteRound tags subsequent suspect/retract events with the protocol round
// the owning node is executing. The detector itself is round-free (it times
// out on wall-clock silence); the tag only gives event consumers — the
// conformance projector in particular — the round attribution that a raw
// suspicion edge lacks.
func (fd *HeartbeatFD) NoteRound(r int) {
	fd.round.Store(int64(r))
}

// CurrentTimeout returns the active suspicion window — grown past its
// configured value only by adaptive retractions.
func (fd *HeartbeatFD) CurrentTimeout() time.Duration {
	return time.Duration(fd.timeout.Load())
}

// Start launches the heartbeat broadcaster.
func (fd *HeartbeatFD) Start() {
	fd.wg.Add(1)
	go fd.broadcastLoop()
}

// Stop halts the broadcaster (the process "crashes" from the peers'
// viewpoint once its last heartbeat ages out).
func (fd *HeartbeatFD) Stop() {
	fd.stopOnce.Do(func() { close(fd.stop) })
	fd.wg.Wait()
}

func (fd *HeartbeatFD) broadcastLoop() {
	defer fd.wg.Done()
	ticker := time.NewTicker(fd.period)
	defer ticker.Stop()
	seq := 0
	for {
		select {
		case <-fd.stop:
			return
		case <-ticker.C:
			seq++
			env := wire.Envelope{From: fd.id, Round: seq, Kind: wire.KindHeartbeat}
			for j := 1; j <= fd.n; j++ {
				dest := model.ProcessID(j)
				if dest == fd.id {
					continue
				}
				e := env
				e.To = dest
				data, err := fd.codec.Encode(e)
				if err != nil {
					// A liveness beacon that fails to encode is a silent
					// partial crash; count it so the run verdict can see it.
					fd.encodeErrors.Add(1)
					fd.metrics.encodeErrors.Inc()
					continue
				}
				if fd.transport.Send(dest, data) == nil { // best effort; closure races are benign
					fd.metrics.heartbeatsSent.Inc()
				}
			}
		}
	}
}

// Observe records liveness evidence from a peer. The node's demultiplexer
// calls it for every packet (heartbeat or data): any traffic proves the
// peer was recently alive.
func (fd *HeartbeatFD) Observe(from model.ProcessID) {
	if !from.Valid(fd.n) {
		return
	}
	fd.lastHeard[from].Store(time.Now().UnixNano())
}

// Suspects returns the current suspicion set. It also tracks retractions:
// if a previously suspected peer shows life again, the detector was not
// perfect in this run (FalseSuspicions counts those events), and in
// adaptive mode each retraction doubles the timeout.
func (fd *HeartbeatFD) Suspects() model.ProcSet {
	var s model.ProcSet
	now := time.Now().UnixNano()
	timeout := fd.timeout.Load()
	for j := 1; j <= fd.n; j++ {
		if model.ProcessID(j) == fd.id {
			continue
		}
		if now-fd.lastHeard[j].Load() > timeout {
			s = s.Add(model.ProcessID(j))
			// Swap counts each raise exactly once per transition, so the
			// raised/retracted counters track suspicion *edges*, not polls.
			if !fd.everSuspected[j].Swap(true) {
				fd.stickySuspected[j].Store(true)
				fd.metrics.raised.Inc()
				if fd.sink != nil {
					fd.sink.Emit(obs.Event{Type: obs.EventSuspect, Round: int(fd.round.Load()), Proc: j, By: int(fd.id)})
				}
			}
		} else if fd.everSuspected[j].Swap(false) {
			fd.falseSuspicions.Add(1)
			fd.metrics.retracted.Inc()
			if fd.adaptive {
				grown := timeout * 2
				if grown > int64(fd.maxTimeout) {
					grown = int64(fd.maxTimeout)
				}
				// CompareAndSwap: concurrent pollers double once, not twice.
				fd.timeout.CompareAndSwap(timeout, grown)
			}
			if fd.sink != nil {
				fd.sink.Emit(obs.Event{Type: obs.EventRetract, Round: int(fd.round.Load()), Proc: j, By: int(fd.id)})
			}
		}
	}
	return s
}

// FalseSuspicions reports how many suspicion retractions this observer went
// through — zero in a run where the detector behaved perfectly.
func (fd *HeartbeatFD) FalseSuspicions() int64 { return fd.falseSuspicions.Load() }

// EncodeErrors reports heartbeats lost to envelope encoding failures.
func (fd *HeartbeatFD) EncodeErrors() int64 { return fd.encodeErrors.Load() }

// EverSuspected returns every peer this observer suspected at any point,
// retracted or not. Compared against which processes actually crashed it
// yields the run's strong-accuracy audit: a member that never crashed is a
// false suspicion even if the run ended before the retraction was polled.
func (fd *HeartbeatFD) EverSuspected() model.ProcSet {
	var s model.ProcSet
	for j := 1; j <= fd.n; j++ {
		if fd.stickySuspected[j].Load() {
			s = s.Add(model.ProcessID(j))
		}
	}
	return s
}
