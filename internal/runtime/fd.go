package runtime

import (
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/wire"
)

// HeartbeatFD is the timeout-based failure detector the paper's Section 3
// alludes to ("a simple time-out mechanism with time-out periods that
// depend on the Δ and Φ bounds [implements] a perfect failure detector" in
// a synchronous system): every process broadcasts a heartbeat each Period,
// and an observer suspects a peer once no traffic has arrived from it for
// Timeout.
//
// Over a network with bounded delay D the detector is perfect when
//
//	Timeout > Period + D + scheduling jitter,
//
// because a live peer's next heartbeat always lands inside the window. Over
// an unbounded network the same code is merely eventually perfect — the
// experiments use exactly this to show which model a deployment actually
// lives in. The optional adaptive mode (EnableAdaptiveTimeout) completes
// the degradation gracefully: growing the timeout on every retraction is
// the classic ◇P construction, converging to accuracy once the timeout
// overtakes the network's actual (unbounded-model) delays.
//
// It is the "heartbeat" entry of the detector zoo (see HeartbeatDetector
// and internal/fdimpl); its cost is O(n²) messages per period cluster-wide.
type HeartbeatFD struct {
	*DetectorCore
	period    time.Duration
	timeout   atomic.Int64 // current suspicion window, nanoseconds
	transport Transport

	adaptive   bool
	maxTimeout time.Duration

	lastHeard []atomic.Int64 // unix nanos of last traffic per peer

	life  Lifecycle
	codec wire.Codec
}

// NewHeartbeatFD builds (but does not start) a detector for the endpoint.
func NewHeartbeatFD(t Transport, n int, period, timeout time.Duration) *HeartbeatFD {
	fd := &HeartbeatFD{
		DetectorCore: NewDetectorCore("heartbeat", t.LocalID(), n),
		period:       period,
		transport:    t,
		lastHeard:    make([]atomic.Int64, n+1),
	}
	fd.timeout.Store(int64(timeout))
	now := time.Now().UnixNano()
	for i := 1; i <= n; i++ {
		fd.lastHeard[i].Store(now)
	}
	return fd
}

// UseCodec routes the broadcaster's heartbeat encodes through c, so a wire
// tap sees detector traffic alongside the nodes' round messages. Call
// before Start.
func (fd *HeartbeatFD) UseCodec(c wire.Codec) {
	fd.codec = c
}

// EnableAdaptiveTimeout switches the detector from P-over-a-synchronous-
// network to the ◇P construction: every retraction doubles the suspicion
// timeout (capped at max; 0 means 64× the initial timeout), so over a
// network that violates its Δ bound the detector is eventually accurate
// instead of permanently suspecting live peers. Call before Start.
func (fd *HeartbeatFD) EnableAdaptiveTimeout(max time.Duration) {
	fd.adaptive = true
	if max <= 0 {
		max = time.Duration(fd.timeout.Load()) * 64
	}
	fd.maxTimeout = max
}

// CurrentTimeout returns the active suspicion window — grown past its
// configured value only by adaptive retractions.
func (fd *HeartbeatFD) CurrentTimeout() time.Duration {
	return time.Duration(fd.timeout.Load())
}

// Start launches the heartbeat broadcaster.
func (fd *HeartbeatFD) Start() {
	fd.life.Go(fd.broadcastLoop)
}

// Stop halts the broadcaster (the process "crashes" from the peers'
// viewpoint once its last heartbeat ages out). Idempotent, and safe to
// call before Start.
func (fd *HeartbeatFD) Stop() {
	fd.life.Stop()
}

func (fd *HeartbeatFD) broadcastLoop(stop <-chan struct{}) {
	ticker := time.NewTicker(fd.period)
	defer ticker.Stop()
	seq := 0
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			seq++
			env := wire.Envelope{From: fd.ID(), Round: seq, Kind: wire.KindHeartbeat}
			for j := 1; j <= fd.N(); j++ {
				dest := model.ProcessID(j)
				if dest == fd.ID() {
					continue
				}
				e := env
				e.To = dest
				data, err := fd.codec.Encode(e)
				if err != nil {
					// A liveness beacon that fails to encode is a silent
					// partial crash; count it so the run verdict can see it.
					fd.NoteEncodeError()
					continue
				}
				if fd.transport.Send(dest, data) == nil { // best effort; closure races are benign
					fd.NoteSent()
				}
			}
		}
	}
}

// Observe records liveness evidence from a peer. The node's demultiplexer
// calls it for every decoded envelope (control or data): any traffic
// proves the sender was recently alive.
func (fd *HeartbeatFD) Observe(env wire.Envelope) {
	if !env.From.Valid(fd.N()) {
		return
	}
	fd.lastHeard[env.From].Store(time.Now().UnixNano())
}

// Suspects returns the current suspicion set. It also tracks retractions:
// if a previously suspected peer shows life again, the detector was not
// perfect in this run (FalseSuspicions counts those events), and in
// adaptive mode each retraction doubles the timeout.
func (fd *HeartbeatFD) Suspects() model.ProcSet {
	var s model.ProcSet
	now := time.Now().UnixNano()
	timeout := fd.timeout.Load()
	for j := 1; j <= fd.N(); j++ {
		if model.ProcessID(j) == fd.ID() {
			continue
		}
		if now-fd.lastHeard[j].Load() > timeout {
			s = s.Add(model.ProcessID(j))
			fd.Raise(model.ProcessID(j))
		} else if fd.Retract(model.ProcessID(j)) && fd.adaptive {
			grown := timeout * 2
			if grown > int64(fd.maxTimeout) {
				grown = int64(fd.maxTimeout)
			}
			// CompareAndSwap: concurrent pollers double once, not twice.
			fd.timeout.CompareAndSwap(timeout, grown)
		}
	}
	return s
}
