package runtime

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/nbac"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// TestLiveNBACCommitsFailureFree: all-Yes votes over the live RS cluster
// commit.
func TestLiveNBACCommitsFailureFree(t *testing.T) {
	cr, err := RunCluster(nbac.ForRS(), ClusterConfig{
		Kind:          rounds.RS,
		Initial:       []model.Value{nbac.VoteYes, nbac.VoteYes, nbac.VoteYes},
		T:             1,
		RoundDuration: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, st := cr.Agreement()
	if st != AgreementReached || v != nbac.Commit {
		t.Fatalf("agreement = (%v,%v), want COMMIT", nbac.DecisionString(v), st)
	}
}

// TestLiveNBACAbortsOnNoVote: one No vote aborts, live.
func TestLiveNBACAbortsOnNoVote(t *testing.T) {
	cr, err := RunCluster(nbac.ForRWS(), ClusterConfig{
		Kind:    rounds.RWS,
		Initial: []model.Value{nbac.VoteYes, nbac.VoteNo, nbac.VoteYes},
		T:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, st := cr.Agreement()
	if st != AgreementReached || v != nbac.Abort {
		t.Fatalf("agreement = (%v,%v), want ABORT", nbac.DecisionString(v), st)
	}
}

// TestLiveNBACCommitGap reproduces E9's separating scenario on real
// goroutines: p1 votes Yes and crashes right after its voting round.
//
//   - RS cluster: the bounded-delay network already delivered the vote —
//     the survivors COMMIT.
//   - RWS cluster with p1's vote messages crawling behind fast failure
//     detection: the survivors suspect p1 before its vote arrives and must
//     ABORT — the same physical crash, the opposite decision.
func TestLiveNBACCommitGap(t *testing.T) {
	votes := []model.Value{nbac.VoteYes, nbac.VoteYes, nbac.VoteYes}

	rs, err := RunCluster(nbac.ForRS(), ClusterConfig{
		Kind: rounds.RS, Initial: votes, T: 1,
		RoundDuration: 15 * time.Millisecond,
		Crashes:       map[model.ProcessID]CrashPlan{1: {Round: 2, Reach: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, st := rs.Agreement(); st != AgreementReached || v != nbac.Commit {
		t.Fatalf("RS: agreement = (%v,%v), want COMMIT (vote already delivered)", nbac.DecisionString(v), st)
	}

	slowVotes := func(from, to model.ProcessID, data []byte) time.Duration {
		env, err := wire.Decode(data)
		if err == nil && from == 1 && env.Kind == wire.KindVotes {
			return 300 * time.Millisecond
		}
		return 500 * time.Microsecond
	}
	nw := NewChanNetwork(3, ChanConfig{Delay: slowVotes})
	rws, err := RunCluster(nbac.ForRWS(), ClusterConfig{
		Kind: rounds.RWS, Initial: votes, T: 1,
		Network: nw,
		Crashes: map[model.ProcessID]CrashPlan{1: {Round: 2, Reach: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i <= 3; i++ {
		if !rws.Results[i].Decided || rws.Results[i].Decision != nbac.Abort {
			t.Fatalf("RWS: p%d = %+v, want ABORT (vote pending behind suspicion)", i, rws.Results[i])
		}
	}
}
