package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
)

// ClusterConfig assembles a full live execution.
type ClusterConfig struct {
	Kind    rounds.ModelKind
	Initial []model.Value // initial[i] is p_{i+1}'s value
	T       int

	// Network: either provide one (Endpoints), or leave nil to get a
	// default in-process synchronous network.
	Network interface {
		Endpoint(model.ProcessID) Transport
		Close() error
	}

	// RoundDuration paces RS rounds (default 25ms: comfortably above the
	// default network's 1ms delay bound).
	RoundDuration time.Duration

	// HeartbeatPeriod and SuspectTimeout configure the RWS failure
	// detectors (defaults 2ms / 30ms: perfect over the default network).
	HeartbeatPeriod time.Duration
	SuspectTimeout  time.Duration

	MaxRounds int

	// Crashes schedules crash plans per process.
	Crashes map[model.ProcessID]CrashPlan

	// Metrics receives the cluster's instruments (node round durations,
	// failure-detector counters, default-network transport counters). Nil
	// uses the process-wide obs.Default registry.
	Metrics *obs.Registry
	// Events, when non-nil, receives the interleaved live event stream of
	// every node and failure detector. The sink must be concurrency-safe
	// (obs.Emitter and obs.Collector both are).
	Events obs.Sink
	// MetricsAddr, when non-empty (e.g. "127.0.0.1:0"), serves the
	// registry's Prometheus exposition plus /healthz for the duration of the
	// run. The server stays up after RunCluster returns successfully —
	// ClusterResult.MetricsServer — so callers can scrape the finished run;
	// they own the server and must Close it.
	MetricsAddr string
}

// ClusterResult aggregates the nodes' results.
type ClusterResult struct {
	Results []NodeResult // index 1..n
	// FalseSuspicions sums detector retractions across nodes: 0 means
	// failure detection was perfect in this run.
	FalseSuspicions int64
	Elapsed         time.Duration

	// MetricsServer is the live exposition endpoint when
	// ClusterConfig.MetricsAddr was set; the caller must Close it. Nil when
	// no endpoint was requested or the run failed.
	MetricsServer *obs.Server
}

// Decisions extracts (value, decided) pairs.
func (cr *ClusterResult) Decisions() ([]model.Value, []bool) {
	n := len(cr.Results) - 1
	vals := make([]model.Value, n+1)
	ok := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		vals[i] = cr.Results[i].Decision
		ok[i] = cr.Results[i].Decided
	}
	return vals, ok
}

// Agreement reports whether all decided nodes agree, and the common value.
func (cr *ClusterResult) Agreement() (model.Value, bool) {
	var first model.Value
	seen := false
	for i := 1; i < len(cr.Results); i++ {
		r := cr.Results[i]
		if !r.Decided {
			continue
		}
		if !seen {
			first, seen = r.Decision, true
		} else if r.Decision != first {
			return 0, false
		}
	}
	return first, seen
}

// RunCluster executes one live run of the algorithm and returns every
// node's outcome. All goroutines are joined before it returns.
func RunCluster(alg rounds.Algorithm, cfg ClusterConfig) (*ClusterResult, error) {
	n := len(cfg.Initial)
	if n < 1 {
		return nil, fmt.Errorf("runtime: empty cluster")
	}
	if cfg.RoundDuration <= 0 {
		cfg.RoundDuration = 25 * time.Millisecond
	}
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = 2 * time.Millisecond
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 30 * time.Millisecond
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = cfg.T + 2
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	var server *obs.Server
	if cfg.MetricsAddr != "" {
		var err error
		server, err = obs.StartServer(cfg.MetricsAddr, reg)
		if err != nil {
			return nil, err
		}
	}
	// On any failure the server must come down with us: the caller only
	// takes ownership of it through a successful result.
	serverToCaller := false
	defer func() {
		if !serverToCaller {
			_ = server.Close()
		}
	}()

	network := cfg.Network
	if network == nil {
		network = NewChanNetwork(n, ChanConfig{MaxDelay: time.Millisecond, Metrics: reg})
	}
	defer func() { _ = network.Close() }()

	epoch := time.Now().Add(10 * time.Millisecond)
	nodes := make([]*Node, n+1)
	fds := make([]*HeartbeatFD, n+1)
	for i := 1; i <= n; i++ {
		id := model.ProcessID(i)
		transport := network.Endpoint(id)
		var fd *HeartbeatFD
		if cfg.Kind == rounds.RWS {
			fd = NewHeartbeatFD(transport, n, cfg.HeartbeatPeriod, cfg.SuspectTimeout)
			fd.Instrument(reg, cfg.Events)
		}
		fds[i] = fd
		node, err := NewNode(alg, NodeConfig{
			ID: id, N: n, T: cfg.T, Initial: cfg.Initial[i-1],
			Transport: transport, Kind: cfg.Kind,
			RoundDuration: cfg.RoundDuration, Epoch: epoch,
			FD: fd, MaxRounds: cfg.MaxRounds,
			Crash:   cfg.Crashes[id],
			Metrics: reg, Events: cfg.Events,
		})
		if err != nil {
			return nil, err
		}
		nodes[i] = node
	}

	start := time.Now()
	results := make([]NodeResult, n+1)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		if fds[i] != nil {
			fds[i].Start()
		}
	}
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = nodes[i].Run()
		}(i)
	}
	wg.Wait()
	cr := &ClusterResult{Results: results, Elapsed: time.Since(start)}
	for i := 1; i <= n; i++ {
		if fds[i] != nil {
			fds[i].Stop()
			cr.FalseSuspicions += fds[i].FalseSuspicions()
		}
	}
	for i := 1; i <= n; i++ {
		if results[i].Err != nil {
			return cr, fmt.Errorf("runtime: node %d: %w", i, results[i].Err)
		}
	}
	cr.MetricsServer = server
	serverToCaller = true
	return cr, nil
}
