package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/netobs"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// ClusterConfig assembles a full live execution.
type ClusterConfig struct {
	Kind    rounds.ModelKind
	Initial []model.Value // initial[i] is p_{i+1}'s value
	T       int

	// Network: either provide one (Endpoints), or leave nil to get a
	// default in-process synchronous network.
	Network interface {
		Endpoint(model.ProcessID) Transport
		Close() error
	}

	// RoundDuration paces RS rounds (default 25ms: comfortably above the
	// default network's 1ms delay bound).
	RoundDuration time.Duration

	// EpochHeadroom is the slack between finishing cluster construction and
	// the RS round-1 deadline barrier. Zero scales with the cluster size
	// (10ms + 2ms·n); set it explicitly when node startup is known to be
	// slow (remote TCP dials, cold containers).
	EpochHeadroom time.Duration

	// HeartbeatPeriod and SuspectTimeout configure the RWS failure
	// detectors (defaults 2ms / 30ms: perfect over the default network).
	HeartbeatPeriod time.Duration
	SuspectTimeout  time.Duration

	// Detector selects the failure-detector construction for RWS runs; nil
	// means the default all-to-all heartbeat. The spec's factory is invoked
	// once per node with the node's (fault-wrapped) transport; its name
	// labels the ssfd_fd_* metric families. The implementations live in
	// internal/fdimpl — resolve CLI names through its registry.
	Detector *DetectorSpec

	MaxRounds int

	// Crashes schedules crash plans per process.
	Crashes map[model.ProcessID]CrashPlan

	// Faults, when non-nil, interposes a seeded fault injector between
	// every node and the network: per-link loss/duplication/reordering/
	// delay spikes, scheduled partitions and crash/recovery blackholes.
	// The injector's metrics and events default to this config's Metrics
	// and Events unless the faults config sets its own.
	Faults *faults.Config

	// AdaptiveTimeout switches the failure detectors to the ◇P
	// construction: each retraction doubles the suspicion timeout, up to
	// AdaptiveTimeoutMax (0: 64× the initial timeout). Without it the
	// detectors keep the configured window and a network beyond its Δ
	// bound makes them permanently inaccurate.
	AdaptiveTimeout    bool
	AdaptiveTimeoutMax time.Duration

	// RWSWaitBound bounds each RWS round's receive-or-suspect wait (see
	// NodeConfig.WaitBound). Zero keeps the model-faithful unbounded wait;
	// chaos runs over message-losing networks need a bound to terminate.
	RWSWaitBound time.Duration

	// Metrics receives the cluster's instruments (node round durations,
	// failure-detector counters, default-network transport counters). Nil
	// uses the process-wide obs.Default registry.
	Metrics *obs.Registry
	// Events, when non-nil, receives the interleaved live event stream of
	// every node and failure detector. The sink must be concurrency-safe
	// (obs.Emitter and obs.Collector both are).
	Events obs.Sink
	// MetricsAddr, when non-empty (e.g. "127.0.0.1:0"), serves the
	// registry's Prometheus exposition plus /healthz for the duration of the
	// run. The server stays up after RunCluster returns successfully —
	// ClusterResult.MetricsServer — so callers can scrape the finished run;
	// they own the server and must Close it.
	MetricsAddr string

	// Flight, when non-nil, receives the run's transport flight records:
	// the default network and the fault injector record into it. To also
	// capture detector and lifecycle records, chain the recorder into the
	// event stream (it implements obs.Sink) — never both chain it and rely
	// on this field for events, or records double. Callers dump it on
	// crash or conformance failure (see netobs.Recorder).
	Flight *netobs.Recorder
}

// ClusterResult aggregates the nodes' results.
type ClusterResult struct {
	Results []NodeResult // index 1..n
	// FalseSuspicions sums detector retractions across nodes: 0 means
	// failure detection was perfect in this run.
	FalseSuspicions int64
	// Retractions sums the detectors' retraction edges — numerically equal
	// to FalseSuspicions under crash-stop, surfaced separately because the
	// adaptive constructions consume it as their tuning signal and the E15
	// scorecard reports it as a rate.
	Retractions int64
	// FalselySuspected counts (observer, target) pairs where the observer
	// suspected a process that never crash-stopped — the strong-accuracy
	// audit, catching even suspicions the run ended too early to retract.
	FalselySuspected int64
	// DetectorWasPerfect is the run-level verdict: no retractions and no
	// sticky false suspicions. Over a network honoring its Δ bound this is
	// always true — experiment E14 measures where it stops being so.
	DetectorWasPerfect bool
	// EncodeErrors sums heartbeats lost to envelope encoding failures.
	EncodeErrors int64
	// PartitionLog is the fault injector's fired topology transitions
	// (empty without ClusterConfig.Faults).
	PartitionLog []faults.Transition
	// FaultDecisions is the injector's per-message decision log in
	// canonical order — the seed-replay artifact. Populated only when
	// ClusterConfig.Faults sets RecordDecisions.
	FaultDecisions []faults.Decision
	Elapsed        time.Duration

	// Cost is the run's transport cost accounting — messages/decision and
	// bytes/decision. Always populated.
	Cost *obs.CostSummary
	// WireKinds is the per-message-type codec accounting behind Cost, in
	// kind-tag order.
	WireKinds []netobs.KindTotals
	// Links is the network's per-link telemetry (nil when the caller
	// supplied a network that exposes none).
	Links *netobs.LinkTap

	// MetricsServer is the live exposition endpoint when
	// ClusterConfig.MetricsAddr was set; the caller must Close it. Nil when
	// no endpoint was requested or the run failed.
	MetricsServer *obs.Server
}

// Decisions extracts (value, decided) pairs.
func (cr *ClusterResult) Decisions() ([]model.Value, []bool) {
	n := len(cr.Results) - 1
	vals := make([]model.Value, n+1)
	ok := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		vals[i] = cr.Results[i].Decision
		ok[i] = cr.Results[i].Decided
	}
	return vals, ok
}

// AgreementStatus is a run's three-way agreement verdict. The historic
// boolean form conflated two very different outcomes — a safety violation
// (two nodes decided differently) and a liveness miss (nobody decided) both
// read as "false" — so chaos verdicts could not tell which invariant broke.
type AgreementStatus int

const (
	// AgreementNone: no node decided — a liveness observation, not a
	// safety one.
	AgreementNone AgreementStatus = iota
	// AgreementReached: every decided node decided the same value.
	AgreementReached
	// AgreementViolated: two decided nodes hold different values — the
	// safety violation.
	AgreementViolated
)

// String names the verdict.
func (s AgreementStatus) String() string {
	switch s {
	case AgreementNone:
		return "none"
	case AgreementReached:
		return "reached"
	case AgreementViolated:
		return "violated"
	default:
		return fmt.Sprintf("AgreementStatus(%d)", int(s))
	}
}

// agreementOf folds parallel decision slices into the three-way verdict.
// Shared by ClusterResult.Agreement and EngineResult.InstanceAgreement.
func agreementOf(vals []model.Value, decided []bool) (model.Value, AgreementStatus) {
	var first model.Value
	status := AgreementNone
	for i := range vals {
		if !decided[i] {
			continue
		}
		if status == AgreementNone {
			first, status = vals[i], AgreementReached
		} else if vals[i] != first {
			return 0, AgreementViolated
		}
	}
	return first, status
}

// Agreement reports the run's agreement verdict and, when reached, the
// common value (the value is meaningful only for AgreementReached).
func (cr *ClusterResult) Agreement() (model.Value, AgreementStatus) {
	vals, ok := cr.Decisions()
	return agreementOf(vals[1:], ok[1:])
}

// RunCluster executes one live run of the algorithm and returns every
// node's outcome. All goroutines are joined before it returns.
func RunCluster(alg rounds.Algorithm, cfg ClusterConfig) (*ClusterResult, error) {
	n := len(cfg.Initial)
	if n < 1 {
		return nil, fmt.Errorf("runtime: empty cluster")
	}
	if cfg.RoundDuration <= 0 {
		cfg.RoundDuration = 25 * time.Millisecond
	}
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = 2 * time.Millisecond
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 30 * time.Millisecond
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = cfg.T + 2
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	spec := cfg.Detector
	if spec == nil {
		spec = HeartbeatDetector()
	}
	// Pre-register the counter families a scrape should always see, even at
	// zero: an absent ssfd_fd_encode_errors_total is indistinguishable from
	// an unmeasured one.
	reg.Counter(obs.Label(MetricFDEncodeErrors, "detector", spec.Name))
	reg.Counter(obs.Label(faults.MetricDropped, "reason", "loss"))
	reg.Counter(obs.Label(faults.MetricDropped, "reason", "partition"))
	reg.Counter(obs.Label(faults.MetricDropped, "reason", "crash"))
	reg.Counter(faults.MetricDuplicated)
	reg.Counter(faults.MetricReordered)
	reg.Counter(faults.MetricDelayed)

	// Per-run wire accounting: one tap shared by every node and detector, so
	// the run's per-message-type totals are independent of whatever else the
	// (possibly shared) registry has seen.
	ws := netobs.NewWireStats(reg)
	codec := wire.Codec{Tap: ws}

	var server *obs.Server
	if cfg.MetricsAddr != "" {
		var err error
		server, err = obs.StartServer(cfg.MetricsAddr, reg)
		if err != nil {
			return nil, err
		}
	}
	// On any failure the server must come down with us: the caller only
	// takes ownership of it through a successful result.
	serverToCaller := false
	defer func() {
		if !serverToCaller {
			_ = server.Close()
		}
	}()

	network := cfg.Network
	if network == nil {
		network = NewChanNetwork(n, ChanConfig{MaxDelay: time.Millisecond, Metrics: reg, Flight: cfg.Flight})
	}
	defer func() { _ = network.Close() }()

	// The injector sits between every node and its endpoint; it must close
	// (joining its delayed-delivery goroutines) before the network does, which
	// the deferral order guarantees.
	var inj *faults.Injector
	if cfg.Faults != nil {
		fcfg := *cfg.Faults
		if fcfg.Metrics == nil {
			fcfg.Metrics = reg
		}
		if fcfg.Events == nil {
			fcfg.Events = cfg.Events
		}
		if fcfg.Flight == nil {
			fcfg.Flight = cfg.Flight
		}
		inj = faults.NewInjector(fcfg)
		defer func() { _ = inj.Close() }()
	}

	// Phase 1: the expensive construction — endpoints (a TCP network dials
	// here) and detectors. The RS epoch is anchored only after this phase,
	// so slow setup cannot eat into the round-1 headroom.
	transports := make([]Transport, n+1)
	fds := make([]Detector, n+1)
	// stopFDs releases every detector already constructed when a later step
	// fails: Stop is idempotent and safe before Start (the Detector
	// contract), so the error path cannot leak a construction's eagerly
	// acquired resources.
	stopFDs := func() {
		for i := 1; i <= n; i++ {
			if fds[i] != nil {
				fds[i].Stop()
			}
		}
	}
	for i := 1; i <= n; i++ {
		id := model.ProcessID(i)
		var transport Transport = network.Endpoint(id)
		if inj != nil {
			transport = inj.Wrap(transport)
		}
		transports[i] = transport
		// fds[i] stays an untyped nil for RS runs: assigning a nil concrete
		// pointer into the interface would defeat the nodes' FD != nil
		// guards.
		if cfg.Kind == rounds.RWS {
			d, err := spec.New(DetectorConfig{
				Transport: transport, N: n,
				Period: cfg.HeartbeatPeriod, Timeout: cfg.SuspectTimeout,
				Adaptive: cfg.AdaptiveTimeout, AdaptiveMax: cfg.AdaptiveTimeoutMax,
			})
			if err != nil {
				stopFDs()
				return nil, fmt.Errorf("runtime: node %d: detector %q: %w", i, spec.Name, err)
			}
			d.Instrument(reg, cfg.Events)
			d.UseCodec(codec)
			fds[i] = d
		}
	}

	// Phase 2: anchor the RS round-1 barrier and build the (cheap) nodes.
	// The headroom scales with n — at 10ms flat, clusters that took longer
	// than that to set up started round 1 with the deadline already past.
	headroom := cfg.EpochHeadroom
	if headroom <= 0 {
		headroom = 10*time.Millisecond + time.Duration(n)*2*time.Millisecond
	}
	epoch := time.Now().Add(headroom)
	nodes := make([]*Node, n+1)
	for i := 1; i <= n; i++ {
		id := model.ProcessID(i)
		node, err := NewNode(alg, NodeConfig{
			ID: id, N: n, T: cfg.T, Initial: cfg.Initial[i-1],
			Transport: transports[i], Kind: cfg.Kind,
			RoundDuration: cfg.RoundDuration, Epoch: epoch,
			FD: fds[i], MaxRounds: cfg.MaxRounds,
			WaitBound: cfg.RWSWaitBound,
			Crash:     cfg.Crashes[id],
			Metrics:   reg, Events: cfg.Events,
			Codec: codec,
		})
		if err != nil {
			stopFDs()
			return nil, err
		}
		nodes[i] = node
	}

	start := time.Now()
	results := make([]NodeResult, n+1)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		if fds[i] != nil {
			fds[i].Start()
		}
	}
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = nodes[i].Run()
		}(i)
	}
	wg.Wait()
	cr := &ClusterResult{Results: results, Elapsed: time.Since(start)}
	if inj != nil {
		_ = inj.Close() // idempotent; harvest the complete logs
		cr.PartitionLog = inj.PartitionLog()
		cr.FaultDecisions = inj.Decisions()
	}
	for i := 1; i <= n; i++ {
		if fds[i] != nil {
			fds[i].Stop()
			cr.FalseSuspicions += fds[i].FalseSuspicions()
			cr.Retractions += fds[i].Retractions()
			cr.EncodeErrors += fds[i].EncodeErrors()
			// Strong-accuracy audit: a sticky suspicion of a process that
			// never crash-stopped is a perfection violation even when the run
			// ended before the retraction was polled. Injector-crashed nodes
			// count too — crash/recovery is outside the crash-stop model.
			for _, j := range fds[i].EverSuspected().Members() {
				if !results[j].Crashed {
					cr.FalselySuspected++
				}
			}
		}
	}
	cr.DetectorWasPerfect = cr.FalseSuspicions == 0 && cr.FalselySuspected == 0

	// Cost accounting: transport totals (when the network exposes its
	// telemetry) over codec totals, per decision. Computed before the
	// error returns below so even a failed run reports what it spent.
	decisions := 0
	for i := 1; i <= n; i++ {
		if results[i].Decided {
			decisions++
		}
	}
	if ts, ok := network.(TelemetrySource); ok {
		cr.Links = ts.Telemetry()
	}
	cr.Cost = netobs.ComputeCost(decisions, ws, cr.Links)
	cr.WireKinds = ws.PerKind()
	netobs.PublishCost(reg, cr.Cost)
	if cfg.Events != nil {
		cfg.Events.Emit(obs.Event{Type: obs.EventCost, Cost: cr.Cost})
	}

	for i := 1; i <= n; i++ {
		if results[i].Err != nil {
			return cr, fmt.Errorf("runtime: node %d: %w", i, results[i].Err)
		}
	}
	cr.MetricsServer = server
	serverToCaller = true
	return cr, nil
}
