package runtime

import (
	"errors"
	"io"
	"net/http"
	goruntime "runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/netobs"
	"repro/internal/obs"
	"repro/internal/rounds"
)

// TestClusterMetricsEndpoint is the live-exposition acceptance check: an
// RWS cluster run with a crash serves non-empty Prometheus output on its
// configured endpoint, including suspicion and round-duration metrics.
func TestClusterMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	var events obs.Collector
	cr, err := RunCluster(consensus.FloodSetWS{}, ClusterConfig{
		Kind: rounds.RWS, Initial: vals(0, 5, 9), T: 1,
		Crashes:     map[model.ProcessID]CrashPlan{1: {Round: 1, Reach: 0}},
		Metrics:     reg,
		Events:      &events,
		MetricsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cr.MetricsServer == nil {
		t.Fatal("no metrics server in the result")
	}
	defer func() { _ = cr.MetricsServer.Close() }()

	resp, err := http.Get(cr.MetricsServer.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	out := string(body)
	if len(strings.TrimSpace(out)) == 0 {
		t.Fatal("empty /metrics body")
	}
	for _, want := range []string{
		MetricSuspicionsRaised,
		MetricRoundDuration + "_count",
		MetricNodeRounds,
		MetricHeartbeatsSent,
		obs.Label(MetricTransportMessagesSent, "transport", "chan"),
		// Counters a scrape must see even at zero, so dashboards and alert
		// rules never face a missing series: the FD's encode-error count
		// and the injector's fault counters (pre-registered by RunCluster
		// whether or not faults are configured).
		MetricFDEncodeErrors,
		obs.Label(faults.MetricDropped, "reason", "loss"),
		obs.Label(faults.MetricDropped, "reason", "partition"),
		obs.Label(faults.MetricDropped, "reason", "crash"),
		faults.MetricDuplicated,
		faults.MetricReordered,
		faults.MetricDelayed,
		// The telemetry layer's wire, per-link and cost series.
		obs.Label(netobs.MetricWireEncoded, "kind", "heartbeat"),
		obs.Label(netobs.MetricWireEncodedBytes, "kind", "W"),
		netobs.MetricLinkBytesSent,
		netobs.MetricCostMessagesPerDecisionMilli,
		netobs.MetricCostBytesPerDecisionMilli,
		netobs.MetricCostDecisions,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %s in:\n%s", want, out)
		}
	}

	snap := reg.Snapshot()
	// p1 crashed, so both survivors must have suspected it: the raised
	// counter counts suspicion edges, one per (observer, suspect) pair.
	if got := snap.Counter(obs.Label(MetricSuspicionsRaised, "detector", "heartbeat")); got < 2 {
		t.Errorf("suspicions raised = %d, want ≥ 2", got)
	}
	labeled := obs.Label(obs.Label(MetricRoundDuration, "algorithm", "FloodSetWS"), "model", "RWS")
	if got := snap.Histograms[labeled].Count; got == 0 {
		t.Error("no round durations observed under the algorithm/model label")
	}
	// Perfect detection over the synchronous default network: the retracted
	// counter must agree with the result's false-suspicion tally (both 0).
	if got := snap.Counter(obs.Label(MetricSuspicionsRetracted, "detector", "heartbeat")); got != cr.FalseSuspicions {
		t.Errorf("retracted counter = %d, FalseSuspicions = %d", got, cr.FalseSuspicions)
	}

	resp, err = http.Get(cr.MetricsServer.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}

	// The live event stream saw p1's crash, both survivors' suspicions of
	// it, and two decisions.
	var crashes, suspects, decides int
	for _, ev := range events.Events() {
		switch ev.Type {
		case obs.EventCrash:
			crashes++
		case obs.EventSuspect:
			if ev.Proc == 1 {
				suspects++
			}
		case obs.EventDecide:
			decides++
		}
	}
	if crashes != 1 || suspects != 2 || decides != 2 {
		t.Errorf("event stream: %d crashes, %d suspicions of p1, %d decisions (want 1, 2, 2)",
			crashes, suspects, decides)
	}
}

// failingNetwork wraps a network so every data send errors out, forcing the
// node error path through RunCluster.
type failingNetwork struct {
	inner *ChanNetwork
}

func (f *failingNetwork) Endpoint(id model.ProcessID) Transport {
	return &failingEndpoint{inner: f.inner.Endpoint(id)}
}

func (f *failingNetwork) Close() error { return f.inner.Close() }

type failingEndpoint struct {
	inner Transport
}

var errInjected = errors.New("injected send failure")

func (f *failingEndpoint) LocalID() model.ProcessID { return f.inner.LocalID() }
func (f *failingEndpoint) Send(model.ProcessID, []byte) error {
	return errInjected
}
func (f *failingEndpoint) Recv() <-chan Packet { return f.inner.Recv() }
func (f *failingEndpoint) Close() error        { return f.inner.Close() }

// TestRunClusterErrorPathLeaksNothing is the regression test for the early
// return: a cluster whose sends all fail must report the node error, close
// its metrics endpoint, and join every goroutine it started.
func TestRunClusterErrorPathLeaksNothing(t *testing.T) {
	goruntime.GC()
	before := goruntime.NumGoroutine()

	inner := NewChanNetwork(3, ChanConfig{MaxDelay: time.Millisecond, Metrics: obs.NewRegistry()})
	cr, err := RunCluster(consensus.FloodSetWS{}, ClusterConfig{
		Kind: rounds.RWS, Initial: vals(1, 2, 3), T: 1,
		Network:     &failingNetwork{inner: inner},
		Metrics:     obs.NewRegistry(),
		MetricsAddr: "127.0.0.1:0",
	})
	if err == nil {
		t.Fatal("expected a node error from the failing network")
	}
	if !errors.Is(err, errInjected) {
		t.Errorf("error = %v, want wrapped injected failure", err)
	}
	if cr != nil && cr.MetricsServer != nil {
		t.Error("metrics server leaked through the error path")
	}

	// Every goroutine RunCluster started (nodes, demuxers, detectors, the
	// metrics server, in-flight deliveries) must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for {
		goruntime.GC()
		if n := goruntime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, goruntime.NumGoroutine(), buf[:goruntime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNewNodeErrorPath covers the construction-time early return (nil
// transport): no goroutines have started yet, and the config error
// propagates.
func TestNewNodeErrorPath(t *testing.T) {
	if _, err := NewNode(consensus.FloodSet{}, NodeConfig{ID: 1, N: 1, T: 0}); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := NewNode(consensus.FloodSetWS{}, NodeConfig{
		ID: 1, N: 2, T: 1, Kind: rounds.RWS,
		Transport: NewChanNetwork(2, ChanConfig{Metrics: obs.NewRegistry()}).Endpoint(1),
	}); err == nil {
		t.Error("RWS node without failure detector accepted")
	}
}
