package runtime

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Detector is the failure-detector contract the RWS runtime programs
// against. The paper treats the detector as an oracle with axioms
// (completeness, accuracy); this interface is the oracle's operational
// surface, extracted from HeartbeatFD so the detector *construction* —
// all-to-all heartbeats, bounded-message ◇P, ring forwarding, ... — is a
// pluggable choice raced by experiment E15.
//
// Lifecycle: construct → Instrument/UseCodec → Start → (Observe/Suspects/
// NoteRound from the node, concurrently) → Stop. Stop is idempotent and
// safe before Start; Start and Stop must not be called concurrently with
// each other. All other methods are safe for concurrent use after Start.
type Detector interface {
	// Start launches the detector's background senders.
	Start()
	// Stop halts them and joins their goroutines. From the peers'
	// viewpoint the process crash-stops once its last message ages out.
	Stop()
	// Observe feeds the detector one decoded inbound envelope. The node's
	// demultiplexer calls it for every packet — control or data — since
	// any traffic proves the sender was recently alive; reactive
	// constructions (ping/ack, ring forwarding) also answer from here.
	Observe(env wire.Envelope)
	// Suspects returns the current suspicion set. Polling it is what
	// advances suspicion/retraction edge accounting.
	Suspects() model.ProcSet
	// NoteRound tags subsequent suspect/retract events with the protocol
	// round the owning node is executing (attribution only).
	NoteRound(r int)
	// Instrument redirects counters to reg (nil disables) and streams
	// suspect/retract events to sink (nil disables). Call before Start.
	Instrument(reg *obs.Registry, sink obs.Sink)
	// UseCodec routes control-message encodes through c so a wire tap
	// sees detector traffic alongside round messages. Call before Start.
	UseCodec(c wire.Codec)
	// Name reports the implementation's registered name (metric label).
	Name() string

	// Audit hooks, read after the run.
	EverSuspected() model.ProcSet
	FalseSuspicions() int64
	Retractions() int64
	EncodeErrors() int64
}

// DetectorConfig is what a cluster hands a detector factory: the node's
// wrapped transport (fault injection included) and the cluster's timing
// knobs. Implementations are free to reinterpret Period/Timeout for their
// own message discipline but must honor the intent: Period paces proactive
// traffic, Timeout is the initial suspicion window.
type DetectorConfig struct {
	Transport Transport
	N         int
	Period    time.Duration
	Timeout   time.Duration
	// Adaptive selects the ◇P variant where retractions grow the window
	// (up to AdaptiveMax; 0 means 64× Timeout) for constructions that
	// support it.
	Adaptive    bool
	AdaptiveMax time.Duration
}

// DetectorSpec names a detector construction and knows how to build one
// endpoint's instance. The name labels the implementation's metric
// families ({detector="..."}) and is what CLI -detector flags resolve; the
// registry of specs lives in internal/fdimpl so this package stays free of
// implementation imports.
type DetectorSpec struct {
	Name string
	New  func(DetectorConfig) (Detector, error)
}

// HeartbeatDetector is the default construction: the all-to-all heartbeat
// broadcaster HeartbeatFD.
func HeartbeatDetector() *DetectorSpec {
	return &DetectorSpec{
		Name: "heartbeat",
		New: func(cfg DetectorConfig) (Detector, error) {
			fd := NewHeartbeatFD(cfg.Transport, cfg.N, cfg.Period, cfg.Timeout)
			if cfg.Adaptive {
				fd.EnableAdaptiveTimeout(cfg.AdaptiveMax)
			}
			return fd, nil
		},
	}
}

// Lifecycle owns a detector's background goroutines and gives every
// implementation the same Stop discipline: idempotent, safe before the
// first Go, and joining all spawned goroutines before returning. The zero
// value is ready to use. Go/Stop must not race each other (the node calls
// them sequentially); everything else is safe concurrently.
type Lifecycle struct {
	initOnce sync.Once
	stopOnce sync.Once
	stopped  atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup
}

func (l *Lifecycle) init() {
	l.initOnce.Do(func() { l.stop = make(chan struct{}) })
}

// Go spawns fn as an owned goroutine; fn must return when stop closes.
// After Stop it is a no-op returning false, so a crashed node's detector
// cannot be resurrected.
func (l *Lifecycle) Go(fn func(stop <-chan struct{})) bool {
	l.init()
	if l.stopped.Load() {
		return false
	}
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		fn(l.stop)
	}()
	return true
}

// Stopping exposes the stop channel for goroutines with their own selects.
func (l *Lifecycle) Stopping() <-chan struct{} {
	l.init()
	return l.stop
}

// Stopped reports whether Stop has been called. Reactive detectors check
// it before answering probes: a crash-stopped process must not send, even
// though its demultiplexer may still be draining inbound packets.
func (l *Lifecycle) Stopped() bool {
	return l.stopped.Load()
}

// Stop closes the stop channel (once) and joins every spawned goroutine.
// Safe to call repeatedly and before any Go.
func (l *Lifecycle) Stop() {
	l.init()
	l.stopped.Store(true)
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
}

// DetectorCore is the bookkeeping every detector construction shares:
// suspicion-edge accounting with the sticky strong-accuracy audit, the
// retraction/false-suspicion/encode-error counters, per-detector-labelled
// metrics and the suspect/retract event stream. Implementations embed a
// *DetectorCore and call Raise/Retract from their Suspects poll; the
// promoted methods satisfy most of the Detector interface.
type DetectorCore struct {
	name string
	id   model.ProcessID
	n    int

	round   atomic.Int64 // current protocol round, for event attribution
	metrics fdMetrics
	sink    obs.Sink

	falseSuspicions atomic.Int64 // retraction edges (perfection counterexamples)
	retractions     atomic.Int64
	encodeErrors    atomic.Int64
	suspected       []atomic.Bool // current suspicion edge state
	sticky          []atomic.Bool // ever raised, never cleared (accuracy audit)
}

// NewDetectorCore builds the shared bookkeeping for one observer endpoint.
func NewDetectorCore(name string, id model.ProcessID, n int) *DetectorCore {
	return &DetectorCore{
		name:      name,
		id:        id,
		n:         n,
		metrics:   newFDMetrics(obs.Default, name),
		suspected: make([]atomic.Bool, n+1),
		sticky:    make([]atomic.Bool, n+1),
	}
}

// ID is the owning process; N the cluster size.
func (c *DetectorCore) ID() model.ProcessID { return c.id }

// N reports the cluster size the detector observes.
func (c *DetectorCore) N() int { return c.n }

// Name reports the construction's registered name.
func (c *DetectorCore) Name() string { return c.name }

// Instrument redirects the counters to reg (nil disables them) and streams
// suspect/retract events to sink (nil disables the stream). Call before
// Start.
func (c *DetectorCore) Instrument(reg *obs.Registry, sink obs.Sink) {
	c.metrics = newFDMetrics(reg, c.name)
	c.sink = sink
}

// NoteRound tags subsequent suspect/retract events with the protocol round
// the owning node is executing. Detectors are round-free (they time out on
// wall-clock silence); the tag only gives event consumers — the
// conformance projector in particular — the round attribution that a raw
// suspicion edge lacks.
func (c *DetectorCore) NoteRound(r int) { c.round.Store(int64(r)) }

// Round reads the last noted round.
func (c *DetectorCore) Round() int { return int(c.round.Load()) }

// Raise records that peer j is currently suspected. Swap counts each raise
// exactly once per transition, so the raised/retracted counters track
// suspicion *edges*, not polls. Returns true on the raising poll.
func (c *DetectorCore) Raise(j model.ProcessID) bool {
	if c.suspected[j].Swap(true) {
		return false
	}
	c.sticky[j].Store(true)
	c.metrics.raised.Inc()
	if c.sink != nil {
		c.sink.Emit(obs.Event{Type: obs.EventSuspect, Round: c.Round(), Proc: int(j), By: int(c.id)})
	}
	return true
}

// Retract records that peer j is no longer suspected. A retraction is by
// definition a false suspicion under crash-stop (a crashed process never
// shows life again), so both counters advance on the edge. Returns true on
// the retracting poll.
func (c *DetectorCore) Retract(j model.ProcessID) bool {
	if !c.suspected[j].Swap(false) {
		return false
	}
	c.falseSuspicions.Add(1)
	c.retractions.Add(1)
	c.metrics.retracted.Inc()
	if c.sink != nil {
		c.sink.Emit(obs.Event{Type: obs.EventRetract, Round: c.Round(), Proc: int(j), By: int(c.id)})
	}
	return true
}

// NoteSent counts one control message successfully handed to the transport.
func (c *DetectorCore) NoteSent() { c.metrics.heartbeatsSent.Inc() }

// NoteEncodeError counts a control message lost to envelope encoding — a
// silent partial crash the run verdict should see.
func (c *DetectorCore) NoteEncodeError() {
	c.encodeErrors.Add(1)
	c.metrics.encodeErrors.Inc()
}

// FalseSuspicions reports how many suspicion retractions this observer went
// through — zero in a run where the detector behaved perfectly.
func (c *DetectorCore) FalseSuspicions() int64 { return c.falseSuspicions.Load() }

// Retractions reports the retraction edges this observer polled through.
// Under the crash-stop model it equals FalseSuspicions; it is kept as its
// own counter because the adaptive constructions treat it as their control
// signal (every retraction grows a timeout) rather than as a verdict.
func (c *DetectorCore) Retractions() int64 { return c.retractions.Load() }

// EncodeErrors reports control messages lost to envelope encoding failures.
func (c *DetectorCore) EncodeErrors() int64 { return c.encodeErrors.Load() }

// EverSuspected returns every peer this observer suspected at any point,
// retracted or not. Compared against which processes actually crashed it
// yields the run's strong-accuracy audit: a member that never crashed is a
// false suspicion even if the run ended before the retraction was polled.
func (c *DetectorCore) EverSuspected() model.ProcSet {
	var s model.ProcSet
	for j := 1; j <= c.n; j++ {
		if c.sticky[j].Load() {
			s = s.Add(model.ProcessID(j))
		}
	}
	return s
}
