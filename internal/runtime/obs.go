package runtime

import (
	"repro/internal/obs"
	"repro/internal/rounds"
)

// Metric names exported by the live runtime. Transport metrics carry a
// {transport="chan"} or {transport="tcp"} label; the round-duration
// histogram carries {algorithm="...",model="..."}.
const (
	MetricRoundDuration       = "ssfd_node_round_duration_ns" // histogram, nanoseconds
	MetricNodeRounds          = "ssfd_node_rounds_total"
	MetricHeartbeatsSent      = "ssfd_fd_heartbeats_sent_total"
	MetricHeartbeatsReceived  = "ssfd_fd_heartbeats_received_total"
	MetricSuspicionsRaised    = "ssfd_fd_suspicions_raised_total"
	MetricSuspicionsRetracted = "ssfd_fd_suspicions_retracted_total"

	MetricTransportMessagesSent     = "ssfd_transport_messages_sent_total"
	MetricTransportMessagesReceived = "ssfd_transport_messages_received_total"
	MetricTransportMessagesDropped  = "ssfd_transport_messages_dropped_total"
	MetricTransportBytesSent        = "ssfd_transport_bytes_sent_total"
	MetricTransportBytesReceived    = "ssfd_transport_bytes_received_total"

	MetricFDEncodeErrors = "ssfd_fd_encode_errors_total"
	// TCP-only resilience counters, labelled {transport="tcp"}.
	MetricTransportReconnects = "ssfd_transport_reconnects_total"
	MetricTransportRetries    = "ssfd_transport_retries_total"
	MetricNodeWaitTimeouts    = "ssfd_node_wait_timeouts_total"
)

// nodeMetrics caches the per-node instruments (shared across the cluster's
// nodes: counters are atomic and the histogram is concurrency-safe).
type nodeMetrics struct {
	roundDuration *obs.Histogram
	rounds        *obs.Counter
	heartbeats    *obs.Counter // heartbeats observed by the demultiplexer
	waitTimeouts  *obs.Counter // RWS wait-bound expiries (liveness guard)
}

func newNodeMetrics(reg *obs.Registry, algorithm string, kind rounds.ModelKind) nodeMetrics {
	// Per-round wall-clock is the trace-level quantity the paper's §5
	// efficiency claim is about; labelling it by algorithm and model lets
	// one exposition endpoint show the RS-vs-RWS latency split directly.
	name := obs.Label(obs.Label(MetricRoundDuration, "algorithm", algorithm), "model", kind.String())
	return nodeMetrics{
		roundDuration: reg.Histogram(name, obs.DefaultDurationBuckets),
		rounds:        reg.Counter(MetricNodeRounds),
		heartbeats:    reg.Counter(MetricHeartbeatsReceived),
		waitTimeouts:  reg.Counter(MetricNodeWaitTimeouts),
	}
}

// fdMetrics caches the failure detector's instruments.
type fdMetrics struct {
	heartbeatsSent *obs.Counter
	raised         *obs.Counter
	retracted      *obs.Counter
	encodeErrors   *obs.Counter
}

func newFDMetrics(reg *obs.Registry) fdMetrics {
	return fdMetrics{
		heartbeatsSent: reg.Counter(MetricHeartbeatsSent),
		raised:         reg.Counter(MetricSuspicionsRaised),
		retracted:      reg.Counter(MetricSuspicionsRetracted),
		encodeErrors:   reg.Counter(MetricFDEncodeErrors),
	}
}

// transportMetrics caches one transport flavour's instruments.
type transportMetrics struct {
	msgsSent, msgsReceived   *obs.Counter
	msgsDropped              *obs.Counter
	bytesSent, bytesReceived *obs.Counter
	reconnects, retries      *obs.Counter
}

func newTransportMetrics(reg *obs.Registry, flavour string) transportMetrics {
	label := func(name string) *obs.Counter {
		return reg.Counter(obs.Label(name, "transport", flavour))
	}
	return transportMetrics{
		msgsSent:      label(MetricTransportMessagesSent),
		msgsReceived:  label(MetricTransportMessagesReceived),
		msgsDropped:   label(MetricTransportMessagesDropped),
		bytesSent:     label(MetricTransportBytesSent),
		bytesReceived: label(MetricTransportBytesReceived),
		reconnects:    label(MetricTransportReconnects),
		retries:       label(MetricTransportRetries),
	}
}

func (tm *transportMetrics) sent(bytes int) {
	tm.msgsSent.Inc()
	tm.bytesSent.Add(int64(bytes))
}

func (tm *transportMetrics) received(bytes int) {
	tm.msgsReceived.Inc()
	tm.bytesReceived.Add(int64(bytes))
}

// dropped counts a message the transport itself lost: an injected drop (a
// Delay hook returning a negative duration), an inbox overflow, or a TCP
// frame abandoned after its retry budget.
func (tm *transportMetrics) dropped() {
	tm.msgsDropped.Inc()
}
