package runtime

import (
	"repro/internal/netobs"
	"repro/internal/obs"
	"repro/internal/rounds"
)

// Metric names exported by the live runtime. Transport metrics carry a
// {transport="chan"} or {transport="tcp"} label; the round-duration
// histogram carries {algorithm="...",model="..."}; the detector-owned
// ssfd_fd_* families carry {detector="heartbeat"|"bounded"|...} (the
// node-side ssfd_fd_heartbeats_received_total stays unlabelled — the
// demultiplexer counts control traffic without knowing who sent it).
const (
	MetricRoundDuration       = "ssfd_node_round_duration_ns" // histogram, nanoseconds
	MetricNodeRounds          = "ssfd_node_rounds_total"
	MetricHeartbeatsSent      = "ssfd_fd_heartbeats_sent_total"
	MetricHeartbeatsReceived  = "ssfd_fd_heartbeats_received_total"
	MetricSuspicionsRaised    = "ssfd_fd_suspicions_raised_total"
	MetricSuspicionsRetracted = "ssfd_fd_suspicions_retracted_total"

	// The transport families are owned by package netobs since the per-link
	// telemetry layer took over transport accounting; the aliases keep the
	// runtime's historical exports stable.
	MetricTransportMessagesSent     = netobs.MetricTransportMessagesSent
	MetricTransportMessagesReceived = netobs.MetricTransportMessagesReceived
	MetricTransportMessagesDropped  = netobs.MetricTransportMessagesDropped
	MetricTransportBytesSent        = netobs.MetricTransportBytesSent
	MetricTransportBytesReceived    = netobs.MetricTransportBytesReceived

	MetricFDEncodeErrors = "ssfd_fd_encode_errors_total"
	// TCP-only resilience counters, labelled {transport="tcp"}.
	MetricTransportReconnects = netobs.MetricTransportReconnects
	MetricTransportRetries    = netobs.MetricTransportRetries
	MetricNodeWaitTimeouts    = "ssfd_node_wait_timeouts_total"
	// MetricNodeUnknownInstance counts round messages a single-instance node
	// dropped for carrying a nonzero instance id — traffic from a
	// multi-instance engine (or a misconfigured peer) that this node is not
	// serving.
	MetricNodeUnknownInstance = "ssfd_node_unknown_instance_total"
)

// nodeMetrics caches the per-node instruments (shared across the cluster's
// nodes: counters are atomic and the histogram is concurrency-safe).
type nodeMetrics struct {
	roundDuration   *obs.Histogram
	rounds          *obs.Counter
	heartbeats      *obs.Counter // heartbeats observed by the demultiplexer
	waitTimeouts    *obs.Counter // RWS wait-bound expiries (liveness guard)
	unknownInstance *obs.Counter // foreign-instance round messages dropped
}

func newNodeMetrics(reg *obs.Registry, algorithm string, kind rounds.ModelKind) nodeMetrics {
	// Per-round wall-clock is the trace-level quantity the paper's §5
	// efficiency claim is about; labelling it by algorithm and model lets
	// one exposition endpoint show the RS-vs-RWS latency split directly.
	name := obs.Label(obs.Label(MetricRoundDuration, "algorithm", algorithm), "model", kind.String())
	return nodeMetrics{
		roundDuration:   reg.Histogram(name, obs.DefaultDurationBuckets),
		rounds:          reg.Counter(MetricNodeRounds),
		heartbeats:      reg.Counter(MetricHeartbeatsReceived),
		waitTimeouts:    reg.Counter(MetricNodeWaitTimeouts),
		unknownInstance: reg.Counter(MetricNodeUnknownInstance),
	}
}

// fdMetrics caches the failure detector's instruments. Every family
// carries a {detector="..."} label so the zoo's implementations stay
// distinguishable on one exposition endpoint.
type fdMetrics struct {
	heartbeatsSent *obs.Counter
	raised         *obs.Counter
	retracted      *obs.Counter
	encodeErrors   *obs.Counter
}

func newFDMetrics(reg *obs.Registry, detector string) fdMetrics {
	l := func(name string) string { return obs.Label(name, "detector", detector) }
	return fdMetrics{
		heartbeatsSent: reg.Counter(l(MetricHeartbeatsSent)),
		raised:         reg.Counter(l(MetricSuspicionsRaised)),
		retracted:      reg.Counter(l(MetricSuspicionsRetracted)),
		encodeErrors:   reg.Counter(l(MetricFDEncodeErrors)),
	}
}

// TelemetrySource is implemented by networks that expose their per-link
// telemetry. Both ChanNetwork and TCPNetwork satisfy it; RunCluster probes
// for it to fold transport totals into the run's cost summary.
type TelemetrySource interface {
	Telemetry() *netobs.LinkTap
}
