package runtime

import (
	"sync"
	"time"

	"repro/internal/model"
)

// InstanceProbe observes one engine instance's execution at per-round
// resolution: when each automaton's broadcast started and finished, when the
// round closed (and with which peers delivered), when the transition ran,
// every message arrival and every decision — the wall-clock record a serving
// layer needs to rebuild the PR 5 send/wait/compute span tiling for a single
// request's consensus instance.
//
// A probe is attached at OpenObserved and written exclusively by the
// instance's owning shard worker, so the stamps are totally ordered per node
// without ambiguity; the mutex exists only so Snapshot can read a probe
// whose instance is still in flight. Unprobed instances pay one nil check
// per hook — the tracing-off fast path stays unmeasurably close to free
// (the bench-compare overhead gate in CI holds it there).
//
// Adjacent stamps are shared, not re-read: round r's transition stamp IS
// round r+1's start stamp, and a decision reuses the transition stamp of
// its round. That makes the derived span tiling exact by construction —
// the same CheckSums discipline the live Tracer guarantees.
type InstanceProbe struct {
	mu        sync.Mutex
	n         int
	openedAt  time.Time
	doneAt    time.Time
	nodes     []probeNodeState
	maxRounds int
}

type probeNodeState struct {
	rounds      []probeRoundState
	arrivals    []ProbeArrival
	decided     bool
	decideRound int
	decidedAt   time.Time
	decision    model.Value
}

type probeRoundState struct {
	startAt  time.Time
	sentAt   time.Time
	closedAt time.Time
	transAt  time.Time
	gotMask  uint64
	timedOut bool
}

// NewInstanceProbe builds an empty probe ready to hand to OpenObserved.
func NewInstanceProbe() *InstanceProbe { return &InstanceProbe{} }

// attach sizes the probe for the instance (called under Open).
func (p *InstanceProbe) attach(n, maxRounds int, now time.Time) {
	p.mu.Lock()
	p.n = n
	p.maxRounds = maxRounds
	p.openedAt = now
	p.nodes = make([]probeNodeState, n)
	for i := range p.nodes {
		p.nodes[i].rounds = make([]probeRoundState, maxRounds)
	}
	p.mu.Unlock()
}

// roundSent records node id's round-r broadcast window. The round's start
// stamp is the previous round's transition stamp when one exists (contiguous
// rounds), else the broadcast begin.
func (p *InstanceProbe) roundSent(id model.ProcessID, r int, begin, end time.Time) {
	p.mu.Lock()
	nd := &p.nodes[id-1]
	rs := &nd.rounds[r-1]
	rs.startAt = begin
	if r > 1 && !nd.rounds[r-2].transAt.IsZero() {
		rs.startAt = nd.rounds[r-2].transAt
	}
	rs.sentAt = end
	p.mu.Unlock()
}

// arrive records a data-message arrival filed into node id's round-r row.
func (p *InstanceProbe) arrive(id model.ProcessID, from, r int, at time.Time) {
	p.mu.Lock()
	nd := &p.nodes[id-1]
	nd.arrivals = append(nd.arrivals, ProbeArrival{From: from, Round: r, At: at})
	p.mu.Unlock()
}

// roundClosed records that node id's round r stopped waiting: got is the
// delivered-sender bitmask at that instant, timedOut whether the WaitBound
// (not completeness) released it.
func (p *InstanceProbe) roundClosed(id model.ProcessID, r int, got uint64, timedOut bool, at time.Time) {
	p.mu.Lock()
	rs := &p.nodes[id-1].rounds[r-1]
	rs.closedAt = at
	rs.gotMask = got
	rs.timedOut = timedOut
	p.mu.Unlock()
}

// roundDone records the transition's completion stamp.
func (p *InstanceProbe) roundDone(id model.ProcessID, r int, at time.Time) {
	p.mu.Lock()
	p.nodes[id-1].rounds[r-1].transAt = at
	p.mu.Unlock()
}

// noteDecide records node id's decision, stamped with the deciding round's
// transition stamp (the decision test runs inside that instant).
func (p *InstanceProbe) noteDecide(id model.ProcessID, r int, v model.Value, at time.Time) {
	p.mu.Lock()
	nd := &p.nodes[id-1]
	nd.decided = true
	nd.decideRound = r
	nd.decidedAt = at
	nd.decision = v
	p.mu.Unlock()
}

// noteDone stamps the instance's completion (last automaton halted).
func (p *InstanceProbe) noteDone(at time.Time) {
	p.mu.Lock()
	p.doneAt = at
	p.mu.Unlock()
}

// ProbeArrival is one data-message arrival observed by a probe.
type ProbeArrival struct {
	From  int       `json:"from"`
	Round int       `json:"round"`
	At    time.Time `json:"at"`
}

// ProbeRound is one (node, round) record: the send window, the wait close
// (with the delivered peers) and the transition stamp. Zero times mean the
// phase had not happened when the snapshot was taken.
type ProbeRound struct {
	Round    int       `json:"round"`
	StartAt  time.Time `json:"start_at"`
	SentAt   time.Time `json:"sent_at"`
	ClosedAt time.Time `json:"closed_at"`
	TransAt  time.Time `json:"trans_at"`
	Peers    []int     `json:"peers,omitempty"`
	TimedOut bool      `json:"timed_out,omitempty"`
}

// ProbeNode is one node's view of a probed instance.
type ProbeNode struct {
	Rounds      []ProbeRound   `json:"rounds"`
	Arrivals    []ProbeArrival `json:"arrivals,omitempty"`
	Decided     bool           `json:"decided"`
	DecideRound int            `json:"decide_round,omitempty"`
	DecidedAt   time.Time      `json:"decided_at,omitempty"`
	Decision    int64          `json:"decision,omitempty"`
}

// ProbeSnapshot is a point-in-time copy of a probe, safe to read while the
// instance is still advancing. Rounds that never sent are omitted.
type ProbeSnapshot struct {
	N        int        `json:"n"`
	OpenedAt time.Time  `json:"opened_at"`
	DoneAt   time.Time  `json:"done_at,omitempty"`
	Nodes    []ProbeNode `json:"nodes"`
}

// Snapshot copies the probe's current state.
func (p *InstanceProbe) Snapshot() *ProbeSnapshot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	snap := &ProbeSnapshot{N: p.n, OpenedAt: p.openedAt, DoneAt: p.doneAt}
	for i := range p.nodes {
		nd := &p.nodes[i]
		pn := ProbeNode{
			Decided:     nd.decided,
			DecideRound: nd.decideRound,
			DecidedAt:   nd.decidedAt,
			Decision:    int64(nd.decision),
		}
		for r := range nd.rounds {
			rs := &nd.rounds[r]
			if rs.sentAt.IsZero() {
				continue
			}
			pr := ProbeRound{
				Round: r + 1, StartAt: rs.startAt, SentAt: rs.sentAt,
				ClosedAt: rs.closedAt, TransAt: rs.transAt, TimedOut: rs.timedOut,
			}
			for j := 1; j <= p.n; j++ {
				if rs.gotMask&(1<<uint(j)) != 0 {
					pr.Peers = append(pr.Peers, j)
				}
			}
			pn.Rounds = append(pn.Rounds, pr)
		}
		if len(nd.arrivals) > 0 {
			pn.Arrivals = append([]ProbeArrival(nil), nd.arrivals...)
		}
		snap.Nodes = append(snap.Nodes, pn)
	}
	return snap
}
