package runtime

import (
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/wire"
)

func vals(vs ...int64) []model.Value {
	out := make([]model.Value, len(vs))
	for i, v := range vs {
		out[i] = model.Value(v)
	}
	return out
}

func TestChanNetworkDelivers(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{MaxDelay: time.Millisecond})
	defer func() { _ = nw.Close() }()
	a, b := nw.Endpoint(1), nw.Endpoint(2)
	if err := a.Send(2, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-b.Recv():
		if pkt.From != 1 || string(pkt.Data) != "hi" {
			t.Errorf("got %+v", pkt)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

func TestChanNetworkDelayHookDrops(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{
		Delay: func(from, to model.ProcessID, data []byte) time.Duration { return -1 },
	})
	defer func() { _ = nw.Close() }()
	if err := nw.Endpoint(1).Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-nw.Endpoint(2).Recv():
		t.Fatalf("dropped message delivered: %+v", pkt)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestChanNetworkClosedSend(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{})
	_ = nw.Close()
	if err := nw.Endpoint(1).Send(2, []byte("x")); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestTCPNetworkDelivers(t *testing.T) {
	nw, err := NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nw.Close() }()
	if err := nw.Endpoint(1).Send(3, []byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	if err := nw.Endpoint(2).Send(3, []byte("too")); err != nil {
		t.Fatal(err)
	}
	got := map[string]model.ProcessID{}
	for i := 0; i < 2; i++ {
		select {
		case pkt := <-nw.Endpoint(3).Recv():
			got[string(pkt.Data)] = pkt.From
		case <-time.After(2 * time.Second):
			t.Fatal("timeout")
		}
	}
	if got["over tcp"] != 1 || got["too"] != 2 {
		t.Errorf("got %+v", got)
	}
}

func TestHeartbeatFDPerfectOverSynchronousNetwork(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{MaxDelay: time.Millisecond})
	defer func() { _ = nw.Close() }()
	fd1 := NewHeartbeatFD(nw.Endpoint(1), 2, 2*time.Millisecond, 40*time.Millisecond)
	fd2 := NewHeartbeatFD(nw.Endpoint(2), 2, 2*time.Millisecond, 40*time.Millisecond)
	fd1.Start()
	fd2.Start()

	// Pump p1's inbox into its detector, as a node's demux would.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case pkt := <-nw.Endpoint(1).Recv():
				env, err := wire.Decode(pkt.Data)
				if err == nil {
					fd1.Observe(env)
				}
			}
		}
	}()

	deadline := time.Now().Add(150 * time.Millisecond)
	for time.Now().Before(deadline) {
		if s := fd1.Suspects(); !s.Empty() {
			t.Fatalf("false suspicion of a live peer: %v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// p2 "crashes": its heartbeats stop; p1 must suspect within the timeout.
	fd2.Stop()
	detected := false
	deadline = time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		if fd1.Suspects().Has(2) {
			detected = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !detected {
		t.Error("crash never detected")
	}
	if fd1.FalseSuspicions() != 0 {
		t.Errorf("%d false suspicions over a synchronous network", fd1.FalseSuspicions())
	}
	close(stop)
	<-done
	fd1.Stop()
}

func requireAgreementValidity(t *testing.T, cr *ClusterResult, initial []model.Value, wantDecided int) {
	t.Helper()
	if _, st := cr.Agreement(); st != AgreementReached {
		vals, _ := cr.Decisions()
		t.Fatalf("agreement verdict %v: decisions %v", st, vals[1:])
	}
	decided := 0
	for i := 1; i < len(cr.Results); i++ {
		if cr.Results[i].Decided {
			decided++
		}
	}
	if decided < wantDecided {
		t.Fatalf("only %d nodes decided, want ≥ %d", decided, wantDecided)
	}
}

func TestLiveRSFloodSet(t *testing.T) {
	initial := vals(4, 2, 7, 5)
	cr, err := RunCluster(consensus.FloodSet{}, ClusterConfig{
		Kind: rounds.RS, Initial: initial, T: 1,
		RoundDuration: 15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireAgreementValidity(t, cr, initial, 4)
	v, _ := cr.Agreement()
	if v != 2 {
		t.Errorf("decided %d, want 2", v)
	}
}

func TestLiveRSA1DecidesRoundOne(t *testing.T) {
	initial := vals(9, 1, 5)
	cr, err := RunCluster(consensus.A1{}, ClusterConfig{
		Kind: rounds.RS, Initial: initial, T: 1,
		RoundDuration: 15 * time.Millisecond, MaxRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireAgreementValidity(t, cr, initial, 3)
	for i := 1; i <= 3; i++ {
		if cr.Results[i].DecidedAt != 1 {
			t.Errorf("node %d decided at round %d, want 1 (Λ(A1)=1 live)", i, cr.Results[i].DecidedAt)
		}
		if cr.Results[i].Decision != 9 {
			t.Errorf("node %d decided %d, want 9", i, cr.Results[i].Decision)
		}
	}
}

func TestLiveRSWithCrash(t *testing.T) {
	initial := vals(0, 5, 9)
	cr, err := RunCluster(consensus.FloodSet{}, ClusterConfig{
		Kind: rounds.RS, Initial: initial, T: 1,
		RoundDuration: 15 * time.Millisecond,
		Crashes:       map[model.ProcessID]CrashPlan{1: {Round: 1, Reach: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireAgreementValidity(t, cr, initial, 2)
	if !cr.Results[1].Crashed {
		t.Error("node 1 did not crash")
	}
	// p1 reached p2 only; 0 floods through p2 to everyone.
	if v, _ := cr.Agreement(); v != 0 {
		t.Errorf("decided %d, want 0", v)
	}
}

func TestLiveRWSFloodSetWS(t *testing.T) {
	initial := vals(4, 2, 7)
	cr, err := RunCluster(consensus.FloodSetWS{}, ClusterConfig{
		Kind: rounds.RWS, Initial: initial, T: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireAgreementValidity(t, cr, initial, 3)
	if cr.FalseSuspicions != 0 {
		t.Errorf("%d false suspicions over a synchronous network", cr.FalseSuspicions)
	}
	if v, _ := cr.Agreement(); v != 2 {
		t.Errorf("decided %d, want 2", v)
	}
}

func TestLiveRWSWithCrash(t *testing.T) {
	initial := vals(0, 5, 9)
	cr, err := RunCluster(consensus.FloodSetWS{}, ClusterConfig{
		Kind: rounds.RWS, Initial: initial, T: 1,
		Crashes: map[model.ProcessID]CrashPlan{1: {Round: 1, Reach: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireAgreementValidity(t, cr, initial, 2)
	// p1's value 0 died with it: survivors decide 5.
	if v, _ := cr.Agreement(); v != 5 {
		t.Errorf("decided %d, want 5", v)
	}
}

// TestLiveA1DisagreesInRWS is the flagship live demonstration: A1 run over
// a real asynchronous network whose data messages from p1 are slow (150ms)
// while failure detection is fast (25ms). p1 broadcasts, decides v1 via
// self-delivery, and crashes; its A1Val messages are still in flight when
// the survivors' detectors fire, so they fall back to p2's value — the
// §5.3 disagreement, live.
func TestLiveA1DisagreesInRWS(t *testing.T) {
	slowP1Data := func(from, to model.ProcessID, data []byte) time.Duration {
		env, err := wire.Decode(data)
		if err == nil && from == 1 && env.Kind == wire.KindA1Val {
			return 300 * time.Millisecond
		}
		return 500 * time.Microsecond
	}
	nw := NewChanNetwork(3, ChanConfig{Delay: slowP1Data})
	cr, err := RunCluster(consensus.A1{}, ClusterConfig{
		Kind: rounds.RWS, Initial: vals(3, 1, 2), T: 1,
		Network: nw,
		Crashes: map[model.ProcessID]CrashPlan{1: {Round: 2, Reach: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cr.Results[1].Decided || cr.Results[1].Decision != 3 || cr.Results[1].DecidedAt != 1 {
		t.Fatalf("p1 result %+v, want decision 3 at round 1", cr.Results[1])
	}
	for i := 2; i <= 3; i++ {
		if !cr.Results[i].Decided || cr.Results[i].Decision != 1 {
			t.Fatalf("p%d result %+v, want decision 1 (p2's value)", i, cr.Results[i])
		}
	}
	if _, st := cr.Agreement(); st != AgreementViolated {
		t.Errorf("agreement verdict %v, want violated (the paper's §5.3 scenario)", st)
	}
}

func TestLiveOverTCP(t *testing.T) {
	nw, err := NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	initial := vals(4, 2, 7)
	cr, err := RunCluster(consensus.FloodSet{}, ClusterConfig{
		Kind: rounds.RS, Initial: initial, T: 1,
		RoundDuration: 30 * time.Millisecond,
		Network:       nw,
	})
	if err != nil {
		t.Fatal(err)
	}
	requireAgreementValidity(t, cr, initial, 3)
	if v, _ := cr.Agreement(); v != 2 {
		t.Errorf("decided %d over TCP, want 2", v)
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(consensus.FloodSet{}, NodeConfig{ID: 1, N: 2, T: 1}); err == nil {
		t.Error("nil transport accepted")
	}
	nw := NewChanNetwork(2, ChanConfig{})
	defer func() { _ = nw.Close() }()
	if _, err := NewNode(consensus.FloodSetWS{}, NodeConfig{
		ID: 1, N: 2, T: 1, Transport: nw.Endpoint(1), Kind: rounds.RWS,
	}); err == nil {
		t.Error("RWS without FD accepted")
	}
	if _, err := NewNode(consensus.FloodSet{}, NodeConfig{
		ID: 1, N: 2, T: 1, Transport: nw.Endpoint(1), Kind: rounds.RS,
	}); err == nil {
		t.Error("RS without RoundDuration accepted")
	}
}

func TestChanNetworkInboxOverflowDropsInsteadOfWedging(t *testing.T) {
	reg := obs.NewRegistry()
	// Buffer 1 and nobody receiving: the excess deliveries must land in the
	// dropped counter, not block the delivery goroutines (which would wedge
	// Close forever — the original bug).
	nw := NewChanNetwork(2, ChanConfig{MaxDelay: time.Millisecond, Buffer: 1, Metrics: reg})
	for i := 0; i < 50; i++ {
		if err := nw.Endpoint(1).Send(2, []byte("burst")); err != nil {
			t.Fatal(err)
		}
	}
	// Let the in-flight deliveries hit the full inbox before teardown
	// (Close aborts deliveries still waiting out their delay).
	droppedCounter := reg.Counter(obs.Label(MetricTransportMessagesDropped, "transport", "chan"))
	for deadline := time.Now().Add(5 * time.Second); droppedCounter.Value() == 0; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan struct{})
	go func() { _ = nw.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged on a full inbox")
	}
	dropped := reg.Counter(obs.Label(MetricTransportMessagesDropped, "transport", "chan")).Value()
	if dropped == 0 {
		t.Error("overflow left no trace in the dropped counter")
	}
}

func TestChanNetworkDelayHookDropCounted(t *testing.T) {
	reg := obs.NewRegistry()
	nw := NewChanNetwork(2, ChanConfig{
		Delay:   func(from, to model.ProcessID, data []byte) time.Duration { return -1 },
		Metrics: reg,
	})
	defer func() { _ = nw.Close() }()
	if err := nw.Endpoint(1).Send(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.Label(MetricTransportMessagesDropped, "transport", "chan")).Value(); got != 1 {
		t.Errorf("dropped counter = %d, want 1", got)
	}
}

func TestTCPReconnectAfterBreak(t *testing.T) {
	reg := obs.NewRegistry()
	nw, err := NewTCPNetwork(2, WithTCPMetrics(reg),
		WithTCPRetry(TCPRetryConfig{BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nw.Close() }()

	recv := func(want string) {
		t.Helper()
		for {
			select {
			case pkt := <-nw.Endpoint(2).Recv():
				if string(pkt.Data) == want {
					return
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("timeout waiting for %q", want)
			}
		}
	}
	if err := nw.Endpoint(1).Send(2, []byte("before")); err != nil {
		t.Fatal(err)
	}
	recv("before")

	// Abruptly sever every established connection mid-conversation; the
	// writer must re-dial with backoff and the next frame must get through.
	nw.BreakConnections()
	if err := nw.Endpoint(1).Send(2, []byte("after")); err != nil {
		t.Fatal(err)
	}
	recv("after")

	if rc := reg.Counter(obs.Label(MetricTransportReconnects, "transport", "tcp")).Value(); rc < 2 {
		t.Errorf("reconnects = %d, want >= 2 (initial dial + re-dial)", rc)
	}
}

func TestTCPPeerCloseMidStream(t *testing.T) {
	// The receiving side dying mid-round must not poison the sender: frames
	// to the dead peer burn their retry budget and drop, and Send keeps
	// returning nil (never blocks, never errors a healthy caller).
	nw, err := NewTCPNetwork(2,
		WithTCPRetry(TCPRetryConfig{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = nw.Close() }()
	if err := nw.Endpoint(1).Send(2, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-nw.Endpoint(2).Recv():
	case <-time.After(5 * time.Second):
		t.Fatal("timeout on warmup frame")
	}
	// Kill p2's listener so re-dials fail outright, then sever the link.
	_ = nw.listeners[2].Close()
	nw.BreakConnections()
	for i := 0; i < 20; i++ {
		if err := nw.Endpoint(1).Send(2, []byte("into the void")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Close must join the retrying writer goroutines promptly.
	done := make(chan struct{})
	go func() { _ = nw.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a retrying link")
	}
}

func TestTCPConcurrentCloseAndSend(t *testing.T) {
	// Race exercise: senders hammering the mesh while Close tears it down.
	// Run with -race; correctness here is "no panic, no deadlock, everything
	// joins".
	nw, err := NewTCPNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 1; s <= 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				to := model.ProcessID(i%3 + 1)
				if to == model.ProcessID(s) {
					continue
				}
				if err := nw.Endpoint(model.ProcessID(s)).Send(to, []byte("spray")); err != nil && err != ErrClosed {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	time.Sleep(2 * time.Millisecond)
	_ = nw.Close()
	wg.Wait()
	_ = nw.Close() // idempotent
}

func TestHeartbeatFDAdaptiveTimeoutGrowsAndCaps(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{})
	defer func() { _ = nw.Close() }()
	fd := NewHeartbeatFD(nw.Endpoint(1), 2, time.Millisecond, 5*time.Millisecond)
	fd.EnableAdaptiveTimeout(8 * time.Millisecond)
	// Never started: we drive liveness evidence by hand.
	fd.Observe(wire.Envelope{From: 2, Kind: wire.KindHeartbeat})
	time.Sleep(10 * time.Millisecond)
	if s := fd.Suspects(); !s.Has(2) {
		t.Fatalf("p2 not suspected after silence: %v", s)
	}
	fd.Observe(wire.Envelope{From: 2, Kind: wire.KindHeartbeat}) // p2 shows life: the suspicion was false
	if s := fd.Suspects(); s.Has(2) {
		t.Fatalf("suspicion not retracted: %v", s)
	}
	if got := fd.FalseSuspicions(); got != 1 {
		t.Errorf("FalseSuspicions = %d, want 1", got)
	}
	if got := fd.Retractions(); got != 1 {
		t.Errorf("Retractions = %d, want 1", got)
	}
	if got := fd.CurrentTimeout(); got != 8*time.Millisecond {
		t.Errorf("timeout after retraction = %v, want the 8ms cap (5ms doubled, capped)", got)
	}
	if ever := fd.EverSuspected(); !ever.Has(2) {
		t.Errorf("sticky audit lost the suspicion: %v", ever)
	}
}

// TestHeartbeatFDStopIdempotent pins the lifecycle contract every zoo
// detector inherits from runtime.Lifecycle: Stop before Start is a no-op,
// repeated Stops don't panic or hang, and a stopped detector cannot be
// restarted (its broadcaster would outlive a "crashed" node otherwise).
func TestHeartbeatFDStopIdempotent(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{})
	defer func() { _ = nw.Close() }()

	// Stop without Start: must return immediately, twice.
	cold := NewHeartbeatFD(nw.Endpoint(1), 2, time.Millisecond, 5*time.Millisecond)
	cold.Stop()
	cold.Stop()
	// Start after Stop must not revive the broadcaster.
	cold.Start()
	cold.Stop() // joins nothing; would hang if a goroutine had leaked past the guard

	// The normal path: Start, then double Stop.
	fd := NewHeartbeatFD(nw.Endpoint(2), 2, time.Millisecond, 5*time.Millisecond)
	fd.Start()
	time.Sleep(3 * time.Millisecond)
	fd.Stop()
	fd.Stop()
}

func TestRunClusterFaultsVerdict(t *testing.T) {
	// A partition longer than the run: the detector falsely suspects p3 (it
	// never crashed), the sticky audit catches it, and the verdict flips —
	// while consensus still terminates on every node.
	cr, err := RunCluster(consensus.FloodSetWS{}, ClusterConfig{
		Kind: rounds.RWS, Initial: vals(4, 2, 7), T: 1,
		Faults: &faults.Config{
			Seed:       3,
			Partitions: []faults.Partition{{Start: 0, End: time.Second, Group: model.Singleton(3)}},
			Metrics:    obs.NewRegistry(),
		},
		RWSWaitBound: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cr.DetectorWasPerfect {
		t.Error("verdict claims perfection across a partition longer than the timeout")
	}
	if cr.FalselySuspected == 0 {
		t.Error("sticky audit counted no false suspicions")
	}
	for i := 1; i < len(cr.Results); i++ {
		if !cr.Results[i].Decided {
			t.Errorf("p%d did not terminate", i)
		}
	}
	if len(cr.PartitionLog) == 0 {
		t.Error("partition log empty")
	}

	// And the control: no faults, the verdict stays perfect.
	cr, err = RunCluster(consensus.FloodSetWS{}, ClusterConfig{
		Kind: rounds.RWS, Initial: vals(4, 2, 7), T: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cr.DetectorWasPerfect || cr.FalseSuspicions != 0 || cr.FalselySuspected != 0 {
		t.Errorf("clean run not perfect: %+v", cr)
	}
}
