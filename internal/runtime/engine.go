package runtime

import (
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/netobs"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// Engine metric names.
const (
	// MetricEngineUnknownInstance counts inbound round messages carrying an
	// instance id outside the engine's opened range — dropped at the
	// demultiplexer (stray traffic from a misconfigured peer, or corruption
	// that survived decoding).
	MetricEngineUnknownInstance = "ssfd_engine_unknown_instance_total"
	// MetricEngineInstancesDecided counts (instance, node) decisions.
	MetricEngineInstancesDecided = "ssfd_engine_decisions_total"
	// MetricEngineInstancesOpened counts instances admitted by Open.
	MetricEngineInstancesOpened = "ssfd_engine_instances_opened_total"
	// MetricEngineInstancesDone counts instances that ran to completion.
	MetricEngineInstancesDone = "ssfd_engine_instances_done_total"
)

// Engine lifecycle errors.
var (
	// ErrEngineDraining is returned by Open once Drain or Close has been
	// called: the engine finishes its in-flight instances but admits no new
	// ones (a serving daemon maps this to HTTP 503).
	ErrEngineDraining = errors.New("runtime: engine draining, not admitting instances")
	// ErrEngineClosed resolves an instance that was still in flight when the
	// engine tore down before it could complete (only possible after an
	// engine abort — a clean Close waits in-flight instances out).
	ErrEngineClosed = errors.New("runtime: engine closed before the instance completed")
)

// EngineConfig assembles a shared-mesh multi-instance execution: N nodes,
// ONE physical mesh, ONE failure detector per node, and any number of
// concurrent consensus instances multiplexed over them.
//
// The engine runs the RWS (receive-or-suspect) discipline only. RS rounds
// are paced by wall-clock deadlines per instance, which neither multiplexes
// (every instance would need its own deadline schedule on a shared clock)
// nor amortizes anything — the paper's efficiency argument for sharing is
// about the detector, an RWS-only device.
type EngineConfig struct {
	// Instances is the number of concurrent consensus instances RunEngine
	// executes (ids 0..Instances-1 on the wire). StartEngine ignores it:
	// a live engine admits instances dynamically through Open.
	Instances int
	// N is the cluster size, T the resilience bound.
	N, T int
	// Initial yields node id's proposal in instance inst (RunEngine only;
	// Open takes the proposal function per instance). Nil proposes 0
	// everywhere.
	Initial func(inst int, id model.ProcessID) model.Value

	// Groups is the number of shard workers instances are distributed
	// across (instance k belongs to worker k mod Groups). Default:
	// min(8, GOMAXPROCS). Sharding is a throughput knob, not a semantic
	// one — results are independent of it (the equivalence tests pin this).
	Groups int

	// Network supplies the shared mesh; nil builds the default in-process
	// synchronous network with Buffer-deep inboxes.
	Network interface {
		Endpoint(model.ProcessID) Transport
		Close() error
	}
	// Buffer sizes the default network's per-endpoint inbox (default 2^15:
	// the multiplexed mesh carries every instance's traffic through n
	// inboxes, so the single-instance default of 1024 would overflow).
	Buffer int

	// HeartbeatPeriod and SuspectTimeout configure the per-node failure
	// detectors (defaults 2ms / 30ms, as in ClusterConfig).
	HeartbeatPeriod time.Duration
	SuspectTimeout  time.Duration
	// Detector selects the construction (nil: all-to-all heartbeat). ONE
	// detector is built per node — not per instance — over the node's raw
	// (fault-wrapped, unbatched) endpoint; its control traffic is what the
	// engine amortizes across instances.
	Detector *DetectorSpec

	// MaxRounds bounds every instance (default T+2).
	MaxRounds int
	// WaitBound bounds each round's receive-or-suspect wait per instance
	// (see NodeConfig.WaitBound). Unlike the single-instance node, the
	// engine defaults a zero value to 30s: with 100k instances in flight a
	// single starved wait (one lost packet on an overflowing inbox) must
	// degrade one instance, not hang the process.
	WaitBound time.Duration

	// Batch tunes the per-link send batching of round traffic. Detector
	// control traffic is never batched — a queued heartbeat is a false
	// suspicion waiting to happen.
	Batch BatcherConfig

	// Faults, when non-nil, interposes the seeded per-link injector between
	// every node and the mesh — beneath the batcher and the detector, so
	// faults stay per-link: a dropped packet takes a whole batch, a delayed
	// packet delays every instance riding in it, exactly like a real link.
	Faults *faults.Config

	// OnInstanceDone, when non-nil, is invoked once per instance when its
	// last automaton halts, from the owning worker goroutine — it must not
	// block (a slow callback stalls every instance sharded to that worker).
	// A serving layer uses it to resolve waiters and feed its conformance
	// monitor without a goroutine per instance.
	OnInstanceDone func(inst uint64, out InstanceOutcome)

	// Metrics receives the engine's instruments; nil uses obs.Default.
	// There is no Events sink: per-event streams at 100k instances would
	// cost more than the run (use the single-instance cluster to trace).
	Metrics *obs.Registry
}

// InstanceOutcome is one completed instance's result across the n nodes.
type InstanceOutcome struct {
	N int
	// Decided and Decisions are indexed id-1.
	Decided   []bool
	Decisions []model.Value
	// WaitTimeouts counts rounds this instance cut short under WaitBound.
	WaitTimeouts int
	// Err is non-nil only when the engine tore down (abort or Close) before
	// the instance completed; the decision slices are then all-undecided.
	Err error
}

// Agreement folds the instance's decisions into the three-way verdict.
func (o InstanceOutcome) Agreement() (model.Value, AgreementStatus) {
	return agreementOf(o.Decisions, o.Decided)
}

// Instance is the handle returned by Engine.Open: a future resolved when
// the instance's last automaton halts.
type Instance struct {
	id   uint64
	done chan struct{}

	mu  sync.Mutex
	out InstanceOutcome
	ok  bool
}

// ID returns the instance's wire id.
func (h *Instance) ID() uint64 { return h.id }

// Done is closed when the outcome is available.
func (h *Instance) Done() <-chan struct{} { return h.done }

// Outcome returns the result; ok is false while the instance is in flight.
func (h *Instance) Outcome() (InstanceOutcome, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.out, h.ok
}

func (h *Instance) resolve(out InstanceOutcome) {
	h.mu.Lock()
	h.out = out
	h.ok = true
	h.mu.Unlock()
	close(h.done)
}

// EngineStats is a point-in-time snapshot of a live engine — the numbers a
// serving daemon's status endpoint reports.
type EngineStats struct {
	N, Groups int
	Algorithm string
	Detector  string

	Opened    int64 // instances admitted
	Completed int64 // instances whose every automaton halted
	InFlight  int64 // Opened - Completed

	DecidedNodes int64 // (instance, node) decisions

	// Agreement verdict tally over completed instances.
	AgreementNone     int64
	AgreementReached  int64
	AgreementViolated int64

	WaitTimeouts         int64
	UnknownInstanceDrops int64

	// Backlog is the number of events (round messages, registrations)
	// queued in the shard workers' mailboxes at snapshot time — the
	// at-a-glance congestion figure a drain decision reads.
	Backlog int64

	// Detector audit, summed over the n shared detectors. Under the engine
	// no node ever crash-stops, so every suspicion ever raised counts
	// against strong accuracy.
	FalseSuspicions    int64
	Retractions        int64
	FalselySuspected   int64
	EncodeErrors       int64
	DetectorWasPerfect bool

	Uptime time.Duration

	// Cost is the engine's transport accounting so far (per decided node).
	Cost *obs.CostSummary
}

// EngineResult aggregates every instance's outcome plus the run's shared
// cost accounting (the batch RunEngine surface).
type EngineResult struct {
	N, Instances int

	// Decided and Decisions are indexed inst*N + (id-1).
	Decided   []bool
	Decisions []model.Value

	// WaitTimeouts counts rounds cut short by WaitBound across all
	// instances; nonzero means the mesh lost data messages (overflow, injected
	// faults) and the affected instances proceeded with partial rounds.
	WaitTimeouts int64
	// UnknownInstanceDrops counts round messages dropped for carrying an
	// out-of-range instance id.
	UnknownInstanceDrops int64

	// Detector audit, summed over the n shared detectors (see ClusterResult).
	FalseSuspicions    int64
	Retractions        int64
	FalselySuspected   int64
	DetectorWasPerfect bool
	EncodeErrors       int64

	Elapsed time.Duration

	// Cost is the run's transport accounting. With one detector per node
	// serving every instance, Cost.ControlMessagesPerDecision is the
	// amortization headline: it falls toward zero as Instances grows.
	Cost      *obs.CostSummary
	WireKinds []netobs.KindTotals
	Links     *netobs.LinkTap
}

// Decision returns node id's decision in instance inst.
func (er *EngineResult) Decision(inst int, id model.ProcessID) (model.Value, bool) {
	i := inst*er.N + int(id) - 1
	return er.Decisions[i], er.Decided[i]
}

// InstanceAgreement reports instance inst's verdict across its nodes.
func (er *EngineResult) InstanceAgreement(inst int) (model.Value, AgreementStatus) {
	base := inst * er.N
	return agreementOf(er.Decisions[base:base+er.N], er.Decided[base:base+er.N])
}

// DecidedCount counts (instance, node) decisions.
func (er *EngineResult) DecidedCount() int {
	count := 0
	for _, d := range er.Decided {
		if d {
			count++
		}
	}
	return count
}

// engEvent is one worker mailbox entry: either a routed round message (a
// decoded envelope plus the node it was delivered to) or — when slab is
// non-nil — an instance registration from Open.
type engEvent struct {
	node model.ProcessID
	env  wire.Envelope
	slab *instSlab
}

// mailbox is a worker's unbounded inbox. Unbounded by design: the demux
// goroutines must never block on a busy worker (a blocked demux stops
// feeding the failure detector, manufacturing false suspicions), so
// backpressure is traded for memory that is bounded in practice by
// instances × rounds.
type mailbox struct {
	mu     sync.Mutex
	q      []engEvent
	notify chan struct{}
}

func (mb *mailbox) push(ev engEvent) {
	mb.mu.Lock()
	mb.q = append(mb.q, ev)
	mb.mu.Unlock()
	mb.wake()
}

// wake nudges the worker without queueing anything.
func (mb *mailbox) wake() {
	select {
	case mb.notify <- struct{}{}:
	default:
	}
}

// empty reports whether the queue is drained (used by the shutdown check:
// a closing worker may not exit with a registration still queued).
func (mb *mailbox) empty() bool {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.q) == 0
}

// drain swaps the queue against the (emptied) spare buffer.
func (mb *mailbox) drain(spare []engEvent) []engEvent {
	mb.mu.Lock()
	q := mb.q
	mb.q = spare[:0]
	mb.mu.Unlock()
	return q
}

// instRow buffers one round's inbound messages for one (instance, node)
// automaton: presence bits (a null message is a present message with a nil
// payload) plus the lazily allocated payload row, freed after Trans.
type instRow struct {
	got  uint64
	msgs []rounds.Message
}

// instState is one (instance, node) automaton multiplexed on the mesh —
// the engine's replacement for a whole Node goroutine.
type instState struct {
	proc rounds.Process
	slab *instSlab
	id   model.ProcessID

	round    int32 // round currently executing; 0 = halted
	sent     bool  // this round's messages already transmitted
	queued   bool  // sitting in the worker's dirty list
	selfMsg  rounds.Message
	deadline time.Time // WaitBound expiry of the current round
	rows     []instRow // index 1..MaxRounds

	decided      bool
	decision     model.Value
	waitTimeouts int32
}

// instSlab is one instance's n automata, allocated as a unit when the
// instance is opened and released as a unit when the last automaton halts.
// Keeping each instance in its own slab gives the worker stable automaton
// pointers across dynamic registration (a single growing states slice
// would invalidate pointers on every append).
type instSlab struct {
	inst      uint64
	states    []instState // index id-1
	remaining int         // automata not yet halted
	probe     *InstanceProbe // nil for unobserved instances (the common case)
}

// engWorker owns the instances k with k mod Groups == idx and advances
// their n automata from its mailbox.
type engWorker struct {
	run *engineRun
	idx int

	mb     mailbox
	spare  []engEvent
	slabs  []*instSlab // index inst/Groups; nil once the instance completed
	active int
	dirty  []*instState

	suspects     []model.ProcSet // cached per node, 1..n
	nextDeadline time.Time
	scratch      []rounds.Message
}

// engineRun is the shared state of one engine's lifetime.
type engineRun struct {
	cfg       EngineConfig
	alg       rounds.Algorithm
	n         int
	maxRounds int
	waitBound time.Duration

	codec    wire.Codec
	batchers []*Batcher // 1..n, round traffic only
	fds      []Detector // 1..n, shared per node
	workers  []*engWorker

	metrics      nodeMetrics
	unknown      *obs.Counter
	decidedCtr   *obs.Counter
	openedCtr    *obs.Counter
	doneCtr      *obs.Counter
	unknownCount atomic.Int64
	waitTimeouts atomic.Int64
	decidedNodes atomic.Int64

	opened    atomic.Uint64 // next instance id; demux drops ids at or past it
	closing   atomic.Bool   // workers exit once idle
	completed atomic.Int64
	tally     [3]atomic.Int64 // AgreementStatus tallies over completed instances

	handleMu sync.Mutex
	handles  map[uint64]*Instance // in-flight only

	abortOnce sync.Once
	abortCh   chan struct{}
	abortMu   sync.Mutex
	abortErr  error
}

// abort records the first fatal error and releases every worker.
func (er *engineRun) abort(err error) {
	er.abortMu.Lock()
	if er.abortErr == nil {
		er.abortErr = err
	}
	er.abortMu.Unlock()
	er.abortOnce.Do(func() { close(er.abortCh) })
}

// finish resolves one completed instance: verdict tally, handle, callback.
// Called from the owning worker (or from Close for aborted leftovers).
func (er *engineRun) finish(inst uint64, out InstanceOutcome) {
	_, status := agreementOf(out.Decisions, out.Decided)
	er.tally[status].Add(1)
	er.completed.Add(1)
	er.doneCtr.Inc()
	er.handleMu.Lock()
	h := er.handles[inst]
	delete(er.handles, inst)
	er.handleMu.Unlock()
	if h != nil {
		h.resolve(out)
	}
	if er.cfg.OnInstanceDone != nil {
		er.cfg.OnInstanceDone(inst, out)
	}
}

// Engine is the long-lived form of the shared-mesh runtime: one mesh, one
// failure detector per node, and consensus instances admitted dynamically
// through Open — the backing of a consensus-serving daemon. RunEngine is
// the batch façade over it.
//
// Lifecycle: StartEngine brings up detectors, demultiplexers and shard
// workers; Open admits instances until Drain or Close; Close finishes the
// in-flight instances, joins every goroutine and tears the mesh down.
type Engine struct {
	er  *engineRun
	reg *obs.Registry
	ws  *netobs.WireStats

	network interface {
		Endpoint(model.ProcessID) Transport
		Close() error
	}
	inj *faults.Injector

	stopDemux chan struct{}
	demuxWG   sync.WaitGroup
	workerWG  sync.WaitGroup

	start time.Time

	drainMu  sync.Mutex
	draining bool

	closeOnce sync.Once
	closeErr  error
	closedCh  chan struct{}
}

// StartEngine brings up a live shared-mesh engine and returns once every
// detector, demultiplexer and shard worker is running. cfg.Instances and
// cfg.Initial are ignored — instances are admitted through Open.
func StartEngine(alg rounds.Algorithm, cfg EngineConfig) (*Engine, error) {
	n := cfg.N
	if n < 1 {
		return nil, fmt.Errorf("runtime: engine: empty cluster")
	}
	if n > 63 {
		return nil, fmt.Errorf("runtime: engine: n=%d exceeds the 63-process bound", n)
	}
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = 2 * time.Millisecond
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 30 * time.Millisecond
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = cfg.T + 2
	}
	if cfg.WaitBound <= 0 {
		cfg.WaitBound = 30 * time.Second
	}
	if cfg.Groups <= 0 {
		cfg.Groups = stdruntime.GOMAXPROCS(0)
		if cfg.Groups > 8 {
			cfg.Groups = 8
		}
	}
	if cfg.Instances > 0 && cfg.Groups > cfg.Instances {
		cfg.Groups = cfg.Instances
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1 << 15
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	spec := cfg.Detector
	if spec == nil {
		spec = HeartbeatDetector()
	}

	ws := netobs.NewWireStats(reg)
	er := &engineRun{
		cfg:        cfg,
		alg:        alg,
		n:          n,
		maxRounds:  cfg.MaxRounds,
		waitBound:  cfg.WaitBound,
		codec:      wire.Codec{Tap: ws},
		batchers:   make([]*Batcher, n+1),
		fds:        make([]Detector, n+1),
		metrics:    newNodeMetrics(reg, alg.Name(), rounds.RWS),
		unknown:    reg.Counter(MetricEngineUnknownInstance),
		decidedCtr: reg.Counter(MetricEngineInstancesDecided),
		openedCtr:  reg.Counter(MetricEngineInstancesOpened),
		doneCtr:    reg.Counter(MetricEngineInstancesDone),
		handles:    make(map[uint64]*Instance),
		abortCh:    make(chan struct{}),
	}

	network := cfg.Network
	if network == nil {
		network = NewChanNetwork(n, ChanConfig{
			MaxDelay: time.Millisecond, Metrics: reg, Buffer: cfg.Buffer,
		})
	}
	cleanupNetwork := func() { _ = network.Close() }

	var inj *faults.Injector
	if cfg.Faults != nil {
		fcfg := *cfg.Faults
		if fcfg.Metrics == nil {
			fcfg.Metrics = reg
		}
		inj = faults.NewInjector(fcfg)
	}
	cleanupInjector := func() {
		if inj != nil {
			_ = inj.Close()
		}
	}

	// Per-node plumbing: endpoint → (injector) → {detector, batcher, demux}.
	endpoints := make([]Transport, n+1)
	bcfg := cfg.Batch
	if bcfg.Metrics == nil {
		bcfg.Metrics = reg
	}
	for i := 1; i <= n; i++ {
		id := model.ProcessID(i)
		var tr Transport = network.Endpoint(id)
		if inj != nil {
			tr = inj.Wrap(tr)
		}
		endpoints[i] = tr
		d, err := spec.New(DetectorConfig{
			Transport: tr, N: n,
			Period: cfg.HeartbeatPeriod, Timeout: cfg.SuspectTimeout,
		})
		if err != nil {
			// Already-built detectors hold no goroutines before Start, but
			// Stop anyway: the contract says it is safe, and constructions
			// with eager resources rely on it.
			for j := 1; j < i; j++ {
				er.fds[j].Stop()
			}
			for j := 1; j < i; j++ {
				_ = er.batchers[j].Close()
			}
			cleanupInjector()
			cleanupNetwork()
			return nil, fmt.Errorf("runtime: engine node %d: detector %q: %w", i, spec.Name, err)
		}
		d.Instrument(reg, nil)
		d.UseCodec(er.codec)
		er.fds[i] = d
		er.batchers[i] = NewBatcher(tr, bcfg)
	}

	// Shard workers: worker w owns instances {k : k mod Groups == w}.
	er.workers = make([]*engWorker, cfg.Groups)
	for w := range er.workers {
		ew := &engWorker{
			run:      er,
			idx:      w,
			suspects: make([]model.ProcSet, n+1),
			scratch:  make([]rounds.Message, n+1),
		}
		ew.mb.notify = make(chan struct{}, 1)
		er.workers[w] = ew
	}

	e := &Engine{
		er:        er,
		reg:       reg,
		ws:        ws,
		network:   network,
		inj:       inj,
		stopDemux: make(chan struct{}),
		start:     time.Now(),
		closedCh:  make(chan struct{}),
	}
	for i := 1; i <= n; i++ {
		er.fds[i].Start()
	}
	// One demux goroutine per node feeds the detector and routes round
	// traffic to the owning worker.
	for i := 1; i <= n; i++ {
		e.demuxWG.Add(1)
		go er.demuxLoop(&e.demuxWG, model.ProcessID(i), endpoints[i], e.stopDemux)
	}
	for _, w := range er.workers {
		e.workerWG.Add(1)
		go w.loop(&e.workerWG)
	}
	return e, nil
}

// Open admits one consensus instance: node id proposes initial(id) (nil
// proposes 0 everywhere). The returned handle resolves when every automaton
// has halted. Open fails with ErrEngineDraining after Drain or Close.
func (e *Engine) Open(initial func(model.ProcessID) model.Value) (*Instance, error) {
	return e.OpenObserved(initial, nil)
}

// OpenObserved is Open with a per-round wall-clock probe attached: the
// owning worker stamps every send/close/transition/arrival/decision into it
// (see InstanceProbe). probe nil is exactly Open — no stamps, no cost beyond
// a nil check per hook.
func (e *Engine) OpenObserved(initial func(model.ProcessID) model.Value, probe *InstanceProbe) (*Instance, error) {
	er := e.er
	n := er.n
	// The drain lock orders Open against Close: once Close flips draining,
	// every admitted instance's registration is already in its worker's
	// mailbox, so the workers' exit check (closing && idle && empty
	// mailbox) cannot strand a registration.
	e.drainMu.Lock()
	defer e.drainMu.Unlock()
	if e.draining {
		return nil, ErrEngineDraining
	}
	id := er.opened.Add(1) - 1
	h := &Instance{id: id, done: make(chan struct{})}
	er.handleMu.Lock()
	er.handles[id] = h
	er.handleMu.Unlock()

	sl := &instSlab{inst: id, states: make([]instState, n), remaining: n, probe: probe}
	if probe != nil {
		probe.attach(n, er.maxRounds, time.Now())
	}
	for i := 1; i <= n; i++ {
		var v model.Value
		if initial != nil {
			v = initial(model.ProcessID(i))
		}
		st := &sl.states[i-1]
		st.proc = er.alg.New(rounds.ProcConfig{ID: model.ProcessID(i), N: n, T: er.cfg.T, Initial: v})
		st.slab = sl
		st.id = model.ProcessID(i)
		st.round = 1
		st.rows = make([]instRow, er.maxRounds+1)
	}
	er.openedCtr.Inc()
	er.workers[int(id%uint64(len(er.workers)))].mb.push(engEvent{slab: sl})
	return h, nil
}

// OpenValue admits an instance where every node proposes the same value —
// the state-machine-replication case (one client command per slot).
func (e *Engine) OpenValue(v model.Value) (*Instance, error) {
	return e.Open(func(model.ProcessID) model.Value { return v })
}

// Drain stops admitting new instances; in-flight ones keep running.
func (e *Engine) Drain() {
	e.drainMu.Lock()
	e.draining = true
	e.drainMu.Unlock()
}

// Closed is closed once Close has fully torn the engine down.
func (e *Engine) Closed() <-chan struct{} { return e.closedCh }

// N returns the cluster size.
func (e *Engine) N() int { return e.er.n }

// Algorithm returns the algorithm the engine runs.
func (e *Engine) Algorithm() rounds.Algorithm { return e.er.alg }

// Err returns the engine's first fatal error, if any.
func (e *Engine) Err() error {
	e.er.abortMu.Lock()
	defer e.er.abortMu.Unlock()
	return e.er.abortErr
}

// Stats snapshots the engine. Safe to call concurrently with everything,
// including after Close.
func (e *Engine) Stats() EngineStats {
	er := e.er
	s := EngineStats{
		N:                    er.n,
		Groups:               len(er.workers),
		Algorithm:            er.alg.Name(),
		Opened:               int64(er.opened.Load()),
		Completed:            er.completed.Load(),
		DecidedNodes:         er.decidedNodes.Load(),
		AgreementNone:        er.tally[AgreementNone].Load(),
		AgreementReached:     er.tally[AgreementReached].Load(),
		AgreementViolated:    er.tally[AgreementViolated].Load(),
		WaitTimeouts:         er.waitTimeouts.Load(),
		UnknownInstanceDrops: er.unknownCount.Load(),
		Uptime:               time.Since(e.start),
	}
	s.InFlight = s.Opened - s.Completed
	for _, w := range er.workers {
		w.mb.mu.Lock()
		s.Backlog += int64(len(w.mb.q))
		w.mb.mu.Unlock()
	}
	for i := 1; i <= er.n; i++ {
		fd := er.fds[i]
		s.Detector = fd.Name()
		s.FalseSuspicions += fd.FalseSuspicions()
		s.Retractions += fd.Retractions()
		s.EncodeErrors += fd.EncodeErrors()
		// Under the engine no node ever crash-stops (instances have no crash
		// plans), so every suspicion ever raised is a perfection violation.
		s.FalselySuspected += int64(fd.EverSuspected().Count())
	}
	s.DetectorWasPerfect = s.FalseSuspicions == 0 && s.FalselySuspected == 0
	var links *netobs.LinkTap
	if ts, ok := e.network.(TelemetrySource); ok {
		links = ts.Telemetry()
	}
	s.Cost = netobs.ComputeCost(int(s.DecidedNodes), e.ws, links)
	return s
}

// Close drains the engine, waits the in-flight instances out, joins every
// goroutine and tears the mesh down. Idempotent; returns the engine's first
// fatal error, if any. Instances still unresolved after the workers exit
// (possible only on abort) are failed with ErrEngineClosed or the abort
// error.
func (e *Engine) Close() error {
	e.Drain()
	e.closeOnce.Do(func() {
		er := e.er
		er.closing.Store(true)
		for _, w := range er.workers {
			w.mb.wake()
		}
		e.workerWG.Wait()
		for i := 1; i <= er.n; i++ {
			er.fds[i].Stop()
		}
		close(e.stopDemux)
		e.demuxWG.Wait()
		for i := 1; i <= er.n; i++ {
			_ = er.batchers[i].Close()
		}
		if e.inj != nil {
			_ = e.inj.Close()
		}
		_ = e.network.Close()

		er.abortMu.Lock()
		err := er.abortErr
		er.abortMu.Unlock()
		// Fail whatever is still pending (aborted workers leave instances
		// behind); finish() keeps the tallies and callbacks consistent.
		er.handleMu.Lock()
		var stranded []uint64
		for id := range er.handles {
			stranded = append(stranded, id)
		}
		er.handleMu.Unlock()
		for _, id := range stranded {
			ferr := err
			if ferr == nil {
				ferr = ErrEngineClosed
			}
			er.finish(id, InstanceOutcome{
				N:         er.n,
				Decided:   make([]bool, er.n),
				Decisions: make([]model.Value, er.n),
				Err:       ferr,
			})
		}
		netobs.PublishCost(e.reg, netobs.ComputeCost(int(er.decidedNodes.Load()), e.ws, e.links()))
		e.closeErr = err
		close(e.closedCh)
	})
	return e.closeErr
}

func (e *Engine) links() *netobs.LinkTap {
	if ts, ok := e.network.(TelemetrySource); ok {
		return ts.Telemetry()
	}
	return nil
}

// RunEngine executes cfg.Instances concurrent instances of the algorithm
// over one shared mesh and returns every instance's outcome. All goroutines
// are joined before it returns. It is the batch façade over StartEngine.
func RunEngine(alg rounds.Algorithm, cfg EngineConfig) (*EngineResult, error) {
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("runtime: engine: need at least one instance")
	}
	initial := cfg.Initial
	if initial == nil {
		initial = func(int, model.ProcessID) model.Value { return 0 }
	}
	e, err := StartEngine(alg, cfg)
	if err != nil {
		return nil, err
	}
	n := e.er.n

	start := time.Now()
	handles := make([]*Instance, cfg.Instances)
	for k := range handles {
		k := k
		h, err := e.Open(func(id model.ProcessID) model.Value { return initial(k, id) })
		if err != nil {
			_ = e.Close()
			return nil, err
		}
		handles[k] = h
	}
wait:
	for _, h := range handles {
		select {
		case <-h.Done():
		case <-e.er.abortCh:
			break wait
		}
	}
	elapsed := time.Since(start)
	err = e.Close()

	res := &EngineResult{
		N: n, Instances: cfg.Instances,
		Decided:              make([]bool, cfg.Instances*n),
		Decisions:            make([]model.Value, cfg.Instances*n),
		WaitTimeouts:         e.er.waitTimeouts.Load(),
		UnknownInstanceDrops: e.er.unknownCount.Load(),
		Elapsed:              elapsed,
	}
	for k, h := range handles {
		out, ok := h.Outcome()
		if !ok {
			continue
		}
		for i := 0; i < n; i++ {
			if out.Decided[i] {
				res.Decided[k*n+i] = true
				res.Decisions[k*n+i] = out.Decisions[i]
			}
		}
	}
	st := e.Stats()
	res.FalseSuspicions = st.FalseSuspicions
	res.Retractions = st.Retractions
	res.EncodeErrors = st.EncodeErrors
	res.FalselySuspected = st.FalselySuspected
	res.DetectorWasPerfect = st.DetectorWasPerfect
	res.Links = e.links()
	res.Cost = netobs.ComputeCost(res.DecidedCount(), e.ws, res.Links)
	res.WireKinds = e.ws.PerKind()
	return res, err
}

// demuxLoop decodes one node's inbound packets (splitting batches), feeds
// the shared detector and routes round messages to the owning worker.
func (er *engineRun) demuxLoop(wg *sync.WaitGroup, id model.ProcessID, tr Transport, stop <-chan struct{}) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			return
		case pkt, ok := <-tr.Recv():
			if !ok {
				return
			}
			_ = wire.SplitBatch(pkt.Data, func(frame []byte) error {
				env, err := er.codec.Decode(frame)
				if err != nil {
					return nil // corrupt frame: drop, keep the batch
				}
				er.fds[id].Observe(env)
				if env.Kind.Control() {
					er.metrics.heartbeats.Inc()
					return nil
				}
				if env.Instance >= er.opened.Load() ||
					env.From < 1 || int(env.From) > er.n {
					er.unknown.Inc()
					er.unknownCount.Add(1)
					return nil
				}
				er.workers[int(env.Instance%uint64(len(er.workers)))].mb.push(engEvent{node: id, env: env})
				return nil
			})
		}
	}
}

// slabFor maps an instance id to its slab, or nil once it completed (late
// duplicates for a finished instance are dropped).
func (w *engWorker) slabFor(inst uint64) *instSlab {
	local := int(inst) / len(w.run.workers)
	if local >= len(w.slabs) {
		return nil
	}
	return w.slabs[local]
}

// register files a newly opened instance with its owning worker.
func (w *engWorker) register(sl *instSlab) {
	local := int(sl.inst) / len(w.run.workers)
	for len(w.slabs) <= local {
		w.slabs = append(w.slabs, nil)
	}
	w.slabs[local] = sl
	w.active += len(sl.states)
	for i := range sl.states {
		w.enqueue(&sl.states[i])
	}
}

// enqueue marks st for advancement in the current sweep.
func (w *engWorker) enqueue(st *instState) {
	if st.queued || st.round == 0 {
		return
	}
	st.queued = true
	w.dirty = append(w.dirty, st)
}

// enqueueAll schedules a full rescan — suspicion changed or a WaitBound
// deadline passed, either of which can complete any blocked round.
func (w *engWorker) enqueueAll() {
	for _, sl := range w.slabs {
		if sl == nil {
			continue
		}
		for i := range sl.states {
			w.enqueue(&sl.states[i])
		}
	}
}

// refreshSuspects snapshots each node's suspicion set once per sweep and
// reports whether any changed. Polling here (not per automaton) keeps the
// detector cost independent of the instance count — the whole point.
func (w *engWorker) refreshSuspects() bool {
	changed := false
	for i := 1; i <= w.run.n; i++ {
		s := w.run.fds[i].Suspects()
		if s != w.suspects[i] {
			w.suspects[i] = s
			changed = true
		}
	}
	return changed
}

// loop is the worker body: drain events, advance dirty automata, flush the
// batched sends, sleep until traffic or the tick.
func (w *engWorker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	tick := w.run.cfg.SuspectTimeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	for {
		if w.refreshSuspects() {
			w.enqueueAll()
		}
		events := w.mb.drain(w.spare)
		for i := range events {
			w.deliver(&events[i])
			events[i] = engEvent{} // drop slab/payload references for reuse
		}
		w.spare = events
		if !w.nextDeadline.IsZero() && time.Now().After(w.nextDeadline) {
			w.nextDeadline = time.Time{}
			w.enqueueAll()
		}
		for len(w.dirty) > 0 {
			st := w.dirty[len(w.dirty)-1]
			w.dirty = w.dirty[:len(w.dirty)-1]
			st.queued = false
			w.advance(st)
		}
		// Round completions above queued sends on the node batchers; push
		// them out now so peers don't wait out the flush timer.
		for i := 1; i <= w.run.n; i++ {
			if err := w.run.batchers[i].Flush(); err != nil && err != ErrClosed {
				w.run.abort(err)
			}
		}
		// A long-lived engine's workers idle through empty sweeps; they only
		// exit once the engine is closing, every owned automaton has halted
		// and no registration is waiting in the mailbox (Close orders Open
		// registrations strictly before the closing flag).
		if w.active == 0 && w.run.closing.Load() && w.mb.empty() {
			return
		}
		select {
		case <-w.mb.notify:
		case <-ticker.C:
		case <-w.run.abortCh:
			return
		}
	}
}

// deliver files one mailbox event: a registration, or a round message into
// its automaton's row.
func (w *engWorker) deliver(ev *engEvent) {
	if ev.slab != nil {
		w.register(ev.slab)
		return
	}
	sl := w.slabFor(ev.env.Instance)
	if sl == nil {
		return // instance completed (late duplicate) or never registered
	}
	st := &sl.states[int(ev.node)-1]
	r := ev.env.Round
	if st.round == 0 || r < int(st.round) || r > w.run.maxRounds {
		return // automaton halted, round already closed, or out of range
	}
	row := &st.rows[r]
	if row.msgs == nil {
		row.msgs = make([]rounds.Message, w.run.n+1)
	}
	row.msgs[ev.env.From] = ev.env.Payload
	row.got |= 1 << uint(ev.env.From)
	if sl.probe != nil {
		sl.probe.arrive(ev.node, int(ev.env.From), r, time.Now())
	}
	w.enqueue(st)
}

// advance drives one automaton as far as it can go: send the current
// round's messages if not yet sent, close the round when every peer has
// delivered or is suspected (or the WaitBound expired), transition, repeat.
func (w *engWorker) advance(st *instState) {
	n := w.run.n
	pr := st.slab.probe
	for st.round != 0 {
		r := int(st.round)
		if !st.sent {
			var sendBegin time.Time
			if pr != nil {
				sendBegin = time.Now()
			}
			if err := w.sendRound(st, r); err != nil {
				w.run.abort(err)
				w.halt(st)
				return
			}
			st.sent = true
			st.deadline = time.Now().Add(w.run.waitBound)
			if pr != nil {
				pr.roundSent(st.id, r, sendBegin, time.Now())
			}
		}
		row := &st.rows[r]
		suspects := w.suspects[st.id]
		complete := true
		for j := 1; j <= n; j++ {
			pj := model.ProcessID(j)
			if pj == st.id {
				continue
			}
			if row.got&(1<<uint(j)) == 0 && !suspects.Has(pj) {
				complete = false
				break
			}
		}
		if !complete {
			if time.Now().Before(st.deadline) {
				if w.nextDeadline.IsZero() || st.deadline.Before(w.nextDeadline) {
					w.nextDeadline = st.deadline
				}
				return
			}
			// Liveness guard, as in Node.waitRound: proceed with what we have.
			st.waitTimeouts++
			w.run.waitTimeouts.Add(1)
			w.run.metrics.waitTimeouts.Inc()
		}
		if pr != nil {
			pr.roundClosed(st.id, r, row.got, !complete, time.Now())
		}
		in := w.scratch
		for j := range in {
			in[j] = nil
		}
		if row.msgs != nil {
			copy(in, row.msgs)
		}
		in[st.id] = st.selfMsg
		st.proc.Trans(r, in)
		row.msgs = nil // free the payload row; the round is closed
		w.run.metrics.rounds.Inc()
		var transAt time.Time
		if pr != nil {
			transAt = time.Now()
			pr.roundDone(st.id, r, transAt)
		}
		if !st.decided {
			if v, ok := st.proc.Decision(); ok {
				st.decided = true
				st.decision = v
				w.run.decidedCtr.Inc()
				w.run.decidedNodes.Add(1)
				if pr != nil {
					pr.noteDecide(st.id, r, v, transAt)
				}
			}
		}
		st.round++
		st.sent = false
		st.selfMsg = nil
		if int(st.round) > w.run.maxRounds {
			w.halt(st)
		}
	}
}

// halt retires an automaton; when it is the instance's last one, the slab
// is released and the instance resolved.
func (w *engWorker) halt(st *instState) {
	if st.round == 0 {
		return
	}
	st.round = 0
	w.active--
	sl := st.slab
	sl.remaining--
	if sl.remaining > 0 {
		return
	}
	n := w.run.n
	out := InstanceOutcome{
		N:         n,
		Decided:   make([]bool, n),
		Decisions: make([]model.Value, n),
	}
	for i := range sl.states {
		s := &sl.states[i]
		out.Decided[i] = s.decided
		out.Decisions[i] = s.decision
		out.WaitTimeouts += int(s.waitTimeouts)
	}
	if sl.probe != nil {
		sl.probe.noteDone(time.Now())
	}
	w.slabs[int(sl.inst)/len(w.run.workers)] = nil
	w.run.finish(sl.inst, out)
}

// sendRound transmits st's round-r messages through the owning node's
// batcher, tagged with the instance id.
func (w *engWorker) sendRound(st *instState, r int) error {
	msgs := st.proc.Msgs(r)
	if msgs != nil {
		st.selfMsg = msgs[st.id]
	} else {
		st.selfMsg = nil
	}
	for j := 1; j <= w.run.n; j++ {
		dest := model.ProcessID(j)
		if dest == st.id {
			continue
		}
		var payload rounds.Message
		if msgs != nil {
			payload = msgs[dest]
		}
		env, err := wire.EnvelopeFor(st.id, dest, r, payload)
		if err != nil {
			return err
		}
		env.Instance = st.slab.inst
		data, err := w.run.codec.Encode(env)
		if err != nil {
			return err
		}
		if err := w.run.batchers[st.id].Send(dest, data); err != nil {
			return err
		}
	}
	return nil
}
