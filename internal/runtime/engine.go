package runtime

import (
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/netobs"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// Engine metric names.
const (
	// MetricEngineUnknownInstance counts inbound round messages carrying an
	// instance id outside the engine's configured range — dropped at the
	// demultiplexer (stray traffic from a misconfigured peer, or corruption
	// that survived decoding).
	MetricEngineUnknownInstance = "ssfd_engine_unknown_instance_total"
	// MetricEngineInstancesDecided counts (instance, node) decisions.
	MetricEngineInstancesDecided = "ssfd_engine_decisions_total"
)

// EngineConfig assembles a shared-mesh multi-instance execution: N nodes,
// ONE physical mesh, ONE failure detector per node, and Instances
// concurrent consensus instances multiplexed over them.
//
// The engine runs the RWS (receive-or-suspect) discipline only. RS rounds
// are paced by wall-clock deadlines per instance, which neither multiplexes
// (every instance would need its own deadline schedule on a shared clock)
// nor amortizes anything — the paper's efficiency argument for sharing is
// about the detector, an RWS-only device.
type EngineConfig struct {
	// Instances is the number of concurrent consensus instances (ids
	// 0..Instances-1 on the wire).
	Instances int
	// N is the cluster size, T the resilience bound.
	N, T int
	// Initial yields node id's proposal in instance inst. Nil proposes 0
	// everywhere.
	Initial func(inst int, id model.ProcessID) model.Value

	// Groups is the number of shard workers instances are distributed
	// across (instance k belongs to worker k mod Groups). Default:
	// min(8, GOMAXPROCS). Sharding is a throughput knob, not a semantic
	// one — results are independent of it (the equivalence tests pin this).
	Groups int

	// Network supplies the shared mesh; nil builds the default in-process
	// synchronous network with Buffer-deep inboxes.
	Network interface {
		Endpoint(model.ProcessID) Transport
		Close() error
	}
	// Buffer sizes the default network's per-endpoint inbox (default 2^15:
	// the multiplexed mesh carries every instance's traffic through n
	// inboxes, so the single-instance default of 1024 would overflow).
	Buffer int

	// HeartbeatPeriod and SuspectTimeout configure the per-node failure
	// detectors (defaults 2ms / 30ms, as in ClusterConfig).
	HeartbeatPeriod time.Duration
	SuspectTimeout  time.Duration
	// Detector selects the construction (nil: all-to-all heartbeat). ONE
	// detector is built per node — not per instance — over the node's raw
	// (fault-wrapped, unbatched) endpoint; its control traffic is what the
	// engine amortizes across instances.
	Detector *DetectorSpec

	// MaxRounds bounds every instance (default T+2).
	MaxRounds int
	// WaitBound bounds each round's receive-or-suspect wait per instance
	// (see NodeConfig.WaitBound). Unlike the single-instance node, the
	// engine defaults a zero value to 30s: with 100k instances in flight a
	// single starved wait (one lost packet on an overflowing inbox) must
	// degrade one instance, not hang the process.
	WaitBound time.Duration

	// Batch tunes the per-link send batching of round traffic. Detector
	// control traffic is never batched — a queued heartbeat is a false
	// suspicion waiting to happen.
	Batch BatcherConfig

	// Faults, when non-nil, interposes the seeded per-link injector between
	// every node and the mesh — beneath the batcher and the detector, so
	// faults stay per-link: a dropped packet takes a whole batch, a delayed
	// packet delays every instance riding in it, exactly like a real link.
	Faults *faults.Config

	// Metrics receives the engine's instruments; nil uses obs.Default.
	// There is no Events sink: per-event streams at 100k instances would
	// cost more than the run (use the single-instance cluster to trace).
	Metrics *obs.Registry
}

// EngineResult aggregates every instance's outcome plus the run's shared
// cost accounting.
type EngineResult struct {
	N, Instances int

	// Decided and Decisions are indexed inst*N + (id-1).
	Decided   []bool
	Decisions []model.Value

	// WaitTimeouts counts rounds cut short by WaitBound across all
	// instances; nonzero means the mesh lost data messages (overflow, injected
	// faults) and the affected instances proceeded with partial rounds.
	WaitTimeouts int64
	// UnknownInstanceDrops counts round messages dropped for carrying an
	// out-of-range instance id.
	UnknownInstanceDrops int64

	// Detector audit, summed over the n shared detectors (see ClusterResult).
	FalseSuspicions    int64
	Retractions        int64
	FalselySuspected   int64
	DetectorWasPerfect bool
	EncodeErrors       int64

	Elapsed time.Duration

	// Cost is the run's transport accounting. With one detector per node
	// serving every instance, Cost.ControlMessagesPerDecision is the
	// amortization headline: it falls toward zero as Instances grows.
	Cost      *obs.CostSummary
	WireKinds []netobs.KindTotals
	Links     *netobs.LinkTap
}

// Decision returns node id's decision in instance inst.
func (er *EngineResult) Decision(inst int, id model.ProcessID) (model.Value, bool) {
	i := inst*er.N + int(id) - 1
	return er.Decisions[i], er.Decided[i]
}

// InstanceAgreement reports instance inst's verdict across its nodes.
func (er *EngineResult) InstanceAgreement(inst int) (model.Value, AgreementStatus) {
	base := inst * er.N
	return agreementOf(er.Decisions[base:base+er.N], er.Decided[base:base+er.N])
}

// DecidedCount counts (instance, node) decisions.
func (er *EngineResult) DecidedCount() int {
	count := 0
	for _, d := range er.Decided {
		if d {
			count++
		}
	}
	return count
}

// engEvent is one routed round message: a decoded envelope plus the node it
// was delivered to.
type engEvent struct {
	node model.ProcessID
	env  wire.Envelope
}

// mailbox is a worker's unbounded inbox. Unbounded by design: the demux
// goroutines must never block on a busy worker (a blocked demux stops
// feeding the failure detector, manufacturing false suspicions), so
// backpressure is traded for memory that is bounded in practice by
// instances × rounds.
type mailbox struct {
	mu     sync.Mutex
	q      []engEvent
	notify chan struct{}
}

func (mb *mailbox) push(ev engEvent) {
	mb.mu.Lock()
	mb.q = append(mb.q, ev)
	mb.mu.Unlock()
	select {
	case mb.notify <- struct{}{}:
	default:
	}
}

// drain swaps the queue against the (emptied) spare buffer.
func (mb *mailbox) drain(spare []engEvent) []engEvent {
	mb.mu.Lock()
	q := mb.q
	mb.q = spare[:0]
	mb.mu.Unlock()
	return q
}

// instRow buffers one round's inbound messages for one (instance, node)
// automaton: presence bits (a null message is a present message with a nil
// payload) plus the lazily allocated payload row, freed after Trans.
type instRow struct {
	got  uint64
	msgs []rounds.Message
}

// instState is one (instance, node) automaton multiplexed on the mesh —
// the engine's replacement for a whole Node goroutine.
type instState struct {
	proc rounds.Process
	inst uint32
	id   model.ProcessID

	round    int32 // round currently executing; 0 = halted
	sent     bool  // this round's messages already transmitted
	queued   bool  // sitting in the worker's dirty list
	selfMsg  rounds.Message
	deadline time.Time // WaitBound expiry of the current round
	rows     []instRow // index 1..MaxRounds

	decided      bool
	decision     model.Value
	waitTimeouts int32
}

// engWorker owns the instances k with k mod Groups == idx and advances
// their n automata from its mailbox.
type engWorker struct {
	run *engineRun
	idx int

	mb     mailbox
	spare  []engEvent
	states []instState // localInst*n + (id-1)
	active int
	dirty  []*instState

	suspects     []model.ProcSet // cached per node, 1..n
	nextDeadline time.Time
	scratch      []rounds.Message
}

// engineRun is the shared state of one RunEngine execution.
type engineRun struct {
	cfg       EngineConfig
	n         int
	maxRounds int
	waitBound time.Duration

	codec    wire.Codec
	batchers []*Batcher // 1..n, round traffic only
	fds      []Detector // 1..n, shared per node
	workers  []*engWorker

	metrics      nodeMetrics
	unknown      *obs.Counter
	decidedCtr   *obs.Counter
	unknownCount atomic.Int64
	waitTimeouts atomic.Int64

	abortOnce sync.Once
	abortCh   chan struct{}
	abortMu   sync.Mutex
	abortErr  error
}

// abort records the first fatal error and releases every worker.
func (er *engineRun) abort(err error) {
	er.abortMu.Lock()
	if er.abortErr == nil {
		er.abortErr = err
	}
	er.abortMu.Unlock()
	er.abortOnce.Do(func() { close(er.abortCh) })
}

// RunEngine executes cfg.Instances concurrent instances of the algorithm
// over one shared mesh and returns every instance's outcome. All goroutines
// are joined before it returns.
func RunEngine(alg rounds.Algorithm, cfg EngineConfig) (*EngineResult, error) {
	n := cfg.N
	if n < 1 {
		return nil, fmt.Errorf("runtime: engine: empty cluster")
	}
	if n > 63 {
		return nil, fmt.Errorf("runtime: engine: n=%d exceeds the 63-process bound", n)
	}
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("runtime: engine: need at least one instance")
	}
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = 2 * time.Millisecond
	}
	if cfg.SuspectTimeout <= 0 {
		cfg.SuspectTimeout = 30 * time.Millisecond
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = cfg.T + 2
	}
	if cfg.WaitBound <= 0 {
		cfg.WaitBound = 30 * time.Second
	}
	if cfg.Groups <= 0 {
		cfg.Groups = stdruntime.GOMAXPROCS(0)
		if cfg.Groups > 8 {
			cfg.Groups = 8
		}
	}
	if cfg.Groups > cfg.Instances {
		cfg.Groups = cfg.Instances
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1 << 15
	}
	if cfg.Initial == nil {
		cfg.Initial = func(int, model.ProcessID) model.Value { return 0 }
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	spec := cfg.Detector
	if spec == nil {
		spec = HeartbeatDetector()
	}

	ws := netobs.NewWireStats(reg)
	er := &engineRun{
		cfg:        cfg,
		n:          n,
		maxRounds:  cfg.MaxRounds,
		waitBound:  cfg.WaitBound,
		codec:      wire.Codec{Tap: ws},
		batchers:   make([]*Batcher, n+1),
		fds:        make([]Detector, n+1),
		metrics:    newNodeMetrics(reg, alg.Name(), rounds.RWS),
		unknown:    reg.Counter(MetricEngineUnknownInstance),
		decidedCtr: reg.Counter(MetricEngineInstancesDecided),
		abortCh:    make(chan struct{}),
	}

	network := cfg.Network
	if network == nil {
		network = NewChanNetwork(n, ChanConfig{
			MaxDelay: time.Millisecond, Metrics: reg, Buffer: cfg.Buffer,
		})
	}
	defer func() { _ = network.Close() }()

	var inj *faults.Injector
	if cfg.Faults != nil {
		fcfg := *cfg.Faults
		if fcfg.Metrics == nil {
			fcfg.Metrics = reg
		}
		inj = faults.NewInjector(fcfg)
		defer func() { _ = inj.Close() }()
	}

	// Per-node plumbing: endpoint → (injector) → {detector, batcher, demux}.
	endpoints := make([]Transport, n+1)
	bcfg := cfg.Batch
	if bcfg.Metrics == nil {
		bcfg.Metrics = reg
	}
	for i := 1; i <= n; i++ {
		id := model.ProcessID(i)
		var tr Transport = network.Endpoint(id)
		if inj != nil {
			tr = inj.Wrap(tr)
		}
		endpoints[i] = tr
		d, err := spec.New(DetectorConfig{
			Transport: tr, N: n,
			Period: cfg.HeartbeatPeriod, Timeout: cfg.SuspectTimeout,
		})
		if err != nil {
			// Already-built detectors hold no goroutines before Start, but
			// Stop anyway: the contract says it is safe, and constructions
			// with eager resources rely on it.
			for j := 1; j < i; j++ {
				er.fds[j].Stop()
			}
			return nil, fmt.Errorf("runtime: engine node %d: detector %q: %w", i, spec.Name, err)
		}
		d.Instrument(reg, nil)
		d.UseCodec(er.codec)
		er.fds[i] = d
		er.batchers[i] = NewBatcher(tr, bcfg)
	}
	defer func() {
		for i := 1; i <= n; i++ {
			_ = er.batchers[i].Close()
		}
	}()

	// Shard the instances: worker w owns instances {k : k mod Groups == w}.
	er.workers = make([]*engWorker, cfg.Groups)
	for w := range er.workers {
		owned := (cfg.Instances - w + cfg.Groups - 1) / cfg.Groups
		ew := &engWorker{
			run:      er,
			idx:      w,
			states:   make([]instState, owned*n),
			active:   owned * n,
			suspects: make([]model.ProcSet, n+1),
			scratch:  make([]rounds.Message, n+1),
		}
		ew.mb.notify = make(chan struct{}, 1)
		for local := 0; local < owned; local++ {
			inst := local*cfg.Groups + w
			for i := 1; i <= n; i++ {
				id := model.ProcessID(i)
				st := &ew.states[local*n+i-1]
				st.proc = alg.New(rounds.ProcConfig{ID: id, N: n, T: cfg.T, Initial: cfg.Initial(inst, id)})
				st.inst = uint32(inst)
				st.id = id
				st.round = 1
				st.rows = make([]instRow, cfg.MaxRounds+1)
			}
		}
		er.workers[w] = ew
	}

	start := time.Now()
	for i := 1; i <= n; i++ {
		er.fds[i].Start()
	}
	// One demux goroutine per node feeds the detector and routes round
	// traffic to the owning worker.
	var demuxWG sync.WaitGroup
	stopDemux := make(chan struct{})
	for i := 1; i <= n; i++ {
		demuxWG.Add(1)
		go er.demuxLoop(&demuxWG, model.ProcessID(i), endpoints[i], stopDemux)
	}
	var workerWG sync.WaitGroup
	for _, w := range er.workers {
		workerWG.Add(1)
		go w.loop(&workerWG)
	}
	workerWG.Wait()
	elapsed := time.Since(start)

	for i := 1; i <= n; i++ {
		er.fds[i].Stop()
	}
	close(stopDemux)
	demuxWG.Wait()

	res := &EngineResult{
		N: n, Instances: cfg.Instances,
		Decided:              make([]bool, cfg.Instances*n),
		Decisions:            make([]model.Value, cfg.Instances*n),
		WaitTimeouts:         er.waitTimeouts.Load(),
		UnknownInstanceDrops: er.unknownCount.Load(),
		Elapsed:              elapsed,
	}
	for _, w := range er.workers {
		for s := range w.states {
			st := &w.states[s]
			if st.decided {
				idx := int(st.inst)*n + int(st.id) - 1
				res.Decided[idx] = true
				res.Decisions[idx] = st.decision
			}
		}
	}
	for i := 1; i <= n; i++ {
		fd := er.fds[i]
		res.FalseSuspicions += fd.FalseSuspicions()
		res.Retractions += fd.Retractions()
		res.EncodeErrors += fd.EncodeErrors()
		// Under the engine no node ever crash-stops (instances have no crash
		// plans), so every suspicion ever raised is a perfection violation.
		res.FalselySuspected += int64(fd.EverSuspected().Count())
	}
	res.DetectorWasPerfect = res.FalseSuspicions == 0 && res.FalselySuspected == 0

	if ts, ok := network.(TelemetrySource); ok {
		res.Links = ts.Telemetry()
	}
	res.Cost = netobs.ComputeCost(res.DecidedCount(), ws, res.Links)
	res.WireKinds = ws.PerKind()
	netobs.PublishCost(reg, res.Cost)

	er.abortMu.Lock()
	err := er.abortErr
	er.abortMu.Unlock()
	return res, err
}

// demuxLoop decodes one node's inbound packets (splitting batches), feeds
// the shared detector and routes round messages to the owning worker.
func (er *engineRun) demuxLoop(wg *sync.WaitGroup, id model.ProcessID, tr Transport, stop <-chan struct{}) {
	defer wg.Done()
	for {
		select {
		case <-stop:
			return
		case pkt, ok := <-tr.Recv():
			if !ok {
				return
			}
			_ = wire.SplitBatch(pkt.Data, func(frame []byte) error {
				env, err := er.codec.Decode(frame)
				if err != nil {
					return nil // corrupt frame: drop, keep the batch
				}
				er.fds[id].Observe(env)
				if env.Kind.Control() {
					er.metrics.heartbeats.Inc()
					return nil
				}
				if env.Instance >= uint64(er.cfg.Instances) ||
					env.From < 1 || int(env.From) > er.n {
					er.unknown.Inc()
					er.unknownCount.Add(1)
					return nil
				}
				er.workers[int(env.Instance)%len(er.workers)].mb.push(engEvent{node: id, env: env})
				return nil
			})
		}
	}
}

// stateFor maps a routed event to the automaton it addresses.
func (w *engWorker) stateFor(inst uint32, id model.ProcessID) *instState {
	local := int(inst) / len(w.run.workers)
	return &w.states[local*w.run.n+int(id)-1]
}

// enqueue marks st for advancement in the current sweep.
func (w *engWorker) enqueue(st *instState) {
	if st.queued || st.round == 0 {
		return
	}
	st.queued = true
	w.dirty = append(w.dirty, st)
}

// enqueueAll schedules a full rescan — suspicion changed or a WaitBound
// deadline passed, either of which can complete any blocked round.
func (w *engWorker) enqueueAll() {
	for s := range w.states {
		w.enqueue(&w.states[s])
	}
}

// refreshSuspects snapshots each node's suspicion set once per sweep and
// reports whether any changed. Polling here (not per automaton) keeps the
// detector cost independent of the instance count — the whole point.
func (w *engWorker) refreshSuspects() bool {
	changed := false
	for i := 1; i <= w.run.n; i++ {
		s := w.run.fds[i].Suspects()
		if s != w.suspects[i] {
			w.suspects[i] = s
			changed = true
		}
	}
	return changed
}

// loop is the worker body: drain events, advance dirty automata, flush the
// batched sends, sleep until traffic or the tick.
func (w *engWorker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	tick := w.run.cfg.SuspectTimeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	if tick > 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()

	w.enqueueAll() // round 1 bootstrap: every automaton sends
	for {
		if w.refreshSuspects() {
			w.enqueueAll()
		}
		events := w.mb.drain(w.spare)
		for i := range events {
			w.deliver(&events[i])
		}
		w.spare = events
		if !w.nextDeadline.IsZero() && time.Now().After(w.nextDeadline) {
			w.nextDeadline = time.Time{}
			w.enqueueAll()
		}
		for len(w.dirty) > 0 {
			st := w.dirty[len(w.dirty)-1]
			w.dirty = w.dirty[:len(w.dirty)-1]
			st.queued = false
			w.advance(st)
		}
		// Round completions above queued sends on the node batchers; push
		// them out now so peers don't wait out the flush timer.
		for i := 1; i <= w.run.n; i++ {
			if err := w.run.batchers[i].Flush(); err != nil && err != ErrClosed {
				w.run.abort(err)
			}
		}
		if w.active == 0 {
			return
		}
		select {
		case <-w.mb.notify:
		case <-ticker.C:
		case <-w.run.abortCh:
			return
		}
	}
}

// deliver files one round message into its automaton's row.
func (w *engWorker) deliver(ev *engEvent) {
	st := w.stateFor(uint32(ev.env.Instance), ev.node)
	r := ev.env.Round
	if st.round == 0 || r < int(st.round) || r > w.run.maxRounds {
		return // automaton halted, round already closed, or out of range
	}
	row := &st.rows[r]
	if row.msgs == nil {
		row.msgs = make([]rounds.Message, w.run.n+1)
	}
	row.msgs[ev.env.From] = ev.env.Payload
	row.got |= 1 << uint(ev.env.From)
	w.enqueue(st)
}

// advance drives one automaton as far as it can go: send the current
// round's messages if not yet sent, close the round when every peer has
// delivered or is suspected (or the WaitBound expired), transition, repeat.
func (w *engWorker) advance(st *instState) {
	n := w.run.n
	for st.round != 0 {
		r := int(st.round)
		if !st.sent {
			if err := w.sendRound(st, r); err != nil {
				w.run.abort(err)
				w.halt(st)
				return
			}
			st.sent = true
			st.deadline = time.Now().Add(w.run.waitBound)
		}
		row := &st.rows[r]
		suspects := w.suspects[st.id]
		complete := true
		for j := 1; j <= n; j++ {
			pj := model.ProcessID(j)
			if pj == st.id {
				continue
			}
			if row.got&(1<<uint(j)) == 0 && !suspects.Has(pj) {
				complete = false
				break
			}
		}
		if !complete {
			if time.Now().Before(st.deadline) {
				if w.nextDeadline.IsZero() || st.deadline.Before(w.nextDeadline) {
					w.nextDeadline = st.deadline
				}
				return
			}
			// Liveness guard, as in Node.waitRound: proceed with what we have.
			st.waitTimeouts++
			w.run.waitTimeouts.Add(1)
			w.run.metrics.waitTimeouts.Inc()
		}
		in := w.scratch
		for j := range in {
			in[j] = nil
		}
		if row.msgs != nil {
			copy(in, row.msgs)
		}
		in[st.id] = st.selfMsg
		st.proc.Trans(r, in)
		row.msgs = nil // free the payload row; the round is closed
		w.run.metrics.rounds.Inc()
		if !st.decided {
			if v, ok := st.proc.Decision(); ok {
				st.decided = true
				st.decision = v
				w.run.decidedCtr.Inc()
			}
		}
		st.round++
		st.sent = false
		st.selfMsg = nil
		if int(st.round) > w.run.maxRounds {
			w.halt(st)
		}
	}
}

// halt retires an automaton.
func (w *engWorker) halt(st *instState) {
	if st.round != 0 {
		st.round = 0
		w.active--
	}
}

// sendRound transmits st's round-r messages through the owning node's
// batcher, tagged with the instance id.
func (w *engWorker) sendRound(st *instState, r int) error {
	msgs := st.proc.Msgs(r)
	if msgs != nil {
		st.selfMsg = msgs[st.id]
	} else {
		st.selfMsg = nil
	}
	for j := 1; j <= w.run.n; j++ {
		dest := model.ProcessID(j)
		if dest == st.id {
			continue
		}
		var payload rounds.Message
		if msgs != nil {
			payload = msgs[dest]
		}
		env, err := wire.EnvelopeFor(st.id, dest, r, payload)
		if err != nil {
			return err
		}
		env.Instance = uint64(st.inst)
		data, err := w.run.codec.Encode(env)
		if err != nil {
			return err
		}
		if err := w.run.batchers[st.id].Send(dest, data); err != nil {
			return err
		}
	}
	return nil
}
