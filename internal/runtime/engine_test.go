package runtime

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// stubDetector is an inert Detector that records lifecycle calls — enough to
// pin the construction-error cleanup paths of RunEngine and RunCluster.
type stubDetector struct {
	started atomic.Int32
	stopped atomic.Int32
}

func (s *stubDetector) Start()                             { s.started.Add(1) }
func (s *stubDetector) Stop()                              { s.stopped.Add(1) }
func (s *stubDetector) Observe(wire.Envelope)              {}
func (s *stubDetector) Suspects() model.ProcSet            { return 0 }
func (s *stubDetector) NoteRound(int)                      {}
func (s *stubDetector) Instrument(*obs.Registry, obs.Sink) {}
func (s *stubDetector) UseCodec(wire.Codec)                {}
func (s *stubDetector) Name() string                       { return "stub" }
func (s *stubDetector) EverSuspected() model.ProcSet       { return 0 }
func (s *stubDetector) FalseSuspicions() int64             { return 0 }
func (s *stubDetector) Retractions() int64                 { return 0 }
func (s *stubDetector) EncodeErrors() int64                { return 0 }

// failAfterSpec builds stub detectors until node `failAt`, then errors —
// the construction-failure scenario for the leak tests.
func failAfterSpec(failAt int) (*DetectorSpec, *[]*stubDetector) {
	built := &[]*stubDetector{}
	n := 0
	return &DetectorSpec{
		Name: "failing-stub",
		New: func(cfg DetectorConfig) (Detector, error) {
			n++
			if n >= failAt {
				return nil, errors.New("synthetic construction failure")
			}
			d := &stubDetector{}
			*built = append(*built, d)
			return d, nil
		},
	}, built
}

// engineInitials is the equivalence fixture: a handful of distinct proposal
// vectors cycled across instances, so neighbouring instances on the same
// mesh are solving different consensus problems.
var engineInitials = [][]model.Value{
	vals(4, 2, 7),
	vals(1, 9, 5),
	vals(3, 3, 3),
	vals(8, 0, 6),
}

func engineInitialFn(inst int, id model.ProcessID) model.Value {
	return engineInitials[inst%len(engineInitials)][id-1]
}

func runEquivEngine(t *testing.T, groups int) *EngineResult {
	t.Helper()
	res, err := RunEngine(consensus.FloodSetWS{}, EngineConfig{
		Instances: 12, N: 3, T: 1,
		Groups:          groups,
		Initial:         engineInitialFn,
		HeartbeatPeriod: 5 * time.Millisecond,
		SuspectTimeout:  500 * time.Millisecond,
		Metrics:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("RunEngine(groups=%d): %v", groups, err)
	}
	return res
}

// TestEngineMatchesIsolatedClusters is the sharded≡unsharded acceptance
// check: every instance multiplexed on the shared mesh decides exactly what
// an isolated single-instance RunCluster decides from the same proposals.
func TestEngineMatchesIsolatedClusters(t *testing.T) {
	want := make([]model.Value, len(engineInitials))
	for i, initial := range engineInitials {
		cr, err := RunCluster(consensus.FloodSetWS{}, ClusterConfig{
			Kind: rounds.RWS, Initial: initial, T: 1,
			Metrics: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatalf("isolated cluster %d: %v", i, err)
		}
		v, st := cr.Agreement()
		if st != AgreementReached {
			t.Fatalf("isolated cluster %d: verdict %v", i, st)
		}
		want[i] = v
	}

	res := runEquivEngine(t, 3)
	for inst := 0; inst < res.Instances; inst++ {
		v, st := res.InstanceAgreement(inst)
		if st != AgreementReached {
			t.Fatalf("instance %d: verdict %v", inst, st)
		}
		if v != want[inst%len(want)] {
			t.Errorf("instance %d decided %d; isolated cluster decided %d",
				inst, int64(v), int64(want[inst%len(want)]))
		}
		for id := model.ProcessID(1); id <= 3; id++ {
			dv, ok := res.Decision(inst, id)
			if !ok || dv != v {
				t.Errorf("instance %d node %d: decision (%d,%v), want (%d,true)",
					inst, id, int64(dv), ok, int64(v))
			}
		}
	}
	if got := res.DecidedCount(); got != 12*3 {
		t.Errorf("DecidedCount = %d, want 36", got)
	}
}

// TestEngineShardingInvariance: Groups is a throughput knob, not a semantic
// one — the decision vector is identical however instances shard.
func TestEngineShardingInvariance(t *testing.T) {
	one := runEquivEngine(t, 1)
	four := runEquivEngine(t, 4)
	if len(one.Decisions) != len(four.Decisions) {
		t.Fatalf("result sizes differ: %d vs %d", len(one.Decisions), len(four.Decisions))
	}
	for i := range one.Decisions {
		if one.Decided[i] != four.Decided[i] || one.Decisions[i] != four.Decisions[i] {
			t.Errorf("slot %d: groups=1 (%d,%v) vs groups=4 (%d,%v)",
				i, int64(one.Decisions[i]), one.Decided[i],
				int64(four.Decisions[i]), four.Decided[i])
		}
	}
}

// TestEngineUnknownInstanceDrops: a round message carrying an out-of-range
// instance id is dropped at the demultiplexer and counted, without
// disturbing the in-range instances.
func TestEngineUnknownInstanceDrops(t *testing.T) {
	reg := obs.NewRegistry()
	// A 4-endpoint mesh for a 3-node engine: endpoint 4 is the test's hand,
	// planting a stray frame in node 1's inbox before the engine starts.
	nw := NewChanNetwork(4, ChanConfig{MaxDelay: time.Millisecond, Metrics: reg})
	stray, err := wire.Encode(wire.Envelope{
		From: 2, To: 1, Round: 1, Kind: wire.KindD,
		Instance: 99, Payload: consensus.DMsg{V: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Endpoint(4).Send(1, stray); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the delayed delivery land in the inbox

	res, err := RunEngine(consensus.FloodSetWS{}, EngineConfig{
		Instances: 2, N: 3, T: 1,
		Initial:         engineInitialFn,
		Network:         nw,
		HeartbeatPeriod: 5 * time.Millisecond,
		SuspectTimeout:  500 * time.Millisecond,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnknownInstanceDrops != 1 {
		t.Errorf("UnknownInstanceDrops = %d, want 1", res.UnknownInstanceDrops)
	}
	if got := reg.Snapshot().Counter(MetricEngineUnknownInstance); got != 1 {
		t.Errorf("unknown-instance counter = %d, want 1", got)
	}
	for inst := 0; inst < 2; inst++ {
		if _, st := res.InstanceAgreement(inst); st != AgreementReached {
			t.Errorf("instance %d: verdict %v after stray drop", inst, st)
		}
	}
}

// TestEngineBatchedRun: with aggressive batching configured the run still
// reaches agreement everywhere, the batcher counters move, and the shared
// detector's control cost lands in the cost summary.
func TestEngineBatchedRun(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunEngine(consensus.FloodSetWS{}, EngineConfig{
		Instances: 40, N: 3, T: 1,
		Initial:         engineInitialFn,
		Batch:           BatcherConfig{MaxBatch: 8, FlushEvery: 2 * time.Millisecond},
		HeartbeatPeriod: 5 * time.Millisecond,
		SuspectTimeout:  500 * time.Millisecond,
		Metrics:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DecidedCount(); got != 40*3 {
		t.Fatalf("DecidedCount = %d, want 120", got)
	}
	snap := reg.Snapshot()
	if frames := snap.Counter(MetricBatcherFrames); frames == 0 {
		t.Error("batcher saw no frames")
	}
	flushes := snap.Counter(obs.Label(MetricBatcherFlushes, "reason", "count")) +
		snap.Counter(obs.Label(MetricBatcherFlushes, "reason", "timer")) +
		snap.Counter(obs.Label(MetricBatcherFlushes, "reason", "close"))
	if flushes == 0 {
		t.Error("batcher never flushed")
	}
	if res.Cost == nil || res.Cost.Decisions != 120 {
		t.Fatalf("cost summary = %+v, want 120 decisions", res.Cost)
	}
	if got := snap.Counter(MetricEngineInstancesDecided); got != 120 {
		t.Errorf("decisions counter = %d, want 120", got)
	}
}

// TestEngineDetectorFailureStopsPrior: if detector construction fails on a
// later node, the engine stops the already-built detectors before returning
// the error.
func TestEngineDetectorFailureStopsPrior(t *testing.T) {
	spec, built := failAfterSpec(3)
	_, err := RunEngine(consensus.FloodSetWS{}, EngineConfig{
		Instances: 2, N: 3, T: 1,
		Detector: spec,
		Metrics:  obs.NewRegistry(),
	})
	if err == nil {
		t.Fatal("expected a construction error")
	}
	if len(*built) != 2 {
		t.Fatalf("built %d stub detectors, want 2", len(*built))
	}
	for i, d := range *built {
		if d.stopped.Load() == 0 {
			t.Errorf("detector %d never stopped on the error path", i+1)
		}
	}
}
