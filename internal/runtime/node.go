package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// CrashPlan injects a crash into a live node: during round Round the node
// sends its messages to only the first Reach destinations (in increasing
// id order, skipping itself) and then halts without applying the round's
// transition — the live counterpart of the round engines' crash semantics.
// A plan with Round 0 means "never crash".
type CrashPlan struct {
	Round int
	Reach int
}

// NodeConfig configures a live node.
type NodeConfig struct {
	ID      model.ProcessID
	N, T    int
	Initial model.Value

	Transport Transport
	// Kind selects the round discipline: rounds.RS runs wall-clock
	// lock-step rounds (requires a synchronous network and RoundDuration >
	// worst-case round trip); rounds.RWS runs the receive-or-suspect loop
	// over the failure detector.
	Kind rounds.ModelKind

	// RoundDuration paces RS rounds.
	RoundDuration time.Duration
	// Epoch anchors round deadlines so all nodes agree on round boundaries
	// (RS only).
	Epoch time.Time

	// FD is required for RWS. Any Detector implementation works; the
	// cluster builds one per node from ClusterConfig.Detector.
	FD Detector

	// MaxRounds bounds the execution (default t+2, every algorithm's worst
	// case here).
	MaxRounds int

	// WaitBound, when positive, bounds an RWS round's receive-or-suspect
	// wait in wall-clock time. The RWS model itself never needs it — a
	// missing sender is eventually suspected — but an adversarial network
	// that *loses* data messages while heartbeats still flow starves the
	// wait forever (the peer is provably alive, its message provably never
	// coming). On expiry the node proceeds with what it has, the expiry is
	// counted (ssfd_node_wait_timeouts_total) and reported in NodeResult.
	// Zero preserves the unbounded model semantics.
	WaitBound time.Duration

	Crash CrashPlan

	// Metrics receives the node's round-duration histogram, round counter
	// and heartbeat counter. Nil uses the process-wide obs.Default registry.
	Metrics *obs.Registry
	// Codec frames the node's round messages; its tap (if any) sees every
	// encode and decode. The zero value is the plain wire codec.
	Codec wire.Codec
	// Events, when non-nil, receives the node's live event stream
	// (round_start, send, crash, decide); the sink must be safe for
	// concurrent use since every node of a cluster shares it.
	Events obs.Sink
}

// NodeResult is what a finished node reports.
type NodeResult struct {
	ID        model.ProcessID
	Decided   bool
	Decision  model.Value
	DecidedAt int // round
	Crashed   bool
	Rounds    int // rounds completed
	// WaitTimeouts counts RWS rounds cut short by NodeConfig.WaitBound —
	// nonzero only on networks lossy enough to starve receive-or-suspect.
	WaitTimeouts int
	Err          error
}

// Node drives one rounds.Process over a live transport.
type Node struct {
	cfg  NodeConfig
	proc rounds.Process

	mu     sync.Mutex
	byRnd  map[int]map[model.ProcessID]rounds.Message
	arrive chan struct{} // pulsed on message arrival (RWS wakeups)

	stopDemux chan struct{}
	wg        sync.WaitGroup

	metrics nodeMetrics

	result NodeResult
}

// NewNode builds a node for the algorithm.
func NewNode(alg rounds.Algorithm, cfg NodeConfig) (*Node, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("runtime: node %v: nil transport", cfg.ID)
	}
	if cfg.Kind == rounds.RWS && cfg.FD == nil {
		return nil, fmt.Errorf("runtime: node %v: RWS requires a failure detector", cfg.ID)
	}
	if cfg.Kind == rounds.RS && cfg.RoundDuration <= 0 {
		return nil, fmt.Errorf("runtime: node %v: RS requires a positive RoundDuration", cfg.ID)
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = cfg.T + 2
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	return &Node{
		cfg:       cfg,
		proc:      alg.New(rounds.ProcConfig{ID: cfg.ID, N: cfg.N, T: cfg.T, Initial: cfg.Initial}),
		byRnd:     make(map[int]map[model.ProcessID]rounds.Message),
		arrive:    make(chan struct{}, 1),
		stopDemux: make(chan struct{}),
		metrics:   newNodeMetrics(reg, alg.Name(), cfg.Kind),
		result:    NodeResult{ID: cfg.ID},
	}, nil
}

// demuxLoop decodes inbound packets (splitting batch containers), feeds the
// failure detector and files round messages.
func (n *Node) demuxLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopDemux:
			return
		case pkt, ok := <-n.cfg.Transport.Recv():
			if !ok {
				return
			}
			_ = wire.SplitBatch(pkt.Data, func(frame []byte) error {
				n.handleFrame(frame)
				return nil
			})
		}
	}
}

// handleFrame processes one decoded-or-dropped inbound frame.
func (n *Node) handleFrame(frame []byte) {
	env, err := n.cfg.Codec.Decode(frame)
	if err != nil {
		return // corrupt frame: drop
	}
	if n.cfg.FD != nil {
		n.cfg.FD.Observe(env)
	}
	if env.Kind.Control() {
		// Detector control traffic (heartbeat/ping/ack/ring) never
		// reaches the round buffers.
		n.metrics.heartbeats.Inc()
		return
	}
	if env.Instance != 0 {
		// A single-instance node serves instance 0 only; traffic tagged for
		// another instance is a peer's multi-instance engine leaking onto
		// this mesh. Count and drop — filing it would corrupt a round.
		n.metrics.unknownInstance.Inc()
		return
	}
	n.mu.Lock()
	m := n.byRnd[env.Round]
	if m == nil {
		m = make(map[model.ProcessID]rounds.Message, n.cfg.N)
		n.byRnd[env.Round] = m
	}
	_, dup := m[env.From]
	m[env.From] = env.Payload
	n.mu.Unlock()
	if n.cfg.Events != nil && !dup {
		// Per-message arrival record for the causal tracer: one per
		// (sender, round), so duplicated deliveries don't double the
		// happens-before edges.
		n.cfg.Events.Emit(obs.Event{Type: obs.EventArrive, Round: env.Round,
			Proc: int(n.cfg.ID), From: int(env.From)})
	}
	select {
	case n.arrive <- struct{}{}:
	default:
	}
}

// sendRound transmits the round's messages; reach < n−1 sends a prefix only
// (crash semantics). It returns the generated message slice.
func (n *Node) sendRound(round, reach int) ([]rounds.Message, error) {
	msgs := n.proc.Msgs(round)
	var dests []int
	for j := 1; j <= n.cfg.N && len(dests) < reach; j++ {
		if model.ProcessID(j) != n.cfg.ID {
			dests = append(dests, j)
		}
	}
	// The send event precedes the first transmission: a causal tracer on
	// the sink chain must record this broadcast's Lamport clock before any
	// of its packets can land at a receiver (whose arrival event joins with
	// it). The conformance projector ignores send events, and on a
	// transport error below the whole run aborts, so the optimistic
	// emission never misleads a consumer.
	if n.cfg.Events != nil && len(dests) > 0 {
		n.cfg.Events.Emit(obs.Event{Type: obs.EventSend, Round: round, From: int(n.cfg.ID), To: dests})
	}
	for _, j := range dests {
		dest := model.ProcessID(j)
		var payload rounds.Message
		if msgs != nil {
			payload = msgs[dest]
		}
		env, err := wire.EnvelopeFor(n.cfg.ID, dest, round, payload)
		if err != nil {
			return nil, err
		}
		data, err := n.cfg.Codec.Encode(env)
		if err != nil {
			return nil, err
		}
		if err := n.cfg.Transport.Send(dest, data); err != nil {
			return nil, err
		}
	}
	return msgs, nil
}

// gather snapshots the messages received for a round.
func (n *Node) gather(round int) map[model.ProcessID]rounds.Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	src := n.byRnd[round]
	out := make(map[model.ProcessID]rounds.Message, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// Run executes the node to completion in its own goroutine context; callers
// usually invoke it via Cluster. It returns the node's result.
func (n *Node) Run() NodeResult {
	n.wg.Add(1)
	go n.demuxLoop()
	defer func() {
		close(n.stopDemux)
		n.wg.Wait()
	}()

	for round := 1; round <= n.cfg.MaxRounds; round++ {
		roundStart := time.Now()
		if n.cfg.FD != nil {
			n.cfg.FD.NoteRound(round)
		}
		if n.cfg.Events != nil {
			n.cfg.Events.Emit(obs.Event{Type: obs.EventRoundStart, Round: round, Proc: int(n.cfg.ID)})
		}
		reach := n.cfg.N - 1
		crashing := n.cfg.Crash.Round == round
		if crashing {
			reach = n.cfg.Crash.Reach
		}
		msgs, err := n.sendRound(round, reach)
		if err != nil {
			n.result.Err = err
			return n.result
		}
		if crashing {
			// Crash: no transition, no further rounds; the heartbeat
			// broadcaster (if any) dies with the node.
			if n.cfg.FD != nil {
				n.cfg.FD.Stop()
			}
			if n.cfg.Events != nil {
				n.cfg.Events.Emit(obs.Event{Type: obs.EventCrash, Round: round, Proc: int(n.cfg.ID)})
			}
			n.result.Crashed = true
			return n.result
		}

		received, ok := n.waitRound(round)
		if !ok {
			n.result.Err = fmt.Errorf("runtime: node %v: round %d wait aborted", n.cfg.ID, round)
			return n.result
		}
		if n.cfg.Events != nil {
			// Reception record: the senders whose round messages arrived
			// before this node closed the round. Emitted even when empty —
			// round completion itself is what the conformance projector
			// needs to observe.
			peers := make([]int, 0, len(received))
			for j := 1; j <= n.cfg.N; j++ {
				if _, got := received[model.ProcessID(j)]; got {
					peers = append(peers, j)
				}
			}
			n.cfg.Events.Emit(obs.Event{Type: obs.EventRecv, Round: round, Proc: int(n.cfg.ID), Peers: peers})
		}
		in := make([]rounds.Message, n.cfg.N+1)
		for from, payload := range received {
			in[from] = payload
		}
		if msgs != nil {
			in[n.cfg.ID] = msgs[n.cfg.ID] // self-delivery
		}
		n.proc.Trans(round, in)
		n.result.Rounds = round
		n.metrics.rounds.Inc()
		n.metrics.roundDuration.Observe(time.Since(roundStart).Nanoseconds())
		if !n.result.Decided {
			if v, ok := n.proc.Decision(); ok {
				n.result.Decided = true
				n.result.Decision = v
				n.result.DecidedAt = round
				if n.cfg.Events != nil {
					n.cfg.Events.Emit(obs.Event{Type: obs.EventDecide, Round: round,
						Proc: int(n.cfg.ID), Value: obs.Int64(int64(v))})
				}
			}
		}
	}
	return n.result
}

// waitRound blocks until the round's reception condition holds: the RS
// deadline passed, or (RWS) every peer has delivered or is suspected.
func (n *Node) waitRound(round int) (map[model.ProcessID]rounds.Message, bool) {
	switch n.cfg.Kind {
	case rounds.RS:
		deadline := n.cfg.Epoch.Add(time.Duration(round) * n.cfg.RoundDuration)
		timer := time.NewTimer(time.Until(deadline))
		defer timer.Stop()
		<-timer.C
		return n.gather(round), true
	case rounds.RWS:
		ticker := time.NewTicker(500 * time.Microsecond)
		defer ticker.Stop()
		var bound <-chan time.Time
		if n.cfg.WaitBound > 0 {
			timer := time.NewTimer(n.cfg.WaitBound)
			defer timer.Stop()
			bound = timer.C
		}
		for {
			got := n.gather(round)
			suspects := n.cfg.FD.Suspects()
			complete := true
			for j := 1; j <= n.cfg.N; j++ {
				pj := model.ProcessID(j)
				if pj == n.cfg.ID {
					continue
				}
				if _, ok := got[pj]; !ok && !suspects.Has(pj) {
					complete = false
					break
				}
			}
			if complete {
				return got, true
			}
			select {
			case <-n.arrive:
			case <-ticker.C:
			case <-bound:
				// Liveness guard: the network is losing data messages from
				// peers the detector (correctly) refuses to suspect.
				n.result.WaitTimeouts++
				n.metrics.waitTimeouts.Inc()
				return got, true
			}
		}
	default:
		return nil, false
	}
}
