package runtime

import (
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Batcher metric names. Flushes are labelled by what triggered them so the
// exposition endpoint shows whether a workload is count-bound (healthy
// amortization) or timer-bound (traffic too sparse to batch).
const (
	MetricBatcherFlushes = "ssfd_batcher_flushes_total" // labelled {reason="count"|"timer"|"close"}
	MetricBatcherFrames  = "ssfd_batcher_frames_total"
)

// BatcherConfig tunes per-link send batching.
type BatcherConfig struct {
	// MaxBatch flushes a link once this many frames are pending
	// (default 32).
	MaxBatch int
	// FlushEvery bounds how long a pending frame may wait for company
	// before the timer flushes it (default 500µs). Worst-case added
	// latency is below 2×FlushEvery (the background flusher ticks at
	// FlushEvery and a frame can arrive just after a tick).
	FlushEvery time.Duration
	// Metrics receives the batcher's counters. Nil uses obs.Default.
	Metrics *obs.Registry
}

// Batcher wraps a Transport and coalesces outbound frames per destination
// into wire batch containers, flushing a link when MaxBatch frames are
// pending or the FlushEvery timer fires. A flush holding a single frame is
// sent bare — un-batched traffic is byte-identical with or without the
// wrapper, so a Batcher can front any envelope stream whose receiver drains
// packets through wire.SplitBatch.
//
// The engine routes per-instance round traffic through a Batcher but gives
// the shared failure detector the raw endpoint: control traffic is
// latency-sensitive (a delayed heartbeat is a false suspicion) and already
// amortized by being per-process.
type Batcher struct {
	inner Transport
	cfg   BatcherConfig

	mu      sync.Mutex
	pending []linkPending // indexed by destination process id
	closed  bool

	done chan struct{}
	wg   sync.WaitGroup

	flushCount *obs.Counter
	flushTimer *obs.Counter
	flushClose *obs.Counter
	frames     *obs.Counter
}

// linkPending is one destination's unsent frames. The first frame is kept
// bare so a single-frame flush skips the container; the second arrival
// promotes both into a batch buffer.
type linkPending struct {
	first []byte
	batch []byte
	count int
}

// detach hands the pending buffer to the caller and resets the link. The
// flushed slice is surrendered (not recycled): the inner transport may hold
// a reference to it until delivery, so reusing it for the next batch would
// corrupt in-flight packets.
func (p *linkPending) detach() []byte {
	var out []byte
	if p.count == 1 {
		out, p.first = p.first, nil
	} else {
		out, p.batch = p.batch, nil
	}
	p.count = 0
	return out
}

var _ Transport = (*Batcher)(nil)

// NewBatcher wraps inner with per-link send batching. The wrapper owns a
// background flusher goroutine; Close joins it and flushes what is pending.
func NewBatcher(inner Transport, cfg BatcherConfig) *Batcher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 500 * time.Microsecond
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	l := func(reason string) *obs.Counter {
		return reg.Counter(obs.Label(MetricBatcherFlushes, "reason", reason))
	}
	b := &Batcher{
		inner:      inner,
		cfg:        cfg,
		done:       make(chan struct{}),
		flushCount: l("count"),
		flushTimer: l("timer"),
		flushClose: l("close"),
		frames:     reg.Counter(MetricBatcherFrames),
	}
	b.wg.Add(1)
	go b.flushLoop()
	return b
}

// LocalID implements Transport.
func (b *Batcher) LocalID() model.ProcessID { return b.inner.LocalID() }

// Recv implements Transport. Receiving is untouched — batching is a
// send-side concern; the peer's Batcher (or bare sender) decides what
// arrives here.
func (b *Batcher) Recv() <-chan Packet { return b.inner.Recv() }

// Send implements Transport. The frame is copied into the destination's
// pending buffer, so the caller may reuse data immediately.
func (b *Batcher) Send(to model.ProcessID, data []byte) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	for int(to) >= len(b.pending) {
		b.pending = append(b.pending, linkPending{})
	}
	p := &b.pending[to]
	switch p.count {
	case 0:
		p.first = append(p.first[:0], data...)
	case 1:
		p.batch = wire.AppendToBatch(p.batch[:0], p.first)
		p.batch = wire.AppendToBatch(p.batch, data)
	default:
		p.batch = wire.AppendToBatch(p.batch, data)
	}
	p.count++
	b.frames.Inc()
	if p.count >= b.cfg.MaxBatch {
		return b.flushLocked(to, b.flushCount)
	}
	b.mu.Unlock()
	return nil
}

// Flush sends every pending frame immediately. The engine calls it at the
// end of a shard sweep so a round's last messages never wait out the timer.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	return b.flushAllLocked(b.flushCount)
}

// Close flushes pending traffic, stops the flusher and closes the inner
// transport.
func (b *Batcher) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	err := b.flushAllLocked(b.flushClose)
	close(b.done)
	b.wg.Wait()
	if cerr := b.inner.Close(); err == nil {
		err = cerr
	}
	return err
}

// flushLocked sends destination to's pending buffer. It is called with
// b.mu held and releases it (the inner Send must not run under the lock:
// a TCP endpoint can block there, and the flusher would deadlock with
// concurrent Sends).
func (b *Batcher) flushLocked(to model.ProcessID, reason *obs.Counter) error {
	out := b.pending[to].detach()
	b.mu.Unlock()
	reason.Inc()
	return b.inner.Send(to, out)
}

// flushAllLocked drains every destination with pending frames. Called with
// b.mu held; releases it.
func (b *Batcher) flushAllLocked(reason *obs.Counter) error {
	type out struct {
		to   model.ProcessID
		data []byte
	}
	var outs []out
	for to := range b.pending {
		p := &b.pending[to]
		if p.count == 0 {
			continue
		}
		outs = append(outs, out{model.ProcessID(to), p.detach()})
	}
	b.mu.Unlock()
	var err error
	for _, o := range outs {
		reason.Inc()
		if serr := b.inner.Send(o.to, o.data); err == nil {
			err = serr
		}
	}
	return err
}

// flushLoop is the background timer flush.
func (b *Batcher) flushLoop() {
	defer b.wg.Done()
	ticker := time.NewTicker(b.cfg.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			b.mu.Lock()
			if b.closed {
				b.mu.Unlock()
				return
			}
			_ = b.flushAllLocked(b.flushTimer)
		case <-b.done:
			return
		}
	}
}
