// Package runtime is the live realization of the paper's models: processes
// are goroutines, links are channels (or TCP connections), failure
// detection is a real heartbeat timeout, and the round structures of RS and
// RWS are driven by wall-clock deadlines and receive-or-suspect loops
// respectively. Where the simulation packages (rounds, step, emul) give
// exact adversarial control, this package shows the same algorithms — and
// the same separations — running under real concurrency.
//
// Lifecycle discipline: every goroutine started by this package is owned by
// a struct and joined on Close/Wait; nothing is fire-and-forget.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/netobs"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Packet is a raw message as seen by a transport. It is an alias of
// wire.Packet so that transport middleware (package faults) interoperates
// with this package without an import cycle.
type Packet = wire.Packet

// Transport is one endpoint of a network: a node sends encoded envelopes
// and receives packets on a channel.
type Transport interface {
	// LocalID returns the endpoint's process identity.
	LocalID() model.ProcessID
	// Send transmits data to the destination. It never blocks on the
	// receiver; delivery is asynchronous.
	Send(to model.ProcessID, data []byte) error
	// Recv returns the endpoint's delivery channel. The channel is closed
	// when the transport closes.
	Recv() <-chan Packet
	// Close shuts the endpoint down and releases its goroutines.
	Close() error
}

// ErrClosed is returned by Send after the network or endpoint closed.
var ErrClosed = errors.New("runtime: transport closed")

// DelayFunc decides the in-flight delay of one message. Returning a
// negative duration drops the message (used to emulate link loss toward
// crashed processes; the models here never lose messages between live
// processes).
type DelayFunc func(from, to model.ProcessID, data []byte) time.Duration

// ChanConfig configures an in-process network.
type ChanConfig struct {
	// MinDelay and MaxDelay bound the uniform random per-message delay.
	// The defaults (0, 1ms) model a fast synchronous network.
	MinDelay, MaxDelay time.Duration
	// Seed drives the random delays.
	Seed int64
	// Delay, if set, overrides the random delay entirely — the hook tests
	// use to play the SP adversary against specific messages.
	Delay DelayFunc
	// Buffer is each endpoint's delivery queue capacity (default 1024).
	Buffer int
	// Metrics receives the transport's message/byte counters (labelled
	// {transport="chan"}). Nil uses the process-wide obs.Default registry.
	Metrics *obs.Registry
	// Flight, if set, mirrors every transport record into the flight
	// recorder.
	Flight *netobs.Recorder
}

// ChanNetwork is a fully connected in-process network with per-message
// delivery delays.
type ChanNetwork struct {
	n   int
	cfg ChanConfig

	mu     sync.Mutex
	rng    *rand.Rand
	closed bool

	inboxes []chan Packet
	done    chan struct{}
	wg      sync.WaitGroup

	tm *netobs.LinkTap
}

// NewChanNetwork builds an n-endpoint in-process network.
func NewChanNetwork(n int, cfg ChanConfig) *ChanNetwork {
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = time.Millisecond
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	nw := &ChanNetwork{
		n:       n,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		inboxes: make([]chan Packet, n+1),
		done:    make(chan struct{}),
		tm:      netobs.NewLinkTap(reg, "chan", cfg.Flight),
	}
	for i := 1; i <= n; i++ {
		nw.inboxes[i] = make(chan Packet, cfg.Buffer)
	}
	return nw
}

// Telemetry returns the network's per-link telemetry tap.
func (nw *ChanNetwork) Telemetry() *netobs.LinkTap { return nw.tm }

// Endpoint returns process id's transport.
func (nw *ChanNetwork) Endpoint(id model.ProcessID) Transport {
	return &chanEndpoint{nw: nw, id: id}
}

// MaxDelay returns the network's delivery bound — the Δ that timeout-based
// failure detection builds on.
func (nw *ChanNetwork) MaxDelay() time.Duration { return nw.cfg.MaxDelay }

// send queues a delayed delivery.
func (nw *ChanNetwork) send(from, to model.ProcessID, data []byte) error {
	if !to.Valid(nw.n) {
		return fmt.Errorf("runtime: send to invalid destination %v", to)
	}
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return ErrClosed
	}
	var delay time.Duration
	if nw.cfg.Delay != nil {
		delay = nw.cfg.Delay(from, to, data)
	} else {
		span := nw.cfg.MaxDelay - nw.cfg.MinDelay
		delay = nw.cfg.MinDelay
		if span > 0 {
			delay += time.Duration(nw.rng.Int63n(int64(span)))
		}
	}
	nw.wg.Add(1)
	nw.mu.Unlock()
	nw.tm.Sent(from, to, len(data))

	if delay < 0 {
		nw.wg.Done()
		nw.tm.Dropped(from, to, netobs.DropLoss) // injected link loss: sent but never delivered
		return nil
	}
	// One goroutine per in-flight message, owned by the network and joined
	// in Close. Message counts in these experiments are small.
	go func() {
		defer nw.wg.Done()
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-nw.done:
			return
		}
		pkt := Packet{From: from, Data: data}
		select {
		case nw.inboxes[to] <- pkt:
			nw.tm.Received(from, to, len(data))
			nw.tm.QueueDepth(from, to, len(nw.inboxes[to]))
		case <-nw.done:
		default:
			// Inbox full: a stalled receiver must not wedge the delivery
			// goroutine (and, transitively, Close) forever. The overflow is
			// documented link loss, visible in the dropped counter.
			nw.tm.Dropped(from, to, netobs.DropOverflow)
		}
	}()
	return nil
}

// Close shuts the network down and joins all in-flight deliveries.
func (nw *ChanNetwork) Close() error {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return nil
	}
	nw.closed = true
	close(nw.done)
	nw.mu.Unlock()
	nw.wg.Wait()
	return nil
}

type chanEndpoint struct {
	nw *ChanNetwork
	id model.ProcessID
}

var _ Transport = (*chanEndpoint)(nil)

// LocalID implements Transport.
func (e *chanEndpoint) LocalID() model.ProcessID { return e.id }

// Send implements Transport.
func (e *chanEndpoint) Send(to model.ProcessID, data []byte) error {
	return e.nw.send(e.id, to, data)
}

// Recv implements Transport.
func (e *chanEndpoint) Recv() <-chan Packet { return e.nw.inboxes[e.id] }

// Close implements Transport. Endpoints share the network's lifetime; a
// single endpoint close is a no-op so that one crashing node does not tear
// the network down for the others.
func (e *chanEndpoint) Close() error { return nil }
