package runtime

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// recvFrames drains one packet from t and splits it into frames.
func recvFrames(tb testing.TB, tr Transport, timeout time.Duration) [][]byte {
	tb.Helper()
	select {
	case pkt := <-tr.Recv():
		var frames [][]byte
		if err := wire.SplitBatch(pkt.Data, func(f []byte) error {
			frames = append(frames, append([]byte(nil), f...))
			return nil
		}); err != nil {
			tb.Fatalf("split received packet: %v", err)
		}
		return frames
	case <-time.After(timeout):
		tb.Fatalf("no packet within %v", timeout)
		return nil
	}
}

func TestBatcherCountFlush(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{Metrics: obs.NewRegistry(), MaxDelay: 100 * time.Microsecond})
	defer nw.Close()
	b := NewBatcher(nw.Endpoint(1), BatcherConfig{
		MaxBatch:   3,
		FlushEvery: time.Hour, // the timer must not fire; only the count threshold may flush
		Metrics:    obs.NewRegistry(),
	})
	defer b.Close()

	var sent [][]byte
	for i := 1; i <= 3; i++ {
		frame, err := wire.Encode(wire.Envelope{From: 1, To: 2, Round: i, Kind: wire.KindNull, Instance: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		sent = append(sent, frame)
		if err := b.Send(2, frame); err != nil {
			t.Fatal(err)
		}
	}
	frames := recvFrames(t, nw.Endpoint(2), 2*time.Second)
	if len(frames) != 3 {
		t.Fatalf("received %d frames, want 3 in one batch", len(frames))
	}
	for i, f := range frames {
		if string(f) != string(sent[i]) {
			t.Fatalf("frame %d altered in flight", i)
		}
	}
}

func TestBatcherTimerFlushSingleFrameIsBare(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{Metrics: obs.NewRegistry(), MaxDelay: 100 * time.Microsecond})
	defer nw.Close()
	b := NewBatcher(nw.Endpoint(1), BatcherConfig{
		MaxBatch:   100,
		FlushEvery: time.Millisecond,
		Metrics:    obs.NewRegistry(),
	})
	defer b.Close()

	frame, err := wire.Encode(wire.Envelope{From: 1, To: 2, Round: 9, Kind: wire.KindNull})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-nw.Endpoint(2).Recv():
		// A lone frame must be flushed by the timer AND travel bare: the
		// container wrapper would cost 2 bytes on every unbatched message.
		if wire.IsBatch(pkt.Data) {
			t.Fatalf("single-frame flush arrived wrapped: %x", pkt.Data)
		}
		if string(pkt.Data) != string(frame) {
			t.Fatalf("frame altered: %x vs %x", pkt.Data, frame)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer flush never delivered the frame")
	}
}

func TestBatcherExplicitFlush(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{Metrics: obs.NewRegistry(), MaxDelay: 100 * time.Microsecond})
	defer nw.Close()
	b := NewBatcher(nw.Endpoint(1), BatcherConfig{
		MaxBatch:   100,
		FlushEvery: time.Hour,
		Metrics:    obs.NewRegistry(),
	})
	defer b.Close()

	for i := 1; i <= 2; i++ {
		frame, err := wire.Encode(wire.Envelope{From: 1, To: 2, Round: i, Kind: wire.KindNull})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Send(2, frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	frames := recvFrames(t, nw.Endpoint(2), 2*time.Second)
	if len(frames) != 2 {
		t.Fatalf("explicit flush delivered %d frames, want 2", len(frames))
	}
}

func TestBatcherCloseFlushesAndRejects(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{Metrics: obs.NewRegistry(), MaxDelay: 100 * time.Microsecond})
	defer nw.Close()
	b := NewBatcher(nw.Endpoint(1), BatcherConfig{
		MaxBatch:   100,
		FlushEvery: time.Hour,
		Metrics:    obs.NewRegistry(),
	})

	frame, err := wire.Encode(wire.Envelope{From: 1, To: 2, Round: 1, Kind: wire.KindNull})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(2, frame); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := recvFrames(t, nw.Endpoint(2), 2*time.Second); len(got) != 1 {
		t.Fatalf("close flushed %d frames, want 1", len(got))
	}
	if err := b.Send(2, frame); err != ErrClosed {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}

// TestBatcherInFlightIsolation: a flushed buffer must not be reused while
// the transport may still reference it — later Sends into the same link
// must not corrupt an in-flight batch (run under -race to make the
// aliasing visible).
func TestBatcherInFlightIsolation(t *testing.T) {
	nw := NewChanNetwork(2, ChanConfig{Metrics: obs.NewRegistry(), MaxDelay: 200 * time.Microsecond})
	defer nw.Close()
	b := NewBatcher(nw.Endpoint(1), BatcherConfig{
		MaxBatch:   2,
		FlushEvery: time.Hour,
		Metrics:    obs.NewRegistry(),
	})
	defer b.Close()

	const batches = 50
	want := make([][]byte, 0, 2*batches)
	for i := 0; i < batches; i++ {
		for j := 0; j < 2; j++ {
			frame, err := wire.Encode(wire.Envelope{
				From: 1, To: 2, Round: 2*i + j + 1, Kind: wire.KindNull, Instance: uint64(i),
			})
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, frame)
			if err := b.Send(2, frame); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := make([][]byte, 0, len(want))
	deadline := time.After(5 * time.Second)
	for len(got) < len(want) {
		select {
		case pkt := <-nw.Endpoint(2).Recv():
			if err := wire.SplitBatch(pkt.Data, func(f []byte) error {
				got = append(got, append([]byte(nil), f...))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatalf("received %d/%d frames", len(got), len(want))
		}
	}
	// The channel network delivers packets with independent random delays,
	// so batches may reorder in flight — compare as multisets.
	counts := map[string]int{}
	for _, f := range want {
		counts[string(f)]++
	}
	for _, f := range got {
		counts[string(f)]--
	}
	for frame, c := range counts {
		if c != 0 {
			t.Fatalf("frame %x count off by %d — in-flight corruption", frame, c)
		}
	}
}
