package runtime

import (
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// slowSetupNetwork wraps a network so each Endpoint call stalls, simulating
// a cluster whose per-node startup (TCP dials, cold detectors) is slower
// than the old fixed 10ms epoch headroom.
type slowSetupNetwork struct {
	*ChanNetwork
	stall time.Duration
}

func (s *slowSetupNetwork) Endpoint(id model.ProcessID) Transport {
	time.Sleep(s.stall)
	return s.ChanNetwork.Endpoint(id)
}

// TestClusterSlowStartHitsRoundOneBarrier: the RS epoch is anchored after
// construction, so a cluster whose setup takes several times the old fixed
// headroom still starts round 1 with its deadline ahead of it. Before the
// fix, each node began with the round-1 barrier already in the past,
// collapsing the lock-step schedule (FloodSet then decides without hearing
// the true minimum's owner).
func TestClusterSlowStartHitsRoundOneBarrier(t *testing.T) {
	nw := &slowSetupNetwork{
		ChanNetwork: NewChanNetwork(3, ChanConfig{MaxDelay: time.Millisecond, Metrics: obs.NewRegistry()}),
		stall:       15 * time.Millisecond, // ×3 endpoints = 45ms setup > 10ms
	}
	cr, err := RunCluster(consensus.FloodSet{}, ClusterConfig{
		Kind: rounds.RS, Initial: vals(9, 4, 7), T: 1,
		Network:       nw,
		RoundDuration: 25 * time.Millisecond,
		Metrics:       obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	v, st := cr.Agreement()
	if st != AgreementReached || v != 4 {
		t.Fatalf("slow-start cluster: agreement (%d,%v), want (4,reached)", int64(v), st)
	}
	for i := 1; i < len(cr.Results); i++ {
		if !cr.Results[i].Decided {
			t.Errorf("p%d undecided after slow start", i)
		}
	}
}

// TestClusterEpochHeadroomOverride: an explicit EpochHeadroom survives a
// deliberately generous value (the config plumbs through) and the run still
// agrees.
func TestClusterEpochHeadroomOverride(t *testing.T) {
	cr, err := RunCluster(consensus.FloodSet{}, ClusterConfig{
		Kind: rounds.RS, Initial: vals(2, 5, 8), T: 1,
		EpochHeadroom: 40 * time.Millisecond,
		RoundDuration: 20 * time.Millisecond,
		Metrics:       obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, st := cr.Agreement(); st != AgreementReached || v != 2 {
		t.Fatalf("agreement (%d,%v), want (2,reached)", int64(v), st)
	}
}

// TestClusterDetectorFailureStopsPrior: when a later node's detector
// construction fails, RunCluster stops the detectors it already built
// instead of leaking their eagerly acquired resources.
func TestClusterDetectorFailureStopsPrior(t *testing.T) {
	spec, built := failAfterSpec(3)
	_, err := RunCluster(consensus.FloodSetWS{}, ClusterConfig{
		Kind: rounds.RWS, Initial: vals(1, 2, 3), T: 1,
		Detector: spec,
		Metrics:  obs.NewRegistry(),
	})
	if err == nil {
		t.Fatal("expected a construction error")
	}
	if len(*built) != 2 {
		t.Fatalf("built %d stub detectors, want 2", len(*built))
	}
	for i, d := range *built {
		if d.stopped.Load() == 0 {
			t.Errorf("detector %d never stopped on the error path", i+1)
		}
	}
}

// TestAgreementStatusVerdicts pins the three-way verdict: no decisions is
// AgreementNone, not a disagreement — the old boolean collapsed both into
// false and callers could not tell a liveness miss from a safety violation.
func TestAgreementStatusVerdicts(t *testing.T) {
	cases := []struct {
		name    string
		vals    []model.Value
		decided []bool
		want    AgreementStatus
	}{
		{"all agree", vals(5, 5, 5), []bool{true, true, true}, AgreementReached},
		{"partial agree", vals(5, 0, 5), []bool{true, false, true}, AgreementReached},
		{"disagree", vals(5, 6, 5), []bool{true, true, true}, AgreementViolated},
		{"none decided", vals(0, 0, 0), []bool{false, false, false}, AgreementNone},
	}
	for _, tc := range cases {
		if _, got := agreementOf(tc.vals, tc.decided); got != tc.want {
			t.Errorf("%s: verdict %v, want %v", tc.name, got, tc.want)
		}
	}
	for _, st := range []AgreementStatus{AgreementNone, AgreementReached, AgreementViolated} {
		if st.String() == "" {
			t.Errorf("empty String() for status %d", st)
		}
	}
}

// TestNodeDropsForeignInstanceFromBatch: a single-instance node fronted by a
// batching sender splits the container, observes the control traffic, and
// drops (counting) a round message tagged for an instance it is not serving.
func TestNodeDropsForeignInstanceFromBatch(t *testing.T) {
	reg := obs.NewRegistry()
	nw := NewChanNetwork(4, ChanConfig{MaxDelay: time.Millisecond, Metrics: reg})
	hb, err := wire.Encode(wire.Envelope{From: 2, To: 1, Kind: wire.KindHeartbeat})
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := wire.Encode(wire.Envelope{
		From: 2, To: 1, Round: 1, Kind: wire.KindD,
		Instance: 7, Payload: consensus.DMsg{V: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := wire.AppendToBatch(nil, hb)
	batch = wire.AppendToBatch(batch, foreign)
	if err := nw.Endpoint(4).Send(1, batch); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the delayed delivery land in the inbox

	cr, err := RunCluster(consensus.FloodSetWS{}, ClusterConfig{
		Kind: rounds.RWS, Initial: vals(4, 2, 7), T: 1,
		Network: nw, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, st := cr.Agreement(); st != AgreementReached || v != 2 {
		t.Fatalf("agreement (%d,%v), want (2,reached) despite the stray batch", int64(v), st)
	}
	if got := reg.Snapshot().Counter(MetricNodeUnknownInstance); got != 1 {
		t.Errorf("unknown-instance counter = %d, want 1", got)
	}
}
