package runtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/netobs"
	"repro/internal/obs"
)

// TCPNetwork is a full-mesh TCP realization of Transport over localhost:
// every endpoint listens on an ephemeral port; connections are dialed
// lazily on first send and identified by a uvarint handshake carrying the
// dialer's process id. Each frame is a uvarint length prefix followed by
// the payload bytes.
//
// Resilience: each ordered link is owned by a writer goroutine with a
// bounded send queue. A failed dial or write closes the connection and
// retries with exponential backoff plus seeded jitter, re-dialing and
// draining the queue on reconnect; a frame that exhausts its retry budget
// is dropped and counted ({transport="tcp"} dropped/retries/reconnects
// counters). Send therefore never blocks on a sick peer — the queue
// absorbs the outage, and overflow is documented link loss.
//
// The live experiments default to ChanNetwork (deterministic delays); the
// TCP transport exists to demonstrate the same protocols over a real
// network stack and is exercised by the integration tests, the chaos
// tests, and the livecluster example.
type TCPNetwork struct {
	n   int
	cfg TCPRetryConfig

	mu        sync.Mutex
	closed    bool
	listeners []net.Listener
	addrs     []string
	inboxes   []chan Packet
	links     map[linkKey]*tcpLink
	wg        sync.WaitGroup
	done      chan struct{}

	tm *netobs.LinkTap
}

type linkKey struct{ from, to model.ProcessID }

// TCPRetryConfig tunes the per-link reconnect/retry behavior.
type TCPRetryConfig struct {
	// MaxAttempts bounds dial+write attempts per frame before it is dropped
	// (default 8).
	MaxAttempts int
	// BaseBackoff is the first retry delay; it doubles per attempt up to
	// MaxBackoff (defaults 2ms and 250ms). Each delay gets ±50% seeded
	// jitter so a mesh of retrying links does not thunder in lock-step.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the jitter (per link, mixed with the link identity).
	Seed int64
	// QueueLen is the per-link send queue capacity (default 1024); overflow
	// drops the newest frame with a counter.
	QueueLen int
}

func (c TCPRetryConfig) withDefaults() TCPRetryConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	return c
}

// TCPOption configures a TCPNetwork.
type TCPOption func(*tcpOptions)

type tcpOptions struct {
	metrics *obs.Registry
	retry   TCPRetryConfig
	flight  *netobs.Recorder
}

// WithTCPMetrics redirects the mesh's message/byte counters (labelled
// {transport="tcp"}) to reg instead of obs.Default.
func WithTCPMetrics(reg *obs.Registry) TCPOption {
	return func(o *tcpOptions) { o.metrics = reg }
}

// WithTCPRetry overrides the default reconnect/backoff policy.
func WithTCPRetry(cfg TCPRetryConfig) TCPOption {
	return func(o *tcpOptions) { o.retry = cfg }
}

// WithTCPFlight mirrors the mesh's transport records into a flight
// recorder.
func WithTCPFlight(rec *netobs.Recorder) TCPOption {
	return func(o *tcpOptions) { o.flight = rec }
}

// NewTCPNetwork starts n listeners on 127.0.0.1 and returns the mesh.
func NewTCPNetwork(n int, opts ...TCPOption) (*TCPNetwork, error) {
	options := tcpOptions{metrics: obs.Default}
	for _, opt := range opts {
		opt(&options)
	}
	nw := &TCPNetwork{
		n:         n,
		cfg:       options.retry.withDefaults(),
		listeners: make([]net.Listener, n+1),
		addrs:     make([]string, n+1),
		inboxes:   make([]chan Packet, n+1),
		links:     make(map[linkKey]*tcpLink),
		done:      make(chan struct{}),
		tm:        netobs.NewLinkTap(options.metrics, "tcp", options.flight),
	}
	for i := 1; i <= n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = nw.Close()
			return nil, fmt.Errorf("runtime: TCP listen: %w", err)
		}
		nw.listeners[i] = l
		nw.addrs[i] = l.Addr().String()
		nw.inboxes[i] = make(chan Packet, 1024)
		nw.wg.Add(1)
		go nw.acceptLoop(model.ProcessID(i), l)
	}
	return nw, nil
}

// Telemetry returns the mesh's per-link telemetry tap.
func (nw *TCPNetwork) Telemetry() *netobs.LinkTap { return nw.tm }

// acceptLoop accepts inbound connections for endpoint id and spawns reader
// goroutines.
func (nw *TCPNetwork) acceptLoop(id model.ProcessID, l net.Listener) {
	defer nw.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		nw.wg.Add(1)
		go nw.readLoop(id, conn)
	}
}

// readLoop reads the handshake then frames, delivering packets to the
// endpoint's inbox. A read error (remote close, reset mid-frame) just ends
// the loop: the sending side owns reconnection.
func (nw *TCPNetwork) readLoop(id model.ProcessID, conn net.Conn) {
	defer nw.wg.Done()
	defer func() { _ = conn.Close() }()
	nw.wg.Add(1)
	go func() { // owned watchdog: unblock pending reads on mesh teardown
		defer nw.wg.Done()
		<-nw.done
		_ = conn.Close()
	}()
	br := newByteReader(conn)
	from64, err := binary.ReadUvarint(br)
	if err != nil {
		return
	}
	from := model.ProcessID(from64)
	for {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		select {
		case nw.inboxes[id] <- Packet{From: from, Data: buf}:
			nw.tm.Received(from, id, len(buf))
		case <-nw.done:
			return
		}
	}
}

// Endpoint returns process id's transport.
func (nw *TCPNetwork) Endpoint(id model.ProcessID) Transport {
	return &tcpEndpoint{nw: nw, id: id}
}

// Close tears the mesh down: listeners, links, readers, writers.
func (nw *TCPNetwork) Close() error {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return nil
	}
	nw.closed = true
	close(nw.done)
	for i := 1; i <= nw.n; i++ {
		if nw.listeners[i] != nil {
			_ = nw.listeners[i].Close()
		}
	}
	links := make([]*tcpLink, 0, len(nw.links))
	for _, l := range nw.links {
		links = append(links, l)
	}
	nw.mu.Unlock()
	for _, l := range links {
		l.closeConn()
	}
	nw.wg.Wait()
	return nil
}

// BreakConnections abruptly closes every established outgoing connection —
// the chaos hook the adversity tests (and experiments) use to exercise
// reconnection. In-flight frames may be lost; subsequent sends re-dial
// with backoff and drain their queues.
func (nw *TCPNetwork) BreakConnections() {
	nw.mu.Lock()
	links := make([]*tcpLink, 0, len(nw.links))
	for _, l := range nw.links {
		links = append(links, l)
	}
	nw.mu.Unlock()
	for _, l := range links {
		l.closeConn()
	}
}

// send routes one frame onto the link's queue. It never blocks: a full
// queue (a peer down longer than the queue absorbs) drops the frame with a
// counter, mirroring what a real bounded send buffer does.
func (nw *TCPNetwork) send(from, to model.ProcessID, data []byte) error {
	if !to.Valid(nw.n) {
		return fmt.Errorf("runtime: TCP send to invalid destination %v", to)
	}
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return ErrClosed
	}
	key := linkKey{from, to}
	link := nw.links[key]
	if link == nil {
		link = newTCPLink(nw, from, to)
		nw.links[key] = link
		nw.wg.Add(1)
		go link.writeLoop()
	}
	nw.mu.Unlock()

	frame := binary.AppendUvarint(nil, uint64(len(data)))
	frame = append(frame, data...)
	select {
	case link.queue <- frame:
		nw.tm.Sent(from, to, len(data))
		nw.tm.QueueDepth(from, to, len(link.queue))
		return nil
	default:
		nw.tm.Dropped(from, to, netobs.DropOverflow)
		return nil
	}
}

// tcpLink is one ordered sender→receiver connection, owned by its
// writeLoop goroutine; connMu only guards the conn pointer so Close and
// BreakConnections can sever it from outside.
type tcpLink struct {
	nw       *TCPNetwork
	from, to model.ProcessID
	queue    chan []byte
	rng      *rand.Rand // jitter; only touched by writeLoop

	connMu sync.Mutex
	conn   net.Conn
}

func newTCPLink(nw *TCPNetwork, from, to model.ProcessID) *tcpLink {
	seed := nw.cfg.Seed ^ (int64(from) * 7919) ^ (int64(to) * 104729)
	return &tcpLink{
		nw:    nw,
		from:  from,
		to:    to,
		queue: make(chan []byte, nw.cfg.QueueLen),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// closeConn severs the link's current connection (if any).
func (l *tcpLink) closeConn() {
	l.connMu.Lock()
	if l.conn != nil {
		_ = l.conn.Close()
		l.conn = nil
	}
	l.connMu.Unlock()
}

// setConn publishes a fresh connection.
func (l *tcpLink) setConn(c net.Conn) {
	l.connMu.Lock()
	l.conn = c
	l.connMu.Unlock()
}

// current returns the published connection.
func (l *tcpLink) current() net.Conn {
	l.connMu.Lock()
	defer l.connMu.Unlock()
	return l.conn
}

// backoff sleeps the attempt's jittered exponential delay; false on mesh
// close.
func (l *tcpLink) backoff(attempt int) bool {
	d := l.nw.cfg.BaseBackoff << uint(attempt)
	if d > l.nw.cfg.MaxBackoff || d <= 0 {
		d = l.nw.cfg.MaxBackoff
	}
	// ±50% jitter, seeded per link.
	d = d/2 + time.Duration(l.rng.Int63n(int64(d)))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-l.nw.done:
		return false
	}
}

// ensureConn returns the live connection, dialing (with handshake) if the
// link is down.
func (l *tcpLink) ensureConn() (net.Conn, error) {
	if c := l.current(); c != nil {
		return c, nil
	}
	c, err := net.Dial("tcp", l.nw.addrs[l.to])
	if err != nil {
		return nil, err
	}
	hs := binary.AppendUvarint(nil, uint64(l.from))
	if _, err := c.Write(hs); err != nil {
		_ = c.Close()
		return nil, err
	}
	l.setConn(c)
	l.nw.tm.Reconnect(l.from, l.to)
	return c, nil
}

// writeLoop drains the queue, dialing and re-dialing as needed. Each frame
// gets MaxAttempts tries across connection generations; then it is dropped
// with a counter and the loop moves on — one poisoned frame must not dam
// the link forever.
func (l *tcpLink) writeLoop() {
	defer l.nw.wg.Done()
	for {
		var frame []byte
		select {
		case <-l.nw.done:
			return
		case frame = <-l.queue:
		}
		for attempt := 0; ; attempt++ {
			if attempt >= l.nw.cfg.MaxAttempts {
				l.nw.tm.Dropped(l.from, l.to, netobs.DropGiveUp)
				break
			}
			if attempt > 0 {
				l.nw.tm.Retry(l.from, l.to)
				if !l.backoff(attempt - 1) {
					return
				}
			}
			conn, err := l.ensureConn()
			if err != nil {
				continue
			}
			if _, err := conn.Write(frame); err != nil {
				l.closeConn()
				continue
			}
			break
		}
	}
}

type tcpEndpoint struct {
	nw *TCPNetwork
	id model.ProcessID
}

var _ Transport = (*tcpEndpoint)(nil)

// LocalID implements Transport.
func (e *tcpEndpoint) LocalID() model.ProcessID { return e.id }

// Send implements Transport.
func (e *tcpEndpoint) Send(to model.ProcessID, data []byte) error {
	return e.nw.send(e.id, to, data)
}

// Recv implements Transport.
func (e *tcpEndpoint) Recv() <-chan Packet { return e.nw.inboxes[e.id] }

// Close implements Transport (endpoints share the mesh's lifetime).
func (e *tcpEndpoint) Close() error { return nil }

// byteReader adapts an io.Reader to io.ByteReader for ReadUvarint while
// preserving io.Reader for ReadFull.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

// ReadByte implements io.ByteReader.
func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// Read implements io.Reader.
func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }
