package runtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/model"
	"repro/internal/obs"
)

// TCPNetwork is a full-mesh TCP realization of Transport over localhost:
// every endpoint listens on an ephemeral port; connections are dialed
// lazily on first send and identified by a uvarint handshake carrying the
// dialer's process id. Each frame is a uvarint length prefix followed by
// the payload bytes.
//
// The live experiments default to ChanNetwork (deterministic delays); the
// TCP transport exists to demonstrate the same protocols over a real
// network stack and is exercised by the integration tests and the
// livecluster example.
type TCPNetwork struct {
	n int

	mu        sync.Mutex
	closed    bool
	listeners []net.Listener
	addrs     []string
	inboxes   []chan Packet
	conns     []map[model.ProcessID]net.Conn // conns[i][j]: i's outgoing conn to j
	wg        sync.WaitGroup
	done      chan struct{}

	tm transportMetrics
}

// TCPOption configures a TCPNetwork.
type TCPOption func(*tcpOptions)

type tcpOptions struct {
	metrics *obs.Registry
}

// WithTCPMetrics redirects the mesh's message/byte counters (labelled
// {transport="tcp"}) to reg instead of obs.Default.
func WithTCPMetrics(reg *obs.Registry) TCPOption {
	return func(o *tcpOptions) { o.metrics = reg }
}

// NewTCPNetwork starts n listeners on 127.0.0.1 and returns the mesh.
func NewTCPNetwork(n int, opts ...TCPOption) (*TCPNetwork, error) {
	options := tcpOptions{metrics: obs.Default}
	for _, opt := range opts {
		opt(&options)
	}
	nw := &TCPNetwork{
		n:         n,
		listeners: make([]net.Listener, n+1),
		addrs:     make([]string, n+1),
		inboxes:   make([]chan Packet, n+1),
		conns:     make([]map[model.ProcessID]net.Conn, n+1),
		done:      make(chan struct{}),
		tm:        newTransportMetrics(options.metrics, "tcp"),
	}
	for i := 1; i <= n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = nw.Close()
			return nil, fmt.Errorf("runtime: TCP listen: %w", err)
		}
		nw.listeners[i] = l
		nw.addrs[i] = l.Addr().String()
		nw.inboxes[i] = make(chan Packet, 1024)
		nw.conns[i] = make(map[model.ProcessID]net.Conn)
		nw.wg.Add(1)
		go nw.acceptLoop(model.ProcessID(i), l)
	}
	return nw, nil
}

// acceptLoop accepts inbound connections for endpoint id and spawns reader
// goroutines.
func (nw *TCPNetwork) acceptLoop(id model.ProcessID, l net.Listener) {
	defer nw.wg.Done()
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		nw.wg.Add(1)
		go nw.readLoop(id, conn)
	}
}

// readLoop reads the handshake then frames, delivering packets to the
// endpoint's inbox.
func (nw *TCPNetwork) readLoop(id model.ProcessID, conn net.Conn) {
	defer nw.wg.Done()
	defer func() { _ = conn.Close() }()
	br := newByteReader(conn)
	from64, err := binary.ReadUvarint(br)
	if err != nil {
		return
	}
	from := model.ProcessID(from64)
	for {
		l, err := binary.ReadUvarint(br)
		if err != nil {
			return
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		select {
		case nw.inboxes[id] <- Packet{From: from, Data: buf}:
			nw.tm.received(len(buf))
		case <-nw.done:
			return
		}
	}
}

// Endpoint returns process id's transport.
func (nw *TCPNetwork) Endpoint(id model.ProcessID) Transport {
	return &tcpEndpoint{nw: nw, id: id}
}

// Close tears the mesh down.
func (nw *TCPNetwork) Close() error {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return nil
	}
	nw.closed = true
	close(nw.done)
	for i := 1; i <= nw.n; i++ {
		if nw.listeners[i] != nil {
			_ = nw.listeners[i].Close()
		}
		for _, c := range nw.conns[i] {
			_ = c.Close()
		}
	}
	nw.mu.Unlock()
	nw.wg.Wait()
	return nil
}

// send dials lazily and writes one frame.
func (nw *TCPNetwork) send(from, to model.ProcessID, data []byte) error {
	if !to.Valid(nw.n) {
		return fmt.Errorf("runtime: TCP send to invalid destination %v", to)
	}
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return ErrClosed
	}
	conn, ok := nw.conns[from][to]
	if !ok {
		c, err := net.Dial("tcp", nw.addrs[to])
		if err != nil {
			nw.mu.Unlock()
			return fmt.Errorf("runtime: TCP dial %v→%v: %w", from, to, err)
		}
		// Handshake: announce the dialer's identity.
		hs := binary.AppendUvarint(nil, uint64(from))
		if _, err := c.Write(hs); err != nil {
			nw.mu.Unlock()
			_ = c.Close()
			return fmt.Errorf("runtime: TCP handshake %v→%v: %w", from, to, err)
		}
		nw.conns[from][to] = c
		conn = c
	}
	frame := binary.AppendUvarint(nil, uint64(len(data)))
	frame = append(frame, data...)
	_, err := conn.Write(frame)
	nw.mu.Unlock()
	if err != nil {
		return fmt.Errorf("runtime: TCP write %v→%v: %w", from, to, err)
	}
	nw.tm.sent(len(data))
	return nil
}

type tcpEndpoint struct {
	nw *TCPNetwork
	id model.ProcessID
}

var _ Transport = (*tcpEndpoint)(nil)

// LocalID implements Transport.
func (e *tcpEndpoint) LocalID() model.ProcessID { return e.id }

// Send implements Transport.
func (e *tcpEndpoint) Send(to model.ProcessID, data []byte) error {
	return e.nw.send(e.id, to, data)
}

// Recv implements Transport.
func (e *tcpEndpoint) Recv() <-chan Packet { return e.nw.inboxes[e.id] }

// Close implements Transport (endpoints share the mesh's lifetime).
func (e *tcpEndpoint) Close() error { return nil }

// byteReader adapts an io.Reader to io.ByteReader for ReadUvarint while
// preserving io.Reader for ReadFull.
type byteReader struct {
	r   io.Reader
	one [1]byte
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

// ReadByte implements io.ByteReader.
func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// Read implements io.Reader.
func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }
