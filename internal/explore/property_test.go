package explore

import (
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/rounds"
)

// TestEnumeratedPlansAllLegal cross-checks the enumerator against the
// engine's validator: every plan EnumeratePlans emits for a live engine
// view must be accepted by Step. The views are produced by driving engines
// under random adversaries first, so obligations, partial alive-sets and
// exhausted budgets all occur.
func TestEnumeratedPlansAllLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		kind := rounds.RS
		if trial%2 == 1 {
			kind = rounds.RWS
		}
		n := 3 + trial%3
		tol := 1 + trial%2
		initial := make([]model.Value, n)
		for i := range initial {
			initial[i] = model.Value(rng.Intn(3))
		}
		eng, err := rounds.NewEngine(kind, consensus.FloodSetWS{}, initial, tol)
		if err != nil {
			t.Fatal(err)
		}
		// Random prefix of 0..2 rounds.
		adv := rounds.NewRandomAdversary(int64(trial), 0.4, 0.4)
		for k := rng.Intn(3); k > 0 && !eng.Done(); k-- {
			if err := eng.Step(adv); err != nil {
				t.Fatal(err)
			}
		}
		view := eng.NextView()
		plans := EnumeratePlans(view, 0)
		if len(plans) == 0 {
			t.Fatalf("trial %d: no plans enumerated", trial)
		}
		for _, plan := range plans {
			branch, err := eng.Clone()
			if err != nil {
				t.Fatal(err)
			}
			scripted := plan
			if err := branch.Step(rounds.AdversaryFunc(func(*rounds.View) rounds.Plan { return scripted })); err != nil {
				t.Fatalf("trial %d: enumerated plan %v rejected: %v", trial, plan, err)
			}
		}
	}
}

// TestExploreAgreesWithRandomSampling: any behaviour a random adversary can
// produce must appear in the exhaustive enumeration — checked via the
// decision-vector fingerprints of runs.
func TestExploreAgreesWithRandomSampling(t *testing.T) {
	initial := []model.Value{0, 1, 2}
	fingerprint := func(run *rounds.Run) [8]int64 {
		var fp [8]int64
		for p := 1; p <= run.N; p++ {
			fp[p] = int64(run.DecisionOf[p])
			if run.DecidedAt[p] == 0 {
				fp[p] = -999
			}
			fp[p+run.N] = int64(run.CrashRound[p])
		}
		return fp
	}
	enumerated := make(map[[8]int64]bool)
	_, err := Runs(rounds.RWS, consensus.FloodSetWS{}, initial, 1, Options{}, func(run *rounds.Run) bool {
		if !run.Truncated {
			enumerated[fingerprint(run)] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 300; seed++ {
		adv := rounds.NewRandomAdversary(seed, 0.5, 0.5)
		run, err := rounds.RunAlgorithm(rounds.RWS, consensus.FloodSetWS{}, initial, 1, adv)
		if err != nil {
			t.Fatal(err)
		}
		if !enumerated[fingerprint(run)] {
			t.Fatalf("seed %d produced a run outside the exhaustive space: %s", seed, run)
		}
	}
}

// TestLargeSystemStress: the engines handle n = 32 and n = 64 with many
// simultaneous crashes; the spec holds and the run completes promptly.
func TestLargeSystemStress(t *testing.T) {
	for _, n := range []int{32, 64} {
		initial := make([]model.Value, n)
		for i := range initial {
			initial[i] = model.Value(i % 7)
		}
		tol := n/4 - 1
		for seed := int64(0); seed < 5; seed++ {
			for _, kind := range []rounds.ModelKind{rounds.RS, rounds.RWS} {
				alg := rounds.Algorithm(consensus.FloodSet{})
				if kind == rounds.RWS {
					alg = consensus.FloodSetWS{}
				}
				adv := rounds.NewRandomAdversary(seed, 0.6, 0.4)
				run, err := rounds.RunAlgorithm(kind, alg, initial, tol, adv)
				if err != nil {
					t.Fatalf("n=%d %v seed=%d: %v", n, kind, seed, err)
				}
				if bad := check.FirstViolation(run); bad != nil {
					t.Fatalf("n=%d %v seed=%d: %s", n, kind, seed, bad)
				}
			}
		}
	}
}
