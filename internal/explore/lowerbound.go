package explore

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
)

// RefutationKind classifies how a candidate fast RWS algorithm fails.
type RefutationKind int

const (
	// NotRoundOne: the algorithm has a failure-free run in which some
	// process does not decide at round 1, so Λ(A) ≥ 2 holds directly.
	NotRoundOne RefutationKind = iota + 1
	// AgreementViolation: a concrete RWS-admissible run in which two
	// processes decide differently.
	AgreementViolation
	// ValidityViolation: a concrete failure-free run in which a unanimous
	// initial configuration does not decide its common value.
	ValidityViolation
)

// String names the refutation kind.
func (k RefutationKind) String() string {
	switch k {
	case NotRoundOne:
		return "not-round-1 (Λ ≥ 2 directly)"
	case AgreementViolation:
		return "uniform agreement violation"
	case ValidityViolation:
		return "uniform validity violation"
	default:
		return fmt.Sprintf("RefutationKind(%d)", int(k))
	}
}

// Refutation is the constructive outcome of RefuteRoundOneRWS: a concrete
// witness run demonstrating that the candidate algorithm cannot combine
// "decide at round 1 of every failure-free run" with uniform consensus in
// RWS.
type Refutation struct {
	Kind   RefutationKind
	Run    *rounds.Run
	Detail string
}

// String renders the refutation.
func (r *Refutation) String() string {
	return fmt.Sprintf("%v: %s\n  witness: %s", r.Kind, r.Detail, r.Run)
}

// RefuteRoundOneRWS mechanizes the lower-bound argument behind the paper's
// §5.3 claim (from the companion paper [7]) that no uniform consensus
// algorithm in RWS decides at round 1 of all failure-free runs: for every
// *deterministic* algorithm it produces a concrete witness run, found as
// follows.
//
//  1. Run the failure-free run from every binary initial configuration C
//     and record the common round-1 decision d(C). If some process fails
//     to decide at round 1, the algorithm already has Λ ≥ 2 (NotRoundOne).
//     If a failure-free run itself disagrees or breaks validity, return it.
//  2. Otherwise d is a total function on {0,1}^n. The pending-message
//     scenario X_i(C) — p_i's round-1 broadcast entirely pending, p_i
//     crashing silently during round 2 — leaves p_i's own round-1 view
//     unchanged, so p_i still decides d(C) at round 1, while the survivors
//     observe only (C_j)_{j≠i} and hence decide a value independent of C_i.
//     Uniform agreement would force d(C) to be independent of its i-th
//     coordinate, for every i; but then d is constant, contradicting
//     d(0,…,0)=0 and d(1,…,1)=1 (validity). So either d depends on some
//     coordinate i — and running X_i on the two configs that differ at i
//     yields an explicit disagreement — or d is constant and a unanimous
//     failure-free run breaks validity.
//
// The returned witness is always a complete, RWS-admissible run; callers
// can re-validate it with rounds.Admissible and check.Consensus. Every
// refutation found is counted into obs.Default (MetricRefutations).
func RefuteRoundOneRWS(alg rounds.Algorithm, n, t int) (*Refutation, error) {
	ref, err := refuteRoundOneRWS(alg, n, t)
	if ref != nil {
		obs.Default.Counter(MetricRefutations).Inc()
	}
	return ref, err
}

func refuteRoundOneRWS(alg rounds.Algorithm, n, t int) (*Refutation, error) {
	if n < 2 {
		return nil, fmt.Errorf("explore: RefuteRoundOneRWS needs n ≥ 2, got %d", n)
	}
	if t < 1 {
		return nil, fmt.Errorf("explore: RefuteRoundOneRWS needs t ≥ 1, got %d", t)
	}

	// Step 1: tabulate the round-1 decision d(C) over binary configs.
	nConfigs := 1 << uint(n)
	d := make([]model.Value, nConfigs)
	for mask := 0; mask < nConfigs; mask++ {
		initial := binaryConfig(mask, n)
		run, err := rounds.RunAlgorithm(rounds.RWS, alg, initial[1:], t, rounds.NoFailures)
		if err != nil {
			return nil, fmt.Errorf("explore: failure-free run from %v: %w", initial, err)
		}
		if res := check.UniformValidity(run); !res.OK {
			return &Refutation{Kind: ValidityViolation, Run: run, Detail: res.Detail}, nil
		}
		if res := check.UniformAgreement(run); !res.OK {
			return &Refutation{Kind: AgreementViolation, Run: run, Detail: res.Detail}, nil
		}
		for p := 1; p <= n; p++ {
			if run.DecidedAt[p] != 1 {
				return &Refutation{
					Kind: NotRoundOne,
					Run:  run,
					Detail: fmt.Sprintf("in the failure-free run from %v, %v decides at round %d, not round 1",
						initial[1:], model.ProcessID(p), run.DecidedAt[p]),
				}, nil
			}
		}
		d[mask] = run.DecisionOf[1]
	}

	// Step 2: find a coordinate d depends on.
	for i := 1; i <= n; i++ {
		bit := 1 << uint(i-1)
		for mask := 0; mask < nConfigs; mask++ {
			if mask&bit != 0 {
				continue
			}
			lo, hi := mask, mask|bit
			if d[lo] == d[hi] {
				continue
			}
			// d depends on coordinate i between configs lo and hi. Run the
			// pending scenario on both; the survivors decide identically
			// (they cannot see coordinate i), so one of the two runs
			// disagrees with p_i's round-1 decision.
			runLo, err := pendingScenario(alg, binaryConfig(lo, n), t, model.ProcessID(i))
			if err != nil {
				return nil, err
			}
			runHi, err := pendingScenario(alg, binaryConfig(hi, n), t, model.ProcessID(i))
			if err != nil {
				return nil, err
			}
			for _, w := range []*rounds.Run{runLo, runHi} {
				if res := check.UniformAgreement(w); !res.OK {
					return &Refutation{Kind: AgreementViolation, Run: w, Detail: res.Detail}, nil
				}
			}
			// Defensive: the indistinguishability argument guarantees one
			// of the two runs above disagrees; reaching here means the
			// algorithm behaved non-deterministically.
			return nil, fmt.Errorf("explore: RefuteRoundOneRWS: both pending scenarios agreed "+
				"(d(%v)=%d, d(%v)=%d) — algorithm is not deterministic?",
				binaryConfig(lo, n)[1:], int64(d[lo]), binaryConfig(hi, n)[1:], int64(d[hi]))
		}
	}

	// d is constant: validity must already be broken on some unanimous run.
	allZero := binaryConfig(0, n)
	allOne := binaryConfig(nConfigs-1, n)
	if d[0] != 0 {
		run, err := rounds.RunAlgorithm(rounds.RWS, alg, allZero[1:], t, rounds.NoFailures)
		if err != nil {
			return nil, err
		}
		return &Refutation{
			Kind:   ValidityViolation,
			Run:    run,
			Detail: fmt.Sprintf("unanimous 0 decides %d", int64(d[0])),
		}, nil
	}
	run, err := rounds.RunAlgorithm(rounds.RWS, alg, allOne[1:], t, rounds.NoFailures)
	if err != nil {
		return nil, err
	}
	return &Refutation{
		Kind:   ValidityViolation,
		Run:    run,
		Detail: fmt.Sprintf("unanimous 1 decides %d", int64(d[nConfigs-1])),
	}, nil
}

// pendingScenario runs alg in RWS with p_i's round-1 broadcast entirely
// pending and p_i crashing silently during round 2 — the §5.3 scenario.
func pendingScenario(alg rounds.Algorithm, initial []model.Value, t int, victim model.ProcessID) (*rounds.Run, error) {
	n := len(initial) - 1
	script := &rounds.Script{Plans: []rounds.Plan{
		{Drops: map[model.ProcessID]model.ProcSet{victim: model.FullSet(n).Remove(victim)}},
		{Crashes: map[model.ProcessID]model.ProcSet{victim: 0}},
	}}
	return rounds.RunAlgorithm(rounds.RWS, alg, initial[1:], t, script)
}

// binaryConfig expands a bitmask into an initial configuration with a
// leading unused slot (index 0), matching the package convention:
// bit i-1 of mask is p_i's initial value.
func binaryConfig(mask, n int) []model.Value {
	out := make([]model.Value, n+1)
	for i := 1; i <= n; i++ {
		if mask&(1<<uint(i-1)) != 0 {
			out[i] = 1
		}
	}
	return out
}
