package explore

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
)

// fingerprint canonicalizes a run into a string that determines it
// completely: initial values, per-round crash/reach/drop observations via
// Sent/Reached, and the decision profile. Two runs are the same adversary
// behaviour iff their fingerprints match, so comparing multisets of
// fingerprints compares visited run sets exactly.
func fingerprint(run *rounds.Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%v n=%d t=%d init=%v trunc=%v", run.Algorithm, run.Model, run.N, run.T, run.Initial, run.Truncated)
	for _, rec := range run.Rounds {
		fmt.Fprintf(&b, "|r%d a=%v c=%v", rec.Round, rec.AliveStart, rec.Crashed)
		for p := 1; p <= run.N; p++ {
			if rec.AliveStart.Has(model.ProcessID(p)) {
				fmt.Fprintf(&b, " %d:%v>%v", p, rec.Sent[p], rec.Reached[p])
			}
		}
	}
	fmt.Fprintf(&b, "|cr=%v dec=%v val=%v", run.CrashRound, run.DecidedAt, run.DecisionOf)
	return b.String()
}

// collect explores the space with the given worker count and returns the
// sorted fingerprint multiset plus the stats.
func collect(t *testing.T, kind rounds.ModelKind, alg rounds.Algorithm, initial []model.Value, tol, workers int) ([]string, Stats) {
	t.Helper()
	var mu sync.Mutex
	var fps []string
	stats, err := Runs(kind, alg, initial, tol, Options{Workers: workers}, func(run *rounds.Run) bool {
		fp := fingerprint(run)
		mu.Lock()
		fps = append(fps, fp)
		mu.Unlock()
		return true
	})
	if err != nil {
		t.Fatalf("Runs(workers=%d): %v", workers, err)
	}
	sort.Strings(fps)
	return fps, stats
}

// TestParallelEquivalence is the tentpole property: exploration with 1, 2
// and GOMAXPROCS workers visits exactly the same multiset of runs as the
// sequential DFS, with identical Stats, for FloodSet and A1 in both models.
// A1 only exists for t = 1 (its message pattern hard-codes one silence
// tolerance and the constructor panics otherwise), so the t=2 rows use the
// FloodSet family, which is defined for every t.
func TestParallelEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		kind    rounds.ModelKind
		alg     rounds.Algorithm
		initial []model.Value
		tol     int
	}{
		{"FloodSet/RS/n3t1", rounds.RS, consensus.FloodSet{}, binCfg(0, 1, 1), 1},
		{"FloodSetWS/RWS/n3t1", rounds.RWS, consensus.FloodSetWS{}, binCfg(0, 1, 1), 1},
		{"A1/RS/n3t1", rounds.RS, consensus.A1{}, binCfg(0, 1, 1), 1},
		{"A1/RWS/n3t1", rounds.RWS, consensus.A1{}, binCfg(0, 1, 1), 1},
		{"A1/RS/n4t1", rounds.RS, consensus.A1{}, binCfg(0, 1, 1, 0), 1},
		{"FloodSet/RS/n4t2", rounds.RS, consensus.FloodSet{}, binCfg(0, 1, 1, 0), 2},
		{"FloodSetWS/RWS/n4t2", rounds.RWS, consensus.FloodSetWS{}, binCfg(0, 1, 1, 0), 2},
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && strings.Contains(tc.name, "n4t2") {
				t.Skip("large space in -short mode")
			}
			seqFPs, seqStats := collect(t, tc.kind, tc.alg, tc.initial, tc.tol, 0)
			if len(seqFPs) == 0 {
				t.Fatal("sequential exploration visited no runs")
			}
			for _, w := range workerCounts {
				parFPs, parStats := collect(t, tc.kind, tc.alg, tc.initial, tc.tol, w)
				if parStats != seqStats {
					t.Errorf("workers=%d stats = %+v, sequential = %+v", w, parStats, seqStats)
				}
				if len(parFPs) != len(seqFPs) {
					t.Fatalf("workers=%d visited %d runs, sequential %d", w, len(parFPs), len(seqFPs))
				}
				for i := range seqFPs {
					if parFPs[i] != seqFPs[i] {
						t.Fatalf("workers=%d: visited multiset diverges at element %d:\n  par: %s\n  seq: %s",
							w, i, parFPs[i], seqFPs[i])
					}
				}
			}
		})
	}
}

// TestParallelEarlyStop: a visitor returning false must be invoked exactly
// once more in total (the lockedVisitor contract) and stop every worker,
// with a nil error — the parallel analog of "stop at the first
// counterexample".
func TestParallelEarlyStop(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		var calls atomic.Int64
		stats, err := Runs(rounds.RWS, consensus.FloodSetWS{}, binCfg(0, 1, 1), 1, Options{Workers: w}, func(*rounds.Run) bool {
			calls.Add(1)
			return false
		})
		if err != nil {
			t.Fatalf("workers=%d: early stop should return nil, got %v", w, err)
		}
		if got := calls.Load(); got != 1 {
			t.Errorf("workers=%d: visitor called %d times after returning false, want exactly 1", w, got)
		}
		if stats.Aborted {
			t.Errorf("workers=%d: early stop must not set Aborted", w)
		}
	}
}

// TestParallelBudget: MaxRuns under parallelism visits exactly MaxRuns
// runs, sets Stats.Aborted, and surfaces ErrBudget from every worker
// configuration.
func TestParallelBudget(t *testing.T) {
	const budget = 7
	for _, w := range []int{0, 1, 2, 4} {
		var visited atomic.Int64
		stats, err := Runs(rounds.RWS, consensus.FloodSetWS{}, binCfg(0, 1, 1), 1, Options{Workers: w, MaxRuns: budget}, func(*rounds.Run) bool {
			visited.Add(1)
			return true
		})
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("workers=%d: want ErrBudget, got %v", w, err)
		}
		if !stats.Aborted {
			t.Errorf("workers=%d: Aborted not set on budget exhaustion", w)
		}
		if stats.Runs != budget {
			t.Errorf("workers=%d: Stats.Runs = %d, want exactly %d", w, stats.Runs, budget)
		}
		if got := visited.Load(); got != budget {
			t.Errorf("workers=%d: visitor saw %d runs, want exactly %d", w, got, budget)
		}
	}
}

// TestExploreMergesVisitors drives the merge-friendly Explore entry point
// directly: per-worker counting visitors must fold into the sequential
// total.
type countVisitor struct {
	runs, truncated int
	latencySum      int
}

func (v *countVisitor) Visit(run *rounds.Run) bool {
	v.runs++
	if run.Truncated {
		v.truncated++
		return true
	}
	if l, ok := run.Latency(); ok {
		v.latencySum += l
	}
	return true
}

func (v *countVisitor) Merge(o Visitor) {
	ov := o.(*countVisitor)
	v.runs += ov.runs
	v.truncated += ov.truncated
	v.latencySum += ov.latencySum
}

func TestExploreMergesVisitors(t *testing.T) {
	mk := func() Visitor { return &countVisitor{} }
	seqStats, seqV, err := Explore(rounds.RWS, consensus.FloodSetWS{}, binCfg(0, 1, 1), 1, Options{}, mk)
	if err != nil {
		t.Fatal(err)
	}
	seq := seqV.(*countVisitor)
	if seq.runs != seqStats.Runs {
		t.Fatalf("sequential visitor saw %d runs, stats say %d", seq.runs, seqStats.Runs)
	}
	for _, w := range []int{1, 2, 4} {
		parStats, parV, err := Explore(rounds.RWS, consensus.FloodSetWS{}, binCfg(0, 1, 1), 1, Options{Workers: w}, mk)
		if err != nil {
			t.Fatal(err)
		}
		par := parV.(*countVisitor)
		if *par != *seq {
			t.Errorf("workers=%d merged visitor %+v, sequential %+v", w, *par, *seq)
		}
		if parStats != seqStats {
			t.Errorf("workers=%d stats %+v, sequential %+v", w, parStats, seqStats)
		}
	}
}

// TestParallelMetricsConverge: after a parallel exploration every metric
// shard has been flushed, so the registry counters equal the stats exactly.
func TestParallelMetricsConverge(t *testing.T) {
	reg := obs.NewRegistry()
	stats, err := Runs(rounds.RWS, consensus.FloodSetWS{}, binCfg(0, 1, 1), 1, Options{Workers: 4, Metrics: reg}, func(*rounds.Run) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(MetricRuns).Value(); got != int64(stats.Runs) {
		t.Errorf("%s = %d, stats.Runs = %d", MetricRuns, got, stats.Runs)
	}
	if got := reg.Counter(MetricPlans).Value(); got != int64(stats.Plans) {
		t.Errorf("%s = %d, stats.Plans = %d", MetricPlans, got, stats.Plans)
	}
	if got := reg.Counter(MetricForks).Value(); got != int64(stats.Clones) {
		t.Errorf("%s = %d, stats.Clones = %d", MetricForks, got, stats.Clones)
	}
	if got := reg.Counter(MetricTruncated).Value(); got != int64(stats.Truncated) {
		t.Errorf("%s = %d, stats.Truncated = %d", MetricTruncated, got, stats.Truncated)
	}
}

// TestMaxCrashesCapIncludesObligated is the regression test for the cap
// bug: in RWS a dropper is obligated to crash in the next round, and the
// old cap applied only to the *extra* crash set on top of the obligation,
// so MaxCrashesPerRound=1 still admitted rounds introducing 2 crashes
// (1 obligated + 1 extra). The cap now counts every new crash.
func TestMaxCrashesCapIncludesObligated(t *testing.T) {
	// n=4, t=2 gives enough budget for an obligated crasher and an extra
	// one in the same round if the cap fails to include the obligation.
	// A round legitimately crashes more than the cap only when the
	// obligations alone exceed it (two droppers in one round must both
	// crash in the next) — and then it crashes *exactly* the obligated set,
	// with no extra crashers on top.
	const cap = 1
	sawObligated := false
	_, err := Runs(rounds.RWS, consensus.FloodSetWS{}, binCfg(0, 1, 1, 0), 2,
		Options{MaxCrashesPerRound: cap}, func(run *rounds.Run) bool {
			for i, rec := range run.Rounds {
				// A completer whose message missed some addressee in the
				// previous round dropped it, and is obligated to crash now.
				var obligated model.ProcSet
				if i > 0 {
					prev := run.Rounds[i-1]
					survivors := prev.AliveStart.Minus(prev.Crashed)
					// Reached is trimmed to survivors, so a completer
					// dropped iff it reached fewer than its surviving
					// addressees.
					survivors.ForEach(func(q model.ProcessID) bool {
						if prev.Reached[q] != prev.Sent[q].Intersect(survivors) {
							obligated = obligated.Add(q)
						}
						return true
					})
				}
				if !obligated.Empty() {
					sawObligated = true
				}
				if !obligated.Subset(rec.Crashed) {
					t.Fatalf("round %d crashed %v but obligation %v was not discharged", rec.Round, rec.Crashed, obligated)
				}
				extras := rec.Crashed.Minus(obligated).Count()
				if obligated.Count()+extras > cap && extras > 0 {
					t.Fatalf("MaxCrashesPerRound=%d violated: round %d crashed %v (%d obligated + %d extra)",
						cap, rec.Round, rec.Crashed, obligated.Count(), extras)
				}
			}
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
	if !sawObligated {
		t.Fatal("test never exercised an obligated round — it proves nothing about the cap")
	}
}

// TestMaxCrashesCapNeverBelowObligated: an obligated process must crash
// even when the cap is smaller than the obligation, so capped exploration
// still discharges every obligation (no spurious truncated prefixes).
func TestMaxCrashesCapNeverBelowObligated(t *testing.T) {
	v := &rounds.View{
		Round: 2, N: 3, T: 2, Model: rounds.RWS,
		Alive:       model.FullSet(3),
		FaultySoFar: 0,
		Obligated:   model.Singleton(2),
		Sending:     []model.ProcSet{0, model.FullSet(3), model.FullSet(3), model.FullSet(3)},
	}
	plans := EnumeratePlans(v, 1)
	if len(plans) == 0 {
		t.Fatal("no plans enumerated")
	}
	for _, p := range plans {
		if _, ok := p.Crashes[2]; !ok {
			t.Fatalf("plan %v omits the obligated crasher p2", p)
		}
		if len(p.Crashes) > 1 {
			t.Fatalf("plan %v introduces %d crashes under cap 1 (only the obligated p2 is allowed)", p, len(p.Crashes))
		}
	}
}
