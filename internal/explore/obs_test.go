package explore

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
)

func TestExploreMetricsMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	var progressCalls int
	var last Progress
	stats, err := Runs(rounds.RS, consensus.FloodSet{}, []model.Value{0, 1, 2}, 1,
		Options{
			Metrics:       reg,
			Progress:      func(p Progress) { progressCalls++; last = p },
			ProgressEvery: 10,
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for metric, want := range map[string]int{
		MetricRuns:      stats.Runs,
		MetricPlans:     stats.Plans,
		MetricForks:     stats.Clones,
		MetricTruncated: stats.Truncated,
	} {
		if got := snap.Counter(metric); got != int64(want) {
			t.Errorf("%s = %d, want %d (stats: %v)", metric, got, want, stats)
		}
	}
	// The forked engines count their rounds into the same registry.
	if got := snap.Counter(obs.Label(rounds.MetricRounds, "model", "RS")); got == 0 {
		t.Error("exploration executed no instrumented rounds")
	}
	if wantCalls := stats.Runs / 10; progressCalls != wantCalls {
		t.Errorf("progress called %d times over %d runs, want %d", progressCalls, stats.Runs, wantCalls)
	}
	if last.Runs == 0 || last.RunsPerSec <= 0 {
		t.Errorf("last progress snapshot is empty: %+v", last)
	}
	// Without ExpectedRuns or MaxRuns there is no completion estimate.
	if last.Expected != 0 || last.ETA != 0 {
		t.Errorf("unestimated exploration reported Expected=%d ETA=%v", last.Expected, last.ETA)
	}
}

func TestProgressETA(t *testing.T) {
	var snaps []Progress
	_, err := Runs(rounds.RS, consensus.FloodSet{}, []model.Value{0, 1, 2}, 1,
		Options{
			ExpectedRuns:  1 << 30, // far beyond the real space: ETA stays positive throughout
			Progress:      func(p Progress) { snaps = append(snaps, p) },
			ProgressEvery: 10,
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress callbacks")
	}
	for _, p := range snaps {
		if p.Expected != 1<<30 {
			t.Fatalf("Expected = %d, want %d", p.Expected, 1<<30)
		}
		if p.RunsPerSec > 0 && p.ETA <= 0 {
			t.Fatalf("snapshot %+v: positive rate but no ETA", p)
		}
	}

	// ExpectedRuns falls back to MaxRuns, so budgeted sweeps estimate
	// completion against the budget.
	snaps = nil
	_, err = Runs(rounds.RS, consensus.FloodSet{}, []model.Value{0, 1, 2}, 1,
		Options{
			MaxRuns:       10,
			Progress:      func(p Progress) { snaps = append(snaps, p) },
			ProgressEvery: 5,
		}, nil)
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if len(snaps) == 0 || snaps[0].Expected != 10 {
		t.Fatalf("budgeted sweep snapshots = %+v, want Expected=10", snaps)
	}
}

func TestExploreTruncatedCounted(t *testing.T) {
	reg := obs.NewRegistry()
	// A 1-round horizon with t=1 cuts FloodSet (which needs t+1 rounds)
	// before any decision, so every visited run is truncated.
	stats, err := Runs(rounds.RS, consensus.FloodSet{}, []model.Value{0, 1}, 1,
		Options{MaxRounds: 1, Metrics: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated != stats.Runs || stats.Truncated == 0 {
		t.Errorf("stats = %+v, want all runs truncated", stats)
	}
	if got := reg.Snapshot().Counter(MetricTruncated); got != int64(stats.Truncated) {
		t.Errorf("truncated counter = %d, want %d", got, stats.Truncated)
	}
}

func TestRefutationCounted(t *testing.T) {
	metric := MetricRefutations
	before := obs.Default.Counter(metric).Value()
	ref, err := RefuteRoundOneRWS(consensus.FloodSetWS{}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ref == nil {
		t.Fatal("expected a refutation of FloodSetWS round-1 decisions")
	}
	if after := obs.Default.Counter(metric).Value(); after != before+1 {
		t.Errorf("refutations counter went %d → %d, want +1", before, after)
	}
}
