package explore

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/rounds"
)

// shared is the state common to every worker of one exploration: the global
// run-token counter that implements the MaxRuns budget, the cooperative
// stop flag, and the aggregate counters behind Progress callbacks. The
// sequential explorer uses the same struct (with exactly one "worker"), so
// both paths share one budget/progress implementation.
type shared struct {
	runs   atomic.Int64 // run tokens drawn; token k ⇒ the k-th visited run
	plans  atomic.Int64
	clones atomic.Int64

	stop    atomic.Bool // set on early stop (visitor false) and budget exhaustion
	aborted atomic.Bool // set only on budget exhaustion

	progressMu sync.Mutex
	start      time.Time
	expected   int // anticipated total runs (0 = unknown), for Progress ETA
}

// progress emits one Progress snapshot built from the shared totals. The
// mutex only serializes concurrent callbacks; the snapshot itself is a
// best-effort read of in-flight counters, exactly as documented on
// Options.Progress.
func (sh *shared) progress(fn func(Progress), depth int) {
	sh.progressMu.Lock()
	defer sh.progressMu.Unlock()
	elapsed := time.Since(sh.start)
	runs := int(sh.runs.Load())
	rps := 0.0
	if s := elapsed.Seconds(); s > 0 {
		rps = float64(runs) / s
	}
	var eta time.Duration
	if sh.expected > 0 && rps > 0 && runs < sh.expected {
		eta = time.Duration(float64(sh.expected-runs) / rps * float64(time.Second))
	}
	fn(Progress{
		Runs:       runs,
		Plans:      int(sh.plans.Load()),
		Clones:     int(sh.clones.Load()),
		Depth:      depth,
		Elapsed:    elapsed,
		RunsPerSec: rps,
		Expected:   sh.expected,
		ETA:        eta,
	})
}

// pool is the work queue of the parallel explorer: a LIFO stack of engine
// branches whose ownership transfers wholly to whichever worker pops them
// (engines are never shared, so workers touch no locks while exploring a
// branch). LIFO order keeps the queue shallow — a popped branch is the most
// recently forked, hence the deepest, so the queue holds the frontier of
// the DFS rather than its whole breadth.
//
// Termination is by idle counting: a worker that finds the queue empty
// parks and increments idle; when every worker is idle the space is drained
// (no branch exists outside the queue) and the pool closes itself.
type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*rounds.Engine
	idle    int
	workers int
	done    bool
	err     error // first terminal error (sticky)
}

func newPool(workers int) *pool {
	p := &pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// push hands a branch to the pool. Branches pushed after close are dropped:
// the exploration is already stopping and the engine is garbage either way.
func (p *pool) push(eng *rounds.Engine) {
	p.mu.Lock()
	if !p.done {
		p.queue = append(p.queue, eng)
		p.cond.Signal()
	}
	p.mu.Unlock()
}

// next blocks until a branch is available or the pool drains/closes; the
// second result reports whether a branch was returned.
func (p *pool) next() (*rounds.Engine, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.idle++
	for {
		if p.done {
			return nil, false
		}
		if n := len(p.queue); n > 0 {
			eng := p.queue[n-1]
			p.queue[n-1] = nil
			p.queue = p.queue[:n-1]
			p.idle--
			return eng, true
		}
		if p.idle == p.workers {
			// Every worker is parked and the queue is empty: no branch can
			// ever appear again. Drained.
			p.done = true
			p.cond.Broadcast()
			return nil, false
		}
		p.cond.Wait()
	}
}

// close stops the pool, recording the terminal error. Real failures take
// precedence over the cooperative sentinels (errStopped, ErrBudget): once a
// worker hits a stop condition its siblings all surface errStopped at their
// next check, and that echo must not mask the originating error.
func (p *pool) close(err error) {
	p.mu.Lock()
	if p.err == nil || (isSentinel(p.err) && !isSentinel(err)) {
		p.err = err
	}
	p.done = true
	p.queue = nil
	p.cond.Broadcast()
	p.mu.Unlock()
}

func isSentinel(err error) bool {
	return errors.Is(err, errStopped) || errors.Is(err, ErrBudget)
}

// exploreParallel drains the run space rooted at root over a pool of
// workers. The root engine is seeded as the first queue entry; workers pop
// branches, recurse sequentially below the fork horizon, and push the
// shallow forks they encounter back onto the queue for stealing. Per-worker
// Stats, metric shards and visitors are merged after the pool drains, so
// the returned totals equal the sequential pass exactly (the visit *order*
// is schedule-dependent; the visited multiset is not).
func exploreParallel(root *rounds.Engine, opts Options, sh *shared, reg *obs.Registry, mkVisitor func() Visitor, workers int) (Stats, Visitor, error) {
	p := newPool(workers)
	p.push(root)

	es := make([]*explorer, workers)
	for i := range es {
		es[i] = &explorer{opts: opts, shared: sh, pool: p, metrics: newExploreMetrics(reg)}
		if mkVisitor != nil {
			es[i].visitor = mkVisitor()
		}
	}
	var wg sync.WaitGroup
	for _, e := range es {
		wg.Add(1)
		go func(e *explorer) {
			defer wg.Done()
			e.work()
		}(e)
	}
	wg.Wait()

	// Merge in worker order: the fold is deterministic given the partition,
	// and Visitor.Merge is required to be associative/commutative over
	// disjoint run sets, so any partition yields the same aggregate.
	var stats Stats
	var merged Visitor
	for _, e := range es {
		stats.Runs += e.stats.Runs
		stats.Plans += e.stats.Plans
		stats.Clones += e.stats.Clones
		stats.Truncated += e.stats.Truncated
		if merged == nil {
			merged = e.visitor
		} else if e.visitor != nil && e.visitor != merged {
			// Identity check: Runs shares one lockedVisitor across workers;
			// merging it into itself must be a no-op, not a double count.
			merged.Merge(e.visitor)
		}
	}
	stats.Aborted = sh.aborted.Load()

	p.mu.Lock()
	err := p.err
	p.mu.Unlock()
	if isSentinel(err) {
		err = nil
	}
	// Budget exhaustion surfaces as ErrBudget no matter which worker's
	// sentinel reached the pool first (matching the sequential contract);
	// a real failure still takes precedence above.
	if err == nil && stats.Aborted {
		err = ErrBudget
	}
	return stats, merged, err
}

// work is one worker's loop: pop a branch, explore it to completion, repeat
// until the pool drains or a terminal condition (visitor stop, budget,
// engine error) closes it.
func (e *explorer) work() {
	defer e.flushMetrics()
	for {
		eng, ok := e.pool.next()
		if !ok {
			return
		}
		if err := e.dfs(eng); err != nil {
			// errStopped and ErrBudget have already set shared.stop, so
			// sibling workers quit at their next branch/run boundary; close
			// wakes the parked ones. Any other error is a real failure and
			// likewise terminates the exploration.
			e.shared.stop.Store(true)
			e.pool.close(err)
			return
		}
	}
}
