package explore

import (
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/rounds"
)

func binCfg(bits ...int64) []model.Value {
	out := make([]model.Value, len(bits))
	for i, b := range bits {
		out[i] = model.Value(b)
	}
	return out
}

func TestEnumeratePlansFailureFreeRS(t *testing.T) {
	v := &rounds.View{
		Round: 1, N: 3, T: 0, Model: rounds.RS,
		Alive:   model.FullSet(3),
		Sending: []model.ProcSet{0, model.FullSet(3), model.FullSet(3), model.FullSet(3)},
	}
	plans := EnumeratePlans(v, 0)
	if len(plans) != 1 {
		t.Fatalf("t=0 should admit exactly the failure-free plan, got %d plans", len(plans))
	}
	if len(plans[0].Crashes) != 0 || len(plans[0].Drops) != 0 {
		t.Errorf("unexpected non-trivial plan %v", plans[0])
	}
}

func TestEnumeratePlansCountsRS(t *testing.T) {
	// n=3, t=1, everyone broadcasting: plans are {no crash} ∪ {crash p,
	// reach ⊆ other two alive-completers} = 1 + 3·4 = 13.
	v := &rounds.View{
		Round: 1, N: 3, T: 1, Model: rounds.RS,
		Alive:   model.FullSet(3),
		Sending: []model.ProcSet{0, model.FullSet(3), model.FullSet(3), model.FullSet(3)},
	}
	plans := EnumeratePlans(v, 0)
	if len(plans) != 13 {
		t.Errorf("RS plan count = %d, want 13", len(plans))
	}
}

func TestEnumeratePlansCountsRWS(t *testing.T) {
	// Same view in RWS adds pending patterns when nobody crashes: each of
	// the 3 completers may drop a nonempty subset of its 2 peers (3 ways),
	// at most 1 dropper (budget 1): 1 + 3·3 = 10 no-crash plans. With one
	// crash the budget is exhausted, so drops disappear: 3·4 = 12.
	v := &rounds.View{
		Round: 1, N: 3, T: 1, Model: rounds.RWS,
		Alive:   model.FullSet(3),
		Sending: []model.ProcSet{0, model.FullSet(3), model.FullSet(3), model.FullSet(3)},
	}
	plans := EnumeratePlans(v, 0)
	if len(plans) != 22 {
		t.Errorf("RWS plan count = %d, want 22", len(plans))
	}
	for _, p := range plans {
		if len(p.Crashes) > 0 && len(p.Drops) > 0 {
			t.Errorf("plan %v spends more budget than t=1 allows", p)
		}
	}
}

func TestEnumeratePlansHonorsObligations(t *testing.T) {
	v := &rounds.View{
		Round: 2, N: 3, T: 1, Model: rounds.RWS,
		Alive:     model.FullSet(3),
		Obligated: model.Singleton(2),
		Sending:   []model.ProcSet{0, model.FullSet(3), model.FullSet(3), model.FullSet(3)},
	}
	plans := EnumeratePlans(v, 0)
	if len(plans) == 0 {
		t.Fatal("no plans enumerated")
	}
	for _, p := range plans {
		if _, ok := p.Crashes[2]; !ok {
			t.Fatalf("plan %v does not crash the obligated p2", p)
		}
	}
}

// TestExhaustiveFloodSetRS is experiment E1's core evidence: over EVERY
// admissible RS adversary and every binary initial configuration, FloodSet
// satisfies uniform consensus.
func TestExhaustiveFloodSetRS(t *testing.T) {
	configs := [][]model.Value{
		binCfg(0, 0, 0), binCfg(0, 0, 1), binCfg(0, 1, 0), binCfg(0, 1, 1),
		binCfg(1, 0, 0), binCfg(1, 0, 1), binCfg(1, 1, 0), binCfg(1, 1, 1),
	}
	total := 0
	for _, cfg := range configs {
		stats, err := Runs(rounds.RS, consensus.FloodSet{}, cfg, 1, Options{}, func(run *rounds.Run) bool {
			if bad := check.FirstViolation(run); bad != nil {
				t.Fatalf("config %v: %s\nrun %s", cfg, bad, run)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		total += stats.Runs
	}
	// n=3, t=1: round 1 admits 13 plans (failure-free + 3 victims × 4 reach
	// subsets). The 12 crash branches exhaust the budget (1 run each); the
	// failure-free branch admits 13 round-2 plans. 25 runs per config.
	if total != 25*len(configs) {
		t.Errorf("explored %d runs, want %d (exhaustive count)", total, 25*len(configs))
	}
}

// TestExhaustiveFloodSetWSInRWS is experiment E2's core evidence: FloodSetWS
// satisfies uniform consensus under EVERY admissible RWS adversary (n=3,
// t=1, all binary configs).
func TestExhaustiveFloodSetWSInRWS(t *testing.T) {
	for mask := 0; mask < 8; mask++ {
		cfg := binCfg(int64(mask&1), int64(mask>>1&1), int64(mask>>2&1))
		_, err := Runs(rounds.RWS, consensus.FloodSetWS{}, cfg, 1, Options{}, func(run *rounds.Run) bool {
			if run.Truncated {
				return true // unfinishable horizon prefix
			}
			if bad := check.FirstViolation(run); bad != nil {
				t.Fatalf("config %v: %s\nrun %s", cfg, bad, run)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestExplorerFindsFloodSetRWSDisagreement shows the explorer autonomously
// discovers the pending-message disagreement of plain FloodSet in RWS (the
// paper's §5.1 remark) — no hand-written scenario needed.
func TestExplorerFindsFloodSetRWSDisagreement(t *testing.T) {
	var witness *rounds.Run
	_, err := Runs(rounds.RWS, consensus.FloodSet{}, binCfg(0, 1, 2), 1, Options{}, func(run *rounds.Run) bool {
		if run.Truncated {
			return true
		}
		if !check.UniformAgreement(run).OK {
			witness = run
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if witness == nil {
		t.Fatal("explorer failed to find FloodSet's RWS disagreement")
	}
	if v := rounds.CheckWeakRoundSynchrony(witness); len(v) != 0 {
		t.Fatalf("witness is not RWS-admissible: %v", v[0].Error())
	}
}

// TestExplorerFindsA1RWSDisagreement: the explorer also finds the §5.3
// scenario against A1 in RWS.
func TestExplorerFindsA1RWSDisagreement(t *testing.T) {
	var witness *rounds.Run
	_, err := Runs(rounds.RWS, consensus.A1{}, binCfg(0, 1, 1), 1, Options{}, func(run *rounds.Run) bool {
		if run.Truncated {
			return true
		}
		if !check.UniformAgreement(run).OK {
			witness = run
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if witness == nil {
		t.Fatal("explorer failed to find A1's RWS disagreement")
	}
}

// TestExhaustiveA1InRS is Theorem 5.2's evidence: A1 satisfies uniform
// consensus under every admissible RS adversary, and every run decides
// within 2 rounds.
func TestExhaustiveA1InRS(t *testing.T) {
	for mask := 0; mask < 8; mask++ {
		cfg := binCfg(int64(mask&1), int64(mask>>1&1), int64(mask>>2&1))
		_, err := Runs(rounds.RS, consensus.A1{}, cfg, 1, Options{}, func(run *rounds.Run) bool {
			if bad := check.FirstViolation(run); bad != nil {
				t.Fatalf("config %v: %s\nrun %s", cfg, bad, run)
			}
			if lat, ok := run.Latency(); !ok || lat > 2 {
				t.Fatalf("config %v: latency %d > 2 in %s", cfg, lat, run)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunsBudget(t *testing.T) {
	_, err := Runs(rounds.RS, consensus.FloodSet{}, binCfg(0, 1, 0), 1, Options{MaxRuns: 5}, nil)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestRunsMaxCrashesCap(t *testing.T) {
	// With the cap at 1, no round introduces 2 crashes even though t=2.
	_, err := Runs(rounds.RS, consensus.FloodSet{}, binCfg(0, 1, 0), 2,
		Options{MaxCrashesPerRound: 1}, func(run *rounds.Run) bool {
			for i := range run.Rounds {
				if run.Rounds[i].Crashed.Count() > 1 {
					t.Fatalf("round %d crashed %v despite cap", i+1, run.Rounds[i].Crashed)
				}
			}
			return true
		})
	if err != nil {
		t.Fatal(err)
	}
}

// decideOwn is a bogus "fast" algorithm: decide your own value at round 1.
type decideOwn struct{}

func (decideOwn) Name() string { return "DecideOwn" }
func (decideOwn) New(cfg rounds.ProcConfig) rounds.Process {
	return &decideOwnProc{v: cfg.Initial}
}

type decideOwnProc struct {
	v       model.Value
	decided bool
}

func (p *decideOwnProc) Msgs(int) []rounds.Message { return nil }
func (p *decideOwnProc) Trans(round int, _ []rounds.Message) {
	if round == 1 {
		p.decided = true
	}
}
func (p *decideOwnProc) Decision() (model.Value, bool) { return p.v, p.decided }
func (p *decideOwnProc) CloneProcess() rounds.Process  { c := *p; return &c }

// minRoundOne is the natural Λ=1 candidate: broadcast your value, decide
// the minimum received at round 1. Correct when failure-free, refuted by
// the pending-message adversary.
type minRoundOne struct{}

func (minRoundOne) Name() string { return "MinRoundOne" }
func (minRoundOne) New(cfg rounds.ProcConfig) rounds.Process {
	return &minRoundOneProc{cfg: cfg, w: model.NewValueSet(cfg.Initial)}
}

type minRoundOneProc struct {
	cfg      rounds.ProcConfig
	w        model.ValueSet
	decided  bool
	decision model.Value
}

func (p *minRoundOneProc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	out := make([]rounds.Message, p.cfg.N+1)
	for i := 1; i <= p.cfg.N; i++ {
		out[i] = consensus.WMsg{W: p.w.Clone()}
	}
	return out
}

func (p *minRoundOneProc) Trans(round int, received []rounds.Message) {
	for j := 1; j < len(received); j++ {
		if m, ok := received[j].(consensus.WMsg); ok {
			p.w.UnionWith(m.W)
		}
	}
	if !p.decided {
		if v, ok := p.w.Min(); ok {
			p.decision, p.decided = v, true
		}
	}
}

func (p *minRoundOneProc) Decision() (model.Value, bool) { return p.decision, p.decided }
func (p *minRoundOneProc) CloneProcess() rounds.Process {
	c := *p
	c.w = p.w.Clone()
	return &c
}

func TestRefuteRoundOneRWS(t *testing.T) {
	tests := []struct {
		name string
		alg  rounds.Algorithm
		want RefutationKind
	}{
		// A1 decides at round 1 of every failure-free run; the refuter must
		// exhibit the §5.3 pending-message disagreement.
		{"A1", consensus.A1{}, AgreementViolation},
		// DecideOwn disagrees already in a failure-free mixed run.
		{"DecideOwn", decideOwn{}, AgreementViolation},
		// MinRoundOne is the natural fast candidate; only the constructed
		// pending scenario defeats it.
		{"MinRoundOne", minRoundOne{}, AgreementViolation},
		// FloodSetWS is correct — so it cannot decide at round 1.
		{"FloodSetWS", consensus.FloodSetWS{}, NotRoundOne},
		// C_OptFloodSetWS decides at round 1 only on unanimity: some
		// failure-free run is slower, so Λ ≥ 2.
		{"C_OptFloodSetWS", consensus.COptFloodSetWS{}, NotRoundOne},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ref, err := RefuteRoundOneRWS(tt.alg, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Kind != tt.want {
				t.Fatalf("refutation kind = %v, want %v\n%s", ref.Kind, tt.want, ref)
			}
			if ref.Run == nil {
				t.Fatal("refutation carries no witness run")
			}
			if tt.want == AgreementViolation {
				if viol := rounds.CheckWeakRoundSynchrony(ref.Run); len(viol) != 0 {
					t.Errorf("witness not RWS-admissible: %v", viol[0].Error())
				}
				if check.UniformAgreement(ref.Run).OK {
					t.Error("witness does not actually violate uniform agreement")
				}
			}
		})
	}
}

func TestRefuteRoundOneRWSValidation(t *testing.T) {
	if _, err := RefuteRoundOneRWS(consensus.A1{}, 1, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := RefuteRoundOneRWS(consensus.FloodSetWS{}, 3, 0); err == nil {
		t.Error("t=0 accepted")
	}
}

// TestExhaustiveFloodSetWSInRWSTolTwo deepens E2's evidence to t = 2:
// two crash budgets admit simultaneous droppers and chained obligations,
// the regime where naive pending-message defenses tend to break.
func TestExhaustiveFloodSetWSInRWSTolTwo(t *testing.T) {
	for _, cfg := range [][]model.Value{binCfg(0, 1, 1), binCfg(1, 0, 1), binCfg(0, 0, 0), binCfg(2, 1, 0)} {
		stats, err := Runs(rounds.RWS, consensus.FloodSetWS{}, cfg, 2, Options{}, func(run *rounds.Run) bool {
			if run.Truncated {
				return true
			}
			if bad := check.FirstViolation(run); bad != nil {
				t.Fatalf("config %v: %s\nrun %s", cfg, bad, run)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Runs < 1000 {
			t.Fatalf("config %v: only %d runs; t=2 space should be much larger", cfg, stats.Runs)
		}
	}
}
