// Package explore enumerates every admissible run of a round-based
// algorithm over a bounded horizon: every crash pattern, every partial
// broadcast and (in RWS) every pending-message choice the model's adversary
// may make. Exhaustiveness over small systems is how this repository turns
// the paper's universally quantified claims — worst-case latencies, the
// impossibility of round-1 decisions in RWS, disagreement counterexamples —
// into mechanically checked facts.
//
// The enumeration is canonical: choices that no surviving process can
// observe (deliveries to a process crashing in the same round, drops
// addressed to same-round crashers) are not branched on, which prunes the
// space without losing any distinguishable behaviour.
//
// Exploration runs sequentially by default; setting Options.Workers turns
// on the parallel explorer (see parallel.go), which forks the DFS at
// shallow adversary choice points, drains the branches over a worker pool,
// and merges per-worker statistics and visitor state into exactly the
// totals the sequential pass produces.
package explore

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
)

// Options bounds an exploration.
type Options struct {
	// MaxRounds bounds the horizon (0 means the engine's default limit).
	MaxRounds int
	// MaxCrashesPerRound caps how many new crashes a single round may
	// introduce, counting crashes forced by weak-round-synchrony obligations
	// (0 means no cap beyond the budget t). A round never crashes fewer
	// processes than its obligated set — those must crash regardless of the
	// cap — but with the cap at c it crashes at most max(c, |Obligated|).
	// The paper's scenarios never need more than t simultaneous crashes, but
	// capping to 1 can shrink large searches.
	MaxCrashesPerRound int
	// MaxRuns aborts the exploration after this many complete runs
	// (0 = unlimited). ErrBudget is returned when the cap is hit.
	MaxRuns int
	// ExpectedRuns is the anticipated size of the run space, used only to
	// derive Progress.Expected/ETA (a prior sweep at the same parameters is
	// the usual source). It never bounds the exploration — use MaxRuns for
	// that. 0 falls back to MaxRuns, so budgeted sweeps get an ETA for
	// free.
	ExpectedRuns int

	// Workers selects the execution mode: 0 runs the classic sequential
	// DFS; n ≥ 1 drains the same space over a pool of n workers; any
	// negative value uses one worker per CPU (GOMAXPROCS). The visited run
	// *multiset* is identical in every mode — only the visit order is
	// schedule-dependent. Callers that aggregate across runs should use
	// Explore with a merge-friendly Visitor; plain Runs visitors are
	// serialized through a mutex when Workers is set.
	Workers int
	// ForkRounds bounds how deep the parallel explorer forks branches onto
	// the shared queue instead of recursing in-worker (values < 1 default
	// to 2 rounds). Shallow forking keeps queue traffic low; the first two
	// rounds of any nontrivial space already yield far more branches than
	// workers. Ignored in sequential mode.
	ForkRounds int

	// Metrics receives the exploration counters (runs, plans, forks,
	// truncated runs) and the forked engines' round counters. Nil uses the
	// process-wide obs.Default registry. Explorer counters are accumulated
	// in per-worker shards and flushed when each worker finishes, so the
	// registry converges to the exact totals without per-run atomics.
	Metrics *obs.Registry
	// Progress, when non-nil, is invoked every ProgressEvery complete runs
	// with the exploration's pace (runs/sec, current depth). Long exhaustive
	// searches use it to show liveness without flooding output. Under
	// parallel exploration the callback is serialized but may be invoked
	// from any worker.
	Progress func(Progress)
	// ProgressEvery is the run interval between Progress callbacks;
	// values < 1 default to 1000.
	ProgressEvery int
}

// workerCount resolves Options.Workers: 0 = sequential, negative = one per
// CPU.
func (o Options) workerCount() int {
	if o.Workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

// forkRounds resolves Options.ForkRounds.
func (o Options) forkRounds() int {
	if o.ForkRounds < 1 {
		return 2
	}
	return o.ForkRounds
}

// ErrBudget is returned when Options.MaxRuns stops an exploration early.
var ErrBudget = errors.New("explore: run budget exhausted before the space was covered")

// Stats summarizes an exploration. Under parallel exploration the stats are
// the sum of every worker's share and equal the sequential totals exactly.
type Stats struct {
	Runs      int // complete runs visited
	Plans     int // adversary plans expanded
	Clones    int // engine forks performed
	Truncated int // runs cut by the horizon before completing
	Aborted   bool
}

// String renders the stats.
func (s Stats) String() string {
	out := fmt.Sprintf("%d runs, %d plans, %d forks", s.Runs, s.Plans, s.Clones)
	if s.Truncated > 0 {
		out += fmt.Sprintf(", %d truncated", s.Truncated)
	}
	return out
}

// Visit is called for every complete run. Returning false stops the
// exploration immediately (used to stop at the first counterexample).
type Visit func(*rounds.Run) bool

// Visitor is the merge-friendly visitor contract of the parallel explorer.
// Each worker owns a private Visitor and feeds it runs without any
// synchronization; when the space is drained the per-worker states are
// folded together with Merge (in worker order, so the fold is
// deterministic given the partition). Implementations must make Merge
// associative and commutative over disjoint run sets — counts, minima,
// maxima and multisets all qualify — because which worker sees which run
// is schedule-dependent.
//
// Visit returning false stops every worker promptly; the visited set is
// then a prefix-closed portion of the space, exactly as in the sequential
// early stop.
type Visitor interface {
	Visit(*rounds.Run) bool
	Merge(Visitor)
}

// funcVisitor adapts a plain Visit for the sequential path.
type funcVisitor struct{ f Visit }

func (v funcVisitor) Visit(run *rounds.Run) bool { return v.f(run) }
func (v funcVisitor) Merge(Visitor)              {}

// lockedVisitor adapts a plain Visit for concurrent use: one instance is
// shared by every worker and serializes calls through a mutex. Once the
// function returns false no further calls are made, so "stop at the first
// counterexample" visits exactly one witness even under parallelism.
type lockedVisitor struct {
	mu      sync.Mutex
	f       Visit
	stopped bool
}

func (v *lockedVisitor) Visit(run *rounds.Run) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.stopped {
		return false
	}
	if !v.f(run) {
		v.stopped = true
		return false
	}
	return true
}

func (v *lockedVisitor) Merge(Visitor) {}

// Runs enumerates every admissible run of alg from the given initial
// configuration and invokes visit on each. The algorithm's processes must
// implement rounds.Cloner. With Options.Workers set the same multiset of
// runs is visited by a worker pool; visit is then serialized through a
// mutex, so prefer Explore with a per-worker Visitor for heavy aggregation.
func Runs(kind rounds.ModelKind, alg rounds.Algorithm, initial []model.Value, t int, opts Options, visit Visit) (Stats, error) {
	var mk func() Visitor
	if visit != nil {
		if opts.workerCount() > 0 {
			shared := &lockedVisitor{f: visit}
			mk = func() Visitor { return shared }
		} else {
			mk = func() Visitor { return funcVisitor{f: visit} }
		}
	}
	stats, _, err := Explore(kind, alg, initial, t, opts, mk)
	return stats, err
}

// Explore enumerates the same space as Runs with a merge-friendly visitor:
// mkVisitor is invoked once per worker (once total in sequential mode) and
// the worker-local states are merged after the pool drains. The merged
// Visitor is returned so callers can read their aggregate out of it.
// A nil mkVisitor explores without visiting (useful for counting).
func Explore(kind rounds.ModelKind, alg rounds.Algorithm, initial []model.Value, t int, opts Options, mkVisitor func() Visitor) (Stats, Visitor, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default
	}
	engineOpts := []rounds.Option{rounds.WithMetrics(reg)}
	if opts.MaxRounds > 0 {
		engineOpts = append(engineOpts, rounds.WithRoundLimit(opts.MaxRounds))
	}
	root, err := rounds.NewEngine(kind, alg, initial, t, engineOpts...)
	if err != nil {
		return Stats{}, nil, err
	}
	if opts.Progress != nil && opts.ProgressEvery < 1 {
		opts.ProgressEvery = 1000
	}
	sh := &shared{start: time.Now(), expected: opts.ExpectedRuns}
	if sh.expected == 0 {
		sh.expected = opts.MaxRuns
	}
	if workers := opts.workerCount(); workers > 0 {
		return exploreParallel(root, opts, sh, reg, mkVisitor, workers)
	}
	e := &explorer{opts: opts, shared: sh, metrics: newExploreMetrics(reg)}
	if mkVisitor != nil {
		e.visitor = mkVisitor()
	}
	err = e.dfs(root)
	e.flushMetrics()
	e.stats.Aborted = sh.aborted.Load()
	if errors.Is(err, errStopped) {
		err = nil
	}
	return e.stats, e.visitor, err
}

// errStopped signals that the visitor requested an early stop.
var errStopped = errors.New("explore: stopped by visitor")

// explorer is one worker's view of an exploration: private stats, a
// private visitor and a private metric shard, plus the shared stop/budget/
// progress state. The sequential path is simply a single explorer with no
// pool.
type explorer struct {
	opts    Options
	shared  *shared
	pool    *pool // nil in sequential mode
	visitor Visitor
	stats   Stats
	metrics exploreMetrics
	shard   metricShard
}

// dfs explores every branch reachable from eng. In parallel mode, branches
// forked at rounds ≤ ForkRounds are pushed to the pool's queue instead of
// being recursed into, which is how work spreads across workers.
func (e *explorer) dfs(eng *rounds.Engine) error {
	if e.shared.stop.Load() {
		return errStopped
	}
	// A run is complete when every live process has decided and no
	// weak-round-synchrony obligation is outstanding. (An obligated process
	// still has to crash, which future rounds handle, so we must not stop
	// while obligations remain.)
	if eng.Done() && eng.Obligated().Empty() {
		return e.emit(eng)
	}
	if eng.Round() >= e.roundLimit(eng) {
		return e.emit(eng)
	}

	view := eng.NextView()
	buf := planBufPool.Get().(*planBuf)
	plans := EnumeratePlansInto(buf.plans[:0], view, e.opts.MaxCrashesPerRound)
	e.stats.Plans += len(plans)
	e.shard.plans += int64(len(plans))
	e.shared.plans.Add(int64(len(plans)))
	fork := e.pool != nil && view.Round <= e.opts.forkRounds()
	var err error
	for i, plan := range plans {
		last := i == len(plans)-1
		branch := eng // reuse the engine for the last branch
		if !last {
			branch, err = eng.Clone()
			if err != nil {
				break
			}
			e.stats.Clones++
			e.shard.forks++
			e.shared.clones.Add(1)
		}
		scripted := plan
		if stepErr := branch.Step(rounds.AdversaryFunc(func(*rounds.View) rounds.Plan { return scripted })); stepErr != nil {
			err = fmt.Errorf("explore: enumerated an illegal plan %v at round %d: %w", plan, view.Round, stepErr)
			break
		}
		if fork && !last {
			e.pool.push(branch)
			continue
		}
		if err = e.dfs(branch); err != nil {
			break
		}
	}
	buf.plans = plans
	planBufPool.Put(buf)
	return err
}

func (e *explorer) roundLimit(eng *rounds.Engine) int {
	if e.opts.MaxRounds > 0 {
		return e.opts.MaxRounds
	}
	return rounds.DefaultRoundLimit(eng.T())
}

func (e *explorer) emit(eng *rounds.Engine) error {
	run, err := eng.Execute(rounds.NoFailures, 0) // freeze: engine is already done or at limit
	if err != nil {
		return err
	}
	if !eng.Obligated().Empty() {
		// The horizon cut the run before a pending-message obligation was
		// discharged: this is an unfinishable prefix, not an admissible
		// run. Mark it truncated so visitors can ignore it.
		run.Truncated = true
	}
	n := e.shared.runs.Add(1)
	if max := e.opts.MaxRuns; max > 0 && n > int64(max) {
		// A concurrent worker drew the last budgeted run first; this one is
		// neither counted nor visited, preserving Stats.Runs == MaxRuns.
		e.shared.aborted.Store(true)
		e.shared.stop.Store(true)
		return ErrBudget
	}
	e.stats.Runs++
	e.shard.runs++
	if run.Truncated {
		e.stats.Truncated++
		e.shard.truncated++
	}
	if e.opts.Progress != nil && n%int64(e.opts.ProgressEvery) == 0 {
		e.shared.progress(e.opts.Progress, eng.Round())
	}
	if e.visitor != nil && !e.visitor.Visit(run) {
		e.shared.stop.Store(true)
		return errStopped
	}
	if max := e.opts.MaxRuns; max > 0 && n >= int64(max) {
		e.shared.aborted.Store(true)
		e.shared.stop.Store(true)
		return ErrBudget
	}
	return nil
}

// flushMetrics folds the worker's metric shard into the registry counters.
func (e *explorer) flushMetrics() {
	e.metrics.runs.Add(e.shard.runs)
	e.metrics.plans.Add(e.shard.plans)
	e.metrics.forks.Add(e.shard.forks)
	e.metrics.truncated.Add(e.shard.truncated)
	e.shard = metricShard{}
}

// planBuf pools the per-node plan slices of the DFS: each recursion level
// borrows one for the duration of its branch loop, so steady-state
// exploration performs no plan-slice allocation at all.
type planBuf struct{ plans []rounds.Plan }

var planBufPool = sync.Pool{New: func() any { return new(planBuf) }}

// EnumeratePlans returns every canonical legal plan for the round described
// by v: all crash sets within budget (capped by maxCrashes if > 0, counting
// obligated crashers), all observable reach subsets for each crasher, and —
// in RWS — all observable pending-message patterns within the remaining
// budget.
func EnumeratePlans(v *rounds.View, maxCrashes int) []rounds.Plan {
	return EnumeratePlansInto(nil, v, maxCrashes)
}

// enumScratch holds the reusable buffers of one EnumeratePlansInto call.
// Everything here is dead once the call returns — the emitted plans never
// alias scratch memory — so a sync.Pool keeps the hot path allocation-free
// across both sequential recursion and concurrent workers.
type enumScratch struct {
	crashSets []model.ProcSet
	crashers  []model.ProcessID
	choices   [][]model.ProcSet
	arena     []model.ProcSet
	selection []model.ProcSet
}

var enumPool = sync.Pool{New: func() any { return new(enumScratch) }}

// EnumeratePlansInto is EnumeratePlans appending into dst (which may be
// nil, or a recycled slice with its length reset to 0).
func EnumeratePlansInto(dst []rounds.Plan, v *rounds.View, maxCrashes int) []rounds.Plan {
	sc := enumPool.Get().(*enumScratch)
	defer enumPool.Put(sc)

	budget := v.Budget()
	obligated := v.Obligated.Count()

	// 1. Enumerate crash sets: subsets of Alive containing Obligated. The
	// per-round cap counts every new crash — including the obligated ones,
	// which must crash no matter what — so the extra-crash headroom is
	// min(budget, maxCrashes) − |Obligated|, floored at zero.
	maxExtra := budget - obligated
	if maxCrashes > 0 {
		if m := maxCrashes - obligated; m < maxExtra {
			maxExtra = m
		}
	}
	if maxExtra < 0 {
		maxExtra = 0
	}
	sc.crashSets = appendSubsetsWithin(sc.crashSets[:0], v.Alive.Minus(v.Obligated), maxExtra)

	plans := dst
	for _, extra := range sc.crashSets {
		crashing := extra.Union(v.Obligated)
		completers := v.Alive.Minus(crashing)

		// 2. For each crasher, enumerate reach subsets over *observable*
		// destinations: addressees that complete the round. All subset
		// lists live in one pre-sized arena so the choice slices stay valid
		// while the arena grows.
		sc.crashers = appendMembers(sc.crashers[:0], crashing)
		arenaSize := 0
		for _, q := range sc.crashers {
			arenaSize += 1 << uint(v.Sending[q].Intersect(completers).Remove(q).Count())
		}
		arena := sc.arena[:0]
		if cap(arena) < arenaSize {
			arena = make([]model.ProcSet, 0, arenaSize)
		}
		sc.choices = sc.choices[:0]
		for _, q := range sc.crashers {
			targets := v.Sending[q].Intersect(completers).Remove(q)
			start := len(arena)
			arena = appendSubsets(arena, targets)
			sc.choices = append(sc.choices, arena[start:len(arena):len(arena)])
		}
		sc.arena = arena

		// 3. In RWS, enumerate pending-message patterns: a set of droppers
		// among the completers (respecting the future budget), each with a
		// nonempty observable drop set.
		dropPatterns := []map[model.ProcessID]model.ProcSet{nil}
		if v.Model == rounds.RWS {
			futureBudget := budget - crashing.Count()
			dropPatterns = enumerateDrops(completers, v, futureBudget)
		}

		// Cartesian product: reach choices × drop patterns.
		if cap(sc.selection) < len(sc.choices) {
			sc.selection = make([]model.ProcSet, len(sc.choices))
		}
		forEachProduct(sc.choices, sc.selection[:len(sc.choices)], func(reaches []model.ProcSet) {
			for _, drops := range dropPatterns {
				p := rounds.Plan{}
				if len(sc.crashers) > 0 {
					p.Crashes = make(map[model.ProcessID]model.ProcSet, len(sc.crashers))
					for i, q := range sc.crashers {
						p.Crashes[q] = reaches[i]
					}
				}
				if len(drops) > 0 {
					p.Drops = drops
				}
				plans = append(plans, p)
			}
		})
	}
	return plans
}

// appendMembers appends the elements of s to dst in increasing order.
func appendMembers(dst []model.ProcessID, s model.ProcSet) []model.ProcessID {
	s.ForEach(func(p model.ProcessID) bool {
		dst = append(dst, p)
		return true
	})
	return dst
}

// appendSubsetsWithin appends all subsets of s with size ≤ max to dst,
// including the empty set.
func appendSubsetsWithin(dst []model.ProcSet, s model.ProcSet, max int) []model.ProcSet {
	if max < 0 {
		max = 0
	}
	var members [model.MaxProcs]model.ProcessID
	n := 0
	s.ForEach(func(p model.ProcessID) bool {
		members[n] = p
		n++
		return true
	})
	var rec func(i int, cur model.ProcSet, size int)
	rec = func(i int, cur model.ProcSet, size int) {
		if i == n {
			dst = append(dst, cur)
			return
		}
		rec(i+1, cur, size)
		if size < max {
			rec(i+1, cur.Add(members[i]), size+1)
		}
	}
	rec(0, 0, 0)
	return dst
}

// allSubsets returns every subset of s (2^|s| sets).
func allSubsets(s model.ProcSet) []model.ProcSet {
	return appendSubsets(make([]model.ProcSet, 0, 1<<uint(s.Count())), s)
}

// appendSubsets appends every subset of s (2^|s| sets) to dst.
func appendSubsets(dst []model.ProcSet, s model.ProcSet) []model.ProcSet {
	var members [model.MaxProcs]model.ProcessID
	n := 0
	s.ForEach(func(p model.ProcessID) bool {
		members[n] = p
		n++
		return true
	})
	for mask := 0; mask < 1<<uint(n); mask++ {
		var sub model.ProcSet
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = sub.Add(members[i])
			}
		}
		dst = append(dst, sub)
	}
	return dst
}

// enumerateDrops returns every observable pending-message pattern among the
// completers: every choice of ≤ futureBudget droppers, each dropping a
// nonempty subset of its completer-addressees. The nil pattern (no drops)
// is always first.
func enumerateDrops(completers model.ProcSet, v *rounds.View, futureBudget int) []map[model.ProcessID]model.ProcSet {
	out := []map[model.ProcessID]model.ProcSet{nil}
	if futureBudget <= 0 {
		return out
	}
	candidates := completers.Members()
	// dropTargets[q] = observable addressees q could drop to.
	var rec func(i int, current map[model.ProcessID]model.ProcSet, used int)
	rec = func(i int, current map[model.ProcessID]model.ProcSet, used int) {
		if i == len(candidates) {
			if len(current) > 0 {
				cp := make(map[model.ProcessID]model.ProcSet, len(current))
				for k, val := range current {
					cp[k] = val
				}
				out = append(out, cp)
			}
			return
		}
		q := candidates[i]
		// Choice 1: q drops nothing.
		rec(i+1, current, used)
		if used >= futureBudget {
			return
		}
		targets := v.Sending[q].Intersect(completers).Remove(q)
		for _, sub := range allSubsets(targets) {
			if sub.Empty() {
				continue
			}
			current[q] = sub
			rec(i+1, current, used+1)
			delete(current, q)
		}
	}
	rec(0, make(map[model.ProcessID]model.ProcSet), 0)
	return out
}

// forEachProduct invokes fn for every element of the cartesian product of
// the given choice lists, using selection (len(choices) long) as the
// iteration buffer. With no choice lists, fn is called once with an empty
// selection.
func forEachProduct(choices [][]model.ProcSet, selection []model.ProcSet, fn func([]model.ProcSet)) {
	var rec func(i int)
	rec = func(i int) {
		if i == len(choices) {
			fn(selection)
			return
		}
		for _, c := range choices[i] {
			selection[i] = c
			rec(i + 1)
		}
	}
	rec(0)
}
