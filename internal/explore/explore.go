// Package explore enumerates every admissible run of a round-based
// algorithm over a bounded horizon: every crash pattern, every partial
// broadcast and (in RWS) every pending-message choice the model's adversary
// may make. Exhaustiveness over small systems is how this repository turns
// the paper's universally quantified claims — worst-case latencies, the
// impossibility of round-1 decisions in RWS, disagreement counterexamples —
// into mechanically checked facts.
//
// The enumeration is canonical: choices that no surviving process can
// observe (deliveries to a process crashing in the same round, drops
// addressed to same-round crashers) are not branched on, which prunes the
// space without losing any distinguishable behaviour.
package explore

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
)

// Options bounds an exploration.
type Options struct {
	// MaxRounds bounds the horizon (0 means the engine's default limit).
	MaxRounds int
	// MaxCrashesPerRound caps how many *new* crashes a single round may
	// introduce (0 means no cap beyond the budget t). The paper's scenarios
	// never need more than t simultaneous crashes, but capping to 1 can
	// shrink large searches.
	MaxCrashesPerRound int
	// MaxRuns aborts the exploration after this many complete runs
	// (0 = unlimited). ErrBudget is returned when the cap is hit.
	MaxRuns int

	// Metrics receives the exploration counters (runs, plans, forks,
	// truncated runs) and the forked engines' round counters. Nil uses the
	// process-wide obs.Default registry.
	Metrics *obs.Registry
	// Progress, when non-nil, is invoked every ProgressEvery complete runs
	// with the exploration's pace (runs/sec, current depth). Long exhaustive
	// searches use it to show liveness without flooding output.
	Progress func(Progress)
	// ProgressEvery is the run interval between Progress callbacks;
	// values < 1 default to 1000.
	ProgressEvery int
}

// ErrBudget is returned when Options.MaxRuns stops an exploration early.
var ErrBudget = errors.New("explore: run budget exhausted before the space was covered")

// Stats summarizes an exploration.
type Stats struct {
	Runs      int // complete runs visited
	Plans     int // adversary plans expanded
	Clones    int // engine forks performed
	Truncated int // runs cut by the horizon before completing
	Aborted   bool
}

// String renders the stats.
func (s Stats) String() string {
	out := fmt.Sprintf("%d runs, %d plans, %d forks", s.Runs, s.Plans, s.Clones)
	if s.Truncated > 0 {
		out += fmt.Sprintf(", %d truncated", s.Truncated)
	}
	return out
}

// Visit is called for every complete run. Returning false stops the
// exploration immediately (used to stop at the first counterexample).
type Visit func(*rounds.Run) bool

// Runs enumerates every admissible run of alg from the given initial
// configuration and invokes visit on each. The algorithm's processes must
// implement rounds.Cloner.
func Runs(kind rounds.ModelKind, alg rounds.Algorithm, initial []model.Value, t int, opts Options, visit Visit) (Stats, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default
	}
	engineOpts := []rounds.Option{rounds.WithMetrics(reg)}
	if opts.MaxRounds > 0 {
		engineOpts = append(engineOpts, rounds.WithRoundLimit(opts.MaxRounds))
	}
	root, err := rounds.NewEngine(kind, alg, initial, t, engineOpts...)
	if err != nil {
		return Stats{}, err
	}
	e := &explorer{
		opts:    opts,
		visit:   visit,
		metrics: newExploreMetrics(reg),
		start:   time.Now(),
	}
	if e.opts.Progress != nil && e.opts.ProgressEvery < 1 {
		e.opts.ProgressEvery = 1000
	}
	err = e.dfs(root)
	if errors.Is(err, errStopped) {
		err = nil
	}
	return e.stats, err
}

// errStopped signals that the visitor requested an early stop.
var errStopped = errors.New("explore: stopped by visitor")

type explorer struct {
	opts    Options
	stats   Stats
	visit   Visit
	metrics exploreMetrics
	start   time.Time
}

func (e *explorer) dfs(eng *rounds.Engine) error {
	// A run is complete when every live process has decided and no
	// weak-round-synchrony obligation is outstanding. (An obligated process
	// still has to crash, which future rounds handle, so we must not stop
	// while obligations remain.)
	if eng.Done() && eng.Obligated().Empty() {
		return e.emit(eng)
	}
	limit := eng.Round() >= e.roundLimit(eng)
	if limit {
		return e.emit(eng)
	}

	view := eng.NextView()
	plans := EnumeratePlans(view, e.opts.MaxCrashesPerRound)
	e.stats.Plans += len(plans)
	e.metrics.plans.Add(int64(len(plans)))
	for i, plan := range plans {
		var branch *rounds.Engine
		if i == len(plans)-1 {
			branch = eng // reuse the engine for the last branch
		} else {
			var err error
			branch, err = eng.Clone()
			if err != nil {
				return err
			}
			e.stats.Clones++
			e.metrics.forks.Inc()
		}
		scripted := plan
		if err := branch.Step(rounds.AdversaryFunc(func(*rounds.View) rounds.Plan { return scripted })); err != nil {
			return fmt.Errorf("explore: enumerated an illegal plan %v at round %d: %w", plan, view.Round, err)
		}
		if err := e.dfs(branch); err != nil {
			return err
		}
	}
	return nil
}

func (e *explorer) roundLimit(eng *rounds.Engine) int {
	if e.opts.MaxRounds > 0 {
		return e.opts.MaxRounds
	}
	return rounds.DefaultRoundLimit(eng.T())
}

func (e *explorer) emit(eng *rounds.Engine) error {
	run, err := eng.Execute(rounds.NoFailures, 0) // freeze: engine is already done or at limit
	if err != nil {
		return err
	}
	if !eng.Obligated().Empty() {
		// The horizon cut the run before a pending-message obligation was
		// discharged: this is an unfinishable prefix, not an admissible
		// run. Mark it truncated so visitors can ignore it.
		run.Truncated = true
	}
	e.stats.Runs++
	e.metrics.runs.Inc()
	if run.Truncated {
		e.stats.Truncated++
		e.metrics.truncated.Inc()
	}
	if e.opts.Progress != nil && e.stats.Runs%e.opts.ProgressEvery == 0 {
		elapsed := time.Since(e.start)
		rps := 0.0
		if s := elapsed.Seconds(); s > 0 {
			rps = float64(e.stats.Runs) / s
		}
		e.opts.Progress(Progress{
			Runs:       e.stats.Runs,
			Plans:      e.stats.Plans,
			Clones:     e.stats.Clones,
			Depth:      eng.Round(),
			Elapsed:    elapsed,
			RunsPerSec: rps,
		})
	}
	if e.visit != nil && !e.visit(run) {
		return errStopped
	}
	if e.opts.MaxRuns > 0 && e.stats.Runs >= e.opts.MaxRuns {
		e.stats.Aborted = true
		return ErrBudget
	}
	return nil
}

// EnumeratePlans returns every canonical legal plan for the round described
// by v: all crash sets within budget (capped by maxCrashes if > 0), all
// observable reach subsets for each crasher, and — in RWS — all observable
// pending-message patterns within the remaining budget.
func EnumeratePlans(v *rounds.View, maxCrashes int) []rounds.Plan {
	budget := v.Budget()

	// 1. Enumerate crash sets: subsets of Alive containing Obligated, of
	// size ≤ budget (and ≤ maxCrashes + |Obligated| when capped).
	crashSets := subsetsWithin(v.Alive.Minus(v.Obligated), budget-v.Obligated.Count(), maxCrashes)
	var plans []rounds.Plan
	for _, extra := range crashSets {
		crashing := extra.Union(v.Obligated)
		completers := v.Alive.Minus(crashing)

		// 2. For each crasher, enumerate reach subsets over *observable*
		// destinations: addressees that complete the round.
		reachChoices := make([][]model.ProcSet, 0, crashing.Count())
		crashers := crashing.Members()
		for _, q := range crashers {
			targets := v.Sending[q].Intersect(completers).Remove(q)
			reachChoices = append(reachChoices, allSubsets(targets))
		}

		// 3. In RWS, enumerate pending-message patterns: a set of droppers
		// among the completers (respecting the future budget), each with a
		// nonempty observable drop set.
		dropPatterns := []map[model.ProcessID]model.ProcSet{nil}
		if v.Model == rounds.RWS {
			futureBudget := budget - crashing.Count()
			dropPatterns = enumerateDrops(completers, v, futureBudget)
		}

		// Cartesian product: reach choices × drop patterns.
		forEachProduct(reachChoices, func(reaches []model.ProcSet) {
			for _, drops := range dropPatterns {
				p := rounds.Plan{}
				if len(crashers) > 0 {
					p.Crashes = make(map[model.ProcessID]model.ProcSet, len(crashers))
					for i, q := range crashers {
						p.Crashes[q] = reaches[i]
					}
				}
				if len(drops) > 0 {
					p.Drops = drops
				}
				plans = append(plans, p)
			}
		})
	}
	return plans
}

// subsetsWithin returns all subsets of s with size ≤ max (and ≤ cap if
// cap > 0), including the empty set.
func subsetsWithin(s model.ProcSet, max, cap int) []model.ProcSet {
	if cap > 0 && cap < max {
		max = cap
	}
	if max < 0 {
		max = 0
	}
	members := s.Members()
	var out []model.ProcSet
	var rec func(i int, cur model.ProcSet, size int)
	rec = func(i int, cur model.ProcSet, size int) {
		if i == len(members) {
			out = append(out, cur)
			return
		}
		rec(i+1, cur, size)
		if size < max {
			rec(i+1, cur.Add(members[i]), size+1)
		}
	}
	rec(0, 0, 0)
	return out
}

// allSubsets returns every subset of s (2^|s| sets).
func allSubsets(s model.ProcSet) []model.ProcSet {
	members := s.Members()
	n := len(members)
	out := make([]model.ProcSet, 0, 1<<uint(n))
	for mask := 0; mask < 1<<uint(n); mask++ {
		var sub model.ProcSet
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub = sub.Add(members[i])
			}
		}
		out = append(out, sub)
	}
	return out
}

// enumerateDrops returns every observable pending-message pattern among the
// completers: every choice of ≤ futureBudget droppers, each dropping a
// nonempty subset of its completer-addressees. The nil pattern (no drops)
// is always first.
func enumerateDrops(completers model.ProcSet, v *rounds.View, futureBudget int) []map[model.ProcessID]model.ProcSet {
	out := []map[model.ProcessID]model.ProcSet{nil}
	if futureBudget <= 0 {
		return out
	}
	candidates := completers.Members()
	// dropTargets[q] = observable addressees q could drop to.
	var rec func(i int, current map[model.ProcessID]model.ProcSet, used int)
	rec = func(i int, current map[model.ProcessID]model.ProcSet, used int) {
		if i == len(candidates) {
			if len(current) > 0 {
				cp := make(map[model.ProcessID]model.ProcSet, len(current))
				for k, val := range current {
					cp[k] = val
				}
				out = append(out, cp)
			}
			return
		}
		q := candidates[i]
		// Choice 1: q drops nothing.
		rec(i+1, current, used)
		if used >= futureBudget {
			return
		}
		targets := v.Sending[q].Intersect(completers).Remove(q)
		for _, sub := range allSubsets(targets) {
			if sub.Empty() {
				continue
			}
			current[q] = sub
			rec(i+1, current, used+1)
			delete(current, q)
		}
	}
	rec(0, make(map[model.ProcessID]model.ProcSet), 0)
	return out
}

// forEachProduct invokes fn for every element of the cartesian product of
// the given choice lists. With no choice lists, fn is called once with an
// empty selection.
func forEachProduct(choices [][]model.ProcSet, fn func([]model.ProcSet)) {
	selection := make([]model.ProcSet, len(choices))
	var rec func(i int)
	rec = func(i int) {
		if i == len(choices) {
			fn(selection)
			return
		}
		for _, c := range choices[i] {
			selection[i] = c
			rec(i + 1)
		}
	}
	rec(0)
}
