package explore

import (
	"time"

	"repro/internal/obs"
)

// Metric names exported by the explorer.
const (
	MetricRuns        = "ssfd_explore_runs_total"
	MetricPlans       = "ssfd_explore_plans_total"
	MetricForks       = "ssfd_explore_forks_total"
	MetricTruncated   = "ssfd_explore_truncated_runs_total"
	MetricRefutations = "ssfd_explore_refutations_total"
)

// Progress is the pace snapshot handed to Options.Progress during long
// explorations.
type Progress struct {
	Runs   int // complete runs visited so far
	Plans  int // adversary plans expanded so far
	Clones int // engine forks performed so far
	Depth  int // rounds executed in the run just completed

	Elapsed    time.Duration
	RunsPerSec float64

	// Expected is the anticipated total run count (Options.ExpectedRuns,
	// falling back to MaxRuns); 0 when the size of the space is unknown.
	Expected int
	// ETA estimates the remaining wall-clock at the current rate. Only
	// meaningful when Expected > 0 and RunsPerSec has stabilized; 0
	// otherwise (or once Runs >= Expected).
	ETA time.Duration
}

// exploreMetrics caches the explorer's counters.
type exploreMetrics struct {
	runs, plans, forks, truncated *obs.Counter
}

// metricShard is a worker-private accumulator for the explorer counters.
// The registry counters are atomic, but bumping an atomic per visited run
// from every worker would make the metrics cacheline the hottest word in
// the process; instead each worker counts into its own shard and flushes
// the totals once, when it finishes. Readers that sample the registry
// mid-exploration may therefore lag the true totals, but every completed
// exploration leaves the counters exact.
type metricShard struct {
	runs, plans, forks, truncated int64
}

func newExploreMetrics(reg *obs.Registry) exploreMetrics {
	return exploreMetrics{
		runs:      reg.Counter(MetricRuns),
		plans:     reg.Counter(MetricPlans),
		forks:     reg.Counter(MetricForks),
		truncated: reg.Counter(MetricTruncated),
	}
}
