package wire

import "encoding/binary"

// Batch container. The shared-mesh engine coalesces many encoded envelopes
// into one transport packet per link (count/time-threshold flush, see
// runtime.Batcher); the container is
//
//	0x00 | (uvarint frame-length | frame bytes)*
//
// A real envelope can never start with 0x00 — its first byte is the
// sender's uvarint process id, and process ids are ≥ 1 — so the marker byte
// distinguishes a batch from a bare envelope without touching the
// single-message encoding. SplitBatch accepts both forms, which keeps every
// receiver (engine demultiplexers, single-instance nodes, middleware)
// agnostic to whether the sending side batches.

// batchMarker is the leading byte of a batch packet.
const batchMarker = 0x00

// IsBatch reports whether data is a batch container rather than a bare
// envelope frame.
func IsBatch(data []byte) bool {
	return len(data) > 0 && data[0] == batchMarker
}

// AppendToBatch appends one encoded envelope frame to a batch buffer,
// starting the container when the buffer is empty. The returned slice is
// the (possibly reallocated) batch.
func AppendToBatch(batch, frame []byte) []byte {
	if len(batch) == 0 {
		batch = append(batch, batchMarker)
	}
	batch = appendUvarint(batch, uint64(len(frame)))
	return append(batch, frame...)
}

// SplitBatch invokes fn for every envelope frame inside data — once with
// data itself when it is a bare (unbatched) frame. fn's slices alias data
// and must not be retained past the call. A malformed container returns
// ErrTruncated; fn's first error aborts the walk.
func SplitBatch(data []byte, fn func(frame []byte) error) error {
	if !IsBatch(data) {
		if len(data) == 0 {
			return ErrTruncated
		}
		return fn(data)
	}
	pos := 1
	for pos < len(data) {
		l, n := binary.Uvarint(data[pos:])
		if n <= 0 || uint64(len(data)-pos-n) < l {
			return ErrTruncated
		}
		pos += n
		if err := fn(data[pos : pos+int(l)]); err != nil {
			return err
		}
		pos += int(l)
	}
	return nil
}

// BatchLen counts the envelope frames in data (1 for a bare frame). It
// returns 0 for a malformed container.
func BatchLen(data []byte) int {
	count := 0
	if err := SplitBatch(data, func([]byte) error { count++; return nil }); err != nil {
		return 0
	}
	return count
}
