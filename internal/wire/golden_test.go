package wire

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/nbac"
	"repro/internal/rounds"
)

// TestGoldenWireSizes pins the encoded size of one canonical envelope per
// message type. The table is the wire format's regression anchor: the
// messages/decision and bytes/decision baselines in EXPERIMENTS.md are
// stated against these sizes, and the planned zero-alloc codec rewrite
// must reproduce them byte-for-byte. A diff here means the format changed
// — update the table (and the recorded baselines) only deliberately.
func TestGoldenWireSizes(t *testing.T) {
	canon := func(k Kind, payload rounds.Message) Envelope {
		return Envelope{From: 1, To: 2, Round: 1, Kind: k, Payload: payload}
	}
	cases := []struct {
		env  Envelope
		size int
	}{
		{canon(KindNull, nil), 4},
		{canon(KindW, consensus.WMsg{W: model.NewValueSet(0, 1, 2)}), 8},
		{canon(KindD, consensus.DMsg{V: 5}), 5},
		{canon(KindA1Val, consensus.A1Val{V: 5}), 5},
		{canon(KindA1Fwd, consensus.A1Fwd{V: 5}), 5},
		{canon(KindVotes, nbac.VotesMsg{Known: []int8{1, 0, -1}}), 8},
		{canon(KindHeartbeat, nil), 4},
		{canon(KindFDPing, nil), 4},
		{canon(KindFDAck, nil), 4},
		{canon(KindFDRing, RingInfo{Origins: []RingOrigin{{Proc: 1, Seq: 1}, {Proc: 2, Seq: 2}, {Proc: 3, Seq: 3}}}), 11},
	}

	// The case list covers every kind, in tag order.
	if len(cases) != len(Kinds()) {
		t.Fatalf("golden table has %d rows, wire has %d kinds", len(cases), len(Kinds()))
	}
	var table strings.Builder
	for i, tc := range cases {
		if tc.env.Kind != Kinds()[i] {
			t.Fatalf("row %d is %v, want %v (keep tag order)", i, tc.env.Kind, Kinds()[i])
		}
		data, err := Encode(tc.env)
		if err != nil {
			t.Fatalf("encode %v: %v", tc.env.Kind, err)
		}
		fmt.Fprintf(&table, "%-9s %d\n", tc.env.Kind, len(data))
		if len(data) != tc.size {
			t.Errorf("kind %v: canonical envelope now encodes to %d bytes, want %d\n"+
				"full table:\n%s", tc.env.Kind, len(data), tc.size, table.String())
		}
		// And the frame round-trips.
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("decode %v: %v", tc.env.Kind, err)
		}
		if back.Kind != tc.env.Kind || back.From != tc.env.From || back.Round != tc.env.Round {
			t.Fatalf("kind %v: round-trip header mismatch: %+v", tc.env.Kind, back)
		}
	}
}

// TestCodecZeroValue proves the instrumented codec's zero value is
// byte-identical to the plain functions — the no-telemetry path costs
// nothing and changes nothing.
func TestCodecZeroValue(t *testing.T) {
	var c Codec
	env := Envelope{From: 1, To: 2, Round: 3, Kind: KindD, Payload: consensus.DMsg{V: -7}}
	plain, err := Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	tapped, err := c.Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	if string(plain) != string(tapped) {
		t.Fatalf("zero-value codec produced different bytes: %x vs %x", plain, tapped)
	}
	back, err := c.Decode(tapped)
	if err != nil {
		t.Fatal(err)
	}
	if back.Payload.(consensus.DMsg).V != -7 {
		t.Fatalf("round-trip payload: %+v", back.Payload)
	}
}

// TestGoldenInstanceWireSizes pins the instance-tagged encoding the
// shared-mesh engine multiplexes on: the instance id rides as a trailing
// uvarint, present exactly when nonzero. The single-instance rows prove the
// zero-cost claim — Instance 0 encodes byte-identically to the
// pre-instance format of TestGoldenWireSizes — and the tagged rows pin the
// varint growth schedule.
func TestGoldenInstanceWireSizes(t *testing.T) {
	canon := func(k Kind, inst uint64, payload rounds.Message) Envelope {
		return Envelope{From: 1, To: 2, Round: 1, Kind: k, Instance: inst, Payload: payload}
	}
	cases := []struct {
		env  Envelope
		size int
	}{
		{canon(KindNull, 0, nil), 4},      // single-instance: unchanged
		{canon(KindNull, 1, nil), 5},      // +1 tag byte
		{canon(KindNull, 127, nil), 5},    // largest 1-byte uvarint
		{canon(KindNull, 128, nil), 6},    // first 2-byte uvarint
		{canon(KindNull, 99999, nil), 7},  // 100k-instance scale: 3 bytes
		{canon(KindHeartbeat, 0, nil), 4}, // control traffic never carries an instance
		{canon(KindD, 3, consensus.DMsg{V: 5}), 6},
		{canon(KindW, 3, consensus.WMsg{W: model.NewValueSet(0, 1, 2)}), 9},
	}
	for _, tc := range cases {
		data, err := Encode(tc.env)
		if err != nil {
			t.Fatalf("encode %v inst=%d: %v", tc.env.Kind, tc.env.Instance, err)
		}
		if len(data) != tc.size {
			t.Errorf("kind %v instance %d: encodes to %d bytes, want %d",
				tc.env.Kind, tc.env.Instance, len(data), tc.size)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("decode %v inst=%d: %v", tc.env.Kind, tc.env.Instance, err)
		}
		if back.Instance != tc.env.Instance {
			t.Fatalf("kind %v: instance %d round-tripped to %d", tc.env.Kind, tc.env.Instance, back.Instance)
		}
	}
}

// TestInstanceZeroByteIdentity proves a zero-instance envelope is
// byte-for-byte the pre-instance encoding for EVERY kind: the golden table
// of TestGoldenWireSizes was produced before the field existed, and an
// explicit Instance: 0 must not disturb a single byte of it.
func TestInstanceZeroByteIdentity(t *testing.T) {
	envs := []Envelope{
		{From: 3, To: 1, Round: 7, Kind: KindNull},
		{From: 1, To: 2, Round: 2, Kind: KindW, Payload: consensus.WMsg{W: model.NewValueSet(4, 9)}},
		{From: 2, To: 3, Round: 1, Kind: KindVotes, Payload: nbac.VotesMsg{Known: []int8{1, -1}}},
		{From: 4, To: 5, Round: 300, Kind: KindHeartbeat},
	}
	for _, env := range envs {
		plain, err := Encode(env)
		if err != nil {
			t.Fatal(err)
		}
		tagged := env
		tagged.Instance = 0
		got, err := Encode(tagged)
		if err != nil {
			t.Fatal(err)
		}
		if string(plain) != string(got) {
			t.Fatalf("kind %v: explicit Instance 0 changed bytes: %x vs %x", env.Kind, plain, got)
		}
		back, err := Decode(plain)
		if err != nil {
			t.Fatal(err)
		}
		if back.Instance != 0 {
			t.Fatalf("kind %v: pre-instance frame decoded with instance %d", env.Kind, back.Instance)
		}
	}
}

// tapCount is a minimal Tap for the error-path test.
type tapCount struct{ enc, dec int }

func (tc *tapCount) OnEncode(Kind, int) { tc.enc++ }
func (tc *tapCount) OnDecode(Kind, int) { tc.dec++ }

// TestCodecTapSkipsErrors: failed conversions never reach the tap, so the
// accounting counts only bytes that actually exist.
func TestCodecTapSkipsErrors(t *testing.T) {
	tap := &tapCount{}
	c := Codec{Tap: tap}
	if _, err := c.Encode(Envelope{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown kind should fail to encode")
	}
	if _, err := c.Decode([]byte{0x01}); err == nil {
		t.Fatal("truncated frame should fail to decode")
	}
	if tap.enc != 0 || tap.dec != 0 {
		t.Fatalf("tap saw failed conversions: enc=%d dec=%d", tap.enc, tap.dec)
	}
	if _, err := c.Encode(Envelope{From: 1, To: 2, Round: 1, Kind: KindNull}); err != nil {
		t.Fatal(err)
	}
	if tap.enc != 1 {
		t.Fatalf("tap missed a successful encode: %d", tap.enc)
	}
}
