package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/nbac"
	"repro/internal/rounds"
)

func roundTrip(t *testing.T, e Envelope) Envelope {
	t.Helper()
	data, err := Encode(e)
	if err != nil {
		t.Fatalf("Encode(%+v): %v", e, err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestRoundTripAllKinds(t *testing.T) {
	tests := []struct {
		name    string
		payload rounds.Message
	}{
		{"null", nil},
		{"W", consensus.WMsg{W: model.NewValueSet(-3, 0, 42)}},
		{"W empty", consensus.WMsg{W: model.NewValueSet()}},
		{"D", consensus.DMsg{V: -7}},
		{"A1Val", consensus.A1Val{V: 123456789}},
		{"A1Fwd", consensus.A1Fwd{V: -1}},
		{"Votes", nbac.VotesMsg{Known: []int8{-1, 0, 1, -1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := EnvelopeFor(3, 5, 7, tt.payload)
			if err != nil {
				t.Fatal(err)
			}
			got := roundTrip(t, e)
			if got.From != 3 || got.To != 5 || got.Round != 7 || got.Kind != e.Kind {
				t.Errorf("header mismatch: %+v vs %+v", got, e)
			}
			if !reflect.DeepEqual(got.Payload, e.Payload) {
				t.Errorf("payload mismatch: %#v vs %#v", got.Payload, e.Payload)
			}
		})
	}
}

func TestHeartbeatRoundTrip(t *testing.T) {
	e := Envelope{From: 1, To: 2, Round: 99, Kind: KindHeartbeat}
	got := roundTrip(t, e)
	if got.Kind != KindHeartbeat || got.Round != 99 || got.Payload != nil {
		t.Errorf("heartbeat mismatch: %+v", got)
	}
}

func TestEnvelopeForUnsupported(t *testing.T) {
	if _, err := EnvelopeFor(1, 2, 3, "bogus"); err == nil {
		t.Error("unsupported payload accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("empty: err = %v, want ErrTruncated", err)
	}
	e, _ := EnvelopeFor(1, 2, 3, consensus.DMsg{V: 9})
	data, err := Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(data[:len(data)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: err = %v, want ErrTruncated", err)
	}
	bad := append([]byte{}, data...)
	bad[3] = 0xEE // corrupt the kind byte (from=1,to=2,round=3 are single bytes)
	if _, err := Decode(bad); !errors.Is(err, ErrBadKind) {
		t.Errorf("bad kind: err = %v, want ErrBadKind", err)
	}
}

func TestFrames(t *testing.T) {
	var buf []byte
	var err error
	want := []Envelope{}
	for i := 1; i <= 5; i++ {
		e, ferr := EnvelopeFor(model.ProcessID(i), 1, i, consensus.DMsg{V: model.Value(i * 11)})
		if ferr != nil {
			t.Fatal(ferr)
		}
		want = append(want, e)
		buf, err = AppendFrame(buf, e)
		if err != nil {
			t.Fatal(err)
		}
	}
	rest := buf
	for i := 0; i < 5; i++ {
		var e Envelope
		e, rest, err = ReadFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(e, want[i]) {
			t.Errorf("frame %d mismatch: %+v vs %+v", i, e, want[i])
		}
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	// A partial frame must report ErrTruncated and leave data untouched.
	if _, _, err := ReadFrame(buf[:3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("partial frame: err = %v, want ErrTruncated", err)
	}
}

// Property: W messages round-trip for arbitrary value sets.
func TestWRoundTripProperty(t *testing.T) {
	f := func(raw []int32, from, to uint8, round uint16) bool {
		vals := make([]model.Value, len(raw))
		for i, r := range raw {
			vals[i] = model.Value(r)
		}
		e, err := EnvelopeFor(model.ProcessID(from%60+1), model.ProcessID(to%60+1), int(round),
			consensus.WMsg{W: model.NewValueSet(vals...)})
		if err != nil {
			return false
		}
		data, err := Encode(e)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k := KindNull; k <= MaxKind; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind name empty")
	}
}

// TestControlKinds pins the control/data split the node demultiplexer and
// the cost accounting rely on: exactly the detector kinds are control.
func TestControlKinds(t *testing.T) {
	control := map[Kind]bool{KindHeartbeat: true, KindFDPing: true, KindFDAck: true, KindFDRing: true}
	for _, k := range Kinds() {
		if got := k.Control(); got != control[k] {
			t.Errorf("kind %v: Control() = %v, want %v", k, got, control[k])
		}
	}
}

// TestDetectorControlRoundTrips covers the zoo detectors' control kinds:
// bare ping/ack envelopes and a ring digest with per-origin sequences.
func TestDetectorControlRoundTrips(t *testing.T) {
	for _, k := range []Kind{KindFDPing, KindFDAck} {
		e := Envelope{From: 4, To: 1, Round: 17, Kind: k}
		got := roundTrip(t, e)
		if got.Kind != k || got.Round != 17 || got.Payload != nil {
			t.Errorf("%v mismatch: %+v", k, got)
		}
	}
	info := RingInfo{Origins: []RingOrigin{{Proc: 1, Seq: 9}, {Proc: 3, Seq: 120}}}
	e, err := EnvelopeFor(2, 3, 5, info)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != KindFDRing {
		t.Fatalf("EnvelopeFor inferred kind %v", e.Kind)
	}
	got := roundTrip(t, e)
	if !reflect.DeepEqual(got.Payload, info) {
		t.Errorf("ring payload mismatch: %#v", got.Payload)
	}
	// An empty digest round-trips too (decode yields zero origins).
	empty := roundTrip(t, Envelope{From: 1, To: 2, Round: 1, Kind: KindFDRing, Payload: RingInfo{}})
	if ri, ok := empty.Payload.(RingInfo); !ok || len(ri.Origins) != 0 {
		t.Errorf("empty ring digest: %#v", empty.Payload)
	}
}

// TestReadFrameChunked simulates a TCP stream arriving byte-by-byte: every
// strict prefix reports ErrTruncated without consuming input, and the full
// buffer yields the frame exactly once.
func TestReadFrameChunked(t *testing.T) {
	e, err := EnvelopeFor(2, 3, 9, consensus.WMsg{W: model.NewValueSet(7, -2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := AppendFrame(nil, e)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, rest, err := ReadFrame(buf[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix %d: err = %v, want ErrTruncated", cut, err)
		} else if len(rest) != cut {
			t.Fatalf("prefix %d consumed input", cut)
		}
	}
	got, rest, err := ReadFrame(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("full frame: err=%v rest=%d", err, len(rest))
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("frame mismatch")
	}
}
