// Package wire defines the binary message format of the live runtime
// (package runtime): a compact, self-describing encoding of the round-model
// messages of packages consensus and nbac, plus the runtime's own control
// messages (heartbeats). The format is hand-rolled on encoding/binary
// varints — no reflection, no schema registry — so a frame is cheap to
// encode and decode on the hot path of a round.
//
// Envelope layout (all integers unsigned varints unless noted):
//
//	from | to | round | kind | payload...
//
// TCP framing adds a uvarint length prefix in front of each envelope.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/nbac"
	"repro/internal/rounds"
)

// Packet is a raw frame as seen by a transport endpoint: the sender's
// identity plus the encoded envelope bytes. It lives here (rather than in
// package runtime) so that transport middleware — the fault injectors of
// package faults — can be written against the wire format without
// importing the runtime.
type Packet struct {
	From model.ProcessID
	Data []byte
}

// Kind tags the payload type of an envelope.
type Kind byte

// Payload kinds.
const (
	// KindNull is a round message with a null payload (the round model's
	// "no message", transmitted explicitly so receivers can distinguish
	// silence from crash).
	KindNull Kind = iota + 1
	// KindW is consensus.WMsg: a set of values.
	KindW
	// KindD is consensus.DMsg: a forced decision.
	KindD
	// KindA1Val is consensus.A1Val.
	KindA1Val
	// KindA1Fwd is consensus.A1Fwd.
	KindA1Fwd
	// KindVotes is nbac.VotesMsg.
	KindVotes
	// KindHeartbeat is the failure detector's liveness beacon (round field
	// carries the heartbeat sequence number).
	KindHeartbeat
	// KindFDPing is a bounded-message detector's liveness query (round field
	// carries the ping sequence number). Unlike the blind heartbeat beacon it
	// is sent only when the observer has heard nothing recently, and resent
	// only on timeout — the ADD-channel construction's message bound.
	KindFDPing
	// KindFDAck answers a KindFDPing (round field echoes the ping sequence).
	KindFDAck
	// KindFDRing is the logical-ring detector's forwarded liveness digest:
	// the payload (RingInfo) carries per-origin sequence numbers the sender
	// vouches for, so liveness evidence travels the ring in O(n) messages
	// per period instead of all-to-all broadcast.
	KindFDRing
)

// MaxKind is the largest assigned kind tag — the bound for per-kind tables.
const MaxKind = KindFDRing

// Kinds lists every payload kind in tag order — the iteration order of
// per-kind telemetry and the golden wire-size table.
func Kinds() []Kind {
	return []Kind{KindNull, KindW, KindD, KindA1Val, KindA1Fwd, KindVotes, KindHeartbeat,
		KindFDPing, KindFDAck, KindFDRing}
}

// Control reports whether the kind is runtime control traffic (failure-
// detector beacons, queries and digests) rather than a round-model message.
// The node demultiplexer hands control envelopes to the detector and never
// files them as round messages.
func (k Kind) Control() bool {
	switch k {
	case KindHeartbeat, KindFDPing, KindFDAck, KindFDRing:
		return true
	}
	return false
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindW:
		return "W"
	case KindD:
		return "D"
	case KindA1Val:
		return "A1Val"
	case KindA1Fwd:
		return "A1Fwd"
	case KindVotes:
		return "Votes"
	case KindHeartbeat:
		return "heartbeat"
	case KindFDPing:
		return "fdping"
	case KindFDAck:
		return "fdack"
	case KindFDRing:
		return "fdring"
	default:
		return fmt.Sprintf("Kind(%d)", byte(k))
	}
}

// RingOrigin is one process's liveness evidence inside a ring digest: the
// freshest heartbeat sequence number the digest's sender can vouch for.
type RingOrigin struct {
	Proc model.ProcessID
	Seq  uint64
}

// RingInfo is the KindFDRing payload: the set of origins (with per-origin
// sequence numbers) whose liveness the sender forwards around the logical
// ring. It lives here rather than in the detector package so the wire
// format stays closed under its own kinds (the detector implementations
// import wire, never the reverse).
type RingInfo struct {
	Origins []RingOrigin
}

// Envelope is one framed message.
type Envelope struct {
	From, To model.ProcessID
	Round    int
	Kind     Kind
	// Instance identifies which consensus instance the message belongs to
	// when many instances multiplex one physical mesh (the shared-mesh
	// engine, runtime.Engine). Instance 0 — the single-instance case —
	// costs nothing on the wire: the field is encoded as a trailing varint
	// only when nonzero, so every pre-instance frame is byte-identical and
	// decodes with Instance == 0.
	Instance uint64
	// Payload is the decoded round-model message (nil for KindNull and
	// KindHeartbeat).
	Payload rounds.Message
}

// Errors.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrBadKind   = errors.New("wire: unknown payload kind")
)

// appendUvarint appends v to buf.
func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// appendVarint appends a signed v to buf.
func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// Encode serializes an envelope.
func Encode(e Envelope) ([]byte, error) {
	buf := make([]byte, 0, 64)
	buf = appendUvarint(buf, uint64(e.From))
	buf = appendUvarint(buf, uint64(e.To))
	buf = appendUvarint(buf, uint64(e.Round))
	buf = append(buf, byte(e.Kind))
	switch e.Kind {
	case KindNull, KindHeartbeat, KindFDPing, KindFDAck:
		// no payload
	case KindFDRing:
		m, ok := e.Payload.(RingInfo)
		if !ok {
			return nil, fmt.Errorf("wire: kind fdring with payload %T", e.Payload)
		}
		buf = appendUvarint(buf, uint64(len(m.Origins)))
		for _, o := range m.Origins {
			buf = appendUvarint(buf, uint64(o.Proc))
			buf = appendUvarint(buf, o.Seq)
		}
	case KindW:
		m, ok := e.Payload.(consensus.WMsg)
		if !ok {
			return nil, fmt.Errorf("wire: kind W with payload %T", e.Payload)
		}
		vs := m.W.Values()
		buf = appendUvarint(buf, uint64(len(vs)))
		for _, v := range vs {
			buf = appendVarint(buf, int64(v))
		}
	case KindD:
		m, ok := e.Payload.(consensus.DMsg)
		if !ok {
			return nil, fmt.Errorf("wire: kind D with payload %T", e.Payload)
		}
		buf = appendVarint(buf, int64(m.V))
	case KindA1Val:
		m, ok := e.Payload.(consensus.A1Val)
		if !ok {
			return nil, fmt.Errorf("wire: kind A1Val with payload %T", e.Payload)
		}
		buf = appendVarint(buf, int64(m.V))
	case KindA1Fwd:
		m, ok := e.Payload.(consensus.A1Fwd)
		if !ok {
			return nil, fmt.Errorf("wire: kind A1Fwd with payload %T", e.Payload)
		}
		buf = appendVarint(buf, int64(m.V))
	case KindVotes:
		m, ok := e.Payload.(nbac.VotesMsg)
		if !ok {
			return nil, fmt.Errorf("wire: kind Votes with payload %T", e.Payload)
		}
		buf = appendUvarint(buf, uint64(len(m.Known)))
		for _, v := range m.Known {
			buf = appendVarint(buf, int64(v))
		}
	default:
		return nil, fmt.Errorf("%w: %v", ErrBadKind, e.Kind)
	}
	if e.Instance != 0 {
		// Trailing instance tag: every payload encoding above is
		// self-delimiting, so a decoder knows the tag is present exactly when
		// bytes remain. Omitting it for instance 0 keeps single-instance
		// frames byte-identical to the pre-instance format.
		buf = appendUvarint(buf, e.Instance)
	}
	return buf, nil
}

// reader tracks a decode position.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrTruncated
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

// Decode parses an envelope.
func Decode(data []byte) (Envelope, error) {
	r := &reader{buf: data}
	var e Envelope
	from, err := r.uvarint()
	if err != nil {
		return e, err
	}
	to, err := r.uvarint()
	if err != nil {
		return e, err
	}
	round, err := r.uvarint()
	if err != nil {
		return e, err
	}
	kb, err := r.byte()
	if err != nil {
		return e, err
	}
	e.From, e.To, e.Round, e.Kind = model.ProcessID(from), model.ProcessID(to), int(round), Kind(kb)
	switch e.Kind {
	case KindNull, KindHeartbeat, KindFDPing, KindFDAck:
		// no payload
	case KindFDRing:
		count, err := r.uvarint()
		if err != nil {
			return e, err
		}
		origins := make([]RingOrigin, 0, count)
		for i := uint64(0); i < count; i++ {
			proc, err := r.uvarint()
			if err != nil {
				return e, err
			}
			seq, err := r.uvarint()
			if err != nil {
				return e, err
			}
			origins = append(origins, RingOrigin{Proc: model.ProcessID(proc), Seq: seq})
		}
		e.Payload = RingInfo{Origins: origins}
	case KindW:
		count, err := r.uvarint()
		if err != nil {
			return e, err
		}
		vals := make([]model.Value, 0, count)
		for i := uint64(0); i < count; i++ {
			v, err := r.varint()
			if err != nil {
				return e, err
			}
			vals = append(vals, model.Value(v))
		}
		e.Payload = consensus.WMsg{W: model.NewValueSet(vals...)}
	case KindD:
		v, err := r.varint()
		if err != nil {
			return e, err
		}
		e.Payload = consensus.DMsg{V: model.Value(v)}
	case KindA1Val:
		v, err := r.varint()
		if err != nil {
			return e, err
		}
		e.Payload = consensus.A1Val{V: model.Value(v)}
	case KindA1Fwd:
		v, err := r.varint()
		if err != nil {
			return e, err
		}
		e.Payload = consensus.A1Fwd{V: model.Value(v)}
	case KindVotes:
		count, err := r.uvarint()
		if err != nil {
			return e, err
		}
		known := make([]int8, 0, count)
		for i := uint64(0); i < count; i++ {
			v, err := r.varint()
			if err != nil {
				return e, err
			}
			known = append(known, int8(v))
		}
		e.Payload = nbac.VotesMsg{Known: known}
	default:
		return e, fmt.Errorf("%w: %d", ErrBadKind, kb)
	}
	if r.pos < len(r.buf) {
		inst, err := r.uvarint()
		if err != nil {
			return e, err
		}
		e.Instance = inst
	}
	return e, nil
}

// Tap observes codec traffic: one callback per successful Encode/Decode
// with the envelope's kind and its encoded size in bytes. Implementations
// must be safe for concurrent use (a cluster's nodes share one tap) and
// must tolerate being invoked from hot paths — counting only, no I/O.
// Package netobs provides the standard implementation.
type Tap interface {
	OnEncode(k Kind, bytes int)
	OnDecode(k Kind, bytes int)
}

// Codec is an instrumented view of the package-level Encode/Decode pair:
// the zero value behaves identically to the plain functions, and a non-nil
// Tap additionally observes every successful conversion. It exists so the
// runtime can thread per-message-type accounting through every codec call
// site without the wire format itself growing global state.
type Codec struct {
	Tap Tap
}

// Encode serializes an envelope, reporting its kind and size to the tap.
func (c Codec) Encode(e Envelope) ([]byte, error) {
	data, err := Encode(e)
	if err == nil && c.Tap != nil {
		c.Tap.OnEncode(e.Kind, len(data))
	}
	return data, err
}

// Decode parses an envelope, reporting its kind and size to the tap.
func (c Codec) Decode(data []byte) (Envelope, error) {
	e, err := Decode(data)
	if err == nil && c.Tap != nil {
		c.Tap.OnDecode(e.Kind, len(data))
	}
	return e, err
}

// EnvelopeFor wraps a round-model payload, inferring the kind.
func EnvelopeFor(from, to model.ProcessID, round int, payload rounds.Message) (Envelope, error) {
	e := Envelope{From: from, To: to, Round: round, Payload: payload}
	switch payload.(type) {
	case nil:
		e.Kind = KindNull
		e.Payload = nil
	case consensus.WMsg:
		e.Kind = KindW
	case consensus.DMsg:
		e.Kind = KindD
	case consensus.A1Val:
		e.Kind = KindA1Val
	case consensus.A1Fwd:
		e.Kind = KindA1Fwd
	case nbac.VotesMsg:
		e.Kind = KindVotes
	case RingInfo:
		e.Kind = KindFDRing
	default:
		return e, fmt.Errorf("wire: unsupported payload type %T", payload)
	}
	return e, nil
}

// AppendFrame appends a length-prefixed envelope to buf (the TCP framing).
func AppendFrame(buf []byte, e Envelope) ([]byte, error) {
	body, err := Encode(e)
	if err != nil {
		return nil, err
	}
	buf = appendUvarint(buf, uint64(len(body)))
	return append(buf, body...), nil
}

// ReadFrame consumes one length-prefixed envelope from data, returning the
// envelope and the remaining bytes. It returns ErrTruncated when data does
// not hold a complete frame yet.
func ReadFrame(data []byte) (Envelope, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return Envelope{}, data, ErrTruncated
	}
	e, err := Decode(data[n : n+int(l)])
	if err != nil {
		return Envelope{}, data, err
	}
	return e, data[n+int(l):], nil
}
