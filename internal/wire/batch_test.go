package wire

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
)

func TestBatchRoundTrip(t *testing.T) {
	frames := [][]byte{}
	var batch []byte
	for inst := uint64(0); inst < 5; inst++ {
		env := Envelope{From: 1, To: 2, Round: int(inst + 1), Kind: KindD,
			Instance: inst, Payload: consensus.DMsg{V: model.Value(inst)}}
		data, err := Encode(env)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, data)
		batch = AppendToBatch(batch, data)
	}
	if !IsBatch(batch) {
		t.Fatalf("batch not recognized: %x", batch)
	}
	if got := BatchLen(batch); got != len(frames) {
		t.Fatalf("BatchLen = %d, want %d", got, len(frames))
	}
	i := 0
	err := SplitBatch(batch, func(frame []byte) error {
		if string(frame) != string(frames[i]) {
			t.Fatalf("frame %d mismatch: %x vs %x", i, frame, frames[i])
		}
		env, err := Decode(frame)
		if err != nil {
			t.Fatal(err)
		}
		if env.Instance != uint64(i) {
			t.Fatalf("frame %d decoded instance %d", i, env.Instance)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(frames) {
		t.Fatalf("walked %d frames, want %d", i, len(frames))
	}
}

// TestBareFrameSplit: a receiver that always goes through SplitBatch sees an
// unbatched envelope exactly once — senders may batch or not, receivers
// never care.
func TestBareFrameSplit(t *testing.T) {
	data, err := Encode(Envelope{From: 3, To: 1, Round: 2, Kind: KindNull})
	if err != nil {
		t.Fatal(err)
	}
	if IsBatch(data) {
		t.Fatalf("bare envelope misread as batch: %x", data)
	}
	calls := 0
	if err := SplitBatch(data, func(frame []byte) error {
		calls++
		if string(frame) != string(data) {
			t.Fatalf("bare frame altered: %x vs %x", frame, data)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("bare frame visited %d times", calls)
	}
}

func TestSplitBatchMalformed(t *testing.T) {
	cases := [][]byte{
		nil,                       // empty packet
		{batchMarker, 0x05, 0x01}, // declared length overruns the buffer
		{batchMarker, 0xFF},       // truncated uvarint
	}
	for _, data := range cases {
		if err := SplitBatch(data, func([]byte) error { return nil }); err == nil {
			t.Errorf("SplitBatch(%x) accepted malformed input", data)
		}
		if got := BatchLen(data); got != 0 {
			t.Errorf("BatchLen(%x) = %d, want 0", data, got)
		}
	}
	// An empty batch container (marker only) is valid and holds no frames.
	if err := SplitBatch([]byte{batchMarker}, func([]byte) error {
		t.Fatal("empty batch produced a frame")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// FuzzBatchSplit drives the cross-instance demultiplexing path the
// shared-mesh engine depends on: the fuzz input is interpreted as a
// schedule of (instance, round, kind) messages that are encoded, batched at
// byte-driven split points, split back and decoded — the round-trip must
// preserve count, order and instance tags exactly. The raw input is also
// fed to SplitBatch directly, which must never panic and must bound every
// frame inside the buffer.
func FuzzBatchSplit(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0x01, 0x80, 0x80, 0x01})
	f.Add([]byte{9, 200, 9, 200, 9, 200, 9, 200, 9, 200, 9, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Adversarial container: must not panic, frames must stay in
		// bounds (the callback slicing would panic otherwise).
		_ = SplitBatch(data, func(frame []byte) error {
			_, _ = Decode(frame) // corrupt frames may error; they must not panic
			return nil
		})

		// 2. Byte-driven schedule: every pair of input bytes is one message
		// of a distinct instance; a set high bit flushes the batch early so
		// the walk crosses batch boundaries at fuzz-chosen points.
		type sent struct {
			inst  uint64
			round int
		}
		var want []sent
		var batches [][]byte
		var cur []byte
		for i := 0; i+1 < len(data); i += 2 {
			inst := uint64(data[i])
			round := int(data[i+1]&0x7F) + 1
			env := Envelope{From: 1, To: 2, Round: round, Kind: KindNull, Instance: inst}
			frame, err := Encode(env)
			if err != nil {
				t.Fatal(err)
			}
			cur = AppendToBatch(cur, frame)
			want = append(want, sent{inst, round})
			if data[i+1]&0x80 != 0 {
				batches = append(batches, cur)
				cur = nil
			}
		}
		if len(cur) > 0 {
			batches = append(batches, cur)
		}
		var got []sent
		for _, b := range batches {
			if err := SplitBatch(b, func(frame []byte) error {
				env, err := Decode(frame)
				if err != nil {
					return err
				}
				got = append(got, sent{env.Instance, env.Round})
				return nil
			}); err != nil {
				t.Fatalf("well-formed batch failed to split: %v", err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("round-trip lost messages: %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("message %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	})
}
