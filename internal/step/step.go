// Package step implements the step-level computational model of the
// paper's Section 2: processes are deterministic automata that take atomic
// steps — receive a (possibly empty) set of messages, change state, and
// optionally send one message to a single process. A schedule is a sequence
// of such steps; system models (asynchronous, SS, SP) are sets of
// admissible schedules.
//
// The paper's models are realized as follows:
//
//   - The asynchronous model: any schedule in which correct processes keep
//     taking steps and every message to a correct process is eventually
//     delivered.
//   - The synchronous model SS (§2.4, after Dolev–Dwork–Stockmeyer): two
//     constants Φ ≥ 1 and Δ ≥ 1 constrain schedules. Process synchrony: in
//     any window of consecutive steps where some process takes Φ+1 steps,
//     every process alive at the end of the window takes at least one step.
//     Message synchrony: a message sent at global step k is received by the
//     end of the receiver's first step with global index ≥ k+Δ. Both
//     conditions are in terms of steps, not real time.
//   - The SP model (§2.6): asynchronous steps augmented with a perfect
//     failure detector query phase. Each step observes the detector's
//     current suspicion set; histories must satisfy P's strong accuracy (no
//     process is suspected before it crashes) — checked online — and strong
//     completeness — a liveness condition checked on complete runs.
//
// Schedulers play the adversary: they choose which process steps next,
// which buffered messages it receives, when crashes happen, and (in SP)
// when suspicions begin. Validators certify recorded traces against each
// model's conditions, so experiment E8's claims rest on checked runs.
package step

import (
	"fmt"

	"repro/internal/model"
)

// Message is a point-to-point message in flight or delivered.
type Message struct {
	From, To model.ProcessID
	SentStep int // global step index at which it was sent (1-based)
	Payload  any
}

// String renders the message.
func (m Message) String() string {
	return fmt.Sprintf("%v→%v@%d:%v", m.From, m.To, m.SentStep, m.Payload)
}

// Send is an automaton's outgoing message request: at most one per step, to
// a single destination, per the paper's step definition.
type Send struct {
	To      model.ProcessID
	Payload any
}

// Input is everything an automaton observes in one step. Automata have no
// access to the global clock; Local is the process's own step count.
type Input struct {
	// Local is this process's own 1-based step number.
	Local int
	// Received is the set of messages delivered in this step.
	Received []Message
	// Suspects is the failure detector's output for this step's query
	// phase; always empty when the engine runs without a detector.
	Suspects model.ProcSet
}

// Automaton is a step-level process: a deterministic automaton advanced one
// atomic step at a time. Returning nil sends nothing.
type Automaton interface {
	Step(in Input) *Send
}

// Decider is implemented by automata that produce an irrevocable decision
// (the SDD automata do).
type Decider interface {
	Decision() (model.Value, bool)
}

// Config parameterizes a fresh automaton.
type Config struct {
	ID    model.ProcessID
	N     int
	Input model.Value // the process's input value, if the problem has one
}

// Algorithm constructs step-level automata.
type Algorithm interface {
	Name() string
	New(cfg Config) Automaton
}

// EventKind distinguishes trace events.
type EventKind int

const (
	// StepEvent records one atomic step of a process.
	StepEvent EventKind = iota + 1
	// CrashEvent records a crash (the process takes no further steps).
	CrashEvent
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case StepEvent:
		return "step"
	case CrashEvent:
		return "crash"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of a run trace.
type Event struct {
	Kind   EventKind
	Global int             // global step index (1-based); crashes share the index of the next step
	Proc   model.ProcessID // the process stepping or crashing
	Local  int             // the process's own step count after this event

	Delivered []Message     // messages received in this step
	Sent      *Message      // message sent in this step, if any
	Suspects  model.ProcSet // detector output observed in this step
}

// String renders the event compactly.
func (e Event) String() string {
	switch e.Kind {
	case CrashEvent:
		return fmt.Sprintf("[%d] %v CRASHES", e.Global, e.Proc)
	default:
		s := fmt.Sprintf("[%d] %v steps (local %d)", e.Global, e.Proc, e.Local)
		if len(e.Delivered) > 0 {
			s += fmt.Sprintf(" recv %v", e.Delivered)
		}
		if e.Sent != nil {
			s += fmt.Sprintf(" send %v", *e.Sent)
		}
		if !e.Suspects.Empty() {
			s += fmt.Sprintf(" suspects %v", e.Suspects)
		}
		return s
	}
}

// Trace is a recorded run prefix: the schedule S, the failure pattern F and
// (for SP) the detector history H, all in one stream plus summary state.
type Trace struct {
	N      int
	Events []Event

	// CrashedAt[p] is the global step index before which p crashed
	// (0 = never crashed).
	CrashedAt []int
	// LocalSteps[p] is the total number of steps p took.
	LocalSteps []int
	// Decisions captures the final decision of each Decider automaton.
	DecidedValue []model.Value
	Decided      []bool
	// DecidedAtLocal[p] is p's local step count when it first decided.
	DecidedAtLocal []int
}

// Alive reports whether p is alive after the trace prefix.
func (tr *Trace) Alive(p model.ProcessID) bool { return tr.CrashedAt[p] == 0 }

// TookStep reports whether p took at least one step.
func (tr *Trace) TookStep(p model.ProcessID) bool { return tr.LocalSteps[p] > 0 }

// InitiallyCrashed reports whether p crashed before taking any step — the
// paper's "initially dead" condition from the SDD validity clause.
func (tr *Trace) InitiallyCrashed(p model.ProcessID) bool {
	return tr.CrashedAt[p] != 0 && tr.LocalSteps[p] == 0
}
