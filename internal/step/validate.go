package step

import (
	"fmt"

	"repro/internal/model"
)

// Violation reports where a trace breaks a model condition.
type Violation struct {
	Global int
	Proc   model.ProcessID
	Reason string
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("step %d, %v: %s", v.Global, v.Proc, v.Reason)
}

// CheckProcessSynchrony verifies SS's process synchrony over a trace: for
// any window of consecutive steps in which some process takes Φ+1 steps,
// every process alive at the end of the window takes at least one step in
// it. It suffices to check, for every process p, each window spanned by
// Φ+1 consecutive p-steps (any larger window contains one of these).
func CheckProcessSynchrony(tr *Trace, phi int) []Violation {
	var out []Violation
	// Collect per-process step positions (indices into the global step
	// sequence, counting only StepEvents).
	stepIdx := 0
	positions := make([][]int, tr.N+1)
	for _, ev := range tr.Events {
		if ev.Kind != StepEvent {
			continue
		}
		stepIdx++
		positions[ev.Proc] = append(positions[ev.Proc], stepIdx)
	}

	aliveAtStep := func(p model.ProcessID, globalStep int) bool {
		ca := tr.CrashedAt[p]
		return ca == 0 || ca > globalStep
	}

	for p := 1; p <= tr.N; p++ {
		pos := positions[p]
		for i := 0; i+phi < len(pos); i++ {
			lo, hi := pos[i], pos[i+phi] // window containing Φ+1 steps of p
			for q := 1; q <= tr.N; q++ {
				pq := model.ProcessID(q)
				if pq == model.ProcessID(p) || !aliveAtStep(pq, hi) {
					continue
				}
				stepped := false
				for _, qp := range positions[q] {
					if qp >= lo && qp <= hi {
						stepped = true
						break
					}
				}
				if !stepped {
					out = append(out, Violation{
						Global: hi,
						Proc:   pq,
						Reason: fmt.Sprintf("%v took %d steps in window [%d,%d] but alive %v took none (Φ=%d)",
							model.ProcessID(p), phi+1, lo, hi, pq, phi),
					})
				}
			}
		}
	}
	return out
}

// CheckMessageSynchrony verifies SS's message synchrony over a trace: a
// message sent at global step k to pi must be received by the end of pi's
// first step with global index l ≥ k+Δ.
func CheckMessageSynchrony(tr *Trace, delta int) []Violation {
	var out []Violation
	// deliveredAt[m-identity] — identify messages by (From,To,SentStep,
	// position among same-step sends); since a step sends at most one
	// message, (From,SentStep) is unique.
	type key struct {
		from model.ProcessID
		sent int
	}
	deliveredAt := make(map[key]int)
	var sent []Message
	for _, ev := range tr.Events {
		if ev.Kind != StepEvent {
			continue
		}
		for _, m := range ev.Delivered {
			deliveredAt[key{m.From, m.SentStep}] = ev.Global
		}
		if ev.Sent != nil {
			sent = append(sent, *ev.Sent)
		}
	}
	for _, m := range sent {
		// Find the receiver's first step at global index ≥ SentStep+Δ.
		deadline := 0
		for _, ev := range tr.Events {
			if ev.Kind == StepEvent && ev.Proc == m.To && ev.Global >= m.SentStep+delta {
				deadline = ev.Global
				break
			}
		}
		if deadline == 0 {
			continue // receiver took no step past the bound: no constraint yet
		}
		got, ok := deliveredAt[key{m.From, m.SentStep}]
		if !ok || got > deadline {
			out = append(out, Violation{
				Global: deadline,
				Proc:   m.To,
				Reason: fmt.Sprintf("message %v (sent step %d) not received by step %d (Δ=%d)",
					m, m.SentStep, deadline, delta),
			})
		}
	}
	return out
}

// CheckEventualDelivery verifies the asynchronous model's liveness clause
// on a *complete* run: every message sent to a process that never crashes
// has been received. (On a finite prefix this is the best approximation of
// "eventually received"; callers decide whether the trace is complete.)
func CheckEventualDelivery(tr *Trace) []Violation {
	var out []Violation
	type key struct {
		from model.ProcessID
		sent int
	}
	delivered := make(map[key]bool)
	var sent []Message
	for _, ev := range tr.Events {
		if ev.Kind != StepEvent {
			continue
		}
		for _, m := range ev.Delivered {
			delivered[key{m.From, m.SentStep}] = true
		}
		if ev.Sent != nil {
			sent = append(sent, *ev.Sent)
		}
	}
	for _, m := range sent {
		if tr.CrashedAt[m.To] != 0 {
			continue
		}
		if !delivered[key{m.From, m.SentStep}] {
			out = append(out, Violation{
				Proc:   m.To,
				Reason: fmt.Sprintf("message %v to a correct process never delivered", m),
			})
		}
	}
	return out
}

// CheckStrongCompleteness verifies — on a complete run — that every crashed
// process is suspected by every correct process by its last step: the
// finite-run reading of P's strong completeness ("eventually every crashed
// process is permanently suspected by every correct process").
func CheckStrongCompleteness(tr *Trace) []Violation {
	var out []Violation
	lastSuspects := make([]model.ProcSet, tr.N+1)
	took := make([]bool, tr.N+1)
	for _, ev := range tr.Events {
		if ev.Kind == StepEvent {
			lastSuspects[ev.Proc] = ev.Suspects
			took[ev.Proc] = true
		}
	}
	for p := 1; p <= tr.N; p++ {
		if tr.CrashedAt[p] == 0 {
			continue
		}
		for q := 1; q <= tr.N; q++ {
			pq := model.ProcessID(q)
			if tr.CrashedAt[q] != 0 || !took[q] {
				continue
			}
			if !lastSuspects[q].Has(model.ProcessID(p)) {
				out = append(out, Violation{
					Proc:   pq,
					Reason: fmt.Sprintf("correct %v never came to suspect crashed %v", pq, model.ProcessID(p)),
				})
			}
		}
	}
	return out
}

// CheckStrongAccuracy re-verifies offline what the engine enforces online:
// no process observes a suspicion of a process that has not crashed yet.
func CheckStrongAccuracy(tr *Trace) []Violation {
	var out []Violation
	for _, ev := range tr.Events {
		if ev.Kind != StepEvent {
			continue
		}
		ev.Suspects.ForEach(func(s model.ProcessID) bool {
			ca := tr.CrashedAt[s]
			if ca == 0 || ca > ev.Global {
				out = append(out, Violation{
					Global: ev.Global,
					Proc:   ev.Proc,
					Reason: fmt.Sprintf("suspects %v which is alive at step %d", s, ev.Global),
				})
			}
			return true
		})
	}
	return out
}
