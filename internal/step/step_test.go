package step

import (
	"errors"
	"testing"

	"repro/internal/model"
)

// pingAlg: p1 sends its input to p2 on its first step; p2 decides the first
// value it receives. Other processes idle.
type pingAlg struct{}

func (pingAlg) Name() string { return "ping" }

func (pingAlg) New(cfg Config) Automaton {
	switch cfg.ID {
	case 1:
		return &pingSender{v: cfg.Input}
	case 2:
		return &pingReceiver{}
	default:
		return &noopAuto{}
	}
}

type pingSender struct {
	v    model.Value
	sent bool
}

func (s *pingSender) Step(in Input) *Send {
	if s.sent {
		return nil
	}
	s.sent = true
	return &Send{To: 2, Payload: s.v}
}

type pingReceiver struct {
	decided  bool
	decision model.Value
}

func (r *pingReceiver) Step(in Input) *Send {
	if r.decided {
		return nil
	}
	for _, m := range in.Received {
		if v, ok := m.Payload.(model.Value); ok {
			r.decision, r.decided = v, true
		}
	}
	return nil
}

func (r *pingReceiver) Decision() (model.Value, bool) { return r.decision, r.decided }

type noopAuto struct{}

func (*noopAuto) Step(Input) *Send { return nil }

func TestFairSchedulerDeliversAndDecides(t *testing.T) {
	eng, err := NewEngine(pingAlg{}, []model.Value{7, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sched := &FairScheduler{Stop: StopWhenDecided(model.Singleton(2))}
	tr, err := eng.Run(sched, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Decided[2] || tr.DecidedValue[2] != 7 {
		t.Fatalf("p2 decided (%v,%d), want (true,7)", tr.Decided[2], tr.DecidedValue[2])
	}
	if v := CheckProcessSynchrony(tr, 1); len(v) != 0 {
		t.Errorf("fair schedule violates Φ=1 process synchrony: %v", v[0].Error())
	}
	if v := CheckMessageSynchrony(tr, 1); len(v) != 0 {
		t.Errorf("fair schedule violates Δ=1 message synchrony: %v", v[0].Error())
	}
	if v := CheckEventualDelivery(tr); len(v) != 0 {
		t.Errorf("fair schedule dropped a message: %v", v[0].Error())
	}
}

func TestEngineRejectsCrashedProcessStep(t *testing.T) {
	eng, err := NewEngine(pingAlg{}, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(Decision{Crash: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(Decision{Proc: 1}); !errors.Is(err, ErrCrashedProc) {
		t.Errorf("err = %v, want ErrCrashedProc", err)
	}
	if _, err := eng.Apply(Decision{Crash: 1}); !errors.Is(err, ErrCrashedProc) {
		t.Errorf("double crash err = %v, want ErrCrashedProc", err)
	}
}

func TestEngineRejectsBadDelivery(t *testing.T) {
	eng, err := NewEngine(pingAlg{}, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(Decision{Proc: 2, Deliver: []int{0}}); !errors.Is(err, ErrBadDelivery) {
		t.Errorf("err = %v, want ErrBadDelivery (empty buffer)", err)
	}
}

func TestEngineEnforcesStrongAccuracy(t *testing.T) {
	eng, err := NewEngineWithFD(pingAlg{}, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Apply(Decision{Proc: 2, NewSuspicions: []Suspicion{{Observer: 2, Subject: 1}}})
	if !errors.Is(err, ErrAccuracy) {
		t.Errorf("err = %v, want ErrAccuracy (p1 is alive)", err)
	}
	// After p1 crashes, the same suspicion is legal.
	if _, err := eng.Apply(Decision{Crash: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(Decision{Proc: 2, NewSuspicions: []Suspicion{{Observer: 2, Subject: 1}}}); err != nil {
		t.Errorf("legal suspicion rejected: %v", err)
	}
	tr := eng.Trace()
	if v := CheckStrongAccuracy(tr); len(v) != 0 {
		t.Errorf("offline accuracy check disagrees: %v", v[0].Error())
	}
	if v := CheckStrongCompleteness(tr); len(v) != 0 {
		t.Errorf("completeness: %v", v[0].Error())
	}
}

func TestEngineRejectsSuspicionWithoutFD(t *testing.T) {
	eng, err := NewEngine(pingAlg{}, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(Decision{Crash: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = eng.Apply(Decision{Proc: 2, NewSuspicions: []Suspicion{{Observer: 2, Subject: 1}}})
	if !errors.Is(err, ErrNoFD) {
		t.Errorf("err = %v, want ErrNoFD", err)
	}
}

func TestRunHorizon(t *testing.T) {
	eng, err := NewEngine(pingAlg{}, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	never := SchedulerFunc(func(v *View) Decision { return Decision{Proc: 2} })
	if _, err := eng.Run(never, 5); !errors.Is(err, ErrHorizon) {
		t.Errorf("err = %v, want ErrHorizon", err)
	}
	if got := eng.Trace().LocalSteps[2]; got != 5 {
		t.Errorf("p2 took %d steps, want 5", got)
	}
}

func TestProcessSynchronyViolationDetected(t *testing.T) {
	// p2 takes 3 steps while p1 (alive) takes none: violates Φ=2.
	eng, err := NewEngine(pingAlg{}, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	script := &ScriptScheduler{Decisions: []Decision{
		{Proc: 2}, {Proc: 2}, {Proc: 2},
	}}
	tr, err := eng.Run(script, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckProcessSynchrony(tr, 2); len(v) == 0 {
		t.Error("Φ=2 violation not detected")
	}
	// With Φ=3 the same schedule is fine (no process took 4 steps).
	if v := CheckProcessSynchrony(tr, 3); len(v) != 0 {
		t.Errorf("spurious Φ=3 violation: %v", v[0].Error())
	}
}

func TestProcessSynchronyIgnoresCrashed(t *testing.T) {
	// p1 crashes; p2 may then take arbitrarily many consecutive steps.
	eng, err := NewEngine(pingAlg{}, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	script := &ScriptScheduler{Decisions: []Decision{
		{Crash: 1}, {Proc: 2}, {Proc: 2}, {Proc: 2}, {Proc: 2},
	}}
	tr, err := eng.Run(script, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckProcessSynchrony(tr, 1); len(v) != 0 {
		t.Errorf("crashed process should not constrain the window: %v", v[0].Error())
	}
}

func TestMessageSynchronyViolationDetected(t *testing.T) {
	eng, err := NewEngine(pingAlg{}, []model.Value{9, 0})
	if err != nil {
		t.Fatal(err)
	}
	// p1 sends at global step 1; p2 steps at 2 and 3 without delivery.
	script := &ScriptScheduler{Decisions: []Decision{
		{Proc: 1}, {Proc: 2}, {Proc: 2},
	}}
	tr, err := eng.Run(script, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Δ=1: p2's step at global 2 ≥ 1+1 must have delivered the message.
	if v := CheckMessageSynchrony(tr, 1); len(v) == 0 {
		t.Error("Δ=1 violation not detected")
	}
	// Δ=3: p2's first step at global ≥ 4 does not exist: no constraint.
	if v := CheckMessageSynchrony(tr, 3); len(v) != 0 {
		t.Errorf("spurious Δ=3 violation: %v", v[0].Error())
	}
}

func TestSSSchedulerProducesAdmissibleSchedules(t *testing.T) {
	for _, cfg := range []struct{ phi, delta int }{{1, 1}, {2, 3}, {3, 2}} {
		for seed := int64(0); seed < 30; seed++ {
			eng, err := NewEngine(pingAlg{}, []model.Value{5, 0, 0, 0})
			if err != nil {
				t.Fatal(err)
			}
			sched := NewSSScheduler(cfg.phi, cfg.delta, seed, StopWhenDecided(model.Singleton(2)))
			tr, err := eng.Run(sched, 10000)
			if err != nil {
				t.Fatalf("Φ=%d Δ=%d seed=%d: %v", cfg.phi, cfg.delta, seed, err)
			}
			if v := CheckProcessSynchrony(tr, cfg.phi); len(v) != 0 {
				t.Fatalf("Φ=%d Δ=%d seed=%d: process synchrony: %v", cfg.phi, cfg.delta, seed, v[0].Error())
			}
			if v := CheckMessageSynchrony(tr, cfg.delta); len(v) != 0 {
				t.Fatalf("Φ=%d Δ=%d seed=%d: message synchrony: %v", cfg.phi, cfg.delta, seed, v[0].Error())
			}
			if !tr.Decided[2] || tr.DecidedValue[2] != 5 {
				t.Fatalf("Φ=%d Δ=%d seed=%d: p2 decided (%v,%d)", cfg.phi, cfg.delta, seed, tr.Decided[2], tr.DecidedValue[2])
			}
		}
	}
}

func TestSSSchedulerCrashInjection(t *testing.T) {
	eng, err := NewEngine(pingAlg{}, []model.Value{5, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSSScheduler(2, 2, 42, StopWhenDecided(model.Singleton(2)))
	sched.CrashAtStep = map[model.ProcessID]int{1: 1} // p1 crashes before any step
	tr, err := eng.Run(sched, 1000)
	if !errors.Is(err, ErrHorizon) {
		// p2 never decides because the value never arrives; the scheduler
		// runs until the horizon.
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
	if !tr.InitiallyCrashed(1) {
		t.Error("p1 should be initially crashed")
	}
	if tr.Decided[2] {
		t.Error("p2 decided without any input message (ping has no timeout)")
	}
}

func TestTraceHelpers(t *testing.T) {
	eng, err := NewEngine(pingAlg{}, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(Decision{Proc: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(Decision{Crash: 1}); err != nil {
		t.Fatal(err)
	}
	tr := eng.Trace()
	if tr.InitiallyCrashed(1) {
		t.Error("p1 took a step: not initially crashed")
	}
	if tr.Alive(1) || !tr.Alive(2) {
		t.Error("Alive wrong")
	}
	if !tr.TookStep(1) || tr.TookStep(2) {
		t.Error("TookStep wrong")
	}
}

func TestEventString(t *testing.T) {
	m := Message{From: 1, To: 2, SentStep: 3, Payload: "x"}
	ev := Event{Kind: StepEvent, Global: 4, Proc: 2, Local: 1, Delivered: []Message{m}, Sent: nil}
	if got := ev.String(); got == "" {
		t.Error("empty event string")
	}
	crash := Event{Kind: CrashEvent, Global: 9, Proc: 1}
	if got := crash.String(); got != "[9] p1 CRASHES" {
		t.Errorf("crash string = %q", got)
	}
	if EventKind(9).String() == "" {
		t.Error("unknown kind string empty")
	}
}
