package step

import (
	"math/rand"

	"repro/internal/model"
)

// SPScheduler drives SP executions: asynchronous interleavings with crash
// injection and adversarially delayed — but admissible — perfect failure
// detection.
//
//   - Process speeds: the next stepper is drawn uniformly from the alive
//     processes (fair with probability 1, which is all the asynchronous
//     model requires).
//   - Message delays: each buffered message is delivered at the receiver's
//     step with probability DeliverProb, and unconditionally once it is
//     MaxMsgAge global steps old (realizing eventual delivery within a
//     finite run).
//   - Suspicions: after a subject crashes, each observer starts suspecting
//     it after a per-pair random delay of at most MaxSuspicionDelay global
//     steps — never before the crash (strong accuracy) and always
//     eventually (strong completeness). Large delays are exactly the SP
//     adversary the paper exploits: detection is reliable but unboundedly
//     late.
type SPScheduler struct {
	Stop              StopWhen
	CrashAtStep       map[model.ProcessID]int
	DeliverProb       float64
	MaxMsgAge         int
	MaxSuspicionDelay int

	// CrashOnDecide, if nonzero, crashes that process at the scheduler's
	// first opportunity after it decides — the paper's "broadcasts,
	// decides, and then crashes" scenario (§5.3).
	CrashOnDecide model.ProcessID
	// CrashAfterSteps crashes a process once it has taken the given number
	// of local steps — e.g. right after it finished a send phase.
	CrashAfterSteps map[model.ProcessID]int
	// WithholdFrom lists senders whose messages are delivered only once
	// they are WithholdAge global steps old: the targeted (but still
	// finite, hence admissible) delay that turns them into pending
	// messages when failure detection is faster.
	WithholdFrom model.ProcSet
	WithholdAge  int

	rng       *rand.Rand
	crashedAt map[model.ProcessID]int
	suspectAt map[[2]model.ProcessID]int // (observer, subject) → global step
	suspected map[[2]model.ProcessID]bool
}

var _ Scheduler = (*SPScheduler)(nil)

// NewSPScheduler returns a seeded SP scheduler with sane defaults.
func NewSPScheduler(seed int64, stop StopWhen) *SPScheduler {
	return &SPScheduler{
		Stop:              stop,
		DeliverProb:       0.5,
		MaxMsgAge:         12,
		MaxSuspicionDelay: 8,
		rng:               rand.New(rand.NewSource(seed)),
		crashedAt:         make(map[model.ProcessID]int),
		suspectAt:         make(map[[2]model.ProcessID]int),
		suspected:         make(map[[2]model.ProcessID]bool),
	}
}

// Next implements Scheduler.
func (s *SPScheduler) Next(v *View) Decision {
	for p, k := range s.CrashAfterSteps {
		if v.Alive.Has(p) && v.LocalSteps[p] >= k {
			delete(s.CrashAfterSteps, p)
			s.crashedAt[p] = v.GlobalStep
			for o := 1; o <= v.N; o++ {
				obs := model.ProcessID(o)
				if obs == p {
					continue
				}
				s.suspectAt[[2]model.ProcessID{obs, p}] = v.GlobalStep + s.rng.Intn(s.MaxSuspicionDelay+1)
			}
			return Decision{Crash: p}
		}
	}
	if p := s.CrashOnDecide; p != 0 && v.Alive.Has(p) && v.Decided[p] {
		s.CrashOnDecide = 0
		s.crashedAt[p] = v.GlobalStep
		for o := 1; o <= v.N; o++ {
			obs := model.ProcessID(o)
			if obs == p {
				continue
			}
			s.suspectAt[[2]model.ProcessID{obs, p}] = v.GlobalStep + s.rng.Intn(s.MaxSuspicionDelay+1)
		}
		return Decision{Crash: p}
	}
	for p, at := range s.CrashAtStep {
		if at <= v.GlobalStep && v.Alive.Has(p) {
			delete(s.CrashAtStep, p)
			s.crashedAt[p] = v.GlobalStep
			// Draw each observer's detection delay now.
			for o := 1; o <= v.N; o++ {
				obs := model.ProcessID(o)
				if obs == p {
					continue
				}
				key := [2]model.ProcessID{obs, p}
				s.suspectAt[key] = v.GlobalStep + s.rng.Intn(s.MaxSuspicionDelay+1)
			}
			return Decision{Crash: p}
		}
	}
	if s.Stop != nil && s.Stop(v) {
		return Decision{Suspend: true}
	}
	if v.Alive.Empty() {
		return Decision{Suspend: true}
	}

	members := v.Alive.Members()
	p := members[s.rng.Intn(len(members))]

	d := Decision{Proc: p}
	for i, m := range v.Buffers[p] {
		if s.WithholdFrom.Has(m.From) {
			age := s.WithholdAge
			if age <= 0 {
				age = s.MaxMsgAge
			}
			if v.GlobalStep-m.SentStep >= age {
				d.Deliver = append(d.Deliver, i)
			}
			continue
		}
		if v.GlobalStep-m.SentStep >= s.MaxMsgAge || s.rng.Float64() < s.DeliverProb {
			d.Deliver = append(d.Deliver, i)
		}
	}
	for subject, crashStep := range s.crashedAt {
		key := [2]model.ProcessID{p, subject}
		if s.suspected[key] {
			continue
		}
		if due, ok := s.suspectAt[key]; ok && v.GlobalStep >= due && v.GlobalStep > crashStep {
			d.NewSuspicions = append(d.NewSuspicions, Suspicion{Observer: p, Subject: subject})
			s.suspected[key] = true
		}
	}
	return d
}
