package step

import (
	"errors"
	"fmt"

	"repro/internal/model"
)

// Decision is a scheduler's choice for the next event.
type Decision struct {
	// Crash, if nonzero, crashes that process now instead of stepping
	// anyone. Proc and Deliver are ignored.
	Crash model.ProcessID

	// Proc is the process that takes the next step.
	Proc model.ProcessID
	// Deliver lists indices into Proc's buffer to deliver in this step.
	// Indices refer to the buffer as shown in the view, in order.
	Deliver []int

	// Suspend, if true, ends the run (the scheduler has nothing further to
	// schedule; validators decide whether the prefix is admissible).
	Suspend bool

	// NewSuspicions (SP only) starts suspicions in the detector history as
	// of the current global step. Strong accuracy is enforced: each subject
	// must already be crashed.
	NewSuspicions []Suspicion
}

// Suspicion is one (observer, subject) suspicion start.
type Suspicion struct {
	Observer, Subject model.ProcessID
}

// View is the read-only state a scheduler sees before each decision.
type View struct {
	GlobalStep int // index the next step will carry (1-based)
	N          int
	Alive      model.ProcSet
	LocalSteps []int       // per-process step counts (index 1..N)
	Buffers    [][]Message // per-process pending messages (index 1..N); read-only
	Decided    []bool      // per-process decision status for Decider automata
}

// Scheduler is the step-level adversary.
type Scheduler interface {
	Next(v *View) Decision
}

// SchedulerFunc adapts a function to Scheduler.
type SchedulerFunc func(v *View) Decision

// Next implements Scheduler.
func (f SchedulerFunc) Next(v *View) Decision { return f(v) }

// Errors returned by the engine.
var (
	ErrCrashedProc = errors.New("step: scheduler selected a crashed process")
	ErrBadDelivery = errors.New("step: delivery index out of range")
	ErrAccuracy    = errors.New("step: strong accuracy violated: suspicion of a live process")
	ErrHorizon     = errors.New("step: horizon exhausted before the scheduler suspended the run")
	ErrNoFD        = errors.New("step: suspicions scheduled but the engine runs without a failure detector")
)

// Engine executes step-level automata under a scheduler. Use NewEngine for
// the plain asynchronous/SS models and NewEngineWithFD for SP.
type Engine struct {
	n       int
	autos   []Automaton
	buffers [][]Message
	alive   model.ProcSet
	local   []int
	global  int

	withFD    bool
	suspect   []model.ProcSet // current suspicion set per observer (index 1..N)
	historyFD HistoryFD       // when set, overrides scheduler-driven suspicions

	trace *Trace
}

// NewEngine prepares an execution without a failure detector (asynchronous
// or SS, depending on the scheduler's discipline).
func NewEngine(alg Algorithm, inputs []model.Value) (*Engine, error) {
	return newEngine(alg, inputs, false)
}

// NewEngineWithFD prepares an SP execution: every step queries the perfect
// failure detector, whose history the scheduler drives under the engine's
// strong-accuracy enforcement.
func NewEngineWithFD(alg Algorithm, inputs []model.Value) (*Engine, error) {
	return newEngine(alg, inputs, true)
}

// HistoryFD supplies each step's detector output from an external history:
// observer's suspicion set as of the given global step. It is how the
// weaker Chandra-Toueg classes (◇P, S, ◇S — which may suspect live
// processes and retract) are driven: generate a class history with package
// fd and install it here. The engine then bypasses its strong-accuracy
// enforcement — the history's axioms are the caller's contract.
type HistoryFD func(observer model.ProcessID, globalStep int) model.ProcSet

// NewEngineWithHistoryFD prepares an execution whose detector output is
// read from the provided history instead of scheduler-driven suspicions.
func NewEngineWithHistoryFD(alg Algorithm, inputs []model.Value, h HistoryFD) (*Engine, error) {
	e, err := newEngine(alg, inputs, true)
	if err != nil {
		return nil, err
	}
	e.historyFD = h
	return e, nil
}

func newEngine(alg Algorithm, inputs []model.Value, withFD bool) (*Engine, error) {
	n := len(inputs)
	if n < 1 || n > model.MaxProcs {
		return nil, fmt.Errorf("step: NewEngine: n=%d out of range [1,%d]", n, model.MaxProcs)
	}
	e := &Engine{
		n:       n,
		autos:   make([]Automaton, n+1),
		buffers: make([][]Message, n+1),
		alive:   model.FullSet(n),
		local:   make([]int, n+1),
		withFD:  withFD,
		suspect: make([]model.ProcSet, n+1),
		trace: &Trace{
			N:              n,
			CrashedAt:      make([]int, n+1),
			LocalSteps:     make([]int, n+1),
			DecidedValue:   make([]model.Value, n+1),
			Decided:        make([]bool, n+1),
			DecidedAtLocal: make([]int, n+1),
		},
	}
	for i := 1; i <= n; i++ {
		e.autos[i] = alg.New(Config{ID: model.ProcessID(i), N: n, Input: inputs[i-1]})
	}
	return e, nil
}

// N returns the system size.
func (e *Engine) N() int { return e.n }

// Alive returns the set of processes not yet crashed.
func (e *Engine) Alive() model.ProcSet { return e.alive }

// Trace returns the recorded trace so far. The engine keeps appending to
// it; callers should treat it as read-only.
func (e *Engine) Trace() *Trace { return e.trace }

// view assembles the scheduler's view.
func (e *Engine) view() *View {
	return &View{
		GlobalStep: e.global + 1,
		N:          e.n,
		Alive:      e.alive,
		LocalSteps: e.local,
		Buffers:    e.buffers,
		Decided:    e.trace.Decided,
	}
}

// Apply executes one scheduler decision. It reports (done, err); done is
// true when the scheduler suspended the run.
func (e *Engine) Apply(d Decision) (bool, error) {
	if d.Suspend {
		return true, nil
	}
	if len(d.NewSuspicions) > 0 && !e.withFD {
		return false, ErrNoFD
	}
	for _, s := range d.NewSuspicions {
		if e.alive.Has(s.Subject) {
			return false, fmt.Errorf("%w: %v suspects %v at global step %d",
				ErrAccuracy, s.Observer, s.Subject, e.global+1)
		}
		e.suspect[s.Observer] = e.suspect[s.Observer].Add(s.Subject)
	}
	if d.Crash != 0 {
		if !e.alive.Has(d.Crash) {
			return false, fmt.Errorf("%w: crash of %v", ErrCrashedProc, d.Crash)
		}
		e.alive = e.alive.Remove(d.Crash)
		e.trace.CrashedAt[d.Crash] = e.global + 1
		e.trace.Events = append(e.trace.Events, Event{
			Kind: CrashEvent, Global: e.global + 1, Proc: d.Crash, Local: e.local[d.Crash],
		})
		return false, nil
	}
	p := d.Proc
	if !e.alive.Has(p) {
		return false, fmt.Errorf("%w: step of %v", ErrCrashedProc, p)
	}

	// Extract the delivered messages from p's buffer (descending removal).
	buf := e.buffers[p]
	delivered := make([]Message, 0, len(d.Deliver))
	seen := make(map[int]bool, len(d.Deliver))
	for _, idx := range d.Deliver {
		if idx < 0 || idx >= len(buf) || seen[idx] {
			return false, fmt.Errorf("%w: index %d of %d for %v", ErrBadDelivery, idx, len(buf), p)
		}
		seen[idx] = true
		delivered = append(delivered, buf[idx])
	}
	if len(seen) > 0 {
		rest := buf[:0]
		for i := range buf {
			if !seen[i] {
				rest = append(rest, buf[i])
			}
		}
		e.buffers[p] = rest
	}

	e.global++
	e.local[p]++
	in := Input{
		Local:    e.local[p],
		Received: delivered,
	}
	if e.withFD {
		if e.historyFD != nil {
			in.Suspects = e.historyFD(p, e.global)
		} else {
			in.Suspects = e.suspect[p]
		}
	}
	send := e.autos[p].Step(in)

	ev := Event{
		Kind: StepEvent, Global: e.global, Proc: p, Local: e.local[p],
		Delivered: delivered, Suspects: in.Suspects,
	}
	if send != nil {
		if !send.To.Valid(e.n) {
			return false, fmt.Errorf("step: %v sent to invalid destination %v", p, send.To)
		}
		m := Message{From: p, To: send.To, SentStep: e.global, Payload: send.Payload}
		// Messages to crashed processes are dropped (they will never step).
		if e.alive.Has(send.To) {
			e.buffers[send.To] = append(e.buffers[send.To], m)
		}
		ev.Sent = &m
	}
	e.trace.Events = append(e.trace.Events, ev)
	e.trace.LocalSteps[p] = e.local[p]

	if dec, ok := e.autos[p].(Decider); ok {
		if v, decided := dec.Decision(); decided && !e.trace.Decided[p] {
			e.trace.Decided[p] = true
			e.trace.DecidedValue[p] = v
			e.trace.DecidedAtLocal[p] = e.local[p]
		}
	}
	return false, nil
}

// Run drives the engine under sched until it suspends or horizon steps have
// executed. It returns the trace; ErrHorizon wraps the case where the
// scheduler never suspended.
func (e *Engine) Run(sched Scheduler, horizon int) (*Trace, error) {
	for i := 0; i < horizon; i++ {
		done, err := e.Apply(sched.Next(e.view()))
		if err != nil {
			return e.trace, err
		}
		if done {
			return e.trace, nil
		}
	}
	return e.trace, ErrHorizon
}
