package step

import (
	"math/rand"

	"repro/internal/model"
)

// StopWhen is a predicate deciding when a scheduler should suspend the run
// (e.g. "the observer process has decided").
type StopWhen func(v *View) bool

// StopWhenDecided suspends once every process in want has decided.
func StopWhenDecided(want model.ProcSet) StopWhen {
	return func(v *View) bool {
		done := true
		want.ForEach(func(p model.ProcessID) bool {
			if !v.Decided[p] {
				done = false
				return false
			}
			return true
		})
		return done
	}
}

// FairScheduler is the benign scheduler: it cycles round-robin over alive
// processes and delivers every buffered message at each step. The schedules
// it produces are admissible in every model of the paper — in particular
// they satisfy SS's process synchrony with Φ = 1 and message synchrony with
// Δ = 1 — so it realizes the "perfect" synchronous run.
type FairScheduler struct {
	Stop StopWhen
	next model.ProcessID
}

var _ Scheduler = (*FairScheduler)(nil)

// Next implements Scheduler.
func (s *FairScheduler) Next(v *View) Decision {
	if s.Stop != nil && s.Stop(v) {
		return Decision{Suspend: true}
	}
	if v.Alive.Empty() {
		return Decision{Suspend: true}
	}
	// Advance round-robin to the next alive process.
	p := s.next
	for i := 0; i < v.N; i++ {
		p++
		if p > model.ProcessID(v.N) {
			p = 1
		}
		if v.Alive.Has(p) {
			break
		}
	}
	s.next = p
	deliver := make([]int, len(v.Buffers[p]))
	for i := range deliver {
		deliver[i] = i
	}
	return Decision{Proc: p, Deliver: deliver}
}

// SSScheduler generates random schedules that are admissible in the SS
// model with the given Φ and Δ bounds.
//
// Process synchrony is maintained online with a staleness rule: the
// scheduler tracks, for each ordered pair (q, r), how many steps r has
// taken since q's last step, and only schedules r while that count is
// below Φ for every alive q. If a window contained Φ+1 steps of r with no
// step of some alive q, the last of those r-steps would have been
// scheduled at count ≥ Φ — impossible. The process with the oldest last
// step is always schedulable, so the rule never deadlocks.
//
// Message synchrony: every message is delivered no later than the
// receiver's first step at global index ≥ sent+Δ; younger messages are
// delivered early at random.
//
// Crashes are injected from CrashAtStep: process p crashes immediately
// before the step that would make the global count reach CrashAtStep[p].
type SSScheduler struct {
	Phi, Delta  int
	Stop        StopWhen
	CrashAtStep map[model.ProcessID]int

	rng *rand.Rand
	// since[q][r] = number of r-steps since q's last step.
	since [][]int
}

var _ Scheduler = (*SSScheduler)(nil)

// NewSSScheduler returns a seeded SS-admissible scheduler.
func NewSSScheduler(phi, delta int, seed int64, stop StopWhen) *SSScheduler {
	if phi < 1 {
		phi = 1
	}
	if delta < 1 {
		delta = 1
	}
	return &SSScheduler{
		Phi:   phi,
		Delta: delta,
		Stop:  stop,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Next implements Scheduler.
func (s *SSScheduler) Next(v *View) Decision {
	if s.since == nil {
		s.since = make([][]int, v.N+1)
		for i := range s.since {
			s.since[i] = make([]int, v.N+1)
		}
	}
	// Crash injection first: a crash scheduled for this global step fires
	// before anyone steps.
	for p, at := range s.CrashAtStep {
		if at == v.GlobalStep && v.Alive.Has(p) {
			delete(s.CrashAtStep, p)
			return Decision{Crash: p}
		}
	}
	if s.Stop != nil && s.Stop(v) {
		return Decision{Suspend: true}
	}
	if v.Alive.Empty() {
		return Decision{Suspend: true}
	}

	// Collect the processes schedulable under the staleness rule.
	var legal []model.ProcessID
	v.Alive.ForEach(func(r model.ProcessID) bool {
		ok := true
		v.Alive.ForEach(func(q model.ProcessID) bool {
			if q != r && s.since[q][r] >= s.Phi {
				ok = false
				return false
			}
			return true
		})
		if ok {
			legal = append(legal, r)
		}
		return true
	})
	if len(legal) == 0 {
		// Unreachable: the oldest-stepped alive process is always legal.
		panic("step: SSScheduler: no schedulable process (staleness rule broken)")
	}
	p := legal[s.rng.Intn(len(legal))]

	// Bookkeeping: p's step ages every other view of p and resets p's own.
	for q := 1; q <= v.N; q++ {
		if model.ProcessID(q) != p {
			s.since[q][p]++
		}
	}
	for r := 1; r <= v.N; r++ {
		s.since[p][r] = 0
	}

	// Mandatory deliveries: messages whose Δ deadline this step hits.
	// Optional deliveries: younger messages, delivered with probability ½.
	var deliver []int
	for i, m := range v.Buffers[p] {
		if v.GlobalStep >= m.SentStep+s.Delta || s.rng.Intn(2) == 0 {
			deliver = append(deliver, i)
		}
	}
	return Decision{Proc: p, Deliver: deliver}
}

// ScriptScheduler replays a fixed decision list, then suspends.
type ScriptScheduler struct {
	Decisions []Decision
	i         int
}

var _ Scheduler = (*ScriptScheduler)(nil)

// Next implements Scheduler.
func (s *ScriptScheduler) Next(*View) Decision {
	if s.i >= len(s.Decisions) {
		return Decision{Suspend: true}
	}
	d := s.Decisions[s.i]
	s.i++
	return d
}

// DelayAllScheduler is the asynchronous adversary used by the Theorem 3.1
// construction: it steps only the processes in Run (round-robin), never
// delivers any message to them until Release returns true, and lets the
// caller orchestrate crashes and suspicions up front via Prelude decisions.
type DelayAllScheduler struct {
	Prelude []Decision // executed first, verbatim
	Run     model.ProcSet
	Stop    StopWhen

	i    int
	next model.ProcessID
}

var _ Scheduler = (*DelayAllScheduler)(nil)

// Next implements Scheduler.
func (s *DelayAllScheduler) Next(v *View) Decision {
	if s.i < len(s.Prelude) {
		d := s.Prelude[s.i]
		s.i++
		return d
	}
	if s.Stop != nil && s.Stop(v) {
		return Decision{Suspend: true}
	}
	target := s.Run.Intersect(v.Alive)
	if target.Empty() {
		return Decision{Suspend: true}
	}
	p := s.next
	for i := 0; i < v.N; i++ {
		p++
		if p > model.ProcessID(v.N) {
			p = 1
		}
		if target.Has(p) {
			break
		}
	}
	s.next = p
	return Decision{Proc: p} // deliver nothing: all messages stay in flight
}
