package rounds

import (
	"repro/internal/model"
	"repro/internal/obs"
)

// Metric names exported by the round engines, each labelled with the model
// ({model="RS"} or {model="RWS"}) via obs.Label.
const (
	MetricRuns              = "ssfd_rounds_runs_total"
	MetricRounds            = "ssfd_rounds_rounds_total"
	MetricMessagesSent      = "ssfd_rounds_messages_sent_total"
	MetricMessagesDelivered = "ssfd_rounds_messages_delivered_total"
	MetricMessagesDropped   = "ssfd_rounds_messages_dropped_total"
	MetricMessagesPending   = "ssfd_rounds_messages_pending_total"
	MetricCrashes           = "ssfd_rounds_crashes_total"
	MetricDecisions         = "ssfd_rounds_decisions_total"
)

// roundsMetrics caches the per-model counters an engine increments, resolved
// once at construction so Step pays only atomic adds.
type roundsMetrics struct {
	runs, rounds       *obs.Counter
	sent, delivered    *obs.Counter
	dropped, pending   *obs.Counter
	crashes, decisions *obs.Counter
}

func newRoundsMetrics(reg *obs.Registry, kind ModelKind) roundsMetrics {
	label := func(name string) *obs.Counter {
		return reg.Counter(obs.Label(name, "model", kind.String()))
	}
	return roundsMetrics{
		runs:      label(MetricRuns),
		rounds:    label(MetricRounds),
		sent:      label(MetricMessagesSent),
		delivered: label(MetricMessagesDelivered),
		dropped:   label(MetricMessagesDropped),
		pending:   label(MetricMessagesPending),
		crashes:   label(MetricCrashes),
		decisions: label(MetricDecisions),
	}
}

// Totals are the message and failure tallies of one round or one whole run,
// recomputed exactly from the record. The engine increments its counters by
// the same arithmetic, so for any completed run the registry deltas equal
// Run.Totals() — the property tests pin this down.
type Totals struct {
	Rounds    int // rounds executed
	Sent      int // non-null messages addressed to other processes
	Delivered int // messages actually received (equals RoundRecord.Messages)
	Dropped   int // messages lost to a crash (sender's or receiver's)
	Pending   int // RWS pending messages: dropped by a live (obligated) sender
	Crashes   int // processes that crashed
	Decisions int // decisions taken (run-level only; zero in per-round totals)
}

// Add accumulates o into t.
func (t *Totals) Add(o Totals) {
	t.Rounds += o.Rounds
	t.Sent += o.Sent
	t.Delivered += o.Delivered
	t.Dropped += o.Dropped
	t.Pending += o.Pending
	t.Crashes += o.Crashes
	t.Decisions += o.Decisions
}

// Totals recomputes the message tallies of one round from its record.
// Self-deliveries are local bookkeeping, not network traffic, and are
// excluded throughout; the invariant Sent = Delivered + Dropped + Pending
// holds by construction.
func (rr *RoundRecord) Totals() Totals {
	t := Totals{Rounds: 1, Crashes: rr.Crashed.Count()}
	survivors := rr.AliveStart.Minus(rr.Crashed)
	rr.AliveStart.ForEach(func(pj model.ProcessID) bool {
		sent := rr.Sent[pj].Remove(pj)
		delivered := rr.Reached[pj].Remove(pj)
		lost := sent.Minus(delivered)
		t.Sent += sent.Count()
		t.Delivered += delivered.Count()
		if rr.Crashed.Has(pj) {
			// A mid-broadcast crash loses the rest of the broadcast outright.
			t.Dropped += lost.Count()
		} else {
			// A live sender loses a message either because the receiver
			// crashed this round (dropped) or because the adversary withheld
			// it from a live receiver — an RWS pending message, obligating
			// the sender to crash next round.
			t.Pending += lost.Intersect(survivors).Count()
			t.Dropped += lost.Minus(survivors).Count()
		}
		return true
	})
	return t
}

// Totals recomputes the run's aggregate tallies from its record.
func (r *Run) Totals() Totals {
	var t Totals
	for i := range r.Rounds {
		t.Add(r.Rounds[i].Totals())
	}
	for p := 1; p <= r.N; p++ {
		if r.DecidedAt[p] != 0 {
			t.Decisions++
		}
	}
	return t
}

func setInts(s model.ProcSet) []int {
	ids := make([]int, 0, s.Count())
	s.ForEach(func(p model.ProcessID) bool {
		ids = append(ids, int(p))
		return true
	})
	return ids
}

// recordEvents converts one round record (plus the per-process decision
// table, which the record itself does not carry) into its event sequence:
// round_start, then send/drop per sender ascending, then crashes ascending,
// then decisions ascending.
func recordEvents(rec *RoundRecord, n int, decidedAt []int, decisionOf []model.Value, emit func(obs.Event)) {
	emit(obs.Event{Type: obs.EventRoundStart, Round: rec.Round, Alive: setInts(rec.AliveStart)})
	for j := 1; j <= n; j++ {
		pj := model.ProcessID(j)
		if !rec.AliveStart.Has(pj) || rec.Sent[j].Empty() {
			continue
		}
		emit(obs.Event{Type: obs.EventSend, Round: rec.Round, From: j,
			To: setInts(rec.Reached[j].Remove(pj))})
		if dropped := rec.dropped(pj).Remove(pj); !dropped.Empty() {
			emit(obs.Event{Type: obs.EventDrop, Round: rec.Round, From: j,
				To: setInts(dropped)})
		}
	}
	rec.Crashed.ForEach(func(p model.ProcessID) bool {
		emit(obs.Event{Type: obs.EventCrash, Round: rec.Round, Proc: int(p)})
		return true
	})
	for p := 1; p <= n; p++ {
		if decidedAt[p] == rec.Round {
			emit(obs.Event{Type: obs.EventDecide, Round: rec.Round, Proc: p,
				Value: obs.Int64(int64(decisionOf[p]))})
		}
	}
}

// EventsFromRun converts a completed run record into the structured event
// stream the engine would have emitted live: run_start, the per-round
// events, run_end. obs.RenderEvents applied to the result reproduces
// trace.RenderRun(run) byte for byte.
func EventsFromRun(run *Run) []obs.Event {
	values := make([]int64, run.N)
	for p := 1; p <= run.N; p++ {
		values[p-1] = int64(run.Initial[p])
	}
	events := []obs.Event{{
		Type:      obs.EventRunStart,
		Algorithm: run.Algorithm,
		Model:     run.Model.String(),
		N:         run.N,
		T:         run.T,
		Values:    values,
	}}
	for i := range run.Rounds {
		recordEvents(&run.Rounds[i], run.N, run.DecidedAt, run.DecisionOf,
			func(ev obs.Event) { events = append(events, ev) })
	}
	return append(events, obs.Event{Type: obs.EventRunEnd, Truncated: run.Truncated})
}
