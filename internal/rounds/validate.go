package rounds

import (
	"fmt"

	"repro/internal/model"
)

// Violation describes where a run record breaks a model's synchrony
// property. It is both a test aid and the mechanism by which experiment E10
// certifies the engines and emulations.
type Violation struct {
	Round    int
	Sender   model.ProcessID
	Receiver model.ProcessID
	Reason   string
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("round %d: %v → %v: %s", v.Round, v.Sender, v.Receiver, v.Reason)
}

// CheckRoundSynchrony verifies the RS property over a run record: if pi is
// alive at the end of round r and does not receive pj's round-r message
// (which pj addressed to pi), then pj failed before sending to pi at round
// r — i.e. pj crashed during round r (with pi outside its reach set) or
// earlier. Additionally, in RS a message from a process that completes the
// round must reach every addressee: pending messages are impossible.
//
// It returns all violations found (empty means the run is RS-admissible).
func CheckRoundSynchrony(run *Run) []Violation {
	var out []Violation
	for idx := range run.Rounds {
		rr := &run.Rounds[idx]
		r := rr.Round
		for j := 1; j <= run.N; j++ {
			pj := model.ProcessID(j)
			if !rr.AliveStart.Has(pj) {
				continue
			}
			dropped := rr.dropped(pj)
			if dropped.Empty() {
				continue
			}
			if !rr.Crashed.Has(pj) {
				// pj survived the round yet some addressee missed its
				// message: impossible in RS.
				dropped.ForEach(func(pi model.ProcessID) bool {
					if pi != pj && run.AliveAtEnd(pi, r) {
						out = append(out, Violation{
							Round: r, Sender: pj, Receiver: pi,
							Reason: "message from a surviving sender was not received (pending messages are impossible in RS)",
						})
					}
					return true
				})
			}
		}
	}
	return out
}

// CheckWeakRoundSynchrony verifies the RWS property (Lemma 4.1) over a run
// record: if pi is alive at the end of round r and does not receive pj's
// round-r message (addressed to pi), then pj crashes by the end of round
// r+1.
func CheckWeakRoundSynchrony(run *Run) []Violation {
	var out []Violation
	for idx := range run.Rounds {
		rr := &run.Rounds[idx]
		r := rr.Round
		for j := 1; j <= run.N; j++ {
			pj := model.ProcessID(j)
			if !rr.AliveStart.Has(pj) {
				continue
			}
			dropped := rr.dropped(pj)
			if dropped.Empty() {
				continue
			}
			dropped.ForEach(func(pi model.ProcessID) bool {
				if pi == pj || !run.AliveAtEnd(pi, r) {
					return true // receiver crashed: no constraint
				}
				cr := run.CrashRound[pj]
				if cr == 0 || cr > r+1 {
					out = append(out, Violation{
						Round: r, Sender: pj, Receiver: pi,
						Reason: fmt.Sprintf("pending message but sender does not crash by the end of round %d (crash round %d, 0 = never)", r+1, cr),
					})
				}
				return true
			})
		}
	}
	return out
}

// CheckCrashConsistency verifies the structural invariants every run must
// satisfy regardless of model: crashes are permanent, at most T processes
// crash, crashed processes neither send nor receive afterwards, and alive
// sets shrink monotonically.
func CheckCrashConsistency(run *Run) []Violation {
	var out []Violation
	if f := run.NumFaulty(); f > run.T {
		out = append(out, Violation{Reason: fmt.Sprintf("%d crashes exceed t=%d", f, run.T)})
	}
	prevAlive := model.FullSet(run.N)
	for idx := range run.Rounds {
		rr := &run.Rounds[idx]
		r := rr.Round
		if rr.AliveStart != prevAlive {
			out = append(out, Violation{Round: r, Reason: fmt.Sprintf(
				"alive-at-start %v does not match survivors of previous round %v", rr.AliveStart, prevAlive)})
		}
		if !rr.Crashed.Subset(rr.AliveStart) {
			out = append(out, Violation{Round: r, Reason: "a process crashed twice"})
		}
		for j := 1; j <= run.N; j++ {
			pj := model.ProcessID(j)
			if !rr.AliveStart.Has(pj) && !rr.Sent[j].Empty() {
				out = append(out, Violation{Round: r, Sender: pj, Reason: "a crashed process sent a message"})
			}
			if !rr.Reached[j].Subset(rr.Sent[j]) {
				out = append(out, Violation{Round: r, Sender: pj, Reason: "reached set is not a subset of sent set"})
			}
		}
		prevAlive = rr.AliveStart.Minus(rr.Crashed)
	}
	return out
}

// Admissible reports whether the run satisfies the synchrony property of
// its own model plus the structural invariants.
func Admissible(run *Run) []Violation {
	out := CheckCrashConsistency(run)
	switch run.Model {
	case RS:
		out = append(out, CheckRoundSynchrony(run)...)
	case RWS:
		out = append(out, CheckWeakRoundSynchrony(run)...)
	}
	return out
}
