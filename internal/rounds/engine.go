package rounds

import (
	"errors"
	"fmt"

	"repro/internal/model"
	"repro/internal/obs"
)

// DefaultRoundLimit bounds executions whose algorithm fails to terminate.
// Every algorithm in the paper decides within t+1 rounds (plus one round of
// decision forwarding), so t+3 rounds is a safe, exact horizon; we leave a
// little extra headroom for experimental variants.
func DefaultRoundLimit(t int) int { return t + 4 }

// ErrRoundLimit is wrapped into the error returned when an execution
// exceeds its round limit without all live processes deciding.
var ErrRoundLimit = errors.New("rounds: round limit exceeded before all live processes decided")

// Engine executes a round-based algorithm in RS or RWS under a given
// adversary. The zero value is not usable; construct with NewEngine.
//
// The engine is single-threaded and deterministic: identical algorithm,
// initial values and adversary produce identical runs. (Concurrency is the
// business of package runtime, which realizes the same models with live
// goroutines; the engine exists for exact adversarial control.)
type Engine struct {
	kind  ModelKind
	n, t  int
	limit int

	alg     Algorithm
	initial []model.Value // indexed 1..n

	procs      []Process // indexed 1..n; nil once crashed
	alive      model.ProcSet
	crashRound []int
	decidedAt  []int
	decisionOf []model.Value
	obligated  model.ProcSet // droppers that must crash next round
	round      int           // last completed round

	run *Run

	metrics  roundsMetrics // resolved counters (nil-safe when registry is nil)
	sink     obs.Sink      // optional structured-event stream; nil = disabled
	finished bool          // run_end emitted and runs counter bumped
}

// Option configures an Engine.
type Option func(*Engine)

// WithRoundLimit overrides the default execution horizon.
func WithRoundLimit(limit int) Option {
	return func(e *Engine) { e.limit = limit }
}

// WithMetrics redirects the engine's counters to reg instead of obs.Default.
// A nil registry disables metrics entirely.
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) { e.metrics = newRoundsMetrics(reg, e.kind) }
}

// WithEventSink streams structured run events (run_start, round_start, send,
// drop, crash, decide, run_end) to sink as the engine executes. The stream
// is the machine-readable twin of trace.RenderRun: obs.RenderEvents on the
// collected events reproduces the rendered narrative exactly.
func WithEventSink(sink obs.Sink) Option {
	return func(e *Engine) { e.sink = sink }
}

// NewEngine prepares an execution of alg over n processes tolerating t
// crashes in the given model, with initial[i-1] as p_i's initial value.
func NewEngine(kind ModelKind, alg Algorithm, initial []model.Value, t int, opts ...Option) (*Engine, error) {
	n := len(initial)
	if n < 1 || n > model.MaxProcs {
		return nil, fmt.Errorf("rounds: NewEngine: n=%d out of range [1,%d]", n, model.MaxProcs)
	}
	if t < 0 || t >= n {
		return nil, fmt.Errorf("rounds: NewEngine: t=%d out of range [0,%d)", t, n)
	}
	if kind != RS && kind != RWS {
		return nil, fmt.Errorf("rounds: NewEngine: unknown model kind %v", kind)
	}
	e := &Engine{
		kind:       kind,
		n:          n,
		t:          t,
		limit:      DefaultRoundLimit(t),
		alg:        alg,
		initial:    make([]model.Value, n+1),
		procs:      make([]Process, n+1),
		alive:      model.FullSet(n),
		crashRound: make([]int, n+1),
		decidedAt:  make([]int, n+1),
		decisionOf: make([]model.Value, n+1),
	}
	copy(e.initial[1:], initial)
	e.metrics = newRoundsMetrics(obs.Default, kind)
	for _, opt := range opts {
		opt(e)
	}
	for i := 1; i <= n; i++ {
		e.procs[i] = alg.New(ProcConfig{ID: model.ProcessID(i), N: n, T: t, Initial: e.initial[i]})
	}
	e.run = &Run{
		Algorithm:  alg.Name(),
		Model:      kind,
		N:          n,
		T:          t,
		Initial:    append([]model.Value(nil), e.initial...),
		CrashRound: e.crashRound,
		DecidedAt:  e.decidedAt,
		DecisionOf: e.decisionOf,
	}
	if e.sink != nil {
		values := make([]int64, n)
		for i := 1; i <= n; i++ {
			values[i-1] = int64(e.initial[i])
		}
		e.sink.Emit(obs.Event{
			Type:      obs.EventRunStart,
			Algorithm: alg.Name(),
			Model:     kind.String(),
			N:         n,
			T:         t,
			Values:    values,
		})
	}
	return e, nil
}

// N returns the system size.
func (e *Engine) N() int { return e.n }

// T returns the resilience bound.
func (e *Engine) T() int { return e.t }

// Kind returns the model being executed.
func (e *Engine) Kind() ModelKind { return e.kind }

// Round returns the number of completed rounds.
func (e *Engine) Round() int { return e.round }

// Alive returns the processes alive after the last completed round.
func (e *Engine) Alive() model.ProcSet { return e.alive }

// Obligated returns the processes that must crash in the next round to
// preserve weak round synchrony.
func (e *Engine) Obligated() model.ProcSet { return e.obligated }

// Done reports whether every live process has decided (the engine's halt
// condition: latency measures count rounds until decisions, and every
// algorithm in the paper quiesces once all live processes have decided).
func (e *Engine) Done() bool {
	done := true
	e.alive.ForEach(func(p model.ProcessID) bool {
		if e.decidedAt[p] == 0 {
			done = false
			return false
		}
		return true
	})
	return done
}

// View assembles the adversary's view for the next round. The message
// pattern is computed by calling Msgs on every live process; the engine
// caches nothing, so View must be followed by StepWithMsgs via Step.
func (e *Engine) view(msgs [][]Message) *View {
	v := &View{
		Round:       e.round + 1,
		N:           e.n,
		T:           e.t,
		Model:       e.kind,
		Alive:       e.alive,
		FaultySoFar: e.n - e.alive.Count(),
		Obligated:   e.obligated,
		Sending:     make([]model.ProcSet, e.n+1),
	}
	for j := 1; j <= e.n; j++ {
		if msgs[j] == nil {
			continue
		}
		var s model.ProcSet
		for i := 1; i <= e.n; i++ {
			if msgs[j][i] != nil {
				s = s.Add(model.ProcessID(i))
			}
		}
		v.Sending[j] = s
	}
	return v
}

// NextView computes the adversary view of the round about to execute,
// without executing it. It requires Msgs to be side-effect-free (true of
// every algorithm in this repository): the engine calls Msgs again inside
// Step. The exhaustive explorer uses NextView to enumerate the legal plans
// of a round before forking the engine.
func (e *Engine) NextView() *View {
	r := e.round + 1
	msgs := make([][]Message, e.n+1)
	e.alive.ForEach(func(p model.ProcessID) bool {
		msgs[p] = e.procs[p].Msgs(r)
		return true
	})
	return e.view(msgs)
}

// Step executes one round under the given adversary. It returns an error if
// the adversary's plan is illegal for the model.
func (e *Engine) Step(adv Adversary) error {
	r := e.round + 1

	// 1. Message generation: every process alive at the start of the round
	// produces its messages (a process crashing *during* the round still
	// generated messages; the adversary chooses who they reach).
	msgs := make([][]Message, e.n+1)
	e.alive.ForEach(func(p model.ProcessID) bool {
		out := e.procs[p].Msgs(r)
		if out != nil && len(out) != e.n+1 {
			panic(fmt.Sprintf("rounds: %s: Msgs(%d) of %v returned %d entries, want %d",
				e.alg.Name(), r, p, len(out), e.n+1))
		}
		msgs[p] = out
		return true
	})

	// 2. Adversary plans the round; the engine validates the plan.
	v := e.view(msgs)
	plan := adv.Plan(v)
	if err := plan.validate(v); err != nil {
		return err
	}

	// 3. Work out deliveries.
	rec := RoundRecord{
		Round:      r,
		AliveStart: e.alive,
		Crashed:    plan.crashSet(),
		Sent:       make([]model.ProcSet, e.n+1),
		Reached:    make([]model.ProcSet, e.n+1),
	}
	for j := 1; j <= e.n; j++ {
		rec.Sent[j] = v.Sending[j]
	}

	survivors := e.alive.Minus(rec.Crashed)
	for j := 1; j <= e.n; j++ {
		pj := model.ProcessID(j)
		if !e.alive.Has(pj) {
			continue
		}
		sent := rec.Sent[j]
		var reached model.ProcSet
		switch {
		case rec.Crashed.Has(pj):
			// A crashing process reaches exactly the adversary-chosen
			// subset of its addressees (its own transition never runs, so
			// self-delivery is moot).
			reached = plan.Crashes[pj].Intersect(sent).Remove(pj)
		default:
			reached = sent
			if d, ok := plan.Drops[pj]; ok {
				reached = reached.Minus(d)
			}
		}
		// Only processes that complete the round observably receive
		// anything; trim the record so Reached reflects actual deliveries.
		rec.Reached[j] = reached.Intersect(survivors)
	}

	// 4. Deliver and transition every survivor in lock-step.
	received := make([][]Message, e.n+1)
	survivors.ForEach(func(pi model.ProcessID) bool {
		in := make([]Message, e.n+1)
		for j := 1; j <= e.n; j++ {
			if rec.Reached[j].Has(pi) {
				in[j] = msgs[j][pi]
				if model.ProcessID(j) != pi {
					// Self-delivery always succeeds for a process that
					// completes the round but is not a network message.
					rec.Messages++
				}
			}
		}
		received[pi] = in
		return true
	})
	survivors.ForEach(func(pi model.ProcessID) bool {
		e.procs[pi].Trans(r, received[pi])
		if e.decidedAt[pi] == 0 {
			if val, ok := e.procs[pi].Decision(); ok {
				e.decidedAt[pi] = r
				e.decisionOf[pi] = val
			}
		}
		return true
	})

	// 5. Bookkeeping: record crashes, rotate obligations.
	rec.Crashed.ForEach(func(p model.ProcessID) bool {
		e.crashRound[p] = r
		e.procs[p] = nil
		return true
	})
	e.alive = survivors
	e.obligated = 0
	for j, dropped := range plan.Drops {
		if !dropped.Empty() && survivors.Has(j) {
			// Dropping to a process that crashed this very round leaves no
			// observable trace, hence no obligation: weak round synchrony
			// only constrains messages a *live* receiver failed to get.
			if !dropped.Intersect(survivors).Empty() {
				e.obligated = e.obligated.Add(j)
			}
		}
	}
	e.round = r
	e.run.Rounds = append(e.run.Rounds, rec)

	// 6. Observability: counters count exactly what the record tallies (the
	// property tests hold the registry to Run.Totals()), and the event sink
	// receives the round's structured twin of the trace narrative.
	rt := rec.Totals()
	decisions := 0
	for p := 1; p <= e.n; p++ {
		if e.decidedAt[p] == r {
			decisions++
		}
	}
	e.metrics.rounds.Inc()
	e.metrics.sent.Add(int64(rt.Sent))
	e.metrics.delivered.Add(int64(rt.Delivered))
	e.metrics.dropped.Add(int64(rt.Dropped))
	e.metrics.pending.Add(int64(rt.Pending))
	e.metrics.crashes.Add(int64(rt.Crashes))
	e.metrics.decisions.Add(int64(decisions))
	if e.sink != nil {
		recordEvents(&rec, e.n, e.decidedAt, e.decisionOf, e.sink.Emit)
	}
	return nil
}

// Execute runs rounds under adv until every live process has decided, at
// least minRounds rounds have executed, and no weak-round-synchrony
// obligations remain; or until the round limit is hit (which marks the run
// Truncated). It returns the completed run record.
func (e *Engine) Execute(adv Adversary, minRounds int) (*Run, error) {
	for {
		if e.round >= e.limit {
			e.run.Truncated = !e.Done()
			return e.finish(), nil
		}
		if e.round >= minRounds && e.Done() && e.obligated.Empty() {
			return e.finish(), nil
		}
		if err := e.Step(adv); err != nil {
			return nil, err
		}
	}
}

// finish freezes and returns the run record, closing out the observability
// stream exactly once even if Execute is re-entered.
func (e *Engine) finish() *Run {
	if !e.finished {
		e.finished = true
		e.metrics.runs.Inc()
		if e.sink != nil {
			e.sink.Emit(obs.Event{Type: obs.EventRunEnd, Truncated: e.run.Truncated})
		}
	}
	return e.run
}

// Run is a convenience wrapper: build an engine and execute it to completion.
func RunAlgorithm(kind ModelKind, alg Algorithm, initial []model.Value, t int, adv Adversary, opts ...Option) (*Run, error) {
	e, err := NewEngine(kind, alg, initial, t, opts...)
	if err != nil {
		return nil, err
	}
	return e.Execute(adv, 0)
}

// Clone returns an independent copy of the engine, including deep copies of
// every live process automaton. It fails if some process does not implement
// Cloner. The exhaustive explorer uses clones to fork executions at
// adversary choice points without replaying prefixes.
//
// Clones are fully owned by the caller and safe to hand to another
// goroutine: every mutable slice (crashRound, decidedAt, decisionOf,
// initial, the Run header) is deep-copied. The only state shared with the
// parent is immutable by construction — the per-round RoundRecord Sent and
// Reached slices, which are written exactly once inside the Step that
// appends their record and never mutated afterwards — plus the metrics
// counters, which are atomic. The parallel explorer relies on this
// ownership split: concurrent branches may step, clone and finish freely
// without synchronizing on their common prefix.
func (e *Engine) Clone() (*Engine, error) {
	c := &Engine{
		kind:       e.kind,
		n:          e.n,
		t:          e.t,
		limit:      e.limit,
		alg:        e.alg,
		initial:    append([]model.Value(nil), e.initial...),
		procs:      make([]Process, e.n+1),
		alive:      e.alive,
		crashRound: append([]int(nil), e.crashRound...),
		decidedAt:  append([]int(nil), e.decidedAt...),
		decisionOf: append([]model.Value(nil), e.decisionOf...),
		obligated:  e.obligated,
		round:      e.round,
		// The clone keeps counting into the same registry (forked rounds are
		// still executed rounds) but does not inherit the event sink: two
		// engines interleaving one JSONL stream would garble it.
		metrics:  e.metrics,
		finished: e.finished,
	}
	for i := 1; i <= e.n; i++ {
		if e.procs[i] == nil {
			continue
		}
		cl, ok := e.procs[i].(Cloner)
		if !ok {
			return nil, fmt.Errorf("rounds: Clone: process %d of %s does not implement Cloner", i, e.alg.Name())
		}
		c.procs[i] = cl.CloneProcess()
	}
	c.run = &Run{
		Algorithm: e.run.Algorithm,
		Model:     e.run.Model,
		N:         e.run.N,
		T:         e.run.T,
		Initial:   c.initial,
		// The record structs are copied; their interior Sent/Reached slices
		// are shared with the parent, which is safe because records are
		// append-only and immutable once their round has executed.
		Rounds:     append([]RoundRecord(nil), e.run.Rounds...),
		CrashRound: c.crashRound,
		DecidedAt:  c.decidedAt,
		DecisionOf: c.decisionOf,
		Truncated:  e.run.Truncated,
	}
	return c, nil
}
