package rounds

import (
	"errors"
	"testing"

	"repro/internal/model"
)

// echoAlg is a trivial test algorithm: every process broadcasts its initial
// value each round and decides it at round 1. It exists to exercise engine
// mechanics independently of the real consensus algorithms.
type echoAlg struct{}

func (echoAlg) Name() string { return "echo" }

func (echoAlg) New(cfg ProcConfig) Process {
	return &echoProc{cfg: cfg}
}

type echoProc struct {
	cfg      ProcConfig
	decided  bool
	decision model.Value
	// seen[r] records the senders heard from at round r.
	seen map[int]model.ProcSet
}

func (p *echoProc) Msgs(round int) []Message {
	out := make([]Message, p.cfg.N+1)
	for i := 1; i <= p.cfg.N; i++ {
		out[i] = p.cfg.Initial
	}
	return out
}

func (p *echoProc) Trans(round int, received []Message) {
	if p.seen == nil {
		p.seen = make(map[int]model.ProcSet)
	}
	var s model.ProcSet
	for j := 1; j < len(received); j++ {
		if received[j] != nil {
			s = s.Add(model.ProcessID(j))
		}
	}
	p.seen[round] = s
	if !p.decided {
		p.decided, p.decision = true, p.cfg.Initial
	}
}

func (p *echoProc) Decision() (model.Value, bool) { return p.decision, p.decided }

func (p *echoProc) CloneProcess() Process {
	c := *p
	c.seen = make(map[int]model.ProcSet, len(p.seen))
	for k, v := range p.seen {
		c.seen[k] = v
	}
	return &c
}

func vals(vs ...int64) []model.Value {
	out := make([]model.Value, len(vs))
	for i, v := range vs {
		out[i] = model.Value(v)
	}
	return out
}

func TestNewEngineValidation(t *testing.T) {
	tests := []struct {
		name    string
		kind    ModelKind
		initial []model.Value
		tol     int
		wantErr bool
	}{
		{"ok", RS, vals(0, 1, 2), 1, false},
		{"empty system", RS, nil, 0, true},
		{"t equals n", RS, vals(0, 1), 2, true},
		{"negative t", RWS, vals(0, 1), -1, true},
		{"bad kind", ModelKind(9), vals(0, 1), 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewEngine(tt.kind, echoAlg{}, tt.initial, tt.tol)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewEngine err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestFailureFreeDelivery(t *testing.T) {
	e, err := NewEngine(RS, echoAlg{}, vals(10, 20, 30), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(NoFailures); err != nil {
		t.Fatal(err)
	}
	run := e.finish()
	if got := run.Rounds[0].Messages; got != 6 {
		t.Errorf("round 1 delivered %d network messages, want 6 (3 procs × 2 others)", got)
	}
	for p := 1; p <= 3; p++ {
		if run.DecidedAt[p] != 1 {
			t.Errorf("p%d decided at %d, want 1", p, run.DecidedAt[p])
		}
	}
	lat, ok := run.Latency()
	if !ok || lat != 1 {
		t.Errorf("latency = (%d,%v), want (1,true)", lat, ok)
	}
}

func TestCrashDuringRoundSkipsTransition(t *testing.T) {
	e, err := NewEngine(RS, echoAlg{}, vals(1, 2, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	adv := &CrashOnceAdversary{Victim: 2, Round: 1, Reach: model.Singleton(1)}
	if err := e.Step(adv); err != nil {
		t.Fatal(err)
	}
	run := e.finish()
	if run.CrashRound[2] != 1 {
		t.Fatalf("p2 crash round = %d, want 1", run.CrashRound[2])
	}
	if run.DecidedAt[2] != 0 {
		t.Error("p2 crashed during round 1 but still decided (transition should be skipped)")
	}
	// p1 was reached by p2's partial broadcast; p3 was not.
	if !run.Rounds[0].Reached[2].Has(1) || run.Rounds[0].Reached[2].Has(3) {
		t.Errorf("p2 reached %v, want exactly {p1}", run.Rounds[0].Reached[2])
	}
}

func TestCrashedProcessStopsParticipating(t *testing.T) {
	e, err := NewEngine(RS, echoAlg{}, vals(1, 2, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	adv := &CrashOnceAdversary{Victim: 3, Round: 1, Reach: 0}
	if err := e.Step(adv); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(adv); err != nil {
		t.Fatal(err)
	}
	run := e.finish()
	if !run.Rounds[1].Sent[3].Empty() {
		t.Error("crashed p3 sent messages in round 2")
	}
	if run.Rounds[1].AliveStart != model.FullSet(3).Remove(3) {
		t.Errorf("round 2 alive = %v, want {p1,p2}", run.Rounds[1].AliveStart)
	}
}

func TestPlanValidationErrors(t *testing.T) {
	tests := []struct {
		name    string
		kind    ModelKind
		tol     int
		plan    Plan
		wantErr error
	}{
		{
			"crash dead process twice",
			RS, 2,
			Plan{Crashes: map[model.ProcessID]model.ProcSet{9: 0}},
			ErrNotAlive,
		},
		{
			"budget exceeded",
			RS, 1,
			Plan{Crashes: map[model.ProcessID]model.ProcSet{1: 0, 2: 0}},
			ErrBudgetExceeded,
		},
		{
			"drops in RS",
			RS, 1,
			Plan{Drops: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}},
			ErrDropInRS,
		},
		{
			"drop to self",
			RWS, 1,
			Plan{Drops: map[model.ProcessID]model.ProcSet{1: model.Singleton(1)}},
			ErrDropSelf,
		},
		{
			"drop and crash same round",
			RWS, 2,
			Plan{
				Crashes: map[model.ProcessID]model.ProcSet{1: 0},
				Drops:   map[model.ProcessID]model.ProcSet{1: model.Singleton(2)},
			},
			ErrDropAndCrash,
		},
		{
			"drop without crash budget",
			RWS, 1,
			Plan{
				Crashes: map[model.ProcessID]model.ProcSet{2: 0},
				Drops:   map[model.ProcessID]model.ProcSet{1: model.Singleton(3)},
			},
			ErrBudgetExceeded,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e, err := NewEngine(tt.kind, echoAlg{}, vals(1, 2, 3), tt.tol)
			if err != nil {
				t.Fatal(err)
			}
			err = e.Step(AdversaryFunc(func(*View) Plan { return tt.plan }))
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("Step err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestObligationMustBeHonored(t *testing.T) {
	e, err := NewEngine(RWS, echoAlg{}, vals(1, 2, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	drop := AdversaryFunc(func(v *View) Plan {
		if v.Round == 1 {
			return Plan{Drops: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}}
		}
		return FailureFree
	})
	if err := e.Step(drop); err != nil {
		t.Fatal(err)
	}
	if got := e.Obligated(); got != model.Singleton(1) {
		t.Fatalf("obligated = %v, want {p1}", got)
	}
	// Round 2 with a failure-free plan violates weak round synchrony.
	err = e.Step(drop)
	if !errors.Is(err, ErrObligationBroken) {
		t.Errorf("Step err = %v, want ErrObligationBroken", err)
	}
}

func TestDropToSameRoundCrasherCreatesNoObligation(t *testing.T) {
	e, err := NewEngine(RWS, echoAlg{}, vals(1, 2, 3), 2)
	if err != nil {
		t.Fatal(err)
	}
	adv := AdversaryFunc(func(v *View) Plan {
		if v.Round != 1 {
			return FailureFree
		}
		// p1 drops only to p3, and p3 crashes this very round: no live
		// receiver observes a missing message, so no obligation arises.
		return Plan{
			Crashes: map[model.ProcessID]model.ProcSet{3: 0},
			Drops:   map[model.ProcessID]model.ProcSet{1: model.Singleton(3)},
		}
	})
	if err := e.Step(adv); err != nil {
		t.Fatal(err)
	}
	if !e.Obligated().Empty() {
		t.Errorf("obligated = %v, want empty (drop only to a crashed receiver)", e.Obligated())
	}
}

func TestScriptDischargesObligationsPastEnd(t *testing.T) {
	script := &Script{Plans: []Plan{
		{Drops: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}},
	}}
	run, err := RunAlgorithm(RWS, echoAlg{}, vals(1, 2, 3), 1, script)
	if err != nil {
		t.Fatal(err)
	}
	if run.CrashRound[1] != 2 {
		t.Errorf("p1 crash round = %d, want 2 (obligation discharged by script default)", run.CrashRound[1])
	}
	if v := CheckWeakRoundSynchrony(run); len(v) != 0 {
		t.Errorf("weak round synchrony violations: %v", v)
	}
}

func TestSelfDeliveryAlwaysSucceedsForSurvivors(t *testing.T) {
	e, err := NewEngine(RWS, echoAlg{}, vals(1, 2), 1)
	if err != nil {
		t.Fatal(err)
	}
	adv := AdversaryFunc(func(v *View) Plan {
		if v.Round == 1 {
			return Plan{Drops: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}}
		}
		return (&Script{}).Plan(v)
	})
	if err := e.Step(adv); err != nil {
		t.Fatal(err)
	}
	p1 := e.procs[1].(*echoProc)
	if !p1.seen[1].Has(1) {
		t.Error("p1 did not receive its own message despite completing the round")
	}
	p2 := e.procs[2].(*echoProc)
	if p2.seen[1].Has(1) {
		t.Error("p2 received p1's dropped (pending) message")
	}
}

func TestExecuteStopsWhenAllLiveDecided(t *testing.T) {
	run, err := RunAlgorithm(RS, echoAlg{}, vals(5, 5, 5), 1, NoFailures)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Rounds) != 1 {
		t.Errorf("rounds = %d, want 1 (echo decides immediately)", len(run.Rounds))
	}
	if run.Truncated {
		t.Error("run marked truncated")
	}
}

// undecidedAlg never decides, to exercise the round limit.
type undecidedAlg struct{ echoAlg }

func (undecidedAlg) Name() string { return "undecided" }

func (undecidedAlg) New(cfg ProcConfig) Process { return &undecidedProc{} }

type undecidedProc struct{}

func (*undecidedProc) Msgs(int) []Message            { return nil }
func (*undecidedProc) Trans(int, []Message)          {}
func (*undecidedProc) Decision() (model.Value, bool) { return 0, false }
func (p *undecidedProc) CloneProcess() Process       { c := *p; return &c }

func TestExecuteTruncatesAtRoundLimit(t *testing.T) {
	run, err := RunAlgorithm(RS, undecidedAlg{}, vals(1, 2), 1, NoFailures, WithRoundLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if !run.Truncated {
		t.Error("run not marked truncated")
	}
	if len(run.Rounds) != 3 {
		t.Errorf("rounds = %d, want 3", len(run.Rounds))
	}
	if _, ok := run.Latency(); ok {
		t.Error("truncated run reported a finite latency")
	}
}

func TestEngineCloneIsIndependent(t *testing.T) {
	e, err := NewEngine(RS, echoAlg{}, vals(1, 2, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Step(NoFailures); err != nil {
		t.Fatal(err)
	}
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// Crash p1 only in the clone.
	adv := &CrashOnceAdversary{Victim: 1, Round: 2, Reach: 0}
	if err := c.Step(adv); err != nil {
		t.Fatal(err)
	}
	if err := e.Step(NoFailures); err != nil {
		t.Fatal(err)
	}
	if e.Alive() != model.FullSet(3) {
		t.Errorf("original engine alive = %v, want all", e.Alive())
	}
	if c.Alive() != model.FullSet(3).Remove(1) {
		t.Errorf("clone alive = %v, want {p2,p3}", c.Alive())
	}
	if len(e.finish().Rounds) != 2 || len(c.finish().Rounds) != 2 {
		t.Error("run records entangled between clone and original")
	}
}

func TestRandomAdversaryAlwaysLegal(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, kind := range []ModelKind{RS, RWS} {
			adv := NewRandomAdversary(seed, 0.5, 0.5)
			run, err := RunAlgorithm(kind, echoAlg{}, vals(3, 1, 2, 9, 4), 2, adv)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, kind, err)
			}
			if v := Admissible(run); len(v) != 0 {
				t.Fatalf("seed %d %v: inadmissible run: %v", seed, kind, v[0].Error())
			}
			if run.NumFaulty() > 2 {
				t.Fatalf("seed %d %v: %d crashes exceed t", seed, kind, run.NumFaulty())
			}
		}
	}
}

func TestInitialCrashAdversary(t *testing.T) {
	adv := &InitialCrashAdversary{Victims: model.Singleton(1).Add(3)}
	run, err := RunAlgorithm(RS, echoAlg{}, vals(1, 2, 3, 4), 2, adv)
	if err != nil {
		t.Fatal(err)
	}
	if run.CrashRound[1] != 1 || run.CrashRound[3] != 1 {
		t.Errorf("crash rounds = %v, want p1,p3 at round 1", run.CrashRound)
	}
	if !run.Rounds[0].Reached[1].Empty() {
		t.Error("initially crashed p1 reached someone")
	}
}

func TestModelKindString(t *testing.T) {
	if RS.String() != "RS" || RWS.String() != "RWS" {
		t.Error("ModelKind strings wrong")
	}
	if ModelKind(7).String() != "ModelKind(7)" {
		t.Error("unknown ModelKind string wrong")
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{
		Crashes: map[model.ProcessID]model.ProcSet{2: model.Singleton(1)},
		Drops:   map[model.ProcessID]model.ProcSet{3: model.Singleton(1)},
	}
	want := "plan{p2↯→{p1} p3⊘{p1}}"
	if got := p.String(); got != want {
		t.Errorf("Plan.String() = %q, want %q", got, want)
	}
	if got := FailureFree.String(); got != "plan{}" {
		t.Errorf("FailureFree.String() = %q", got)
	}
}
