package rounds

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/model"
)

// View is the read-only information handed to an adversary before each
// round. It exposes everything the round-model adversary may legitimately
// base its choices on, including which processes are about to send non-null
// messages (a content-oblivious but send-pattern-aware adversary, which is
// what the paper's constructions use).
type View struct {
	Round       int           // the round about to execute (1-based)
	N, T        int           // system size and resilience bound
	Model       ModelKind     // RS or RWS
	Alive       model.ProcSet // processes alive at the start of the round
	FaultySoFar int           // number of processes crashed so far
	// Obligated is the set of processes that dropped a message in the
	// previous round and therefore MUST crash during this round for the run
	// to satisfy weak round synchrony (always empty in RS).
	Obligated model.ProcSet
	// Sending[j] is the set of destinations pj addresses with a non-null
	// message this round (only meaningful for j ∈ Alive).
	Sending []model.ProcSet
}

// Budget returns how many additional crashes the adversary may still cause.
func (v *View) Budget() int { return v.T - v.FaultySoFar }

// Plan is the adversary's decision for a single round.
type Plan struct {
	// Crashes maps each process that crashes *during* this round to the set
	// of destinations that still receive its round message. A crashing
	// process does not execute its state transition for this round.
	Crashes map[model.ProcessID]model.ProcSet

	// Drops maps a sender that stays alive through this round to the set of
	// destinations that do NOT receive its message this round (the paper's
	// pending messages). Only legal in RWS; weak round synchrony then
	// obliges the sender to crash by the end of the next round.
	Drops map[model.ProcessID]model.ProcSet
}

// FailureFree is the empty plan: no crashes, no pending messages.
var FailureFree = Plan{}

// Clone returns an independent deep copy of the plan.
func (p Plan) Clone() Plan {
	c := Plan{}
	if p.Crashes != nil {
		c.Crashes = make(map[model.ProcessID]model.ProcSet, len(p.Crashes))
		for k, v := range p.Crashes {
			c.Crashes[k] = v
		}
	}
	if p.Drops != nil {
		c.Drops = make(map[model.ProcessID]model.ProcSet, len(p.Drops))
		for k, v := range p.Drops {
			c.Drops[k] = v
		}
	}
	return c
}

// crashSet returns the set of processes the plan crashes.
func (p Plan) crashSet() model.ProcSet {
	var s model.ProcSet
	for q := range p.Crashes {
		s = s.Add(q)
	}
	return s
}

// String renders the plan deterministically (map iteration order hidden).
func (p Plan) String() string {
	if len(p.Crashes) == 0 && len(p.Drops) == 0 {
		return "plan{}"
	}
	var crash, drop []string
	for q, reach := range p.Crashes {
		crash = append(crash, fmt.Sprintf("%v↯→%v", q, reach))
	}
	for q, dropped := range p.Drops {
		drop = append(drop, fmt.Sprintf("%v⊘%v", q, dropped))
	}
	sort.Strings(crash)
	sort.Strings(drop)
	out := "plan{"
	for i, s := range append(crash, drop...) {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out + "}"
}

// Adversary chooses the failure behaviour of each round. Implementations
// must be deterministic functions of the View (plus any internal seeded
// state) so that runs are reproducible.
type Adversary interface {
	// Plan returns the adversary's choices for the round described by v.
	// The engine validates the plan against the model's constraints and
	// aborts the run with an error if it is illegal.
	Plan(v *View) Plan
}

// AdversaryFunc adapts a function to the Adversary interface.
type AdversaryFunc func(v *View) Plan

// Plan implements Adversary.
func (f AdversaryFunc) Plan(v *View) Plan { return f(v) }

// NoFailures is the adversary of failure-free runs.
var NoFailures Adversary = AdversaryFunc(func(*View) Plan { return FailureFree })

// Script is a pre-computed adversary: Plans[i] is applied at round i+1 and
// every later round gets the failure-free plan. Scripts are how the
// exhaustive explorer and the paper's hand-built scenarios drive engines.
type Script struct {
	Plans []Plan
}

var _ Adversary = (*Script)(nil)

// Plan implements Adversary.
func (s *Script) Plan(v *View) Plan {
	if i := v.Round - 1; i < len(s.Plans) {
		return s.Plans[i]
	}
	if v.Obligated.Empty() {
		return FailureFree
	}
	// The script ended with weak-round-synchrony obligations outstanding;
	// discharge them in the most benign way: the obligated processes crash
	// while still reaching every destination they address.
	p := Plan{Crashes: make(map[model.ProcessID]model.ProcSet, v.Obligated.Count())}
	v.Obligated.ForEach(func(q model.ProcessID) bool {
		p.Crashes[q] = model.FullSet(v.N).Remove(q)
		return true
	})
	return p
}

// Errors reported by plan validation.
var (
	ErrNotAlive         = errors.New("rounds: plan crashes or drops a process that is not alive")
	ErrBudgetExceeded   = errors.New("rounds: plan exceeds the resilience bound t")
	ErrDropInRS         = errors.New("rounds: pending messages (drops) are impossible in the RS model")
	ErrDropSelf         = errors.New("rounds: a process cannot drop or withhold its message to itself")
	ErrDropAndCrash     = errors.New("rounds: a process cannot both crash and drop in the same round (a crashing process's unreached destinations are expressed via its reach set)")
	ErrObligationBroken = errors.New("rounds: weak round synchrony violated: a process that dropped a message failed to crash by the end of the next round")
)

// validate checks p against the model constraints given the view. It
// returns a descriptive error for the first violation found.
func (p Plan) validate(v *View) error {
	crashing := p.crashSet()
	if !crashing.Subset(v.Alive) {
		return fmt.Errorf("%w: crashes=%v alive=%v (round %d)", ErrNotAlive, crashing, v.Alive, v.Round)
	}
	if v.FaultySoFar+crashing.Count() > v.T {
		return fmt.Errorf("%w: %d crashed so far + %d new > t=%d (round %d)",
			ErrBudgetExceeded, v.FaultySoFar, crashing.Count(), v.T, v.Round)
	}
	if !v.Obligated.Subset(crashing) {
		return fmt.Errorf("%w: obligated=%v but crashing=%v (round %d)",
			ErrObligationBroken, v.Obligated, crashing, v.Round)
	}
	for q, reach := range p.Crashes {
		if reach.Has(q) {
			// Self-delivery is an internal matter of a process; a crashing
			// process never applies its transition, so naming itself in the
			// reach set is a plan bug.
			return fmt.Errorf("%w: %v reaches itself (round %d)", ErrDropSelf, q, v.Round)
		}
	}
	if len(p.Drops) > 0 && v.Model == RS {
		return fmt.Errorf("%w (round %d)", ErrDropInRS, v.Round)
	}
	droppers := 0
	for q, dropped := range p.Drops {
		if dropped.Empty() {
			continue
		}
		droppers++
		if !v.Alive.Has(q) {
			return fmt.Errorf("%w: dropper %v (round %d)", ErrNotAlive, q, v.Round)
		}
		if crashing.Has(q) {
			return fmt.Errorf("%w: %v (round %d)", ErrDropAndCrash, q, v.Round)
		}
		if dropped.Has(q) {
			return fmt.Errorf("%w: %v (round %d)", ErrDropSelf, q, v.Round)
		}
	}
	// Every dropper must still be crashable by the end of the next round:
	// weak round synchrony turns each drop into a future mandatory crash,
	// so droppers collectively need room in the budget beyond this round's
	// crashes.
	if droppers > 0 && v.FaultySoFar+crashing.Count()+droppers > v.T {
		return fmt.Errorf("%w: %d droppers exceed the remaining crash budget needed to honor weak round synchrony (round %d)",
			ErrBudgetExceeded, droppers, v.Round)
	}
	return nil
}
