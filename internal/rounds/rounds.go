// Package rounds implements the two round-based computational models of
// Charron-Bost, Guerraoui and Schiper (DSN 2000, Section 4):
//
//   - RS, the synchronous round model induced by the synchronous system SS.
//     It satisfies the *round synchrony* property: if pi is alive at the end
//     of round r and does not receive a message from pj at round r, then pj
//     failed before sending a message to pi at round r.
//
//   - RWS, the weakly synchronous round model induced by the asynchronous
//     system augmented with the perfect failure detector (SP). It satisfies
//     only the *weak round synchrony* property (the paper's Lemma 4.1): if
//     pi is alive at the end of round r and does not receive a message from
//     pj at round r, then pj crashes by the end of round r+1. In RWS a
//     faulty-but-still-running process may send a message that is never
//     received — a *pending* message.
//
// Algorithms are expressed exactly as in the paper: a state set, a
// message-generation function msgs_i and a state-transition function
// trans_i, executed in lock-step rounds. The adversary controls crashes,
// which recipients a crashing process still reaches, and (in RWS only)
// which messages become pending.
package rounds

import (
	"fmt"

	"repro/internal/model"
)

// Message is an algorithm-defined round message. A nil Message is the
// paper's "null message" — it is never delivered and receivers observe its
// absence. Concrete algorithms define their own message types; engines
// treat messages as opaque.
type Message any

// ModelKind distinguishes the two round-based computational models.
type ModelKind int

const (
	// RS is the synchronous round model (emulated from SS).
	RS ModelKind = iota + 1
	// RWS is the weakly synchronous round model (emulated from SP).
	RWS
)

// String returns the paper's name for the model.
func (k ModelKind) String() string {
	switch k {
	case RS:
		return "RS"
	case RWS:
		return "RWS"
	default:
		return fmt.Sprintf("ModelKind(%d)", int(k))
	}
}

// ProcConfig carries the static parameters handed to each process automaton.
type ProcConfig struct {
	ID      model.ProcessID // this process's identity (1-based)
	N       int             // number of processes in the system
	T       int             // resilience bound: maximum number of crashes
	Initial model.Value     // the process's initial (proposed) value
}

// Process is one process automaton of a round-based algorithm, mirroring
// the paper's (states_i, msgs_i, trans_i) triple. Engines drive it in
// lock-step: Msgs is called at the start of each round to collect the
// outgoing messages, then Trans is called with the messages actually
// received. A process that crashes during round r has Msgs(r) called (its
// partial broadcast is delivered to an adversary-chosen subset) but never
// Trans(r).
type Process interface {
	// Msgs returns the message for each destination at the given 1-based
	// round, indexed by destination ProcessID (index 0 is unused). A nil
	// entry is a null message. Implementations may return a shared slice;
	// engines do not retain it across rounds.
	Msgs(round int) []Message

	// Trans applies the state transition for the given round. received is
	// indexed by sender ProcessID (index 0 unused); a nil entry means no
	// message was received from that sender this round.
	Trans(round int, received []Message)

	// Decision returns the process's irrevocable decision, if any.
	Decision() (model.Value, bool)
}

// Cloner is an optional Process extension enabling cheap state snapshots.
// All algorithms in this repository implement it; the exhaustive explorer
// uses it to fork executions at adversary choice points.
type Cloner interface {
	CloneProcess() Process
}

// Algorithm constructs the per-process automata of a round-based algorithm.
type Algorithm interface {
	// Name returns a stable human-readable identifier (e.g. "FloodSet").
	Name() string
	// New returns a fresh automaton for the given process.
	New(cfg ProcConfig) Process
}

// RoundRecord captures everything observable about one executed round.
type RoundRecord struct {
	Round int // 1-based round number

	// AliveStart is the set of processes alive at the start of the round.
	AliveStart model.ProcSet
	// Crashed is the set of processes that crashed during this round: they
	// delivered their message to the adversary-chosen subsets in Reached
	// and did not execute Trans.
	Crashed model.ProcSet

	// Sent[j] is the set of destinations for which pj generated a non-null
	// message this round (only meaningful for j ∈ AliveStart).
	Sent []model.ProcSet
	// Reached[j] is the subset of Sent[j] that actually received pj's
	// message this round.
	Reached []model.ProcSet

	// Messages is the count of messages actually delivered this round.
	Messages int
}

// dropped returns the destinations pj addressed but failed to reach.
func (rr *RoundRecord) dropped(j model.ProcessID) model.ProcSet {
	return rr.Sent[j].Minus(rr.Reached[j])
}

// Run records a complete execution of a round-based algorithm under one
// adversary. It is the object the checkers, latency analysis and
// experiments all operate on.
type Run struct {
	Algorithm string
	Model     ModelKind
	N, T      int

	// Initial[i] is p_{i+1}'s initial value... indexed 1..N with index 0
	// unused, matching the rest of the package.
	Initial []model.Value

	Rounds []RoundRecord

	// CrashRound[p] is the round during which p crashed, 0 if p is correct.
	CrashRound []int
	// DecidedAt[p] is the round at the end of which p decided, 0 if never.
	DecidedAt []int
	// DecisionOf[p] is p's decision value (meaningful iff DecidedAt[p] > 0).
	DecisionOf []model.Value

	// Truncated is set when the engine hit its round limit before every
	// live process decided; such runs are rejected by termination checks.
	Truncated bool
}

// Correct returns the set of processes that never crash in the run.
func (r *Run) Correct() model.ProcSet {
	s := model.FullSet(r.N)
	for p := 1; p <= r.N; p++ {
		if r.CrashRound[p] != 0 {
			s = s.Remove(model.ProcessID(p))
		}
	}
	return s
}

// Faulty returns the set of processes that crash in the run.
func (r *Run) Faulty() model.ProcSet {
	return model.FullSet(r.N).Minus(r.Correct())
}

// NumFaulty returns the number of processes that crash in the run.
func (r *Run) NumFaulty() int { return r.Faulty().Count() }

// Latency returns the run's latency degree |r|: the number of rounds until
// all correct processes have decided (Schiper's measure, paper §5.2). The
// boolean is false if some correct process never decided (then the run
// violates termination and has no finite latency).
func (r *Run) Latency() (int, bool) {
	latency := 0
	ok := true
	r.Correct().ForEach(func(p model.ProcessID) bool {
		d := r.DecidedAt[p]
		if d == 0 {
			ok = false
			return false
		}
		if d > latency {
			latency = d
		}
		return true
	})
	if !ok {
		return 0, false
	}
	return latency, true
}

// TotalMessages returns the number of messages delivered across all rounds.
func (r *Run) TotalMessages() int {
	total := 0
	for i := range r.Rounds {
		total += r.Rounds[i].Messages
	}
	return total
}

// AliveAtEnd reports whether p is alive at the end of round round.
func (r *Run) AliveAtEnd(p model.ProcessID, round int) bool {
	cr := r.CrashRound[p]
	return cr == 0 || cr > round
}

// String renders a compact single-line summary of the run.
func (r *Run) String() string {
	lat := "∞"
	if l, ok := r.Latency(); ok {
		lat = fmt.Sprintf("%d", l)
	}
	return fmt.Sprintf("%s/%s n=%d t=%d f=%d rounds=%d latency=%s",
		r.Algorithm, r.Model, r.N, r.T, r.NumFaulty(), len(r.Rounds), lat)
}
