package rounds_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/trace"
)

// TestObsCountersMatchRunTotals is the instrumentation acceptance property:
// for seeded RandomAdversary runs in both models, the engine's counters
// exactly equal the totals recomputed from the run record, and the JSONL
// event stream re-renders to the same narrative trace.RenderRun produces.
func TestObsCountersMatchRunTotals(t *testing.T) {
	cases := []struct {
		kind rounds.ModelKind
		alg  rounds.Algorithm
	}{
		{rounds.RS, consensus.FloodSet{}},
		{rounds.RWS, consensus.FloodSetWS{}},
	}
	for _, tc := range cases {
		for seed := int64(0); seed < 50; seed++ {
			name := fmt.Sprintf("%s/seed=%d", tc.kind, seed)
			adv := rounds.NewRandomAdversary(seed, 0.3, 0.4)
			adv.DropAll = seed%3 == 0
			initial := []model.Value{model.Value(seed % 5), 7, 0, model.Value(seed % 2)}

			reg := obs.NewRegistry()
			var collected obs.Collector
			var jsonl bytes.Buffer
			em := obs.NewEmitter(&jsonl)

			eng, err := rounds.NewEngine(tc.kind, tc.alg, initial, 2,
				rounds.WithMetrics(reg), rounds.WithEventSink(obs.MultiSink(&collected, em)))
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			run, err := eng.Execute(adv, 0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := em.Err(); err != nil {
				t.Fatalf("%s: emitter: %v", name, err)
			}

			tot := run.Totals()
			if tot.Sent != tot.Delivered+tot.Dropped+tot.Pending {
				t.Errorf("%s: tally invariant broken: %+v", name, tot)
			}
			if tot.Delivered != run.TotalMessages() {
				t.Errorf("%s: delivered=%d but TotalMessages=%d", name, tot.Delivered, run.TotalMessages())
			}
			if tc.kind == rounds.RS && tot.Pending != 0 {
				t.Errorf("%s: RS run has %d pending messages", name, tot.Pending)
			}

			snap := reg.Snapshot()
			counter := func(metric string) int64 {
				return snap.Counter(obs.Label(metric, "model", tc.kind.String()))
			}
			for metric, want := range map[string]int{
				rounds.MetricRuns:              1,
				rounds.MetricRounds:            tot.Rounds,
				rounds.MetricMessagesSent:      tot.Sent,
				rounds.MetricMessagesDelivered: tot.Delivered,
				rounds.MetricMessagesDropped:   tot.Dropped,
				rounds.MetricMessagesPending:   tot.Pending,
				rounds.MetricCrashes:           tot.Crashes,
				rounds.MetricDecisions:         tot.Decisions,
			} {
				if got := counter(metric); got != int64(want) {
					t.Errorf("%s: %s = %d, want %d", name, metric, got, want)
				}
			}

			// The live stream must equal the record's replayed stream…
			replayed := rounds.EventsFromRun(run)
			if !reflect.DeepEqual(collected.Events(), replayed) {
				t.Errorf("%s: live events differ from EventsFromRun:\n live: %+v\nreplay: %+v",
					name, collected.Events(), replayed)
			}
			// …and the JSONL file must round-trip to the exact narrative.
			back, err := obs.ReadEvents(&jsonl)
			if err != nil {
				t.Fatalf("%s: ReadEvents: %v", name, err)
			}
			narrative, err := obs.RenderEvents(back)
			if err != nil {
				t.Fatalf("%s: RenderEvents: %v", name, err)
			}
			if want := trace.RenderRun(run); narrative != want {
				t.Errorf("%s: re-rendered narrative differs:\n--- events ---\n%s--- trace ---\n%s",
					name, narrative, want)
			}
		}
	}
}

// TestObsDefaultRegistryCounts checks that an engine built without options
// counts into the process-wide obs.Default registry.
func TestObsDefaultRegistryCounts(t *testing.T) {
	metric := obs.Label(rounds.MetricRuns, "model", "RS")
	before := obs.Default.Counter(metric).Value()
	_, err := rounds.RunAlgorithm(rounds.RS, consensus.FloodSet{},
		[]model.Value{1, 2, 3}, 1, rounds.NewRandomAdversary(1, 0.2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if after := obs.Default.Counter(metric).Value(); after != before+1 {
		t.Errorf("default registry runs counter went %d → %d, want +1", before, after)
	}
}

// TestObsCloneSharesMetricsDropsSink checks the explorer-facing contract:
// forked engines keep counting rounds into the same registry but never
// interleave events into the parent's stream.
func TestObsCloneSharesMetricsDropsSink(t *testing.T) {
	reg := obs.NewRegistry()
	var collected obs.Collector
	eng, err := rounds.NewEngine(rounds.RS, consensus.FloodSet{},
		[]model.Value{3, 1, 4}, 1, rounds.WithMetrics(reg), rounds.WithEventSink(&collected))
	if err != nil {
		t.Fatal(err)
	}
	clone, err := eng.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clone.Execute(rounds.NewRandomAdversary(2, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	metric := obs.Label(rounds.MetricRounds, "model", "RS")
	if got := reg.Counter(metric).Value(); got == 0 {
		t.Error("clone did not count rounds into the shared registry")
	}
	// Only the parent's run_start is in the stream: the clone emitted nothing.
	events := collected.Events()
	if len(events) != 1 || events[0].Type != obs.EventRunStart {
		t.Errorf("clone leaked events into the parent sink: %+v", events)
	}
}
