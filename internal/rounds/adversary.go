package rounds

import (
	"math/rand"

	"repro/internal/model"
)

// RandomAdversary draws crashes, partial broadcasts and (in RWS) pending
// messages from a seeded source. It always produces legal plans, so it is
// the workhorse of randomized property tests: whatever it does, a correct
// algorithm must keep its specification.
type RandomAdversary struct {
	rng *rand.Rand

	// CrashProb is the per-round probability that the adversary crashes one
	// more process (while budget remains).
	CrashProb float64
	// DropProb is the per-round probability (RWS only) that one live
	// process turns some of its messages into pending messages (which costs
	// a unit of crash budget the next round).
	DropProb float64
	// DropAll makes every drop event withhold the sender's message from ALL
	// addressees — the worst-case pending pattern (a vote or decision that
	// no one ever sees). With DropAll false, drop sets are random subsets.
	DropAll bool
}

var _ Adversary = (*RandomAdversary)(nil)

// NewRandomAdversary returns a seeded adversary with the given crash and
// drop probabilities.
func NewRandomAdversary(seed int64, crashProb, dropProb float64) *RandomAdversary {
	return &RandomAdversary{
		rng:       rand.New(rand.NewSource(seed)),
		CrashProb: crashProb,
		DropProb:  dropProb,
	}
}

// pick returns a uniformly random member of s (s must be nonempty).
func (a *RandomAdversary) pick(s model.ProcSet) model.ProcessID {
	members := s.Members()
	return members[a.rng.Intn(len(members))]
}

// subset returns a uniformly random subset of s.
func (a *RandomAdversary) subset(s model.ProcSet) model.ProcSet {
	var out model.ProcSet
	s.ForEach(func(p model.ProcessID) bool {
		if a.rng.Intn(2) == 0 {
			out = out.Add(p)
		}
		return true
	})
	return out
}

// Plan implements Adversary.
func (a *RandomAdversary) Plan(v *View) Plan {
	p := Plan{}
	crashing := v.Obligated // obligations must be honored first
	budget := v.Budget() - crashing.Count()

	// Maybe crash additional processes.
	candidates := v.Alive.Minus(crashing)
	for budget > 0 && !candidates.Empty() && a.rng.Float64() < a.CrashProb {
		q := a.pick(candidates)
		crashing = crashing.Add(q)
		candidates = candidates.Remove(q)
		budget--
	}
	if !crashing.Empty() {
		p.Crashes = make(map[model.ProcessID]model.ProcSet, crashing.Count())
		crashing.ForEach(func(q model.ProcessID) bool {
			// A crashing process reaches a random subset of its addressees.
			p.Crashes[q] = a.subset(v.Sending[q].Remove(q))
			return true
		})
	}

	// Maybe create pending messages (RWS only; consumes future budget).
	if v.Model == RWS {
		droppers := 0
		candidates = v.Alive.Minus(crashing)
		for budget-droppers > 0 && !candidates.Empty() && a.rng.Float64() < a.DropProb {
			q := a.pick(candidates)
			candidates = candidates.Remove(q)
			drop := v.Sending[q].Remove(q)
			if !a.DropAll {
				drop = a.subset(drop)
			}
			if drop.Empty() {
				continue
			}
			if p.Drops == nil {
				p.Drops = make(map[model.ProcessID]model.ProcSet)
			}
			p.Drops[q] = drop
			droppers++
		}
	}
	return p
}

// CrashOnceAdversary crashes a single designated process at a designated
// round with a designated reach set, and nothing else. It is the building
// block of the paper's hand-constructed scenarios.
type CrashOnceAdversary struct {
	Victim model.ProcessID
	Round  int
	Reach  model.ProcSet
}

var _ Adversary = (*CrashOnceAdversary)(nil)

// Plan implements Adversary.
func (a *CrashOnceAdversary) Plan(v *View) Plan {
	if v.Round != a.Round || !v.Alive.Has(a.Victim) {
		return FailureFree
	}
	return Plan{Crashes: map[model.ProcessID]model.ProcSet{a.Victim: a.Reach.Remove(a.Victim)}}
}

// InitialCrashAdversary crashes a set of processes "initially": during
// round 1, reaching no one. The paper's F_OptFloodSet analysis considers
// runs in which exactly t processes initially crash.
type InitialCrashAdversary struct {
	Victims model.ProcSet
}

var _ Adversary = (*InitialCrashAdversary)(nil)

// Plan implements Adversary.
func (a *InitialCrashAdversary) Plan(v *View) Plan {
	if v.Round != 1 {
		return FailureFree
	}
	crashes := make(map[model.ProcessID]model.ProcSet, a.Victims.Count())
	a.Victims.Intersect(v.Alive).ForEach(func(q model.ProcessID) bool {
		crashes[q] = 0 // reaches no one: crashed before taking any visible step
		return true
	})
	if len(crashes) == 0 {
		return FailureFree
	}
	return Plan{Crashes: crashes}
}
