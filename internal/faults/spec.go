package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/model"
)

// ParseSpec parses the compact command-line fault grammar into a Config.
// The spec is a comma-separated list of items:
//
//	seed=7                 PRNG seed (default 1)
//	loss=0.3               per-link drop probability
//	dup=0.1                per-link duplication probability
//	reorder=0.2            per-link reorder (holdback) probability
//	spike=100ms@0.5        delay spikes: magnitude@probability (@p optional,
//	                       default 1; magnitude may be a range lo-hi)
//	part=3.4@50ms+200ms    partition group {p3,p4} forming at +50ms and
//	                       healing 200ms later
//	crash=2@10ms+80ms      p2 blackholed at +10ms, recovering 80ms later
//	                       (+dur optional: omitted means never recovers)
//
// part and crash may repeat; everything else is last-wins.
func ParseSpec(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return cfg, fmt.Errorf("faults: spec item %q is not key=value", item)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "loss":
			cfg.Default.Drop, err = parseProb(val)
		case "dup":
			cfg.Default.Duplicate, err = parseProb(val)
		case "reorder":
			cfg.Default.Reorder, err = parseProb(val)
		case "spike":
			err = parseSpike(val, &cfg.Default)
		case "part":
			var p Partition
			if p, err = parsePartition(val); err == nil {
				cfg.Partitions = append(cfg.Partitions, p)
			}
		case "crash":
			var c NodeCrash
			if c, err = parseCrash(val); err == nil {
				cfg.Crashes = append(cfg.Crashes, c)
			}
		default:
			return cfg, fmt.Errorf("faults: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: spec item %q: %w", item, err)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// parseSpike parses "100ms", "100ms@0.5" or "50ms-150ms@0.3".
func parseSpike(s string, lf *LinkFaults) error {
	mag, probStr, hasProb := strings.Cut(s, "@")
	lf.Spike = 1
	if hasProb {
		p, err := parseProb(probStr)
		if err != nil {
			return err
		}
		lf.Spike = p
	}
	lo, hi, isRange := strings.Cut(mag, "-")
	dLo, err := time.ParseDuration(lo)
	if err != nil {
		return err
	}
	dHi := dLo
	if isRange {
		if dHi, err = time.ParseDuration(hi); err != nil {
			return err
		}
	}
	if dLo <= 0 || dHi < dLo {
		return fmt.Errorf("bad spike range %v-%v", dLo, dHi)
	}
	lf.SpikeMin, lf.SpikeMax = dLo, dHi
	return nil
}

// parseProcs parses "3" or "1.3" into a set.
func parseProcs(s string) (model.ProcSet, error) {
	var set model.ProcSet
	for _, part := range strings.Split(s, ".") {
		p, err := strconv.Atoi(part)
		if err != nil || p < 1 || p > model.MaxProcs {
			return 0, fmt.Errorf("bad process id %q", part)
		}
		set = set.Add(model.ProcessID(p))
	}
	return set, nil
}

// parseWindow parses "50ms+200ms" (or "50ms" with zero length) into
// (start, length).
func parseWindow(s string) (time.Duration, time.Duration, error) {
	startStr, lenStr, hasLen := strings.Cut(s, "+")
	start, err := time.ParseDuration(startStr)
	if err != nil || start < 0 {
		return 0, 0, fmt.Errorf("bad window start %q", startStr)
	}
	var length time.Duration
	if hasLen {
		if length, err = time.ParseDuration(lenStr); err != nil || length <= 0 {
			return 0, 0, fmt.Errorf("bad window length %q", lenStr)
		}
	}
	return start, length, nil
}

func parsePartition(s string) (Partition, error) {
	procs, window, ok := strings.Cut(s, "@")
	if !ok {
		return Partition{}, fmt.Errorf("expected PROCS@START+DUR, got %q", s)
	}
	group, err := parseProcs(procs)
	if err != nil {
		return Partition{}, err
	}
	start, length, err := parseWindow(window)
	if err != nil {
		return Partition{}, err
	}
	if length <= 0 {
		return Partition{}, fmt.Errorf("partition %q needs a +DUR length", s)
	}
	return Partition{Start: start, End: start + length, Group: group}, nil
}

func parseCrash(s string) (NodeCrash, error) {
	procStr, window, ok := strings.Cut(s, "@")
	if !ok {
		return NodeCrash{}, fmt.Errorf("expected PROC@AT[+DUR], got %q", s)
	}
	p, err := strconv.Atoi(procStr)
	if err != nil || p < 1 || p > model.MaxProcs {
		return NodeCrash{}, fmt.Errorf("bad process id %q", procStr)
	}
	at, length, err := parseWindow(window)
	if err != nil {
		return NodeCrash{}, err
	}
	return NodeCrash{Proc: model.ProcessID(p), At: at, For: length}, nil
}
