package faults

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// memTransport is a loopback transport for driving the injector directly.
type memTransport struct {
	id model.ProcessID

	mu   sync.Mutex
	sent []wire.Packet // To encoded in From field? no: record (to, data)
	tos  []model.ProcessID
}

func (m *memTransport) LocalID() model.ProcessID { return m.id }

func (m *memTransport) Send(to model.ProcessID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent = append(m.sent, wire.Packet{From: m.id, Data: data})
	m.tos = append(m.tos, to)
	return nil
}

func (m *memTransport) Recv() <-chan wire.Packet { return nil }
func (m *memTransport) Close() error             { return nil }

func (m *memTransport) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sent)
}

// drive sends `sends` messages on each ordered link of an n-process system
// through a fresh injector and returns the rendered decision log.
func drive(t *testing.T, cfg Config, n, sends int) string {
	t.Helper()
	cfg.RecordDecisions = true
	cfg.Metrics = obs.NewRegistry()
	in := NewInjector(cfg)
	for i := 1; i <= n; i++ {
		tr := in.Wrap(&memTransport{id: model.ProcessID(i)})
		for j := 1; j <= n; j++ {
			if i == j {
				continue
			}
			for s := 0; s < sends; s++ {
				if err := tr.Send(model.ProcessID(j), []byte{byte(s)}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	_ = in.Close()
	return RenderDecisions(in.Decisions())
}

// renderSchedule is the rendered transition stream — the deterministic
// event timeline a run with this config emits (TestScheduleEventsAndLog
// pins live emission to this order).
func renderSchedule(cfg Config) string {
	var b strings.Builder
	for _, tr := range Schedule(cfg) {
		b.WriteString(tr.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDeterministicSchedules is the tentpole property: same seed + config
// ⇒ identical fault decisions and identical rendered event stream.
func TestDeterministicSchedules(t *testing.T) {
	property := func(seed int64, drop, dup, reorder, spike uint8, partMS, crashMS uint16) bool {
		cfg := Config{
			Seed: seed,
			Default: LinkFaults{
				Drop:      float64(drop%101) / 100,
				Duplicate: float64(dup%101) / 100,
				Reorder:   float64(reorder%101) / 100,
				Spike:     float64(spike%101) / 100,
				SpikeMin:  time.Millisecond,
				SpikeMax:  3 * time.Millisecond,
			},
			// Topology changes sit far past the send burst so the decision
			// log exercises the link menu, not a racing window boundary.
			Partitions: []Partition{{
				Start: time.Hour + time.Duration(partMS)*time.Millisecond,
				End:   time.Hour + time.Duration(partMS)*time.Millisecond + time.Second,
				Group: model.Singleton(3),
			}},
			Crashes: []NodeCrash{{
				Proc: 2,
				At:   time.Hour + time.Duration(crashMS)*time.Millisecond,
				For:  50 * time.Millisecond,
			}},
		}
		if log1, log2 := drive(t, cfg, 3, 8), drive(t, cfg, 3, 8); log1 != log2 {
			t.Logf("decision logs differ:\n%s\n--- vs ---\n%s", log1, log2)
			return false
		}
		if s1, s2 := renderSchedule(cfg), renderSchedule(cfg); s1 != s2 || s1 == "" {
			t.Logf("rendered schedules differ or empty:\n%s\n--- vs ---\n%s", s1, s2)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := Config{Default: LinkFaults{Drop: 0.5}}
	cfg.Seed = 1
	log1 := drive(t, cfg, 3, 32)
	cfg.Seed = 2
	log2 := drive(t, cfg, 3, 32)
	if log1 == log2 {
		t.Error("seeds 1 and 2 produced identical 192-decision logs")
	}
}

func TestDropAndDuplicate(t *testing.T) {
	reg := obs.NewRegistry()
	in := NewInjector(Config{Seed: 7, Default: LinkFaults{Drop: 1}, Metrics: reg})
	defer func() { _ = in.Close() }()
	under := &memTransport{id: 1}
	tr := in.Wrap(under)
	for i := 0; i < 10; i++ {
		if err := tr.Send(2, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if under.count() != 0 {
		t.Errorf("%d messages survived Drop=1", under.count())
	}
	if got := reg.Snapshot().Counter(obs.Label(MetricDropped, "reason", "loss")); got != 10 {
		t.Errorf("loss counter = %d, want 10", got)
	}

	in2 := NewInjector(Config{Seed: 7, Default: LinkFaults{Duplicate: 1}})
	defer func() { _ = in2.Close() }()
	under2 := &memTransport{id: 1}
	tr2 := in2.Wrap(under2)
	for i := 0; i < 5; i++ {
		if err := tr2.Send(2, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if under2.count() != 10 {
		t.Errorf("Duplicate=1 delivered %d copies of 5 sends, want 10", under2.count())
	}
}

func TestSpikeDelaysBeyondBound(t *testing.T) {
	in := NewInjector(Config{Seed: 3, Default: LinkFaults{
		Spike: 1, SpikeMin: 30 * time.Millisecond, SpikeMax: 30 * time.Millisecond,
	}})
	under := &memTransport{id: 1}
	tr := in.Wrap(under)
	start := time.Now()
	if err := tr.Send(2, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if under.count() != 0 {
		t.Error("spiked message delivered synchronously")
	}
	deadline := time.Now().Add(2 * time.Second)
	for under.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if under.count() != 1 {
		t.Fatalf("message lost: delivered %d", under.count())
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("delivery after %v, want ≥ 30ms", elapsed)
	}
	_ = in.Close()
}

func TestPartitionBlackholesBoundaryOnly(t *testing.T) {
	reg := obs.NewRegistry()
	in := NewInjector(Config{
		Partitions: []Partition{{Start: 0, End: time.Hour, Group: model.Singleton(3)}},
		Metrics:    reg,
	})
	defer func() { _ = in.Close() }()
	p1 := &memTransport{id: 1}
	tr1 := in.Wrap(p1)
	if err := tr1.Send(3, []byte("cross")); err != nil {
		t.Fatal(err)
	}
	if err := tr1.Send(2, []byte("inside")); err != nil {
		t.Fatal(err)
	}
	p3 := &memTransport{id: 3}
	tr3 := in.Wrap(p3)
	if err := tr3.Send(1, []byte("cross back")); err != nil {
		t.Fatal(err)
	}
	if p1.count() != 1 {
		t.Errorf("majority side delivered %d, want 1 (intra-group only)", p1.count())
	}
	if p3.count() != 0 {
		t.Errorf("isolated side delivered %d, want 0", p3.count())
	}
	if got := reg.Snapshot().Counter(obs.Label(MetricDropped, "reason", "partition")); got != 2 {
		t.Errorf("partition drop counter = %d, want 2", got)
	}
}

func TestCrashRecoveryWindow(t *testing.T) {
	in := NewInjector(Config{
		Crashes: []NodeCrash{{Proc: 2, At: 0, For: 40 * time.Millisecond}},
	})
	defer func() { _ = in.Close() }()
	under := &memTransport{id: 1}
	tr := in.Wrap(under)
	if err := tr.Send(2, []byte("into the hole")); err != nil {
		t.Fatal(err)
	}
	if under.count() != 0 {
		t.Error("message to blackholed node delivered")
	}
	time.Sleep(60 * time.Millisecond)
	if err := tr.Send(2, []byte("after recovery")); err != nil {
		t.Fatal(err)
	}
	if under.count() != 1 {
		t.Errorf("post-recovery delivery count = %d, want 1", under.count())
	}
}

func TestScheduleEventsAndLog(t *testing.T) {
	col := &obs.Collector{}
	cfg := Config{
		Partitions: []Partition{{Start: 5 * time.Millisecond, End: 15 * time.Millisecond, Group: model.Singleton(2)}},
		Crashes:    []NodeCrash{{Proc: 1, At: 10 * time.Millisecond, For: 10 * time.Millisecond}},
		Events:     col,
	}
	in := NewInjector(cfg)
	in.Start()
	time.Sleep(40 * time.Millisecond)
	_ = in.Close()

	wantOrder := []obs.EventType{obs.EventPartition, obs.EventCrash, obs.EventHeal, obs.EventRecover}
	events := col.Events()
	if len(events) != len(wantOrder) {
		t.Fatalf("got %d events %v, want %d", len(events), events, len(wantOrder))
	}
	for i, want := range wantOrder {
		if events[i].Type != want {
			t.Errorf("event %d = %s, want %s", i, events[i].Type, want)
		}
	}
	log := in.PartitionLog()
	if len(log) != 4 {
		t.Fatalf("partition log has %d transitions, want 4", len(log))
	}
	if s := log[0].String(); !strings.Contains(s, "partition") || !strings.Contains(s, "p2") {
		t.Errorf("transition rendering = %q", s)
	}
}

func TestFilterRestrictsRandomFaults(t *testing.T) {
	in := NewInjector(Config{
		Default: LinkFaults{Drop: 1},
		Filter:  func(from, to model.ProcessID, data []byte) bool { return data[0] == 'h' },
	})
	defer func() { _ = in.Close() }()
	under := &memTransport{id: 1}
	tr := in.Wrap(under)
	if err := tr.Send(2, []byte("heartbeat")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(2, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if under.count() != 1 {
		t.Errorf("delivered %d, want 1 (filtered class dropped, other passed)", under.count())
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7, loss=0.25, dup=0.1, reorder=0.05, spike=50ms-150ms@0.3, part=3@0s+200ms, crash=2@10ms+80ms, crash=1@5ms")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.Default.Drop != 0.25 || cfg.Default.Duplicate != 0.1 || cfg.Default.Reorder != 0.05 {
		t.Errorf("probabilities wrong: %+v", cfg.Default)
	}
	if cfg.Default.Spike != 0.3 || cfg.Default.SpikeMin != 50*time.Millisecond || cfg.Default.SpikeMax != 150*time.Millisecond {
		t.Errorf("spike wrong: %+v", cfg.Default)
	}
	if len(cfg.Partitions) != 1 || cfg.Partitions[0].End != 200*time.Millisecond || !cfg.Partitions[0].Group.Has(3) {
		t.Errorf("partition wrong: %+v", cfg.Partitions)
	}
	if len(cfg.Crashes) != 2 || cfg.Crashes[0].For != 80*time.Millisecond || cfg.Crashes[1].For != 0 {
		t.Errorf("crashes wrong: %+v", cfg.Crashes)
	}

	for _, bad := range []string{"loss=2", "bogus=1", "spike=abc", "part=3", "part=0@1s+1s", "crash=1@-5ms", "loss"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
	if _, err := ParseSpec("  "); err != nil {
		t.Errorf("empty spec rejected: %v", err)
	}
}

func TestScheduleIsPure(t *testing.T) {
	cfg := Config{
		Partitions: []Partition{
			{Start: 20 * time.Millisecond, End: 50 * time.Millisecond, Group: model.Singleton(1)},
			{Start: 10 * time.Millisecond, End: 30 * time.Millisecond, Group: model.Singleton(2)},
		},
		Crashes: []NodeCrash{{Proc: 3, At: 15 * time.Millisecond}},
	}
	s1, s2 := Schedule(cfg), Schedule(cfg)
	if len(s1) != 5 {
		t.Fatalf("schedule has %d transitions, want 5 (crash without recovery adds one)", len(s1))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Errorf("transition %d differs: %v vs %v", i, s1[i], s2[i])
		}
		if i > 0 && s1[i].At < s1[i-1].At {
			t.Errorf("schedule unsorted at %d", i)
		}
	}
}
