// Package faults is a seeded, deterministic fault-injection layer for the
// live runtime: it wraps any transport endpoint and subjects its traffic to
// an adversarial network — per-link message loss, duplication, reordering,
// delay spikes beyond the synchrony bound, scheduled bidirectional
// partitions, and per-node crash/recovery blackholes.
//
// The paper's central claim is that model strength decides solvability: the
// heartbeat detector of package runtime is perfect exactly while the
// network honors its Δ bound. This package is the other half of that
// statement made executable — the adversary that pushes a deployment out of
// the synchronous model so the degradation from P to ◇P can be measured
// rather than asserted (experiment E14 in internal/core).
//
// Determinism: every per-message fault decision is a pure function of
// (Config.Seed, link, per-link sequence number) — each ordered link owns a
// PRNG seeded from the config, and a decision always consumes the same
// number of draws regardless of outcome. Two injectors with the same seed
// and config therefore make byte-identical decisions for the same per-link
// send sequences, and the scheduled transition stream (partitions, heals,
// crashes, recoveries) is a pure function of the config alone. Live
// clusters interleave heartbeat and data sends nondeterministically, so
// whole-run identity additionally requires a deterministic send order (the
// property tests drive one).
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/netobs"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Transport mirrors runtime.Transport method-for-method (runtime.Packet is
// an alias of wire.Packet, so values of either interface satisfy the
// other). Declaring it here keeps this package importable by the runtime
// without a cycle.
type Transport interface {
	LocalID() model.ProcessID
	Send(to model.ProcessID, data []byte) error
	Recv() <-chan wire.Packet
	Close() error
}

// Metric names exported by the injector. Drops carry a {reason="..."}
// label: "loss" (random per-link drop), "partition" (message crossed a
// partition boundary), "crash" (endpoint inside a crash blackhole window).
const (
	MetricDropped     = "ssfd_faults_dropped_total"
	MetricDuplicated  = "ssfd_faults_duplicated_total"
	MetricReordered   = "ssfd_faults_reordered_total"
	MetricDelayed     = "ssfd_faults_delayed_total"
	MetricTransitions = "ssfd_faults_transitions_total"
)

// Link is one ordered sender→receiver pair.
type Link struct {
	From, To model.ProcessID
}

// String renders the link.
func (l Link) String() string { return fmt.Sprintf("%v→%v", l.From, l.To) }

// LinkFaults is the per-link fault menu. All probabilities are in [0,1].
type LinkFaults struct {
	// Drop is the probability a message is silently lost.
	Drop float64
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back by ReorderDelay so
	// that later sends on the link overtake it.
	Reorder float64
	// Spike is the probability of a delay spike; a spiked message is held
	// for a uniform duration in [SpikeMin, SpikeMax] before the underlying
	// send — injected latency beyond the transport's own MaxDelay.
	Spike              float64
	SpikeMin, SpikeMax time.Duration
	// ReorderDelay is the holdback applied to reordered messages
	// (default 2ms).
	ReorderDelay time.Duration
}

// active reports whether any fault can fire on this link.
func (lf LinkFaults) active() bool {
	return lf.Drop > 0 || lf.Duplicate > 0 || lf.Reorder > 0 || lf.Spike > 0
}

// Partition isolates Group from its complement during [Start, End):
// messages crossing the boundary — in either direction — are dropped.
// Offsets are relative to the injector's start.
type Partition struct {
	Start, End time.Duration
	Group      model.ProcSet
}

// NodeCrash blackholes one process during [At, At+For): every message it
// sends or should receive is dropped, so from its peers' viewpoint the
// process has crashed — and, if For > 0, later recovers, which is exactly
// the behavior the crash-stop model (and hence a perfect detector) rules
// out. For == 0 means the blackhole never lifts.
type NodeCrash struct {
	Proc model.ProcessID
	At   time.Duration
	For  time.Duration
}

// Config scripts one adversarial network.
type Config struct {
	// Seed drives every random fault decision.
	Seed int64
	// Default applies to every link without an override in Links.
	Default LinkFaults
	// Links overrides the menu per ordered link.
	Links map[Link]LinkFaults
	// Partitions is the scheduled partition windows.
	Partitions []Partition
	// Crashes is the scheduled crash/recovery blackholes.
	Crashes []NodeCrash
	// Filter, when non-nil, restricts random link faults (drop, duplicate,
	// reorder, spike) to messages it returns true for; partition and crash
	// blackholes always apply. E14 uses it to target heartbeats only.
	Filter func(from, to model.ProcessID, data []byte) bool
	// RecordDecisions keeps an in-memory log of every fault decision
	// (Injector.Decisions) — the determinism property tests and seed-replay
	// tooling read it.
	RecordDecisions bool
	// Metrics receives the injector's counters (nil: obs.Default).
	Metrics *obs.Registry
	// Events, when non-nil, receives partition/heal/crash/recover events.
	Events obs.Sink
	// Flight, when non-nil, mirrors every injected fault into the flight
	// recorder.
	Flight *netobs.Recorder
}

// Decision is one per-message fault verdict.
type Decision struct {
	Link      Link
	Seq       int // per-link send sequence number, from 0
	Drop      bool
	Duplicate bool
	Reorder   bool
	Spike     time.Duration // 0: no spike
}

// String renders the decision compactly, e.g. "p1→p2#4 drop" or
// "p2→p3#0 dup spike=3ms".
func (d Decision) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s#%d", d.Link, d.Seq)
	switch {
	case d.Drop:
		b.WriteString(" drop")
	default:
		if d.Duplicate {
			b.WriteString(" dup")
		}
		if d.Reorder {
			b.WriteString(" reorder")
		}
		if d.Spike > 0 {
			fmt.Fprintf(&b, " spike=%v", d.Spike)
		}
		if !d.Duplicate && !d.Reorder && d.Spike == 0 {
			b.WriteString(" pass")
		}
	}
	return b.String()
}

// Transition is one scheduled topology change, either fired (PartitionLog)
// or planned (Schedule).
type Transition struct {
	At    time.Duration // offset from injector start
	Event obs.EventType // partition | heal | crash | recover
	Group model.ProcSet // partition/heal
	Proc  model.ProcessID
}

// String renders the transition, e.g. "+50ms partition {p3}".
func (t Transition) String() string {
	if t.Event == obs.EventPartition || t.Event == obs.EventHeal {
		return fmt.Sprintf("+%v %s %v", t.At, t.Event, t.Group)
	}
	return fmt.Sprintf("+%v %s %v", t.At, t.Event, t.Proc)
}

// Schedule expands a config into its ordered transition timeline — a pure
// function of the config, independent of any run.
func Schedule(cfg Config) []Transition {
	var out []Transition
	for _, p := range cfg.Partitions {
		out = append(out, Transition{At: p.Start, Event: obs.EventPartition, Group: p.Group})
		out = append(out, Transition{At: p.End, Event: obs.EventHeal, Group: p.Group})
	}
	for _, c := range cfg.Crashes {
		out = append(out, Transition{At: c.At, Event: obs.EventCrash, Proc: c.Proc})
		if c.For > 0 {
			out = append(out, Transition{At: c.At + c.For, Event: obs.EventRecover, Proc: c.Proc})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// linkState is one ordered link's private PRNG and sequence counter.
type linkState struct {
	mu  sync.Mutex
	rng *rand.Rand
	seq int
}

// Injector applies a Config to wrapped transports. Build one per run,
// Wrap every endpoint, Start it alongside the run, and Close it before the
// underlying network comes down (Close joins all delayed-delivery
// goroutines).
type Injector struct {
	cfg Config

	mu        sync.Mutex
	links     map[Link]*linkState
	decisions []Decision
	fired     []Transition
	started   bool
	startAt   time.Time

	closeOnce sync.Once
	done      chan struct{}
	// closeMu orders delayed-delivery spawns against Close: Send takes the
	// read side around wg.Add, so every Add happens before Close's Wait and
	// no goroutine is spawned once closed is set (a WaitGroup alone cannot
	// guarantee that — Add concurrent with Wait is a race).
	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	dropLoss, dropPartition, dropCrash *obs.Counter
	duplicated, reordered, delayed     *obs.Counter
	transitions                        *obs.Counter

	flight *netobs.Recorder
}

// NewInjector builds an injector for the config.
func NewInjector(cfg Config) *Injector {
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	return &Injector{
		cfg:           cfg,
		links:         make(map[Link]*linkState),
		done:          make(chan struct{}),
		dropLoss:      reg.Counter(obs.Label(MetricDropped, "reason", "loss")),
		dropPartition: reg.Counter(obs.Label(MetricDropped, "reason", "partition")),
		dropCrash:     reg.Counter(obs.Label(MetricDropped, "reason", "crash")),
		duplicated:    reg.Counter(MetricDuplicated),
		reordered:     reg.Counter(MetricReordered),
		delayed:       reg.Counter(MetricDelayed),
		transitions:   reg.Counter(MetricTransitions),
		flight:        cfg.Flight,
	}
}

// Start anchors the schedule clock and launches the transition scheduler.
// Idempotent; Wrap'd transports call it lazily on first send, so calling
// it explicitly only matters when the exact epoch does.
func (in *Injector) Start() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.startLocked()
}

func (in *Injector) startLocked() {
	if in.started {
		return
	}
	in.started = true
	in.startAt = time.Now()
	sched := Schedule(in.cfg)
	if len(sched) == 0 {
		return
	}
	in.wg.Add(1)
	go in.runSchedule(sched)
}

// runSchedule fires each transition at its offset, logging and emitting it.
func (in *Injector) runSchedule(sched []Transition) {
	defer in.wg.Done()
	for _, tr := range sched {
		timer := time.NewTimer(time.Until(in.startAt.Add(tr.At)))
		select {
		case <-timer.C:
		case <-in.done:
			timer.Stop()
			return
		}
		in.mu.Lock()
		in.fired = append(in.fired, tr)
		in.mu.Unlock()
		in.transitions.Inc()
		if in.cfg.Events != nil {
			ev := obs.Event{Type: tr.Event}
			switch tr.Event {
			case obs.EventPartition, obs.EventHeal:
				for _, p := range tr.Group.Members() {
					ev.To = append(ev.To, int(p))
				}
			default:
				ev.Proc = int(tr.Proc)
			}
			ev.Value = obs.Int64(tr.At.Milliseconds())
			in.cfg.Events.Emit(ev)
		}
	}
}

// Close stops the scheduler and joins every delayed delivery. It does not
// close the underlying transports — their owner does.
func (in *Injector) Close() error {
	in.closeOnce.Do(func() {
		in.closeMu.Lock()
		in.closed = true
		in.closeMu.Unlock()
		close(in.done)
	})
	in.wg.Wait()
	return nil
}

// PartitionLog returns the transitions that actually fired, in order.
func (in *Injector) PartitionLog() []Transition {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Transition(nil), in.fired...)
}

// Decisions returns the fault decision log in canonical (link, seq) order.
// Empty unless Config.RecordDecisions.
func (in *Injector) Decisions() []Decision {
	in.mu.Lock()
	out := append([]Decision(nil), in.decisions...)
	in.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Link != b.Link {
			if a.Link.From != b.Link.From {
				return a.Link.From < b.Link.From
			}
			return a.Link.To < b.Link.To
		}
		return a.Seq < b.Seq
	})
	return out
}

// RenderDecisions renders a decision log one verdict per line — the
// replayable textual form the determinism property compares.
func RenderDecisions(decs []Decision) string {
	var b strings.Builder
	for _, d := range decs {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// elapsed is the schedule-relative clock.
func (in *Injector) elapsed() time.Duration {
	in.mu.Lock()
	in.startLocked()
	at := in.startAt
	in.mu.Unlock()
	return time.Since(at)
}

// linkFaults resolves the menu for a link.
func (in *Injector) linkFaults(l Link) LinkFaults {
	if lf, ok := in.cfg.Links[l]; ok {
		return lf
	}
	return in.cfg.Default
}

// state returns (creating on first use) the link's PRNG state. The PRNG
// seed mixes the config seed with the link identity so links are
// independent yet reproducible.
func (in *Injector) state(l Link) *linkState {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.links[l]
	if st == nil {
		seed := in.cfg.Seed ^ (int64(l.From) * 0x1E3779B97F4A7C15) ^ (int64(l.To) * 0x1CE4E5B9BF58476D)
		st = &linkState{rng: rand.New(rand.NewSource(seed))}
		in.links[l] = st
	}
	return st
}

// decide draws one fault verdict. Every call consumes exactly five
// uniforms, so the decision stream stays aligned across outcomes.
func (in *Injector) decide(l Link, lf LinkFaults) Decision {
	st := in.state(l)
	st.mu.Lock()
	d := Decision{Link: l, Seq: st.seq}
	st.seq++
	uDrop := st.rng.Float64()
	uDup := st.rng.Float64()
	uReorder := st.rng.Float64()
	uSpike := st.rng.Float64()
	uMag := st.rng.Float64()
	st.mu.Unlock()

	d.Drop = uDrop < lf.Drop
	d.Duplicate = uDup < lf.Duplicate
	d.Reorder = uReorder < lf.Reorder
	if uSpike < lf.Spike {
		span := lf.SpikeMax - lf.SpikeMin
		d.Spike = lf.SpikeMin
		if span > 0 {
			d.Spike += time.Duration(uMag * float64(span))
		}
		if d.Spike <= 0 {
			d.Spike = time.Millisecond
		}
	}
	if in.cfg.RecordDecisions {
		in.mu.Lock()
		in.decisions = append(in.decisions, d)
		in.mu.Unlock()
	}
	return d
}

// crashed reports whether proc is inside a blackhole window at offset now.
func (in *Injector) crashed(proc model.ProcessID, now time.Duration) bool {
	for _, c := range in.cfg.Crashes {
		if c.Proc != proc || now < c.At {
			continue
		}
		if c.For == 0 || now < c.At+c.For {
			return true
		}
	}
	return false
}

// partitioned reports whether the link crosses an active partition
// boundary at offset now.
func (in *Injector) partitioned(from, to model.ProcessID, now time.Duration) bool {
	for _, p := range in.cfg.Partitions {
		if now < p.Start || now >= p.End {
			continue
		}
		if p.Group.Has(from) != p.Group.Has(to) {
			return true
		}
	}
	return false
}

// record mirrors one injected fault into the flight recorder (no-op
// without one).
func (in *Injector) record(from, to model.ProcessID, kind, note string) {
	if in.flight == nil {
		return
	}
	in.flight.Record(netobs.Record{Cat: netobs.CatNet, Kind: kind,
		Transport: "faults", Link: netobs.Link{From: from, To: to}.String(), Note: note})
}

// Wrap subjects every send through t to the fault schedule. Receives pass
// through untouched (faults are injected at the sending side, where the
// link identity is known).
func (in *Injector) Wrap(t Transport) Transport {
	return &transport{in: in, next: t}
}

type transport struct {
	in   *Injector
	next Transport
}

var _ Transport = (*transport)(nil)

// LocalID implements Transport.
func (t *transport) LocalID() model.ProcessID { return t.next.LocalID() }

// Recv implements Transport.
func (t *transport) Recv() <-chan wire.Packet { return t.next.Recv() }

// Close implements Transport.
func (t *transport) Close() error { return t.next.Close() }

// Send implements Transport: it applies blackholes, then the per-link
// random menu, then forwards (possibly delayed, possibly twice) to the
// wrapped transport. Injected drops return nil — a lossy network does not
// report loss to its sender.
func (t *transport) Send(to model.ProcessID, data []byte) error {
	in := t.in
	from := t.next.LocalID()
	now := in.elapsed()
	switch {
	case in.crashed(from, now) || in.crashed(to, now):
		in.dropCrash.Inc()
		in.record(from, to, "inject-drop", "crash")
		return nil
	case in.partitioned(from, to, now):
		in.dropPartition.Inc()
		in.record(from, to, "inject-drop", "partition")
		return nil
	}
	l := Link{From: from, To: to}
	lf := in.linkFaults(l)
	if !lf.active() {
		return t.next.Send(to, data)
	}
	if in.cfg.Filter != nil && !in.cfg.Filter(from, to, data) {
		return t.next.Send(to, data)
	}
	d := in.decide(l, lf)
	if d.Drop {
		in.dropLoss.Inc()
		in.record(from, to, "inject-drop", "loss")
		return nil
	}
	copies := 1
	if d.Duplicate {
		copies = 2
		in.duplicated.Inc()
		in.record(from, to, "inject-dup", "")
	}
	delay := d.Spike
	if d.Spike > 0 {
		in.delayed.Inc()
		in.record(from, to, "inject-delay", "spike")
	}
	if d.Reorder {
		in.reordered.Inc()
		in.record(from, to, "inject-delay", "reorder")
		rd := lf.ReorderDelay
		if rd <= 0 {
			rd = 2 * time.Millisecond
		}
		delay += rd
	}
	if delay <= 0 {
		var err error
		for i := 0; i < copies; i++ {
			if e := t.next.Send(to, data); e != nil && err == nil {
				err = e
			}
		}
		return err
	}
	// Held-back copy: deliver after the injected delay from a goroutine the
	// injector owns and joins on Close. Late send errors are dropped — by
	// then the message is "in the network", and a lossy network loses it.
	// A send racing Close is likewise lost: the goroutine would only have
	// parked on in.done.
	in.closeMu.RLock()
	if in.closed {
		in.closeMu.RUnlock()
		return nil
	}
	in.wg.Add(1)
	in.closeMu.RUnlock()
	go func() {
		defer in.wg.Done()
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-in.done:
			return
		}
		for i := 0; i < copies; i++ {
			_ = t.next.Send(to, data)
		}
	}()
	return nil
}
