// Package latency computes the time-complexity measures of the paper's
// §5.2 for round-based uniform consensus algorithms, by exhaustively
// exploring the run space of small systems:
//
//   - lat(A)   = min_{r ∈ Run(A,S,t)} |r|                (Schiper's latency degree)
//   - lat(A,C) = min over runs starting from configuration C
//   - Lat(A)   = max_C lat(A,C)
//   - Lat(A,f) = max over runs with at most f crashes
//   - Λ(A)     = min_{0 ≤ f ≤ t} Lat(A,f) = Lat(A,0)     (max over failure-free runs)
//
// |r| is the number of rounds until all correct processes decide.
//
// Initial configurations range over {0,1}^n plus the all-distinct
// configuration (0,1,…,n−1). For every algorithm in this repository the
// run-level behaviour depends only on the equality pattern and relative
// order of the initial values, both of which this family of configurations
// covers.
package latency

import (
	"fmt"
	"strings"

	"repro/internal/check"
	"repro/internal/explore"
	"repro/internal/model"
	"repro/internal/rounds"
)

// Degrees aggregates every latency measure of one algorithm in one model.
type Degrees struct {
	Algorithm string
	Model     rounds.ModelKind
	N, T      int

	// Lat is lat(A): the minimal latency over all runs.
	Lat int
	// LatMax is Lat(A): the max over initial configurations of the minimal
	// latency from that configuration.
	LatMax int
	// LatByF[f] is Lat(A,f) for f = 0..T: the maximal latency over all runs
	// with at most f crashes.
	LatByF []int
	// Lambda is Λ(A) = min_f Lat(A,f); the paper observes Λ(A) = Lat(A,0).
	Lambda int

	// Runs counts the runs explored; Violations counts runs on which the
	// uniform consensus specification failed (0 for a correct algorithm —
	// latency degrees of an incorrect algorithm are not meaningful, but the
	// count makes the failure visible instead of silent).
	Runs       int
	Violations int
}

// String renders the degrees in a compact table-row style.
func (d *Degrees) String() string {
	byF := make([]string, len(d.LatByF))
	for f, v := range d.LatByF {
		byF[f] = fmt.Sprintf("Lat(A,%d)=%d", f, v)
	}
	return fmt.Sprintf("%s/%s n=%d t=%d: lat=%d Lat=%d Λ=%d %s [%d runs]",
		d.Algorithm, d.Model, d.N, d.T, d.Lat, d.LatMax, d.Lambda,
		strings.Join(byF, " "), d.Runs)
}

// Configurations returns the initial configurations the measures quantify
// over: all binary configurations plus the all-distinct one.
func Configurations(n int) [][]model.Value {
	out := make([][]model.Value, 0, (1<<uint(n))+1)
	for mask := 0; mask < 1<<uint(n); mask++ {
		cfg := make([]model.Value, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				cfg[i] = 1
			}
		}
		out = append(out, cfg)
	}
	distinct := make([]model.Value, n)
	for i := range distinct {
		distinct[i] = model.Value(i)
	}
	out = append(out, distinct)
	return out
}

// configVisitor accumulates one configuration's share of the latency
// measures. It implements explore.Visitor with a commutative, associative
// Merge (counts, a minimum and element-wise maxima), so per-worker
// instances under parallel exploration fold into exactly the sequential
// aggregate regardless of how the run space was partitioned.
type configVisitor struct {
	runs, violations int
	latCfg           int   // min latency from this configuration, -1 if none
	maxByExactF      []int // max latency over runs with exactly f crashes
}

func newConfigVisitor(t int) *configVisitor {
	return &configVisitor{latCfg: -1, maxByExactF: make([]int, t+1)}
}

func (v *configVisitor) Visit(run *rounds.Run) bool {
	if run.Truncated {
		return true // unfinishable horizon prefix, not a run
	}
	v.runs++
	if bad := check.FirstViolation(run); bad != nil {
		v.violations++
		return true
	}
	lat, ok := run.Latency()
	if !ok {
		v.violations++
		return true
	}
	if v.latCfg == -1 || lat < v.latCfg {
		v.latCfg = lat
	}
	f := run.NumFaulty()
	if lat > v.maxByExactF[f] {
		v.maxByExactF[f] = lat
	}
	return true
}

func (v *configVisitor) Merge(other explore.Visitor) {
	o := other.(*configVisitor)
	v.runs += o.runs
	v.violations += o.violations
	if v.latCfg == -1 || (o.latCfg != -1 && o.latCfg < v.latCfg) {
		v.latCfg = o.latCfg
	}
	for f, m := range o.maxByExactF {
		if m > v.maxByExactF[f] {
			v.maxByExactF[f] = m
		}
	}
}

// Compute explores every admissible run of alg (n processes, resilience t,
// model kind) from every configuration and aggregates the latency measures.
// With opts.Workers set, each configuration's space is drained by the
// parallel explorer and per-worker visitors are merged lock-free; the
// resulting Degrees are identical to the sequential computation.
func Compute(kind rounds.ModelKind, alg rounds.Algorithm, n, t int, opts explore.Options) (*Degrees, error) {
	d := &Degrees{
		Algorithm: alg.Name(),
		Model:     kind,
		N:         n,
		T:         t,
		Lat:       -1,
		LatByF:    make([]int, t+1),
	}
	maxByExactF := make([]int, t+1)
	for _, cfg := range Configurations(n) {
		_, merged, err := explore.Explore(kind, alg, cfg, t, opts, func() explore.Visitor {
			return newConfigVisitor(t)
		})
		if err != nil {
			return nil, fmt.Errorf("latency: exploring %s/%v from %v: %w", alg.Name(), kind, cfg, err)
		}
		v := merged.(*configVisitor)
		d.Runs += v.runs
		d.Violations += v.violations
		if v.latCfg == -1 {
			return nil, fmt.Errorf("latency: %s/%v produced no terminating run from %v", alg.Name(), kind, cfg)
		}
		if d.Lat == -1 || v.latCfg < d.Lat {
			d.Lat = v.latCfg
		}
		if v.latCfg > d.LatMax {
			d.LatMax = v.latCfg
		}
		for f, m := range v.maxByExactF {
			if m > maxByExactF[f] {
				maxByExactF[f] = m
			}
		}
	}
	// Lat(A,f) is monotone in f: max over runs with at most f crashes.
	running := 0
	for f := 0; f <= t; f++ {
		if maxByExactF[f] > running {
			running = maxByExactF[f]
		}
		d.LatByF[f] = running
	}
	// Λ(A) = min_f Lat(A,f); by monotonicity this is Lat(A,0).
	d.Lambda = d.LatByF[0]
	return d, nil
}
