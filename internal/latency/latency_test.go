package latency

import (
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/explore"
	"repro/internal/rounds"
)

func computeOrDie(t *testing.T, kind rounds.ModelKind, alg rounds.Algorithm, n, tol int) *Degrees {
	t.Helper()
	d, err := Compute(kind, alg, n, tol, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Violations != 0 {
		t.Fatalf("%s/%v: %d specification violations during latency exploration", alg.Name(), kind, d.Violations)
	}
	return d
}

func TestConfigurationsCount(t *testing.T) {
	cfgs := Configurations(3)
	if len(cfgs) != 9 {
		t.Fatalf("Configurations(3) = %d configs, want 2^3+1 = 9", len(cfgs))
	}
	for _, c := range cfgs {
		if len(c) != 3 {
			t.Errorf("config %v has length %d, want 3", c, len(c))
		}
	}
}

// TestFloodSetDegrees checks the textbook numbers: FloodSet always decides
// at exactly round t+1, so every latency measure equals t+1.
func TestFloodSetDegrees(t *testing.T) {
	d := computeOrDie(t, rounds.RS, consensus.FloodSet{}, 3, 1)
	if d.Lat != 2 || d.LatMax != 2 || d.Lambda != 2 {
		t.Errorf("FloodSet degrees = lat %d, Lat %d, Λ %d; want all 2 (t+1)", d.Lat, d.LatMax, d.Lambda)
	}
	for f, v := range d.LatByF {
		if v != 2 {
			t.Errorf("Lat(FloodSet,%d) = %d, want 2", f, v)
		}
	}
}

// TestCOptDegrees reproduces §5.2: lat(C_OptFloodSet) = 1 (the unanimous
// configuration decides at round 1) while Lat(C_OptFloodSet) = t+1 (a mixed
// configuration cannot use the fast path).
func TestCOptDegrees(t *testing.T) {
	for _, tc := range []struct {
		alg  rounds.Algorithm
		kind rounds.ModelKind
	}{
		{consensus.COptFloodSet{}, rounds.RS},
		{consensus.COptFloodSetWS{}, rounds.RWS},
	} {
		d := computeOrDie(t, tc.kind, tc.alg, 3, 1)
		if d.Lat != 1 {
			t.Errorf("lat(%s) = %d, want 1 (§5.2)", tc.alg.Name(), d.Lat)
		}
		if d.LatMax != 2 {
			t.Errorf("Lat(%s) = %d, want t+1 = 2", tc.alg.Name(), d.LatMax)
		}
	}
}

// TestFOptDegrees reproduces §5.2: Lat(F_OptFloodSet) = 1 — with t initial
// crashes EVERY process decides at round 1, from every configuration, so
// even the max-over-configs measure collapses to 1... as the min over f is
// attained at f = t, not f = 0. The paper: "this contradicts a widespread
// idea that minimal latency degree is typically obtained with failure free
// runs."
func TestFOptDegrees(t *testing.T) {
	for _, tc := range []struct {
		alg  rounds.Algorithm
		kind rounds.ModelKind
	}{
		{consensus.FOptFloodSet{}, rounds.RS},
		{consensus.FOptFloodSetWS{}, rounds.RWS},
	} {
		d := computeOrDie(t, tc.kind, tc.alg, 3, 1)
		if d.LatMax != 1 {
			t.Errorf("Lat(%s) = %d, want 1 (§5.2)", tc.alg.Name(), d.LatMax)
		}
		// Failure-free runs still take t+1 rounds: Λ = 2 > Lat(A) = 1.
		if d.Lambda != 2 {
			t.Errorf("Λ(%s) = %d, want 2", tc.alg.Name(), d.Lambda)
		}
	}
}

// TestA1Degrees reproduces §5.3: Λ(A1) = 1 in RS — every failure-free run
// decides at round 1 — and no run exceeds 2 rounds.
func TestA1Degrees(t *testing.T) {
	d := computeOrDie(t, rounds.RS, consensus.A1{}, 3, 1)
	if d.Lambda != 1 {
		t.Errorf("Λ(A1) = %d, want 1 (Theorem 5.2)", d.Lambda)
	}
	if d.LatByF[1] != 2 {
		t.Errorf("Lat(A1,1) = %d, want 2", d.LatByF[1])
	}
	if d.Lat != 1 || d.LatMax != 1 {
		t.Errorf("lat(A1) = %d, Lat(A1) = %d; want 1, 1", d.Lat, d.LatMax)
	}
}

// TestRWSLambdaLowerBound reproduces the other half of §5.3: every correct
// RWS algorithm in the suite has Λ(A) ≥ 2, so RS strictly beats RWS on Λ.
func TestRWSLambdaLowerBound(t *testing.T) {
	for _, alg := range consensus.ForModel(rounds.RWS) {
		d := computeOrDie(t, rounds.RWS, alg, 3, 1)
		if d.Lambda < 2 {
			t.Errorf("Λ(%s) = %d in RWS; the paper's lower bound says ≥ 2", alg.Name(), d.Lambda)
		}
	}
}

func TestDegreesString(t *testing.T) {
	d := computeOrDie(t, rounds.RS, consensus.A1{}, 3, 1)
	s := d.String()
	for _, want := range []string{"A1/RS", "Λ=1", "Lat(A,1)=2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Degrees.String() = %q missing %q", s, want)
		}
	}
}

// TestComputeParallelEquality pins the determinism-by-merge contract at the
// latency layer: Compute with the parallel explorer yields exactly the same
// Degrees — every measure and both counters — as the sequential pass.
func TestComputeParallelEquality(t *testing.T) {
	cases := []struct {
		kind rounds.ModelKind
		alg  rounds.Algorithm
		n    int
	}{
		{rounds.RS, consensus.FloodSet{}, 3},
		{rounds.RWS, consensus.FloodSetWS{}, 3},
		{rounds.RS, consensus.A1{}, 3},
	}
	for _, tc := range cases {
		seq, err := Compute(tc.kind, tc.alg, tc.n, 1, explore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, 4} {
			par, err := Compute(tc.kind, tc.alg, tc.n, 1, explore.Options{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if seq.String() != par.String() || seq.Runs != par.Runs || seq.Violations != par.Violations {
				t.Errorf("%s/%v workers=%d: %v (runs=%d viol=%d), sequential %v (runs=%d viol=%d)",
					tc.alg.Name(), tc.kind, w, par, par.Runs, par.Violations, seq, seq.Runs, seq.Violations)
			}
		}
	}
}
