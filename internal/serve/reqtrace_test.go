package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	stdruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/tracing"
)

// TestRequestTraceExactTiling is the tentpole invariant end-to-end: with
// every request sampled, a CAS driven through the HTTP surface yields a
// retrievable trace whose phase attribution sums exactly to the measured
// wall-clock total, whose consensus slice is backed by a span tree that
// passes the PR 5 CheckSums discipline, and whose instance id matches the
// committed version's.
func TestRequestTraceExactTiling(t *testing.T) {
	_, client := newTestServer(t, func(c *Config) { c.TraceSample = 1 })
	ctx := context.Background()

	resp, err := client.CAS(ctx, "tile", nil, 42)
	if err != nil {
		t.Fatalf("CAS: %v", err)
	}
	if !resp.OK {
		t.Fatalf("CAS lost with no competitor: %+v", resp)
	}

	dt, err := client.DebugTraces(ctx)
	if err != nil {
		t.Fatalf("DebugTraces: %v", err)
	}
	if dt.Sampling.Rate != 1 || dt.Sampling.Sampled == 0 {
		t.Fatalf("sampling stats = %+v, want rate 1 with sampled requests", dt.Sampling)
	}
	var id string
	for _, rec := range dt.Recent {
		if rec.Route == "kv-cas" {
			id = rec.ID
			break
		}
	}
	if id == "" {
		t.Fatalf("no kv-cas trace in recent: %+v", dt.Recent)
	}

	rec, err := client.DebugTrace(ctx, id)
	if err != nil {
		t.Fatalf("DebugTrace(%s): %v", id, err)
	}
	if !rec.Sampled || rec.Trace == nil {
		t.Fatalf("trace %s: sampled=%v trace=%v, want a deep trace", id, rec.Sampled, rec.Trace != nil)
	}
	if rec.Key != "tile" {
		t.Errorf("trace key = %q, want tile", rec.Key)
	}
	if rec.Instance == nil || *rec.Instance != resp.Instance {
		t.Errorf("trace instance = %v, want %d", rec.Instance, resp.Instance)
	}
	if got := rec.Phases.Total(); got != rec.TotalNS {
		t.Errorf("phases sum %d != total %d", got, rec.TotalNS)
	}
	if rec.Phases.ConsensusNS <= 0 {
		t.Errorf("consensus slice = %d, want > 0 for a committed CAS", rec.Phases.ConsensusNS)
	}
	if err := VerifyRequestTrace(rec); err != nil {
		t.Errorf("VerifyRequestTrace: %v", err)
	}

	// The instance slice of the span tree reconciles against the PR 5
	// attribution: per-proc components tile each proc's decision latency.
	attr := tracing.Attribute(rec.Trace)
	if err := attr.CheckSums(); err != nil {
		t.Errorf("instance attribution CheckSums: %v", err)
	}
	if len(attr.Procs) == 0 {
		t.Error("instance attribution has no per-proc rows")
	}
}

// TestRequestTraceChromeExport: the Perfetto view of a live trace
// round-trips through the same reader the offline tooling uses.
func TestRequestTraceChromeExport(t *testing.T) {
	srv, client := newTestServer(t, func(c *Config) { c.TraceSample = 1 })
	ctx := context.Background()
	if _, err := client.CAS(ctx, "chrome", nil, 7); err != nil {
		t.Fatalf("CAS: %v", err)
	}
	dt, err := client.DebugTraces(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var id string
	for _, rec := range dt.Recent {
		if rec.Route == "kv-cas" {
			id = rec.ID
		}
	}
	if id == "" {
		t.Fatal("no kv-cas trace recorded")
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/debug/trace/"+id+"?format=chrome", nil)
	rw := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("chrome export: HTTP %d: %s", rw.Code, rw.Body.String())
	}
	tr, err := tracing.ReadChrome(rw.Body)
	if err != nil {
		t.Fatalf("ReadChrome: %v", err)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("chrome round-trip lost every span")
	}
}

// TestRequestIDHeader: every response carries the request id the debug
// endpoints key on.
func TestRequestIDHeader(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	req := httptest.NewRequest(http.MethodGet, "/v1/status", nil)
	rw := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rw, req)
	if id := rw.Header().Get("X-SSFD-Request"); !strings.HasPrefix(id, "r") {
		t.Fatalf("X-SSFD-Request = %q, want an r-prefixed id", id)
	}
}

// TestTraceStoreSampling pins the deterministic stride: rate 0.5 samples
// every 2nd request starting with the first; rate 0 never samples but the
// slowest exemplars are retained regardless.
func TestTraceStoreSampling(t *testing.T) {
	ts := newTraceStore(0.5, 8, 2)
	var verdicts []bool
	for i := 0; i < 6; i++ {
		_, sampled := ts.begin()
		verdicts = append(verdicts, sampled)
	}
	want := []bool{true, false, true, false, true, false}
	for i := range want {
		if verdicts[i] != want[i] {
			t.Fatalf("stride-2 verdicts = %v, want %v", verdicts, want)
		}
	}

	off := newTraceStore(0, 8, 2)
	for i := 0; i < 5; i++ {
		id, sampled := off.begin()
		if sampled {
			t.Fatalf("rate 0 sampled request %s", id)
		}
		off.add(&RequestTrace{ID: id, Route: "kv-cas", TotalNS: int64(100 - i)})
	}
	dbg := off.debug()
	if len(dbg.Recent) != 0 {
		t.Fatalf("rate 0 filed %d recent traces, want 0", len(dbg.Recent))
	}
	slow := dbg.Slowest["kv-cas"]
	if len(slow) != 2 || slow[0].TotalNS != 100 || slow[1].TotalNS != 99 {
		t.Fatalf("slowest exemplars = %+v, want the two slowest regardless of sampling", slow)
	}
	if off.get(slow[0].ID) == nil {
		t.Fatal("exemplar not retrievable by id")
	}
}

// TestTraceStoreRecentRing: the recent ring evicts oldest-first and lists
// newest-first.
func TestTraceStoreRecentRing(t *testing.T) {
	ts := newTraceStore(1, 3, 1)
	for i := 0; i < 5; i++ {
		id, sampled := ts.begin()
		if !sampled {
			t.Fatalf("rate 1 skipped request %d", i)
		}
		ts.add(&RequestTrace{ID: id, Route: "status", Sampled: true, TotalNS: int64(i)})
	}
	dbg := ts.debug()
	if len(dbg.Recent) != 3 {
		t.Fatalf("recent ring holds %d, want 3", len(dbg.Recent))
	}
	for i, want := range []string{"r00000005", "r00000004", "r00000003"} {
		if dbg.Recent[i].ID != want {
			t.Fatalf("recent[%d] = %s, want %s (newest first)", i, dbg.Recent[i].ID, want)
		}
	}
	if ts.get("r00000001") != nil {
		t.Fatal("evicted trace still retrievable")
	}
}

// TestHistoryPagination is the long-chain regression: a key with more
// versions than the default cap pages correctly, the client reassembles
// the full chain, and malformed cursors answer 400.
func TestHistoryPagination(t *testing.T) {
	srv, client := newTestServer(t, nil)
	const chainLen = DefaultHistoryLimit*2 + 37

	// Seed the chain directly — driving 549 consensus instances through
	// HTTP would make this a throughput test, not a pagination test.
	k := &kvKey{}
	for i := 1; i <= chainLen; i++ {
		k.versions = append(k.versions, KVVersion{Version: i, Value: model.Value(i), Instance: uint64(i)})
	}
	srv.kv.mu.Lock()
	srv.kv.keys["long"] = k
	srv.kv.mu.Unlock()

	ctx := context.Background()

	// Default page: capped, with a cursor.
	var resp KVGetResponse
	code, err := client.do(ctx, http.MethodGet, "/v1/kv/long?history=1", nil, &resp)
	if err != nil || code != http.StatusOK {
		t.Fatalf("history page 1: code %d err %v", code, err)
	}
	if len(resp.History) != DefaultHistoryLimit {
		t.Fatalf("default page = %d versions, want %d", len(resp.History), DefaultHistoryLimit)
	}
	if resp.HistoryTotal != chainLen || resp.NextFrom != DefaultHistoryLimit+1 {
		t.Fatalf("page 1 total=%d next=%d, want total=%d next=%d",
			resp.HistoryTotal, resp.NextFrom, chainLen, DefaultHistoryLimit+1)
	}

	// The client loops the cursor to the full chain, in order.
	hist, err := client.History(ctx, "long")
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(hist) != chainLen {
		t.Fatalf("reassembled chain = %d versions, want %d", len(hist), chainLen)
	}
	for i, v := range hist {
		if v.Version != i+1 {
			t.Fatalf("chain[%d].Version = %d, want %d", i, v.Version, i+1)
		}
	}

	// Explicit window.
	code, err = client.do(ctx, http.MethodGet, "/v1/kv/long?history=1&from=100&limit=5", nil, &resp)
	if err != nil || code != http.StatusOK {
		t.Fatalf("window: code %d err %v", code, err)
	}
	if len(resp.History) != 5 || resp.History[0].Version != 100 || resp.NextFrom != 105 {
		t.Fatalf("window = %d versions from %d next %d, want 5 from 100 next 105",
			len(resp.History), resp.History[0].Version, resp.NextFrom)
	}

	// A cursor past the end answers an empty page with no next cursor.
	resp = KVGetResponse{}
	code, err = client.do(ctx, http.MethodGet,
		fmt.Sprintf("/v1/kv/long?history=1&from=%d", chainLen+1), nil, &resp)
	if err != nil || code != http.StatusOK {
		t.Fatalf("past-end: code %d err %v", code, err)
	}
	if len(resp.History) != 0 || resp.NextFrom != 0 {
		t.Fatalf("past-end page = %d versions next %d, want empty with no cursor", len(resp.History), resp.NextFrom)
	}

	// Malformed cursors are 400s, not silent defaults.
	for _, q := range []string{"limit=0", "limit=x", "from=0", "from=-1"} {
		code, _ = client.do(ctx, http.MethodGet, "/v1/kv/long?history=1&"+q, nil, nil)
		if code != http.StatusBadRequest {
			t.Errorf("?%s: HTTP %d, want 400", q, code)
		}
	}
}

// TestDebugKeys: the hot-key table counts attempts and conflicts per key
// and sorts by traffic.
func TestDebugKeys(t *testing.T) {
	_, client := newTestServer(t, nil)
	ctx := context.Background()

	if _, err := client.CAS(ctx, "hot", nil, 1); err != nil {
		t.Fatal(err)
	}
	// A conflicting CAS: asserts absent against a present head.
	resp, err := client.CAS(ctx, "hot", nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("conflicting CAS won")
	}
	if _, err := client.CAS(ctx, "cold", nil, 1); err != nil {
		t.Fatal(err)
	}

	keys, err := client.DebugKeys(ctx, 0)
	if err != nil {
		t.Fatalf("DebugKeys: %v", err)
	}
	if len(keys) != 2 || keys[0].Key != "hot" {
		t.Fatalf("hot-key table = %+v, want hot first of 2", keys)
	}
	hot := keys[0]
	if hot.Attempts != 2 || hot.Conflicts != 1 || hot.Versions != 1 {
		t.Fatalf("hot row = %+v, want attempts 2, conflicts 1, versions 1", hot)
	}
	if keys, err = client.DebugKeys(ctx, 1); err != nil || len(keys) != 1 {
		t.Fatalf("DebugKeys(1) = %d rows err %v, want the top 1", len(keys), err)
	}
}

// TestStatusSampling: /v1/status carries uptime and the sampling
// configuration — the operator's drain/backlog glance.
func TestStatusSampling(t *testing.T) {
	_, client := newTestServer(t, func(c *Config) { c.TraceSample = 0.25 })
	st, err := client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.UptimeNS <= 0 {
		t.Errorf("UptimeNS = %d, want > 0", st.UptimeNS)
	}
	if st.Sampling.Rate != 0.25 || st.Sampling.RecentCap != 256 || st.Sampling.SlowestPerRoute != 8 {
		t.Errorf("sampling = %+v, want rate 0.25 with default caps", st.Sampling)
	}
	if st.Sampling.Requests == 0 {
		t.Error("status request itself not counted")
	}
}

// TestHTTPMetricsExposition pins the ssfd_http_* names on /metrics: the
// per-route/status counter, the per-route duration histogram and the
// sampled counter — renames break dashboards silently, so the names are
// contract.
func TestHTTPMetricsExposition(t *testing.T) {
	srv, client := newTestServer(t, func(c *Config) { c.TraceSample = 1 })
	ctx := context.Background()
	if _, err := client.CAS(ctx, "m", nil, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Status(ctx); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rw := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rw, req)
	body := rw.Body.String()
	for _, want := range []string{
		`ssfd_http_requests_total{route="kv-cas",code="200"}`,
		`ssfd_http_requests_total{route="status",code="200"}`,
		`ssfd_http_request_duration_ns_bucket{route="kv-cas",le="`,
		`ssfd_http_request_duration_ns_count{route="kv-cas"}`,
		`ssfd_http_sampled_total`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSamplerShutdownNoLeak hammers the sampler and exemplar rings from
// concurrent clients racing a Shutdown, then requires the goroutine count
// to return to baseline — the store is pure data, so nothing may linger.
// Run with -race this doubles as the sampler's data-race test.
func TestSamplerShutdownNoLeak(t *testing.T) {
	before := stdruntime.NumGoroutine()

	srv, err := New(Config{
		N: 3, T: 1,
		HeartbeatPeriod: 2 * time.Millisecond,
		SuspectTimeout:  500 * time.Millisecond,
		ProposeTimeout:  10 * time.Second,
		TraceSample:     1, // every request through the deep-trace path
		TraceRecent:     16,
		TraceSlowest:    2,
		Metrics:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		BaseURL: "http://serve.test",
		HTTP:    &http.Client{Transport: inprocTransport{h: srv.Handler()}},
	}
	ctx := context.Background()

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("k%d", i%3)
				_, _ = client.CAS(ctx, key, nil, int64(c*100+i))
				_, _ = client.Get(ctx, key)
				_, _ = client.DebugTraces(ctx)
			}
		}(c)
	}
	// Shutdown races the load: late writes answer 503, in-flight ones
	// drain, and the debug endpoints stay readable throughout.
	time.Sleep(5 * time.Millisecond)
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	if _, err := client.DebugTraces(ctx); err != nil {
		t.Fatalf("DebugTraces after shutdown: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		stdruntime.GC()
		now := stdruntime.NumGoroutine()
		if now <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := stdruntime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d now=%d — leak\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
