package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

// gatherChains reads every key's full chain off the server — the ground
// truth the checker compares client observations against.
func gatherChains(t *testing.T, client *Client, keys int) map[string][]KVVersion {
	t.Helper()
	ctx := context.Background()
	chains := make(map[string][]KVVersion)
	for k := 0; k < keys; k++ {
		key := keyName(k)
		hist, err := client.History(ctx, key)
		if err == ErrKeyNotFound {
			continue
		}
		if err != nil {
			t.Fatalf("History(%s): %v", key, err)
		}
		chains[key] = hist
	}
	return chains
}

func keyName(k int) string { return "k" + pad3(k) }

func pad3(k int) string {
	s := "00" + itoa(k)
	return s[len(s)-3:]
}

func itoa(k int) string {
	if k == 0 {
		return "0"
	}
	var b []byte
	for k > 0 {
		b = append([]byte{byte('0' + k%10)}, b...)
		k /= 10
	}
	return string(b)
}

// TestLinearizability is the property test: N concurrent clients hammer
// overlapping keys; every observed read/CAS history must embed into the
// per-key consensus-chain order. Runs under -race -count=2 in CI.
func TestLinearizability(t *testing.T) {
	_, client := newTestServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:      client.BaseURL,
		HTTP:         client.HTTP,
		Clients:      16,
		Keys:         5,
		OpsPerClient: 25,
		ReadFraction: 0.4,
		Seed:         42,
		RecordOps:    true,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Ops == 0 || rep.CASOk == 0 {
		t.Fatalf("workload did nothing: %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("workload saw %d errors on a clean mesh", rep.Errors)
	}
	chains := gatherChains(t, client, 5)
	if err := CheckLinearizable(chains, rep.Records); err != nil {
		t.Fatalf("linearizability violated: %v", err)
	}
	// Contention sanity: 16 clients on 5 keys must actually have raced.
	if rep.CASConflicts == 0 {
		t.Log("no CAS conflicts — surprising under this contention, but legal")
	}
}

// --- checker unit tests: each divergence class is actually caught ---

func chainOf(vals ...int64) []KVVersion {
	var c []KVVersion
	for i, v := range vals {
		c = append(c, KVVersion{Version: i + 1, Value: model.Value(v), Instance: uint64(i)})
	}
	return c
}

func TestCheckerAcceptsCleanHistory(t *testing.T) {
	chains := map[string][]KVVersion{"k000": chainOf(10, 20)}
	old := int64(10)
	ops := []OpRecord{
		{Client: 0, Kind: OpCAS, Key: "k000", Start: 1, End: 2, Old: nil, New: 10, OK: true, Version: 1, Value: 10},
		{Client: 1, Kind: OpRead, Key: "k000", Start: 3, End: 4, OK: true, Version: 1, Value: 10},
		{Client: 0, Kind: OpCAS, Key: "k000", Start: 5, End: 6, Old: &old, New: 20, OK: true, Version: 2, Value: 20},
		{Client: 1, Kind: OpRead, Key: "k000", Start: 7, End: 8, OK: true, Version: 2, Value: 20},
	}
	if err := CheckLinearizable(chains, ops); err != nil {
		t.Fatalf("clean history rejected: %v", err)
	}
}

func TestCheckerCatchesStaleRead(t *testing.T) {
	chains := map[string][]KVVersion{"k000": chainOf(10, 20)}
	ops := []OpRecord{
		{Client: 0, Kind: OpRead, Key: "k000", Start: 1, End: 2, OK: true, Version: 2, Value: 20},
		// Starts after the v2 read completed, yet observes v1: stale.
		{Client: 1, Kind: OpRead, Key: "k000", Start: 3, End: 4, OK: true, Version: 1, Value: 10},
	}
	err := CheckLinearizable(chains, ops)
	if err == nil || !strings.Contains(err.Error(), "first divergent op") {
		t.Fatalf("stale read not caught: %v", err)
	}
}

func TestCheckerCatchesPhantomValue(t *testing.T) {
	chains := map[string][]KVVersion{"k000": chainOf(10)}
	ops := []OpRecord{
		{Client: 0, Kind: OpRead, Key: "k000", Start: 1, End: 2, OK: true, Version: 1, Value: 99},
	}
	if err := CheckLinearizable(chains, ops); err == nil {
		t.Fatal("phantom value not caught")
	}
}

func TestCheckerCatchesBadCASChain(t *testing.T) {
	chains := map[string][]KVVersion{"k000": chainOf(10, 20)}
	wrongOld := int64(15)
	cases := map[string][]OpRecord{
		"cas with mismatched predecessor": {
			{Kind: OpCAS, Key: "k000", Start: 1, End: 2, Old: &wrongOld, New: 20, OK: true, Version: 2, Value: 20},
		},
		"cas from absent not at version 1": {
			{Kind: OpCAS, Key: "k000", Start: 1, End: 2, Old: nil, New: 20, OK: true, Version: 2, Value: 20},
		},
		"cas committed someone else's value": {
			{Kind: OpCAS, Key: "k000", Start: 1, End: 2, Old: nil, New: 77, OK: true, Version: 1, Value: 10},
		},
		"observed version beyond the chain": {
			{Kind: OpRead, Key: "k000", Start: 1, End: 2, OK: true, Version: 9, Value: 1},
		},
		"successful cas at version 0": {
			{Kind: OpCAS, Key: "k000", Start: 1, End: 2, Old: nil, New: 5, OK: true, Version: 0, Value: 5},
		},
	}
	for name, ops := range cases {
		if err := CheckLinearizable(chains, ops); err == nil {
			t.Errorf("%s: not caught", name)
		}
	}
}

func TestCheckerCatchesDoubleClaim(t *testing.T) {
	chains := map[string][]KVVersion{"k000": chainOf(10)}
	ops := []OpRecord{
		{Client: 0, Kind: OpCAS, Key: "k000", Start: 1, End: 2, Old: nil, New: 10, OK: true, Version: 1, Value: 10},
		{Client: 1, Kind: OpCAS, Key: "k000", Start: 1, End: 3, Old: nil, New: 10, OK: true, Version: 1, Value: 10},
	}
	err := CheckLinearizable(chains, ops)
	if err == nil || !strings.Contains(err.Error(), "already created") {
		t.Fatalf("double claim not caught: %v", err)
	}
}

func TestCheckerCatchesSparseChain(t *testing.T) {
	chains := map[string][]KVVersion{"k000": {{Version: 2, Value: 5}}}
	if err := CheckLinearizable(chains, nil); err == nil {
		t.Fatal("sparse chain not caught")
	}
}

func TestCheckerSkipsErroredOps(t *testing.T) {
	chains := map[string][]KVVersion{"k000": chainOf(10)}
	ops := []OpRecord{
		{Kind: OpCAS, Key: "k000", Start: 1, End: 2, New: 5, Err: "timeout", Version: 7},
	}
	if err := CheckLinearizable(chains, ops); err != nil {
		t.Fatalf("errored op should be skipped: %v", err)
	}
}

// TestLoadConfigValidation pins the config guard rails.
func TestLoadConfigValidation(t *testing.T) {
	if _, err := RunLoad(context.Background(), LoadConfig{ReadFraction: 2}); err == nil {
		t.Error("read fraction 2 accepted")
	}
	if _, err := RunLoad(context.Background(), LoadConfig{}); err == nil {
		t.Error("no stop condition accepted")
	}
}

// TestLoadDurationBound: a duration-bounded run terminates and reports.
func TestLoadDurationBound(t *testing.T) {
	_, client := newTestServer(t, nil)
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:  client.BaseURL,
		HTTP:     client.HTTP,
		Clients:  4,
		Keys:     3,
		Duration: 300 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Ops == 0 || rep.OpsPerSec == 0 {
		t.Fatalf("duration-bounded run did nothing: %s", rep)
	}
	if rep.LatencyUS.N == 0 {
		t.Error("no latency samples")
	}
	if !strings.Contains(rep.String(), "ops/sec") {
		t.Errorf("report string: %s", rep)
	}
}
