package serve

import (
	"fmt"
	"sort"
)

// CheckLinearizable verifies a recorded KV workload against the per-key
// consensus chains. The chain IS the linearization order — every version
// of a key is the decision of one consensus instance, committed in chain
// order — so checking is direct rather than a search:
//
//  1. each key's chain must be dense (versions 1..len, in order);
//  2. every operation's observation must exist in the chain: a read or
//     conflict observing (version, value) must match chain[version-1], and
//     version 0 ("absent") is only coherent before version 1 commits;
//  3. every successful CAS must map to exactly one chain slot whose
//     predecessor's value matches the asserted old value (old nil ⇒ it
//     created version 1), and no slot is claimed twice;
//  4. real time is respected per key: if op A completed before op B began
//     (A.End < B.Start on the shared logical clock), B must observe a
//     version ≥ A's.
//
// The first divergent operation is named in the returned error.
func CheckLinearizable(chains map[string][]KVVersion, ops []OpRecord) error {
	for key, chain := range chains {
		for i, v := range chain {
			if v.Version != i+1 {
				return fmt.Errorf("key %s: chain not dense: slot %d holds version %d", key, i, v.Version)
			}
		}
	}

	byKey := make(map[string][]OpRecord)
	for _, op := range ops {
		if op.Err != "" {
			continue // timeouts/errors observed nothing checkable
		}
		byKey[op.Key] = append(byKey[op.Key], op)
	}

	for key, kops := range byKey {
		chain := chains[key]
		claimed := make(map[int]int) // version -> index of the CAS that created it
		for i, op := range kops {
			if op.Version < 0 || op.Version > len(chain) {
				return fmt.Errorf("key %s: %s", key, divergent(op, fmt.Sprintf(
					"observed version %d but the chain has %d versions", op.Version, len(chain))))
			}
			if op.Version > 0 && int64(chain[op.Version-1].Value) != op.Value {
				return fmt.Errorf("key %s: %s", key, divergent(op, fmt.Sprintf(
					"observed (v%d, %d) but the chain holds (v%d, %d)",
					op.Version, op.Value, op.Version, int64(chain[op.Version-1].Value))))
			}
			if op.Kind != OpCAS || !op.OK {
				continue
			}
			// A winning CAS creates a version: check the slot and its
			// predecessor against the request.
			if op.Version == 0 {
				return fmt.Errorf("key %s: %s", key, divergent(op, "successful cas reported version 0"))
			}
			if op.Value != op.New {
				return fmt.Errorf("key %s: %s", key, divergent(op, fmt.Sprintf(
					"successful cas committed %d, wrote %d", op.Value, op.New)))
			}
			switch {
			case op.Old == nil && op.Version != 1:
				return fmt.Errorf("key %s: %s", key, divergent(op, fmt.Sprintf(
					"cas from absent created version %d, want 1", op.Version)))
			case op.Old != nil && op.Version == 1:
				return fmt.Errorf("key %s: %s", key, divergent(op, "cas from a value created version 1"))
			case op.Old != nil && int64(chain[op.Version-2].Value) != *op.Old:
				return fmt.Errorf("key %s: %s", key, divergent(op, fmt.Sprintf(
					"cas asserted old=%d but version %d holds %d",
					*op.Old, op.Version-1, int64(chain[op.Version-2].Value))))
			}
			if prev, dup := claimed[op.Version]; dup {
				return fmt.Errorf("key %s: %s", key, divergent(op, fmt.Sprintf(
					"version %d already created by client %d's cas", op.Version, kops[prev].Client)))
			}
			claimed[op.Version] = i
		}

		// Real-time bound: observations must be monotone across
		// non-overlapping operations. Sort by End and keep a running
		// prefix-max of observed versions; for each op, every operation
		// that ended before it started is in the prefix.
		byEnd := append([]OpRecord(nil), kops...)
		sort.Slice(byEnd, func(i, j int) bool { return byEnd[i].End < byEnd[j].End })
		ends := make([]int64, len(byEnd))
		prefixMax := make([]int, len(byEnd))
		maxSoFar := 0
		for i, op := range byEnd {
			ends[i] = op.End
			if op.Version > maxSoFar {
				maxSoFar = op.Version
			}
			prefixMax[i] = maxSoFar
		}
		for _, op := range kops {
			// Largest index with End < op.Start.
			idx := sort.Search(len(ends), func(i int) bool { return ends[i] >= op.Start }) - 1
			if idx >= 0 && op.Version < prefixMax[idx] {
				return fmt.Errorf("key %s: %s", key, divergent(op, fmt.Sprintf(
					"observed version %d after version %d was already observed by a completed operation",
					op.Version, prefixMax[idx])))
			}
		}
	}
	return nil
}

// divergent renders the first divergent operation for the error message.
func divergent(op OpRecord, why string) string {
	return fmt.Sprintf("first divergent op: client %d %s key=%s old=%v new=%d -> ok=%v v%d=%d [%d,%d]: %s",
		op.Client, op.Kind, op.Key, ptr64(op.Old), op.New, op.OK, op.Version, op.Value, op.Start, op.End, why)
}

func ptr64(p *int64) any {
	if p == nil {
		return "nil"
	}
	return *p
}
