package serve

import (
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/runtime"
)

// Monitor is the in-production conformance checker: every completed
// instance is tested against the paper's two safety predicates —
// agreement (no two nodes decide differently) and validity (every decision
// was somebody's proposal) — and tallied. Undecided instances are counted
// but are not violations: under chaos a proposal may time out, which is a
// liveness observation, and liveness is exactly what the fault injector is
// licensed to take.
type Monitor struct {
	mu        sync.Mutex
	checked   int64
	undecided int64
	agreement int64 // agreement violations
	validity  int64 // validity violations
	firstBad  string
}

// ConformSummary is the monitor's JSON for /v1/status.
type ConformSummary struct {
	Checked             int64  `json:"checked"`
	Undecided           int64  `json:"undecided"`
	AgreementViolations int64  `json:"agreement_violations"`
	ValidityViolations  int64  `json:"validity_violations"`
	Clean               bool   `json:"clean"`
	FirstViolation      string `json:"first_violation,omitempty"`
}

// Note checks one completed instance. Called from the engine's completion
// callback (a worker goroutine): one short critical section.
func (m *Monitor) Note(inst uint64, proposals []model.Value, out runtime.InstanceOutcome) {
	proposed := model.NewValueSet(proposals...)
	_, verdict := out.Agreement()
	anyDecided := false
	badValidity := ""
	for i, d := range out.Decided {
		if !d {
			continue
		}
		anyDecided = true
		if !proposed.Has(out.Decisions[i]) {
			badValidity = fmt.Sprintf(
				"instance %d: node %d decided %d, which nobody proposed",
				inst, i+1, int64(out.Decisions[i]))
			break
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	m.checked++
	if out.Err == nil && !anyDecided {
		m.undecided++
	}
	if verdict == runtime.AgreementViolated {
		m.agreement++
		if m.firstBad == "" {
			m.firstBad = fmt.Sprintf("instance %d: agreement violated (decisions %v)",
				inst, out.Decisions)
		}
	}
	if badValidity != "" {
		m.validity++
		if m.firstBad == "" {
			m.firstBad = badValidity
		}
	}
}

// Clean reports whether no safety predicate ever failed.
func (m *Monitor) Clean() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.agreement == 0 && m.validity == 0
}

// Summary snapshots the tallies.
func (m *Monitor) Summary() ConformSummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return ConformSummary{
		Checked:             m.checked,
		Undecided:           m.undecided,
		AgreementViolations: m.agreement,
		ValidityViolations:  m.validity,
		Clean:               m.agreement == 0 && m.validity == 0,
		FirstViolation:      m.firstBad,
	}
}
