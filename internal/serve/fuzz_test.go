package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fuzzServer is shared across fuzz iterations: one live cluster, built
// lazily — the fuzz executor forks worker processes, and each builds its
// own on first use.
var (
	fuzzOnce    sync.Once
	fuzzHandler http.Handler
)

func fuzzTarget(f *testing.F) http.Handler {
	fuzzOnce.Do(func() {
		srv, err := New(Config{
			N: 3, T: 1,
			HeartbeatPeriod: 2 * time.Millisecond,
			SuspectTimeout:  time.Second,
			// Small wait budget: a fuzz input that opens a KV slot must not
			// park an iteration for the serving default.
			ProposeTimeout: 2 * time.Second,
			MaxBody:        1 << 12,
			Conform:        true,
			Metrics:        obs.NewRegistry(),
		})
		if err != nil {
			f.Fatalf("fuzz server: %v", err)
		}
		fuzzHandler = srv.Handler()
	})
	return fuzzHandler
}

// sane is the closed set of statuses the API is allowed to answer — the
// fuzz oracle. Anything else (worst of all a 0 from a panic) fails.
func saneStatus(code int) bool {
	switch code {
	case http.StatusOK, http.StatusMovedPermanently, http.StatusBadRequest,
		http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusConflict,
		http.StatusRequestEntityTooLarge, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout, http.StatusInternalServerError:
		return true
	}
	return false
}

// FuzzServeRequest drives arbitrary (method, path, body) triples through
// the full handler: it must never panic, always answer a status from the
// closed set, and always answer well-formed JSON.
func FuzzServeRequest(f *testing.F) {
	f.Add("POST", "/v1/propose", []byte(`{"value":7}`))
	f.Add("POST", "/v1/propose", []byte(`{"values":[1,2,3]}`))
	f.Add("POST", "/v1/propose", []byte(`{"value":`))
	f.Add("GET", "/v1/instance/0", []byte(nil))
	f.Add("GET", "/v1/instance/0?wait=1", []byte(nil))
	f.Add("POST", "/v1/kv/fuzz/cas", []byte(`{"old":null,"new":5}`))
	f.Add("POST", "/v1/kv/fuzz/cas", []byte(`{"old":5,"new":6}`))
	f.Add("GET", "/v1/kv/fuzz?history=1", []byte(nil))
	f.Add("GET", "/v1/status", []byte(nil))
	f.Add("DELETE", "/v1/kv/fuzz", []byte(nil))
	f.Add("GET", "/../../etc/passwd", []byte(nil))
	f.Add("PATCH", "/v1/propose", []byte(strings.Repeat("A", 9000)))

	h := fuzzTarget(f)
	f.Fuzz(func(t *testing.T, method, path string, body []byte) {
		if len(body) > 1<<14 {
			return // MaxBody already bounds the server; cap the fuzz input
		}
		req, err := http.NewRequest(method, "http://fuzz.test"+path, bytes.NewReader(body))
		if err != nil {
			return // not a constructible request — nothing to serve
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // a panic here fails the fuzz run

		if !saneStatus(rec.Code) {
			t.Fatalf("%s %q -> insane status %d (body %.120q)", method, path, rec.Code, rec.Body.String())
		}
		// Every response under /v1/ is JSON; /healthz and /metrics are the
		// two text surfaces.
		p := req.URL.Path
		if p != "/healthz" && p != "/metrics" {
			if !json.Valid(rec.Body.Bytes()) {
				t.Fatalf("%s %q -> non-JSON body %.120q", method, path, rec.Body.String())
			}
		}
	})
}
