package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/model"
)

// Client errors.
var (
	// ErrKeyNotFound: GET on a key with no committed versions.
	ErrKeyNotFound = errors.New("serve: key not found")
	// ErrDraining: the server answered 503 — it is shutting down.
	ErrDraining = errors.New("serve: server draining")
	// ErrTimeout: the server answered 504 — consensus outran the wait
	// budget; the operation may still commit, retry and observe.
	ErrTimeout = errors.New("serve: consensus timed out; retry")
)

// Client is the HTTP client library for the serving API, shared by
// ssfd-load, the CLIs and the test battery.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil uses http.DefaultClient. Tests inject an
	// in-process RoundTripper here to drive thousands of clients without
	// sockets.
	HTTP *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one request and decodes the JSON response into out (when
// non-nil), translating the API's error statuses into typed errors.
func (c *Client) do(ctx context.Context, method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	switch resp.StatusCode {
	case http.StatusServiceUnavailable:
		return resp.StatusCode, ErrDraining
	case http.StatusGatewayTimeout:
		return resp.StatusCode, ErrTimeout
	}
	if out != nil && (resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusConflict) {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("serve: bad response body: %w", err)
		}
		return resp.StatusCode, nil
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return resp.StatusCode, fmt.Errorf("serve: %s (HTTP %d)", eb.Error, resp.StatusCode)
		}
		return resp.StatusCode, fmt.Errorf("serve: HTTP %d", resp.StatusCode)
	}
	return resp.StatusCode, nil
}

// Propose opens a raw instance where every node proposes value.
func (c *Client) Propose(ctx context.Context, value int64) (uint64, error) {
	var resp ProposeResponse
	_, err := c.do(ctx, http.MethodPost, "/v1/propose", ProposeRequest{Value: &value}, &resp)
	return resp.Instance, err
}

// ProposeValues opens a raw instance with a per-node proposal vector.
func (c *Client) ProposeValues(ctx context.Context, values []int64) (uint64, error) {
	var resp ProposeResponse
	_, err := c.do(ctx, http.MethodPost, "/v1/propose", ProposeRequest{Values: values}, &resp)
	return resp.Instance, err
}

// Instance reads an instance's status; wait blocks until it completes (or
// the server's wait budget runs out).
func (c *Client) Instance(ctx context.Context, id uint64, wait bool) (*InstanceStatus, error) {
	path := fmt.Sprintf("/v1/instance/%d", id)
	if wait {
		path += "?wait=1"
	}
	var st InstanceStatus
	if _, err := c.do(ctx, http.MethodGet, path, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Get reads a key's head version; ErrKeyNotFound if nothing committed.
func (c *Client) Get(ctx context.Context, key string) (*KVVersion, error) {
	var resp KVGetResponse
	code, err := c.do(ctx, http.MethodGet, "/v1/kv/"+url.PathEscape(key), nil, &resp)
	if code == http.StatusNotFound {
		return nil, ErrKeyNotFound
	}
	if err != nil {
		return nil, err
	}
	return &KVVersion{Version: resp.Version, Value: model.Value(resp.Value)}, nil
}

// History reads a key's full version chain (the ground truth the
// linearizability checker compares client observations against), following
// the server's pagination cursor until the chain is complete.
func (c *Client) History(ctx context.Context, key string) ([]KVVersion, error) {
	var all []KVVersion
	from := 1
	for {
		var resp KVGetResponse
		path := fmt.Sprintf("/v1/kv/%s?history=1&from=%d", url.PathEscape(key), from)
		code, err := c.do(ctx, http.MethodGet, path, nil, &resp)
		if code == http.StatusNotFound {
			return nil, ErrKeyNotFound
		}
		if err != nil {
			return nil, err
		}
		all = append(all, resp.History...)
		if resp.NextFrom == 0 {
			return all, nil
		}
		from = resp.NextFrom
	}
}

// DebugTraces reads GET /v1/debug/traces: sampling state, recent sampled
// requests and slowest exemplars per route (summaries without span trees).
func (c *Client) DebugTraces(ctx context.Context) (*DebugTraces, error) {
	var resp DebugTraces
	if _, err := c.do(ctx, http.MethodGet, "/v1/debug/traces", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// DebugTrace reads one request's full record (phases plus, when sampled,
// the embedded span tree) from GET /v1/debug/trace/{id}.
func (c *Client) DebugTrace(ctx context.Context, id string) (*RequestTrace, error) {
	var rec RequestTrace
	if _, err := c.do(ctx, http.MethodGet, "/v1/debug/trace/"+url.PathEscape(id), nil, &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// DebugKeys reads the hot-key table (top-n by CAS attempts; n<=0 uses the
// server default).
func (c *Client) DebugKeys(ctx context.Context, n int) ([]KeyStats, error) {
	path := "/v1/debug/keys"
	if n > 0 {
		path += fmt.Sprintf("?n=%d", n)
	}
	var resp DebugKeysResponse
	if _, err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Keys, nil
}

// CAS executes one check-and-set. The returned response is meaningful on
// both success (the committed version) and conflict (the winning head,
// with OK false and a nil error — a conflict is an answer, not a failure).
func (c *Client) CAS(ctx context.Context, key string, old *int64, val int64) (*CASResponse, error) {
	var resp CASResponse
	code, err := c.do(ctx, http.MethodPost, "/v1/kv/"+url.PathEscape(key)+"/cas",
		CASRequest{Old: old, New: val}, &resp)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK && code != http.StatusConflict {
		return nil, fmt.Errorf("serve: cas: HTTP %d", code)
	}
	return &resp, nil
}

// Update runs a read-modify-write loop — the "CAS retried on lost races"
// client pattern: read the head, apply f, CAS; on conflict, re-read and
// retry until ctx expires.
func (c *Client) Update(ctx context.Context, key string, f func(cur *int64) int64) (*KVVersion, error) {
	for {
		var old *int64
		cur, err := c.Get(ctx, key)
		switch {
		case err == nil:
			v := int64(cur.Value)
			old = &v
		case errors.Is(err, ErrKeyNotFound):
			// absent: CAS from nil
		default:
			return nil, err
		}
		resp, err := c.CAS(ctx, key, old, f(old))
		if errors.Is(err, ErrTimeout) {
			continue // the write may or may not have landed; re-read
		}
		if err != nil {
			return nil, err
		}
		if resp.OK {
			return &KVVersion{Version: resp.Version, Value: model.Value(resp.Value), Instance: resp.Instance}, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// Status reads GET /v1/status.
func (c *Client) Status(ctx context.Context) (*StatusReport, error) {
	var rep StatusReport
	if _, err := c.do(ctx, http.MethodGet, "/v1/status", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}
