package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/rounds"
	"repro/internal/runtime"
)

func vals(vs ...int64) []model.Value {
	out := make([]model.Value, len(vs))
	for i, v := range vs {
		out[i] = model.Value(v)
	}
	return out
}

// TestChaosServing is the chaos-serving regression: the daemon runs over a
// fault-injected mesh (the E14-grade drop/dup/delay mix) with the
// conformance monitor attached. Individual proposals may time out or come
// back undecided — that is liveness, and the injector is licensed to take
// it — but AgreementStatus must never report violated and the conformance
// report must stay clean.
func TestChaosServing(t *testing.T) {
	spec, err := faults.ParseSpec("seed=7,loss=0.1,dup=0.2,spike=1ms-3ms@0.2")
	if err != nil {
		t.Fatal(err)
	}
	_, client := newTestServer(t, func(c *Config) {
		// n=4, t=2: FloodSetWS tolerates two silent peers per round, so a
		// dropped batch degrades liveness, not safety.
		c.N, c.T = 4, 2
		c.Faults = &spec
		// Quick wait bound: a starved round proceeds with what arrived
		// instead of parking the client; generous suspect timeout so the
		// injector's delays never manufacture false suspicions.
		c.WaitBound = 300 * time.Millisecond
		c.SuspectTimeout = 2 * time.Second
		c.ProposeTimeout = 5 * time.Second
	})

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:      client.BaseURL,
		HTTP:         client.HTTP,
		Clients:      6,
		Keys:         3,
		OpsPerClient: 8,
		ReadFraction: 0.3,
		Seed:         7,
		RecordOps:    true,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.CASOk == 0 {
		t.Fatalf("no CAS succeeded under chaos: %s", rep)
	}
	t.Logf("chaos load: %s", rep)

	status, err := client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if status.Engine.AgreementViolated != 0 {
		t.Fatalf("agreement violated %d times under chaos", status.Engine.AgreementViolated)
	}
	if status.Conform == nil || !status.Conform.Clean {
		t.Fatalf("conformance report not clean: %+v", status.Conform)
	}
	if status.Conform.Checked == 0 {
		t.Fatal("conformance monitor checked nothing")
	}

	// The observations that did land must still linearize.
	chains := gatherChains(t, client, 3)
	if err := CheckLinearizable(chains, rep.Records); err != nil {
		t.Fatalf("linearizability violated under chaos: %v", err)
	}
}

// neverDecides is an algorithm whose automata run their rounds and never
// decide — the synthetic way to force an undecided instance (FloodSetWS
// with uniform proposals decides even on a dead mesh: every W set contains
// the node's own proposal).
type neverDecides struct{}

func (neverDecides) Name() string { return "NeverDecides" }
func (neverDecides) New(cfg rounds.ProcConfig) rounds.Process {
	return &neverProc{}
}

type neverProc struct{}

func (p *neverProc) Msgs(int) []rounds.Message     { return nil }
func (p *neverProc) Trans(int, []rounds.Message)   {}
func (p *neverProc) Decision() (model.Value, bool) { return 0, false }

// TestUndecidedInstanceReleasesSlot: an instance that exhausts its rounds
// undecided must not wedge the key — the flight resolves with an error and
// the slot is released.
func TestUndecidedInstanceReleasesSlot(t *testing.T) {
	srv, client := newTestServer(t, func(c *Config) {
		c.Algorithm = neverDecides{}
		c.ProposeTimeout = 10 * time.Second
	})
	ctx := context.Background()
	_, err := client.CAS(ctx, "wedge", nil, 1)
	if err == nil {
		t.Fatal("CAS succeeded under an algorithm that never decides")
	}
	st := srv.Status()
	if st.Engine.AgreementViolated != 0 {
		t.Fatalf("total loss must not violate agreement: %+v", st.Engine)
	}
	if st.KV.InFlight != 0 {
		t.Fatalf("undecided flight still holds the slot: %+v", st.KV)
	}
	if mon := srv.Monitor().Summary(); !mon.Clean || mon.Undecided == 0 {
		t.Fatalf("monitor = %+v, want clean with undecided counted", mon)
	}
}

// TestMonitorCatchesViolations feeds the monitor synthetic bad outcomes —
// the serving layer's conformance check must actually fire, not just stay
// green on good traffic.
func TestMonitorCatchesViolations(t *testing.T) {
	m := &Monitor{}
	// Forked decision (both values were proposed, so validity holds and
	// the fork counts only against agreement).
	m.Note(0, vals(1, 2, 1), runtime.InstanceOutcome{
		N: 3, Decided: []bool{true, true, true}, Decisions: vals(1, 2, 1),
	})
	// Decision nobody proposed.
	m.Note(1, vals(3, 4, 5), runtime.InstanceOutcome{
		N: 3, Decided: []bool{true, true, true}, Decisions: vals(9, 9, 9),
	})
	// Undecided: counted, not a violation.
	m.Note(2, vals(1, 1, 1), runtime.InstanceOutcome{
		N: 3, Decided: make([]bool, 3), Decisions: vals(0, 0, 0),
	})
	sum := m.Summary()
	if sum.Clean || m.Clean() {
		t.Fatal("monitor stayed clean through violations")
	}
	if sum.AgreementViolations != 1 || sum.ValidityViolations != 1 || sum.Undecided != 1 || sum.Checked != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.FirstViolation == "" {
		t.Fatal("first violation not recorded")
	}
}
