package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/tracing"
)

// errCASConflict reports a check-and-set that lost: the key's head did not
// match the asserted old value. The handler maps it to HTTP 409 with the
// actual head attached, and the client retries from there.
var errCASConflict = errors.New("serve: cas conflict")

// errUndecided reports a KV instance that completed without reaching
// agreement (possible under heavy chaos: every automaton ran out of rounds
// undecided). The slot is released; the write did not happen.
var errUndecided = errors.New("serve: consensus instance completed undecided")

// KVVersion is one committed version in a key's chain: version k of a key
// is the decision of the k-th consensus instance opened for it.
type KVVersion struct {
	Version  int         `json:"version"`
	Value    model.Value `json:"value"`
	Instance uint64      `json:"instance"`
}

// kvFlight is one in-flight KV write: the consensus instance opened for a
// key's next version. Exactly one flight exists per key at a time (the
// chain construction: version k+1's instance opens only after version k
// committed), so competing CAS requests wait the flight out and re-check
// the head instead of opening racing instances for the same slot.
type kvFlight struct {
	key  string
	val  model.Value
	done chan struct{} // closed once committed or released

	// set before done closes
	ver *KVVersion
	err error
	// committedAt is stamped at commit() entry, before done closes: the
	// consensus/commit boundary for the waiter's phase attribution. The
	// close(done) happens-before edge publishes it.
	committedAt time.Time
}

// kvKey is one key's state: the committed chain plus the open flight, and
// the CAS traffic tallies behind GET /v1/debug/keys.
type kvKey struct {
	versions  []KVVersion
	inflight  *kvFlight
	attempts  int64 // CAS requests that reached this key
	conflicts int64 // CAS requests that lost (409)
}

// kvStore is the replicated KV: a map of per-key consensus chains over the
// server's single engine.
type kvStore struct {
	srv  *Server
	mu   sync.Mutex
	keys map[string]*kvKey
}

func newKVStore(srv *Server) *kvStore {
	return &kvStore{srv: srv, keys: make(map[string]*kvKey)}
}

// KVStats summarizes the store for /v1/status.
type KVStats struct {
	Keys     int `json:"keys"`
	Versions int `json:"versions"`
	InFlight int `json:"in_flight"`
}

func (kv *kvStore) Stats() KVStats {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	st := KVStats{Keys: len(kv.keys)}
	for _, k := range kv.keys {
		st.Versions += len(k.versions)
		if k.inflight != nil {
			st.InFlight++
		}
	}
	return st
}

// Get returns the key's head version (nil if the key has no committed
// versions).
func (kv *kvStore) Get(key string) *KVVersion {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	k := kv.keys[key]
	if k == nil || len(k.versions) == 0 {
		return nil
	}
	head := k.versions[len(k.versions)-1]
	return &head
}

// History returns the key's head, a page of its chain starting at version
// from (1-based; 0 means the start) capped at limit entries, and the total
// chain length. Pagination exists because chains are unbounded: a hot key
// under sustained load accretes one version per committed CAS.
func (kv *kvStore) History(key string, from, limit int) (head *KVVersion, page []KVVersion, total int) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	k := kv.keys[key]
	if k == nil || len(k.versions) == 0 {
		return nil, nil, 0
	}
	total = len(k.versions)
	h := k.versions[total-1]
	head = &h
	if from < 1 {
		from = 1
	}
	if from > total {
		return head, nil, total
	}
	end := from - 1 + limit
	if limit <= 0 || end > total {
		end = total
	}
	page = append(page, k.versions[from-1:end]...)
	return head, page, total
}

// KeyStats is one row of the hot-key table: CAS traffic and chain shape.
type KeyStats struct {
	Key       string `json:"key"`
	Attempts  int64  `json:"attempts"`
	Conflicts int64  `json:"conflicts"`
	Versions  int    `json:"versions"`
	InFlight  bool   `json:"in_flight"`
}

// HotKeys returns the top-n keys by CAS attempts (ties broken by key), the
// GET /v1/debug/keys table.
func (kv *kvStore) HotKeys(n int) []KeyStats {
	kv.mu.Lock()
	rows := make([]KeyStats, 0, len(kv.keys))
	for key, k := range kv.keys {
		rows = append(rows, KeyStats{
			Key: key, Attempts: k.attempts, Conflicts: k.conflicts,
			Versions: len(k.versions), InFlight: k.inflight != nil,
		})
	}
	kv.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Attempts != rows[j].Attempts {
			return rows[i].Attempts > rows[j].Attempts
		}
		return rows[i].Key < rows[j].Key
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// matches reports whether the asserted old value matches the head (old nil
// asserts the key is absent).
func matches(old *int64, head *KVVersion) bool {
	if old == nil {
		return head == nil
	}
	return head != nil && int64(head.Value) == *old
}

// CAS executes one check-and-set: if the key's head matches old, open a
// consensus instance proposing new at every node and commit its decision
// as the next version. On a lost race it returns errCASConflict with the
// head that won. On ctx expiry the flight keeps running — the commit, if
// the instance decides, still lands, and the retrying client observes it
// as a conflict.
func (kv *kvStore) CAS(ctx context.Context, key string, old *int64, val model.Value) (*KVVersion, error) {
	tk := trackerFrom(ctx)
	first := true
	for {
		tk.mark(tracing.KindContention)
		kv.mu.Lock()
		k := kv.keys[key]
		if k == nil {
			k = &kvKey{}
			kv.keys[key] = k
		}
		if first {
			k.attempts++
			first = false
		}
		var head *KVVersion
		if len(k.versions) > 0 {
			h := k.versions[len(k.versions)-1]
			head = &h
		}
		if !matches(old, head) {
			k.conflicts++
			kv.mu.Unlock()
			tk.mark(tracing.KindHandler)
			return head, errCASConflict
		}
		if k.inflight != nil {
			fl := k.inflight
			kv.mu.Unlock()
			tk.mark(tracing.KindQueue)
			select {
			case <-fl.done:
				continue // re-check the head this flight (maybe) committed
			case <-ctx.Done():
				tk.mark(tracing.KindHandler)
				return nil, ctx.Err()
			}
		}
		fl := &kvFlight{key: key, val: val, done: make(chan struct{})}
		k.inflight = fl
		kv.mu.Unlock()

		// This request owns the slot: open the instance (all n nodes propose
		// val — the state-machine-replication case) and ride it down. A
		// sampled request attaches a probe so its consensus slice can be
		// tiled at round resolution.
		var probe *runtime.InstanceProbe
		if tk != nil && tk.sampled {
			probe = runtime.NewInstanceProbe()
			tk.probe = probe
		}
		proposals := make([]model.Value, kv.srv.eng.N())
		for i := range proposals {
			proposals[i] = val
		}
		tk.mark(tracing.KindConsensus)
		rec, err := kv.srv.open(proposals, fl, probe)
		if err != nil {
			kv.release(fl, err)
			tk.mark(tracing.KindHandler)
			return nil, err
		}
		if tk != nil {
			tk.instance, tk.hasInst = rec.id, true
		}
		select {
		case <-fl.done:
			// Retro-split at the commit callback's entry stamp: consensus
			// ends where commit() began, commit ends where this waiter woke.
			tk.markAt(tracing.KindCommit, fl.committedAt)
			tk.mark(tracing.KindHandler)
			if fl.err != nil {
				return nil, fl.err
			}
			return fl.ver, nil
		case <-ctx.Done():
			// The instance keeps running; commit() will land the version.
			tk.mark(tracing.KindHandler)
			return nil, ctx.Err()
		}
	}
}

// commit lands a completed KV instance: append the decided value as the
// key's next version and release the flight. Called from the engine's
// completion callback.
func (kv *kvStore) commit(fl *kvFlight, inst uint64, out runtime.InstanceOutcome) {
	fl.committedAt = time.Now()
	v, verdict := out.Agreement()
	kv.mu.Lock()
	k := kv.keys[fl.key]
	switch {
	case out.Err != nil:
		fl.err = out.Err
	case verdict == runtime.AgreementReached:
		ver := KVVersion{Version: len(k.versions) + 1, Value: v, Instance: inst}
		k.versions = append(k.versions, ver)
		fl.ver = &ver
	case verdict == runtime.AgreementViolated:
		// Safety violation: refuse to extend the chain from a forked
		// decision. The monitor (if attached) has already tallied it.
		fl.err = fmt.Errorf("serve: agreement violated in kv instance for %q", fl.key)
	default:
		fl.err = errUndecided
	}
	if k != nil && k.inflight == fl {
		k.inflight = nil
	}
	kv.mu.Unlock()
	close(fl.done)
}

// release abandons a flight whose instance never opened.
func (kv *kvStore) release(fl *kvFlight, err error) {
	kv.mu.Lock()
	if k := kv.keys[fl.key]; k != nil && k.inflight == fl {
		k.inflight = nil
	}
	fl.err = err
	kv.mu.Unlock()
	close(fl.done)
}
