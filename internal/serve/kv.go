package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/model"
	"repro/internal/runtime"
)

// errCASConflict reports a check-and-set that lost: the key's head did not
// match the asserted old value. The handler maps it to HTTP 409 with the
// actual head attached, and the client retries from there.
var errCASConflict = errors.New("serve: cas conflict")

// errUndecided reports a KV instance that completed without reaching
// agreement (possible under heavy chaos: every automaton ran out of rounds
// undecided). The slot is released; the write did not happen.
var errUndecided = errors.New("serve: consensus instance completed undecided")

// KVVersion is one committed version in a key's chain: version k of a key
// is the decision of the k-th consensus instance opened for it.
type KVVersion struct {
	Version  int         `json:"version"`
	Value    model.Value `json:"value"`
	Instance uint64      `json:"instance"`
}

// kvFlight is one in-flight KV write: the consensus instance opened for a
// key's next version. Exactly one flight exists per key at a time (the
// chain construction: version k+1's instance opens only after version k
// committed), so competing CAS requests wait the flight out and re-check
// the head instead of opening racing instances for the same slot.
type kvFlight struct {
	key  string
	val  model.Value
	done chan struct{} // closed once committed or released

	// set before done closes
	ver *KVVersion
	err error
}

// kvKey is one key's state: the committed chain plus the open flight.
type kvKey struct {
	versions []KVVersion
	inflight *kvFlight
}

// kvStore is the replicated KV: a map of per-key consensus chains over the
// server's single engine.
type kvStore struct {
	srv  *Server
	mu   sync.Mutex
	keys map[string]*kvKey
}

func newKVStore(srv *Server) *kvStore {
	return &kvStore{srv: srv, keys: make(map[string]*kvKey)}
}

// KVStats summarizes the store for /v1/status.
type KVStats struct {
	Keys     int `json:"keys"`
	Versions int `json:"versions"`
	InFlight int `json:"in_flight"`
}

func (kv *kvStore) Stats() KVStats {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	st := KVStats{Keys: len(kv.keys)}
	for _, k := range kv.keys {
		st.Versions += len(k.versions)
		if k.inflight != nil {
			st.InFlight++
		}
	}
	return st
}

// Get returns the key's head version (nil if the key has no committed
// versions) and, when withHistory is set, a copy of the full chain.
func (kv *kvStore) Get(key string, withHistory bool) (*KVVersion, []KVVersion) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	k := kv.keys[key]
	if k == nil || len(k.versions) == 0 {
		return nil, nil
	}
	head := k.versions[len(k.versions)-1]
	var hist []KVVersion
	if withHistory {
		hist = append(hist, k.versions...)
	}
	return &head, hist
}

// matches reports whether the asserted old value matches the head (old nil
// asserts the key is absent).
func matches(old *int64, head *KVVersion) bool {
	if old == nil {
		return head == nil
	}
	return head != nil && int64(head.Value) == *old
}

// CAS executes one check-and-set: if the key's head matches old, open a
// consensus instance proposing new at every node and commit its decision
// as the next version. On a lost race it returns errCASConflict with the
// head that won. On ctx expiry the flight keeps running — the commit, if
// the instance decides, still lands, and the retrying client observes it
// as a conflict.
func (kv *kvStore) CAS(ctx context.Context, key string, old *int64, val model.Value) (*KVVersion, error) {
	for {
		kv.mu.Lock()
		k := kv.keys[key]
		var head *KVVersion
		if k != nil && len(k.versions) > 0 {
			h := k.versions[len(k.versions)-1]
			head = &h
		}
		if !matches(old, head) {
			kv.mu.Unlock()
			return head, errCASConflict
		}
		if k != nil && k.inflight != nil {
			fl := k.inflight
			kv.mu.Unlock()
			select {
			case <-fl.done:
				continue // re-check the head this flight (maybe) committed
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if k == nil {
			k = &kvKey{}
			kv.keys[key] = k
		}
		fl := &kvFlight{key: key, val: val, done: make(chan struct{})}
		k.inflight = fl
		kv.mu.Unlock()

		// This request owns the slot: open the instance (all n nodes propose
		// val — the state-machine-replication case) and ride it down.
		proposals := make([]model.Value, kv.srv.eng.N())
		for i := range proposals {
			proposals[i] = val
		}
		if _, err := kv.srv.open(proposals, fl); err != nil {
			kv.release(fl, err)
			return nil, err
		}
		select {
		case <-fl.done:
			if fl.err != nil {
				return nil, fl.err
			}
			return fl.ver, nil
		case <-ctx.Done():
			// The instance keeps running; commit() will land the version.
			return nil, ctx.Err()
		}
	}
}

// commit lands a completed KV instance: append the decided value as the
// key's next version and release the flight. Called from the engine's
// completion callback.
func (kv *kvStore) commit(fl *kvFlight, inst uint64, out runtime.InstanceOutcome) {
	v, verdict := out.Agreement()
	kv.mu.Lock()
	k := kv.keys[fl.key]
	switch {
	case out.Err != nil:
		fl.err = out.Err
	case verdict == runtime.AgreementReached:
		ver := KVVersion{Version: len(k.versions) + 1, Value: v, Instance: inst}
		k.versions = append(k.versions, ver)
		fl.ver = &ver
	case verdict == runtime.AgreementViolated:
		// Safety violation: refuse to extend the chain from a forked
		// decision. The monitor (if attached) has already tallied it.
		fl.err = fmt.Errorf("serve: agreement violated in kv instance for %q", fl.key)
	default:
		fl.err = errUndecided
	}
	if k != nil && k.inflight == fl {
		k.inflight = nil
	}
	kv.mu.Unlock()
	close(fl.done)
}

// release abandons a flight whose instance never opened.
func (kv *kvStore) release(fl *kvFlight, err error) {
	kv.mu.Lock()
	if k := kv.keys[fl.key]; k != nil && k.inflight == fl {
		k.inflight = nil
	}
	fl.err = err
	kv.mu.Unlock()
	close(fl.done)
}
