// Package serve turns the shared-mesh runtime engine into a long-lived
// consensus service: one live cluster (n nodes, one mesh, one failure
// detector per node) behind an HTTP/JSON API. Raw consensus instances are
// opened with POST /v1/propose and read back with GET /v1/instance/{id};
// on top of them the package layers a linearizable check-and-set KV store
// where each key's version history is a chain of consensus instances — the
// classic state-machine-replication construction. An optional conformance
// monitor checks the paper's agreement and validity predicates on every
// completed instance, in production, not just in tests.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/consensus"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/runtime"
	"repro/internal/tracing"
)

// Serving metric names.
const (
	// MetricServeRequests counts HTTP requests, labeled by route.
	MetricServeRequests = "ssfd_serve_requests_total"
	// MetricServeCASOK / MetricServeCASConflicts count the KV CAS verdicts.
	MetricServeCASOK        = "ssfd_serve_cas_ok_total"
	MetricServeCASConflicts = "ssfd_serve_cas_conflict_total"
	// MetricServeDrained counts proposals refused while draining.
	MetricServeDrained = "ssfd_serve_drained_total"

	// MetricHTTPRequests counts finished HTTP requests labeled by route and
	// status code; MetricHTTPDuration buckets their wall-clock latency in
	// nanoseconds per route; MetricHTTPSampled counts deep-traced requests.
	MetricHTTPRequests = "ssfd_http_requests_total"
	MetricHTTPDuration = "ssfd_http_request_duration_ns"
	MetricHTTPSampled  = "ssfd_http_sampled_total"
)

// Config assembles the serving daemon.
type Config struct {
	// N is the cluster size, T the resilience bound.
	N, T int
	// Algorithm is the consensus algorithm every instance runs; nil defaults
	// to FloodSetWS (the engine runs the RWS discipline, where plain
	// FloodSet's crash-bounded round count does not apply and A1 is
	// incorrect).
	Algorithm rounds.Algorithm
	// Detector selects the failure-detector construction (nil: all-to-all
	// heartbeat). One detector per node serves every instance.
	Detector *runtime.DetectorSpec
	// Groups is the engine's shard-worker count (0: runtime default).
	Groups int

	HeartbeatPeriod time.Duration
	SuspectTimeout  time.Duration
	// MaxRounds bounds every instance (0: T+2).
	MaxRounds int
	// WaitBound bounds each round's receive-or-suspect wait. The serving
	// default is 2s — a server must degrade a starved instance, not park a
	// client for the engine's 30s batch default.
	WaitBound time.Duration

	// Faults, when non-nil, interposes the seeded per-link injector under
	// every node — the chaos-serving configuration.
	Faults *faults.Config

	// Conform attaches the per-instance conformance monitor: every
	// completed instance is checked against the paper's agreement and
	// validity predicates and tallied into /v1/status.
	Conform bool

	// ProposeTimeout bounds how long a synchronous request (instance wait,
	// KV CAS) blocks on a decision before answering 504 (default 30s). The
	// instance keeps running; a timed-out CAS can still commit.
	ProposeTimeout time.Duration
	// MaxBody caps request bodies in bytes (default 1 MiB).
	MaxBody int64

	// Metrics receives the server's and engine's instruments; nil uses
	// obs.Default.
	Metrics *obs.Registry

	// TraceSample is the head-sampling rate for deep request traces in
	// [0,1]: 0 defaults to 0.01 (1%), negative disables sampling entirely,
	// >= 1 traces every request. Sampling is deterministic (every
	// round(1/rate)-th request); exemplars are retained regardless.
	TraceSample float64
	// TraceRecent caps the ring of recent sampled traces (default 256).
	TraceRecent int
	// TraceSlowest caps the slowest-request exemplars kept per route
	// (default 8).
	TraceSlowest int
}

// Server is the consensus-serving daemon: it owns the live engine, the
// instance registry and the KV chain store, and answers the HTTP API.
type Server struct {
	cfg Config
	eng *runtime.Engine
	reg *obs.Registry

	insts  *instanceRegistry
	kv     *kvStore
	mon    *Monitor
	traces *traceStore

	mux      *http.ServeMux
	draining atomic.Bool
	start    time.Time

	casOK        *obs.Counter
	casConflicts *obs.Counter
	drained      *obs.Counter
}

// New starts the engine and builds the server. Callers serve s.Handler()
// however they like (http.Server, in-process transport in tests) and must
// Shutdown or Close it.
func New(cfg Config) (*Server, error) {
	if cfg.Algorithm == nil {
		cfg.Algorithm = consensus.FloodSetWS{}
	}
	if cfg.ProposeTimeout <= 0 {
		cfg.ProposeTimeout = 30 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.WaitBound <= 0 {
		cfg.WaitBound = 2 * time.Second
	}
	switch {
	case cfg.TraceSample == 0:
		cfg.TraceSample = 0.01
	case cfg.TraceSample < 0:
		cfg.TraceSample = 0
	case cfg.TraceSample > 1:
		cfg.TraceSample = 1
	}
	if cfg.TraceRecent <= 0 {
		cfg.TraceRecent = 256
	}
	if cfg.TraceSlowest <= 0 {
		cfg.TraceSlowest = 8
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default
	}
	s := &Server{
		cfg:          cfg,
		reg:          reg,
		insts:        newInstanceRegistry(),
		start:        time.Now(),
		casOK:        reg.Counter(MetricServeCASOK),
		casConflicts: reg.Counter(MetricServeCASConflicts),
		drained:      reg.Counter(MetricServeDrained),
	}
	s.traces = newTraceStore(cfg.TraceSample, cfg.TraceRecent, cfg.TraceSlowest)
	s.kv = newKVStore(s)
	if cfg.Conform {
		s.mon = &Monitor{}
	}
	eng, err := runtime.StartEngine(cfg.Algorithm, runtime.EngineConfig{
		N: cfg.N, T: cfg.T,
		Groups:          cfg.Groups,
		HeartbeatPeriod: cfg.HeartbeatPeriod,
		SuspectTimeout:  cfg.SuspectTimeout,
		Detector:        cfg.Detector,
		MaxRounds:       cfg.MaxRounds,
		WaitBound:       cfg.WaitBound,
		Faults:          cfg.Faults,
		Metrics:         reg,
		OnInstanceDone:  s.instanceDone,
	})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	s.buildMux()
	return s, nil
}

// instanceDone is the engine callback: resolve the registry record, feed
// the conformance monitor, and commit any KV flight riding the instance.
// It runs on a shard-worker goroutine — everything here is a short
// critical section.
func (s *Server) instanceDone(inst uint64, out runtime.InstanceOutcome) {
	rec := s.insts.complete(inst, out)
	if s.mon != nil && rec != nil {
		s.mon.Note(inst, rec.proposals, out)
	}
	if rec != nil && rec.flight != nil {
		s.kv.commit(rec.flight, inst, out)
	}
}

// Engine exposes the underlying live engine (status, tests).
func (s *Server) Engine() *runtime.Engine { return s.eng }

// Monitor returns the attached conformance monitor (nil unless
// Config.Conform).
func (s *Server) Monitor() *Monitor { return s.mon }

// Draining reports whether the server has stopped admitting proposals.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: new proposals answer 503 immediately,
// in-flight instances run to their decisions, then the engine tears down.
// Returns ctx.Err() if the deadline passes first (teardown continues in
// the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.eng.Drain()
	done := make(chan struct{})
	go func() {
		_ = s.eng.Close()
		close(done)
	}()
	select {
	case <-done:
		return s.eng.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close is Shutdown without a deadline.
func (s *Server) Close() error {
	return s.Shutdown(context.Background())
}

// open admits one instance through the engine with the given per-node
// proposals, registering it before the completion callback can race past.
func (s *Server) open(proposals []model.Value, fl *kvFlight, probe *runtime.InstanceProbe) (*instRecord, error) {
	if s.draining.Load() {
		s.drained.Inc()
		return nil, runtime.ErrEngineDraining
	}
	return s.insts.open(s.eng, proposals, fl, probe)
}

// --- HTTP surface ---

func (s *Server) buildMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/propose", s.handlePropose)
	mux.HandleFunc("GET /v1/instance/{id}", s.handleInstance)
	mux.HandleFunc("POST /v1/kv/{key}/cas", s.handleCAS)
	mux.HandleFunc("GET /v1/kv/{key}", s.handleGet)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /v1/debug/trace/{id}", s.handleDebugTrace)
	mux.HandleFunc("GET /v1/debug/keys", s.handleDebugKeys)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.WritePrometheus(w, s.reg.Snapshot())
	})
	s.mux = mux
}

// routeOf classifies a request into its endpoint label — the cardinality
// axis for per-endpoint metrics and exemplar rings. Classification is by
// path shape, not mux pattern, so it needs no net/http support.
func routeOf(r *http.Request) string {
	p := r.URL.Path
	switch {
	case p == "/v1/propose":
		return "propose"
	case strings.HasPrefix(p, "/v1/instance/"):
		return "instance"
	case strings.HasPrefix(p, "/v1/kv/") && strings.HasSuffix(p, "/cas"):
		return "kv-cas"
	case strings.HasPrefix(p, "/v1/kv/"):
		return "kv-get"
	case p == "/v1/status":
		return "status"
	case strings.HasPrefix(p, "/v1/debug/"):
		return "debug"
	case p == "/healthz":
		return "healthz"
	case p == "/metrics":
		return "metrics"
	default:
		return "other"
	}
}

// kvKeyOf extracts the key from a /v1/kv/ path for trace labeling.
func kvKeyOf(p string) string {
	return strings.TrimSuffix(strings.TrimPrefix(p, "/v1/kv/"), "/cas")
}

// statusWriter captures the response status for metrics and traces.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Handler returns the server's HTTP handler. Every /v1/ response is JSON —
// including the mux's own 404/405 verdicts, which jsonErrWriter rewrites so
// clients never parse a plain-text error page. The wrapper is also the
// observability middleware: it assigns the request id (echoed in the
// X-SSFD-Request header), runs the sampling verdict, carries the phase
// tracker through the context, and files the finished record into the
// trace store and the per-route metrics.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		route := routeOf(r)
		id, sampled := s.traces.begin()
		tk := &reqTracker{id: id, route: route, method: r.Method, start: start, sampled: sampled}
		tk.markAt(tracing.KindHandler, start)
		if route == "kv-cas" || route == "kv-get" {
			tk.key = kvKeyOf(r.URL.Path)
		}
		w.Header().Set("X-SSFD-Request", id)
		s.reg.Counter(obs.Label(MetricServeRequests, "method", r.Method)).Inc()
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.mux.ServeHTTP(&jsonErrWriter{ResponseWriter: sw},
			r.WithContext(withTracker(r.Context(), tk)))
		rec := tk.finish(s, time.Now(), sw.code)
		s.traces.add(rec)
		s.reg.Counter(obs.Label(obs.Label(MetricHTTPRequests, "route", route),
			"code", strconv.Itoa(sw.code))).Inc()
		s.reg.Histogram(obs.Label(MetricHTTPDuration, "route", route),
			obs.DefaultDurationBuckets).Observe(rec.TotalNS)
		if sampled {
			s.reg.Counter(MetricHTTPSampled).Inc()
		}
	})
}

// jsonErrWriter rewrites the mux's built-in plain-text 404/405 responses
// into the API's JSON error shape. The API's own JSON errors pass through
// untouched — they set application/json before writing the status.
type jsonErrWriter struct {
	http.ResponseWriter
	suppress bool
}

func (w *jsonErrWriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed ||
		code == http.StatusMovedPermanently) &&
		w.Header().Get("Content-Type") != "application/json" {
		w.suppress = true
		msg := "no such route"
		switch code {
		case http.StatusMethodNotAllowed:
			msg = "method not allowed"
		case http.StatusMovedPermanently:
			// The mux canonicalized the path; Location carries the target.
			msg = "moved: " + w.Header().Get("Location")
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(code)
		_ = json.NewEncoder(w.ResponseWriter).Encode(errorBody{Error: msg})
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *jsonErrWriter) Write(b []byte) (int, error) {
	if w.suppress {
		return len(b), nil // swallow the mux's text body; JSON already sent
	}
	return w.ResponseWriter.Write(b)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeBody decodes a JSON request body into v, mapping oversized bodies
// to 413 and malformed JSON to 400. Returns false after writing the error.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// ProposeRequest opens a raw consensus instance: either one value every
// node proposes, or a per-node proposal vector of length n.
type ProposeRequest struct {
	Value  *int64  `json:"value,omitempty"`
	Values []int64 `json:"values,omitempty"`
}

// ProposeResponse returns the opened instance's id.
type ProposeResponse struct {
	Instance uint64 `json:"instance"`
}

func (s *Server) handlePropose(w http.ResponseWriter, r *http.Request) {
	var req ProposeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n := s.eng.N()
	proposals := make([]model.Value, n)
	switch {
	case req.Value != nil && req.Values != nil:
		writeError(w, http.StatusBadRequest, `give "value" or "values", not both`)
		return
	case req.Value != nil:
		for i := range proposals {
			proposals[i] = model.Value(*req.Value)
		}
	case req.Values != nil:
		if len(req.Values) != n {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf(`"values" must list %d proposals, got %d`, n, len(req.Values)))
			return
		}
		for i, v := range req.Values {
			proposals[i] = model.Value(v)
		}
	default:
		writeError(w, http.StatusBadRequest, `need "value" or "values"`)
		return
	}
	rec, err := s.open(proposals, nil, nil)
	if err != nil {
		if errors.Is(err, runtime.ErrEngineDraining) {
			writeError(w, http.StatusServiceUnavailable, "draining: not admitting proposals")
			return
		}
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ProposeResponse{Instance: rec.id})
}

// InstanceStatus is one instance's externally visible state.
type InstanceStatus struct {
	Instance  uint64  `json:"instance"`
	Done      bool    `json:"done"`
	Agreement string  `json:"agreement,omitempty"`
	Value     *int64  `json:"value,omitempty"`
	Decided   []bool  `json:"decided,omitempty"`
	Decisions []int64 `json:"decisions,omitempty"`
	Waits     int     `json:"wait_timeouts,omitempty"`
	Error     string  `json:"error,omitempty"`
}

func statusOf(id uint64, out runtime.InstanceOutcome, done bool) InstanceStatus {
	st := InstanceStatus{Instance: id, Done: done}
	if !done {
		return st
	}
	if out.Err != nil {
		st.Error = out.Err.Error()
	}
	v, verdict := out.Agreement()
	st.Agreement = verdict.String()
	if verdict == runtime.AgreementReached {
		vv := int64(v)
		st.Value = &vv
	}
	st.Decided = out.Decided
	st.Decisions = make([]int64, len(out.Decisions))
	for i, d := range out.Decisions {
		st.Decisions[i] = int64(d)
	}
	st.Waits = out.WaitTimeouts
	return st
}

func (s *Server) handleInstance(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad instance id")
		return
	}
	rec := s.insts.get(id)
	if rec == nil {
		writeError(w, http.StatusNotFound, "no such instance")
		return
	}
	if r.URL.Query().Get("wait") != "" {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ProposeTimeout)
		defer cancel()
		tk := trackerFrom(r.Context())
		tk.mark(tracing.KindConsensus)
		select {
		case <-rec.handle.Done():
			tk.mark(tracing.KindHandler)
		case <-ctx.Done():
			tk.mark(tracing.KindHandler)
			writeError(w, http.StatusGatewayTimeout, "instance still running")
			return
		}
	}
	out, done := rec.handle.Outcome()
	writeJSON(w, http.StatusOK, statusOf(id, out, done))
}

// CASRequest is the check-and-set body: Old nil asserts "key absent".
type CASRequest struct {
	Old *int64 `json:"old"`
	New int64  `json:"new"`
}

// CASResponse reports the verdict. On success Version/Value name the
// committed version; on conflict (HTTP 409) they name the head the CAS
// lost to.
type CASResponse struct {
	OK       bool   `json:"ok"`
	Key      string `json:"key"`
	Version  int    `json:"version,omitempty"`
	Value    int64  `json:"value,omitempty"`
	Instance uint64 `json:"instance,omitempty"`
}

func (s *Server) handleCAS(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "empty key")
		return
	}
	var req CASRequest
	if !decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ProposeTimeout)
	defer cancel()
	ver, err := s.kv.CAS(ctx, key, req.Old, model.Value(req.New))
	switch {
	case err == nil:
		s.casOK.Inc()
		writeJSON(w, http.StatusOK, CASResponse{
			OK: true, Key: key, Version: ver.Version, Value: int64(ver.Value), Instance: ver.Instance,
		})
	case errors.Is(err, errCASConflict):
		s.casConflicts.Inc()
		resp := CASResponse{OK: false, Key: key}
		if ver != nil {
			resp.Version = ver.Version
			resp.Value = int64(ver.Value)
			resp.Instance = ver.Instance
		}
		writeJSON(w, http.StatusConflict, resp)
	case errors.Is(err, runtime.ErrEngineDraining):
		writeError(w, http.StatusServiceUnavailable, "draining: not admitting proposals")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, "consensus still running; retry")
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

// DefaultHistoryLimit caps a ?history=1 page when no limit is given —
// chains are unbounded, so the full-chain response must be opt-in via
// pagination, never the default.
const DefaultHistoryLimit = 256

// KVGetResponse answers GET /v1/kv/{key}: the head version, plus — with
// ?history=1 — one page of the chain. HistoryTotal is the full chain
// length; NextFrom, when set, is the ?from= cursor for the next page.
type KVGetResponse struct {
	Key          string      `json:"key"`
	Version      int         `json:"version"`
	Value        int64       `json:"value"`
	History      []KVVersion `json:"history,omitempty"`
	HistoryTotal int         `json:"history_total,omitempty"`
	NextFrom     int         `json:"next_from,omitempty"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	q := r.URL.Query()
	if q.Get("history") == "" {
		head := s.kv.Get(key)
		if head == nil {
			writeError(w, http.StatusNotFound, "no such key")
			return
		}
		writeJSON(w, http.StatusOK, KVGetResponse{
			Key: key, Version: head.Version, Value: int64(head.Value),
		})
		return
	}
	limit := DefaultHistoryLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad limit: want a positive integer")
			return
		}
		limit = n
	}
	from := 1
	if v := q.Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad from: want a positive version number")
			return
		}
		from = n
	}
	head, page, total := s.kv.History(key, from, limit)
	if head == nil {
		writeError(w, http.StatusNotFound, "no such key")
		return
	}
	resp := KVGetResponse{
		Key: key, Version: head.Version, Value: int64(head.Value),
		History: page, HistoryTotal: total,
	}
	if next := from + len(page); len(page) > 0 && next <= total {
		resp.NextFrom = next
	}
	writeJSON(w, http.StatusOK, resp)
}

// DebugKeysResponse answers GET /v1/debug/keys: the hot-key table, top-n
// by CAS attempts.
type DebugKeysResponse struct {
	Keys []KeyStats `json:"keys"`
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.traces.debug())
}

func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.traces.get(r.PathValue("id"))
	if rec == nil {
		writeError(w, http.StatusNotFound, "no such trace (evicted or never sampled)")
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		if rec.Trace == nil {
			writeError(w, http.StatusNotFound, "trace has no span tree (unsampled exemplar)")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = rec.Trace.WriteChrome(w)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleDebugKeys(w http.ResponseWriter, r *http.Request) {
	n := 32
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, "bad n: want a positive integer")
			return
		}
		n = parsed
	}
	writeJSON(w, http.StatusOK, DebugKeysResponse{Keys: s.kv.HotKeys(n)})
}

// StatusReport answers GET /v1/status: the operator's drain/backlog
// at-a-glance view — server uptime, live engine stats (in-flight,
// mailbox backlog, cost counters), KV shape, sampling configuration and
// tallies, plus the conformance summary when the monitor is attached.
type StatusReport struct {
	Draining bool                `json:"draining"`
	UptimeNS int64               `json:"uptime_ns"`
	Engine   runtime.EngineStats `json:"engine"`
	KV       KVStats             `json:"kv"`
	Sampling SamplingStats       `json:"sampling"`
	Conform  *ConformSummary     `json:"conform,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

// Status snapshots the server (the JSON of GET /v1/status).
func (s *Server) Status() StatusReport {
	rep := StatusReport{
		Draining: s.draining.Load(),
		UptimeNS: time.Since(s.start).Nanoseconds(),
		Engine:   s.eng.Stats(),
		KV:       s.kv.Stats(),
		Sampling: s.traces.stats(),
	}
	if s.mon != nil {
		sum := s.mon.Summary()
		rep.Conform = &sum
	}
	return rep
}
