package serve

import (
	"context"
	"errors"
	"net/http"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestShutdownDrainsGoroutines is the graceful-shutdown leak regression:
// start the server, put proposals in flight, Shutdown, and require (a)
// every in-flight instance resolves, (b) late proposals answer 503 rather
// than hang, and (c) the goroutine count returns to the pre-server
// baseline — detectors, demultiplexers, shard workers and waiters all
// join.
func TestShutdownDrainsGoroutines(t *testing.T) {
	before := stdruntime.NumGoroutine()

	srv, err := New(Config{
		N: 3, T: 1,
		HeartbeatPeriod: 2 * time.Millisecond,
		SuspectTimeout:  500 * time.Millisecond,
		ProposeTimeout:  10 * time.Second,
		Conform:         true,
		Metrics:         obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	client := &Client{
		BaseURL: "http://serve.test",
		HTTP:    &http.Client{Transport: inprocTransport{h: srv.Handler()}},
	}
	ctx := context.Background()

	// In-flight work: a few proposals plus concurrent waiters blocked on
	// their decisions.
	var wg sync.WaitGroup
	ids := make([]uint64, 4)
	for i := range ids {
		id, err := client.Propose(ctx, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if _, err := client.Instance(ctx, id, true); err != nil {
				t.Errorf("waiter for %d: %v", id, err)
			}
		}(id)
	}

	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()

	// Every in-flight instance decided during the drain.
	for _, id := range ids {
		st, err := client.Instance(ctx, id, false)
		if err != nil {
			t.Fatalf("Instance(%d) after drain: %v", id, err)
		}
		if !st.Done || st.Agreement != "reached" {
			t.Errorf("instance %d after drain: %+v, want decided", id, st)
		}
	}

	// A late proposal is refused immediately, not hung.
	start := time.Now()
	if _, err := client.Propose(ctx, 99); !errors.Is(err, ErrDraining) {
		t.Fatalf("late Propose = %v, want ErrDraining", err)
	}
	if since := time.Since(start); since > time.Second {
		t.Fatalf("late proposal took %v — that is a hang, not a refusal", since)
	}

	// Shutdown is idempotent.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Goroutine drain, with retries: timers and netpoll strays settle
	// asynchronously (the obs_test leak check uses the same discipline).
	deadline := time.Now().Add(5 * time.Second)
	for {
		stdruntime.GC()
		now := stdruntime.NumGoroutine()
		if now <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := stdruntime.Stack(buf, true)
			t.Fatalf("goroutines: before=%d now=%d — leak\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShutdownDeadline: a context that expires mid-drain returns its error
// while teardown continues in the background.
func TestShutdownDeadline(t *testing.T) {
	srv, client := newTestServer(t, nil)
	if _, err := client.Propose(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired
	if err := srv.Shutdown(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Shutdown(expired ctx) = %v, want context.Canceled", err)
	}
	// The background teardown still completes; the cleanup Close in
	// newTestServer would hang otherwise.
	select {
	case <-srv.Engine().Closed():
	case <-time.After(10 * time.Second):
		t.Fatal("engine never finished closing")
	}
}
