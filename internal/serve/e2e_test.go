package serve

import (
	"context"
	"testing"
	"time"
)

// TestThousandClientsLinearizable is the acceptance end-to-end: ≥1k
// concurrent closed-loop clients complete a KV workload against one live
// cluster with zero linearizability violations and a clean attached
// conformance report. The in-process transport keeps a thousand clients
// from meaning a thousand sockets; every request still crosses the full
// HTTP handler, KV chain and consensus engine.
func TestThousandClientsLinearizable(t *testing.T) {
	_, client := newTestServer(t, func(c *Config) {
		c.ProposeTimeout = 60 * time.Second
	})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:      client.BaseURL,
		HTTP:         client.HTTP,
		Clients:      1000,
		Keys:         32,
		OpsPerClient: 2,
		ReadFraction: 0.5,
		Seed:         9,
		RecordOps:    true,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("e2e load: %s", rep)
	if rep.Ops < 2000 {
		t.Fatalf("only %d ops completed, want 2000", rep.Ops)
	}
	if rep.CASOk == 0 {
		t.Fatal("no decided CAS operations")
	}
	if rep.Errors != 0 || rep.Timeouts != 0 {
		t.Fatalf("clean mesh saw %d errors, %d timeouts", rep.Errors, rep.Timeouts)
	}

	chains := gatherChains(t, client, 32)
	if err := CheckLinearizable(chains, rep.Records); err != nil {
		t.Fatalf("linearizability violated: %v", err)
	}

	status, err := client.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if status.Conform == nil || !status.Conform.Clean {
		t.Fatalf("conformance not clean: %+v", status.Conform)
	}
	if status.Engine.AgreementViolated != 0 {
		t.Fatalf("engine tallied %d agreement violations", status.Engine.AgreementViolated)
	}
	// Every committed version is one consensus instance; the engine must
	// have decided at least that many.
	var versions int
	for _, c := range chains {
		versions += len(c)
	}
	if int64(versions) != rep.CASOk {
		t.Errorf("chains hold %d versions but %d CAS ops won", versions, rep.CASOk)
	}
	if status.Engine.Completed < int64(versions) {
		t.Errorf("engine completed %d instances for %d versions", status.Engine.Completed, versions)
	}
}
