package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// LoadConfig drives K concurrent closed-loop clients against the KV API —
// the workload shared by cmd/ssfd-load, the benchmark artifact writer and
// the end-to-end tests.
type LoadConfig struct {
	// BaseURL is the server root; HTTP optionally injects the transport
	// (in-process tests pass a handler-backed RoundTripper).
	BaseURL string
	HTTP    *http.Client

	// Clients is the number of concurrent closed-loop clients (default 8),
	// Keys the size of the shared key space they collide on (default 16).
	Clients int
	Keys    int

	// Duration bounds the run; OpsPerClient (when nonzero) bounds each
	// client's operation count instead. One of the two must stop the run.
	Duration     time.Duration
	OpsPerClient int

	// ReadFraction is the probability an operation is a read (default 0.5).
	ReadFraction float64
	// Seed makes the op mix reproducible.
	Seed int64

	// RecordOps retains every operation with logical start/end stamps for
	// the linearizability checker. Costs memory; leave off for pure load.
	RecordOps bool
}

// OpKind labels a recorded operation.
type OpKind string

const (
	OpRead OpKind = "read"
	OpCAS  OpKind = "cas"
)

// OpRecord is one client operation as observed from the outside: logical
// start/end stamps from a global counter (op A happened-before op B iff
// A.End < B.Start) plus the version the server's answer exposed.
type OpRecord struct {
	Client int
	Kind   OpKind
	Key    string
	Start  int64
	End    int64

	// CAS inputs (Kind == OpCAS).
	Old *int64
	New int64

	// Outcome: OK is true for a successful CAS or any completed read.
	// Version/Value are what the response observed — the committed head for
	// reads and conflicts, the new version for a winning CAS. Version 0
	// means "key absent".
	OK      bool
	Version int
	Value   int64
	Err     string
}

// LoadReport aggregates one run.
type LoadReport struct {
	Clients int           `json:"clients"`
	Keys    int           `json:"keys"`
	Elapsed time.Duration `json:"elapsed_ns"`

	Ops          int64 `json:"ops"`
	Reads        int64 `json:"reads"`
	CASOk        int64 `json:"cas_ok"`
	CASConflicts int64 `json:"cas_conflicts"`
	Timeouts     int64 `json:"timeouts"`
	Errors       int64 `json:"errors"`

	OpsPerSec float64 `json:"ops_per_sec"`
	// LatencyUS summarizes per-op latency in microseconds.
	LatencyUS stats.Int64Summary `json:"latency_us"`

	// Records holds every operation when LoadConfig.RecordOps was set.
	Records []OpRecord `json:"-"`
}

// String renders the one-line figure ssfd-load prints.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"load: %d clients x %d keys, %d ops in %v -> %.1f ops/sec; reads %d, cas ok %d, conflicts %d, timeouts %d, errors %d; latency us p50=%d p95=%d p99=%d",
		r.Clients, r.Keys, r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec,
		r.Reads, r.CASOk, r.CASConflicts, r.Timeouts, r.Errors,
		r.LatencyUS.P50, r.LatencyUS.P95, r.LatencyUS.P99)
}

// RunLoad executes the workload and aggregates the report. Client k runs a
// closed loop: pick a key, read it or CAS it (old = the head this client
// last observed on that key), record the outcome. Conflicts and timeouts
// are expected traffic under contention, not errors.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if cfg.Keys <= 0 {
		cfg.Keys = 16
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return nil, fmt.Errorf("serve: load: read fraction %v out of [0,1]", cfg.ReadFraction)
	}
	if cfg.ReadFraction == 0 {
		cfg.ReadFraction = 0.5
	}
	if cfg.Duration <= 0 && cfg.OpsPerClient <= 0 {
		return nil, fmt.Errorf("serve: load: need a duration or an op count")
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	var (
		seq     atomic.Int64 // the logical clock every record stamps from
		mu      sync.Mutex
		report  LoadReport
		lats    []int64
		records []OpRecord
		wg      sync.WaitGroup
	)
	report.Clients = cfg.Clients
	report.Keys = cfg.Keys
	start := time.Now()

	for cl := 0; cl < cfg.Clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(cl)*7919))
			client := &Client{BaseURL: cfg.BaseURL, HTTP: cfg.HTTP}
			lastSeen := make(map[string]*int64) // head value this client last observed
			var myLats []int64
			var myRecs []OpRecord
			var ops, reads, casOK, conflicts, timeouts, errs int64

			for op := 0; cfg.OpsPerClient <= 0 || op < cfg.OpsPerClient; op++ {
				if ctx.Err() != nil {
					break
				}
				key := fmt.Sprintf("k%03d", rng.Intn(cfg.Keys))
				rec := OpRecord{Client: cl, Key: key, Start: seq.Add(1)}
				t0 := time.Now()
				if rng.Float64() < cfg.ReadFraction {
					rec.Kind = OpRead
					cur, err := client.Get(ctx, key)
					switch {
					case err == nil:
						rec.OK = true
						rec.Version = cur.Version
						rec.Value = int64(cur.Value)
						v := int64(cur.Value)
						lastSeen[key] = &v
						reads++
					case errors.Is(err, ErrKeyNotFound):
						rec.OK = true // a committed answer: the key is absent
						lastSeen[key] = nil
						reads++
					default:
						if ctx.Err() != nil {
							break
						}
						rec.Err = err.Error()
						errs++
					}
				} else {
					rec.Kind = OpCAS
					rec.Old = lastSeen[key]
					rec.New = rng.Int63n(1 << 30)
					resp, err := client.CAS(ctx, key, rec.Old, rec.New)
					switch {
					case err == nil && resp.OK:
						rec.OK = true
						rec.Version = resp.Version
						rec.Value = resp.Value
						v := resp.Value
						lastSeen[key] = &v
						casOK++
					case err == nil: // conflict: the response names the winning head
						rec.Version = resp.Version
						rec.Value = resp.Value
						if resp.Version > 0 {
							v := resp.Value
							lastSeen[key] = &v
						} else {
							lastSeen[key] = nil
						}
						conflicts++
					case errors.Is(err, ErrTimeout):
						// The write may still land; drop the cached head so the
						// next op re-reads.
						delete(lastSeen, key)
						rec.Err = "timeout"
						timeouts++
					default:
						if ctx.Err() != nil {
							break
						}
						delete(lastSeen, key)
						rec.Err = err.Error()
						errs++
					}
				}
				if ctx.Err() != nil && rec.Err == "" && !rec.OK {
					break // the context died mid-op; don't record a phantom
				}
				rec.End = seq.Add(1)
				ops++
				myLats = append(myLats, time.Since(t0).Microseconds())
				if cfg.RecordOps {
					myRecs = append(myRecs, rec)
				}
			}

			mu.Lock()
			report.Ops += ops
			report.Reads += reads
			report.CASOk += casOK
			report.CASConflicts += conflicts
			report.Timeouts += timeouts
			report.Errors += errs
			lats = append(lats, myLats...)
			records = append(records, myRecs...)
			mu.Unlock()
		}(cl)
	}
	wg.Wait()

	report.Elapsed = time.Since(start)
	if report.Elapsed > 0 {
		report.OpsPerSec = float64(report.Ops) / report.Elapsed.Seconds()
	}
	report.LatencyUS = stats.SummarizeInt64(lats)
	report.Records = records
	return &report, nil
}
