package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// inprocTransport serves requests straight through the handler — no
// sockets, no listener, no file-descriptor ceiling. It is how the tests
// run a thousand concurrent clients on one CPU.
type inprocTransport struct{ h http.Handler }

func (t inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// newTestServer brings up a small live cluster with the conformance
// monitor attached and returns an in-process client against it.
func newTestServer(t *testing.T, mod func(*Config)) (*Server, *Client) {
	t.Helper()
	cfg := Config{
		N: 3, T: 1,
		HeartbeatPeriod: 2 * time.Millisecond,
		SuspectTimeout:  500 * time.Millisecond,
		WaitBound:       2 * time.Second,
		ProposeTimeout:  10 * time.Second,
		Conform:         true,
		Metrics:         obs.NewRegistry(),
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := &Client{
		BaseURL: "http://serve.test",
		HTTP:    &http.Client{Transport: inprocTransport{h: srv.Handler()}},
	}
	return srv, client
}

func TestProposeAndInstance(t *testing.T) {
	_, client := newTestServer(t, nil)
	ctx := context.Background()

	id, err := client.Propose(ctx, 42)
	if err != nil {
		t.Fatalf("Propose: %v", err)
	}
	st, err := client.Instance(ctx, id, true)
	if err != nil {
		t.Fatalf("Instance(wait): %v", err)
	}
	if !st.Done || st.Agreement != "reached" || st.Value == nil || *st.Value != 42 {
		t.Fatalf("instance status = %+v, want decided 42", st)
	}
	for i, d := range st.Decided {
		if !d || st.Decisions[i] != 42 {
			t.Errorf("node %d: decided=%v decision=%d, want 42", i+1, d, st.Decisions[i])
		}
	}

	// Per-node proposal vectors: the decision is one of the proposals.
	id, err = client.ProposeValues(ctx, []int64{7, 8, 9})
	if err != nil {
		t.Fatalf("ProposeValues: %v", err)
	}
	st, err = client.Instance(ctx, id, true)
	if err != nil {
		t.Fatalf("Instance(wait): %v", err)
	}
	if st.Agreement != "reached" || st.Value == nil {
		t.Fatalf("vector instance: %+v", st)
	}
	if *st.Value != 7 && *st.Value != 8 && *st.Value != 9 {
		t.Errorf("decided %d, want one of the proposals", *st.Value)
	}
}

func TestProposeValidation(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	h := srv.Handler()

	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"empty body", ``, http.StatusBadRequest},
		{"no value", `{}`, http.StatusBadRequest},
		{"both forms", `{"value":1,"values":[1,2,3]}`, http.StatusBadRequest},
		{"wrong arity", `{"values":[1,2]}`, http.StatusBadRequest},
		{"unknown field", `{"valu":1}`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
		{"ok", `{"value":5}`, http.StatusOK},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/propose", strings.NewReader(tc.body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.wantCode {
			t.Errorf("%s: code %d, want %d (body %s)", tc.name, rec.Code, tc.wantCode, rec.Body)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Errorf("%s: response not JSON: %s", tc.name, rec.Body)
		}
	}
}

func TestRoutingErrors(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	h := srv.Handler()

	cases := []struct {
		method, path string
		wantCode     int
	}{
		{http.MethodGet, "/nope", http.StatusNotFound},
		{http.MethodGet, "/v1/propose", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/healthz", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/instance/notanumber", http.StatusBadRequest},
		{http.MethodGet, "/v1/instance/999999", http.StatusNotFound},
		{http.MethodGet, "/v1/kv/ghost", http.StatusNotFound},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != tc.wantCode {
			t.Errorf("%s %s: code %d, want %d", tc.method, tc.path, rec.Code, tc.wantCode)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Errorf("%s %s: response not JSON: %s", tc.method, tc.path, rec.Body)
		}
	}
}

func TestBodyTooLarge(t *testing.T) {
	srv, _ := newTestServer(t, func(c *Config) { c.MaxBody = 64 })
	h := srv.Handler()
	big := `{"value":` + strings.Repeat("1", 200) + `}`
	req := httptest.NewRequest(http.MethodPost, "/v1/propose", strings.NewReader(big))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("code %d, want 413 (body %s)", rec.Code, rec.Body)
	}
}

func TestKVBasics(t *testing.T) {
	_, client := newTestServer(t, nil)
	ctx := context.Background()

	if _, err := client.Get(ctx, "a"); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrKeyNotFound", err)
	}

	// Create, then advance the chain.
	resp, err := client.CAS(ctx, "a", nil, 10)
	if err != nil || !resp.OK || resp.Version != 1 {
		t.Fatalf("CAS(nil->10) = %+v, %v", resp, err)
	}
	old := int64(10)
	resp, err = client.CAS(ctx, "a", &old, 20)
	if err != nil || !resp.OK || resp.Version != 2 {
		t.Fatalf("CAS(10->20) = %+v, %v", resp, err)
	}

	// A stale CAS loses and learns the head.
	stale := int64(10)
	resp, err = client.CAS(ctx, "a", &stale, 99)
	if err != nil {
		t.Fatalf("stale CAS errored: %v", err)
	}
	if resp.OK || resp.Version != 2 || resp.Value != 20 {
		t.Fatalf("stale CAS = %+v, want conflict against (v2, 20)", resp)
	}

	head, err := client.Get(ctx, "a")
	if err != nil || head.Version != 2 || int64(head.Value) != 20 {
		t.Fatalf("Get = %+v, %v", head, err)
	}
	hist, err := client.History(ctx, "a")
	if err != nil || len(hist) != 2 {
		t.Fatalf("History = %+v, %v", hist, err)
	}
	if hist[0].Value != 10 || hist[1].Value != 20 {
		t.Fatalf("chain = %+v, want [10 20]", hist)
	}
	// Every version names the consensus instance that committed it.
	if hist[0].Instance == hist[1].Instance {
		t.Errorf("both versions claim instance %d", hist[0].Instance)
	}
}

func TestClientUpdateRetries(t *testing.T) {
	_, client := newTestServer(t, nil)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := client.Update(ctx, "ctr", func(cur *int64) int64 {
			if cur == nil {
				return 1
			}
			return *cur + 1
		}); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
	}
	head, err := client.Get(ctx, "ctr")
	if err != nil || int64(head.Value) != 3 {
		t.Fatalf("counter = %+v, %v; want 3", head, err)
	}
}

func TestStatusAndObs(t *testing.T) {
	srv, client := newTestServer(t, nil)
	ctx := context.Background()
	if _, err := client.CAS(ctx, "s", nil, 1); err != nil {
		t.Fatal(err)
	}
	rep, err := client.Status(ctx)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if rep.Engine.N != 3 || rep.Engine.Completed < 1 {
		t.Errorf("engine stats = %+v", rep.Engine)
	}
	if rep.KV.Keys != 1 || rep.KV.Versions != 1 {
		t.Errorf("kv stats = %+v", rep.KV)
	}
	if rep.Conform == nil || !rep.Conform.Clean || rep.Conform.Checked < 1 {
		t.Errorf("conform = %+v, want clean with checks", rep.Conform)
	}
	if rep.Engine.AgreementViolated != 0 {
		t.Errorf("agreement violations: %d", rep.Engine.AgreementViolated)
	}

	h := srv.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/healthz = %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ssfd_") {
		t.Errorf("/metrics = %d: %.80s", rec.Code, rec.Body)
	}
}

func TestDrainingRefusesProposals(t *testing.T) {
	srv, client := newTestServer(t, nil)
	ctx := context.Background()
	if _, err := client.Propose(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := client.Propose(ctx, 2); !errors.Is(err, ErrDraining) {
		t.Fatalf("Propose while draining = %v, want ErrDraining", err)
	}
	if _, err := client.CAS(ctx, "k", nil, 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("CAS while draining = %v, want ErrDraining", err)
	}
	// Reads and status stay answerable after drain.
	if _, err := client.Status(ctx); err != nil {
		t.Fatalf("Status after drain: %v", err)
	}
	if !srv.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
}

// TestEngineAccessors pins the small status surface the cmds rely on.
func TestEngineAccessors(t *testing.T) {
	srv, _ := newTestServer(t, nil)
	if srv.Engine() == nil || srv.Engine().N() != 3 {
		t.Fatal("Engine() accessor broken")
	}
	if srv.Monitor() == nil {
		t.Fatal("Monitor() nil with Conform set")
	}
	if got := srv.Engine().Algorithm().Name(); got != "FloodSetWS" {
		t.Errorf("default algorithm = %q", got)
	}
	if err := srv.Engine().Err(); err != nil {
		t.Errorf("engine error: %v", err)
	}
	st := srv.Engine().Stats()
	if st.Detector == "" || st.Groups < 1 {
		t.Errorf("engine stats = %+v", st)
	}
}

// TestInstanceOutcomeAgreement pins the outcome helper the serving layer
// leans on for its verdicts.
func TestInstanceOutcomeAgreement(t *testing.T) {
	out := runtime.InstanceOutcome{
		N: 3, Decided: []bool{true, true, true}, Decisions: []model.Value{5, 5, 5},
	}
	if _, st := out.Agreement(); st != runtime.AgreementReached {
		t.Errorf("verdict %v, want reached", st)
	}
}
