package serve

import (
	"sync"

	"repro/internal/model"
	"repro/internal/runtime"
)

// instRecord is the server's view of one consensus instance: the engine
// handle, the proposal vector (what the conformance monitor checks validity
// against) and, for KV instances, the flight the completion commits.
type instRecord struct {
	id        uint64
	handle    *runtime.Instance
	proposals []model.Value
	flight    *kvFlight
}

// instanceRegistry maps instance ids to records. Open and the engine's
// completion callback race by construction — the callback can fire on a
// worker goroutine before Open's caller has even seen the id — so the
// registry holds its lock across the engine Open: by the time the lock
// drops, the record is findable.
type instanceRegistry struct {
	mu   sync.Mutex
	recs map[uint64]*instRecord
}

func newInstanceRegistry() *instanceRegistry {
	return &instanceRegistry{recs: make(map[uint64]*instRecord)}
}

// open admits an instance and registers its record atomically. probe, when
// non-nil, attaches per-round observation (a sampled request's deep trace).
func (ir *instanceRegistry) open(eng *runtime.Engine, proposals []model.Value, fl *kvFlight, probe *runtime.InstanceProbe) (*instRecord, error) {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	h, err := eng.OpenObserved(func(id model.ProcessID) model.Value { return proposals[id-1] }, probe)
	if err != nil {
		return nil, err
	}
	rec := &instRecord{id: h.ID(), handle: h, proposals: proposals, flight: fl}
	ir.recs[rec.id] = rec
	return rec, nil
}

// get looks an instance up; nil if never opened here.
func (ir *instanceRegistry) get(id uint64) *instRecord {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	return ir.recs[id]
}

// complete returns the record for a finished instance. Records are kept
// after completion so GET /v1/instance stays answerable; the engine handle
// already carries the outcome, so this costs one map entry per instance.
func (ir *instanceRegistry) complete(id uint64, _ runtime.InstanceOutcome) *instRecord {
	ir.mu.Lock()
	defer ir.mu.Unlock()
	return ir.recs[id]
}
