package serve

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/tracing"
)

// This file is the request-observability layer (PR 10): every HTTP request
// gets an id and a phase-mark timeline; sampled requests additionally carry
// a full causal span tree — http → kv flight → consensus instance, the
// instance rebuilt at per-round resolution from a runtime.InstanceProbe.
// Two exact-tiling invariants hold by construction and are enforced by
// VerifyRequestTrace:
//
//  1. The request phases (handler/queue/contention/consensus/commit) tile
//     the measured wall-clock total exactly — the marks are a monotone
//     sequence of shared boundary stamps, so the intervals telescope.
//  2. The embedded instance trace passes tracing.Attribute + CheckSums —
//     the same barrier/fd-timeout/transport/compute discipline PR 5
//     established for offline runs, reconciled live per request.

// phaseMark is one boundary in a request's timeline: the named phase runs
// from this stamp to the next mark (or the request end).
type phaseMark struct {
	phase string
	at    time.Time
}

// reqTracker accumulates one request's observability state. It lives in the
// request context and is touched only from the request goroutine (the
// commit stamp crosses over via the flight, not the tracker), so it needs
// no lock. All methods are nil-safe: an untraced context costs nothing.
type reqTracker struct {
	id      string
	route   string
	method  string
	key     string
	sampled bool
	start   time.Time
	marks   []phaseMark

	probe    *runtime.InstanceProbe // set by the kv flight owner when sampled
	instance uint64
	hasInst  bool
}

// markAt closes the current phase at the given stamp and opens the named
// one. Stamps are clamped monotone so the intervals always telescope.
func (tk *reqTracker) markAt(phase string, at time.Time) {
	if tk == nil {
		return
	}
	if n := len(tk.marks); n > 0 {
		if last := &tk.marks[n-1]; at.Before(last.at) {
			at = last.at
		}
	}
	tk.marks = append(tk.marks, phaseMark{phase: phase, at: at})
}

// mark is markAt(now).
func (tk *reqTracker) mark(phase string) {
	if tk == nil {
		return
	}
	tk.markAt(phase, time.Now())
}

type trackerKeyType struct{}

func withTracker(ctx context.Context, tk *reqTracker) context.Context {
	return context.WithValue(ctx, trackerKeyType{}, tk)
}

func trackerFrom(ctx context.Context) *reqTracker {
	tk, _ := ctx.Value(trackerKeyType{}).(*reqTracker)
	return tk
}

// RequestPhases is a request's latency attribution: five contiguous slices
// tiling [0, TotalNS] exactly (VerifyRequestTrace checks the sum).
type RequestPhases struct {
	// HandlerNS: parse, dispatch, response encoding — everything not below.
	HandlerNS int64 `json:"handler_ns"`
	// QueueNS: blocked behind another client's in-flight KV instance.
	QueueNS int64 `json:"queue_ns"`
	// ContentionNS: CAS head checks, slot acquisition and retry overhead.
	ContentionNS int64 `json:"contention_ns"`
	// ConsensusNS: own instance open → engine completion callback.
	ConsensusNS int64 `json:"consensus_ns"`
	// CommitNS: completion callback → waiter wakeup.
	CommitNS int64 `json:"commit_ns"`
}

// Total sums the phases.
func (p RequestPhases) Total() int64 {
	return p.HandlerNS + p.QueueNS + p.ContentionNS + p.ConsensusNS + p.CommitNS
}

// RequestTrace is one finished request's observability record: identity,
// verdict, exact phase attribution and — when sampled — the full causal
// span tree (request phases on the global track, the consensus instance's
// per-node send/wait/compute rounds on process tracks).
type RequestTrace struct {
	ID       string         `json:"id"`
	Route    string         `json:"route"`
	Method   string         `json:"method"`
	Key      string         `json:"key,omitempty"`
	Status   int            `json:"status"`
	Start    time.Time      `json:"start"`
	TotalNS  int64          `json:"total_ns"`
	Sampled  bool           `json:"sampled"`
	Instance *uint64        `json:"instance,omitempty"`
	Phases   RequestPhases  `json:"phases"`
	Trace    *tracing.Trace `json:"trace,omitempty"`
}

// phasesOf folds the mark timeline into the attribution. end must be the
// same stamp TotalNS was computed from — the intervals then telescope to
// exactly end − marks[0].at.
func phasesOf(marks []phaseMark, end time.Time) RequestPhases {
	var p RequestPhases
	for i := range marks {
		stop := end
		if i+1 < len(marks) {
			stop = marks[i+1].at
		}
		d := stop.Sub(marks[i].at).Nanoseconds()
		if d < 0 {
			d = 0
		}
		switch marks[i].phase {
		case tracing.KindQueue:
			p.QueueNS += d
		case tracing.KindContention:
			p.ContentionNS += d
		case tracing.KindConsensus:
			p.ConsensusNS += d
		case tracing.KindCommit:
			p.CommitNS += d
		default:
			p.HandlerNS += d
		}
	}
	return p
}

// finish seals the tracker into its record. end is the middleware's final
// stamp; code the response status.
func (tk *reqTracker) finish(s *Server, end time.Time, code int) *RequestTrace {
	total := end.Sub(tk.start).Nanoseconds()
	if total < 0 {
		total = 0
	}
	rec := &RequestTrace{
		ID: tk.id, Route: tk.route, Method: tk.method, Key: tk.key,
		Status: code, Start: tk.start, TotalNS: total, Sampled: tk.sampled,
		Phases: phasesOf(tk.marks, end),
	}
	if tk.hasInst {
		v := tk.instance
		rec.Instance = &v
	}
	if tk.sampled {
		rec.Trace = assembleTrace(s.eng.Algorithm().Name(), s.eng.N(), s.cfg.T,
			tk.start, total, tk.marks, tk.probe.Snapshot())
	}
	return rec
}

// assembleTrace builds the causal span tree for one sampled request: a
// request root span with one child per phase interval on the global track,
// and — when a probe observed the consensus instance — per-node
// run→round→{send,wait,compute} spans plus arrival/decide points, exactly
// the shape tracing.Attribute decomposes. Times are nanoseconds from the
// request start, clamped monotone into [0, totalNS]; clamping is monotone,
// so the CheckSums telescoping survives it.
func assembleTrace(alg string, n, t int, start time.Time, totalNS int64,
	marks []phaseMark, snap *runtime.ProbeSnapshot) *tracing.Trace {
	tr := &tracing.Trace{Algorithm: alg, Model: "RWS", N: n, T: t, Timebase: "wall"}
	rel := func(at time.Time) int64 {
		d := at.Sub(start).Nanoseconds()
		if d < 0 {
			d = 0
		}
		if d > totalNS {
			d = totalNS
		}
		return d
	}
	var nextID tracing.SpanID
	next := func() tracing.SpanID { nextID++; return nextID }

	root := next()
	tr.Spans = append(tr.Spans, tracing.Span{
		ID: root, Proc: 0, Kind: tracing.KindRequest, Cat: tracing.CatServe,
		Start: 0, End: totalNS,
	})
	consensusParent := root
	for i := range marks {
		s := rel(marks[i].at)
		e := totalNS
		if i+1 < len(marks) {
			e = rel(marks[i+1].at)
		}
		id := next()
		tr.Spans = append(tr.Spans, tracing.Span{
			ID: id, Parent: root, Proc: 0, Kind: marks[i].phase, Cat: tracing.CatServe,
			Start: s, End: e,
		})
		if marks[i].phase == tracing.KindConsensus && consensusParent == root {
			consensusParent = id
		}
	}
	if snap == nil {
		return tr
	}
	for p := 1; p <= len(snap.Nodes); p++ {
		nd := &snap.Nodes[p-1]
		if len(nd.Rounds) == 0 {
			continue
		}
		runEnd := snap.DoneAt
		if runEnd.IsZero() {
			// Instance still in flight at request end (a timed-out request):
			// close the run at the last stamp observed.
			last := nd.Rounds[len(nd.Rounds)-1]
			for _, at := range []time.Time{last.TransAt, last.ClosedAt, last.SentAt} {
				if !at.IsZero() {
					runEnd = at
					break
				}
			}
		}
		runID := next()
		tr.Spans = append(tr.Spans, tracing.Span{
			ID: runID, Parent: consensusParent, Proc: p, Kind: tracing.KindRun,
			Cat: tracing.CatRuntime, Start: rel(nd.Rounds[0].StartAt), End: rel(runEnd),
		})
		for _, rd := range nd.Rounds {
			roundEnd := rd.TransAt
			if roundEnd.IsZero() {
				roundEnd = rd.ClosedAt
			}
			if roundEnd.IsZero() {
				roundEnd = rd.SentAt
			}
			roundID := next()
			tr.Spans = append(tr.Spans, tracing.Span{
				ID: roundID, Parent: runID, Proc: p, Kind: tracing.KindRound,
				Cat: tracing.CatRuntime, Round: rd.Round,
				Start: rel(rd.StartAt), End: rel(roundEnd),
			})
			sendID := next()
			tr.Spans = append(tr.Spans, tracing.Span{
				ID: sendID, Parent: roundID, Proc: p, Kind: tracing.KindSend,
				Cat: tracing.CatRuntime, Round: rd.Round,
				Start: rel(rd.StartAt), End: rel(rd.SentAt),
			})
			if rd.ClosedAt.IsZero() {
				continue
			}
			waitID := next()
			tr.Spans = append(tr.Spans, tracing.Span{
				ID: waitID, Parent: roundID, Proc: p, Kind: tracing.KindWait,
				Cat: tracing.CatRuntime, Round: rd.Round,
				Start: rel(rd.SentAt), End: rel(rd.ClosedAt),
				Peers: rd.Peers,
			})
			if rd.TransAt.IsZero() {
				continue
			}
			computeID := next()
			tr.Spans = append(tr.Spans, tracing.Span{
				ID: computeID, Parent: roundID, Proc: p, Kind: tracing.KindCompute,
				Cat: tracing.CatRuntime, Round: rd.Round,
				Start: rel(rd.ClosedAt), End: rel(rd.TransAt),
			})
		}
		for _, ar := range nd.Arrivals {
			tr.Points = append(tr.Points, tracing.Point{
				Proc: p, Kind: tracing.PointArrive, Cat: tracing.CatRuntime,
				Round: ar.Round, From: ar.From, TS: rel(ar.At),
			})
		}
		if nd.Decided {
			v := nd.Decision
			tr.Points = append(tr.Points, tracing.Point{
				Proc: p, Kind: tracing.PointDecide, Cat: tracing.CatRuntime,
				Round: nd.DecideRound, Value: &v, TS: rel(nd.DecidedAt),
			})
		}
	}
	return tr
}

// VerifyRequestTrace checks the record's two exact-tiling invariants: the
// request phases sum to the measured total, and (when a span tree is
// embedded) the consensus instance's per-node attribution passes CheckSums
// with every runtime span inside the request's consensus phase window —
// the live reconciliation of the PR 5 discipline.
func VerifyRequestTrace(rec *RequestTrace) error {
	if got := rec.Phases.Total(); got != rec.TotalNS {
		return fmt.Errorf("serve: request %s phases sum to %dns, measured total %dns", rec.ID, got, rec.TotalNS)
	}
	if rec.Trace == nil {
		return nil
	}
	attr := tracing.Attribute(rec.Trace)
	if err := attr.CheckSums(); err != nil {
		return fmt.Errorf("serve: request %s instance attribution: %w", rec.ID, err)
	}
	// Containment: the instance's spans must sit inside the request's
	// consensus phase (plus commit — the callback that stamps the instance
	// done runs at the consensus/commit boundary).
	var lo, hi int64 = -1, -1
	for i := range rec.Trace.Spans {
		sp := &rec.Trace.Spans[i]
		if sp.Cat != tracing.CatServe {
			continue
		}
		if sp.Kind == tracing.KindConsensus || sp.Kind == tracing.KindCommit {
			if lo < 0 || sp.Start < lo {
				lo = sp.Start
			}
			if sp.End > hi {
				hi = sp.End
			}
		}
	}
	for i := range rec.Trace.Spans {
		sp := &rec.Trace.Spans[i]
		if sp.Cat != tracing.CatRuntime {
			continue
		}
		if lo < 0 {
			return fmt.Errorf("serve: request %s has instance spans but no consensus phase", rec.ID)
		}
		if sp.Start < lo || sp.End > hi {
			return fmt.Errorf("serve: request %s %s span [%d,%d] outside consensus window [%d,%d]",
				rec.ID, sp.Kind, sp.Start, sp.End, lo, hi)
		}
	}
	return nil
}

// SamplingStats reports the trace store's configuration and tallies
// (/v1/status and /v1/debug/traces).
type SamplingStats struct {
	// Rate is the configured head-sampling rate in [0,1]; 0 means sampling
	// is disabled.
	Rate float64 `json:"rate"`
	// Requests and Sampled count requests seen and requests deep-traced.
	Requests int64 `json:"requests"`
	Sampled  int64 `json:"sampled"`
	// RecentCap / SlowestPerRoute are the ring capacities.
	RecentCap       int `json:"recent_cap"`
	SlowestPerRoute int `json:"slowest_per_route"`
}

// DebugTraces is the GET /v1/debug/traces body: the sampling state, the
// most recent sampled requests (newest first) and the slowest exemplars
// per route. Records here are summaries — the span trees stay behind
// GET /v1/debug/trace/{id}.
type DebugTraces struct {
	Sampling SamplingStats             `json:"sampling"`
	Recent   []RequestTrace            `json:"recent"`
	Slowest  map[string][]RequestTrace `json:"slowest"`
}

// traceStore is the sampler plus the two exemplar rings. It is a pure data
// structure — no goroutines — so Shutdown has nothing to stop and the
// goroutine-leak test holds trivially.
//
// Head sampling is deterministic: with rate r, every round(1/r)-th request
// is sampled (the first always is). Determinism keeps tests exact and the
// overhead measurable; there is no adversary to defeat with randomness.
// Exemplars are independent of sampling: the slowest-N requests per route
// are always retained, with phase attribution (phases are computed for
// every request — they cost four clock reads), sampled or not.
type traceStore struct {
	rate    float64
	stride  uint64 // 0 = never sample, 1 = always, k = every k-th request
	recCap  int
	slowCap int

	mu      sync.Mutex
	seq     uint64
	sampled int64
	recent  []*RequestTrace // ring of sampled records
	next    int
	slow    map[string][]*RequestTrace // per route, sorted slowest-first
}

func newTraceStore(rate float64, recentCap, slowCap int) *traceStore {
	ts := &traceStore{rate: rate, recCap: recentCap, slowCap: slowCap,
		slow: make(map[string][]*RequestTrace)}
	switch {
	case rate <= 0:
		ts.stride = 0
		ts.rate = 0
	case rate >= 1:
		ts.stride = 1
		ts.rate = 1
	default:
		ts.stride = uint64(math.Round(1 / rate))
	}
	return ts
}

// begin assigns the next request id and the sampling verdict.
func (ts *traceStore) begin() (id string, sampled bool) {
	ts.mu.Lock()
	ts.seq++
	id = fmt.Sprintf("r%08d", ts.seq)
	sampled = ts.stride > 0 && (ts.seq-1)%ts.stride == 0
	if sampled {
		ts.sampled++
	}
	ts.mu.Unlock()
	return id, sampled
}

// add files a finished record: sampled records enter the recent ring, and
// every record competes for its route's slowest exemplars.
func (ts *traceStore) add(rec *RequestTrace) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if rec.Sampled {
		if len(ts.recent) < ts.recCap {
			ts.recent = append(ts.recent, rec)
		} else {
			ts.recent[ts.next] = rec
			ts.next = (ts.next + 1) % ts.recCap
		}
	}
	row := ts.slow[rec.Route]
	if len(row) < ts.slowCap || rec.TotalNS > row[len(row)-1].TotalNS {
		row = append(row, rec)
		sort.Slice(row, func(i, j int) bool { return row[i].TotalNS > row[j].TotalNS })
		if len(row) > ts.slowCap {
			row = row[:ts.slowCap]
		}
		ts.slow[rec.Route] = row
	}
}

// get looks a request id up in the recent ring and the exemplar rows. The
// scan is bounded by recentCap + routes×slowCap — no index to keep coherent.
func (ts *traceStore) get(id string) *RequestTrace {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, rec := range ts.recent {
		if rec.ID == id {
			return rec
		}
	}
	for _, row := range ts.slow {
		for _, rec := range row {
			if rec.ID == id {
				return rec
			}
		}
	}
	return nil
}

// stats snapshots the sampling tallies.
func (ts *traceStore) stats() SamplingStats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return SamplingStats{
		Rate:            ts.rate,
		Requests:        int64(ts.seq),
		Sampled:         ts.sampled,
		RecentCap:       ts.recCap,
		SlowestPerRoute: ts.slowCap,
	}
}

// debug snapshots the store for GET /v1/debug/traces: summaries only, the
// recent ring newest-first.
func (ts *traceStore) debug() DebugTraces {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := DebugTraces{
		Sampling: SamplingStats{
			Rate: ts.rate, Requests: int64(ts.seq), Sampled: ts.sampled,
			RecentCap: ts.recCap, SlowestPerRoute: ts.slowCap,
		},
		Slowest: make(map[string][]RequestTrace, len(ts.slow)),
	}
	for i := len(ts.recent) - 1; i >= 0; i-- {
		// Ring order: ts.next-1 backwards is newest-first once wrapped.
		idx := i
		if len(ts.recent) == ts.recCap {
			idx = ((ts.next+i)%ts.recCap + ts.recCap) % ts.recCap
		}
		out.Recent = append(out.Recent, summaryOf(ts.recent[idx]))
	}
	for route, row := range ts.slow {
		for _, rec := range row {
			out.Slowest[route] = append(out.Slowest[route], summaryOf(rec))
		}
	}
	return out
}

// summaryOf copies a record without its span tree.
func summaryOf(rec *RequestTrace) RequestTrace {
	sum := *rec
	sum.Trace = nil
	return sum
}
