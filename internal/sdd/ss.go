package sdd

import (
	"repro/internal/model"
	"repro/internal/step"
)

// SSAlgorithm is the paper's Section 3 algorithm solving SDD in the
// synchronous model SS with known bounds Φ and Δ:
//
//   - pi (the sender) sends its input value to pj during its first step.
//   - pj (the observer) executes Φ+1+Δ (possibly empty) steps. If a message
//     from pi arrives during this period, pj decides the value sent;
//     otherwise it decides 0.
//
// Why Φ+1+Δ: by process synchrony, within any window in which pj takes Φ+1
// steps, a live pi has taken at least one step — its first, which sends the
// value. By message synchrony the message is received by the end of pj's
// first step at least Δ global steps later, and pj's next Δ own steps are
// each a global step, so Φ+1+Δ of pj's own steps suffice. Silence past the
// deadline therefore *proves* pi crashed before sending — exactly the
// bounded-failure-detection power that SP lacks.
//
// Every other process idles (the problem involves only pi and pj).
type SSAlgorithm struct {
	Phi, Delta int
	Sender     model.ProcessID
	Observer   model.ProcessID
}

var _ step.Algorithm = SSAlgorithm{}

// NewSS returns the SS algorithm for the conventional casting p1 → p2.
func NewSS(phi, delta int) SSAlgorithm {
	return SSAlgorithm{Phi: phi, Delta: delta, Sender: DefaultSender, Observer: DefaultObserver}
}

// Name implements step.Algorithm.
func (a SSAlgorithm) Name() string { return "SDD-SS" }

// New implements step.Algorithm.
func (a SSAlgorithm) New(cfg step.Config) step.Automaton {
	switch cfg.ID {
	case a.Sender:
		return &ssSender{observer: a.Observer, value: cfg.Input}
	case a.Observer:
		return &ssObserver{deadline: a.Phi + 1 + a.Delta, sender: a.Sender}
	default:
		return idle{}
	}
}

// ssSender sends the input value to the observer in its first step and then
// idles forever.
type ssSender struct {
	observer model.ProcessID
	value    model.Value
	sent     bool
}

var _ step.Automaton = (*ssSender)(nil)

// Step implements step.Automaton.
func (s *ssSender) Step(in step.Input) *step.Send {
	if s.sent {
		return nil
	}
	s.sent = true
	return &step.Send{To: s.observer, Payload: ValueMsg{V: s.value}}
}

// ssObserver waits Φ+1+Δ of its own steps for the sender's value, deciding
// the value on arrival or 0 at the deadline.
type ssObserver struct {
	deadline int
	sender   model.ProcessID

	decided  bool
	decision model.Value
}

var (
	_ step.Automaton = (*ssObserver)(nil)
	_ step.Decider   = (*ssObserver)(nil)
)

// Step implements step.Automaton.
func (o *ssObserver) Step(in step.Input) *step.Send {
	if o.decided {
		return nil
	}
	for _, m := range in.Received {
		if vm, ok := m.Payload.(ValueMsg); ok && m.From == o.sender {
			o.decision, o.decided = vm.V, true
			return nil
		}
	}
	if in.Local >= o.deadline {
		o.decision, o.decided = 0, true
	}
	return nil
}

// Decision implements step.Decider.
func (o *ssObserver) Decision() (model.Value, bool) { return o.decision, o.decided }

// idle is the automaton of uninvolved processes.
type idle struct{}

var _ step.Automaton = idle{}

// Step implements step.Automaton.
func (idle) Step(step.Input) *step.Send { return nil }
