// Package sdd implements the Strongly Dependent Decision problem of the
// paper's Section 3 — the time-free problem that separates the synchronous
// model SS from the asynchronous-plus-perfect-failure-detector model SP.
//
// Two designated processes participate: a *sender* pi with an input value
// in {0,1} and an *observer* pj that must output a decision, subject to:
//
//   - Integrity: pj decides at most once.
//   - Validity: if pi has not initially crashed (it took at least one
//     step), the only possible decision is pi's input value.
//   - Termination: if pj is correct, pj eventually decides.
//
// In SS the problem has the paper's simple algorithm (SenderAlgorithm +
// the Φ+1+Δ observer rule). In SP it is unsolvable (Theorem 3.1): package
// function RefuteSP mechanizes the proof's indistinguishability adversary
// against any deterministic candidate protocol.
//
// The paper motivates SDD through atomic commit: a solution lets processes
// commit despite failures whenever all vote yes and no process is initially
// dead; package nbac builds that protocol on top of this one.
package sdd

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/step"
)

// Candidate is a step-level SDD protocol: any step.Algorithm whose p1 acts
// as the sender and p2 as the observer. The root package re-exports the
// name for its API surface.
type Candidate = step.Algorithm

// DefaultSender and DefaultObserver fix the conventional casting: p1 plays
// pi (the sender), p2 plays pj (the observer).
const (
	DefaultSender   = model.ProcessID(1)
	DefaultObserver = model.ProcessID(2)
)

// ValueMsg is the sender's value message.
type ValueMsg struct {
	V model.Value
}

// Spec describes one SDD instance for checking.
type Spec struct {
	Sender   model.ProcessID
	Observer model.ProcessID
	Input    model.Value // the sender's input value
}

// Result is the outcome of checking a trace against the SDD specification.
type Result struct {
	Property string
	OK       bool
	Detail   string
}

// String renders the result.
func (r Result) String() string {
	if r.OK {
		return r.Property + ": ok"
	}
	return r.Property + ": VIOLATED — " + r.Detail
}

// Check evaluates the three SDD conditions on a complete trace. The
// termination condition only applies when the observer never crashed; the
// validity condition only constrains the decision when the sender took at
// least one step ("has not initially crashed").
func Check(tr *step.Trace, spec Spec) []Result {
	var out []Result

	// Integrity is structural: the engine records only the first decision
	// and the automata in this package never retract; the recorded decision
	// therefore stands for "decides at most once". We surface it as OK for
	// completeness of the report.
	out = append(out, Result{Property: "integrity", OK: true})

	validity := Result{Property: "validity", OK: true}
	if tr.TookStep(spec.Sender) && tr.Decided[spec.Observer] {
		if got := tr.DecidedValue[spec.Observer]; got != spec.Input {
			validity.OK = false
			validity.Detail = fmt.Sprintf(
				"%v took a step (not initially crashed) with input %d, but %v decided %d",
				spec.Sender, int64(spec.Input), spec.Observer, int64(got))
		}
	}
	out = append(out, validity)

	termination := Result{Property: "termination", OK: true}
	if tr.Alive(spec.Observer) && !tr.Decided[spec.Observer] {
		termination.OK = false
		termination.Detail = fmt.Sprintf("correct observer %v never decided", spec.Observer)
	}
	out = append(out, termination)
	return out
}

// FirstViolation returns the first violated SDD condition, or nil.
func FirstViolation(tr *step.Trace, spec Spec) *Result {
	results := Check(tr, spec)
	for i := range results {
		if !results[i].OK {
			return &results[i]
		}
	}
	return nil
}
