package sdd

import (
	"testing"

	"repro/internal/model"
	"repro/internal/step"
)

// runSS drives the SS algorithm under a seeded SS-admissible scheduler.
func runSS(t *testing.T, phi, delta int, input model.Value, crashAt map[model.ProcessID]int, seed int64) *step.Trace {
	t.Helper()
	alg := NewSS(phi, delta)
	eng, err := step.NewEngine(alg, []model.Value{input, 0})
	if err != nil {
		t.Fatal(err)
	}
	sched := step.NewSSScheduler(phi, delta, seed, step.StopWhenDecided(model.Singleton(DefaultObserver)))
	sched.CrashAtStep = crashAt
	tr, err := eng.Run(sched, 10000)
	if err != nil {
		t.Fatalf("Φ=%d Δ=%d seed=%d: %v", phi, delta, seed, err)
	}
	if v := step.CheckProcessSynchrony(tr, phi); len(v) != 0 {
		t.Fatalf("schedule not Φ-admissible: %v", v[0].Error())
	}
	if v := step.CheckMessageSynchrony(tr, delta); len(v) != 0 {
		t.Fatalf("schedule not Δ-admissible: %v", v[0].Error())
	}
	return tr
}

// TestSSAlgorithmFailureFree: in every failure-free SS run the observer
// decides the sender's value.
func TestSSAlgorithmFailureFree(t *testing.T) {
	for _, cfg := range []struct{ phi, delta int }{{1, 1}, {2, 3}, {4, 2}} {
		for seed := int64(0); seed < 50; seed++ {
			for _, input := range []model.Value{0, 1} {
				tr := runSS(t, cfg.phi, cfg.delta, input, nil, seed)
				if bad := FirstViolation(tr, Spec{Sender: DefaultSender, Observer: DefaultObserver, Input: input}); bad != nil {
					t.Fatalf("Φ=%d Δ=%d seed=%d input=%d: %s", cfg.phi, cfg.delta, seed, int64(input), bad)
				}
				if tr.DecidedValue[DefaultObserver] != input {
					t.Fatalf("observer decided %d, want %d", tr.DecidedValue[DefaultObserver], int64(input))
				}
			}
		}
	}
}

// TestSSAlgorithmSenderInitiallyCrashed: the sender crashes before taking
// any step; the observer must still decide (it decides 0, which validity
// permits since the sender was initially crashed).
func TestSSAlgorithmSenderInitiallyCrashed(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		tr := runSS(t, 2, 2, 1, map[model.ProcessID]int{DefaultSender: 1}, seed)
		if !tr.InitiallyCrashed(DefaultSender) {
			t.Fatal("sender not initially crashed")
		}
		if bad := FirstViolation(tr, Spec{Sender: DefaultSender, Observer: DefaultObserver, Input: 1}); bad != nil {
			t.Fatalf("seed %d: %s", seed, bad)
		}
		if !tr.Decided[DefaultObserver] || tr.DecidedValue[DefaultObserver] != 0 {
			t.Fatalf("seed %d: observer decided (%v,%d), want (true,0)",
				seed, tr.Decided[DefaultObserver], tr.DecidedValue[DefaultObserver])
		}
	}
}

// TestSSAlgorithmSenderCrashesLater sweeps the sender's crash over every
// early global step: whenever the sender managed a step before crashing,
// the observer must decide the sender's value — the heart of SDD validity,
// which is achievable in SS precisely because failure detection there is
// *bounded*, not just eventual.
func TestSSAlgorithmSenderCrashesLater(t *testing.T) {
	for crashStep := 2; crashStep <= 8; crashStep++ {
		for seed := int64(0); seed < 30; seed++ {
			tr := runSS(t, 2, 2, 1, map[model.ProcessID]int{DefaultSender: crashStep}, seed)
			spec := Spec{Sender: DefaultSender, Observer: DefaultObserver, Input: 1}
			if bad := FirstViolation(tr, spec); bad != nil {
				t.Fatalf("crash@%d seed=%d: %s", crashStep, seed, bad)
			}
			if tr.TookStep(DefaultSender) && tr.DecidedValue[DefaultObserver] != 1 {
				t.Fatalf("crash@%d seed=%d: sender stepped but observer decided %d",
					crashStep, seed, tr.DecidedValue[DefaultObserver])
			}
		}
	}
}

// TestSSAlgorithmDeadline: the observer decides within Φ+1+Δ of its own
// steps, the paper's bound.
func TestSSAlgorithmDeadline(t *testing.T) {
	phi, delta := 3, 2
	for seed := int64(0); seed < 50; seed++ {
		tr := runSS(t, phi, delta, 1, nil, seed)
		if got := tr.DecidedAtLocal[DefaultObserver]; got > phi+1+delta {
			t.Fatalf("seed %d: observer decided at its step %d, beyond the Φ+1+Δ = %d bound",
				seed, got, phi+1+delta)
		}
	}
}

// TestSSAlgorithmUnderestimatedDelta is the ablation the DESIGN calls out:
// run the Φ+1+Δ protocol in a system whose actual message bound is larger
// than the protocol assumes. Validity must break in some run — the
// protocol's correctness genuinely depends on knowing the true bounds,
// which is exactly what separates SS from SP.
func TestSSAlgorithmUnderestimatedDelta(t *testing.T) {
	assumed := 1 // protocol believes Δ=1
	actual := 6  // network honors only Δ=6
	phi := 1
	violated := false
	for seed := int64(0); seed < 200 && !violated; seed++ {
		alg := NewSS(phi, assumed)
		eng, err := step.NewEngine(alg, []model.Value{1, 0})
		if err != nil {
			t.Fatal(err)
		}
		sched := step.NewSSScheduler(phi, actual, seed, step.StopWhenDecided(model.Singleton(DefaultObserver)))
		tr, err := eng.Run(sched, 10000)
		if err != nil {
			t.Fatal(err)
		}
		if bad := FirstViolation(tr, Spec{Sender: DefaultSender, Observer: DefaultObserver, Input: 1}); bad != nil {
			violated = true
		}
	}
	if !violated {
		t.Error("underestimating Δ never violated validity across 200 seeds; expected the protocol to depend on the true bound")
	}
}

// TestRefuteSPCandidates is experiment E8's second half: Theorem 3.1's
// adversary mechanically refutes every natural SP candidate protocol.
func TestRefuteSPCandidates(t *testing.T) {
	for _, alg := range Candidates() {
		t.Run(alg.Name(), func(t *testing.T) {
			ref, err := RefuteSP(alg, 500)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Kind != SPValidityViolation {
				t.Fatalf("refutation kind = %v, want validity violation\n%s", ref.Kind, ref)
			}
			if ref.Witness == nil {
				t.Fatal("no witness trace")
			}
			// The witness must itself be a checkable violation.
			spec := Spec{Sender: DefaultSender, Observer: DefaultObserver, Input: ref.WitnessInput}
			bad := FirstViolation(ref.Witness, spec)
			if bad == nil || bad.Property != "validity" {
				t.Fatalf("witness does not violate validity: %v", bad)
			}
			// And it must be an admissible SP run.
			if v := step.CheckStrongAccuracy(ref.Witness); len(v) != 0 {
				t.Errorf("witness violates strong accuracy: %v", v[0].Error())
			}
			if v := step.CheckEventualDelivery(ref.Witness); len(v) != 0 {
				t.Errorf("witness violates eventual delivery: %v", v[0].Error())
			}
			if v := step.CheckStrongCompleteness(ref.Witness); len(v) != 0 {
				t.Errorf("witness violates strong completeness: %v", v[0].Error())
			}
		})
	}
}

// waitForever never decides: RefuteSP must classify it as a termination
// violation instead of looping.
type waitForever struct{}

func (waitForever) Name() string { return "SDD-SP-WaitForever" }
func (a waitForever) New(cfg step.Config) step.Automaton {
	if cfg.ID == DefaultSender {
		return &ssSender{observer: DefaultObserver, value: cfg.Input}
	}
	return idle{}
}

func TestRefuteSPTermination(t *testing.T) {
	ref, err := RefuteSP(waitForever{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Kind != SPTerminationViolation {
		t.Fatalf("kind = %v, want termination violation", ref.Kind)
	}
}

func TestRefuteSPValidation(t *testing.T) {
	if _, err := RefuteSP(NewReceiveOrSuspect(), 0); err == nil {
		t.Error("maxObserverSteps=0 accepted")
	}
}

func TestCheckIntegrityAndStrings(t *testing.T) {
	alg := NewSS(1, 1)
	eng, err := step.NewEngine(alg, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	sched := &step.FairScheduler{Stop: step.StopWhenDecided(model.Singleton(DefaultObserver))}
	tr, err := eng.Run(sched, 100)
	if err != nil {
		t.Fatal(err)
	}
	results := Check(tr, Spec{Sender: DefaultSender, Observer: DefaultObserver, Input: 1})
	if len(results) != 3 {
		t.Fatalf("Check returned %d results, want 3", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("unexpected violation: %s", r)
		}
		if r.String() == "" {
			t.Error("empty result string")
		}
	}
}
