package sdd

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/step"
)

// This file collects natural candidate protocols for SDD in the SP model —
// the asynchronous model with a perfect failure detector. Theorem 3.1 says
// all of them (and any other deterministic protocol) must fail; RefuteSP
// produces the witness runs. Each candidate pairs the same first-step
// sender with a different observer strategy.

// ReceiveOrSuspect is the most natural candidate: the observer decides the
// sender's value the moment it arrives, and decides 0 the moment the
// perfect detector reports the sender crashed. Its flaw is the paper's
// point: suspicion proves the crash but says nothing about messages still
// in flight.
type ReceiveOrSuspect struct {
	Sender   model.ProcessID
	Observer model.ProcessID
}

var _ step.Algorithm = ReceiveOrSuspect{}

// NewReceiveOrSuspect returns the candidate with the conventional casting.
func NewReceiveOrSuspect() ReceiveOrSuspect {
	return ReceiveOrSuspect{Sender: DefaultSender, Observer: DefaultObserver}
}

// Name implements step.Algorithm.
func (a ReceiveOrSuspect) Name() string { return "SDD-SP-ReceiveOrSuspect" }

// New implements step.Algorithm.
func (a ReceiveOrSuspect) New(cfg step.Config) step.Automaton {
	switch cfg.ID {
	case a.Sender:
		return &ssSender{observer: a.Observer, value: cfg.Input}
	case a.Observer:
		return &rosObserver{sender: a.Sender}
	default:
		return idle{}
	}
}

type rosObserver struct {
	sender   model.ProcessID
	decided  bool
	decision model.Value
}

var (
	_ step.Automaton = (*rosObserver)(nil)
	_ step.Decider   = (*rosObserver)(nil)
)

// Step implements step.Automaton.
func (o *rosObserver) Step(in step.Input) *step.Send {
	if o.decided {
		return nil
	}
	for _, m := range in.Received {
		if vm, ok := m.Payload.(ValueMsg); ok && m.From == o.sender {
			o.decision, o.decided = vm.V, true
			return nil
		}
	}
	if in.Suspects.Has(o.sender) {
		o.decision, o.decided = 0, true
	}
	return nil
}

// Decision implements step.Decider.
func (o *rosObserver) Decision() (model.Value, bool) { return o.decision, o.decided }

// GracePeriod refines ReceiveOrSuspect: after first suspecting the sender,
// the observer waits Grace further steps for a straggler message before
// deciding 0. No finite grace period can help — the asynchronous model puts
// no bound on delivery — but it is the obvious "fix" an engineer would try,
// so the refuter targets it explicitly.
type GracePeriod struct {
	Sender   model.ProcessID
	Observer model.ProcessID
	Grace    int
}

var _ step.Algorithm = GracePeriod{}

// NewGracePeriod returns the candidate with the conventional casting.
func NewGracePeriod(grace int) GracePeriod {
	return GracePeriod{Sender: DefaultSender, Observer: DefaultObserver, Grace: grace}
}

// Name implements step.Algorithm.
func (a GracePeriod) Name() string { return fmt.Sprintf("SDD-SP-GracePeriod(%d)", a.Grace) }

// New implements step.Algorithm.
func (a GracePeriod) New(cfg step.Config) step.Automaton {
	switch cfg.ID {
	case a.Sender:
		return &ssSender{observer: a.Observer, value: cfg.Input}
	case a.Observer:
		return &graceObserver{sender: a.Sender, grace: a.Grace}
	default:
		return idle{}
	}
}

type graceObserver struct {
	sender model.ProcessID
	grace  int

	suspectedAt int // observer-local step at which suspicion was first seen
	decided     bool
	decision    model.Value
}

var (
	_ step.Automaton = (*graceObserver)(nil)
	_ step.Decider   = (*graceObserver)(nil)
)

// Step implements step.Automaton.
func (o *graceObserver) Step(in step.Input) *step.Send {
	if o.decided {
		return nil
	}
	for _, m := range in.Received {
		if vm, ok := m.Payload.(ValueMsg); ok && m.From == o.sender {
			o.decision, o.decided = vm.V, true
			return nil
		}
	}
	if in.Suspects.Has(o.sender) && o.suspectedAt == 0 {
		o.suspectedAt = in.Local
	}
	if o.suspectedAt != 0 && in.Local >= o.suspectedAt+o.grace {
		o.decision, o.decided = 0, true
	}
	return nil
}

// Decision implements step.Decider.
func (o *graceObserver) Decision() (model.Value, bool) { return o.decision, o.decided }

// StepCountTimeout transplants the SS algorithm into SP verbatim: the
// observer waits a fixed number K of its own steps and then decides
// received-or-0, ignoring the failure detector entirely. In SS the step
// count carries information (process and message synchrony); in the
// asynchronous model it carries none, so the refuter defeats any K.
type StepCountTimeout struct {
	Sender   model.ProcessID
	Observer model.ProcessID
	K        int
}

var _ step.Algorithm = StepCountTimeout{}

// NewStepCountTimeout returns the candidate with the conventional casting.
func NewStepCountTimeout(k int) StepCountTimeout {
	return StepCountTimeout{Sender: DefaultSender, Observer: DefaultObserver, K: k}
}

// Name implements step.Algorithm.
func (a StepCountTimeout) Name() string { return fmt.Sprintf("SDD-SP-StepCountTimeout(%d)", a.K) }

// New implements step.Algorithm.
func (a StepCountTimeout) New(cfg step.Config) step.Automaton {
	switch cfg.ID {
	case a.Sender:
		return &ssSender{observer: a.Observer, value: cfg.Input}
	case a.Observer:
		return &ssObserver{deadline: a.K, sender: a.Sender}
	default:
		return idle{}
	}
}

// Candidates returns the SP protocol suite the experiments refute.
func Candidates() []step.Algorithm {
	return []step.Algorithm{
		NewReceiveOrSuspect(),
		NewGracePeriod(3),
		NewGracePeriod(10),
		NewStepCountTimeout(5),
		NewStepCountTimeout(50),
	}
}
