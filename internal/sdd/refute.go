package sdd

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/step"
)

// SPRefutationKind classifies how a candidate SP protocol fails.
type SPRefutationKind int

const (
	// SPValidityViolation: a run in which the sender took a step (so it was
	// not initially crashed) but the observer decided a different value.
	SPValidityViolation SPRefutationKind = iota + 1
	// SPTerminationViolation: a legal run (sender initially crashed,
	// observer suspecting it, nothing in flight) in which the observer
	// never decides.
	SPTerminationViolation
)

// String names the kind.
func (k SPRefutationKind) String() string {
	switch k {
	case SPValidityViolation:
		return "validity violation"
	case SPTerminationViolation:
		return "termination violation"
	default:
		return fmt.Sprintf("SPRefutationKind(%d)", int(k))
	}
}

// SPRefutation is the constructive output of RefuteSP: a concrete
// SP-admissible run on which the candidate protocol violates the SDD
// specification, built exactly as in Theorem 3.1's proof.
type SPRefutation struct {
	Algorithm string
	Kind      SPRefutationKind

	// StarvedDecision is the observer's decision in the starved runs
	// (meaningful for validity violations): the value it decides when it
	// sees only silence and a suspicion.
	StarvedDecision model.Value
	// WitnessInput is the sender input of the violated run.
	WitnessInput model.Value
	// Witness is the violating trace (r'_v in the proof's notation).
	Witness *step.Trace
	// ObserverSteps is how many steps the observer took before deciding.
	ObserverSteps int
	Detail        string
}

// String renders the refutation.
func (r *SPRefutation) String() string {
	return fmt.Sprintf("%s: %v — %s", r.Algorithm, r.Kind, r.Detail)
}

// RefuteSP mechanizes Theorem 3.1's proof against any deterministic SDD
// protocol for the SP model. The proof's runs are constructed literally:
//
//   - r0: the sender crashes from the beginning; the observer suspects it
//     from its first step and receives nothing. Termination forces a
//     decision, say d.
//   - r'v (v ∈ {0,1}): the sender, with input v, takes exactly one step
//     (sending its message), then crashes; the message stays in flight
//     until after the observer decides. The observer's view is
//     indistinguishable from r0, so it decides d again — but the sender
//     was NOT initially crashed, so validity demands the decision be v.
//     Since d cannot equal both 0 and 1, one of r'0, r'1 is a concrete
//     validity violation.
//
// All runs are admissible SP runs: suspicions begin only after the actual
// crash (the engine enforces strong accuracy), the in-flight message is
// delivered — late but finitely — after the decision, and the correct
// observer keeps taking steps.
//
// maxObserverSteps bounds the wait for the observer's decision in the
// starved runs; protocols that never decide there violate termination in
// r0 itself and are refuted on those grounds.
func RefuteSP(alg step.Algorithm, maxObserverSteps int) (*SPRefutation, error) {
	if maxObserverSteps < 1 {
		return nil, fmt.Errorf("sdd: RefuteSP: maxObserverSteps must be positive, got %d", maxObserverSteps)
	}

	// r0: sender initially crashed. The observer must decide.
	r0, err := starvedRun(alg, 0, false, maxObserverSteps)
	if err != nil {
		return nil, err
	}
	if !r0.trace.Decided[DefaultObserver] {
		return &SPRefutation{
			Algorithm: alg.Name(),
			Kind:      SPTerminationViolation,
			Witness:   r0.trace,
			Detail: fmt.Sprintf("with the sender initially crashed and suspected, the observer took %d steps without deciding",
				maxObserverSteps),
		}, nil
	}
	d := r0.trace.DecidedValue[DefaultObserver]

	// r'0 and r'1: one sender step, then crash; message in flight past the
	// decision. The observer's view matches r0, so it decides d in both —
	// verified rather than assumed.
	var witnesses [2]*starved
	for v := model.Value(0); v <= 1; v++ {
		w, err := starvedRun(alg, v, true, maxObserverSteps)
		if err != nil {
			return nil, err
		}
		if !w.trace.Decided[DefaultObserver] {
			return &SPRefutation{
				Algorithm: alg.Name(),
				Kind:      SPTerminationViolation,
				Witness:   w.trace,
				Detail:    "observer failed to decide in a run indistinguishable from r0 (non-deterministic protocol?)",
			}, nil
		}
		if got := w.trace.DecidedValue[DefaultObserver]; got != d {
			return nil, fmt.Errorf("sdd: RefuteSP: observer decided %d in r'%d but %d in r0 despite identical views — protocol is not deterministic",
				int64(got), int64(v), int64(d))
		}
		witnesses[v] = w
	}

	// One of the two inputs differs from d; that run violates validity.
	witnessInput := model.Value(1)
	if d == 1 {
		witnessInput = 0
	}
	w := witnesses[witnessInput]
	bad := FirstViolation(w.trace, Spec{Sender: DefaultSender, Observer: DefaultObserver, Input: witnessInput})
	if bad == nil || bad.Property != "validity" {
		return nil, fmt.Errorf("sdd: RefuteSP: expected a validity violation on r'%d, got %v", int64(witnessInput), bad)
	}
	return &SPRefutation{
		Algorithm:       alg.Name(),
		Kind:            SPValidityViolation,
		StarvedDecision: d,
		WitnessInput:    witnessInput,
		Witness:         w.trace,
		ObserverSteps:   w.observerSteps,
		Detail:          bad.Detail,
	}, nil
}

// starved captures one starved run.
type starved struct {
	trace         *step.Trace
	observerSteps int
}

// starvedRun executes the Theorem 3.1 schedule: optionally one sender step,
// sender crash, observer suspicion from its first step, observer steps with
// all deliveries withheld until it decides, then late delivery of any
// in-flight message (keeping the run admissible).
func starvedRun(alg step.Algorithm, input model.Value, senderSteps bool, maxObserverSteps int) (*starved, error) {
	eng, err := step.NewEngineWithFD(alg, []model.Value{input, 0})
	if err != nil {
		return nil, err
	}
	apply := func(d step.Decision) error {
		if _, err := eng.Apply(d); err != nil {
			return fmt.Errorf("sdd: starvedRun: %w", err)
		}
		return nil
	}
	if senderSteps {
		if err := apply(step.Decision{Proc: DefaultSender}); err != nil {
			return nil, err
		}
	}
	if err := apply(step.Decision{Crash: DefaultSender}); err != nil {
		return nil, err
	}
	// Observer steps, suspecting the sender from its very first step and
	// receiving nothing, until it decides.
	steps := 0
	for ; steps < maxObserverSteps; steps++ {
		d := step.Decision{Proc: DefaultObserver}
		if steps == 0 {
			d.NewSuspicions = []step.Suspicion{{Observer: DefaultObserver, Subject: DefaultSender}}
		}
		if err := apply(d); err != nil {
			return nil, err
		}
		if eng.Trace().Decided[DefaultObserver] {
			steps++
			break
		}
	}
	// Late delivery of anything still in flight, so the asynchronous
	// model's eventual-delivery condition holds on the completed run.
	for {
		v := viewBufferLen(eng)
		if v == 0 {
			break
		}
		deliver := make([]int, v)
		for i := range deliver {
			deliver[i] = i
		}
		if err := apply(step.Decision{Proc: DefaultObserver, Deliver: deliver}); err != nil {
			return nil, err
		}
	}
	tr := eng.Trace()
	if viol := step.CheckEventualDelivery(tr); len(viol) != 0 {
		return nil, fmt.Errorf("sdd: starvedRun: constructed an inadmissible run: %s", viol[0].Error())
	}
	if viol := step.CheckStrongAccuracy(tr); len(viol) != 0 {
		return nil, fmt.Errorf("sdd: starvedRun: accuracy violated: %s", viol[0].Error())
	}
	return &starved{trace: tr, observerSteps: steps}, nil
}

// viewBufferLen returns the number of messages pending for the observer.
func viewBufferLen(eng *step.Engine) int {
	// The engine does not expose buffers directly; infer from the trace:
	// messages sent to the observer minus messages delivered to it.
	tr := eng.Trace()
	sent, recv := 0, 0
	for _, ev := range tr.Events {
		if ev.Kind != step.StepEvent {
			continue
		}
		if ev.Sent != nil && ev.Sent.To == DefaultObserver {
			sent++
		}
		if ev.Proc == DefaultObserver {
			recv += len(ev.Delivered)
		}
	}
	return sent - recv
}
