package trace

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/rounds"
	"repro/internal/sdd"
	"repro/internal/step"
)

func TestRenderRun(t *testing.T) {
	script := &rounds.Script{Plans: []rounds.Plan{
		{Crashes: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}},
	}}
	run, err := rounds.RunAlgorithm(rounds.RS, consensus.FloodSet{}, []model.Value{0, 5, 9}, 1, script)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRun(run)
	for _, want := range []string{
		"FloodSet in RS: n=3 t=1",
		"p1=0 p2=5 p3=9",
		"crashes {p1}",
		"NOT received by {p3}",
		"p1=✝r1",
		"latency degree |r| = 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderRun missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderRunUndecided(t *testing.T) {
	// A1 in the §5.3 RWS scenario leaves nobody undecided, so craft a
	// truncated run instead: FloodSet cut at round 1 with t=1.
	eng, err := rounds.NewEngine(rounds.RS, consensus.FloodSet{}, []model.Value{1, 2}, 1, rounds.WithRoundLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	run, err := eng.Execute(rounds.NoFailures, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRun(run)
	if !strings.Contains(out, "⊥") {
		t.Errorf("undecided marker missing:\n%s", out)
	}
	if strings.Contains(out, "latency degree") {
		t.Errorf("truncated run should not report a latency:\n%s", out)
	}
}

func TestRenderSteps(t *testing.T) {
	alg := sdd.NewSS(1, 1)
	eng, err := step.NewEngine(alg, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	sched := &step.FairScheduler{Stop: step.StopWhenDecided(model.Singleton(sdd.DefaultObserver))}
	tr, err := eng.Run(sched, 100)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSteps(tr, 0)
	if !strings.Contains(out, "p1 steps") || !strings.Contains(out, "p2 decided 1") {
		t.Errorf("RenderSteps output incomplete:\n%s", out)
	}
	// Truncation marker.
	short := RenderSteps(tr, 1)
	if !strings.Contains(short, "more events") {
		t.Errorf("truncation marker missing:\n%s", short)
	}
}

func TestRenderRunPendingDrop(t *testing.T) {
	// RWS: p1 stays alive through round 1 but its message to p3 is pending
	// (weak round synchrony), then p1 crashes in round 2 as obligated.
	script := &rounds.Script{Plans: []rounds.Plan{
		{Drops: map[model.ProcessID]model.ProcSet{1: model.Singleton(3)}},
		{Crashes: map[model.ProcessID]model.ProcSet{1: model.FullSet(3).Remove(1)}},
	}}
	run, err := rounds.RunAlgorithm(rounds.RWS, consensus.FloodSetWS{}, []model.Value{0, 5, 9}, 1, script)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRun(run)
	lines := strings.Split(out, "\n")
	round1 := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "round 1:") {
			round1 = i
		}
	}
	if round1 < 0 {
		t.Fatalf("round 1 header missing:\n%s", out)
	}
	if strings.Contains(lines[round1], "crashes") {
		t.Errorf("round 1 must have no crash (drop by a live sender):\n%s", out)
	}
	if want := "p1 → {p2} (NOT received by {p3})"; !strings.Contains(out, want) {
		t.Errorf("pending-drop line %q missing:\n%s", want, out)
	}
	if !strings.Contains(out, "crashes {p1}") {
		t.Errorf("obligated round-2 crash missing:\n%s", out)
	}
}

func TestRenderStepsTruncationCount(t *testing.T) {
	eng, err := step.NewEngine(sdd.NewSS(4, 4), []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	sched := &step.ScriptScheduler{Decisions: []step.Decision{
		{Proc: 1}, {Proc: 2}, {Proc: 1}, {Proc: 2}, {Proc: 1}, {Proc: 2},
	}}
	tr, err := eng.Run(sched, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := len(tr.Events)
	if total != 6 {
		t.Fatalf("scripted trace has %d events, want 6", total)
	}
	out := RenderSteps(tr, total-2)
	if want := fmt.Sprintf("… (%d more events)", 2); !strings.Contains(out, want) {
		t.Errorf("marker %q missing:\n%s", want, out)
	}
	// The rendered events stop exactly at the cut.
	if got := strings.Count(out, "\n") - 1 - countDecisionLines(tr); got != total-2 {
		t.Errorf("rendered %d event lines, want %d", got, total-2)
	}
	// maxEvents at or above the event count renders everything, no marker.
	for _, m := range []int{total, total + 7, 0} {
		if strings.Contains(RenderSteps(tr, m), "more events") {
			t.Errorf("maxEvents=%d must not truncate", m)
		}
	}
}

func countDecisionLines(tr *step.Trace) int {
	n := 0
	for p := 1; p <= tr.N; p++ {
		if tr.Decided[p] {
			n++
		}
	}
	return n
}
