package trace

import (
	"strings"
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/rounds"
	"repro/internal/sdd"
	"repro/internal/step"
)

func TestRenderRun(t *testing.T) {
	script := &rounds.Script{Plans: []rounds.Plan{
		{Crashes: map[model.ProcessID]model.ProcSet{1: model.Singleton(2)}},
	}}
	run, err := rounds.RunAlgorithm(rounds.RS, consensus.FloodSet{}, []model.Value{0, 5, 9}, 1, script)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRun(run)
	for _, want := range []string{
		"FloodSet in RS: n=3 t=1",
		"p1=0 p2=5 p3=9",
		"crashes {p1}",
		"NOT received by {p3}",
		"p1=✝r1",
		"latency degree |r| = 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderRun missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderRunUndecided(t *testing.T) {
	// A1 in the §5.3 RWS scenario leaves nobody undecided, so craft a
	// truncated run instead: FloodSet cut at round 1 with t=1.
	eng, err := rounds.NewEngine(rounds.RS, consensus.FloodSet{}, []model.Value{1, 2}, 1, rounds.WithRoundLimit(1))
	if err != nil {
		t.Fatal(err)
	}
	run, err := eng.Execute(rounds.NoFailures, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderRun(run)
	if !strings.Contains(out, "⊥") {
		t.Errorf("undecided marker missing:\n%s", out)
	}
	if strings.Contains(out, "latency degree") {
		t.Errorf("truncated run should not report a latency:\n%s", out)
	}
}

func TestRenderSteps(t *testing.T) {
	alg := sdd.NewSS(1, 1)
	eng, err := step.NewEngine(alg, []model.Value{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	sched := &step.FairScheduler{Stop: step.StopWhenDecided(model.Singleton(sdd.DefaultObserver))}
	tr, err := eng.Run(sched, 100)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSteps(tr, 0)
	if !strings.Contains(out, "p1 steps") || !strings.Contains(out, "p2 decided 1") {
		t.Errorf("RenderSteps output incomplete:\n%s", out)
	}
	// Truncation marker.
	short := RenderSteps(tr, 1)
	if !strings.Contains(short, "more events") {
		t.Errorf("truncation marker missing:\n%s", short)
	}
}
