// Package trace renders run records as human-readable narratives: round
// tables for rounds.Run, step listings for step.Trace. The cmd/ssfd-run
// binary and the experiment drivers use it to show counterexample runs in
// the form the paper describes them.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/rounds"
	"repro/internal/step"
)

// RenderRun renders a round-model run.
func RenderRun(run *rounds.Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s in %s: n=%d t=%d\n", run.Algorithm, run.Model, run.N, run.T)
	fmt.Fprintf(&b, "initial values:")
	for p := 1; p <= run.N; p++ {
		fmt.Fprintf(&b, " %v=%d", model.ProcessID(p), int64(run.Initial[p]))
	}
	b.WriteByte('\n')
	for i := range run.Rounds {
		rr := &run.Rounds[i]
		fmt.Fprintf(&b, "round %d: alive %v", rr.Round, rr.AliveStart)
		if !rr.Crashed.Empty() {
			fmt.Fprintf(&b, ", crashes %v", rr.Crashed)
		}
		b.WriteByte('\n')
		for j := 1; j <= run.N; j++ {
			pj := model.ProcessID(j)
			if !rr.AliveStart.Has(pj) {
				continue
			}
			dropped := rr.Sent[j].Minus(rr.Reached[j]).Remove(pj)
			switch {
			case rr.Sent[j].Empty():
				// silent round: nothing to report
			case dropped.Empty():
				fmt.Fprintf(&b, "  %v → %v\n", pj, rr.Reached[j].Remove(pj))
			default:
				fmt.Fprintf(&b, "  %v → %v (NOT received by %v)\n", pj, rr.Reached[j].Remove(pj), dropped)
			}
		}
	}
	b.WriteString("decisions:")
	for p := 1; p <= run.N; p++ {
		pid := model.ProcessID(p)
		switch {
		case run.DecidedAt[p] != 0:
			fmt.Fprintf(&b, " %v=%d@r%d", pid, int64(run.DecisionOf[p]), run.DecidedAt[p])
		case run.CrashRound[p] != 0:
			fmt.Fprintf(&b, " %v=✝r%d", pid, run.CrashRound[p])
		default:
			fmt.Fprintf(&b, " %v=⊥", pid)
		}
	}
	b.WriteByte('\n')
	if lat, ok := run.Latency(); ok {
		fmt.Fprintf(&b, "latency degree |r| = %d\n", lat)
	}
	return b.String()
}

// RenderSteps renders a step-level trace, limiting output to maxEvents
// events (0 = all).
func RenderSteps(tr *step.Trace, maxEvents int) string {
	var b strings.Builder
	events := tr.Events
	truncated := false
	if maxEvents > 0 && len(events) > maxEvents {
		events = events[:maxEvents]
		truncated = true
	}
	for _, ev := range events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	if truncated {
		fmt.Fprintf(&b, "… (%d more events)\n", len(tr.Events)-maxEvents)
	}
	for p := 1; p <= tr.N; p++ {
		pid := model.ProcessID(p)
		if tr.Decided[p] {
			fmt.Fprintf(&b, "%v decided %d at its local step %d\n",
				pid, int64(tr.DecidedValue[p]), tr.DecidedAtLocal[p])
		}
	}
	return b.String()
}
