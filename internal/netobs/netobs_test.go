package netobs_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/netobs"
	"repro/internal/obs"
	"repro/internal/rounds"
	"repro/internal/runtime"
	"repro/internal/wire"
)

func findAlg(t *testing.T, name string) rounds.Algorithm {
	t.Helper()
	for _, a := range consensus.All() {
		if a.Name() == name {
			return a
		}
	}
	t.Fatalf("algorithm %q not registered", name)
	return nil
}

func TestWireStatsPerKind(t *testing.T) {
	reg := obs.NewRegistry()
	ws := netobs.NewWireStats(reg)
	c := wire.Codec{Tap: ws}

	envs := []wire.Envelope{
		{From: 1, To: 2, Round: 1, Kind: wire.KindNull},
		{From: 1, To: 2, Round: 1, Kind: wire.KindHeartbeat},
		{From: 1, To: 2, Round: 1, Kind: wire.KindW, Payload: consensus.WMsg{W: model.NewValueSet(0, 1, 2)}},
		{From: 1, To: 2, Round: 1, Kind: wire.KindD, Payload: consensus.DMsg{V: 5}},
	}
	var wantMsgs, wantBytes int64
	for _, e := range envs {
		data, err := c.Encode(e)
		if err != nil {
			t.Fatalf("encode %v: %v", e.Kind, err)
		}
		wantMsgs++
		wantBytes += int64(len(data))
		if _, err := c.Decode(data); err != nil {
			t.Fatalf("decode %v: %v", e.Kind, err)
		}
	}

	msgs, b := ws.Encoded()
	if msgs != wantMsgs || b != wantBytes {
		t.Fatalf("Encoded() = (%d, %d), want (%d, %d)", msgs, b, wantMsgs, wantBytes)
	}
	dm, db := ws.DataEncoded()
	if dm != wantMsgs-1 {
		t.Fatalf("DataEncoded msgs = %d, want %d (heartbeat excluded)", dm, wantMsgs-1)
	}
	if db >= b {
		t.Fatalf("DataEncoded bytes %d should be below total %d", db, b)
	}
	if hb := ws.Heartbeats(); hb != 1 {
		t.Fatalf("Heartbeats() = %d, want 1", hb)
	}

	per := ws.PerKind()
	if len(per) != 4 {
		t.Fatalf("PerKind() has %d entries, want 4: %+v", len(per), per)
	}
	for _, kt := range per {
		if kt.Encoded != 1 || kt.Decoded != 1 {
			t.Fatalf("kind %s: encoded=%d decoded=%d, want 1/1", kt.Kind, kt.Encoded, kt.Decoded)
		}
		if kt.EncodedBytes != kt.DecodedBytes {
			t.Fatalf("kind %s: encode/decode byte mismatch: %d vs %d", kt.Kind, kt.EncodedBytes, kt.DecodedBytes)
		}
	}

	// The registry counters mirror the private totals.
	snap := reg.Snapshot()
	if got := snap.Counter(obs.Label(netobs.MetricWireEncoded, "kind", "W")); got != 1 {
		t.Fatalf("registry W encode counter = %d, want 1", got)
	}

	// A nil tap and an unknown kind are both safely ignored.
	var nilWS *netobs.WireStats
	nilWS.OnEncode(wire.KindW, 3)
	ws.OnEncode(wire.Kind(200), 3)
	if m, _ := ws.Encoded(); m != wantMsgs {
		t.Fatalf("unknown kind leaked into totals: %d", m)
	}
	if nilWS.PerKind() != nil {
		t.Fatal("nil WireStats should have no kinds")
	}
}

// TestClusterCostConservation is the no-faults conservation property: with
// every encode followed by exactly one transport send, the sum of per-link
// bytes equals the sum over message types of size × count, and after the
// network has drained, sends equal deliveries plus transport drops.
func TestClusterCostConservation(t *testing.T) {
	for _, kind := range []rounds.ModelKind{rounds.RS, rounds.RWS} {
		t.Run(kind.String(), func(t *testing.T) {
			alg := findAlg(t, "FloodSet")
			if kind == rounds.RWS {
				alg = findAlg(t, "FloodSetWS")
			}
			cfg := runtime.ClusterConfig{
				Kind: kind, Initial: []model.Value{3, 1, 2}, T: 1,
				Metrics: obs.NewRegistry(),
			}
			if kind == rounds.RS {
				cfg.RoundDuration = 10 * time.Millisecond
			}
			cr, err := runtime.RunCluster(alg, cfg)
			if err != nil {
				t.Fatalf("RunCluster: %v", err)
			}
			if cr.Cost == nil {
				t.Fatal("run reported no cost summary")
			}
			if cr.Cost.Decisions != 3 {
				t.Fatalf("decisions = %d, want 3", cr.Cost.Decisions)
			}
			if cr.Cost.MessagesPerDecision <= 0 || cr.Cost.BytesPerDecision <= 0 {
				t.Fatalf("per-decision figures not populated: %+v", cr.Cost)
			}

			// Conservation: Σ per-link bytes == Σ per-type size × count.
			var wireMsgs, wireBytes int64
			for _, kt := range cr.WireKinds {
				wireMsgs += kt.Encoded
				wireBytes += kt.EncodedBytes
			}
			tot := cr.Links.Totals()
			if tot.MsgsSent != wireMsgs || tot.BytesSent != wireBytes {
				t.Fatalf("transport sent (%d msgs, %d B) != wire encoded (%d msgs, %d B)",
					tot.MsgsSent, tot.BytesSent, wireMsgs, wireBytes)
			}
			var linkMsgs, linkBytes int64
			for _, l := range cr.Links.SortedLinks() {
				lt := cr.Links.PerLink()[l]
				linkMsgs += lt.MsgsSent
				linkBytes += lt.BytesSent
			}
			if linkMsgs != wireMsgs || linkBytes != wireBytes {
				t.Fatalf("per-link sums (%d msgs, %d B) != wire encoded (%d msgs, %d B)",
					linkMsgs, linkBytes, wireMsgs, wireBytes)
			}
			// Delivery conservation holds for RS, where the round barrier
			// drains the network before teardown; an RWS run can have
			// heartbeats still in flight when the network closes, and a
			// cancelled delivery is neither received nor dropped.
			if kind == rounds.RS && tot.MsgsSent != tot.MsgsReceived+tot.Dropped {
				t.Fatalf("sent %d != received %d + dropped %d",
					tot.MsgsSent, tot.MsgsReceived, tot.Dropped)
			}

			// The cost gauges landed on the run's registry.
			snap := cfg.Metrics.Snapshot()
			if got := snap.Gauges[netobs.MetricCostDecisions]; got != 3 {
				t.Fatalf("decisions gauge = %d, want 3", got)
			}
			if snap.Gauges[netobs.MetricCostMessagesPerDecisionMilli] <= 0 {
				t.Fatal("messages/decision gauge not set")
			}
		})
	}
}

// TestInjectorConservation drives a deterministic send sequence through a
// drop+dup injector and checks the injector-level conservation law:
// transport sends == logical sends − injected drops + injected dups, and
// every transport send resolves into a delivery (no overflow here).
func TestInjectorConservation(t *testing.T) {
	reg := obs.NewRegistry()
	nw := runtime.NewChanNetwork(2, runtime.ChanConfig{
		MaxDelay: 100 * time.Microsecond, Metrics: reg,
	})
	inj := faults.NewInjector(faults.Config{
		Seed:    42,
		Default: faults.LinkFaults{Drop: 0.3, Duplicate: 0.2},
		Metrics: reg,
	})
	ep := inj.Wrap(nw.Endpoint(1))

	const sends = 500
	payload := []byte{1, 2, 0, byte(wire.KindNull)}
	for i := 0; i < sends; i++ {
		if err := ep.Send(2, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := inj.Close(); err != nil {
		t.Fatalf("injector close: %v", err)
	}
	// Let the in-flight (delayed) deliveries resolve before closing: Close
	// cancels pending deliveries, which would leave them neither received
	// nor dropped.
	deadline := time.Now().Add(5 * time.Second)
	for {
		tot := nw.Telemetry().Totals()
		if tot.MsgsReceived+tot.Dropped == tot.MsgsSent || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := nw.Close(); err != nil {
		t.Fatalf("network close: %v", err)
	}

	snap := reg.Snapshot()
	drops := snap.Counter(obs.Label(faults.MetricDropped, "reason", "loss"))
	dups := snap.Counter(faults.MetricDuplicated)
	if drops == 0 || dups == 0 {
		t.Fatalf("seeded injector fired no faults (drops=%d dups=%d)", drops, dups)
	}
	tot := nw.Telemetry().Totals()
	if want := int64(sends) - drops + dups; tot.MsgsSent != want {
		t.Fatalf("transport sends = %d, want %d (%d logical − %d drops + %d dups)",
			tot.MsgsSent, want, sends, drops, dups)
	}
	if tot.MsgsReceived+tot.Dropped != tot.MsgsSent {
		t.Fatalf("received %d + dropped %d != sent %d", tot.MsgsReceived, tot.Dropped, tot.MsgsSent)
	}
}

func TestLinkTapQueueHighWaterAndResilience(t *testing.T) {
	reg := obs.NewRegistry()
	lt := netobs.NewLinkTap(reg, "test", nil)
	lt.QueueDepth(1, 2, 3)
	lt.QueueDepth(1, 2, 9)
	lt.QueueDepth(1, 2, 5) // high water stays 9
	lt.Reconnect(1, 2)
	lt.Retry(1, 2)
	lt.Retry(1, 2)
	lt.Dropped(1, 2, netobs.DropGiveUp)

	tot := lt.Totals()
	if tot.QueueHighWater != 9 {
		t.Fatalf("queue high water = %d, want 9", tot.QueueHighWater)
	}
	if tot.Reconnects != 1 || tot.Retries != 2 || tot.Dropped != 1 {
		t.Fatalf("resilience totals: %+v", tot)
	}
	per := lt.PerLink()[netobs.Link{From: 1, To: 2}]
	if per.QueueHighWater != 9 || per.Retries != 2 {
		t.Fatalf("per-link totals: %+v", per)
	}
	snap := reg.Snapshot()
	name := obs.Label(obs.Label(netobs.MetricLinkQueueHighWater, "transport", "test"), "link", "p1>p2")
	if got := snap.Gauges[name]; got != 9 {
		t.Fatalf("high-water gauge = %d, want 9", got)
	}
	dropName := obs.Label(obs.Label(obs.Label(netobs.MetricLinkMessagesDropped,
		"transport", "test"), "link", "p1>p2"), "reason", netobs.DropGiveUp)
	if got := snap.Counter(dropName); got != 1 {
		t.Fatalf("reasoned drop counter = %d, want 1", got)
	}

	// Nil taps absorb everything.
	var nilTap *netobs.LinkTap
	nilTap.Sent(1, 2, 4)
	nilTap.Received(1, 2, 4)
	nilTap.Dropped(1, 2, netobs.DropLoss)
	nilTap.QueueDepth(1, 2, 1)
	nilTap.Reconnect(1, 2)
	nilTap.Retry(1, 2)
	nilTap.SetRecorder(nil)
	if nilTap.PerLink() != nil || nilTap.SortedLinks() != nil {
		t.Fatal("nil tap should report nothing")
	}
	if (nilTap.Totals() != netobs.LinkTotals{}) {
		t.Fatal("nil tap totals should be zero")
	}
}

func TestComputeCost(t *testing.T) {
	reg := obs.NewRegistry()
	ws := netobs.NewWireStats(reg)
	c := wire.Codec{Tap: ws}
	for i := 0; i < 4; i++ {
		if _, err := c.Encode(wire.Envelope{From: 1, To: 2, Round: 1, Kind: wire.KindNull}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Encode(wire.Envelope{From: 1, To: 2, Round: 1, Kind: wire.KindHeartbeat}); err != nil {
		t.Fatal(err)
	}

	// Without a link tap the codec totals stand in for transport totals.
	cost := netobs.ComputeCost(2, ws, nil)
	if cost.Messages != 5 || cost.DataMessages != 4 || cost.Heartbeats != 1 {
		t.Fatalf("cost totals: %+v", cost)
	}
	if cost.MessagesPerDecision != 2.5 || cost.DataMessagesPerDecision != 2 {
		t.Fatalf("per-decision: %+v", cost)
	}
	// The control split carries the amortization headline: the lone
	// heartbeat is control traffic, spread over both decisions.
	if cost.ControlMessages != 1 || cost.ControlBytes == 0 {
		t.Fatalf("control totals: %+v", cost)
	}
	if cost.ControlMessagesPerDecision != 0.5 {
		t.Fatalf("control per-decision: %+v", cost)
	}
	if !strings.Contains(cost.String(), "msgs/decision") || !strings.Contains(cost.String(), "control:") {
		t.Fatalf("String() = %q", cost.String())
	}

	// Zero decisions: totals reported, ratios zero.
	zero := netobs.ComputeCost(0, ws, nil)
	if zero.MessagesPerDecision != 0 || !strings.Contains(zero.String(), "no decisions") {
		t.Fatalf("zero-decision cost: %+v / %q", zero, zero.String())
	}
	var nilCost *obs.CostSummary
	if nilCost.String() != "cost: (not measured)" {
		t.Fatalf("nil cost String() = %q", nilCost.String())
	}

	netobs.PublishCost(reg, cost)
	snap := reg.Snapshot()
	if got := snap.Gauges[netobs.MetricCostMessagesPerDecisionMilli]; got != 2500 {
		t.Fatalf("messages/decision milli gauge = %d, want 2500", got)
	}
	netobs.PublishCost(nil, cost) // no-op
	netobs.PublishCost(reg, nil)  // no-op
}

func TestLinkString(t *testing.T) {
	if s := (netobs.Link{From: 3, To: 1}).String(); s != "p3>p1" {
		t.Fatalf("Link.String() = %q", s)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	rec := netobs.NewRecorder(4, nil)
	for i := 0; i < 10; i++ {
		rec.Record(netobs.Record{Cat: netobs.CatNet, Kind: "send", Bytes: i})
	}
	got := rec.Records()
	if len(got) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(got))
	}
	for i, r := range got {
		if wantSeq := int64(6 + i); r.Seq != wantSeq || r.Bytes != 6+i {
			t.Fatalf("record %d = %+v, want seq/bytes %d", i, r, wantSeq)
		}
	}
	var buf bytes.Buffer
	if err := rec.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := netobs.ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.Header.Dropped != 6 || d.Header.Capacity != 4 || d.Header.Count != 4 {
		t.Fatalf("dump header: %+v", d.Header)
	}

	// Nil recorder: every entry point is a no-op.
	var nilRec *netobs.Recorder
	nilRec.Record(netobs.Record{})
	nilRec.Emit(obs.Event{Type: obs.EventCrash})
	if nilRec.Records() != nil {
		t.Fatal("nil recorder should hold nothing")
	}
	if err := nilRec.WriteDump(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil recorder dump: %v", err)
	}
}

func TestRecorderSinkCaptureAndForward(t *testing.T) {
	next := &obs.Collector{}
	rec := netobs.NewRecorder(16, next)
	events := []obs.Event{
		{Type: obs.EventSuspect, Proc: 3, By: 1, Round: 2},
		{Type: obs.EventRetract, Proc: 3, By: 1, Round: 3},
		{Type: obs.EventCrash, Proc: 2, Round: 1},
		{Type: obs.EventRecover, Proc: 2, Round: 2},
		{Type: obs.EventDecide, Proc: 1, Round: 2, Value: obs.Int64(7)},
		{Type: obs.EventPartition, Round: 1},
		{Type: obs.EventHeal, Round: 2},
		{Type: obs.EventRoundStart, Round: 1}, // not recorded, still forwarded
	}
	for _, ev := range events {
		rec.Emit(ev)
	}
	if got := len(next.Events()); got != len(events) {
		t.Fatalf("forwarded %d events, want %d", got, len(events))
	}
	recs := rec.Records()
	if len(recs) != 7 {
		t.Fatalf("captured %d records, want 7: %+v", len(recs), recs)
	}
	if recs[0].Cat != netobs.CatFD || recs[0].Kind != "suspect" || recs[0].Note != "by=p1" {
		t.Fatalf("suspect record: %+v", recs[0])
	}
	if recs[4].Kind != "decide" || recs[4].Note != "v=7" {
		t.Fatalf("decide record: %+v", recs[4])
	}
}

// TestDumpDeterministic: the same record sequence produces byte-identical
// dumps — the fixed-seed replay property the flight recorder guarantees.
func TestDumpDeterministic(t *testing.T) {
	build := func() []byte {
		rec := netobs.NewRecorder(128, nil)
		lt := netobs.NewLinkTap(obs.NewRegistry(), "chan", rec)
		for i := 0; i < 40; i++ {
			from := model.ProcessID(1 + i%3)
			to := model.ProcessID(1 + (i+1)%3)
			lt.Sent(from, to, 4+i%5)
			if i%7 == 0 {
				lt.Dropped(from, to, netobs.DropLoss)
			} else {
				lt.Received(from, to, 4+i%5)
			}
		}
		rec.Emit(obs.Event{Type: obs.EventDecide, Proc: 1, Round: 2, Value: obs.Int64(3)})
		var buf bytes.Buffer
		if err := rec.WriteDump(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("dumps of identical record sequences differ")
	}

	// And the dump round-trips: parse, re-serialize, byte-compare.
	d, err := netobs.ReadDump(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	rec2 := netobs.NewRecorder(128, nil)
	for _, r := range d.Records {
		rec2.Record(r)
	}
	var buf2 bytes.Buffer
	if err := rec2.WriteDump(&buf2); err != nil {
		t.Fatal(err)
	}
	d2, err := netobs.ReadDump(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Records) != len(d.Records) {
		t.Fatalf("round-trip lost records: %d vs %d", len(d2.Records), len(d.Records))
	}
	for i := range d.Records {
		if d.Records[i] != d2.Records[i] {
			t.Fatalf("record %d changed in round-trip: %+v vs %+v", i, d.Records[i], d2.Records[i])
		}
	}
}

func TestDumpFileAndErrors(t *testing.T) {
	rec := netobs.NewRecorder(0, nil) // default capacity
	rec.Record(netobs.Record{Cat: netobs.CatNet, Kind: "send", Link: "p1>p2", Bytes: 6})
	path := t.TempDir() + "/flight.jsonl"
	if err := rec.DumpTo(path); err != nil {
		t.Fatal(err)
	}
	d, err := netobs.ReadDumpFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Header.Capacity != netobs.DefaultFlightCapacity || d.Header.Count != 1 {
		t.Fatalf("header: %+v", d.Header)
	}

	if _, err := netobs.ReadDump(strings.NewReader("")); err == nil {
		t.Fatal("empty dump should fail")
	}
	if _, err := netobs.ReadDump(strings.NewReader("{bad json\n")); err == nil {
		t.Fatal("corrupt header should fail")
	}
	if _, err := netobs.ReadDump(strings.NewReader(`{"flight":9,"count":0}` + "\n")); err == nil {
		t.Fatal("unknown version should fail")
	}
	if _, err := netobs.ReadDump(strings.NewReader(`{"flight":1,"count":2}` + "\n" + `{"seq":0}` + "\n")); err == nil {
		t.Fatal("count mismatch should fail")
	}
	if _, err := netobs.ReadDump(strings.NewReader(`{"flight":1,"count":1}` + "\n" + "not json\n")); err == nil {
		t.Fatal("corrupt record should fail")
	}
	if _, err := netobs.ReadDumpFile(path + ".missing"); err == nil {
		t.Fatal("missing file should fail")
	}
}

// TestFlightThroughCluster: a seeded faulty cluster records injector and
// transport activity into the flight ring, and the dump carries it.
func TestFlightThroughCluster(t *testing.T) {
	rec := netobs.NewRecorder(8192, nil)
	cfg := runtime.ClusterConfig{
		Kind: rounds.RS, Initial: []model.Value{0, 1, 2}, T: 1,
		RoundDuration: 10 * time.Millisecond,
		Metrics:       obs.NewRegistry(),
		Events:        rec,
		Flight:        rec,
		Faults: &faults.Config{
			Seed:    11,
			Default: faults.LinkFaults{Drop: 0.2, Duplicate: 0.1},
		},
	}
	cr, err := runtime.RunCluster(findAlg(t, "FloodSet"), cfg)
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if cr.Cost == nil || cr.Cost.Decisions == 0 {
		t.Fatalf("faulty run still decides under RS; cost = %+v", cr.Cost)
	}
	var sends, injected, decides int
	for _, r := range rec.Records() {
		switch r.Kind {
		case "send":
			sends++
		case "inject-drop", "inject-dup":
			injected++
		case "decide":
			decides++
		}
	}
	if sends == 0 || injected == 0 || decides == 0 {
		t.Fatalf("flight ring misses categories: sends=%d injected=%d decides=%d",
			sends, injected, decides)
	}
}

// TestKindLabelsExhaustive: every wire kind pre-registers its counter
// families so a scrape sees the full table at zero.
func TestKindLabelsExhaustive(t *testing.T) {
	reg := obs.NewRegistry()
	netobs.NewWireStats(reg)
	snap := reg.Snapshot()
	for _, k := range wire.Kinds() {
		name := obs.Label(netobs.MetricWireEncoded, "kind", k.String())
		if _, ok := snap.Counters[name]; !ok {
			t.Fatalf("kind %v not pre-registered (%s missing)", k, name)
		}
	}
	if len(wire.Kinds()) != 10 {
		t.Fatalf("wire.Kinds() = %d entries, want 10", len(wire.Kinds()))
	}
}

func TestSortedLinksOrder(t *testing.T) {
	lt := netobs.NewLinkTap(obs.NewRegistry(), "chan", nil)
	for _, l := range []netobs.Link{{From: 2, To: 1}, {From: 1, To: 3}, {From: 1, To: 2}} {
		lt.Sent(l.From, l.To, 1)
	}
	got := lt.SortedLinks()
	want := []netobs.Link{{From: 1, To: 2}, {From: 1, To: 3}, {From: 2, To: 1}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("SortedLinks() = %v, want %v", got, want)
	}
}
