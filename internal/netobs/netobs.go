// Package netobs is the transport telemetry layer of the live runtime: it
// accounts for every message the system encodes, sends, receives or loses,
// and turns the totals into the cost figures the paper's efficiency story
// needs alongside its round counts — messages per decision and bytes per
// decision.
//
// Three instruments cooperate:
//
//   - WireStats implements wire.Tap and counts every codec conversion per
//     message type (count and byte size, encode and decode side).
//   - LinkTap carries the per-link accounting of a transport flavour:
//     send/receive message and byte counters per ordered link, drop
//     counters by reason, queue-depth high-water gauges, and the TCP
//     reconnect/retransmit counters — while still maintaining the
//     aggregate {transport="..."} counter families the earlier PRs
//     exposed.
//   - Recorder (recorder.go) is the flight recorder: a fixed-size ring of
//     recent transport/FD records dumped as deterministic JSONL on crash,
//     conformance failure or SIGQUIT.
//
// All counters land on an obs.Registry (visible in the Prometheus
// exposition); each instrument additionally keeps private atomic totals so
// a single run's cost can be computed even when the registry is shared
// across runs. Everything is nil-receiver safe: an un-instrumented
// transport holds nil taps and pays only a branch.
package netobs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Metric names exported by the telemetry layer. Wire metrics carry a
// {kind="..."} label; link metrics carry {transport="...",link="p1>p2"}
// (drops additionally {reason="..."}); the aggregate transport families
// keep the names established in earlier PRs.
const (
	MetricWireEncoded      = "ssfd_wire_encoded_total"
	MetricWireEncodedBytes = "ssfd_wire_encoded_bytes_total"
	MetricWireDecoded      = "ssfd_wire_decoded_total"
	MetricWireDecodedBytes = "ssfd_wire_decoded_bytes_total"

	MetricLinkMessagesSent     = "ssfd_link_messages_sent_total"
	MetricLinkMessagesReceived = "ssfd_link_messages_received_total"
	MetricLinkMessagesDropped  = "ssfd_link_messages_dropped_total"
	MetricLinkBytesSent        = "ssfd_link_bytes_sent_total"
	MetricLinkBytesReceived    = "ssfd_link_bytes_received_total"
	MetricLinkQueueHighWater   = "ssfd_link_queue_high_water"

	MetricTransportMessagesSent     = "ssfd_transport_messages_sent_total"
	MetricTransportMessagesReceived = "ssfd_transport_messages_received_total"
	MetricTransportMessagesDropped  = "ssfd_transport_messages_dropped_total"
	MetricTransportBytesSent        = "ssfd_transport_bytes_sent_total"
	MetricTransportBytesReceived    = "ssfd_transport_bytes_received_total"
	MetricTransportReconnects       = "ssfd_transport_reconnects_total"
	MetricTransportRetries          = "ssfd_transport_retries_total"

	// Cost gauges, set once per live run. Gauges are integral, so the
	// fractional per-decision ratios are exposed in milli-units (value ×
	// 1000); the exact floats travel in the cost event and CLI summaries.
	MetricCostMessagesPerDecisionMilli = "ssfd_cost_messages_per_decision_milli"
	MetricCostBytesPerDecisionMilli    = "ssfd_cost_bytes_per_decision_milli"
	MetricCostDecisions                = "ssfd_cost_decisions"
)

// Drop reasons used by the runtime transports.
const (
	DropLoss     = "loss"     // injected link loss (negative delay hook)
	DropOverflow = "overflow" // bounded inbox or send queue was full
	DropGiveUp   = "giveup"   // TCP frame abandoned after its retry budget
)

// WireStats counts codec traffic per message type. It implements wire.Tap;
// hand it to a wire.Codec and every successful Encode/Decode lands in both
// the registry counters and the private per-kind totals.
type WireStats struct {
	perKind [wire.MaxKind + 1]struct {
		encMsgs, encBytes, decMsgs, decBytes atomic.Int64
	}
	enc, encB, dec, decB [wire.MaxKind + 1]*obs.Counter
}

var _ wire.Tap = (*WireStats)(nil)

// NewWireStats registers the per-kind counter families on reg (they appear
// in the exposition immediately, at zero) and returns the tap. A nil
// registry yields a tap that only keeps private totals.
func NewWireStats(reg *obs.Registry) *WireStats {
	ws := &WireStats{}
	for _, k := range wire.Kinds() {
		label := func(name string) *obs.Counter {
			return reg.Counter(obs.Label(name, "kind", k.String()))
		}
		ws.enc[k] = label(MetricWireEncoded)
		ws.encB[k] = label(MetricWireEncodedBytes)
		ws.dec[k] = label(MetricWireDecoded)
		ws.decB[k] = label(MetricWireDecodedBytes)
	}
	return ws
}

// valid reports whether k indexes the per-kind tables.
func validKind(k wire.Kind) bool { return k >= wire.KindNull && k <= wire.MaxKind }

// OnEncode implements wire.Tap.
func (ws *WireStats) OnEncode(k wire.Kind, bytes int) {
	if ws == nil || !validKind(k) {
		return
	}
	ws.perKind[k].encMsgs.Add(1)
	ws.perKind[k].encBytes.Add(int64(bytes))
	ws.enc[k].Inc()
	ws.encB[k].Add(int64(bytes))
}

// OnDecode implements wire.Tap.
func (ws *WireStats) OnDecode(k wire.Kind, bytes int) {
	if ws == nil || !validKind(k) {
		return
	}
	ws.perKind[k].decMsgs.Add(1)
	ws.perKind[k].decBytes.Add(int64(bytes))
	ws.dec[k].Inc()
	ws.decB[k].Add(int64(bytes))
}

// KindTotals is one message type's accounting.
type KindTotals struct {
	Kind         string `json:"kind"`
	Encoded      int64  `json:"encoded"`
	EncodedBytes int64  `json:"encoded_bytes"`
	Decoded      int64  `json:"decoded"`
	DecodedBytes int64  `json:"decoded_bytes"`
}

// PerKind returns the non-zero per-kind totals in kind-tag order.
func (ws *WireStats) PerKind() []KindTotals {
	if ws == nil {
		return nil
	}
	var out []KindTotals
	for _, k := range wire.Kinds() {
		s := &ws.perKind[k]
		kt := KindTotals{
			Kind:         k.String(),
			Encoded:      s.encMsgs.Load(),
			EncodedBytes: s.encBytes.Load(),
			Decoded:      s.decMsgs.Load(),
			DecodedBytes: s.decBytes.Load(),
		}
		if kt.Encoded != 0 || kt.Decoded != 0 {
			out = append(out, kt)
		}
	}
	return out
}

// Encoded sums encode-side totals across every kind.
func (ws *WireStats) Encoded() (msgs, bytes int64) {
	if ws == nil {
		return 0, 0
	}
	for _, k := range wire.Kinds() {
		msgs += ws.perKind[k].encMsgs.Load()
		bytes += ws.perKind[k].encBytes.Load()
	}
	return msgs, bytes
}

// DataEncoded sums encode-side totals across the round-message kinds —
// everything except detector control traffic (heartbeats, pings, acks, ring
// digests), whose volume is a wall-clock artifact of the detector period
// rather than a property of the algorithm.
func (ws *WireStats) DataEncoded() (msgs, bytes int64) {
	if ws == nil {
		return 0, 0
	}
	for _, k := range wire.Kinds() {
		if k.Control() {
			continue
		}
		msgs += ws.perKind[k].encMsgs.Load()
		bytes += ws.perKind[k].encBytes.Load()
	}
	return msgs, bytes
}

// Heartbeats returns the encode-side detector control-message count —
// heartbeat beacons plus the zoo detectors' pings, acks and ring digests.
func (ws *WireStats) Heartbeats() int64 {
	if ws == nil {
		return 0
	}
	var msgs int64
	for _, k := range wire.Kinds() {
		if k.Control() {
			msgs += ws.perKind[k].encMsgs.Load()
		}
	}
	return msgs
}

// ControlEncoded sums encode-side totals across the detector control kinds
// — the detector zoo's message-cost figure (count and bytes).
func (ws *WireStats) ControlEncoded() (msgs, bytes int64) {
	if ws == nil {
		return 0, 0
	}
	for _, k := range wire.Kinds() {
		if !k.Control() {
			continue
		}
		msgs += ws.perKind[k].encMsgs.Load()
		bytes += ws.perKind[k].encBytes.Load()
	}
	return msgs, bytes
}

// Link is one ordered sender→receiver pair.
type Link struct {
	From, To model.ProcessID
}

// String renders the link as it appears in metric labels and flight
// records, e.g. "p1>p2".
func (l Link) String() string { return fmt.Sprintf("p%d>p%d", l.From, l.To) }

// LinkTotals is one link's (or one transport's aggregate) accounting.
type LinkTotals struct {
	MsgsSent, BytesSent         int64
	MsgsReceived, BytesReceived int64
	Dropped                     int64
	Reconnects, Retries         int64
	QueueHighWater              int64
}

// linkCounters pairs one link's registry instruments with its private
// totals.
type linkCounters struct {
	msgsSent, bytesSent, msgsRecv, bytesRecv     atomic.Int64
	dropped, reconnects, retries, queueHW        atomic.Int64
	cMsgsSent, cBytesSent, cMsgsRecv, cBytesRecv *obs.Counter
	cReconnects, cRetries                        *obs.Counter
	gQueueHW                                     *obs.Gauge
}

// LinkTap is one transport flavour's telemetry: per-link counters plus the
// aggregate {transport="..."} families. The runtime networks own one each
// and report every send, receive, drop, queue depth, reconnect and retry
// through it; an optional Recorder sees the same stream as flight records.
type LinkTap struct {
	reg     *obs.Registry
	flavour string
	rec     *Recorder

	// Aggregate registry counters (the pre-existing metric surface).
	aSent, aSentB, aRecv, aRecvB, aDropped *obs.Counter
	aReconnects, aRetries                  *obs.Counter
	// Aggregate private totals for per-run cost accounting.
	tSent, tSentB, tRecv, tRecvB, tDropped atomic.Int64
	tReconnects, tRetries                  atomic.Int64

	mu    sync.RWMutex
	links map[Link]*linkCounters
}

// NewLinkTap builds the flavour's telemetry on reg ("chan", "tcp", ...),
// optionally mirroring every record into the flight recorder.
func NewLinkTap(reg *obs.Registry, flavour string, rec *Recorder) *LinkTap {
	label := func(name string) *obs.Counter {
		return reg.Counter(obs.Label(name, "transport", flavour))
	}
	return &LinkTap{
		reg:         reg,
		flavour:     flavour,
		rec:         rec,
		aSent:       label(MetricTransportMessagesSent),
		aSentB:      label(MetricTransportBytesSent),
		aRecv:       label(MetricTransportMessagesReceived),
		aRecvB:      label(MetricTransportBytesReceived),
		aDropped:    label(MetricTransportMessagesDropped),
		aReconnects: label(MetricTransportReconnects),
		aRetries:    label(MetricTransportRetries),
		links:       make(map[Link]*linkCounters),
	}
}

// SetRecorder attaches (or detaches, with nil) the flight recorder. Call
// before traffic flows; the field is not synchronized against concurrent
// taps.
func (lt *LinkTap) SetRecorder(rec *Recorder) {
	if lt == nil {
		return
	}
	lt.rec = rec
}

// link returns (creating on first use) the per-link instrument set.
func (lt *LinkTap) link(l Link) *linkCounters {
	lt.mu.RLock()
	lc := lt.links[l]
	lt.mu.RUnlock()
	if lc != nil {
		return lc
	}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lc = lt.links[l]; lc != nil {
		return lc
	}
	label := func(name string) string {
		return obs.Label(obs.Label(name, "transport", lt.flavour), "link", l.String())
	}
	lc = &linkCounters{
		cMsgsSent:   lt.reg.Counter(label(MetricLinkMessagesSent)),
		cBytesSent:  lt.reg.Counter(label(MetricLinkBytesSent)),
		cMsgsRecv:   lt.reg.Counter(label(MetricLinkMessagesReceived)),
		cBytesRecv:  lt.reg.Counter(label(MetricLinkBytesReceived)),
		cReconnects: lt.reg.Counter(label(MetricTransportReconnects)),
		cRetries:    lt.reg.Counter(label(MetricTransportRetries)),
		gQueueHW:    lt.reg.Gauge(label(MetricLinkQueueHighWater)),
	}
	lt.links[l] = lc
	return lc
}

// Sent records one message handed to the transport for delivery.
func (lt *LinkTap) Sent(from, to model.ProcessID, bytes int) {
	if lt == nil {
		return
	}
	lc := lt.link(Link{from, to})
	lc.msgsSent.Add(1)
	lc.bytesSent.Add(int64(bytes))
	lc.cMsgsSent.Inc()
	lc.cBytesSent.Add(int64(bytes))
	lt.tSent.Add(1)
	lt.tSentB.Add(int64(bytes))
	lt.aSent.Inc()
	lt.aSentB.Add(int64(bytes))
	lt.rec.Record(Record{Cat: CatNet, Kind: "send", Transport: lt.flavour,
		Link: Link{from, to}.String(), Bytes: bytes})
}

// Received records one message delivered to its destination inbox.
func (lt *LinkTap) Received(from, to model.ProcessID, bytes int) {
	if lt == nil {
		return
	}
	lc := lt.link(Link{from, to})
	lc.msgsRecv.Add(1)
	lc.bytesRecv.Add(int64(bytes))
	lc.cMsgsRecv.Inc()
	lc.cBytesRecv.Add(int64(bytes))
	lt.tRecv.Add(1)
	lt.tRecvB.Add(int64(bytes))
	lt.aRecv.Inc()
	lt.aRecvB.Add(int64(bytes))
	lt.rec.Record(Record{Cat: CatNet, Kind: "recv", Transport: lt.flavour,
		Link: Link{from, to}.String(), Bytes: bytes})
}

// Dropped records one message the transport itself lost, labelled with the
// reason (DropLoss, DropOverflow, DropGiveUp).
func (lt *LinkTap) Dropped(from, to model.ProcessID, reason string) {
	if lt == nil {
		return
	}
	l := Link{from, to}
	lc := lt.link(l)
	lc.dropped.Add(1)
	lt.reg.Counter(obs.Label(obs.Label(obs.Label(MetricLinkMessagesDropped,
		"transport", lt.flavour), "link", l.String()), "reason", reason)).Inc()
	lt.tDropped.Add(1)
	lt.aDropped.Inc()
	lt.rec.Record(Record{Cat: CatNet, Kind: "drop", Transport: lt.flavour,
		Link: l.String(), Note: reason})
}

// QueueDepth records the link's queue occupancy after an enqueue; only the
// high-water mark is kept.
func (lt *LinkTap) QueueDepth(from, to model.ProcessID, depth int) {
	if lt == nil {
		return
	}
	lc := lt.link(Link{from, to})
	lc.queueHW.Store(maxInt64(lc.queueHW.Load(), int64(depth)))
	lc.gQueueHW.Max(int64(depth))
}

// Reconnect records a (re-)established connection on the link.
func (lt *LinkTap) Reconnect(from, to model.ProcessID) {
	if lt == nil {
		return
	}
	lc := lt.link(Link{from, to})
	lc.reconnects.Add(1)
	lc.cReconnects.Inc()
	lt.tReconnects.Add(1)
	lt.aReconnects.Inc()
	lt.rec.Record(Record{Cat: CatNet, Kind: "reconnect", Transport: lt.flavour,
		Link: Link{from, to}.String()})
}

// Retry records one retransmission attempt on the link.
func (lt *LinkTap) Retry(from, to model.ProcessID) {
	if lt == nil {
		return
	}
	lc := lt.link(Link{from, to})
	lc.retries.Add(1)
	lc.cRetries.Inc()
	lt.tRetries.Add(1)
	lt.aRetries.Inc()
	lt.rec.Record(Record{Cat: CatNet, Kind: "retry", Transport: lt.flavour,
		Link: Link{from, to}.String()})
}

// Totals returns the transport's aggregate accounting.
func (lt *LinkTap) Totals() LinkTotals {
	if lt == nil {
		return LinkTotals{}
	}
	var hw int64
	lt.mu.RLock()
	for _, lc := range lt.links {
		hw = maxInt64(hw, lc.queueHW.Load())
	}
	lt.mu.RUnlock()
	return LinkTotals{
		MsgsSent:       lt.tSent.Load(),
		BytesSent:      lt.tSentB.Load(),
		MsgsReceived:   lt.tRecv.Load(),
		BytesReceived:  lt.tRecvB.Load(),
		Dropped:        lt.tDropped.Load(),
		Reconnects:     lt.tReconnects.Load(),
		Retries:        lt.tRetries.Load(),
		QueueHighWater: hw,
	}
}

// PerLink returns each link's accounting, keyed by link.
func (lt *LinkTap) PerLink() map[Link]LinkTotals {
	if lt == nil {
		return nil
	}
	lt.mu.RLock()
	defer lt.mu.RUnlock()
	out := make(map[Link]LinkTotals, len(lt.links))
	for l, lc := range lt.links {
		out[l] = LinkTotals{
			MsgsSent:       lc.msgsSent.Load(),
			BytesSent:      lc.bytesSent.Load(),
			MsgsReceived:   lc.msgsRecv.Load(),
			BytesReceived:  lc.bytesRecv.Load(),
			Dropped:        lc.dropped.Load(),
			Reconnects:     lc.reconnects.Load(),
			Retries:        lc.retries.Load(),
			QueueHighWater: lc.queueHW.Load(),
		}
	}
	return out
}

// SortedLinks returns the tap's links in canonical (from, to) order — the
// deterministic iteration order of reports.
func (lt *LinkTap) SortedLinks() []Link {
	if lt == nil {
		return nil
	}
	lt.mu.RLock()
	out := make([]Link, 0, len(lt.links))
	for l := range lt.links {
		out = append(out, l)
	}
	lt.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// ComputeCost derives a run's cost summary: transport-level totals from the
// link tap (nil: fall back to encode counts) and deterministic data-only
// figures from the wire tap, divided by the number of decisions.
func ComputeCost(decisions int, ws *WireStats, lt *LinkTap) *obs.CostSummary {
	c := &obs.CostSummary{Decisions: decisions}
	c.DataMessages, c.DataBytes = ws.DataEncoded()
	c.ControlMessages, c.ControlBytes = ws.ControlEncoded()
	c.Heartbeats = ws.Heartbeats()
	if lt != nil {
		t := lt.Totals()
		c.Messages, c.Bytes, c.Dropped = t.MsgsSent, t.BytesSent, t.Dropped
	} else {
		c.Messages, c.Bytes = ws.Encoded()
	}
	if decisions > 0 {
		d := float64(decisions)
		c.MessagesPerDecision = float64(c.Messages) / d
		c.BytesPerDecision = float64(c.Bytes) / d
		c.DataMessagesPerDecision = float64(c.DataMessages) / d
		c.DataBytesPerDecision = float64(c.DataBytes) / d
		c.ControlMessagesPerDecision = float64(c.ControlMessages) / d
		c.ControlBytesPerDecision = float64(c.ControlBytes) / d
	}
	return c
}

// PublishCost sets the run's cost gauges on the registry (per-decision
// ratios in milli-units; see the metric-name comment).
func PublishCost(reg *obs.Registry, c *obs.CostSummary) {
	if reg == nil || c == nil {
		return
	}
	reg.Gauge(MetricCostDecisions).Set(int64(c.Decisions))
	reg.Gauge(MetricCostMessagesPerDecisionMilli).Set(int64(c.MessagesPerDecision*1000 + 0.5))
	reg.Gauge(MetricCostBytesPerDecisionMilli).Set(int64(c.BytesPerDecision*1000 + 0.5))
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
