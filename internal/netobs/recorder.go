package netobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/obs"
)

// Record categories.
const (
	CatNet = "net" // transport traffic (send/recv/drop/reconnect/retry)
	CatFD  = "fd"  // failure detector (suspect/retract)
	CatRun = "run" // run lifecycle (decide/crash/round milestones)
)

// Record is one flight-recorder entry. Records are deliberately
// timestamp-free: the only ordering information is Seq, the recorder's
// admission sequence number, which makes a dump of a deterministic run
// byte-identical across replays at a fixed seed. Wall-clock post-mortems
// belong to the tracing layer; the flight recorder answers "what were the
// last N things the transport and detector did before it died".
type Record struct {
	Seq       int64  `json:"seq"`
	Cat       string `json:"cat"`
	Kind      string `json:"kind"`
	Transport string `json:"transport,omitempty"`
	Link      string `json:"link,omitempty"`
	Bytes     int    `json:"bytes,omitempty"`
	Round     int    `json:"round,omitempty"`
	Proc      int    `json:"proc,omitempty"`
	Note      string `json:"note,omitempty"`
}

// DumpHeader is the first line of a flight dump.
type DumpHeader struct {
	Flight   int   `json:"flight"`   // format version, currently 1
	Capacity int   `json:"capacity"` // ring size at dump time
	Dropped  int64 `json:"dropped"`  // records evicted by the ring before the dump
	Count    int   `json:"count"`    // records that follow
}

// Dump is a parsed flight dump.
type Dump struct {
	Header  DumpHeader
	Records []Record
}

// DefaultFlightCapacity is the ring size used when NewRecorder is given a
// non-positive capacity.
const DefaultFlightCapacity = 4096

// Recorder is the flight recorder: a fixed-size ring of recent Records.
// Transport taps and the fault injector write into it directly; it also
// implements obs.Sink, so interposing it on an event-sink chain captures
// detector and run-lifecycle events while forwarding everything unchanged
// to the next sink. All methods are safe for concurrent use and nil-safe.
type Recorder struct {
	next obs.Sink // forwarded-to sink (may be nil)

	mu      sync.Mutex
	ring    []Record
	start   int   // index of oldest record
	count   int   // records currently held
	seq     int64 // next admission sequence number
	evicted int64 // records pushed out of the ring
}

var _ obs.Sink = (*Recorder)(nil)

// NewRecorder returns a flight recorder holding the last capacity records
// (DefaultFlightCapacity when capacity <= 0), forwarding sink events to
// next (which may be nil).
func NewRecorder(capacity int, next obs.Sink) *Recorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &Recorder{next: next, ring: make([]Record, capacity)}
}

// Record admits one record, stamping its sequence number.
func (r *Recorder) Record(rec Record) {
	if r == nil {
		return
	}
	r.mu.Lock()
	rec.Seq = r.seq
	r.seq++
	if r.count < len(r.ring) {
		r.ring[(r.start+r.count)%len(r.ring)] = rec
		r.count++
	} else {
		r.ring[r.start] = rec
		r.start = (r.start + 1) % len(r.ring)
		r.evicted++
	}
	r.mu.Unlock()
}

// Emit implements obs.Sink: detector and run-lifecycle events become
// records; every event is forwarded unchanged to the chained sink.
func (r *Recorder) Emit(ev obs.Event) {
	if r == nil {
		return
	}
	switch ev.Type {
	case obs.EventSuspect:
		r.Record(Record{Cat: CatFD, Kind: "suspect", Proc: ev.Proc, Round: ev.Round,
			Note: fmt.Sprintf("by=p%d", ev.By)})
	case obs.EventRetract:
		r.Record(Record{Cat: CatFD, Kind: "retract", Proc: ev.Proc, Round: ev.Round,
			Note: fmt.Sprintf("by=p%d", ev.By)})
	case obs.EventCrash:
		r.Record(Record{Cat: CatRun, Kind: "crash", Proc: ev.Proc, Round: ev.Round})
	case obs.EventRecover:
		r.Record(Record{Cat: CatRun, Kind: "recover", Proc: ev.Proc, Round: ev.Round})
	case obs.EventDecide:
		rec := Record{Cat: CatRun, Kind: "decide", Proc: ev.Proc, Round: ev.Round}
		if ev.Value != nil {
			rec.Note = fmt.Sprintf("v=%d", *ev.Value)
		}
		r.Record(rec)
	case obs.EventPartition:
		r.Record(Record{Cat: CatNet, Kind: "partition", Round: ev.Round})
	case obs.EventHeal:
		r.Record(Record{Cat: CatNet, Kind: "heal", Round: ev.Round})
	}
	if r.next != nil {
		r.next.Emit(ev)
	}
}

// Records returns the ring's contents, oldest first.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(r.start+i)%len(r.ring)])
	}
	return out
}

// WriteDump writes the dump as deterministic JSONL: a DumpHeader line
// followed by one line per record, oldest first.
func (r *Recorder) WriteDump(w io.Writer) error {
	recs := r.Records()
	var capacity int
	var evicted int64
	if r != nil {
		r.mu.Lock()
		capacity, evicted = len(r.ring), r.evicted
		r.mu.Unlock()
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(DumpHeader{Flight: 1, Capacity: capacity, Dropped: evicted, Count: len(recs)}); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpTo writes the dump to the named file (created or truncated).
func (r *Recorder) DumpTo(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteDump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadDump parses a dump written by WriteDump.
func ReadDump(rd io.Reader) (*Dump, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("netobs: reading flight dump: %w", err)
		}
		return nil, fmt.Errorf("netobs: empty flight dump")
	}
	var d Dump
	if err := json.Unmarshal(sc.Bytes(), &d.Header); err != nil {
		return nil, fmt.Errorf("netobs: flight dump header: %w", err)
	}
	if d.Header.Flight != 1 {
		return nil, fmt.Errorf("netobs: unsupported flight dump version %d", d.Header.Flight)
	}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("netobs: flight dump line %d: %w", line, err)
		}
		d.Records = append(d.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netobs: reading flight dump: %w", err)
	}
	if len(d.Records) != d.Header.Count {
		return nil, fmt.Errorf("netobs: flight dump holds %d records, header claims %d",
			len(d.Records), d.Header.Count)
	}
	return &d, nil
}

// ReadDumpFile parses the named dump file.
func ReadDumpFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(f)
}
