package emul

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rounds"
	"repro/internal/step"
)

// RSEmulation adapts a round-based algorithm to the SS step model (§4.1).
// Construct with NewRSEmulation, run with RunRS.
type RSEmulation struct {
	inner      rounds.Algorithm
	t          int
	phi, delta int
	maxRounds  int
	nProcs     int
	result     *Result
}

var _ step.Algorithm = (*RSEmulation)(nil)

// NewRSEmulation prepares an emulation of inner (resilience t) in SS with
// bounds Φ and Δ, running at most maxRounds rounds.
func NewRSEmulation(inner rounds.Algorithm, t, phi, delta, maxRounds int) *RSEmulation {
	return &RSEmulation{inner: inner, t: t, phi: phi, delta: delta, maxRounds: maxRounds}
}

// Name implements step.Algorithm.
func (e *RSEmulation) Name() string { return "RS⟨" + e.inner.Name() + "⟩" }

// New implements step.Algorithm.
func (e *RSEmulation) New(cfg step.Config) step.Automaton {
	p := &rsProc{
		owner:     e,
		id:        cfg.ID,
		n:         cfg.N,
		deadlines: DeadlineSchedule(cfg.N, e.phi, e.delta, e.maxRounds),
		round:     1,
		inner: e.inner.New(rounds.ProcConfig{
			ID: cfg.ID, N: cfg.N, T: e.t, Initial: cfg.Input,
		}),
		got: make([]map[model.ProcessID]rounds.Message, e.maxRounds+2),
	}
	return p
}

// newResult initializes the shared result record; called by RunRS.
func (e *RSEmulation) newResult(n int) {
	e.nProcs = n
	e.result = &Result{
		Algorithm:       e.Name(),
		N:               n,
		T:               e.t,
		DecidedAtRound:  make([]int, n+1),
		DecisionOf:      make([]model.Value, n+1),
		Decided:         make([]bool, n+1),
		CompletedRounds: make([]int, n+1),
		SentThrough:     make([]int, n+1),
		Crashed:         make([]bool, n+1),
		ReceivedFrom:    make([][]model.ProcSet, n+1),
	}
	for p := 1; p <= n; p++ {
		e.result.ReceivedFrom[p] = make([]model.ProcSet, e.maxRounds+2)
	}
}

type rsProc struct {
	owner     *RSEmulation
	id        model.ProcessID
	n         int
	deadlines []int

	inner rounds.Process
	round int
	msgs  []rounds.Message
	got   []map[model.ProcessID]rounds.Message
	done  bool
}

var (
	_ step.Automaton = (*rsProc)(nil)
	_ step.Decider   = (*rsProc)(nil)
)

// destFor maps a 1-based send offset to the destination process, skipping
// the sender itself.
func destFor(self model.ProcessID, n, offset int) model.ProcessID {
	d := model.ProcessID(offset)
	if d >= self {
		d++
	}
	_ = n
	return d
}

// Step implements step.Automaton: absorb arrivals, then act according to
// the position of this local step inside the current round's window.
func (p *rsProc) Step(in step.Input) *step.Send {
	for _, m := range in.Received {
		rm, ok := m.Payload.(roundMsg)
		if !ok {
			continue
		}
		if rm.Round < p.round {
			p.owner.result.PendingObserved = append(p.owner.result.PendingObserved,
				PendingMessage{Sender: m.From, Receiver: p.id, Round: rm.Round})
			continue
		}
		if rm.Round < len(p.got) {
			if p.got[rm.Round] == nil {
				p.got[rm.Round] = make(map[model.ProcessID]rounds.Message, p.n)
			}
			p.got[rm.Round][m.From] = rm.Payload
			if rm.Round < len(p.owner.result.ReceivedFrom[p.id]) {
				p.owner.result.ReceivedFrom[p.id][rm.Round] =
					p.owner.result.ReceivedFrom[p.id][rm.Round].Add(m.From)
			}
		}
	}
	if p.done || p.round > p.owner.maxRounds {
		return nil
	}

	base := p.deadlines[p.round-1]
	offset := in.Local - base
	var send *step.Send
	switch {
	case offset >= 1 && offset <= p.n-1:
		if offset == 1 {
			p.msgs = p.inner.Msgs(p.round)
		}
		if offset == p.n-1 {
			p.owner.result.SentThrough[p.id] = p.round
		}
		dest := destFor(p.id, p.n, offset)
		var payload rounds.Message
		if p.msgs != nil {
			payload = p.msgs[dest]
		}
		// Null messages are transmitted explicitly so receivers can record
		// liveness; the payload stays nil.
		send = &step.Send{To: dest, Payload: roundMsg{Round: p.round, Payload: payload}}
	}
	if in.Local == p.deadlines[p.round] {
		p.closeRound()
	}
	return send
}

// closeRound applies the round's transition from the collected messages.
func (p *rsProc) closeRound() {
	received := make([]rounds.Message, p.n+1)
	for from, payload := range p.got[p.round] {
		received[from] = payload
	}
	// Self-delivery: the process always sees its own non-null message.
	if p.msgs != nil {
		received[p.id] = p.msgs[p.id]
	}
	p.inner.Trans(p.round, received)
	res := p.owner.result
	res.CompletedRounds[p.id] = p.round
	if !res.Decided[p.id] {
		if v, ok := p.inner.Decision(); ok {
			res.Decided[p.id] = true
			res.DecisionOf[p.id] = v
			res.DecidedAtRound[p.id] = p.round
		}
	}
	p.got[p.round] = nil
	p.round++
	p.msgs = nil
	if p.round > p.owner.maxRounds {
		p.done = true
	}
}

// Decision implements step.Decider.
func (p *rsProc) Decision() (model.Value, bool) { return p.inner.Decision() }

// RunRS emulates the algorithm over the SS step engine under a seeded
// SS-admissible scheduler, with optional crash injection (global step →
// victim). It validates the produced schedule against the Φ/Δ conditions
// and returns the round-level result.
func RunRS(inner rounds.Algorithm, initial []model.Value, t, phi, delta, maxRounds int, seed int64, crashAt map[model.ProcessID]int) (*Result, error) {
	n := len(initial)
	e := NewRSEmulation(inner, t, phi, delta, maxRounds)
	e.newResult(n)
	eng, err := step.NewEngine(e, initial)
	if err != nil {
		return nil, err
	}
	stop := func(v *step.View) bool {
		done := true
		v.Alive.ForEach(func(q model.ProcessID) bool {
			if !v.Decided[q] {
				done = false
				return false
			}
			return true
		})
		return done
	}
	sched := step.NewSSScheduler(phi, delta, seed, stop)
	sched.CrashAtStep = crashAt
	// Horizon: every process takes at most K_max local steps; the global
	// step count is bounded by n times that (plus crashes).
	horizon := (n+1)*e.deadlineMax() + 16
	tr, err := eng.Run(sched, horizon)
	if err != nil {
		return nil, fmt.Errorf("emul: RunRS(%s): %w", e.Name(), err)
	}
	if v := step.CheckProcessSynchrony(tr, phi); len(v) != 0 {
		return nil, fmt.Errorf("emul: RunRS: schedule violates process synchrony: %s", v[0].Error())
	}
	if v := step.CheckMessageSynchrony(tr, delta); len(v) != 0 {
		return nil, fmt.Errorf("emul: RunRS: schedule violates message synchrony: %s", v[0].Error())
	}
	for q := 1; q <= n; q++ {
		e.result.Crashed[q] = tr.CrashedAt[q] != 0
	}
	e.result.Steps = len(tr.Events)
	return e.result, nil
}

// deadlineMax returns K_maxRounds for the configured system size.
func (e *RSEmulation) deadlineMax() int {
	ks := DeadlineSchedule(e.nProcs, e.phi, e.delta, e.maxRounds)
	return ks[e.maxRounds]
}
