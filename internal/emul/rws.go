package emul

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rounds"
	"repro/internal/step"
)

// RWSEmulation adapts a round-based algorithm to the SP step model (§4.2):
// send the round's messages, then keep stepping until every peer has either
// delivered its round message or is suspected by the perfect failure
// detector. Construct with NewRWSEmulation, run with RunRWS.
type RWSEmulation struct {
	inner     rounds.Algorithm
	t         int
	maxRounds int
	result    *Result
}

var _ step.Algorithm = (*RWSEmulation)(nil)

// NewRWSEmulation prepares an emulation of inner (resilience t) in SP,
// running at most maxRounds rounds.
func NewRWSEmulation(inner rounds.Algorithm, t, maxRounds int) *RWSEmulation {
	return &RWSEmulation{inner: inner, t: t, maxRounds: maxRounds}
}

// Name implements step.Algorithm.
func (e *RWSEmulation) Name() string { return "RWS⟨" + e.inner.Name() + "⟩" }

// New implements step.Algorithm.
func (e *RWSEmulation) New(cfg step.Config) step.Automaton {
	return &rwsProc{
		owner: e,
		id:    cfg.ID,
		n:     cfg.N,
		round: 1,
		inner: e.inner.New(rounds.ProcConfig{
			ID: cfg.ID, N: cfg.N, T: e.t, Initial: cfg.Input,
		}),
		got: make([]map[model.ProcessID]rounds.Message, e.maxRounds+2),
	}
}

// newResult initializes the shared result record; called by RunRWS.
func (e *RWSEmulation) newResult(n int) {
	e.result = &Result{
		Algorithm:       e.Name(),
		N:               n,
		T:               e.t,
		DecidedAtRound:  make([]int, n+1),
		DecisionOf:      make([]model.Value, n+1),
		Decided:         make([]bool, n+1),
		CompletedRounds: make([]int, n+1),
		SentThrough:     make([]int, n+1),
		Crashed:         make([]bool, n+1),
		ReceivedFrom:    make([][]model.ProcSet, n+1),
	}
	for p := 1; p <= n; p++ {
		e.result.ReceivedFrom[p] = make([]model.ProcSet, e.maxRounds+2)
	}
}

type rwsProc struct {
	owner *RWSEmulation
	id    model.ProcessID
	n     int

	inner   rounds.Process
	round   int
	msgs    []rounds.Message
	sendIdx int // next send offset (1..n−1); n−1 completed means receiving
	got     []map[model.ProcessID]rounds.Message
	done    bool
}

var (
	_ step.Automaton = (*rwsProc)(nil)
	_ step.Decider   = (*rwsProc)(nil)
)

// Step implements step.Automaton: the paper's send-then-receive-or-suspect
// loop.
func (p *rwsProc) Step(in step.Input) *step.Send {
	for _, m := range in.Received {
		rm, ok := m.Payload.(roundMsg)
		if !ok {
			continue
		}
		if rm.Round < p.round {
			// The paper's pending message: its round is already closed.
			p.owner.result.PendingObserved = append(p.owner.result.PendingObserved,
				PendingMessage{Sender: m.From, Receiver: p.id, Round: rm.Round})
			continue
		}
		if rm.Round < len(p.got) {
			if p.got[rm.Round] == nil {
				p.got[rm.Round] = make(map[model.ProcessID]rounds.Message, p.n)
			}
			p.got[rm.Round][m.From] = rm.Payload
			if rm.Round < len(p.owner.result.ReceivedFrom[p.id]) {
				p.owner.result.ReceivedFrom[p.id][rm.Round] =
					p.owner.result.ReceivedFrom[p.id][rm.Round].Add(m.From)
			}
		}
	}
	if p.done {
		return nil
	}

	// Send phase: one message per step.
	if p.sendIdx < p.n-1 {
		if p.sendIdx == 0 {
			p.msgs = p.inner.Msgs(p.round)
		}
		p.sendIdx++
		if p.sendIdx == p.n-1 {
			p.owner.result.SentThrough[p.id] = p.round
		}
		dest := destFor(p.id, p.n, p.sendIdx)
		var payload rounds.Message
		if p.msgs != nil {
			payload = p.msgs[dest]
		}
		return &step.Send{To: dest, Payload: roundMsg{Round: p.round, Payload: payload}}
	}

	// Receive phase: wait until every peer has delivered or is suspected.
	for j := 1; j <= p.n; j++ {
		pj := model.ProcessID(j)
		if pj == p.id {
			continue
		}
		if _, got := p.got[p.round][pj]; !got && !in.Suspects.Has(pj) {
			return nil // keep waiting
		}
	}
	p.closeRound()
	return nil
}

// closeRound applies the round's transition and opens the next round.
func (p *rwsProc) closeRound() {
	received := make([]rounds.Message, p.n+1)
	for from, payload := range p.got[p.round] {
		received[from] = payload
	}
	if p.msgs != nil {
		received[p.id] = p.msgs[p.id]
	}
	p.inner.Trans(p.round, received)
	res := p.owner.result
	res.CompletedRounds[p.id] = p.round
	if !res.Decided[p.id] {
		if v, ok := p.inner.Decision(); ok {
			res.Decided[p.id] = true
			res.DecisionOf[p.id] = v
			res.DecidedAtRound[p.id] = p.round
		}
	}
	p.got[p.round] = nil
	p.round++
	p.msgs = nil
	p.sendIdx = 0
	if p.round > p.owner.maxRounds {
		p.done = true
	}
}

// Decision implements step.Decider.
func (p *rwsProc) Decision() (model.Value, bool) { return p.inner.Decision() }

// RunRWS emulates the algorithm over the SP step engine under a seeded SP
// scheduler with crash injection. The trace's detector axioms are verified
// and the result's Lemma 4.1 property is checked before returning.
func RunRWS(inner rounds.Algorithm, initial []model.Value, t, maxRounds int, seed int64, crashAt map[model.ProcessID]int, tune ...func(*step.SPScheduler)) (*Result, error) {
	n := len(initial)
	e := NewRWSEmulation(inner, t, maxRounds)
	e.newResult(n)
	eng, err := step.NewEngineWithFD(e, initial)
	if err != nil {
		return nil, err
	}
	stop := func(v *step.View) bool {
		done := true
		v.Alive.ForEach(func(q model.ProcessID) bool {
			if !v.Decided[q] {
				done = false
				return false
			}
			return true
		})
		return done
	}
	sched := step.NewSPScheduler(seed, stop)
	sched.CrashAtStep = crashAt
	for _, f := range tune {
		f(sched)
	}
	horizon := 200 * n * (maxRounds + 2)
	tr, err := eng.Run(sched, horizon)
	if err != nil {
		return nil, fmt.Errorf("emul: RunRWS(%s): %w", e.Name(), err)
	}
	if v := step.CheckStrongAccuracy(tr); len(v) != 0 {
		return nil, fmt.Errorf("emul: RunRWS: accuracy violated: %s", v[0].Error())
	}
	for q := 1; q <= n; q++ {
		e.result.Crashed[q] = tr.CrashedAt[q] != 0
	}
	e.result.Steps = len(tr.Events)
	if v := e.result.CheckWeakRoundSynchrony(); len(v) != 0 {
		return nil, fmt.Errorf("emul: RunRWS: Lemma 4.1 violated: %s", v[0])
	}
	return e.result, nil
}
