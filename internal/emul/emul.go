// Package emul realizes the paper's Section 4 emulations: it runs
// round-based algorithms (rounds.Algorithm) on top of the step-level
// engines of package step, in both directions of the paper's comparison.
//
//   - RS from SS (§4.1): computation proceeds in lock-step rounds paced by
//     each process's own step count. In round r a process spends its first
//     n−1 steps sending the round's messages and then pads with empty steps
//     up to a deadline K_r chosen so that every round-r message has
//     arrived. The paper notes the padding k is "a function of n, Δ, Φ and
//     r"; the recurrence implemented here is
//
//     K_0 = 0,   K_r = (Φ+1)·(K_{r−1} + n−1) + Δ
//
//     Process synchrony guarantees that by a process's local step
//     (Φ+1)·(K_{r−1}+n−1) every *alive* peer has finished its round-r
//     sends (and a crashed peer's partial sends happened even earlier);
//     message synchrony then delivers them within Δ further own-steps.
//     Round synchrony follows: a missing round-r message proves the sender
//     failed before sending it. The exponential growth of K_r is itself a
//     faithful reproduction of the emulation's cost.
//
//   - RWS from SP (§4.2): a process sends its round-r messages and then
//     keeps taking steps until, for every peer, it has received that peer's
//     round-r message or the perfect failure detector suspects the peer.
//     Messages that arrive after their round was closed are *pending*: they
//     are dropped, exactly as in the paper. Lemma 4.1 (a pending message's
//     sender completes no round beyond r+1) is checked on every emulated
//     run rather than assumed.
package emul

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rounds"
)

// roundMsg is the wire format of both emulations: a round number plus the
// round-model payload (nil payload = the round's null message, which the
// RWS emulation must still transmit so receivers can distinguish "null"
// from "pending").
type roundMsg struct {
	Round   int
	Payload rounds.Message
}

// Result summarizes an emulated execution at the round level, mirroring the
// fields of rounds.Run that the checkers need.
type Result struct {
	Algorithm string
	N, T      int

	// DecidedAtRound[p] is the round at whose completion p decided (0 =
	// never); DecisionOf[p] the value.
	DecidedAtRound []int
	DecisionOf     []model.Value
	Decided        []bool

	// CompletedRounds[p] counts the transitions p executed.
	CompletedRounds []int
	// SentThrough[p] is the last round whose send phase p finished.
	SentThrough []int
	// Crashed[p] reports whether p crashed during the execution.
	Crashed []bool

	// ReceivedFrom[p][r] is the set of senders whose round-r message p
	// received (index r is 1-based; entry 0 unused).
	ReceivedFrom [][]model.ProcSet

	// PendingObserved lists (sender, round) pairs whose message arrived
	// after the receiver closed the round — the paper's pending messages.
	PendingObserved []PendingMessage

	// Steps is the number of global steps the execution took.
	Steps int
}

// PendingMessage identifies one pending (late) message occurrence.
type PendingMessage struct {
	Sender   model.ProcessID
	Receiver model.ProcessID
	Round    int
}

// Latency returns the number of rounds until all correct processes decided.
func (r *Result) Latency() (int, bool) {
	lat := 0
	for p := 1; p <= r.N; p++ {
		if r.Crashed[p] {
			continue
		}
		if !r.Decided[p] {
			return 0, false
		}
		if r.DecidedAtRound[p] > lat {
			lat = r.DecidedAtRound[p]
		}
	}
	return lat, true
}

// PendingCount counts the pending messages of the run under both guises:
// late arrivals (PendingObserved) plus messages whose sender completed the
// round — hence finished sending — but whose receiver closed that round
// without them and they never arrived within the run.
func (r *Result) PendingCount() int {
	count := len(r.PendingObserved)
	for p := 1; p <= r.N; p++ {
		for round := 1; round <= r.CompletedRounds[p] && round < len(r.ReceivedFrom[p]); round++ {
			missing := model.FullSet(r.N).Minus(r.ReceivedFrom[p][round]).Remove(model.ProcessID(p))
			missing.ForEach(func(j model.ProcessID) bool {
				if len(r.SentThrough) > int(j) && r.SentThrough[j] >= round {
					count++
				}
				return true
			})
		}
	}
	return count
}

// CheckWeakRoundSynchrony verifies Lemma 4.1's guarantee on an emulated
// run: if pi completed round r without a message from pj (and pj had
// started the execution), then pj completes no round beyond r+1 and pj
// crashes. Violations falsify the emulation, not the algorithm.
func (r *Result) CheckWeakRoundSynchrony() []string {
	var out []string
	for p := 1; p <= r.N; p++ {
		// Only rounds p actually completed carry the guarantee; arrivals for
		// an in-progress round are necessarily partial.
		for round := 1; round <= r.CompletedRounds[p] && round < len(r.ReceivedFrom[p]); round++ {
			missing := model.FullSet(r.N).Minus(r.ReceivedFrom[p][round]).Remove(model.ProcessID(p))
			missing.ForEach(func(j model.ProcessID) bool {
				if r.CompletedRounds[j] > round+1 {
					out = append(out, fmt.Sprintf(
						"p%d completed round %d without p%d's message, yet p%d completed round %d (> %d+1)",
						p, round, j, j, r.CompletedRounds[j], round))
				}
				if !r.Crashed[j] {
					out = append(out, fmt.Sprintf(
						"p%d completed round %d without p%d's message, yet p%d never crashed",
						p, round, j, j))
				}
				return true
			})
		}
	}
	return out
}

// CheckRoundSynchrony verifies the RS property on an emulated run: a
// process that misses pj's round-r message sees pj complete no round ≥ r —
// pj failed before finishing its round-r sends — and in particular no
// pending message was ever observed.
func (r *Result) CheckRoundSynchrony() []string {
	var out []string
	for _, pm := range r.PendingObserved {
		out = append(out, fmt.Sprintf(
			"pending message from p%d to p%d at round %d (impossible in RS)",
			pm.Sender, pm.Receiver, pm.Round))
	}
	for p := 1; p <= r.N; p++ {
		for round := 1; round <= r.CompletedRounds[p] && round < len(r.ReceivedFrom[p]); round++ {
			missing := model.FullSet(r.N).Minus(r.ReceivedFrom[p][round]).Remove(model.ProcessID(p))
			missing.ForEach(func(j model.ProcessID) bool {
				if !r.Crashed[j] {
					out = append(out, fmt.Sprintf(
						"p%d missed p%d's round-%d message but p%d never crashed", p, j, round, j))
				}
				if r.CompletedRounds[j] >= round {
					out = append(out, fmt.Sprintf(
						"p%d missed p%d's round-%d message but p%d completed round %d",
						p, j, round, j, r.CompletedRounds[j]))
				}
				return true
			})
		}
	}
	return out
}

// DeadlineSchedule computes the per-round local-step deadlines K_1..K_max
// of the RS-from-SS emulation.
func DeadlineSchedule(n, phi, delta, maxRounds int) []int {
	ks := make([]int, maxRounds+1)
	for r := 1; r <= maxRounds; r++ {
		ks[r] = (phi+1)*(ks[r-1]+n-1) + delta
	}
	return ks
}
