package emul

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/step"
)

func vals(vs ...int64) []model.Value {
	out := make([]model.Value, len(vs))
	for i, v := range vs {
		out[i] = model.Value(v)
	}
	return out
}

func TestDeadlineSchedule(t *testing.T) {
	// n=3, Φ=1, Δ=1: K_1 = 2·2+1 = 5, K_2 = 2·7+1 = 15, K_3 = 2·17+1 = 35.
	ks := DeadlineSchedule(3, 1, 1, 3)
	want := []int{0, 5, 15, 35}
	for i, w := range want {
		if ks[i] != w {
			t.Errorf("K_%d = %d, want %d", i, ks[i], w)
		}
	}
}

// checkAgreementValidity applies the uniform consensus conditions to an
// emulated result.
func checkAgreementValidity(t *testing.T, res *Result, initial []model.Value, label string) {
	t.Helper()
	var first model.Value
	got := false
	for p := 1; p <= res.N; p++ {
		if !res.Decided[p] {
			continue
		}
		if !got {
			first, got = res.DecisionOf[p], true
		} else if res.DecisionOf[p] != first {
			t.Fatalf("%s: uniform agreement violated: %d vs %d", label, int64(first), int64(res.DecisionOf[p]))
		}
	}
	allSame := true
	for _, v := range initial[1:] {
		if v != initial[0] {
			allSame = false
		}
	}
	if allSame && got && first != initial[0] {
		t.Fatalf("%s: uniform validity violated: unanimous %d decided %d", label, int64(initial[0]), int64(first))
	}
	for p := 1; p <= res.N; p++ {
		if !res.Crashed[p] && !res.Decided[p] {
			t.Fatalf("%s: correct p%d never decided", label, p)
		}
	}
}

// TestRSEmulationFailureFree runs FloodSet and A1 through the SS step
// emulation without failures: decisions, rounds and round synchrony must
// match the RS engine's.
func TestRSEmulationFailureFree(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		res, err := RunRS(consensus.FloodSet{}, vals(4, 2, 7), 1, 1, 1, 3, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkAgreementValidity(t, res, vals(4, 2, 7), "FloodSet")
		if v := res.CheckRoundSynchrony(); len(v) != 0 {
			t.Fatalf("round synchrony: %s", v[0])
		}
		lat, ok := res.Latency()
		if !ok || lat != 2 {
			t.Fatalf("seed %d: latency = (%d,%v), want (2,true)", seed, lat, ok)
		}
		for p := 1; p <= 3; p++ {
			if res.DecisionOf[p] != 2 {
				t.Fatalf("seed %d: p%d decided %d, want 2", seed, p, res.DecisionOf[p])
			}
		}

		a1, err := RunRS(consensus.A1{}, vals(9, 1, 5), 1, 2, 2, 3, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkAgreementValidity(t, a1, vals(9, 1, 5), "A1")
		if lat, ok := a1.Latency(); !ok || lat != 1 {
			t.Fatalf("seed %d: A1 latency = (%d,%v), want (1,true) — Λ(A1)=1 must survive the emulation", seed, lat, ok)
		}
	}
}

// TestRSEmulationWithCrash injects a crash of p1 mid-run; consensus and
// round synchrony must hold across crash timings.
func TestRSEmulationWithCrash(t *testing.T) {
	for crashStep := 1; crashStep <= 20; crashStep += 2 {
		for seed := int64(0); seed < 8; seed++ {
			res, err := RunRS(consensus.FloodSet{}, vals(0, 5, 9), 1, 1, 1, 3, seed,
				map[model.ProcessID]int{1: crashStep})
			if err != nil {
				t.Fatalf("crash@%d seed=%d: %v", crashStep, seed, err)
			}
			checkAgreementValidity(t, res, vals(0, 5, 9), "FloodSet+crash")
			if v := res.CheckRoundSynchrony(); len(v) != 0 {
				t.Fatalf("crash@%d seed=%d: round synchrony: %s", crashStep, seed, v[0])
			}
		}
	}
}

// TestRWSEmulationFailureFree: the SP emulation reproduces RWS behaviour on
// failure-free runs.
func TestRWSEmulationFailureFree(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		res, err := RunRWS(consensus.FloodSetWS{}, vals(4, 2, 7), 1, 4, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkAgreementValidity(t, res, vals(4, 2, 7), "FloodSetWS")
		lat, ok := res.Latency()
		if !ok || lat != 2 {
			t.Fatalf("seed %d: latency = (%d,%v), want (2,true)", seed, lat, ok)
		}
	}
}

// TestRWSEmulationWithCrashes is experiment E10's core: across many crash
// timings and schedules, the emulation satisfies Lemma 4.1 (checked inside
// RunRWS) and FloodSetWS keeps uniform consensus — including in runs where
// pending messages actually occurred.
func TestRWSEmulationWithCrashes(t *testing.T) {
	pendingSeen := 0
	for crashStep := 1; crashStep <= 25; crashStep += 3 {
		for seed := int64(0); seed < 10; seed++ {
			res, err := RunRWS(consensus.FloodSetWS{}, vals(0, 5, 9), 1, 4, seed,
				map[model.ProcessID]int{1: crashStep})
			if err != nil {
				t.Fatalf("crash@%d seed=%d: %v", crashStep, seed, err)
			}
			checkAgreementValidity(t, res, vals(0, 5, 9), "FloodSetWS+crash")
			pendingSeen += len(res.PendingObserved)
		}
	}
	if pendingSeen == 0 {
		t.Error("no pending message ever materialized across the sweep; the SP adversary is too tame to exercise Lemma 4.1")
	}
}

// TestRWSEmulationExhibitsA1Disagreement: run A1 through the *real* SP
// emulation under the §5.3 adversary — p1's messages withheld (finitely!)
// while it decides and crashes — and observe the disagreement. The
// pending-message scenario is not an artifact of the abstract RWS engine.
func TestRWSEmulationExhibitsA1Disagreement(t *testing.T) {
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		res, err := RunRWS(consensus.A1{}, vals(3, 1, 2), 1, 3, seed, nil,
			func(sp *step.SPScheduler) {
				sp.CrashOnDecide = 1
				sp.WithholdFrom = model.Singleton(1)
				sp.WithholdAge = 150
			})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		var first model.Value
		got := false
		for p := 1; p <= res.N; p++ {
			if !res.Decided[p] {
				continue
			}
			if !got {
				first, got = res.DecisionOf[p], true
			} else if res.DecisionOf[p] != first {
				found = true
			}
		}
		// Note: res.PendingObserved records late *arrivals*; here p1's
		// withheld messages are still in flight when the run ends, which is
		// the other face of "pending" — sent but never received.
	}
	if !found {
		t.Error("A1 never disagreed under the SP emulation; expected the §5.3 scenario to materialize")
	}
}

func TestRSEmulationName(t *testing.T) {
	e := NewRSEmulation(consensus.FloodSet{}, 1, 1, 1, 2)
	if e.Name() != "RS⟨FloodSet⟩" {
		t.Errorf("Name = %q", e.Name())
	}
	w := NewRWSEmulation(consensus.FloodSetWS{}, 1, 2)
	if w.Name() != "RWS⟨FloodSetWS⟩" {
		t.Errorf("Name = %q", w.Name())
	}
}

func TestDestFor(t *testing.T) {
	// Process 2 of 3 sends to 1 then 3.
	if destFor(2, 3, 1) != 1 || destFor(2, 3, 2) != 3 {
		t.Error("destFor mapping wrong for p2")
	}
	// Process 1 of 3 sends to 2 then 3.
	if destFor(1, 3, 1) != 2 || destFor(1, 3, 2) != 3 {
		t.Error("destFor mapping wrong for p1")
	}
}
