package check

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/rounds"
)

// fabricated builds a minimal Run record by hand so the predicates can be
// tested against exact shapes, independent of any engine.
type fabricated struct {
	n          int
	initial    []int64
	decidedAt  []int
	decisions  []int64
	crashRound []int
	truncated  bool
}

func (f fabricated) run() *rounds.Run {
	n := f.n
	run := &rounds.Run{
		Algorithm:  "fabricated",
		Model:      rounds.RS,
		N:          n,
		T:          n - 1,
		Initial:    make([]model.Value, n+1),
		CrashRound: make([]int, n+1),
		DecidedAt:  make([]int, n+1),
		DecisionOf: make([]model.Value, n+1),
		Truncated:  f.truncated,
	}
	for i := 1; i <= n; i++ {
		run.Initial[i] = model.Value(f.initial[i-1])
		if f.decidedAt != nil {
			run.DecidedAt[i] = f.decidedAt[i-1]
		}
		if f.decisions != nil {
			run.DecisionOf[i] = model.Value(f.decisions[i-1])
		}
		if f.crashRound != nil {
			run.CrashRound[i] = f.crashRound[i-1]
		}
	}
	return run
}

func TestUniformAgreement(t *testing.T) {
	tests := []struct {
		name string
		f    fabricated
		ok   bool
	}{
		{
			"all agree",
			fabricated{n: 3, initial: []int64{1, 2, 3}, decidedAt: []int{1, 1, 1}, decisions: []int64{1, 1, 1}},
			true,
		},
		{
			"disagree",
			fabricated{n: 3, initial: []int64{1, 2, 3}, decidedAt: []int{1, 1, 1}, decisions: []int64{1, 2, 1}},
			false,
		},
		{
			"faulty decider counts (uniformity)",
			fabricated{n: 3, initial: []int64{1, 2, 3}, decidedAt: []int{1, 2, 2},
				decisions: []int64{1, 2, 2}, crashRound: []int{2, 0, 0}},
			false,
		},
		{
			"undecided ignored",
			fabricated{n: 3, initial: []int64{1, 2, 3}, decidedAt: []int{0, 1, 1}, decisions: []int64{9, 2, 2}},
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := UniformAgreement(tt.f.run())
			if res.OK != tt.ok {
				t.Errorf("OK = %v, want %v (%s)", res.OK, tt.ok, res.Detail)
			}
		})
	}
}

func TestUniformValidity(t *testing.T) {
	unanimousBad := fabricated{n: 2, initial: []int64{5, 5}, decidedAt: []int{1, 1}, decisions: []int64{5, 6}}
	if UniformValidity(unanimousBad.run()).OK {
		t.Error("unanimous 5 deciding 6 accepted")
	}
	mixed := fabricated{n: 2, initial: []int64{5, 6}, decidedAt: []int{1, 1}, decisions: []int64{7, 7}}
	if !UniformValidity(mixed.run()).OK {
		t.Error("validity is vacuous for mixed inputs")
	}
}

func TestValueOrigin(t *testing.T) {
	f := fabricated{n: 2, initial: []int64{5, 6}, decidedAt: []int{1, 1}, decisions: []int64{7, 7}}
	if ValueOrigin(f.run()).OK {
		t.Error("decision 7 not among proposals but accepted")
	}
	g := fabricated{n: 2, initial: []int64{5, 6}, decidedAt: []int{1, 1}, decisions: []int64{6, 6}}
	if !ValueOrigin(g.run()).OK {
		t.Error("legitimate decision rejected")
	}
}

func TestTermination(t *testing.T) {
	undecidedCorrect := fabricated{n: 2, initial: []int64{1, 2}, decidedAt: []int{1, 0}}
	if Termination(undecidedCorrect.run()).OK {
		t.Error("correct undecided process accepted")
	}
	undecidedFaulty := fabricated{n: 2, initial: []int64{1, 2}, decidedAt: []int{1, 0},
		decisions: []int64{1, 0}, crashRound: []int{0, 1}}
	if !Termination(undecidedFaulty.run()).OK {
		t.Error("faulty process need not decide")
	}
	truncated := fabricated{n: 2, initial: []int64{1, 2}, decidedAt: []int{1, 1}, decisions: []int64{1, 1}, truncated: true}
	if Termination(truncated.run()).OK {
		t.Error("truncated run accepted")
	}
}

func TestConsensusBundleAndHelpers(t *testing.T) {
	good := fabricated{n: 2, initial: []int64{2, 1}, decidedAt: []int{1, 1}, decisions: []int64{1, 1}}
	results := Consensus(good.run())
	if len(results) != 5 {
		t.Fatalf("Consensus returned %d results, want 5", len(results))
	}
	ok, bad := AllOK(results)
	if !ok || bad != nil {
		t.Errorf("AllOK = (%v, %v)", ok, bad)
	}
	if FirstViolation(good.run()) != nil {
		t.Error("FirstViolation on a clean run")
	}
	badRun := fabricated{n: 2, initial: []int64{2, 1}, decidedAt: []int{1, 1}, decisions: []int64{1, 2}}
	v := FirstViolation(badRun.run())
	if v == nil || v.Property != "uniform agreement" {
		t.Errorf("FirstViolation = %v", v)
	}
	if !strings.Contains(v.String(), "VIOLATED") {
		t.Errorf("String = %q", v.String())
	}
}

// flipFlop decides different values over time — integrity must catch it.
type flipFlop struct{}

func (flipFlop) Name() string { return "flipflop" }
func (flipFlop) New(cfg rounds.ProcConfig) rounds.Process {
	return &flipProc{}
}

type flipProc struct{ round int }

func (p *flipProc) Msgs(int) []rounds.Message { return nil }
func (p *flipProc) Trans(round int, _ []rounds.Message) {
	p.round = round
}
func (p *flipProc) Decision() (model.Value, bool) { return model.Value(p.round), p.round >= 1 }
func (p *flipProc) CloneProcess() rounds.Process  { c := *p; return &c }

func TestIntegrityWrapperCatchesFlips(t *testing.T) {
	ia := NewIntegrityAlgorithm(flipFlop{})
	eng, err := rounds.NewEngine(rounds.RS, ia, []model.Value{0, 0}, 1, rounds.WithRoundLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(rounds.NoFailures, 3); err != nil {
		t.Fatal(err)
	}
	if len(ia.Violations()) == 0 {
		t.Error("decision flip not detected")
	}
}

func TestIntegrityWrapperCleanAlgorithm(t *testing.T) {
	// A constant decider never violates integrity.
	ia := NewIntegrityAlgorithm(constAlg{})
	eng, err := rounds.NewEngine(rounds.RS, ia, []model.Value{7, 7}, 1, rounds.WithRoundLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(rounds.NoFailures, 3); err != nil {
		t.Fatal(err)
	}
	if v := ia.Violations(); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
	if ia.Name() != "const" {
		t.Errorf("Name = %q", ia.Name())
	}
}

type constAlg struct{}

func (constAlg) Name() string { return "const" }
func (constAlg) New(cfg rounds.ProcConfig) rounds.Process {
	return &constProc{v: cfg.Initial}
}

type constProc struct {
	v       model.Value
	decided bool
}

func (p *constProc) Msgs(int) []rounds.Message { return nil }
func (p *constProc) Trans(int, []rounds.Message) {
	p.decided = true
}
func (p *constProc) Decision() (model.Value, bool) { return p.v, p.decided }
func (p *constProc) CloneProcess() rounds.Process  { c := *p; return &c }
