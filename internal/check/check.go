// Package check provides the specification predicates the experiments test
// runs against: the uniform consensus conditions of §5.1 (uniform validity,
// uniform agreement, termination), decision integrity, and helper reports.
//
// Predicates operate on completed rounds.Run records and return detailed
// failure descriptions rather than bare booleans, so a violated property
// doubles as a human-readable counterexample (the experiments print these
// verbatim).
package check

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rounds"
)

// Result is the outcome of checking one property on one run.
type Result struct {
	Property string
	OK       bool
	Detail   string // human-readable explanation when violated
}

// String renders the result.
func (r Result) String() string {
	if r.OK {
		return r.Property + ": ok"
	}
	return r.Property + ": VIOLATED — " + r.Detail
}

// UniformAgreement checks that no two processes — whether correct or faulty
// — decide different values. This is the *uniform* agreement condition: a
// decision by a process that later crashes counts.
func UniformAgreement(run *rounds.Run) Result {
	res := Result{Property: "uniform agreement", OK: true}
	first := model.ProcessID(0)
	var firstVal model.Value
	for p := 1; p <= run.N; p++ {
		if run.DecidedAt[p] == 0 {
			continue
		}
		v := run.DecisionOf[p]
		if first == 0 {
			first, firstVal = model.ProcessID(p), v
			continue
		}
		if v != firstVal {
			res.OK = false
			res.Detail = fmt.Sprintf("%v decided %d (round %d) but %v decided %d (round %d)",
				first, int64(firstVal), run.DecidedAt[first],
				model.ProcessID(p), int64(v), run.DecidedAt[p])
			return res
		}
	}
	return res
}

// Agreement checks the NON-uniform agreement condition: no two *correct*
// processes decide differently. Decisions by processes that later crash are
// exempt — the exact weakening the paper's §5.1 warns about, since an
// algorithm may satisfy this while violating UniformAgreement.
func Agreement(run *rounds.Run) Result {
	res := Result{Property: "agreement (correct only)", OK: true}
	first := model.ProcessID(0)
	var firstVal model.Value
	for p := 1; p <= run.N; p++ {
		if run.DecidedAt[p] == 0 || run.CrashRound[p] != 0 {
			continue
		}
		v := run.DecisionOf[p]
		if first == 0 {
			first, firstVal = model.ProcessID(p), v
			continue
		}
		if v != firstVal {
			res.OK = false
			res.Detail = fmt.Sprintf("correct %v decided %d but correct %v decided %d",
				first, int64(firstVal), model.ProcessID(p), int64(v))
			return res
		}
	}
	return res
}

// UniformValidity checks the paper's uniform validity condition: if all
// processes start with the same initial value v, then v is the only
// possible decision value.
func UniformValidity(run *rounds.Run) Result {
	res := Result{Property: "uniform validity", OK: true}
	if run.N == 0 {
		return res
	}
	v0 := run.Initial[1]
	for p := 2; p <= run.N; p++ {
		if run.Initial[p] != v0 {
			return res // initial values differ: condition vacuous
		}
	}
	for p := 1; p <= run.N; p++ {
		if run.DecidedAt[p] != 0 && run.DecisionOf[p] != v0 {
			res.OK = false
			res.Detail = fmt.Sprintf("all processes proposed %d but %v decided %d",
				int64(v0), model.ProcessID(p), int64(run.DecisionOf[p]))
			return res
		}
	}
	return res
}

// ValueOrigin checks the stronger (non-uniform-consensus) sanity property
// that every decision is some process's initial value. All the paper's
// algorithms satisfy it; a violation indicates an implementation bug rather
// than a specification issue.
func ValueOrigin(run *rounds.Run) Result {
	res := Result{Property: "value origin", OK: true}
	proposed := model.NewValueSet(run.Initial[1:]...)
	for p := 1; p <= run.N; p++ {
		if run.DecidedAt[p] != 0 && !proposed.Has(run.DecisionOf[p]) {
			res.OK = false
			res.Detail = fmt.Sprintf("%v decided %d, which no process proposed (proposals %v)",
				model.ProcessID(p), int64(run.DecisionOf[p]), proposed)
			return res
		}
	}
	return res
}

// Termination checks that all correct processes eventually decide. A run
// truncated at the engine's round limit fails termination by definition.
func Termination(run *rounds.Run) Result {
	res := Result{Property: "termination", OK: true}
	if run.Truncated {
		res.OK = false
		res.Detail = fmt.Sprintf("run truncated after %d rounds with undecided live processes", len(run.Rounds))
		return res
	}
	bad := model.ProcSet(0)
	run.Correct().ForEach(func(p model.ProcessID) bool {
		if run.DecidedAt[p] == 0 {
			bad = bad.Add(p)
		}
		return true
	})
	if !bad.Empty() {
		res.OK = false
		res.Detail = fmt.Sprintf("correct processes %v never decided", bad)
	}
	return res
}

// Consensus bundles the three uniform consensus conditions of §5.1 plus
// the value-origin sanity check and the model-admissibility validation of
// the run itself.
func Consensus(run *rounds.Run) []Result {
	out := []Result{
		UniformValidity(run),
		UniformAgreement(run),
		Termination(run),
		ValueOrigin(run),
	}
	if viol := rounds.Admissible(run); len(viol) > 0 {
		out = append(out, Result{
			Property: "model admissibility",
			OK:       false,
			Detail:   fmt.Sprintf("%d violations, first: %s", len(viol), viol[0].Error()),
		})
	} else {
		out = append(out, Result{Property: "model admissibility", OK: true})
	}
	return out
}

// AllOK reports whether every result passed, and returns the first failure.
func AllOK(results []Result) (bool, *Result) {
	for i := range results {
		if !results[i].OK {
			return false, &results[i]
		}
	}
	return true, nil
}

// FirstViolation runs Consensus and returns the first violated property, or
// nil if the run satisfies uniform consensus.
func FirstViolation(run *rounds.Run) *Result {
	if ok, bad := AllOK(Consensus(run)); !ok {
		return bad
	}
	return nil
}
