package check

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rounds"
)

// IntegrityAlgorithm wraps another algorithm and asserts, after every
// transition, that decisions are irrevocable: once a process reports a
// decision it must keep reporting the same value forever. Violations are
// collected rather than panicking so tests can assert on them.
//
// Wrap an algorithm before handing it to an engine:
//
//	ia := check.NewIntegrityAlgorithm(consensus.FloodSet{})
//	run, err := rounds.RunAlgorithm(rounds.RS, ia, initial, t, adv)
//	// ia.Violations() lists any decision flips observed.
type IntegrityAlgorithm struct {
	inner      rounds.Algorithm
	violations []string
}

var _ rounds.Algorithm = (*IntegrityAlgorithm)(nil)

// NewIntegrityAlgorithm wraps inner with decision-irrevocability assertions.
func NewIntegrityAlgorithm(inner rounds.Algorithm) *IntegrityAlgorithm {
	return &IntegrityAlgorithm{inner: inner}
}

// Name implements rounds.Algorithm.
func (a *IntegrityAlgorithm) Name() string { return a.inner.Name() }

// New implements rounds.Algorithm.
func (a *IntegrityAlgorithm) New(cfg rounds.ProcConfig) rounds.Process {
	return &integrityProc{owner: a, id: cfg.ID, inner: a.inner.New(cfg)}
}

// Violations returns the decision flips observed across all wrapped
// processes, in the order they occurred.
func (a *IntegrityAlgorithm) Violations() []string {
	return append([]string(nil), a.violations...)
}

type integrityProc struct {
	owner *IntegrityAlgorithm
	id    model.ProcessID
	inner rounds.Process

	decided  bool
	decision model.Value
}

var (
	_ rounds.Process = (*integrityProc)(nil)
	_ rounds.Cloner  = (*integrityProc)(nil)
)

// Msgs implements rounds.Process.
func (p *integrityProc) Msgs(round int) []rounds.Message { return p.inner.Msgs(round) }

// Trans implements rounds.Process, recording any decision change.
func (p *integrityProc) Trans(round int, received []rounds.Message) {
	p.inner.Trans(round, received)
	v, ok := p.inner.Decision()
	switch {
	case p.decided && !ok:
		p.owner.violations = append(p.owner.violations,
			fmt.Sprintf("%v retracted its decision at round %d", p.id, round))
	case p.decided && v != p.decision:
		p.owner.violations = append(p.owner.violations,
			fmt.Sprintf("%v changed its decision from %d to %d at round %d",
				p.id, int64(p.decision), int64(v), round))
	case !p.decided && ok:
		p.decided, p.decision = true, v
	}
}

// Decision implements rounds.Process.
func (p *integrityProc) Decision() (model.Value, bool) { return p.inner.Decision() }

// CloneProcess implements rounds.Cloner. The clone reports violations to
// the same owner; integrity state is copied.
func (p *integrityProc) CloneProcess() rounds.Process {
	cl, ok := p.inner.(rounds.Cloner)
	if !ok {
		panic(fmt.Sprintf("check: inner process of %v does not implement Cloner", p.id))
	}
	c := *p
	c.inner = cl.CloneProcess()
	return &c
}
