package check

import (
	"strings"
	"testing"
)

// TestFailureDetails exercises the failure path of every predicate and
// pins the counterexample text each one reports: the experiments print
// these Details verbatim, so their content is part of the contract.
func TestFailureDetails(t *testing.T) {
	tests := []struct {
		name     string
		result   func() Result
		property string
		want     []string // substrings the Detail must contain
	}{
		{
			name: "uniform agreement names both deciders and rounds",
			result: func() Result {
				f := fabricated{n: 3, initial: []int64{1, 2, 3},
					decidedAt: []int{1, 2, 1}, decisions: []int64{1, 2, 1}}
				return UniformAgreement(f.run())
			},
			property: "uniform agreement",
			want:     []string{"p1 decided 1 (round 1)", "p2 decided 2 (round 2)"},
		},
		{
			name: "uniform agreement counts a faulty decider",
			result: func() Result {
				f := fabricated{n: 2, initial: []int64{1, 2}, decidedAt: []int{1, 2},
					decisions: []int64{1, 2}, crashRound: []int{2, 0}}
				return UniformAgreement(f.run())
			},
			property: "uniform agreement",
			want:     []string{"p1 decided 1", "p2 decided 2"},
		},
		{
			name: "agreement (correct only) names both correct deciders",
			result: func() Result {
				f := fabricated{n: 3, initial: []int64{1, 2, 3},
					decidedAt: []int{1, 1, 1}, decisions: []int64{1, 1, 2}}
				return Agreement(f.run())
			},
			property: "agreement (correct only)",
			want:     []string{"correct p1 decided 1", "correct p3 decided 2"},
		},
		{
			name: "uniform validity names the unanimous proposal and the deviant",
			result: func() Result {
				f := fabricated{n: 2, initial: []int64{5, 5},
					decidedAt: []int{1, 1}, decisions: []int64{5, 6}}
				return UniformValidity(f.run())
			},
			property: "uniform validity",
			want:     []string{"all processes proposed 5", "p2 decided 6"},
		},
		{
			name: "value origin lists the proposal set",
			result: func() Result {
				f := fabricated{n: 2, initial: []int64{5, 6},
					decidedAt: []int{1, 1}, decisions: []int64{7, 7}}
				return ValueOrigin(f.run())
			},
			property: "value origin",
			want:     []string{"p1 decided 7", "no process proposed", "{5,6}"},
		},
		{
			name: "termination reports truncation",
			result: func() Result {
				f := fabricated{n: 2, initial: []int64{1, 2},
					decidedAt: []int{1, 1}, decisions: []int64{1, 1}, truncated: true}
				return Termination(f.run())
			},
			property: "termination",
			want:     []string{"truncated", "undecided live processes"},
		},
		{
			name: "termination names the undecided correct processes",
			result: func() Result {
				f := fabricated{n: 3, initial: []int64{1, 2, 3}, decidedAt: []int{1, 0, 0}}
				return Termination(f.run())
			},
			property: "termination",
			want:     []string{"correct processes {p2,p3} never decided"},
		},
		{
			name: "model admissibility counts violations and quotes the first",
			result: func() Result {
				f := fabricated{n: 2, initial: []int64{1, 2}, decidedAt: []int{1, 1},
					decisions: []int64{1, 1}, crashRound: []int{0, 1}}
				run := f.run()
				run.T = 0 // one crash now exceeds the resilience bound
				results := Consensus(run)
				return results[len(results)-1]
			},
			property: "model admissibility",
			want:     []string{"1 violations, first:", "1 crashes exceed t=0"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := tt.result()
			if res.Property != tt.property {
				t.Fatalf("Property = %q, want %q", res.Property, tt.property)
			}
			if res.OK {
				t.Fatalf("expected a violation, got OK")
			}
			for _, w := range tt.want {
				if !strings.Contains(res.Detail, w) {
					t.Errorf("Detail %q does not contain %q", res.Detail, w)
				}
			}
			if s := res.String(); !strings.Contains(s, "VIOLATED — "+res.Detail) {
				t.Errorf("String %q does not embed the Detail", s)
			}
		})
	}
}

// TestAgreementExemptsFaultyDeciders pins the §5.1 weakening Agreement
// models: a decider that later crashes is exempt, so a run may pass
// Agreement while failing UniformAgreement.
func TestAgreementExemptsFaultyDeciders(t *testing.T) {
	f := fabricated{n: 3, initial: []int64{1, 2, 3}, decidedAt: []int{1, 2, 2},
		decisions: []int64{1, 2, 2}, crashRound: []int{2, 0, 0}}
	run := f.run()
	if res := Agreement(run); !res.OK {
		t.Errorf("Agreement rejected a run whose only dissenter crashed: %s", res.Detail)
	}
	if res := UniformAgreement(run); res.OK {
		t.Error("UniformAgreement accepted the same run")
	}
	clean := fabricated{n: 2, initial: []int64{1, 2}, decidedAt: []int{1, 1}, decisions: []int64{1, 1}}
	if res := Agreement(clean.run()); !res.OK {
		t.Errorf("Agreement rejected a clean run: %s", res.Detail)
	}
}
