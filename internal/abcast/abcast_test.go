package abcast

import (
	"testing"

	"repro/internal/model"
	"repro/internal/rounds"
)

func submit(t *testing.T, b *Broadcaster, submitted map[MsgID]model.ProcSet, id MsgID, procs ...model.ProcessID) {
	t.Helper()
	var set model.ProcSet
	for _, p := range procs {
		if err := b.Submit(p, id); err != nil {
			t.Fatal(err)
		}
		set = set.Add(p)
	}
	submitted[id] = set
}

func requireClean(t *testing.T, b *Broadcaster, submitted map[MsgID]model.ProcSet) {
	t.Helper()
	if viol := b.CheckLogs(submitted); len(viol) != 0 {
		t.Fatalf("spec violated: %s\nlogs: %v", viol[0], b.Logs()[1:])
	}
}

func TestFailureFreeTotalOrder(t *testing.T) {
	for _, kind := range []rounds.ModelKind{rounds.RS, rounds.RWS} {
		b, err := New(kind, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		submitted := map[MsgID]model.ProcSet{}
		submit(t, b, submitted, 30, 3)
		submit(t, b, submitted, 10, 1)
		submit(t, b, submitted, 20, 2)
		if err := b.Drain(nil, 10); err != nil {
			t.Fatal(err)
		}
		requireClean(t, b, submitted)
		// Min-first sequencing: global delivery order 10, 20, 30.
		want := []MsgID{10, 20, 30}
		for p := 1; p <= 3; p++ {
			log := b.Logs()[p]
			if len(log) != len(want) {
				t.Fatalf("%v: p%d delivered %v, want %v", kind, p, log, want)
			}
			for i := range want {
				if log[i] != want[i] {
					t.Fatalf("%v: p%d delivered %v, want %v", kind, p, log, want)
				}
			}
		}
	}
}

func TestMessageSubmittedToSingleProcessSpreads(t *testing.T) {
	b, err := New(rounds.RS, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	submitted := map[MsgID]model.ProcSet{}
	submit(t, b, submitted, 42, 2) // only p2 knows it
	if err := b.Drain(nil, 5); err != nil {
		t.Fatal(err)
	}
	requireClean(t, b, submitted)
	for p := 1; p <= 4; p++ {
		if len(b.Logs()[p]) != 1 || b.Logs()[p][0] != 42 {
			t.Fatalf("p%d log = %v", p, b.Logs()[p])
		}
	}
}

func TestCrashBetweenSlots(t *testing.T) {
	b, err := New(rounds.RS, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	submitted := map[MsgID]model.ProcSet{}
	submit(t, b, submitted, 10, 1, 2) // survives p1's crash via p2
	submit(t, b, submitted, 20, 3)
	if _, err := b.DeliverSlot(nil); err != nil { // delivers 10 everywhere
		t.Fatal(err)
	}
	b.Crash(1)
	if err := b.Drain(nil, 5); err != nil {
		t.Fatal(err)
	}
	requireClean(t, b, submitted)
	// p1 delivered a strict prefix; survivors have both messages.
	if len(b.Logs()[1]) != 1 || b.Logs()[1][0] != 10 {
		t.Fatalf("p1 log = %v, want [10]", b.Logs()[1])
	}
	for p := 2; p <= 3; p++ {
		if len(b.Logs()[p]) != 2 {
			t.Fatalf("p%d log = %v, want [10 20]", p, b.Logs()[p])
		}
	}
}

func TestMessageLostWithItsOnlyHolder(t *testing.T) {
	b, err := New(rounds.RS, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	submitted := map[MsgID]model.ProcSet{}
	submit(t, b, submitted, 99, 1) // only the future crasher knows it
	submit(t, b, submitted, 50, 2)
	b.Crash(1)
	if err := b.Drain(nil, 5); err != nil {
		t.Fatal(err)
	}
	requireClean(t, b, submitted) // liveness exempts 99: no correct holder
	for p := 2; p <= 3; p++ {
		if len(b.Logs()[p]) != 1 || b.Logs()[p][0] != 50 {
			t.Fatalf("p%d log = %v, want [50]", p, b.Logs()[p])
		}
	}
}

// TestCrashDuringSlotKeepsUniformPrefix injects a mid-instance crash: the
// victim may deliver the slot's message before dying, and the logs must
// stay prefix-consistent — the uniform half of the reduction.
func TestCrashDuringSlotKeepsUniformPrefix(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		for _, kind := range []rounds.ModelKind{rounds.RS, rounds.RWS} {
			b, err := New(kind, 3, 1)
			if err != nil {
				t.Fatal(err)
			}
			submitted := map[MsgID]model.ProcSet{}
			submit(t, b, submitted, 10, 1, 2, 3)
			submit(t, b, submitted, 20, 2, 3)
			submit(t, b, submitted, 30, 3)
			drop := 0.0
			if kind == rounds.RWS {
				drop = 0.4
			}
			adv := rounds.NewRandomAdversary(seed, 0.4, drop)
			if err := b.Drain(adv, 12); err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			requireClean(t, b, submitted)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	b, err := New(rounds.RS, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Submit(9, 1); err == nil {
		t.Error("invalid process accepted")
	}
	if err := b.Submit(1, 0); err == nil {
		t.Error("zero id accepted")
	}
	if err := b.Submit(1, noMsg); err == nil {
		t.Error("sentinel id accepted")
	}
	if _, err := New(rounds.RS, 0, 0); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := New(rounds.RS, 2, 2); err == nil {
		t.Error("t=n accepted")
	}
}

func TestDrainGivesUpOnEndlessStream(t *testing.T) {
	b, err := New(rounds.RS, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	submitted := map[MsgID]model.ProcSet{}
	for id := MsgID(1); id <= 30; id++ {
		submit(t, b, submitted, id, 1)
	}
	if err := b.Drain(nil, 5); err == nil {
		t.Error("expected Drain to report the slot cap")
	}
}
