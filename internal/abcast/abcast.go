// Package abcast implements atomic broadcast — the paper's introduction
// names it, with atomic commit, as the agreement protocol "at the heart" of
// fault-tolerant systems — via the classic reduction to repeated uniform
// consensus (Chandra & Toueg): slot by slot, the processes run a uniform
// consensus instance to agree on the next message to deliver, yielding a
// totally ordered log.
//
// The reduction inherits the model comparison wholesale: instantiated over
// RS it uses FloodSet, over RWS it uses FloodSetWS, and every property of
// the paper's §5 latency analysis translates into delivery latency. Because
// each slot's decision satisfies *uniform* agreement, even a process that
// crashes right after delivering has delivered a prefix of everyone else's
// log — the uniform prefix property checked by CheckLogs.
//
// Specification (crash model):
//
//   - Validity: every delivered message was submitted by some process.
//   - Uniform total order: the delivery logs of any two processes (correct
//     or faulty) are prefix-comparable.
//   - Integrity: no message is delivered twice by the same process.
//   - Liveness: a message submitted to a correct process is eventually
//     delivered by every correct process.
package abcast

import (
	"fmt"
	"sort"

	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/model"
	"repro/internal/rounds"
)

// MsgID identifies a client message. The zero value is reserved as the
// "nothing to propose" placeholder.
type MsgID int64

// noMsg is proposed by processes with empty pending sets. It orders after
// every real message id, so min-based consensus prefers real messages.
const noMsg = MsgID(1<<62 - 1)

// Broadcaster runs the reduction: submit messages, then Deliver slots until
// the logs drain. It is a deterministic single-threaded harness over the
// rounds engines (the live runtime can run the same slots via the public
// consensus API).
type Broadcaster struct {
	kind rounds.ModelKind
	n, t int

	// pending[p] holds the ids p has submitted locally but not delivered.
	pending []map[MsgID]bool
	// logs[p] is p's delivery sequence.
	logs [][]MsgID
	// crashed marks processes that crashed in some earlier slot; they are
	// initially dead in every later slot.
	crashed model.ProcSet

	slots int
}

// New builds a broadcaster over n processes tolerating t crashes in the
// given round model.
func New(kind rounds.ModelKind, n, t int) (*Broadcaster, error) {
	if n < 1 || n > model.MaxProcs {
		return nil, fmt.Errorf("abcast: n=%d out of range", n)
	}
	if t < 0 || t >= n {
		return nil, fmt.Errorf("abcast: t=%d out of range", t)
	}
	b := &Broadcaster{
		kind:    kind,
		n:       n,
		t:       t,
		pending: make([]map[MsgID]bool, n+1),
		logs:    make([][]MsgID, n+1),
	}
	for p := 1; p <= n; p++ {
		b.pending[p] = make(map[MsgID]bool)
	}
	return b, nil
}

// Submit hands a message to one process (the client contacted it). The same
// id may be submitted to several processes.
func (b *Broadcaster) Submit(p model.ProcessID, id MsgID) error {
	if !p.Valid(b.n) {
		return fmt.Errorf("abcast: Submit to invalid %v", p)
	}
	if id <= 0 || id >= noMsg {
		return fmt.Errorf("abcast: message id %d out of range", id)
	}
	b.pending[p][id] = true
	return nil
}

// Crash marks p as crashed from the next slot on (it proposes nothing and
// is initially dead in subsequent consensus instances).
func (b *Broadcaster) Crash(p model.ProcessID) {
	b.crashed = b.crashed.Add(p)
}

// Logs returns each process's delivery sequence (index 1..n).
func (b *Broadcaster) Logs() [][]MsgID { return b.logs }

// Slots returns the number of consensus instances executed.
func (b *Broadcaster) Slots() int { return b.slots }

// algorithm picks the model's consensus algorithm.
func (b *Broadcaster) algorithm() rounds.Algorithm {
	if b.kind == rounds.RWS {
		return consensus.FloodSetWS{}
	}
	return consensus.FloodSet{}
}

// proposal computes p's next-slot proposal: the smallest pending undelivered
// id, or noMsg.
func (b *Broadcaster) proposal(p model.ProcessID) MsgID {
	best := noMsg
	for id := range b.pending[p] {
		if id < best {
			best = id
		}
	}
	return best
}

// DeliverSlot runs one consensus instance under the given adversary (the
// crashed set is superimposed as initial crashes) and appends the decision
// to every live process's log. It reports whether a real message was
// delivered. Passing nil uses the failure-free adversary.
func (b *Broadcaster) DeliverSlot(adv rounds.Adversary) (bool, error) {
	if adv == nil {
		adv = rounds.NoFailures
	}
	initial := make([]model.Value, b.n)
	for p := 1; p <= b.n; p++ {
		initial[p-1] = model.Value(b.proposal(model.ProcessID(p)))
	}
	// Processes crashed in earlier slots are initially dead here; their
	// crashes do not count against this slot's budget, so the instance runs
	// with the full t (the adversary may still spend the remainder).
	full := adv
	if !b.crashed.Empty() {
		dead := &rounds.InitialCrashAdversary{Victims: b.crashed}
		inner := adv
		full = rounds.AdversaryFunc(func(v *rounds.View) rounds.Plan {
			p := dead.Plan(v)
			if len(p.Crashes) > 0 {
				return p
			}
			return inner.Plan(v)
		})
	}
	run, err := rounds.RunAlgorithm(b.kind, b.algorithm(), initial, b.t, full)
	if err != nil {
		return false, fmt.Errorf("abcast: slot %d: %w", b.slots, err)
	}
	if bad := check.FirstViolation(run); bad != nil {
		return false, fmt.Errorf("abcast: slot %d consensus violated: %s", b.slots, bad)
	}
	b.slots++

	delivered := false
	for p := 1; p <= b.n; p++ {
		if run.CrashRound[p] != 0 {
			b.crashed = b.crashed.Add(model.ProcessID(p))
		}
		if run.DecidedAt[p] == 0 {
			continue
		}
		id := MsgID(run.DecisionOf[p])
		if id == noMsg {
			continue
		}
		delivered = true
		b.logs[p] = append(b.logs[p], id)
		delete(b.pending[p], id)
	}
	// Gossip through consensus: survivors that had not heard of the decided
	// message still delivered it; nothing remains pending for it anywhere.
	return delivered, nil
}

// Drain runs slots until no real message is delivered (all logs caught up)
// or maxSlots is hit.
func (b *Broadcaster) Drain(adv rounds.Adversary, maxSlots int) error {
	for i := 0; i < maxSlots; i++ {
		delivered, err := b.DeliverSlot(adv)
		if err != nil {
			return err
		}
		if !delivered {
			return nil
		}
	}
	return fmt.Errorf("abcast: logs did not drain within %d slots", maxSlots)
}

// CheckLogs verifies the atomic broadcast specification over the final
// state: uniform prefix consistency, integrity, validity against the
// submitted set, and liveness for messages submitted to correct processes.
func (b *Broadcaster) CheckLogs(submitted map[MsgID]model.ProcSet) []string {
	var out []string

	// Integrity: no duplicates per log.
	for p := 1; p <= b.n; p++ {
		seen := make(map[MsgID]bool, len(b.logs[p]))
		for _, id := range b.logs[p] {
			if seen[id] {
				out = append(out, fmt.Sprintf("integrity: p%d delivered %d twice", p, id))
			}
			seen[id] = true
		}
	}

	// Uniform total order: logs pairwise prefix-comparable (crashed
	// processes included — their prefixes count).
	for p := 1; p <= b.n; p++ {
		for q := p + 1; q <= b.n; q++ {
			a, c := b.logs[p], b.logs[q]
			m := len(a)
			if len(c) < m {
				m = len(c)
			}
			for i := 0; i < m; i++ {
				if a[i] != c[i] {
					out = append(out, fmt.Sprintf(
						"uniform total order: p%d and p%d diverge at slot %d (%d vs %d)",
						p, q, i, a[i], c[i]))
					break
				}
			}
		}
	}

	// Validity: every delivered id was submitted somewhere.
	for p := 1; p <= b.n; p++ {
		for _, id := range b.logs[p] {
			if _, ok := submitted[id]; !ok {
				out = append(out, fmt.Sprintf("validity: p%d delivered unsubmitted %d", p, id))
			}
		}
	}

	// Liveness: a message submitted to a correct process appears in every
	// correct process's log.
	correct := model.FullSet(b.n).Minus(b.crashed)
	ids := make([]MsgID, 0, len(submitted))
	for id := range submitted {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		holders := submitted[id]
		if holders.Intersect(correct).Empty() {
			continue // submitted only to crashed processes: no obligation
		}
		correct.ForEach(func(p model.ProcessID) bool {
			found := false
			for _, got := range b.logs[p] {
				if got == id {
					found = true
					break
				}
			}
			if !found {
				out = append(out, fmt.Sprintf("liveness: correct p%d never delivered %d", p, id))
			}
			return true
		})
	}
	return out
}
