package obscli

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func str(s string) *string { return &s }

func TestSetupNothingRequested(t *testing.T) {
	f := &Flags{Metrics: str(""), Events: str(""), CPUProfile: str(""), MemProfile: str("")}
	sink, teardown, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	defer teardown()
	if sink != nil {
		t.Error("sink must be nil when -events is unset")
	}
}

func TestSetupEverything(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "run.jsonl")
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	f := &Flags{
		Metrics:    str("127.0.0.1:0"),
		Events:     str(events),
		CPUProfile: str(cpu),
		MemProfile: str(mem),
	}
	sink, teardown, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if sink == nil {
		t.Fatal("no event sink")
	}
	sink.Emit(obs.Event{Type: obs.EventRunStart, Algorithm: "X", Model: "RS", N: 2, T: 1})
	teardown()

	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("events file empty after teardown")
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestSetupBadEventsPath(t *testing.T) {
	f := &Flags{
		Metrics:    str(""),
		Events:     str(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")),
		CPUProfile: str(""),
		MemProfile: str(""),
	}
	if _, teardown, err := f.Setup(); err == nil {
		teardown()
		t.Fatal("expected error for uncreatable events file")
	}
}
