package obscli

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netobs"
	"repro/internal/obs"
)

func str(s string) *string { return &s }

func TestSetupNothingRequested(t *testing.T) {
	f := &Flags{Metrics: str(""), Events: str(""), CPUProfile: str(""), MemProfile: str("")}
	sink, teardown, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	defer teardown()
	if sink != nil {
		t.Error("sink must be nil when -events is unset")
	}
}

func TestSetupEverything(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "run.jsonl")
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	f := &Flags{
		Metrics:    str("127.0.0.1:0"),
		Events:     str(events),
		CPUProfile: str(cpu),
		MemProfile: str(mem),
	}
	sink, teardown, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if sink == nil {
		t.Fatal("no event sink")
	}
	sink.Emit(obs.Event{Type: obs.EventRunStart, Algorithm: "X", Model: "RS", N: 2, T: 1})
	teardown()

	data, err := os.ReadFile(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("events file empty after teardown")
	}
	for _, p := range []string{cpu, mem} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", p, err)
		}
	}
}

func TestSetupBadEventsPath(t *testing.T) {
	f := &Flags{
		Metrics:    str(""),
		Events:     str(filepath.Join(t.TempDir(), "no", "such", "dir", "x.jsonl")),
		CPUProfile: str(""),
		MemProfile: str(""),
	}
	if _, teardown, err := f.Setup(); err == nil {
		teardown()
		t.Fatal("expected error for uncreatable events file")
	}
}

func TestSetupFlight(t *testing.T) {
	dir := t.TempDir()
	events := filepath.Join(dir, "run.jsonl")
	dump := filepath.Join(dir, "flight.jsonl")
	f := &Flags{Events: str(events), Flight: str(dump)}
	sink, teardown, err := f.Setup()
	if err != nil {
		t.Fatal(err)
	}
	defer teardown()

	// The recorder is the outermost sink: events are captured into the
	// ring AND forwarded to the -events stream.
	rec := f.FlightRecorder()
	if rec == nil || sink != obs.Sink(rec) {
		t.Fatalf("flight recorder not chained as the sink (rec=%v)", rec)
	}
	sink.Emit(obs.Event{Type: obs.EventDecide, Round: 2, Proc: 1, Value: obs.Int64(7)})
	if got := len(rec.Records()); got != 1 {
		t.Fatalf("ring holds %d records, want 1", got)
	}

	dumped, err := f.DumpFlight()
	if err != nil || !dumped {
		t.Fatalf("DumpFlight = (%v, %v), want (true, nil)", dumped, err)
	}
	d, err := netobs.ReadDumpFile(dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Records) != 1 || d.Records[0].Kind != "decide" {
		t.Fatalf("dump records = %+v", d.Records)
	}

	if err := teardown(); err != nil {
		t.Fatal(err)
	}
	// And the forwarded copy reached the -events stream.
	if data, err := os.ReadFile(events); err != nil || len(data) == 0 {
		t.Errorf("events file missing the forwarded event (err=%v, %d bytes)", err, len(data))
	}
}

func TestDumpFlightUnarmed(t *testing.T) {
	f := &Flags{}
	if _, teardown, err := f.Setup(); err != nil {
		t.Fatal(err)
	} else {
		defer teardown()
	}
	if dumped, err := f.DumpFlight(); dumped || err != nil {
		t.Fatalf("unarmed DumpFlight = (%v, %v), want (false, nil)", dumped, err)
	}
}
