// Package obscli wires the shared observability flags (-metrics, -events,
// -cpuprofile, -memprofile) into the command-line tools. Each cmd registers
// the flags before flag.Parse and calls Setup after; everything the flags
// start is torn down by the returned func.
package obscli

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

// Flags holds the registered flag values.
type Flags struct {
	Metrics    *string
	Events     *string
	CPUProfile *string
	MemProfile *string
}

// Register installs the observability flags on the default FlagSet.
func Register() *Flags { return RegisterOn(flag.CommandLine) }

// RegisterOn installs the observability flags on fs, so commands that own
// their FlagSet (and their tests) get the same -metrics/-events/-profile
// surface.
func RegisterOn(fs *flag.FlagSet) *Flags {
	return &Flags{
		Metrics:    fs.String("metrics", "", "serve Prometheus metrics and /healthz on this address (e.g. 127.0.0.1:9090) for the program's lifetime"),
		Events:     fs.String("events", "", "append structured JSONL run events to this file"),
		CPUProfile: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		MemProfile: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Setup starts whatever the parsed flags requested: the metrics endpoint
// (over obs.Default), the CPU profile, and the JSONL event emitter. It
// returns the event sink (nil when -events is unset) and a teardown to
// defer, which also writes the -memprofile.
func (f *Flags) Setup() (obs.Sink, func(), error) {
	var teardowns []func()
	teardown := func() {
		for i := len(teardowns) - 1; i >= 0; i-- {
			teardowns[i]()
		}
	}

	if *f.CPUProfile != "" {
		stop, err := obs.StartCPUProfile(*f.CPUProfile)
		if err != nil {
			return nil, teardown, err
		}
		teardowns = append(teardowns, func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		})
	}
	if *f.Metrics != "" {
		srv, err := obs.StartServer(*f.Metrics, nil)
		if err != nil {
			teardown()
			return nil, func() {}, err
		}
		fmt.Fprintf(os.Stderr, "metrics: %s/metrics\n", srv.URL())
		teardowns = append(teardowns, func() { _ = srv.Close() })
	}

	var sink obs.Sink
	if *f.Events != "" {
		file, err := os.Create(*f.Events)
		if err != nil {
			teardown()
			return nil, func() {}, fmt.Errorf("obscli: create events file: %w", err)
		}
		em := obs.NewEmitter(file)
		sink = em
		teardowns = append(teardowns, func() {
			if err := em.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
			}
			if err := file.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "events: %v\n", err)
			}
		})
	}

	if *f.MemProfile != "" {
		path := *f.MemProfile
		teardowns = append(teardowns, func() {
			if err := obs.WriteHeapProfile(path); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		})
	}
	return sink, teardown, nil
}
