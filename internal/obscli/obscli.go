// Package obscli wires the shared observability flags (-metrics, -events,
// -flight, -cpuprofile, -memprofile) into the command-line tools. Each cmd
// registers the flags before flag.Parse and calls Setup after; everything
// the flags start is torn down by the returned func, which reports any
// write or close failure so callers can fail the process instead of
// silently truncating output files.
package obscli

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/netobs"
	"repro/internal/obs"
)

// Create is the file-creation seam every output file of the CLIs goes
// through (the -events stream here, the trace exporters in ssfd-run).
// Tests inject failing writers through it to prove the error paths still
// flush, close and report.
var Create = func(path string) (io.WriteCloser, error) {
	return os.Create(path)
}

// Flags holds the registered flag values. Unset pointer fields read as ""
// (tests build partial literals).
type Flags struct {
	Metrics    *string
	Events     *string
	Flight     *string
	CPUProfile *string
	MemProfile *string

	flight *netobs.Recorder
}

func strv(p *string) string {
	if p == nil {
		return ""
	}
	return *p
}

// Register installs the observability flags on the default FlagSet.
func Register() *Flags { return RegisterOn(flag.CommandLine) }

// RegisterOn installs the observability flags on fs, so commands that own
// their FlagSet (and their tests) get the same -metrics/-events/-profile
// surface.
func RegisterOn(fs *flag.FlagSet) *Flags {
	return &Flags{
		Metrics:    fs.String("metrics", "", "serve Prometheus metrics and /healthz on this address (e.g. 127.0.0.1:9090) for the program's lifetime"),
		Events:     fs.String("events", "", "append structured JSONL run events to this file"),
		Flight:     fs.String("flight", "", "arm the flight recorder; dump recent transport/FD records to this file on failure or SIGQUIT"),
		CPUProfile: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		MemProfile: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Setup starts whatever the parsed flags requested: the metrics endpoint
// (over obs.Default), the CPU profile, and the JSONL event emitter. It
// returns the event sink (nil when -events is unset) and a teardown to run
// on every exit path — including error exits — which flushes and closes
// everything and returns the first failure (it also writes -memprofile).
func (f *Flags) Setup() (obs.Sink, func() error, error) {
	var teardowns []func() error
	teardown := func() error {
		var errs []error
		for i := len(teardowns) - 1; i >= 0; i-- {
			if err := teardowns[i](); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}

	if strv(f.CPUProfile) != "" {
		stop, err := obs.StartCPUProfile(*f.CPUProfile)
		if err != nil {
			return nil, teardown, err
		}
		teardowns = append(teardowns, stop)
	}
	if strv(f.Metrics) != "" {
		srv, err := obs.StartServer(*f.Metrics, nil)
		if err != nil {
			terr := teardown()
			return nil, func() error { return terr }, err
		}
		fmt.Fprintf(os.Stderr, "metrics: %s/metrics\n", srv.URL())
		teardowns = append(teardowns, srv.Close)
	}

	var sink obs.Sink
	if strv(f.Events) != "" {
		file, err := Create(*f.Events)
		if err != nil {
			terr := teardown()
			return nil, func() error { return terr }, fmt.Errorf("obscli: create events file: %w", err)
		}
		// Buffered: a JSONL stream is many small writes, and the flush on
		// teardown is what makes "the run failed mid-way" still leave a
		// complete, parseable file behind.
		buf := bufio.NewWriter(file)
		em := obs.NewEmitter(buf)
		sink = em
		teardowns = append(teardowns, func() error {
			var errs []error
			if err := em.Err(); err != nil {
				errs = append(errs, fmt.Errorf("obscli: events stream: %w", err))
			}
			if err := buf.Flush(); err != nil {
				errs = append(errs, fmt.Errorf("obscli: flushing events file: %w", err))
			}
			if err := file.Close(); err != nil {
				errs = append(errs, fmt.Errorf("obscli: closing events file: %w", err))
			}
			return errors.Join(errs...)
		})
	}

	if strv(f.Flight) != "" {
		// The recorder becomes the outermost event sink so detector and
		// lifecycle events are captured alongside the transport records the
		// runtime writes into it directly (via FlightRecorder below).
		f.flight = netobs.NewRecorder(0, sink)
		sink = f.flight
		path := *f.Flight
		// SIGQUIT dumps the ring and exits — the in-flight post-mortem hook
		// CI's smoke test exercises. The goroutine is process-lifetime by
		// design; teardown does not join it.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		go func() {
			<-quit
			if err := f.flight.DumpTo(path); err != nil {
				fmt.Fprintf(os.Stderr, "flight: dump failed: %v\n", err)
				os.Exit(3)
			}
			fmt.Fprintf(os.Stderr, "flight: SIGQUIT, dumped recorder to %s\n", path)
			os.Exit(2)
		}()
	}

	if strv(f.MemProfile) != "" {
		path := *f.MemProfile
		teardowns = append(teardowns, func() error {
			return obs.WriteHeapProfile(path)
		})
	}
	return sink, teardown, nil
}

// FlightRecorder returns the armed flight recorder (nil without -flight).
// Commands pass it to the runtime so transports and injectors record into
// it.
func (f *Flags) FlightRecorder() *netobs.Recorder { return f.flight }

// DumpFlight writes the flight ring to the -flight path — the hook
// commands call on a failing exit. A no-op (returning false) without
// -flight.
func (f *Flags) DumpFlight() (bool, error) {
	if f.flight == nil {
		return false, nil
	}
	if err := f.flight.DumpTo(*f.Flight); err != nil {
		return false, err
	}
	return true, nil
}
