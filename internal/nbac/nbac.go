// Package nbac implements Non-Blocking Atomic Commit in the RS and RWS
// round models, realizing the paper's Section 3 corollary: because the
// Strongly Dependent Decision problem is solvable in the synchronous model
// but not with a perfect failure detector, atomic commit protocols in SS
// can reach the Commit decision strictly more often than any protocol in
// SP, while satisfying the same specification.
//
// Specification (crash failures):
//
//   - Uniform agreement: no two processes (correct or faulty) decide
//     differently.
//   - Commit-validity: Commit is decided only if every process voted Yes.
//   - Abort-validity (non-triviality): Abort is decided only if some
//     process voted No or some process crashed.
//   - Termination: every correct process eventually decides.
//
// Both protocols flood the vote vector for t+1 rounds (FloodSet-style; the
// RWS variant adds FloodSetWS's halt mechanism) and then decide Commit iff
// every process's vote is known and is Yes. The SS/SP separation shows up
// in *when* a crashed process's vote is learnable:
//
//   - In RS (from SS), a process that completes its voting round reaches
//     everyone — message synchrony bounds delivery — so a crash after
//     voting can never force an Abort.
//   - In RWS (from SP), the adversary can leave the vote pending: the voter
//     is suspected, the receivers stop waiting, and the vote is lost even
//     though it was sent. The commit rate is strictly lower.
//
// Resilience scope: the protocols are verified exhaustively for t = 1 (the
// paper's setting); the flooding argument for vote-vector *equality* among
// deciders is the same clean-round argument as FloodSet's and extends to
// any t in RS, while in RWS the halt mechanism is what restores it (see
// EXPERIMENTS.md, E9).
package nbac

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/rounds"
)

// Vote values. Votes travel as model.Value in the engine's initial
// configuration: 0 = No, 1 = Yes.
const (
	VoteNo  model.Value = 0
	VoteYes model.Value = 1
)

// Decisions, encoded as model.Value so the rounds engine can record them.
const (
	Abort  model.Value = 0
	Commit model.Value = 1
)

// DecisionString renders a decision value.
func DecisionString(v model.Value) string {
	switch v {
	case Abort:
		return "ABORT"
	case Commit:
		return "COMMIT"
	default:
		return fmt.Sprintf("decision(%d)", int64(v))
	}
}

// voteUnknown marks a vote not yet learned.
const voteUnknown int8 = -1

// VotesMsg carries a process's current knowledge of the vote vector:
// Known[i] is p_i's vote (0/1) or voteUnknown. Index 0 is unused. Senders
// transmit a snapshot; receivers must treat it as read-only.
type VotesMsg struct {
	Known []int8
}

// Protocol is the NBAC protocol, parameterized by the round model it is
// built for: WithHalt selects the FloodSetWS-style pending-message defense
// required in RWS.
type Protocol struct {
	// WithHalt enables the halt mechanism (required for RWS, harmless in RS).
	WithHalt bool
}

var _ rounds.Algorithm = Protocol{}

// ForRS returns the protocol variant designed for the RS model.
func ForRS() Protocol { return Protocol{WithHalt: false} }

// ForRWS returns the protocol variant designed for the RWS model.
func ForRWS() Protocol { return Protocol{WithHalt: true} }

// Name implements rounds.Algorithm.
func (p Protocol) Name() string {
	if p.WithHalt {
		return "NBAC-WS"
	}
	return "NBAC"
}

// New implements rounds.Algorithm.
func (p Protocol) New(cfg rounds.ProcConfig) rounds.Process {
	known := make([]int8, cfg.N+1)
	for i := range known {
		known[i] = voteUnknown
	}
	v := int8(0)
	if cfg.Initial != VoteNo {
		v = 1
	}
	known[cfg.ID] = v
	return &proc{cfg: cfg, withHalt: p.WithHalt, known: known}
}

type proc struct {
	cfg      rounds.ProcConfig
	withHalt bool
	known    []int8
	halt     model.ProcSet
	decided  bool
	decision model.Value
}

var (
	_ rounds.Process = (*proc)(nil)
	_ rounds.Cloner  = (*proc)(nil)
)

// Msgs implements rounds.Process: flood the known-votes vector for t+1
// rounds.
func (p *proc) Msgs(round int) []rounds.Message {
	if round > p.cfg.T+1 {
		return nil
	}
	snapshot := make([]int8, len(p.known))
	copy(snapshot, p.known)
	out := make([]rounds.Message, p.cfg.N+1)
	for i := 1; i <= p.cfg.N; i++ {
		out[i] = VotesMsg{Known: snapshot}
	}
	return out
}

// Trans implements rounds.Process: merge incoming vote vectors (ignoring
// halted senders when the halt mechanism is on), then decide at round t+1:
// Commit iff all n votes are known and Yes.
func (p *proc) Trans(round int, received []rounds.Message) {
	var arrived model.ProcSet
	for j := 1; j <= p.cfg.N; j++ {
		if received[j] == nil {
			continue
		}
		arrived = arrived.Add(model.ProcessID(j))
		if p.withHalt && p.halt.Has(model.ProcessID(j)) {
			continue
		}
		if m, ok := received[j].(VotesMsg); ok {
			for i := 1; i <= p.cfg.N; i++ {
				if p.known[i] == voteUnknown && m.Known[i] != voteUnknown {
					p.known[i] = m.Known[i]
				}
			}
		}
	}
	if p.withHalt {
		p.halt = p.halt.Union(model.FullSet(p.cfg.N).Minus(arrived))
	}
	if round == p.cfg.T+1 && !p.decided {
		p.decision = Commit
		for i := 1; i <= p.cfg.N; i++ {
			if p.known[i] != 1 {
				p.decision = Abort
				break
			}
		}
		p.decided = true
	}
}

// Decision implements rounds.Process.
func (p *proc) Decision() (model.Value, bool) { return p.decision, p.decided }

// CloneProcess implements rounds.Cloner.
func (p *proc) CloneProcess() rounds.Process {
	c := *p
	c.known = append([]int8(nil), p.known...)
	return &c
}
